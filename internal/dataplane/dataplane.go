// Package dataplane gives semantics to the forwarding state of a
// netmodel.Network: symbolic application of a device's rule tables to a
// packet set, network-wide symbolic reachability, concrete traceroute, and
// streaming enumeration of the path universe (§5.2 Step 3 of the paper).
//
// All computations operate on the disjoint match sets of §4.1, so exactly
// one rule per table applies to any packet and no behavior depends on
// device-internal lookup implementations (the paper's "semantics-based"
// requirement, §3.2).
package dataplane

import (
	"context"
	"fmt"
	"hash/fnv"

	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// Loc is a located packet position: at a device, having entered through
// Iface (netmodel.NoIface when the packets were injected directly).
type Loc struct {
	Device netmodel.DeviceID
	Iface  netmodel.IfaceID
}

// Injected returns the location for packets injected at a device.
func Injected(dev netmodel.DeviceID) Loc {
	return Loc{Device: dev, Iface: netmodel.NoIface}
}

// Emission is one output of a forwarding rule: a packet set leaving via
// OutIface, either to the neighbor location Next or out of the modeled
// network (External).
type Emission struct {
	OutIface netmodel.IfaceID
	External bool
	Next     Loc // valid when !External
	Pkts     hdr.Set
}

// RuleHit records that a rule fired on a subset of the arriving packets.
type RuleHit struct {
	Rule *netmodel.Rule
	Pkts hdr.Set    // arriving packets claimed by this rule
	Out  []Emission // empty when the packets were dropped or delivered
}

// DeviceResult is the outcome of pushing a packet set through one device.
type DeviceResult struct {
	Hits []RuleHit
	// NoRoute is the packets matching no FIB rule (implicitly dropped).
	NoRoute hdr.Set
	// ImplicitDeny is the packets matching no ACL entry on a device
	// with an ACL (dropped before the FIB; empty when the device has no
	// ACL).
	ImplicitDeny hdr.Set
}

// ApplyDevice symbolically pushes the packet set p through dev's tables:
// the ingress ACL (if any) first, then the FIB. One RuleHit is produced
// per rule that claims a non-empty subset.
func ApplyDevice(net *netmodel.Network, dev netmodel.DeviceID, p hdr.Set) DeviceResult {
	if !net.MatchSetsComputed() {
		panic("dataplane: match sets not computed")
	}
	var res DeviceResult
	d := net.Device(dev)

	permitted := p
	if len(d.ACL) > 0 {
		permitted = p.Space().Empty()
		matched := p.Space().Empty()
		for _, rid := range d.ACL {
			r := net.Rule(rid)
			hit := p.Intersect(r.MatchSet())
			if hit.IsEmpty() {
				continue
			}
			matched = matched.Union(hit)
			res.Hits = append(res.Hits, RuleHit{Rule: r, Pkts: hit})
			if !r.Deny {
				permitted = permitted.Union(hit)
			}
		}
		// Packets matching no ACL entry are implicitly denied.
		res.ImplicitDeny = p.Diff(matched)
	} else {
		res.ImplicitDeny = p.Space().Empty()
	}

	claimed := p.Space().Empty()
	for _, rid := range d.FIB {
		r := net.Rule(rid)
		hit := permitted.Intersect(r.MatchSet())
		if hit.IsEmpty() {
			continue
		}
		claimed = claimed.Union(hit)
		rh := RuleHit{Rule: r, Pkts: hit}
		if r.Action.Kind == netmodel.ActForward {
			out := hit
			if tr := r.Action.Transform; tr != nil {
				out = applyTransform(out, tr)
			}
			for _, ifid := range r.Action.OutIfaces {
				ifc := net.Iface(ifid)
				em := Emission{OutIface: ifid, Pkts: out}
				if ifc.Peer == netmodel.NoIface {
					em.External = true
				} else {
					peer := net.Iface(ifc.Peer)
					em.Next = Loc{Device: peer.Device, Iface: peer.ID}
				}
				rh.Out = append(rh.Out, em)
			}
		}
		res.Hits = append(res.Hits, rh)
	}
	res.NoRoute = permitted.Diff(claimed)
	return res
}

func applyTransform(s hdr.Set, tr *netmodel.Transform) hdr.Set {
	if tr.RewriteDst {
		s = s.RewriteDstIP(tr.Addr)
	}
	if tr.RewriteSrc {
		s = s.RewriteSrcIP(tr.Addr)
	}
	return s
}

// Reachability is the result of a symbolic network traversal.
type Reachability struct {
	// Arrived maps each location to the packets that arrived there
	// (union over all paths).
	Arrived map[Loc]hdr.Set
	// Delivered maps devices to packets delivered locally (loopbacks,
	// connected routes).
	Delivered map[netmodel.DeviceID]hdr.Set
	// Egressed maps external interfaces to packets that left the network
	// through them.
	Egressed map[netmodel.IfaceID]hdr.Set
	// Dropped maps devices to packets dropped by an explicit drop rule.
	Dropped map[netmodel.DeviceID]hdr.Set
	// NoRoute maps devices to packets that matched no rule.
	NoRoute map[netmodel.DeviceID]hdr.Set
}

// AtDevice returns the union of packets that arrived at dev via any
// interface or injection.
func (r *Reachability) AtDevice(net *netmodel.Network, dev netmodel.DeviceID) hdr.Set {
	out := net.Space.Empty()
	for loc, s := range r.Arrived {
		if loc.Device == dev {
			out = out.Union(s)
		}
	}
	return out
}

// ReachOpts configures a symbolic traversal.
type ReachOpts struct {
	// OnHop, when non-nil, is invoked once per (location, newly arriving
	// packets) — exactly the per-hop markPacket feed of §5.1.
	OnHop func(loc Loc, pkts hdr.Set)
	// MaxSteps bounds worklist processing as a safety net against
	// transform-induced livelock; 0 means a generous default.
	MaxSteps int
}

// Reach symbolically floods the packet set from the starting location and
// returns everything that happened. Per-location arrival sets grow
// monotonically, so the traversal terminates on stateless data planes.
func Reach(net *netmodel.Network, start Loc, pkts hdr.Set, opts ReachOpts) (*Reachability, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200 * (len(net.Devices) + 1)
	}
	res := &Reachability{
		Arrived:   make(map[Loc]hdr.Set),
		Delivered: make(map[netmodel.DeviceID]hdr.Set),
		Egressed:  make(map[netmodel.IfaceID]hdr.Set),
		Dropped:   make(map[netmodel.DeviceID]hdr.Set),
		NoRoute:   make(map[netmodel.DeviceID]hdr.Set),
	}
	// The worklist coalesces pending packets per location: ECMP fans the
	// same location in along many paths, and merging the arrivals before
	// applying the device's tables saves one full table application per
	// extra path.
	pending := map[Loc]hdr.Set{start: pkts}
	queue := []Loc{start}
	enqueue := func(loc Loc, s hdr.Set) {
		if cur, ok := pending[loc]; ok {
			pending[loc] = cur.Union(s)
			return
		}
		pending[loc] = s
		queue = append(queue, loc)
	}
	steps := 0
	for len(queue) > 0 {
		loc := queue[0]
		queue = queue[1:]
		in := pending[loc]
		delete(pending, loc)

		seen, ok := res.Arrived[loc]
		if !ok {
			seen = net.Space.Empty()
		}
		fresh := in.Diff(seen)
		if fresh.IsEmpty() {
			continue
		}
		if steps++; steps > maxSteps {
			return nil, fmt.Errorf("dataplane: traversal exceeded %d steps (transform loop?)", maxSteps)
		}
		res.Arrived[loc] = seen.Union(fresh)
		if opts.OnHop != nil {
			opts.OnHop(loc, fresh)
		}

		dr := ApplyDevice(net, loc.Device, fresh)
		if !dr.NoRoute.IsEmpty() {
			res.NoRoute[loc.Device] = unionInto(net, res.NoRoute[loc.Device], dr.NoRoute)
		}
		if !dr.ImplicitDeny.IsEmpty() {
			res.Dropped[loc.Device] = unionInto(net, res.Dropped[loc.Device], dr.ImplicitDeny)
		}
		for _, hit := range dr.Hits {
			switch hit.Rule.Action.Kind {
			case netmodel.ActDrop:
				res.Dropped[loc.Device] = unionInto(net, res.Dropped[loc.Device], hit.Pkts)
			case netmodel.ActDeliver:
				res.Delivered[loc.Device] = unionInto(net, res.Delivered[loc.Device], hit.Pkts)
			case netmodel.ActForward:
				for _, em := range hit.Out {
					if em.External {
						res.Egressed[em.OutIface] = unionInto(net, res.Egressed[em.OutIface], em.Pkts)
					} else {
						enqueue(em.Next, em.Pkts)
					}
				}
			}
		}
	}
	return res, nil
}

func unionInto(net *netmodel.Network, acc hdr.Set, s hdr.Set) hdr.Set {
	if acc.Space() == nil {
		acc = net.Space.Empty()
	}
	return acc.Union(s)
}

// TraceHop is one hop of a concrete traceroute.
type TraceHop struct {
	Loc      Loc
	Rule     netmodel.RuleID // rule that handled the packet (FIB or ACL deny)
	OutIface netmodel.IfaceID
}

// TraceEnd classifies how a traceroute finished.
type TraceEnd uint8

// Traceroute outcomes.
const (
	TraceDelivered TraceEnd = iota // delivered locally at the last hop
	TraceEgressed                  // left the network via an external iface
	TraceDropped                   // explicit drop rule
	TraceDenied                    // ACL deny
	TraceNoRoute                   // no matching rule
	TraceLoop                      // revisited a device
	TraceHopLimit                  // exceeded the hop limit
)

func (e TraceEnd) String() string {
	switch e {
	case TraceDelivered:
		return "delivered"
	case TraceEgressed:
		return "egressed"
	case TraceDropped:
		return "dropped"
	case TraceDenied:
		return "acl-denied"
	case TraceNoRoute:
		return "no-route"
	case TraceLoop:
		return "loop"
	case TraceHopLimit:
		return "hop-limit"
	}
	return "unknown"
}

// Trace is a completed concrete traceroute.
type Trace struct {
	Hops []TraceHop
	End  TraceEnd
}

// Traceroute follows one concrete packet from start. ECMP choices are
// resolved deterministically by hashing the 5-tuple, as a real switch
// would. The hop limit is 255.
func Traceroute(net *netmodel.Network, start Loc, pkt hdr.Packet) Trace {
	if !net.MatchSetsComputed() {
		panic("dataplane: match sets not computed")
	}
	var tr Trace
	visited := make(map[netmodel.DeviceID]bool)
	loc := start
	// Derive the packet's variable assignment once and test it against
	// each rule's match set directly — rebuilding the assignment per rule
	// dominated traceroute time. It only changes when a rule rewrites a
	// header field.
	assign := net.Space.PacketAssign(pkt, nil)
	for hops := 0; hops < 255; hops++ {
		if visited[loc.Device] {
			tr.End = TraceLoop
			return tr
		}
		visited[loc.Device] = true
		d := net.Device(loc.Device)

		// ACL stage: first match wins; matching nothing on a device with
		// an ACL is an implicit deny, mirroring ApplyDevice.
		if len(d.ACL) > 0 {
			denied := true
			for _, rid := range d.ACL {
				r := net.Rule(rid)
				if r.MatchSet().ContainsAssign(assign) {
					if r.Deny {
						tr.Hops = append(tr.Hops, TraceHop{Loc: loc, Rule: rid, OutIface: netmodel.NoIface})
					} else {
						denied = false
					}
					break
				}
			}
			if denied {
				tr.End = TraceDenied
				return tr
			}
		}

		// FIB stage.
		var rule *netmodel.Rule
		for _, rid := range d.FIB {
			r := net.Rule(rid)
			if r.MatchSet().ContainsAssign(assign) {
				rule = r
				break
			}
		}
		if rule == nil {
			tr.End = TraceNoRoute
			return tr
		}
		hop := TraceHop{Loc: loc, Rule: rule.ID, OutIface: netmodel.NoIface}
		switch rule.Action.Kind {
		case netmodel.ActDrop:
			tr.Hops = append(tr.Hops, hop)
			tr.End = TraceDropped
			return tr
		case netmodel.ActDeliver:
			tr.Hops = append(tr.Hops, hop)
			tr.End = TraceDelivered
			return tr
		}
		outs := rule.Action.OutIfaces
		ifid := outs[ecmpIndex(pkt, len(outs))]
		hop.OutIface = ifid
		tr.Hops = append(tr.Hops, hop)
		if tr2 := rule.Action.Transform; tr2 != nil {
			if tr2.RewriteDst {
				pkt.Dst = tr2.Addr
			}
			if tr2.RewriteSrc {
				pkt.Src = tr2.Addr
			}
			assign = net.Space.PacketAssign(pkt, assign)
		}
		ifc := net.Iface(ifid)
		if ifc.Peer == netmodel.NoIface {
			tr.End = TraceEgressed
			return tr
		}
		peer := net.Iface(ifc.Peer)
		loc = Loc{Device: peer.Device, Iface: peer.ID}
	}
	tr.End = TraceHopLimit
	return tr
}

// ecmpIndex deterministically selects an ECMP member for a packet
// (either address family).
func ecmpIndex(p hdr.Packet, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(p.Dst.AsSlice())
	h.Write(p.Src.AsSlice())
	h.Write([]byte{p.Proto, byte(p.DstPort >> 8), byte(p.DstPort), byte(p.SrcPort >> 8), byte(p.SrcPort)})
	return int(h.Sum32() % uint32(n))
}

// PathEnd classifies how a path in the path universe terminates.
type PathEnd uint8

// Path terminations.
const (
	PathDelivered PathEnd = iota
	PathEgressed
	PathDropped
	PathNoRoute
	PathLoop
)

// Path is one guarded string of the path universe: the packets in Guard
// flow through exactly the rule sequence Rules and then terminate with End.
type Path struct {
	Start Loc
	Rules []netmodel.RuleID
	// Guard is the packet set at the *end* of the path (post-transform).
	// For transform-free paths it equals the set of packets that enter at
	// Start and traverse every rule in sequence.
	Guard hdr.Set
	End   PathEnd
}

// Start is an injection point for path enumeration.
type Start struct {
	Loc  Loc
	Pkts hdr.Set
}

// EnumOpts bounds path enumeration.
type EnumOpts struct {
	// MaxPaths stops enumeration after this many paths (0 = unlimited).
	MaxPaths int
	// MaxHops cuts individual paths (0 = number of devices + 2).
	MaxHops int
}

// EnumeratePaths performs the depth-first symbolic exploration of §5.2
// Step 3: starting from each injection point with its packet set, it
// splits the set across the rules of each device and recurses along
// forwarding edges, emitting one Path per maximal guarded string. Paths
// are processed streaming via visit — they are never all materialized.
// visit returning false stops enumeration. The return values are the
// number of paths emitted and whether enumeration ran to completion.
//
// The context is checked in the walk loop alongside the MaxPaths cap: a
// done ctx stops the exploration and reports incompleteness the same
// way an exhausted path budget does.
func EnumeratePaths(ctx context.Context, net *netmodel.Network, starts []Start, opts EnumOpts, visit func(Path) bool) (int, bool) {
	if !net.MatchSetsComputed() {
		panic("dataplane: match sets not computed")
	}
	maxHops := opts.MaxHops
	if maxHops == 0 {
		maxHops = len(net.Devices) + 2
	}
	emitted := 0
	stopped := false

	var rules []netmodel.RuleID
	onPath := make(map[netmodel.DeviceID]bool)

	emit := func(start Loc, guard hdr.Set, end PathEnd) bool {
		if opts.MaxPaths > 0 && emitted >= opts.MaxPaths {
			stopped = true
			return false
		}
		emitted++
		seq := make([]netmodel.RuleID, len(rules))
		copy(seq, rules)
		return visit(Path{Start: start, Rules: seq, Guard: guard, End: end})
	}

	var dfs func(start Loc, loc Loc, pkts hdr.Set) bool
	dfs = func(start Loc, loc Loc, pkts hdr.Set) bool {
		if ctx.Err() != nil {
			stopped = true
			return false
		}
		if onPath[loc.Device] {
			return emit(start, pkts, PathLoop)
		}
		if len(rules) >= maxHops {
			return emit(start, pkts, PathLoop)
		}
		onPath[loc.Device] = true
		defer delete(onPath, loc.Device)

		dr := ApplyDevice(net, loc.Device, pkts)
		if !dr.NoRoute.IsEmpty() {
			if !emit(start, dr.NoRoute, PathNoRoute) {
				return false
			}
		}
		if !dr.ImplicitDeny.IsEmpty() {
			if !emit(start, dr.ImplicitDeny, PathDropped) {
				return false
			}
		}
		for _, hit := range dr.Hits {
			rules = append(rules, hit.Rule.ID)
			ok := true
			switch hit.Rule.Action.Kind {
			case netmodel.ActDrop:
				ok = emit(start, hit.Pkts, PathDropped)
			case netmodel.ActDeliver:
				ok = emit(start, hit.Pkts, PathDelivered)
			case netmodel.ActForward:
				if len(hit.Out) == 0 {
					ok = emit(start, hit.Pkts, PathDropped)
				}
				for _, em := range hit.Out {
					if !ok {
						break
					}
					if em.External {
						ok = emit(start, em.Pkts, PathEgressed)
					} else {
						ok = dfs(start, em.Next, em.Pkts)
					}
				}
			}
			rules = rules[:len(rules)-1]
			if !ok {
				return false
			}
		}
		return true
	}

	for _, st := range starts {
		if ctx.Err() != nil {
			return emitted, false
		}
		if st.Pkts.IsEmpty() {
			continue
		}
		if !dfs(st.Loc, st.Loc, st.Pkts) {
			return emitted, false
		}
	}
	return emitted, !stopped
}

// EdgeStarts returns the canonical injection points: every external
// interface (host- and WAN-facing) with the full header space, entering at
// its device.
func EdgeStarts(net *netmodel.Network) []Start {
	var out []Start
	full := net.Space.Full()
	for _, ifc := range net.Ifaces {
		if ifc.External {
			out = append(out, Start{
				Loc:  Loc{Device: ifc.Device, Iface: ifc.ID},
				Pkts: full,
			})
		}
	}
	return out
}

// BFSDistances returns hop distances from the origin device over the
// topology (ignoring forwarding state); unreachable devices get -1.
// InternalRouteCheck uses this to derive shortest-path contracts (§7.3).
func BFSDistances(net *netmodel.Network, origin netmodel.DeviceID) []int {
	dist := make([]int, len(net.Devices))
	for i := range dist {
		dist[i] = -1
	}
	dist[origin] = 0
	queue := []netmodel.DeviceID{origin}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
