package dataplane

import (
	"context"
	"net/netip"
	"testing"

	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

func pfx(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestApplyDeviceSplitsByRule(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("r", netmodel.RoleToR, 1)
	up := n.AddIface(d, "up")
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "10.0.0.0/8")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{up}}, netmodel.OriginInternal)
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "192.168.0.0/16")),
		netmodel.Action{Kind: netmodel.ActDrop}, netmodel.OriginStatic)
	n.ComputeMatchSets()

	full := n.Space.Full()
	res := ApplyDevice(n, d, full)
	if len(res.Hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(res.Hits))
	}
	// NoRoute is everything outside the two prefixes.
	want := full.Diff(n.Space.DstPrefix(pfx(t, "10.0.0.0/8"))).Diff(n.Space.DstPrefix(pfx(t, "192.168.0.0/16")))
	if !res.NoRoute.Equal(want) {
		t.Error("NoRoute mismatch")
	}
	for _, h := range res.Hits {
		if h.Rule.Action.Kind == netmodel.ActForward {
			if len(h.Out) != 1 || h.Out[0].OutIface != up || !h.Out[0].External {
				t.Errorf("forward emission = %+v", h.Out)
			}
		} else if len(h.Out) != 0 {
			t.Error("drop rule should not emit")
		}
	}
}

func TestApplyDeviceACLBeforeFIB(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("fw", netmodel.RoleBorder, 1)
	up := n.AddIface(d, "up")
	deny := netmodel.MatchAll()
	deny.DstPortLo, deny.DstPortHi = 23, 23
	n.AddACLRule(d, deny, true)
	n.AddACLRule(d, netmodel.MatchAll(), false)
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{up}}, netmodel.OriginDefault)
	n.ComputeMatchSets()

	res := ApplyDevice(n, d, n.Space.Full())
	// Three hits: ACL deny (port 23), ACL permit (rest), FIB default.
	if len(res.Hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(res.Hits))
	}
	var fibHit *RuleHit
	for i := range res.Hits {
		if res.Hits[i].Rule.Table == netmodel.TableFIB {
			fibHit = &res.Hits[i]
		}
	}
	if fibHit == nil {
		t.Fatal("no FIB hit")
	}
	// FIB sees only permitted (non-port-23) packets.
	if fibHit.Pkts.Overlaps(n.Space.DstPort(23)) {
		t.Error("denied packets leaked to the FIB")
	}
	if !fibHit.Pkts.Equal(n.Space.DstPort(23).Negate()) {
		t.Error("FIB hit should be everything except port 23")
	}
}

func TestApplyDeviceTransform(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("nat", netmodel.RoleBorder, 1)
	up := n.AddIface(d, "up")
	vip := netip.MustParseAddr("192.0.2.10")
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "10.0.0.0/8")),
		netmodel.Action{
			Kind:      netmodel.ActForward,
			OutIfaces: []netmodel.IfaceID{up},
			Transform: &netmodel.Transform{RewriteDst: true, Addr: vip},
		}, netmodel.OriginStatic)
	n.ComputeMatchSets()

	res := ApplyDevice(n, d, n.Space.Full())
	if len(res.Hits) != 1 {
		t.Fatalf("hits = %d", len(res.Hits))
	}
	out := res.Hits[0].Out[0].Pkts
	if !n.Space.DstIP(vip).Contains(out) {
		t.Error("transform did not rewrite destination")
	}
}

func TestReachExampleLeafToWAN(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	leaf := ex.Leaves[0]
	// Packets to destinations outside the DC should egress via both
	// borders' WAN interfaces.
	outside := n.Space.DstPrefix(pfx(t, "93.184.216.0/24"))
	r, err := Reach(n, Injected(leaf), outside, ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range ex.Borders {
		wan := ex.WANIface[b]
		got := r.Egressed[wan]
		if got.Space() == nil || !got.Equal(outside) {
			t.Errorf("WAN iface of border %d egressed %v packets", b, got)
		}
	}
	// Every spine and border saw the packets.
	for _, dev := range append(append([]netmodel.DeviceID{}, ex.Spines...), ex.Borders...) {
		if r.AtDevice(n, dev).IsEmpty() {
			t.Errorf("device %s untouched", n.Device(dev).Name)
		}
	}
}

func TestReachExampleLeafToLeaf(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	src, dst := ex.Leaves[0], ex.Leaves[1]
	pkts := n.Space.DstPrefix(ex.LeafPrefix[dst])
	r, err := Reach(n, Injected(src), pkts, ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// All packets arrive at dst and leave via its host interface.
	got := r.Egressed[ex.LeafIface[dst]]
	if got.Space() == nil || !got.Equal(pkts) {
		t.Error("leaf-to-leaf packets did not reach the destination subnet")
	}
	// Borders are not involved (destination is internal and spines have
	// the specific route).
	for _, b := range ex.Borders {
		if !r.AtDevice(n, b).IsEmpty() {
			t.Errorf("border %d should not see leaf-to-leaf traffic", b)
		}
	}
}

func TestReachBugBlackholesAtB2(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{BugNullRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	leaf := ex.Leaves[0]
	outside := n.Space.DstPrefix(pfx(t, "93.184.216.0/24"))
	r, err := Reach(n, Injected(leaf), outside, ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := n.DeviceByName("b2")
	b1, _ := n.DeviceByName("b1")
	// With the bug, spines route the default only via B1; B2 sees nothing
	// and its null route never drops live traffic (the latent bug).
	if !r.AtDevice(n, b2.ID).IsEmpty() {
		t.Error("b2 should not receive the traffic (spines prefer b1)")
	}
	if got := r.Egressed[ex.WANIface[b1.ID]]; got.Space() == nil || !got.Equal(outside) {
		t.Error("traffic should egress via b1")
	}
}

func TestReachOnHopFeed(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	hops := 0
	pkts := n.Space.DstPrefix(ex.LeafPrefix[ex.Leaves[1]])
	_, err = Reach(n, Injected(ex.Leaves[0]), pkts, ReachOpts{
		OnHop: func(loc Loc, s hdr.Set) {
			hops++
			if s.IsEmpty() {
				t.Error("OnHop with empty set")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Injection at leaf0, two spines, destination leaf: 4 locations
	// (spine arrivals counted per ingress interface).
	if hops < 4 {
		t.Errorf("OnHop fired %d times, want >= 4", hops)
	}
}

func TestTracerouteDelivered(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	src, dst := ex.Leaves[0], ex.Leaves[2]
	pkt := hdr.Packet{
		Dst:   ex.LeafPrefix[dst].Addr().Next(), // some host in the subnet
		Src:   ex.LeafPrefix[src].Addr().Next(),
		Proto: 1,
	}
	tr := Traceroute(n, Injected(src), pkt)
	if tr.End != TraceEgressed {
		t.Fatalf("end = %v, want egressed (host subnet edge)", tr.End)
	}
	// leaf → spine → leaf = 3 hops.
	if len(tr.Hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(tr.Hops))
	}
	if tr.Hops[0].Loc.Device != src {
		t.Error("trace should start at src")
	}
	if last := tr.Hops[len(tr.Hops)-1]; last.Loc.Device != dst {
		t.Errorf("trace should end at %s, got %s", n.Device(dst).Name, n.Device(last.Loc.Device).Name)
	}
}

func TestTracerouteECMPDeterministic(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	pkt := hdr.Packet{
		Dst:   netip.MustParseAddr("93.184.216.34"),
		Src:   ex.LeafPrefix[ex.Leaves[0]].Addr().Next(),
		Proto: 6, DstPort: 443, SrcPort: 10000,
	}
	tr1 := Traceroute(n, Injected(ex.Leaves[0]), pkt)
	tr2 := Traceroute(n, Injected(ex.Leaves[0]), pkt)
	if len(tr1.Hops) != len(tr2.Hops) {
		t.Fatal("nondeterministic traceroute")
	}
	for i := range tr1.Hops {
		if tr1.Hops[i] != tr2.Hops[i] {
			t.Fatal("nondeterministic hop")
		}
	}
	if tr1.End != TraceEgressed {
		t.Errorf("end = %v", tr1.End)
	}
}

func TestTracerouteNoRoute(t *testing.T) {
	// Fat-tree cores have no default; an unknown destination injected at
	// a ToR climbs to a core and dies there.
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	pkt := hdr.Packet{
		Dst:   netip.MustParseAddr("203.0.113.9"),
		Src:   netip.MustParseAddr("10.0.0.1"),
		Proto: 17, DstPort: 53,
	}
	tr := Traceroute(ft.Net, Injected(ft.ToRs[0]), pkt)
	if tr.End != TraceNoRoute {
		t.Fatalf("end = %v, want no-route", tr.End)
	}
	// ToR → agg → core: two forwarding hops recorded.
	if len(tr.Hops) != 2 {
		t.Errorf("hops = %d, want 2", len(tr.Hops))
	}
}

func TestTracerouteACLDeny(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("fw", netmodel.RoleBorder, 1)
	up := n.AddIface(d, "up")
	deny := netmodel.MatchAll()
	deny.DstPortLo, deny.DstPortHi = 23, 23
	n.AddACLRule(d, deny, true)
	n.AddACLRule(d, netmodel.MatchAll(), false)
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{up}}, netmodel.OriginDefault)
	n.ComputeMatchSets()
	pkt := hdr.Packet{Dst: netip.MustParseAddr("1.2.3.4"), Src: netip.MustParseAddr("5.6.7.8"), Proto: 6, DstPort: 23}
	tr := Traceroute(n, Injected(d), pkt)
	if tr.End != TraceDenied {
		t.Fatalf("end = %v, want acl-denied", tr.End)
	}
	pkt.DstPort = 80
	tr = Traceroute(n, Injected(d), pkt)
	if tr.End != TraceEgressed {
		t.Fatalf("end = %v, want egressed", tr.End)
	}
}

func TestEnumeratePathsSmall(t *testing.T) {
	// Single device, two rules, injected full space: each rule is a
	// one-hop path, plus a no-route path.
	n := netmodel.New()
	d := n.AddDevice("r", netmodel.RoleToR, 1)
	host := n.AddEdgeIface(d, "host", pfx(t, "10.0.0.0/24"))
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "10.0.0.0/24")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{host}}, netmodel.OriginInternal)
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "192.168.0.0/16")),
		netmodel.Action{Kind: netmodel.ActDrop}, netmodel.OriginStatic)
	n.ComputeMatchSets()

	starts := []Start{{Loc: Injected(d), Pkts: n.Space.Full()}}
	var paths []Path
	count, complete := EnumeratePaths(context.Background(), n, starts, EnumOpts{}, func(p Path) bool {
		paths = append(paths, p)
		return true
	})
	if !complete || count != 3 {
		t.Fatalf("count = %d complete = %v, want 3 true", count, complete)
	}
	ends := map[PathEnd]int{}
	for _, p := range paths {
		ends[p.End]++
	}
	if ends[PathEgressed] != 1 || ends[PathDropped] != 1 || ends[PathNoRoute] != 1 {
		t.Errorf("ends = %v", ends)
	}
}

func TestEnumeratePathsExampleGuards(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	// Inject only the other leaf's prefix at leaf0: every non-loop path
	// should be leaf0 → spine → leaf1 → host (3 rules), ECMP over 2
	// spines.
	dst := ex.Leaves[1]
	pkts := n.Space.DstPrefix(ex.LeafPrefix[dst])
	starts := []Start{{Loc: Injected(ex.Leaves[0]), Pkts: pkts}}
	got := 0
	EnumeratePaths(context.Background(), n, starts, EnumOpts{}, func(p Path) bool {
		if p.End == PathEgressed {
			got++
			if len(p.Rules) != 3 {
				t.Errorf("path rule count = %d, want 3", len(p.Rules))
			}
			if !p.Guard.Equal(pkts) {
				t.Error("path guard should be the full injected prefix")
			}
		}
		return true
	})
	if got != 2 {
		t.Errorf("egress paths = %d, want 2 (one per spine)", got)
	}
}

func TestEnumeratePathsMaxPaths(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	count, complete := EnumeratePaths(context.Background(), ex.Net, EdgeStarts(ex.Net), EnumOpts{MaxPaths: 5}, func(p Path) bool {
		return true
	})
	if complete || count != 5 {
		t.Errorf("count = %d complete = %v, want 5 false", count, complete)
	}
}

func TestEdgeStarts(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	starts := EdgeStarts(ex.Net)
	// 3 host ifaces + 2 WAN ifaces.
	if len(starts) != 5 {
		t.Errorf("starts = %d, want 5", len(starts))
	}
}

func TestBFSDistances(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	d := BFSDistances(ex.Net, ex.Leaves[0])
	if d[ex.Leaves[0]] != 0 {
		t.Error("origin distance != 0")
	}
	for _, s := range ex.Spines {
		if d[s] != 1 {
			t.Errorf("spine dist = %d, want 1", d[s])
		}
	}
	for _, b := range ex.Borders {
		if d[b] != 2 {
			t.Errorf("border dist = %d, want 2", d[b])
		}
	}
	for _, l := range ex.Leaves[1:] {
		if d[l] != 2 {
			t.Errorf("other leaf dist = %d, want 2", d[l])
		}
	}
}

func TestReachLoopGuard(t *testing.T) {
	// Two devices defaulting to each other: symbolic reach terminates
	// because arrival sets saturate.
	n := netmodel.New()
	a := n.AddDevice("a", netmodel.RoleLeaf, 1)
	b := n.AddDevice("b", netmodel.RoleLeaf, 2)
	ia, ib := n.Connect(a, b, pfx(t, "10.255.0.0/31"))
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{ia}}, netmodel.OriginDefault)
	n.AddFIBRule(b, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{ib}}, netmodel.OriginDefault)
	n.ComputeMatchSets()
	r, err := Reach(n, Injected(a), n.Space.Full(), ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if r.AtDevice(n, b).IsEmpty() {
		t.Error("b should see the packets")
	}
	// And path enumeration flags the loop.
	loops := 0
	EnumeratePaths(context.Background(), n, []Start{{Loc: Injected(a), Pkts: n.Space.Full()}}, EnumOpts{}, func(p Path) bool {
		if p.End == PathLoop {
			loops++
		}
		return true
	})
	if loops == 0 {
		t.Error("path enumeration should report a loop")
	}
}

func TestReachRegionalCrossDC(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := rg.Net
	// Find ToRs in different DCs.
	var src, dst netmodel.DeviceID = -1, -1
	for _, tor := range rg.ToRs {
		if rg.DCOf[tor] == 0 && src == -1 {
			src = tor
		}
		if rg.DCOf[tor] == 1 && dst == -1 {
			dst = tor
		}
	}
	pkts := n.Space.DstPrefix(rg.HostPrefix[dst])
	r, err := Reach(n, Injected(src), pkts, ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// All packets make it to the destination host port.
	got := r.Egressed[rg.HostIface[dst]]
	if got.Space() == nil || !got.Equal(pkts) {
		t.Fatal("cross-DC traffic did not fully arrive")
	}
	// The traffic transits spines in both DCs and at least one hub.
	spineDCs := map[int]bool{}
	for _, sp := range rg.Spines {
		if !r.AtDevice(n, sp).IsEmpty() {
			spineDCs[rg.DCOf[sp]] = true
		}
	}
	if !spineDCs[0] || !spineDCs[1] {
		t.Error("cross-DC traffic should transit spines in both DCs")
	}
	hubs := 0
	for _, h := range rg.Hubs {
		if !r.AtDevice(n, h).IsEmpty() {
			hubs++
		}
	}
	if hubs == 0 {
		t.Error("cross-DC traffic should transit the hub layer")
	}
	// No drops anywhere for this destination.
	for dev, s := range r.Dropped {
		if !s.IsEmpty() {
			t.Errorf("dropped at %s", n.Device(dev).Name)
		}
	}
}

func TestReachRegionalWANEgress(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := rg.Net
	// Traffic to a WAN prefix from any ToR must egress via WAN hub edges
	// and only there.
	pkts := n.Space.DstPrefix(rg.WANPrefixes[0])
	r, err := Reach(n, Injected(rg.ToRs[0]), pkts, ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wanEgress := n.Space.Empty()
	for _, hub := range rg.WANHubs {
		if s, ok := r.Egressed[rg.WANIface[hub]]; ok {
			wanEgress = wanEgress.Union(s)
		}
	}
	if !wanEgress.Equal(pkts) {
		t.Error("WAN-bound traffic did not fully egress at WAN hubs")
	}
	for ifid, s := range r.Egressed {
		if n.Iface(ifid).Name == "wan0" || s.IsEmpty() {
			continue
		}
		t.Errorf("unexpected egress at %s/%s", n.Device(n.Iface(ifid).Device).Name, n.Iface(ifid).Name)
	}
}

// TestTracerouteAgreesWithReach is a concrete-vs-symbolic consistency
// property: every traceroute hop must be a device the symbolic flood of
// the same packet also visits, with the same terminal disposition.
func TestTracerouteAgreesWithReach(t *testing.T) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	n := ft.Net
	for trial, src := range ft.ToRs {
		dst := ft.ToRs[(trial+3)%len(ft.ToRs)]
		if src == dst {
			continue
		}
		pkt := hdr.Packet{
			Dst:   ft.HostPrefix[dst].Addr().Next(),
			Src:   ft.HostPrefix[src].Addr().Next(),
			Proto: 6, DstPort: 80, SrcPort: uint16(1000 + trial),
		}
		tr := Traceroute(n, Injected(src), pkt)
		if tr.End != TraceEgressed {
			t.Fatalf("trace end = %v", tr.End)
		}
		r, err := Reach(n, Injected(src), n.Space.Singleton(pkt), ReachOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, hop := range tr.Hops {
			if r.AtDevice(n, hop.Loc.Device).IsEmpty() {
				t.Fatalf("traceroute visited %s but symbolic flood did not",
					n.Device(hop.Loc.Device).Name)
			}
		}
		if got := r.Egressed[ft.HostIface[dst]]; got.Space() == nil || got.IsEmpty() {
			t.Fatal("symbolic flood did not egress at the destination")
		}
	}
}

// TestReachThroughNAT pushes a symbolic flood through a transforming hop
// and checks the rewritten packets arrive downstream.
func TestReachThroughNAT(t *testing.T) {
	n := netmodel.New()
	client := n.AddDevice("client", netmodel.RoleLeaf, 1)
	nat := n.AddDevice("nat", netmodel.RoleBorder, 2)
	srv := n.AddDevice("srv", netmodel.RoleLeaf, 3)
	i1, _ := n.Connect(client, nat, pfx(t, "10.255.0.0/31"))
	i2, _ := n.Connect(nat, srv, pfx(t, "10.255.0.2/31"))
	vip := netip.MustParseAddr("192.0.2.10")
	realServer := netip.MustParseAddr("10.9.0.5")
	host := n.AddEdgeIface(srv, "host", pfx(t, "10.9.0.0/24"))

	// client: default to nat. nat: rewrite VIP traffic to the real server
	// and forward. srv: deliver its subnet out the host port.
	n.AddFIBRule(client, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{i1}}, netmodel.OriginDefault)
	n.AddFIBRule(nat, netmodel.MatchDst(netip.PrefixFrom(vip, 32)),
		netmodel.Action{
			Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{i2},
			Transform: &netmodel.Transform{RewriteDst: true, Addr: realServer},
		}, netmodel.OriginStatic)
	n.AddFIBRule(srv, netmodel.MatchDst(pfx(t, "10.9.0.0/24")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{host}}, netmodel.OriginInternal)
	n.ComputeMatchSets()

	// Flood all VIP-destined packets from the client.
	in := n.Space.DstIP(vip)
	r, err := Reach(n, Injected(client), in, ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Egressed[host]
	if got.Space() == nil || got.IsEmpty() {
		t.Fatal("no egress after NAT")
	}
	// Everything that egresses carries the rewritten destination.
	if !n.Space.DstIP(realServer).Contains(got) {
		t.Error("egress packets not rewritten")
	}
	// Ports/sources survive the rewrite.
	if !got.Equal(in.RewriteDstIP(realServer)) {
		t.Error("egress set != symbolic rewrite of the input")
	}

	// The concrete path agrees.
	tr := Traceroute(n, Injected(client), hdr.Packet{
		Dst: vip, Src: netip.MustParseAddr("10.1.0.1"), Proto: 6, DstPort: 443,
	})
	if tr.End != TraceEgressed || tr.Hops[len(tr.Hops)-1].Loc.Device != srv {
		t.Fatalf("trace end = %v", tr.End)
	}
}

// TestEnumeratePathsCountsStable: path enumeration is deterministic.
func TestEnumeratePathsCountsStable(t *testing.T) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	count := func() int {
		n, complete := EnumeratePaths(context.Background(), ft.Net, EdgeStarts(ft.Net), EnumOpts{}, func(Path) bool { return true })
		if !complete {
			t.Fatal("incomplete")
		}
		return n
	}
	a, b := count(), count()
	if a != b || a == 0 {
		t.Errorf("path counts differ: %d vs %d", a, b)
	}
}

// TestImplicitACLDeny: a device with an ACL and no catch-all permit
// implicitly denies unmatched packets — consistently across the symbolic
// apply, the flood, paths, and the concrete traceroute.
func TestImplicitACLDeny(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("fw", netmodel.RoleBorder, 1)
	up := n.AddIface(d, "up")
	// Only TCP is permitted; everything else implicitly denied.
	permit := netmodel.MatchAll()
	permit.Proto = 6
	n.AddACLRule(d, permit, false)
	n.AddFIBRule(d, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{up}}, netmodel.OriginDefault)
	n.ComputeMatchSets()

	sp := n.Space
	dr := ApplyDevice(n, d, sp.Full())
	if !dr.ImplicitDeny.Equal(sp.Proto(6).Negate()) {
		t.Error("implicit deny should be all non-TCP")
	}

	r, err := Reach(n, Injected(d), sp.Full(), ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Dropped[d]; got.Space() == nil || !got.Equal(sp.Proto(6).Negate()) {
		t.Error("flood did not account the implicit deny as dropped")
	}
	if got := r.Egressed[up]; got.Space() == nil || !got.Equal(sp.Proto(6)) {
		t.Error("only TCP should egress")
	}

	dropped := 0
	EnumeratePaths(context.Background(), n, []Start{{Loc: Injected(d), Pkts: sp.Full()}}, EnumOpts{}, func(p Path) bool {
		if p.End == PathDropped {
			dropped++
		}
		return true
	})
	if dropped == 0 {
		t.Error("path enumeration missing the implicit-deny path")
	}

	udp := hdr.Packet{Dst: netip.MustParseAddr("1.2.3.4"), Src: netip.MustParseAddr("5.6.7.8"), Proto: 17}
	if tr := Traceroute(n, Injected(d), udp); tr.End != TraceDenied {
		t.Errorf("UDP trace end = %v, want acl-denied", tr.End)
	}
	tcp := udp
	tcp.Proto = 6
	if tr := Traceroute(n, Injected(d), tcp); tr.End != TraceEgressed {
		t.Errorf("TCP trace end = %v, want egressed", tr.End)
	}
}

func TestTraceEndStrings(t *testing.T) {
	ends := []TraceEnd{TraceDelivered, TraceEgressed, TraceDropped, TraceDenied, TraceNoRoute, TraceLoop, TraceHopLimit}
	seen := map[string]bool{}
	for _, e := range ends {
		s := e.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("end %d renders %q", e, s)
		}
		seen[s] = true
	}
	if TraceEnd(99).String() != "unknown" {
		t.Error("unknown end should render unknown")
	}
}

func TestTracerouteLoopAndDrop(t *testing.T) {
	// Two devices defaulting at each other: concrete loop detection.
	n := netmodel.New()
	a := n.AddDevice("a", netmodel.RoleLeaf, 1)
	b := n.AddDevice("b", netmodel.RoleLeaf, 2)
	ia, ib := n.Connect(a, b, pfx(t, "10.255.0.0/31"))
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{ia}}, netmodel.OriginDefault)
	n.AddFIBRule(b, netmodel.MatchDst(pfx(t, "0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{ib}}, netmodel.OriginDefault)
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "192.168.0.0/16")),
		netmodel.Action{Kind: netmodel.ActDrop}, netmodel.OriginStatic)
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "10.255.0.0/31")),
		netmodel.Action{Kind: netmodel.ActDeliver}, netmodel.OriginConnected)
	n.ComputeMatchSets()

	loopPkt := hdr.Packet{Dst: netip.MustParseAddr("8.8.8.8"), Src: netip.MustParseAddr("1.1.1.1")}
	if tr := Traceroute(n, Injected(a), loopPkt); tr.End != TraceLoop {
		t.Errorf("loop end = %v", tr.End)
	}
	dropPkt := hdr.Packet{Dst: netip.MustParseAddr("192.168.1.1"), Src: netip.MustParseAddr("1.1.1.1")}
	if tr := Traceroute(n, Injected(a), dropPkt); tr.End != TraceDropped {
		t.Errorf("drop end = %v", tr.End)
	}
	// Delivered at a connected route.
	connPkt := hdr.Packet{Dst: netip.MustParseAddr("10.255.0.0"), Src: netip.MustParseAddr("1.1.1.1")}
	if tr := Traceroute(n, Injected(a), connPkt); tr.End != TraceDelivered {
		t.Errorf("deliver end = %v", tr.End)
	}
}

func TestTraceroutePanicsOnUnfrozenNetwork(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("r", netmodel.RoleToR, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Traceroute(n, Injected(d), hdr.Packet{Dst: netip.MustParseAddr("1.2.3.4"), Src: netip.MustParseAddr("5.6.7.8")})
}
