package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"yardstick/internal/faults"
	"yardstick/internal/obs"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

var regOpts = topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1}

// TestProfileSpanTree: an instrumented run yields a closed span tree
// whose stage spans cover the wall time, with shard spans nested under
// the suite stage and BDD counters settled into the registry.
func TestProfileSpanTree(t *testing.T) {
	reg := obs.NewRegistry()
	start := time.Now()
	res, err := Run(context.Background(), Config{
		Before:  regionalBuilder(regOpts),
		After:   regionalBuilder(regOpts),
		Suite:   suite(),
		Workers: 4,
		Metrics: reg,
	})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("instrumented run returned no profile")
	}
	if open := res.Profile.OpenCount(); open != 0 {
		t.Errorf("open spans = %d, want 0", open)
	}
	if d := res.Profile.Duration(); d > wall {
		t.Errorf("root span %v exceeds wall time %v", d, wall)
	}
	// The before+after stage spans must account for (nearly) the whole
	// root: only flag setup runs outside them.
	var stages time.Duration
	names := map[string]int{}
	res.Profile.Walk(func(_ int, sp *obs.Span) {
		names[sp.Name()]++
		if sp.Name() == "before" || sp.Name() == "after" {
			stages += sp.Duration()
		}
	})
	if stages > res.Profile.Duration() {
		t.Errorf("stage spans %v exceed root %v", stages, res.Profile.Duration())
	}
	if res.Profile.Duration()-stages > res.Profile.Duration()/10+time.Millisecond {
		t.Errorf("stages %v leave too much of root %v unaccounted", stages, res.Profile.Duration())
	}
	// Workers clamps to the 3-test suite, so shards 0..2 run.
	for _, want := range []string{"pipeline.run", "before", "after", "pipeline.build", "pipeline.suite", "pipeline.coverage", "pipeline.paths", "sharded.build_replicas", "sharded.merge", "shard[0]", "shard[2]"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from profile (have %v)", want, names)
		}
	}
	// Registry side: stage histogram observed, BDD work settled.
	found := map[string]bool{}
	for _, m := range reg.Snapshot() {
		if m.Value > 0 || m.Count > 0 {
			found[m.Name] = true
		}
	}
	for _, want := range []string{
		"yardstick_stage_duration_seconds",
		"yardstick_bdd_ops_total",
		"yardstick_bdd_cache_hits_total",
		"yardstick_bdd_nodes_allocated_total",
		"yardstick_sharded_runs_total",
		"yardstick_sharded_worker_runs_total",
	} {
		if !found[want] {
			t.Errorf("registry missing non-zero %s", want)
		}
	}
}

// TestProfileSpansClosedOnPanic: a panicking test must not leak spans —
// every span in the profile is closed by its deferred End.
func TestProfileSpansClosedOnPanic(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		Before:  regionalBuilder(regOpts),
		After:   regionalBuilder(regOpts),
		Suite:   testkit.Suite{testkit.DefaultRouteCheck{}, faults.PanicTest{}, testkit.ConnectedRouteCheck{}},
		Workers: 4,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != TestsErrored {
		t.Fatalf("verdict = %v, want tests-errored", res.Verdict)
	}
	if open := res.Profile.OpenCount(); open != 0 {
		t.Errorf("open spans after panic = %d, want 0", open)
	}
}

// TestProfileSpansClosedOnCancel: cancellation mid-run still closes
// every span on the way out.
func TestProfileSpansClosedOnCancel(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{
		Before:  regionalBuilder(regOpts),
		After:   regionalBuilder(regOpts),
		Suite:   testkit.Suite{testkit.DefaultRouteCheck{}, faults.HangTest{}},
		Workers: 2,
		Metrics: reg,
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if res.Profile == nil {
		t.Fatal("no profile on cancelled run")
	}
	if open := res.Profile.OpenCount(); open != 0 {
		var sb strings.Builder
		obs.WriteFlame(&sb, res.Profile)
		t.Errorf("open spans after cancel = %d, want 0\n%s", open, sb.String())
	}
}

// TestUninstrumentedRunHasNoProfile: without a registry or a context
// span there is nothing to pay for and nothing to report.
func TestUninstrumentedRunHasNoProfile(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Before: regionalBuilder(regOpts),
		After:  regionalBuilder(regOpts),
		Suite:  suite(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("uninstrumented run produced a profile")
	}
}
