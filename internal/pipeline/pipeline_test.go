package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func regionalBuilder(opts topogen.RegionalOpts) func() (*netmodel.Network, error) {
	return func() (*netmodel.Network, error) {
		rg, err := topogen.BuildRegional(opts)
		if err != nil {
			return nil, err
		}
		return rg.Net, nil
	}
}

func exampleBuilder(opts topogen.ExampleOpts) func() (*netmodel.Network, error) {
	return func() (*netmodel.Network, error) {
		ex, err := topogen.BuildExample(opts)
		if err != nil {
			return nil, err
		}
		return ex.Net, nil
	}
}

func suite() testkit.Suite {
	return testkit.Suite{
		testkit.DefaultRouteCheck{},
		testkit.InternalRouteCheck{},
		testkit.ConnectedRouteCheck{},
	}
}

func TestNoChangeIsSafe(t *testing.T) {
	opts := topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1}
	res, err := Run(context.Background(), Config{
		Before: regionalBuilder(opts),
		After:  regionalBuilder(opts),
		Suite:  suite(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (regressions %v, drift %v)", res.Verdict, res.Regressions, res.Drift)
	}
	if res.PathsBefore == 0 || res.PathsBefore != res.PathsAfter {
		t.Errorf("path universe: %d -> %d", res.PathsBefore, res.PathsAfter)
	}
	if len(res.Results) != 3 {
		t.Errorf("results = %d", len(res.Results))
	}
}

func TestBadChangeFailsTests(t *testing.T) {
	// The change introduces B2's null-routed default: DefaultRouteCheck
	// fails on the post-change state.
	res, err := Run(context.Background(), Config{
		Before: exampleBuilder(topogen.ExampleOpts{}),
		After:  exampleBuilder(topogen.ExampleOpts{BugNullRoute: true}),
		Suite:  testkit.Suite{testkit.DefaultRouteCheck{}},
		// Paths change too (B2 stops forwarding), but test failure wins.
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != TestsFailed {
		t.Fatalf("verdict = %v, want tests-failed", res.Verdict)
	}
}

func TestSilentChangeFlaggedByDrift(t *testing.T) {
	// The same null-route bug, but the suite contains only tests blind
	// to it. The path-universe guard flags that the network's behavior
	// changed: the default-route paths through B2 disappear.
	blindSuite := testkit.Suite{testkit.ConnectedRouteCheck{}}
	res, err := Run(context.Background(), Config{
		Before:         exampleBuilder(topogen.ExampleOpts{}),
		After:          exampleBuilder(topogen.ExampleOpts{BugNullRoute: true}),
		Suite:          blindSuite,
		DriftThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != UniverseDrifted {
		t.Fatalf("verdict = %v (paths %d -> %d), want drift flag",
			res.Verdict, res.PathsBefore, res.PathsAfter)
	}
	if res.PathsAfter >= res.PathsBefore {
		t.Errorf("null route should shrink the path universe: %d -> %d", res.PathsBefore, res.PathsAfter)
	}
}

func TestNegativeDriftThresholdDisablesGuard(t *testing.T) {
	// The same silent change, but with the guard explicitly disabled:
	// drift is still reported, never flagged.
	blindSuite := testkit.Suite{testkit.ConnectedRouteCheck{}}
	res, err := Run(context.Background(), Config{
		Before:         exampleBuilder(topogen.ExampleOpts{}),
		After:          exampleBuilder(topogen.ExampleOpts{BugNullRoute: true}),
		Suite:          blindSuite,
		DriftThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftFlagged {
		t.Error("negative DriftThreshold must disable the drift guard")
	}
	if res.Verdict == UniverseDrifted {
		t.Errorf("verdict = %v with guard disabled", res.Verdict)
	}
	if res.Drift == 0 {
		t.Error("drift should still be reported with the guard disabled")
	}
	if res.PathsBefore == 0 || res.PathsAfter == 0 {
		t.Error("path universe should still be counted with the guard disabled")
	}
}

func TestTopologyGrowthRegressesCoverage(t *testing.T) {
	// Growing the network without growing the (role-limited) suite:
	// AggCanReachTorLoopback doesn't test spines, so new spine rules
	// reduce per-spine coverage? Per-device comparison skips new
	// devices, so instead shrink the suite's reach by adding WAN
	// prefixes, which no test in the suite covers — the spines'
	// rule coverage drops.
	before := topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 2}
	after := before
	after.WANPrefixes = 64
	res, err := Run(context.Background(), Config{
		Before:           regionalBuilder(before),
		After:            regionalBuilder(after),
		Suite:            suite(),
		SkipPathUniverse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != CoverageRegressed {
		t.Fatalf("verdict = %v, want coverage-regressed", res.Verdict)
	}
	// The regressions implicate spines/hubs (where WAN routes live).
	for _, r := range res.Regressions {
		if r.Metric != "rule-fractional" && r.Metric != "rule-weighted" && r.Metric != "device-fractional" {
			t.Errorf("unexpected regressed metric %s", r.Metric)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing builders should error")
	}
	if _, err := Run(context.Background(), Config{
		Before: func() (*netmodel.Network, error) { return nil, errBoom },
		After:  regionalBuilder(topogen.RegionalOpts{}),
	}); err == nil {
		t.Error("builder error should propagate")
	}
}

var errBoom = &buildError{}

type buildError struct{}

func (*buildError) Error() string { return "boom" }

func TestVerdictStrings(t *testing.T) {
	for _, v := range []Verdict{Safe, TestsFailed, TestsErrored, CoverageRegressed, UniverseDrifted, Incomplete} {
		if v.String() == "unknown" {
			t.Errorf("verdict %d has no name", v)
		}
	}
}

func smallOpts() topogen.RegionalOpts {
	return topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1}
}

func TestCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := Run(ctx, Config{
		Before: regionalBuilder(smallOpts()),
		After:  regionalBuilder(smallOpts()),
		Suite:  suite(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result must never be nil")
	}
	if res.Verdict != Incomplete {
		t.Errorf("verdict = %v, want incomplete", res.Verdict)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled run took %v, want prompt return", elapsed)
	}
}

func TestCancellationMidRunYieldsPartialResult(t *testing.T) {
	// Cancel during the after phase: the before phase's numbers are
	// already recorded on the partial result.
	ctx, cancel := context.WithCancel(context.Background())
	afterBuilder := func() (*netmodel.Network, error) {
		cancel() // fires when the after phase starts building
		return regionalBuilder(smallOpts())()
	}
	res, err := Run(ctx, Config{
		Before: regionalBuilder(smallOpts()),
		After:  afterBuilder,
		Suite:  suite(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Verdict != Incomplete {
		t.Errorf("verdict = %v, want incomplete", res.Verdict)
	}
	if res.PathsBefore == 0 {
		t.Error("before phase completed; its path count belongs on the partial result")
	}
}

func TestPanickingTestYieldsTestsErrored(t *testing.T) {
	panicking := panicTest{}
	res, err := Run(context.Background(), Config{
		Before: regionalBuilder(smallOpts()),
		After:  regionalBuilder(smallOpts()),
		Suite: testkit.Suite{
			testkit.DefaultRouteCheck{},
			panicking,
			testkit.ConnectedRouteCheck{},
		},
		SkipPathUniverse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != TestsErrored {
		t.Fatalf("verdict = %v, want tests-errored", res.Verdict)
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3 (suite must survive the panic)", len(res.Results))
	}
	var errored int
	for _, r := range res.Results {
		if r.Errored() {
			errored++
		}
	}
	if errored != 1 {
		t.Fatalf("got %d errored results, want exactly 1", errored)
	}
}

func TestBDDLimitsSurfaceAsBudgetError(t *testing.T) {
	// Measure the baseline node population of the built network, then
	// grant evaluation almost no headroom: the suite's symbolic work
	// trips MaxNodes, and Run reports it as a typed error — no panic,
	// no OOM — with verdict Incomplete.
	probe, err := topogen.BuildRegional(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	probe.Net.ComputeMatchSets()
	baseline := probe.Net.Space.Manager().Size()

	res, err := Run(context.Background(), Config{
		Before: regionalBuilder(smallOpts()),
		After:  regionalBuilder(smallOpts()),
		Suite:  suite(),
		Limits: bdd.Limits{MaxNodes: baseline + 16},
	})
	if !errors.Is(err, bdd.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil || res.Verdict != Incomplete {
		t.Fatalf("res = %+v, want non-nil with verdict incomplete", res)
	}
}

func TestPathBudgetSuppressesDriftGuard(t *testing.T) {
	// The null-route change drifts the path universe, but a tiny path
	// budget truncates enumeration on both sides: the guard must stand
	// down (with a reason) instead of flagging from meaningless counts.
	res, err := Run(context.Background(), Config{
		Before:         exampleBuilder(topogen.ExampleOpts{}),
		After:          exampleBuilder(topogen.ExampleOpts{BugNullRoute: true}),
		Suite:          testkit.Suite{testkit.ConnectedRouteCheck{}},
		DriftThreshold: 0.05,
		PathBudget:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PathsTruncated {
		t.Fatal("PathBudget=1 must truncate enumeration")
	}
	if res.DriftFlagged {
		t.Error("drift guard must be suppressed on truncated counts")
	}
	if res.DriftNote == "" {
		t.Error("suppressed guard must say why")
	}
	if res.Verdict == UniverseDrifted {
		t.Errorf("verdict = %v from truncated counts", res.Verdict)
	}
}

type panicTest struct{}

func (panicTest) Name() string       { return "PanicTest" }
func (panicTest) Kind() testkit.Kind { return testkit.StateInspection }
func (panicTest) Run(*netmodel.Network, core.Tracker) testkit.Result {
	panic("pipeline chaos: injected panic")
}

func TestWorkersMatchesSequential(t *testing.T) {
	// The parallel evaluation path must be invisible in the output:
	// identical verdict, test results, and coverage metrics.
	opts := smallOpts()
	run := func(workers int) *Result {
		t.Helper()
		res, err := Run(context.Background(), Config{
			Before:  regionalBuilder(opts),
			After:   regionalBuilder(opts),
			Suite:   suite(),
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(3)
	if par.Verdict != seq.Verdict {
		t.Errorf("verdict %v, want %v", par.Verdict, seq.Verdict)
	}
	if par.BeforeCoverage != seq.BeforeCoverage || par.AfterCoverage != seq.AfterCoverage {
		t.Errorf("coverage differs: %+v/%+v vs %+v/%+v",
			par.BeforeCoverage, par.AfterCoverage, seq.BeforeCoverage, seq.AfterCoverage)
	}
	if len(par.Results) != len(seq.Results) {
		t.Fatalf("%d results, want %d", len(par.Results), len(seq.Results))
	}
	for i := range par.Results {
		if par.Results[i].Name != seq.Results[i].Name || par.Results[i].Status() != seq.Results[i].Status() {
			t.Errorf("result %d: %s/%s, want %s/%s", i,
				par.Results[i].Name, par.Results[i].Status(),
				seq.Results[i].Name, seq.Results[i].Status())
		}
	}
	if par.PathsBefore != seq.PathsBefore || par.PathsAfter != seq.PathsAfter {
		t.Errorf("path universe differs: %d/%d vs %d/%d",
			par.PathsBefore, par.PathsAfter, seq.PathsBefore, seq.PathsAfter)
	}
}

func TestWorkersBudgetTripIsIncomplete(t *testing.T) {
	// A shard budget trip must degrade exactly like the sequential case:
	// error wrapping ErrBudgetExceeded, verdict Incomplete.
	res, err := Run(context.Background(), Config{
		Before:  regionalBuilder(smallOpts()),
		After:   regionalBuilder(smallOpts()),
		Suite:   suite(),
		Workers: 2,
		Limits:  bdd.Limits{MaxOps: 200},
	})
	if !errors.Is(err, bdd.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil || res.Verdict != Incomplete {
		t.Fatalf("res = %+v, want non-nil with verdict incomplete", res)
	}
}
