// Package pipeline implements the deployment context Yardstick runs in
// (§7.1 "Testing Pipeline"): the network undergoes a change, a simulator
// computes the forwarding state that will result, a test suite checks
// that state, and Yardstick augments the pass/fail report with coverage
// metrics so operators can judge both whether the change is safe and how
// much the verdict can be trusted.
//
// A Run takes a network *builder* (so the pipeline controls both the
// before and after states), a change to apply to the builder's
// configuration, and a test suite. It reports test results, coverage,
// per-device coverage regressions against the pre-change snapshot, and
// the path-universe drift guard of §5.2.
//
// Run degrades rather than crashes: cancellation, per-test panics, and
// BDD resource budgets (Config.Limits) each produce a structured partial
// Result. See the Verdict values TestsErrored and Incomplete.
package pipeline

import (
	"context"
	"fmt"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
	"yardstick/internal/obs"
	"yardstick/internal/report"
	"yardstick/internal/sharded"
	"yardstick/internal/testkit"
)

// Verdict summarizes a change evaluation.
type Verdict uint8

// Verdicts. Human oversight is expected for everything but Safe (§7.1:
// "Human oversight is needed here because it is possible that tests may
// fail as a result of modeling error or transient failures").
const (
	// Safe: all tests pass, no coverage regressions, path universe
	// stable.
	Safe Verdict = iota
	// TestsFailed: at least one test failed on the post-change state.
	TestsFailed
	// TestsErrored: no test failed, but at least one terminated
	// abnormally (panic, budget, cancellation) — its assertions never
	// finished, so the run vouches for less than the suite promises.
	TestsErrored
	// CoverageRegressed: tests pass but the suite now exercises less of
	// the network than before — the verdict is weaker than it looks.
	CoverageRegressed
	// UniverseDrifted: tests pass but the path universe changed
	// dramatically; the network's structure may have changed in ways
	// the suite does not see.
	UniverseDrifted
	// Incomplete: the evaluation itself was cut short (cancelled, or a
	// resource budget tripped outside any single test); the Result
	// holds whatever phases finished, and Run also returns the error.
	Incomplete
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case TestsFailed:
		return "tests-failed"
	case TestsErrored:
		return "tests-errored"
	case CoverageRegressed:
		return "coverage-regressed"
	case UniverseDrifted:
		return "path-universe-drifted"
	case Incomplete:
		return "incomplete"
	}
	return "unknown"
}

// Config drives one change evaluation.
type Config struct {
	// Before and After build the pre- and post-change networks (the
	// in-house simulator step of §7.1: both are *computed* states).
	Before func() (*netmodel.Network, error)
	After  func() (*netmodel.Network, error)
	// Suite is the test suite to run on both states.
	Suite testkit.Suite
	// RegressionEpsilon is the per-device coverage drop tolerated
	// before flagging (default 0.01).
	RegressionEpsilon float64
	// DriftThreshold is the tolerated relative path-universe change.
	// Zero selects the default (0.2); a negative value disables the
	// drift guard while still reporting path-universe sizes and drift.
	// (SkipPathUniverse disables the counting itself.)
	DriftThreshold float64
	// SkipPathUniverse disables path-universe counting (it is the
	// expensive step; §8 engineers run it daily, not per change).
	SkipPathUniverse bool
	// PathBudget caps path enumeration (0 = unlimited).
	PathBudget int
	// Limits bounds the BDD engine for each evaluated state (the zero
	// value is unlimited). A tripped budget surfaces as an error
	// wrapping bdd.ErrBudgetExceeded with verdict Incomplete. With
	// Workers > 1 the same limits also govern each shard (MaxOps split
	// across workers; see internal/sharded).
	Limits bdd.Limits
	// Workers is the suite parallelism per evaluated state: when > 1,
	// the state's builder replicates the network once per worker and the
	// suite partitions across them (internal/sharded); 0 or 1 evaluates
	// sequentially. Results and metrics are identical either way — only
	// wall-clock time changes. Builders must be deterministic, which
	// Before/After already promise (both sides are *computed* states).
	Workers int
	// Metrics, when set, turns on instrumentation: Run builds a span
	// tree (Result.Profile) whose stage durations and BDD counter deltas
	// also land in this registry. When the context already carries a
	// span (obs.ContextWithSpan), Run nests under it — and that span's
	// registry wins — so a service or CLI owns the root. Nil with no
	// span in the context means zero instrumentation overhead.
	Metrics *obs.Registry
}

// Result is a change-evaluation report. On error it is still returned
// with whatever phases completed — partial results are the point of the
// degradation model.
type Result struct {
	Verdict Verdict

	// Results are the post-change test outcomes (pass, fail, or
	// errored — see testkit.Result.Status).
	Results []testkit.Result
	// BeforeCoverage and AfterCoverage are the headline metrics of the
	// suite on each state.
	BeforeCoverage report.Metrics
	AfterCoverage  report.Metrics
	// Regressions are devices whose coverage dropped.
	Regressions []report.Regression
	// PathsBefore/PathsAfter are path-universe sizes (0 when skipped).
	PathsBefore, PathsAfter int
	// PathsTruncated reports that PathBudget (or cancellation) clipped
	// enumeration on at least one side. Truncated counts make the drift
	// ratio meaningless, so the drift guard is suppressed and DriftNote
	// says why.
	PathsTruncated bool
	// Drift is the relative path-universe change.
	Drift        float64
	DriftFlagged bool
	// DriftNote explains a suppressed or disabled drift guard ("" when
	// the guard ran normally).
	DriftNote string
	// Profile is the run's span tree (nil when uninstrumented). Render
	// with obs.WriteFlame; every span is closed even on a degraded run.
	Profile *obs.Span
}

// Run evaluates a change. The context is honored between phases and —
// through the BDD engine's watched context — inside symbolic work: a
// cancelled ctx makes Run return promptly with ctx.Err() and a partial
// Result (never nil) whose verdict is Incomplete.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{Verdict: Incomplete}
	if cfg.Before == nil || cfg.After == nil {
		return res, fmt.Errorf("pipeline: Before and After builders are required")
	}
	if cfg.RegressionEpsilon == 0 {
		cfg.RegressionEpsilon = 0.01
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.2
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Instrumentation root: nest under a span already in the context (a
	// service request span, a CLI -profile root), else create one when a
	// registry was configured, else stay nil — and every obs call below
	// is a no-op.
	var sp *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp = parent.Child("pipeline.run")
	} else if cfg.Metrics != nil {
		sp = obs.NewRoot("pipeline.run", cfg.Metrics)
	}
	defer sp.End()
	res.Profile = sp
	reg := sp.Registry()

	evaluate := func(name string, build func() (*netmodel.Network, error)) ([]testkit.Result, *report.Snapshot, bool, error) {
		stage := sp.Child(name)
		defer stage.End()
		bsp := stage.Child("pipeline.build")
		net, err := build()
		if err != nil {
			bsp.End()
			return nil, nil, false, err
		}
		if !net.MatchSetsComputed() {
			net.ComputeMatchSets()
		}
		bsp.EndStage()
		// Budgets and cancellation apply from here on: the network is
		// built (its match sets are the baseline node population), and
		// everything after this point is evaluation work. bdd.Guard is
		// the hdr/core recovery boundary — a budget blown anywhere in
		// the guarded phase unwinds to here as a typed error.
		net.Space.SetLimits(cfg.Limits)
		// Counter baseline after SetLimits (it resets the op counter);
		// the deferred flush settles this state's BDD movement onto the
		// stage span and the registry even when the guard trips.
		base := net.Space.EngineStats()
		defer func() { net.Space.FlushStats(stage, reg, base) }()
		defer net.Space.WatchContext(ctx)()
		var (
			results   []testkit.Result
			trace     *core.Trace
			snap      *report.Snapshot
			truncated bool
		)
		if cfg.Workers > 1 {
			// Parallel suite evaluation: replicate the state via its own
			// builder, run shards, merge traces into this (canonical)
			// space. Shard budget trips and cancellation surface here
			// with the same error semantics as the sequential guard. The
			// suite span rides the context so shard spans nest under it.
			ssp := stage.Child("pipeline.suite")
			sctx := obs.ContextWithSpan(ctx, ssp)
			eng, err := sharded.New(sctx, net, sharded.Config{
				Workers: cfg.Workers,
				Build:   build,
				Limits:  cfg.Limits,
			})
			if err != nil {
				ssp.End()
				return nil, nil, false, err
			}
			sres, err := eng.Run(sctx, cfg.Suite)
			ssp.EndStage()
			results = sres.Results
			if err != nil {
				return results, nil, false, err
			}
			trace = sres.Trace
		}
		gerr := bdd.Guard(func() {
			if trace == nil {
				func() {
					ssp := stage.Child("pipeline.suite")
					defer ssp.EndStage()
					trace = core.NewTrace()
					results = cfg.Suite.Run(obs.ContextWithSpan(ctx, ssp), net, trace)
				}()
			}
			func() {
				csp := stage.Child("pipeline.coverage")
				defer csp.EndStage()
				cov := core.NewCoverage(net, trace)
				snap = report.TakeSnapshot(cov)
			}()
			if !cfg.SkipPathUniverse {
				func() {
					psp := stage.Child("pipeline.paths")
					defer psp.EndStage()
					n, complete := dataplane.EnumeratePaths(ctx, net, dataplane.EdgeStarts(net),
						dataplane.EnumOpts{MaxPaths: cfg.PathBudget}, func(dataplane.Path) bool { return true })
					snap.PathUniverse = n
					truncated = !complete
				}()
			}
		})
		if gerr == nil {
			gerr = ctx.Err()
		}
		return results, snap, truncated, gerr
	}

	_, beforeSnap, beforeTrunc, err := evaluate("before", cfg.Before)
	if err != nil {
		return res, fmt.Errorf("pipeline: before state: %w", err)
	}
	res.BeforeCoverage = beforeSnap.Total
	res.PathsBefore = beforeSnap.PathUniverse

	afterResults, afterSnap, afterTrunc, err := evaluate("after", cfg.After)
	res.Results = afterResults
	if err != nil {
		return res, fmt.Errorf("pipeline: after state: %w", err)
	}
	res.AfterCoverage = afterSnap.Total
	res.Regressions = report.CompareSnapshots(beforeSnap, afterSnap, cfg.RegressionEpsilon)
	res.PathsAfter = afterSnap.PathUniverse
	res.PathsTruncated = beforeTrunc || afterTrunc

	if !cfg.SkipPathUniverse {
		res.Drift, res.DriftFlagged = report.PathUniverseDrift(beforeSnap.PathUniverse, afterSnap.PathUniverse, cfg.DriftThreshold)
		switch {
		case cfg.DriftThreshold < 0: // guard disabled: report drift, never flag
			res.DriftFlagged = false
			res.DriftNote = "drift guard disabled by configuration"
		case res.PathsTruncated:
			// Clipped counts make the ratio meaningless: a real universe
			// change could hide entirely inside the truncated tail, so
			// the §5.2 guard cannot clear the change either way.
			res.DriftFlagged = false
			res.DriftNote = "drift guard suppressed: path enumeration truncated by budget"
		}
	}

	switch {
	case anyFailed(afterResults):
		res.Verdict = TestsFailed
	case anyErrored(afterResults):
		res.Verdict = TestsErrored
	case len(res.Regressions) > 0:
		res.Verdict = CoverageRegressed
	case res.DriftFlagged:
		res.Verdict = UniverseDrifted
	default:
		res.Verdict = Safe
	}
	return res, nil
}

func anyFailed(results []testkit.Result) bool {
	for _, r := range results {
		if len(r.Failures) > 0 {
			return true
		}
	}
	return false
}

func anyErrored(results []testkit.Result) bool {
	for _, r := range results {
		if r.Errored() {
			return true
		}
	}
	return false
}
