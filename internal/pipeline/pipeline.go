// Package pipeline implements the deployment context Yardstick runs in
// (§7.1 "Testing Pipeline"): the network undergoes a change, a simulator
// computes the forwarding state that will result, a test suite checks
// that state, and Yardstick augments the pass/fail report with coverage
// metrics so operators can judge both whether the change is safe and how
// much the verdict can be trusted.
//
// A Run takes a network *builder* (so the pipeline controls both the
// before and after states), a change to apply to the builder's
// configuration, and a test suite. It reports test results, coverage,
// per-device coverage regressions against the pre-change snapshot, and
// the path-universe drift guard of §5.2.
package pipeline

import (
	"fmt"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
	"yardstick/internal/report"
	"yardstick/internal/testkit"
)

// Verdict summarizes a change evaluation.
type Verdict uint8

// Verdicts. Human oversight is expected for everything but Safe (§7.1:
// "Human oversight is needed here because it is possible that tests may
// fail as a result of modeling error or transient failures").
const (
	// Safe: all tests pass, no coverage regressions, path universe
	// stable.
	Safe Verdict = iota
	// TestsFailed: at least one test failed on the post-change state.
	TestsFailed
	// CoverageRegressed: tests pass but the suite now exercises less of
	// the network than before — the verdict is weaker than it looks.
	CoverageRegressed
	// UniverseDrifted: tests pass but the path universe changed
	// dramatically; the network's structure may have changed in ways
	// the suite does not see.
	UniverseDrifted
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case TestsFailed:
		return "tests-failed"
	case CoverageRegressed:
		return "coverage-regressed"
	case UniverseDrifted:
		return "path-universe-drifted"
	}
	return "unknown"
}

// Config drives one change evaluation.
type Config struct {
	// Before and After build the pre- and post-change networks (the
	// in-house simulator step of §7.1: both are *computed* states).
	Before func() (*netmodel.Network, error)
	After  func() (*netmodel.Network, error)
	// Suite is the test suite to run on both states.
	Suite testkit.Suite
	// RegressionEpsilon is the per-device coverage drop tolerated
	// before flagging (default 0.01).
	RegressionEpsilon float64
	// DriftThreshold is the tolerated relative path-universe change.
	// Zero selects the default (0.2); a negative value disables the
	// drift guard while still reporting path-universe sizes and drift.
	// (SkipPathUniverse disables the counting itself.)
	DriftThreshold float64
	// SkipPathUniverse disables path-universe counting (it is the
	// expensive step; §8 engineers run it daily, not per change).
	SkipPathUniverse bool
	// PathBudget caps path enumeration (0 = unlimited).
	PathBudget int
}

// Result is a complete change-evaluation report.
type Result struct {
	Verdict Verdict

	// Results are the post-change test outcomes.
	Results []testkit.Result
	// BeforeCoverage and AfterCoverage are the headline metrics of the
	// suite on each state.
	BeforeCoverage report.Metrics
	AfterCoverage  report.Metrics
	// Regressions are devices whose coverage dropped.
	Regressions []report.Regression
	// PathsBefore/PathsAfter are path-universe sizes (0 when skipped).
	PathsBefore, PathsAfter int
	// Drift is the relative path-universe change.
	Drift        float64
	DriftFlagged bool
}

// Run evaluates a change.
func Run(cfg Config) (*Result, error) {
	if cfg.Before == nil || cfg.After == nil {
		return nil, fmt.Errorf("pipeline: Before and After builders are required")
	}
	if cfg.RegressionEpsilon == 0 {
		cfg.RegressionEpsilon = 0.01
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.2
	}

	evaluate := func(build func() (*netmodel.Network, error)) (*netmodel.Network, []testkit.Result, *report.Snapshot, error) {
		net, err := build()
		if err != nil {
			return nil, nil, nil, err
		}
		if !net.MatchSetsComputed() {
			net.ComputeMatchSets()
		}
		trace := core.NewTrace()
		results := cfg.Suite.Run(net, trace)
		cov := core.NewCoverage(net, trace)
		snap := report.TakeSnapshot(cov)
		if !cfg.SkipPathUniverse {
			n, _ := dataplane.EnumeratePaths(net, dataplane.EdgeStarts(net),
				dataplane.EnumOpts{MaxPaths: cfg.PathBudget}, func(dataplane.Path) bool { return true })
			snap.PathUniverse = n
		}
		return net, results, snap, nil
	}

	_, _, beforeSnap, err := evaluate(cfg.Before)
	if err != nil {
		return nil, fmt.Errorf("pipeline: before state: %w", err)
	}
	_, afterResults, afterSnap, err := evaluate(cfg.After)
	if err != nil {
		return nil, fmt.Errorf("pipeline: after state: %w", err)
	}

	res := &Result{
		Results:        afterResults,
		BeforeCoverage: beforeSnap.Total,
		AfterCoverage:  afterSnap.Total,
		Regressions:    report.CompareSnapshots(beforeSnap, afterSnap, cfg.RegressionEpsilon),
		PathsBefore:    beforeSnap.PathUniverse,
		PathsAfter:     afterSnap.PathUniverse,
	}
	if !cfg.SkipPathUniverse {
		res.Drift, res.DriftFlagged = report.PathUniverseDrift(beforeSnap.PathUniverse, afterSnap.PathUniverse, cfg.DriftThreshold)
		if cfg.DriftThreshold < 0 { // guard disabled: report drift, never flag
			res.DriftFlagged = false
		}
	}

	switch {
	case anyFailed(afterResults):
		res.Verdict = TestsFailed
	case len(res.Regressions) > 0:
		res.Verdict = CoverageRegressed
	case res.DriftFlagged:
		res.Verdict = UniverseDrifted
	default:
		res.Verdict = Safe
	}
	return res, nil
}

func anyFailed(results []testkit.Result) bool {
	for _, r := range results {
		if !r.Pass() {
			return true
		}
	}
	return false
}
