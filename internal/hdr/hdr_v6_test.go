package hdr

import (
	"math"
	"math/big"
	"net/netip"
	"testing"
)

func TestV6SpaceBasics(t *testing.T) {
	s := NewSpaceV6()
	if s.Family() != V6 || s.IPBits() != 128 {
		t.Fatalf("family=%v ipBits=%d", s.Family(), s.IPBits())
	}
	if s.NumBits() != 2*128+ProtoBits+DstPortBits+SrcPortBits {
		t.Fatalf("numBits = %d", s.NumBits())
	}
	want := new(big.Int).Lsh(big.NewInt(1), uint(s.NumBits()))
	if s.Full().Count().Cmp(want) != 0 {
		t.Error("full count wrong")
	}
}

func TestV6PrefixFractions(t *testing.T) {
	s := NewSpaceV6()
	cases := []struct {
		prefix string
		frac   float64
	}{
		{"::/0", 1},
		{"2001:db8::/32", math.Pow(2, -32)},
		{"fd00::/8", math.Pow(2, -8)},
		{"fd00:1:2::/48", math.Pow(2, -48)},
	}
	for _, c := range cases {
		got := s.DstPrefix(netip.MustParsePrefix(c.prefix)).Fraction()
		if math.Abs(got-c.frac) > c.frac*1e-12 {
			t.Errorf("%s fraction = %g, want %g", c.prefix, got, c.frac)
		}
	}
	// Nesting.
	p32 := s.DstPrefix(netip.MustParsePrefix("2001:db8::/32"))
	p48 := s.DstPrefix(netip.MustParsePrefix("2001:db8:7::/48"))
	if !p32.Contains(p48) || p48.Contains(p32) {
		t.Error("v6 nesting wrong")
	}
}

func TestV6SingletonSampleTrace(t *testing.T) {
	s := NewSpaceV6()
	p := Packet{
		Dst:     netip.MustParseAddr("2001:db8::42"),
		Src:     netip.MustParseAddr("fd00::9"),
		Proto:   58, // ICMPv6
		DstPort: 0, SrcPort: 0,
	}
	set := s.Singleton(p)
	if set.Count().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("singleton count = %v", set.Count())
	}
	if !set.ContainsPacket(p) {
		t.Fatal("membership")
	}
	got, ok := set.Sample()
	if !ok || got != p {
		t.Fatalf("sample = %v", got)
	}
}

func TestV6CubesRoundTrip(t *testing.T) {
	s := NewSpaceV6()
	set := s.DstPrefix(netip.MustParsePrefix("fd00:1::/64")).Intersect(s.Proto(6)).
		Union(s.SrcPrefix(netip.MustParsePrefix("2001:db8::/32")))
	back, err := s.FromCubes(set.Cubes())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(set) {
		t.Fatal("v6 cube round trip failed")
	}
}

func TestV6DstPrefixes(t *testing.T) {
	s := NewSpaceV6()
	in := []netip.Prefix{
		netip.MustParsePrefix("fd00:1::/64"),
		netip.MustParsePrefix("2001:db8:9::/48"),
	}
	set := s.FromDstPrefixes(in)
	got, complete := set.DstPrefixes(0)
	if !complete {
		t.Fatal("incomplete")
	}
	if !s.FromDstPrefixes(got).Equal(set) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestV6RewriteDst(t *testing.T) {
	s := NewSpaceV6()
	in := s.DstPrefix(netip.MustParsePrefix("fd00::/16")).Intersect(s.DstPort(443))
	vip := netip.MustParseAddr("2001:db8::80")
	out := in.RewriteDstIP(vip)
	if !s.DstIP(vip).Contains(out) || !s.DstPort(443).Contains(out) {
		t.Error("v6 rewrite wrong")
	}
}

func TestFamilyMismatchPanics(t *testing.T) {
	s4, s6 := NewSpace(), NewSpaceV6()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("v6 prefix in v4 space", func() { s4.DstPrefix(netip.MustParsePrefix("fd00::/16")) })
	mustPanic("v4 prefix in v6 space", func() { s6.DstPrefix(netip.MustParsePrefix("10.0.0.0/8")) })
	mustPanic("v4 addr in v6 space", func() { s6.DstIP(netip.MustParseAddr("10.0.0.1")) })
}
