package hdr

import (
	"math/big"
	"net/netip"
	"testing"
)

// expectCount asserts Count() == 2^(numBits - plen) for a single
// destination prefix — the exact point where the hybrid counter's
// narrow (128-bit) representation hands off to big.Int.
func expectCount(t *testing.T, s *Space, set Set, shift int) {
	t.Helper()
	want := new(big.Int).Lsh(big.NewInt(1), uint(shift))
	if got := set.Count(); got.Cmp(want) != 0 {
		t.Errorf("%s: Count = %v, want 2^%d", s.Family(), got, shift)
	}
}

// TestCountCrossoverV4 walks destination prefix lengths across the
// 2^64 boundary in the 104-bit V4 space: /40 counts exactly 2^64,
// /39 is the first count above uint64 (still narrow), /41 the last
// below it.
func TestCountCrossoverV4(t *testing.T) {
	s := NewSpace()
	if s.NumBits() != 104 {
		t.Fatalf("V4 space is %d bits, test assumes 104", s.NumBits())
	}
	base := netip.MustParseAddr("10.0.0.0")
	for _, plen := range []int{0, 8, 32} {
		expectCount(t, s, s.DstPrefix(netip.PrefixFrom(base, plen)), s.NumBits()-plen)
	}
	// Cross 2^64 precisely: DstPrefix(/32) fixes 32 bits (2^72 left,
	// above uint64); adding src /32 and both exact ports fixes 96
	// bits (2^8 left, far below). The boundary itself: fix 40 bits
	// → 2^64 exactly.
	dst32 := s.DstPrefix(netip.PrefixFrom(base, 32))
	expectCount(t, s, dst32, 72)
	fix40 := dst32.Intersect(s.Proto(6)) // +8 bits → 2^64 exactly
	expectCount(t, s, fix40, 64)
	fix48 := fix40.Intersect(s.SrcPrefix(netip.PrefixFrom(base, 8))) // 2^56
	expectCount(t, s, fix48, 56)
	// All three stay on the narrow path; Fraction must agree.
	if f := fix40.Fraction(); f != 1.0/(1<<40) {
		t.Errorf("fraction = %g, want 2^-40", f)
	}
}

// TestCountCrossoverV6 crosses the 2^128 boundary in the 296-bit V6
// space: a /168 of fixed bits leaves exactly 2^128 assignments — the
// first count that no longer fits the narrow representation — while
// /169 (2^127) is the last narrow one.
func TestCountCrossoverV6(t *testing.T) {
	s := NewSpaceV6()
	if s.NumBits() != 296 {
		t.Fatalf("V6 space is %d bits, test assumes 296", s.NumBits())
	}
	base := netip.MustParseAddr("2001:db8::")
	// dst /128 + src /plen + proto + both ports fixes 168+plen bits... keep
	// it simple: fix k bits via dst prefix and src prefix.
	dstFull := s.DstIP(base) // 128 bits fixed → 2^168 left (wide)
	expectCount(t, s, dstFull, 168)
	for _, srcLen := range []int{0, 39, 40, 41, 128} {
		set := dstFull.Intersect(s.SrcPrefix(netip.PrefixFrom(base, srcLen)))
		// 128+srcLen bits fixed: srcLen=40 leaves 2^128 (first wide
		// after full dst), srcLen=41 leaves 2^127 (narrow).
		expectCount(t, s, set, 168-srcLen)
	}
	// Mixed-width DAG: union of a wide set and a narrow set must count
	// exactly (2^168 + 2^8 distinct assignments minus overlap handled
	// by BDD semantics — use disjoint dst IPs so it's a pure sum).
	other := s.DstIP(netip.MustParseAddr("2001:db8::1")).
		Intersect(s.SrcIP(base)).
		Intersect(s.Proto(17)).
		Intersect(s.DstPortRange(0, 0)).
		Intersect(s.SrcPortRange(0, 255)) // 2^8 assignments
	u := dstFull.Union(other)
	want := new(big.Int).Lsh(big.NewInt(1), 168)
	want.Add(want, big.NewInt(256))
	if got := u.Count(); got.Cmp(want) != 0 {
		t.Errorf("mixed union: Count = %v, want 2^168+256", got)
	}
}

// TestCountAllocsV4 pins the fast path: a warm Count on a V4 set must
// not allocate per node, and Fraction must not allocate at all.
func TestCountAllocsV4(t *testing.T) {
	s := NewSpace()
	set := s.DstPrefix(netip.MustParsePrefix("10.0.0.0/9")).
		Union(s.SrcPortRange(1000, 2000)).
		Diff(s.Proto(6))
	set.Count() // warm the memo
	if allocs := testing.AllocsPerRun(100, func() { set.Count() }); allocs > 4 {
		t.Errorf("warm Count: %v allocs/op, want <= 4", allocs)
	}
	set.Fraction()
	if allocs := testing.AllocsPerRun(100, func() { set.Fraction() }); allocs != 0 {
		t.Errorf("warm Fraction: %v allocs/op, want 0", allocs)
	}
}
