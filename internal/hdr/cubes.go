package hdr

import (
	"fmt"

	"yardstick/internal/bdd"
)

// Cubes serializes the set exactly as ternary cube strings of
// Space.NumBits characters each ('0', '1', or '-' for don't-care). The
// union of the cubes is the set; FromCubes inverts the encoding. Cube
// lists are the on-disk representation of coverage traces.
func (a Set) Cubes() []string {
	var out []string
	buf := make([]byte, a.sp.numBits)
	a.sp.m.AllSat(a.n, func(cube []byte) bool {
		for i, v := range cube {
			switch v {
			case 0:
				buf[i] = '0'
			case 1:
				buf[i] = '1'
			default:
				buf[i] = '-'
			}
		}
		out = append(out, string(buf))
		return true
	})
	return out
}

// FromCubes rebuilds a set from ternary cube strings.
func (s *Space) FromCubes(cubes []string) (Set, error) {
	n := bdd.False
	for i, c := range cubes {
		if len(c) != s.numBits {
			return Set{}, fmt.Errorf("hdr: cube %d has length %d, want %d", i, len(c), s.numBits)
		}
		cn := bdd.True
		for v := s.numBits - 1; v >= 0; v-- {
			switch c[v] {
			case '1':
				cn = s.m.And(cn, s.m.Var(v))
			case '0':
				cn = s.m.And(cn, s.m.NVar(v))
			case '-':
			default:
				return Set{}, fmt.Errorf("hdr: cube %d has invalid character %q", i, c[v])
			}
		}
		n = s.m.Or(n, cn)
	}
	return Set{s, n}, nil
}
