package hdr

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestDstPrefixesSimple(t *testing.T) {
	s := NewSpace()
	in := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("192.168.1.0/24"),
	}
	set := s.FromDstPrefixes(in)
	got, complete := set.DstPrefixes(0)
	if !complete {
		t.Fatal("decomposition incomplete")
	}
	// Round trip: same set.
	if !s.FromDstPrefixes(got).Equal(set) {
		t.Fatalf("round trip failed: %v", got)
	}
	if len(got) != 2 {
		t.Errorf("got %d prefixes, want 2: %v", len(got), got)
	}
}

func TestDstPrefixesFullAndEmpty(t *testing.T) {
	s := NewSpace()
	got, complete := s.Full().DstPrefixes(0)
	if !complete || len(got) != 1 || got[0] != netip.MustParsePrefix("0.0.0.0/0") {
		t.Errorf("full space = %v", got)
	}
	got, complete = s.Empty().DstPrefixes(0)
	if !complete || len(got) != 0 {
		t.Errorf("empty space = %v", got)
	}
}

func TestDstPrefixesIgnoresOtherFields(t *testing.T) {
	s := NewSpace()
	set := s.DstPrefix(netip.MustParsePrefix("10.0.0.0/8")).Intersect(s.DstPort(443))
	got, complete := set.DstPrefixes(0)
	if !complete || len(got) != 1 || got[0] != netip.MustParsePrefix("10.0.0.0/8") {
		t.Errorf("projection = %v", got)
	}
}

func TestDstPrefixesAdjacentMerge(t *testing.T) {
	// Two adjacent /25s form one /24 in the BDD (canonical form), so the
	// decomposition returns the /24.
	s := NewSpace()
	set := s.FromDstPrefixes([]netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/25"),
		netip.MustParsePrefix("10.0.0.128/25"),
	})
	got, _ := set.DstPrefixes(0)
	if len(got) != 1 || got[0] != netip.MustParsePrefix("10.0.0.0/24") {
		t.Errorf("adjacent /25s = %v, want one /24", got)
	}
}

func TestDstPrefixesInteriorDontCare(t *testing.T) {
	// dst bit pattern 10.x.0.0/16 for x in {0,128}: second octet's MSB
	// free, rest fixed — an interior don't-care that must split.
	s := NewSpace()
	set := s.FromDstPrefixes([]netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/16"),
		netip.MustParsePrefix("10.128.0.0/16"),
	})
	got, complete := set.DstPrefixes(0)
	if !complete {
		t.Fatal("incomplete")
	}
	if !s.FromDstPrefixes(got).Equal(set) {
		t.Fatalf("round trip failed: %v", got)
	}
}

func TestDstPrefixesBudget(t *testing.T) {
	s := NewSpace()
	var in []netip.Prefix
	for i := 0; i < 16; i++ {
		in = append(in, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(2 * i), 0, 0}), 16))
	}
	set := s.FromDstPrefixes(in)
	got, complete := set.DstPrefixes(4)
	if complete || len(got) != 4 {
		t.Errorf("budgeted decomposition: %d prefixes, complete=%v", len(got), complete)
	}
}

func TestDstPrefixesRoundTripRandom(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		var in []netip.Prefix
		for i := rng.Intn(6) + 1; i > 0; i-- {
			bits := rng.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			in = append(in, netip.PrefixFrom(addr, bits).Masked())
		}
		set := s.FromDstPrefixes(in)
		got, complete := set.DstPrefixes(0)
		if !complete {
			t.Fatalf("trial %d incomplete", trial)
		}
		if !s.FromDstPrefixes(got).Equal(set) {
			t.Fatalf("trial %d: round trip failed (%v -> %v)", trial, in, got)
		}
	}
}

func TestDstProjection(t *testing.T) {
	s := NewSpace()
	set := s.DstPrefix(netip.MustParsePrefix("10.0.0.0/8")).Intersect(s.Proto(6))
	proj := set.DstProjection()
	if !proj.Equal(s.DstPrefix(netip.MustParsePrefix("10.0.0.0/8"))) {
		t.Error("projection should drop the proto constraint")
	}
}
