package hdr

import (
	"fmt"

	"yardstick/internal/bdd"
)

// Transfer is a reusable copy session importing sets from one space into
// another (see bdd.Transfer). The session holds one memo across every
// Move, so moving many sets between the same pair of spaces — a trace's
// per-location results during a parallel merge — shares the DAG walk and
// allocates the memo once instead of per set. When the source space is a
// Clone of the destination (or vice versa), shared-prefix nodes are
// recognized and skipped, making a merge O(new nodes).
//
// The session reads src's manager and writes dst's; hold both spaces
// single-threaded for its lifetime, and do not grow src while it is
// live. Charged work counts against dst's limits and watched context.
type Transfer struct {
	src, dst *Space
	tr       *bdd.Transfer
}

// NewTransfer starts a transfer session from src into dst. The spaces
// must be of the same family (and therefore the same width).
func NewTransfer(src, dst *Space) *Transfer {
	if src == nil || dst == nil {
		panic("hdr: NewTransfer with nil space")
	}
	if src.family != dst.family {
		panic(fmt.Sprintf("hdr: NewTransfer across families (%v -> %v)", src.family, dst.family))
	}
	return &Transfer{src: src, dst: dst, tr: dst.m.BeginTransfer(src.m)}
}

// Src returns the session's source space.
func (t *Transfer) Src() *Space { return t.src }

// Dst returns the session's destination space.
func (t *Transfer) Dst() *Space { return t.dst }

// Move imports a set from the session's source space and returns the
// equivalent set in the destination, canonical there (node-equal to the
// same set built natively).
func (t *Transfer) Move(a Set) Set {
	if a.sp != t.src {
		panic("hdr: Move of a set from outside the session's source space")
	}
	return Set{t.dst, t.tr.Copy(a.n)}
}

// TransferTo copies the set into dst's BDD space and returns the
// equivalent set there. Spaces must be of the same family. The transfer
// is an exact node-by-node DAG copy (bdd.Manager.CopyFrom) — no cube
// round-trip — so it is linear in the set's representation size and the
// result is canonical in dst: a transferred set is node-equal to the
// same set built natively in dst.
//
// Callers moving several sets between the same pair of spaces should
// hold a Transfer session instead and amortize the memo.
//
// The copy reads the source manager and writes dst's, so the caller must
// hold both spaces single-threaded for the duration. Charged work counts
// against dst's limits and watched context. Transferring to the set's own
// space returns the set unchanged.
func (a Set) TransferTo(dst *Space) Set {
	if a.sp == nil {
		panic("hdr: TransferTo of zero Set")
	}
	if dst == nil {
		panic("hdr: TransferTo to nil space")
	}
	if a.sp == dst {
		return a
	}
	if a.sp.family != dst.family {
		panic(fmt.Sprintf("hdr: TransferTo across families (%v -> %v)", a.sp.family, dst.family))
	}
	return Set{dst, dst.m.CopyFrom(a.sp.m, a.n)}
}
