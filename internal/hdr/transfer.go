package hdr

import "fmt"

// TransferTo copies the set into dst's BDD space and returns the
// equivalent set there. Spaces must be of the same family. The transfer
// is an exact node-by-node DAG copy (bdd.Manager.CopyFrom) — no cube
// round-trip — so it is linear in the set's representation size and the
// result is canonical in dst: a transferred set is node-equal to the
// same set built natively in dst.
//
// The copy reads the source manager and writes dst's, so the caller must
// hold both spaces single-threaded for the duration. Charged work counts
// against dst's limits and watched context. Transferring to the set's own
// space returns the set unchanged.
func (a Set) TransferTo(dst *Space) Set {
	if a.sp == nil {
		panic("hdr: TransferTo of zero Set")
	}
	if dst == nil {
		panic("hdr: TransferTo to nil space")
	}
	if a.sp == dst {
		return a
	}
	if a.sp.family != dst.family {
		panic(fmt.Sprintf("hdr: TransferTo across families (%v -> %v)", a.sp.family, dst.family))
	}
	return Set{dst, dst.m.CopyFrom(a.sp.m, a.n)}
}
