package hdr

import (
	"net/netip"

	"yardstick/internal/bdd"
)

// DstPrefixes decomposes the set's destination-IP projection into a list
// of CIDR prefixes — the human-readable form gap reports print ("rule r
// is untested for destinations 10.1.0.0/16, …").
//
// The set is first projected onto the destination field (everything else
// existentially quantified), then the BDD's cubes are emitted. A cube
// whose don't-care bits form a suffix is one prefix; a cube with interior
// don't-care bits is split recursively. max bounds the number of
// prefixes returned (0 = unlimited); the second result reports whether
// the decomposition is complete.
func (a Set) DstPrefixes(max int) ([]netip.Prefix, bool) {
	s := a.sp
	proj := s.m.ExistsCube(a.n, s.nonDstCube())

	var out []netip.Prefix
	complete := true
	s.m.AllSat(proj, func(cube []byte) bool {
		prefixes := cubeToPrefixes(cube[s.dstOff:s.dstOff+s.ipBits], s.family)
		for _, p := range prefixes {
			if max > 0 && len(out) >= max {
				complete = false
				return false
			}
			out = append(out, p)
		}
		return true
	})
	return out, complete
}

// nonDstCube returns the cube of every variable outside the destination
// field (cached lazily would be possible; projections are rare).
func (s *Space) nonDstCube() bdd.Node {
	var vars []int
	for v := 0; v < s.numBits; v++ {
		if v < s.dstOff || v >= s.dstOff+s.ipBits {
			vars = append(vars, v)
		}
	}
	return s.m.Cube(vars)
}

// cubeToPrefixes converts one ternary cube over the destination bits
// (MSB first; 0, 1, or 2 = don't care) into CIDR prefixes. Don't-care
// bits after the last constrained bit fold into the prefix length;
// interior don't-cares split the cube in two.
func cubeToPrefixes(cube []byte, f Family) []netip.Prefix {
	// Find the last constrained bit.
	last := -1
	for i, v := range cube {
		if v != 2 {
			last = i
		}
	}
	// Look for an interior don't-care.
	for i := 0; i < last; i++ {
		if cube[i] == 2 {
			lo := make([]byte, len(cube))
			hi := make([]byte, len(cube))
			copy(lo, cube)
			copy(hi, cube)
			lo[i] = 0
			hi[i] = 1
			return append(cubeToPrefixes(lo, f), cubeToPrefixes(hi, f)...)
		}
	}
	// Contiguous: bits 0..last are constrained.
	bytes := make([]byte, len(cube)/8)
	for i := 0; i <= last; i++ {
		if cube[i] == 1 {
			bytes[i/8] |= 1 << (7 - i%8)
		}
	}
	var addr netip.Addr
	if f == V4 {
		addr = netip.AddrFrom4([4]byte(bytes))
	} else {
		addr = netip.AddrFrom16([16]byte(bytes))
	}
	return []netip.Prefix{netip.PrefixFrom(addr, last+1)}
}

// DstProjection returns the set with all non-destination fields freed:
// the set of destinations the packets can carry, extended over the full
// header space.
func (a Set) DstProjection() Set {
	return Set{a.sp, a.sp.m.ExistsCube(a.n, a.sp.nonDstCube())}
}

// FromDstPrefixes builds the union of destination-prefix sets — the
// inverse of DstPrefixes for destination-only sets.
func (s *Space) FromDstPrefixes(prefixes []netip.Prefix) Set {
	n := bdd.False
	for _, p := range prefixes {
		n = s.m.Or(n, s.DstPrefix(p).n)
	}
	return Set{s, n}
}
