package hdr

import (
	"yardstick/internal/bdd"
	"yardstick/internal/obs"
)

// Registry metric names for BDD engine counters. One set of names is
// shared by every space that flushes — the canonical engine and each
// sharded replica all add into the same totals.
const (
	MetricBDDOps          = "yardstick_bdd_ops_total"
	MetricBDDCacheHits    = "yardstick_bdd_cache_hits_total"
	MetricBDDCacheMisses  = "yardstick_bdd_cache_misses_total"
	MetricBDDNodes        = "yardstick_bdd_nodes_allocated_total"
	MetricBDDUniqResizes  = "yardstick_bdd_unique_resizes_total"
	MetricBDDCacheResizes = "yardstick_bdd_cache_resizes_total"
)

// FlushStats drains the movement of the space's BDD counters since the
// `since` baseline into a span (per-stage metrics shown in the flame
// report) and a registry (cumulative Prometheus totals), returning the
// current stats as the next baseline.
//
// This is the flush-at-span-boundary half of the observability design:
// the manager keeps cheap non-atomic counters on its hot path, and
// instrumented callers settle the delta once per stage. Both sp and reg
// may be nil (each side no-ops independently).
func (s *Space) FlushStats(sp *obs.Span, reg *obs.Registry, since bdd.Stats) bdd.Stats {
	cur := s.m.Stats()
	if sp == nil && reg == nil {
		return cur
	}
	d := cur.Delta(since)
	// Node allocations never shrink, so the gauge-style Nodes field
	// diffs like a counter; a replica baseline taken at build time makes
	// this the per-stage allocation count.
	nodes := uint64(0)
	if cur.Nodes > since.Nodes {
		nodes = uint64(cur.Nodes - since.Nodes)
	}
	// Zero deltas stay off the span: a stage that did no BDD work keeps
	// a clean line in the flame report.
	addNonZero := func(key string, v uint64) {
		if v != 0 {
			sp.Add(key, int64(v))
		}
	}
	addNonZero("bdd_ops", d.Ops)
	addNonZero("bdd_cache_hits", d.CacheHits)
	addNonZero("bdd_cache_misses", d.CacheMisses)
	addNonZero("bdd_nodes", nodes)
	addNonZero("bdd_resizes", d.UniqueResizes+d.CacheResizes)
	if reg != nil {
		reg.Counter(MetricBDDOps).Add(d.Ops)
		reg.Counter(MetricBDDCacheHits).Add(d.CacheHits)
		reg.Counter(MetricBDDCacheMisses).Add(d.CacheMisses)
		reg.Counter(MetricBDDNodes).Add(nodes)
		reg.Counter(MetricBDDUniqResizes).Add(d.UniqueResizes)
		reg.Counter(MetricBDDCacheResizes).Add(d.CacheResizes)
	}
	return cur
}

// RegisterHelp installs HELP text for the BDD metric names on reg, so
// any exposition endpoint describes them even before the first flush.
func RegisterHelp(reg *obs.Registry) {
	reg.SetHelp(MetricBDDOps, "Charged BDD apply-loop steps")
	reg.SetHelp(MetricBDDCacheHits, "BDD op-cache hits")
	reg.SetHelp(MetricBDDCacheMisses, "BDD op-cache misses")
	reg.SetHelp(MetricBDDNodes, "BDD nodes allocated")
	reg.SetHelp(MetricBDDUniqResizes, "BDD unique-table doubling events")
	reg.SetHelp(MetricBDDCacheResizes, "BDD op-cache doubling events")
}
