package hdr

import (
	"math/rand"
	"net/netip"
	"testing"
)

// randomRuleSet builds a set shaped like the match sets rules produce:
// destination/source prefixes intersected with optional protocol and port
// constraints, combined across a few "rules" with union and difference
// (difference mirrors longest-prefix-match shadowing).
func randomRuleSet(sp *Space, rng *rand.Rand) Set {
	ruleTerm := func() Set {
		s := sp.DstPrefix(randomPrefix(sp, rng))
		if rng.Intn(2) == 0 {
			s = s.Intersect(sp.SrcPrefix(randomPrefix(sp, rng)))
		}
		switch rng.Intn(3) {
		case 0:
			s = s.Intersect(sp.Proto(uint8(rng.Intn(256))))
		case 1:
			lo := uint16(rng.Intn(60000))
			s = s.Intersect(sp.DstPortRange(lo, lo+uint16(rng.Intn(5000))))
		}
		return s
	}
	acc := ruleTerm()
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		if rng.Intn(4) == 0 {
			acc = acc.Diff(ruleTerm())
		} else {
			acc = acc.Union(ruleTerm())
		}
	}
	return acc
}

func randomPrefix(sp *Space, rng *rand.Rand) netip.Prefix {
	if sp.Family() == V4 {
		var b [4]byte
		rng.Read(b[:])
		return netip.PrefixFrom(netip.AddrFrom4(b), rng.Intn(33))
	}
	var b [16]byte
	rng.Read(b[:])
	return netip.PrefixFrom(netip.AddrFrom16(b), rng.Intn(129))
}

func TestTransferToPropertyRoundTrip(t *testing.T) {
	for _, fam := range []Family{V4, V6} {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			src := NewFamilySpace(fam)
			dst := NewFamilySpace(fam)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 60; i++ {
				a := randomRuleSet(src, rng)
				b := a.TransferTo(dst)

				if b.Space() != dst {
					t.Fatalf("case %d: transferred set not in destination space", i)
				}
				if a.IsEmpty() != b.IsEmpty() {
					t.Errorf("case %d: IsEmpty %v -> %v", i, a.IsEmpty(), b.IsEmpty())
				}
				if a.Count().Cmp(b.Count()) != 0 {
					t.Errorf("case %d: Count %v -> %v", i, a.Count(), b.Count())
				}
				if a.Fraction() != b.Fraction() {
					t.Errorf("case %d: Fraction %v -> %v", i, a.Fraction(), b.Fraction())
				}
				// Round-trip back: the returned set must be node-equal to
				// the original (Equal is index equality in one manager).
				back := b.TransferTo(src)
				if !back.Equal(a) {
					t.Errorf("case %d: round-trip not Equal to original", i)
				}
				// And algebra composes across transferred sets: the
				// complement transfers to the complement.
				if !a.Negate().TransferTo(dst).Equal(b.Negate()) {
					t.Errorf("case %d: negation does not commute with transfer", i)
				}
			}
		})
	}
}

func TestTransferToSameSpaceIsIdentity(t *testing.T) {
	sp := NewSpace()
	rng := rand.New(rand.NewSource(7))
	a := randomRuleSet(sp, rng)
	if got := a.TransferTo(sp); !got.Equal(a) || got.Space() != sp {
		t.Error("TransferTo own space should return the set unchanged")
	}
}

func TestTransferToCrossFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic transferring V4 set to V6 space")
		}
	}()
	NewSpace().Full().TransferTo(NewSpaceV6())
}
