// Package hdr models packet header spaces as BDD-backed sets.
//
// A packet header is the 5-tuple (dstIP, srcIP, proto, dstPort, srcPort)
// over one address family: 104 bits for IPv4, 296 for IPv6 — the paper's
// case-study network is dual-stack (/31 IPv4 and /126 IPv6 point-to-point
// prefixes), and per-family forwarding state is analyzed in its own
// space, as dataplane verifiers do. A Set is an arbitrary set of headers,
// represented canonically as a BDD, so equality is O(1) and the algebra
// of Figure 5 in the paper (empty, negate, union, intersect, equal,
// fromRule, count) runs in time proportional to the BDD sizes rather
// than the (astronomical) cardinality of the sets.
//
// Variable order places dstIP first, most significant bit at the top:
// forwarding state branches overwhelmingly on destination prefixes, and
// this order keeps FIB match sets near-linear in the number of prefixes.
package hdr

import (
	"context"
	"fmt"
	"math/big"
	"net/netip"

	"yardstick/internal/bdd"
)

// Family selects the address family of a Space.
type Family uint8

// Address families.
const (
	V4 Family = iota
	V6
)

func (f Family) String() string {
	if f == V6 {
		return "ipv6"
	}
	return "ipv4"
}

// ipBits returns the address width of the family.
func (f Family) ipBits() int {
	if f == V6 {
		return 128
	}
	return 32
}

// Fixed field widths shared by both families.
const (
	ProtoBits   = 8
	DstPortBits = 16
	SrcPortBits = 16
)

// Legacy IPv4 layout constants (the default Space).
const (
	DstIPBits = 32
	SrcIPBits = 32

	// NumBits is the total width of the IPv4 header space. IPv6 spaces
	// are wider; use Space.NumBits for family-correct code.
	NumBits = 2*32 + ProtoBits + DstPortBits + SrcPortBits
)

// Space owns the BDD universe for one analysis. It is not safe for
// concurrent use.
type Space struct {
	m      *bdd.Manager
	family Family

	ipBits     int
	dstOff     int
	srcOff     int
	protoOff   int
	dstPortOff int
	srcPortOff int
	numBits    int

	dstCube bdd.Node // cube of all dstIP variables, for quantification
	srcCube bdd.Node
}

// NewSpace returns a fresh IPv4 header space.
func NewSpace() *Space { return NewFamilySpace(V4) }

// NewSpaceV6 returns a fresh IPv6 header space.
func NewSpaceV6() *Space { return NewFamilySpace(V6) }

// NewFamilySpace returns a fresh header space of the given family.
func NewFamilySpace(f Family) *Space {
	ip := f.ipBits()
	s := &Space{
		family:     f,
		ipBits:     ip,
		dstOff:     0,
		srcOff:     ip,
		protoOff:   2 * ip,
		dstPortOff: 2*ip + ProtoBits,
		srcPortOff: 2*ip + ProtoBits + DstPortBits,
	}
	s.numBits = s.srcPortOff + SrcPortBits
	s.m = bdd.New(s.numBits)
	dstVars := make([]int, ip)
	srcVars := make([]int, ip)
	for i := 0; i < ip; i++ {
		dstVars[i] = s.dstOff + i
		srcVars[i] = s.srcOff + i
	}
	s.dstCube = s.m.Cube(dstVars)
	s.srcCube = s.m.Cube(srcVars)
	return s
}

// Family returns the space's address family.
func (s *Space) Family() Family { return s.family }

// NumBits returns the total header width of this space.
func (s *Space) NumBits() int { return s.numBits }

// IPBits returns the address width of this space (32 or 128).
func (s *Space) IPBits() int { return s.ipBits }

// Manager exposes the underlying BDD manager (used by tests and internal
// packages that need raw node operations).
func (s *Space) Manager() *bdd.Manager { return s.m }

// SetLimits installs resource budgets on the space's BDD manager and
// clears any previously tripped budget. Set operations that exhaust a
// budget raise a typed panic recovered by bdd.Guard — wrap evaluation
// phases in Guard to turn exhaustion into an ErrBudgetExceeded error.
func (s *Space) SetLimits(l bdd.Limits) { s.m.SetLimits(l) }

// WatchContext makes the space's set operations observe ctx, aborting
// in-flight symbolic work shortly after cancellation (recovered by
// bdd.Guard as an error wrapping ctx.Err()). It returns a restore
// function; use it as
//
//	defer space.WatchContext(ctx)()
func (s *Space) WatchContext(ctx context.Context) (restore func()) {
	return s.m.WatchContext(ctx)
}

// EngineStats reports the underlying BDD manager's counters (node
// counts, unique-table load, op-cache hit/miss, charged ops) for budget
// tuning and degradation diagnosis.
func (s *Space) EngineStats() bdd.Stats { return s.m.Stats() }

// SetCacheConfig installs an op-cache sizing policy on the space's BDD
// manager (see bdd.CacheConfig). Replicated spaces (internal/sharded)
// inherit the canonical space's policy.
func (s *Space) SetCacheConfig(c bdd.CacheConfig) { s.m.SetCacheConfig(c) }

// CacheConfig returns the op-cache sizing policy in effect.
func (s *Space) CacheConfig() bdd.CacheConfig { return s.m.CacheConfig() }

// Set is a set of packet headers within a Space.
type Set struct {
	sp *Space
	n  bdd.Node
}

// Node exposes the underlying BDD node.
func (a Set) Node() bdd.Node { return a.n }

// Space returns the space the set belongs to.
func (a Set) Space() *Space { return a.sp }

// Empty returns the empty set of headers.
func (s *Space) Empty() Set { return Set{s, bdd.False} }

// Full returns the set of all headers.
func (s *Space) Full() Set { return Set{s, bdd.True} }

// FromNode wraps a raw BDD node as a Set.
func (s *Space) FromNode(n bdd.Node) Set { return Set{s, n} }

func (s *Space) check(a, b Set) {
	if a.sp != s || b.sp != s {
		panic("hdr: sets from different spaces")
	}
}

// Union returns a ∪ b.
func (a Set) Union(b Set) Set {
	a.sp.check(a, b)
	return Set{a.sp, a.sp.m.Or(a.n, b.n)}
}

// Intersect returns a ∩ b.
func (a Set) Intersect(b Set) Set {
	a.sp.check(a, b)
	return Set{a.sp, a.sp.m.And(a.n, b.n)}
}

// Diff returns a ∖ b.
func (a Set) Diff(b Set) Set {
	a.sp.check(a, b)
	return Set{a.sp, a.sp.m.Diff(a.n, b.n)}
}

// Negate returns the complement of a.
func (a Set) Negate() Set { return Set{a.sp, a.sp.m.Not(a.n)} }

// Equal reports whether two sets contain the same headers.
func (a Set) Equal(b Set) bool {
	a.sp.check(a, b)
	return a.n == b.n
}

// IsEmpty reports whether the set is empty.
func (a Set) IsEmpty() bool { return a.n == bdd.False }

// IsFull reports whether the set is the full header space.
func (a Set) IsFull() bool { return a.n == bdd.True }

// Contains reports whether b ⊆ a.
func (a Set) Contains(b Set) bool {
	a.sp.check(a, b)
	return a.sp.m.Diff(b.n, a.n) == bdd.False
}

// Overlaps reports whether a ∩ b is non-empty.
func (a Set) Overlaps(b Set) bool {
	a.sp.check(a, b)
	return a.sp.m.And(a.n, b.n) != bdd.False
}

// Fraction returns |a| / 2^NumBits as a float64.
func (a Set) Fraction() float64 { return a.sp.m.SatFraction(a.n) }

// Count returns the exact number of headers in the set.
func (a Set) Count() *big.Int { return a.sp.m.SatCount(a.n) }

// FractionOf returns |a ∩ b| / |b|, the share of b covered by a
// (0 when b is empty).
func (a Set) FractionOf(b Set) float64 {
	a.sp.check(a, b)
	return a.sp.m.SatFractionOf(a.n, b.n)
}

// addrBits converts an address of the space's family to its bits (MSB
// first).
func (s *Space) addrBits(a netip.Addr) []byte {
	if s.family == V4 {
		if !a.Is4() {
			panic(fmt.Sprintf("hdr: address %v is not IPv4 (space family %v)", a, s.family))
		}
		b := a.As4()
		return b[:]
	}
	if !a.Is6() || a.Is4() {
		panic(fmt.Sprintf("hdr: address %v is not IPv6 (space family %v)", a, s.family))
	}
	b := a.As16()
	return b[:]
}

// bitsEqBytes constrains width variables at off to the bytes (MSB first).
func (s *Space) bitsEqBytes(off int, bytes []byte) bdd.Node {
	n := bdd.True
	for i := len(bytes)*8 - 1; i >= 0; i-- {
		bit := bytes[i/8]>>(7-i%8)&1 == 1
		var v bdd.Node
		if bit {
			v = s.m.Var(off + i)
		} else {
			v = s.m.NVar(off + i)
		}
		n = s.m.And(n, v)
	}
	return n
}

// bitsEq constrains width variables starting at off to the low-order
// width bits of value (most significant bit first).
func (s *Space) bitsEq(off, width int, value uint64) bdd.Node {
	n := bdd.True
	for i := width - 1; i >= 0; i-- {
		bit := value>>(width-1-i)&1 == 1
		var v bdd.Node
		if bit {
			v = s.m.Var(off + i)
		} else {
			v = s.m.NVar(off + i)
		}
		n = s.m.And(n, v)
	}
	return n
}

// bitsPrefixBytes constrains the top plen variables at off to the top
// plen bits of the bytes.
func (s *Space) bitsPrefixBytes(off, plen int, bytes []byte) bdd.Node {
	n := bdd.True
	for i := plen - 1; i >= 0; i-- {
		bit := bytes[i/8]>>(7-i%8)&1 == 1
		var v bdd.Node
		if bit {
			v = s.m.Var(off + i)
		} else {
			v = s.m.NVar(off + i)
		}
		n = s.m.And(n, v)
	}
	return n
}

// DstPrefix returns the set of headers whose destination IP lies in p.
func (s *Space) DstPrefix(p netip.Prefix) Set {
	return Set{s, s.bitsPrefixBytes(s.dstOff, p.Bits(), s.addrBits(p.Masked().Addr()))}
}

// SrcPrefix returns the set of headers whose source IP lies in p.
func (s *Space) SrcPrefix(p netip.Prefix) Set {
	return Set{s, s.bitsPrefixBytes(s.srcOff, p.Bits(), s.addrBits(p.Masked().Addr()))}
}

// DstIP returns the set of headers destined exactly to a.
func (s *Space) DstIP(a netip.Addr) Set {
	return Set{s, s.bitsEqBytes(s.dstOff, s.addrBits(a))}
}

// SrcIP returns the set of headers sourced exactly from a.
func (s *Space) SrcIP(a netip.Addr) Set {
	return Set{s, s.bitsEqBytes(s.srcOff, s.addrBits(a))}
}

// Proto returns the set of headers with the given IP protocol.
func (s *Space) Proto(p uint8) Set {
	return Set{s, s.bitsEq(s.protoOff, ProtoBits, uint64(p))}
}

// rangeSet builds the set lo <= field <= hi for a width-bit field at off.
func (s *Space) rangeSet(off, width int, lo, hi uint64) bdd.Node {
	if lo > hi {
		return bdd.False
	}
	ge := s.cmpGE(off, width, lo)
	le := s.cmpLE(off, width, hi)
	return s.m.And(ge, le)
}

// cmpGE returns field >= v.
func (s *Space) cmpGE(off, width int, v uint64) bdd.Node {
	n := bdd.True
	for i := width - 1; i >= 0; i-- {
		bit := v>>(width-1-i)&1 == 1
		x := s.m.Var(off + i)
		if bit {
			n = s.m.And(x, n)
		} else {
			n = s.m.Or(x, n)
		}
	}
	return n
}

// cmpLE returns field <= v.
func (s *Space) cmpLE(off, width int, v uint64) bdd.Node {
	n := bdd.True
	for i := width - 1; i >= 0; i-- {
		bit := v>>(width-1-i)&1 == 1
		nx := s.m.NVar(off + i)
		if bit {
			n = s.m.Or(nx, n)
		} else {
			n = s.m.And(nx, n)
		}
	}
	return n
}

// DstPortRange returns the set of headers with lo <= dstPort <= hi.
func (s *Space) DstPortRange(lo, hi uint16) Set {
	return Set{s, s.rangeSet(s.dstPortOff, DstPortBits, uint64(lo), uint64(hi))}
}

// SrcPortRange returns the set of headers with lo <= srcPort <= hi.
func (s *Space) SrcPortRange(lo, hi uint16) Set {
	return Set{s, s.rangeSet(s.srcPortOff, SrcPortBits, uint64(lo), uint64(hi))}
}

// DstPort returns the set of headers with the given destination port.
func (s *Space) DstPort(p uint16) Set {
	return Set{s, s.bitsEq(s.dstPortOff, DstPortBits, uint64(p))}
}

// SrcPort returns the set of headers with the given source port.
func (s *Space) SrcPort(p uint16) Set {
	return Set{s, s.bitsEq(s.srcPortOff, SrcPortBits, uint64(p))}
}

// Packet is a single concrete packet header. Dst and Src must match the
// family of the space the packet is used with.
type Packet struct {
	Dst, Src         netip.Addr
	Proto            uint8
	DstPort, SrcPort uint16
}

// String renders the packet compactly for reports and traceroutes.
func (p Packet) String() string {
	return fmt.Sprintf("%s->%s proto=%d dport=%d sport=%d", p.Src, p.Dst, p.Proto, p.DstPort, p.SrcPort)
}

// Singleton returns the set containing exactly p.
func (s *Space) Singleton(p Packet) Set {
	n := s.bitsEqBytes(s.dstOff, s.addrBits(p.Dst))
	n = s.m.And(n, s.bitsEqBytes(s.srcOff, s.addrBits(p.Src)))
	n = s.m.And(n, s.bitsEq(s.protoOff, ProtoBits, uint64(p.Proto)))
	n = s.m.And(n, s.bitsEq(s.dstPortOff, DstPortBits, uint64(p.DstPort)))
	n = s.m.And(n, s.bitsEq(s.srcPortOff, SrcPortBits, uint64(p.SrcPort)))
	return Set{s, n}
}

// ContainsPacket reports whether the concrete packet p is in the set.
// Callers testing one packet against many sets (per-rule walks like
// dataplane.Traceroute) should derive the assignment once with
// PacketAssign and use ContainsAssign instead — building the assignment
// dominates the per-set Eval.
func (a Set) ContainsPacket(p Packet) bool {
	return a.sp.m.Eval(a.n, a.sp.packetAssign(p))
}

// ContainsAssign reports whether the packet with the given variable
// assignment (from Space.PacketAssign) is in the set.
func (a Set) ContainsAssign(assign []bool) bool {
	return a.sp.m.Eval(a.n, assign)
}

// PacketAssign derives p's full-width variable assignment, reusing dst's
// storage when it is large enough. The result's length is NumBits; pass
// it to Set.ContainsAssign to test the same packet against many sets
// without re-deriving the bits each time.
func (s *Space) PacketAssign(p Packet, dst []bool) []bool {
	if cap(dst) < s.numBits {
		dst = make([]bool, s.numBits)
	}
	dst = dst[:s.numBits]
	s.fillAssign(dst, p)
	return dst
}

func (s *Space) packetAssign(p Packet) []bool {
	assign := make([]bool, s.numBits)
	s.fillAssign(assign, p)
	return assign
}

func (s *Space) fillAssign(assign []bool, p Packet) {
	putBytes := func(off int, bytes []byte) {
		for i := 0; i < len(bytes)*8; i++ {
			assign[off+i] = bytes[i/8]>>(7-i%8)&1 == 1
		}
	}
	put := func(off, width int, v uint64) {
		for i := 0; i < width; i++ {
			assign[off+i] = v>>(width-1-i)&1 == 1
		}
	}
	putBytes(s.dstOff, s.addrBits(p.Dst))
	putBytes(s.srcOff, s.addrBits(p.Src))
	put(s.protoOff, ProtoBits, uint64(p.Proto))
	put(s.dstPortOff, DstPortBits, uint64(p.DstPort))
	put(s.srcPortOff, SrcPortBits, uint64(p.SrcPort))
}

// Sample returns one packet from the set, or ok=false when it is empty.
// Unconstrained header bits come back as zero.
func (a Set) Sample() (Packet, bool) {
	s := a.sp
	assign, ok := s.m.AnySat(a.n)
	if !ok {
		return Packet{}, false
	}
	getBytes := func(off, width int) []byte {
		out := make([]byte, width/8)
		for i := 0; i < width; i++ {
			if assign[off+i] {
				out[i/8] |= 1 << (7 - i%8)
			}
		}
		return out
	}
	get := func(off, width int) uint64 {
		var v uint64
		for i := 0; i < width; i++ {
			v <<= 1
			if assign[off+i] {
				v |= 1
			}
		}
		return v
	}
	var dst, src netip.Addr
	if s.family == V4 {
		dst = netip.AddrFrom4([4]byte(getBytes(s.dstOff, 32)))
		src = netip.AddrFrom4([4]byte(getBytes(s.srcOff, 32)))
	} else {
		dst = netip.AddrFrom16([16]byte(getBytes(s.dstOff, 128)))
		src = netip.AddrFrom16([16]byte(getBytes(s.srcOff, 128)))
	}
	return Packet{
		Dst:     dst,
		Src:     src,
		Proto:   uint8(get(s.protoOff, ProtoBits)),
		DstPort: uint16(get(s.dstPortOff, DstPortBits)),
		SrcPort: uint16(get(s.srcPortOff, SrcPortBits)),
	}, true
}

// RewriteDstIP returns the image of the set under "destination IP :=
// addr": all packets in a with the destination field replaced by addr.
// This models one-to-many/many-to-one transformations like NAT
// symbolically, via existential quantification followed by the new
// constraint.
func (a Set) RewriteDstIP(addr netip.Addr) Set {
	m := a.sp.m
	q := m.ExistsCube(a.n, a.sp.dstCube)
	return Set{a.sp, m.And(q, a.sp.DstIP(addr).n)}
}

// RewriteSrcIP is RewriteDstIP for the source IP field.
func (a Set) RewriteSrcIP(addr netip.Addr) Set {
	m := a.sp.m
	q := m.ExistsCube(a.n, a.sp.srcCube)
	return Set{a.sp, m.And(q, a.sp.SrcIP(addr).n)}
}

// PreimageDstRewrite returns the set of packets that, after "dstIP :=
// addr", land in the given output set: the whole input set when addr's
// packets are in out, empty otherwise, restricted over the non-dst
// fields of out.
func (a Set) PreimageDstRewrite(addr netip.Addr, out Set) Set {
	m := a.sp.m
	slice := m.And(out.n, out.sp.DstIP(addr).n)
	freed := m.ExistsCube(slice, a.sp.dstCube)
	return Set{a.sp, m.And(a.n, freed)}
}
