package hdr

import (
	"math"
	"math/big"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEmptyFull(t *testing.T) {
	s := NewSpace()
	if !s.Empty().IsEmpty() {
		t.Error("Empty() not empty")
	}
	if !s.Full().IsFull() {
		t.Error("Full() not full")
	}
	if s.Empty().Fraction() != 0 || s.Full().Fraction() != 1 {
		t.Error("fractions of empty/full wrong")
	}
	want := new(big.Int).Lsh(big.NewInt(1), NumBits)
	if s.Full().Count().Cmp(want) != 0 {
		t.Errorf("Full().Count() = %v, want 2^%d", s.Full().Count(), NumBits)
	}
}

func TestDstPrefixFraction(t *testing.T) {
	s := NewSpace()
	cases := []struct {
		prefix string
		frac   float64
	}{
		{"0.0.0.0/0", 1},
		{"10.0.0.0/8", 1.0 / 256},
		{"10.1.0.0/16", 1.0 / 65536},
		{"10.1.2.0/24", 1.0 / (1 << 24)},
		{"10.1.2.3/32", 1.0 / (1 << 32)},
	}
	for _, c := range cases {
		got := s.DstPrefix(mustPrefix(t, c.prefix)).Fraction()
		if math.Abs(got-c.frac) > 1e-18 {
			t.Errorf("DstPrefix(%s).Fraction() = %g, want %g", c.prefix, got, c.frac)
		}
	}
}

func TestPrefixNesting(t *testing.T) {
	s := NewSpace()
	p8 := s.DstPrefix(mustPrefix(t, "10.0.0.0/8"))
	p16 := s.DstPrefix(mustPrefix(t, "10.1.0.0/16"))
	other := s.DstPrefix(mustPrefix(t, "192.168.0.0/16"))
	if !p8.Contains(p16) {
		t.Error("10/8 should contain 10.1/16")
	}
	if p8.Overlaps(other) {
		t.Error("10/8 should not overlap 192.168/16")
	}
	if !p16.Intersect(p8).Equal(p16) {
		t.Error("intersection of nested prefixes should be the narrower")
	}
	// Difference removes the subset exactly.
	d := p8.Diff(p16)
	if d.Overlaps(p16) {
		t.Error("p8∖p16 overlaps p16")
	}
	if !d.Union(p16).Equal(p8) {
		t.Error("(p8∖p16) ∪ p16 != p8")
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(42))
	randSet := func() Set {
		set := s.Empty()
		for i := 0; i < rng.Intn(4)+1; i++ {
			bits := rng.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			p := netip.PrefixFrom(addr, bits).Masked()
			set = set.Union(s.DstPrefix(p))
		}
		if rng.Intn(3) == 0 {
			set = set.Intersect(s.Proto(uint8(rng.Intn(256))))
		}
		return set
	}
	f := func(seed int64) bool {
		a, b := randSet(), randSet()
		// Commutativity, De Morgan, difference identity.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b).Negate().Equal(a.Negate().Intersect(b.Negate())) {
			return false
		}
		if !a.Diff(b).Equal(a.Intersect(b.Negate())) {
			return false
		}
		// Inclusion-exclusion over fractions.
		lhs := a.Union(b).Fraction() + a.Intersect(b).Fraction()
		rhs := a.Fraction() + b.Fraction()
		return math.Abs(lhs-rhs) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPortRange(t *testing.T) {
	s := NewSpace()
	r := s.DstPortRange(100, 199)
	wantFrac := 100.0 / 65536
	if math.Abs(r.Fraction()-wantFrac) > 1e-15 {
		t.Errorf("DstPortRange(100,199).Fraction() = %g, want %g", r.Fraction(), wantFrac)
	}
	for _, port := range []uint16{100, 150, 199} {
		if !r.Contains(s.DstPort(port)) {
			t.Errorf("range should contain port %d", port)
		}
	}
	for _, port := range []uint16{0, 99, 200, 65535} {
		if r.Overlaps(s.DstPort(port)) {
			t.Errorf("range should not contain port %d", port)
		}
	}
	if !s.DstPortRange(0, 65535).IsFull() {
		t.Error("full port range should be the full space")
	}
	if !s.DstPortRange(5, 4).IsEmpty() {
		t.Error("inverted range should be empty")
	}
	if !s.SrcPortRange(23, 23).Equal(s.SrcPort(23)) {
		t.Error("degenerate src range != exact port")
	}
}

func TestPortRangeBruteForce(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		lo := uint16(rng.Intn(300))
		hi := uint16(rng.Intn(300))
		r := s.DstPortRange(lo, hi)
		for probe := 0; probe < 40; probe++ {
			p := uint16(rng.Intn(400))
			want := p >= lo && p <= hi
			got := r.Contains(s.DstPort(p))
			if got != want {
				t.Fatalf("range [%d,%d] port %d: got %v want %v", lo, hi, p, got, want)
			}
		}
	}
}

func TestSingletonAndSample(t *testing.T) {
	s := NewSpace()
	p := Packet{
		Dst:     netip.MustParseAddr("10.1.2.3"),
		Src:     netip.MustParseAddr("192.168.0.9"),
		Proto:   6,
		DstPort: 443,
		SrcPort: 51034,
	}
	set := s.Singleton(p)
	if set.Count().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("singleton count = %v", set.Count())
	}
	if !set.ContainsPacket(p) {
		t.Fatal("singleton does not contain its packet")
	}
	got, ok := set.Sample()
	if !ok || got != p {
		t.Fatalf("Sample() = %v, %v; want %v", got, ok, p)
	}
	if _, ok := s.Empty().Sample(); ok {
		t.Error("Sample of empty set returned a packet")
	}
}

func TestSampleIsMember(t *testing.T) {
	s := NewSpace()
	set := s.DstPrefix(mustPrefix(t, "10.0.0.0/8")).Intersect(s.Proto(17))
	p, ok := set.Sample()
	if !ok {
		t.Fatal("sample failed")
	}
	if !set.ContainsPacket(p) {
		t.Fatalf("sampled packet %v not in set", p)
	}
	if p.Proto != 17 {
		t.Errorf("sampled proto = %d, want 17", p.Proto)
	}
	if p.Dst.As4()[0] != 10 {
		t.Errorf("sampled dst %v not in 10/8", p.Dst)
	}
}

func TestRewriteDstIP(t *testing.T) {
	s := NewSpace()
	in := s.DstPrefix(mustPrefix(t, "10.0.0.0/8")).Intersect(s.SrcPrefix(mustPrefix(t, "172.16.0.0/12")))
	target := netip.MustParseAddr("192.0.2.1")
	out := in.RewriteDstIP(target)
	// All outputs have the rewritten destination.
	if !s.DstIP(target).Contains(out) {
		t.Error("rewrite output has packets with the wrong destination")
	}
	// Source constraint is preserved.
	if !s.SrcPrefix(mustPrefix(t, "172.16.0.0/12")).Contains(out) {
		t.Error("rewrite output lost the source constraint")
	}
	// Many-to-one: the output count equals the input count divided by the
	// size of the quantified dst space within the input (10/8 = 2^24 dsts).
	wantCount := new(big.Int).Div(in.Count(), new(big.Int).Lsh(big.NewInt(1), 24))
	if out.Count().Cmp(wantCount) != 0 {
		t.Errorf("rewrite output count = %v, want %v", out.Count(), wantCount)
	}
}

func TestPreimageDstRewrite(t *testing.T) {
	s := NewSpace()
	in := s.DstPrefix(mustPrefix(t, "10.0.0.0/8"))
	target := netip.MustParseAddr("192.0.2.1")
	// Output set constrains a non-dst field; preimage must reflect it.
	out := s.DstIP(target).Intersect(s.Proto(6))
	pre := in.PreimageDstRewrite(target, out)
	want := in.Intersect(s.Proto(6))
	if !pre.Equal(want) {
		t.Error("preimage mismatch")
	}
	// If the output excludes the target address entirely, preimage is empty.
	out2 := s.DstIP(netip.MustParseAddr("198.51.100.7"))
	if !in.PreimageDstRewrite(target, out2).IsEmpty() {
		t.Error("preimage should be empty when rewrite target not in output set")
	}
}

func TestRewriteSrcIP(t *testing.T) {
	s := NewSpace()
	in := s.SrcPrefix(mustPrefix(t, "10.0.0.0/24")).Intersect(s.DstPort(80))
	target := netip.MustParseAddr("203.0.113.5")
	out := in.RewriteSrcIP(target)
	if !s.SrcIP(target).Contains(out) {
		t.Error("src rewrite wrong source")
	}
	if !s.DstPort(80).Contains(out) {
		t.Error("src rewrite lost dst port constraint")
	}
}

func TestFractionOf(t *testing.T) {
	s := NewSpace()
	whole := s.DstPrefix(mustPrefix(t, "10.0.0.0/8"))
	half := s.DstPrefix(mustPrefix(t, "10.0.0.0/9"))
	if got := half.FractionOf(whole); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionOf nested halves = %v, want 0.5", got)
	}
	if got := whole.FractionOf(s.Empty()); got != 0 {
		t.Errorf("FractionOf empty base = %v, want 0", got)
	}
}

func TestCrossSpacePanics(t *testing.T) {
	s1, s2 := NewSpace(), NewSpace()
	defer func() {
		if recover() == nil {
			t.Error("union across spaces did not panic")
		}
	}()
	s1.Full().Union(s2.Full())
}

func TestDifferentFieldsIndependent(t *testing.T) {
	s := NewSpace()
	a := s.DstPrefix(mustPrefix(t, "10.0.0.0/8"))
	b := s.Proto(6)
	inter := a.Intersect(b)
	wantFrac := a.Fraction() * b.Fraction()
	if math.Abs(inter.Fraction()-wantFrac) > 1e-18 {
		t.Errorf("independent fields: got %g, want %g", inter.Fraction(), wantFrac)
	}
}

func TestCubesRoundTrip(t *testing.T) {
	s := NewSpace()
	sets := []Set{
		s.Empty(),
		s.Full(),
		s.DstPrefix(mustPrefix(t, "10.0.0.0/8")).Intersect(s.Proto(6)),
		s.DstPortRange(100, 199).Union(s.SrcPrefix(mustPrefix(t, "172.16.0.0/12"))),
	}
	for i, set := range sets {
		cubes := set.Cubes()
		back, err := s.FromCubes(cubes)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if !back.Equal(set) {
			t.Fatalf("set %d: cube round trip failed (%d cubes)", i, len(cubes))
		}
	}
	if len(s.Empty().Cubes()) != 0 {
		t.Error("empty set should have no cubes")
	}
}

func TestFromCubesErrors(t *testing.T) {
	s := NewSpace()
	if _, err := s.FromCubes([]string{"01"}); err == nil {
		t.Error("short cube should error")
	}
	if _, err := s.FromCubes([]string{string(make([]byte, NumBits))}); err == nil {
		t.Error("invalid characters should error")
	}
}
