package hdr

// Clone returns an O(size) snapshot of the space: a new Space over a new
// bdd.Manager holding the same nodes at the same indices (see
// bdd.Manager.Clone). Every node index taken from this space — Set
// values, trace roots, quantification cubes — denotes the same header
// set in the clone, so match sets can be carried into a worker replica
// by index instead of being re-derived from configuration.
//
// The clone is independent after the copy: growth on either side is
// invisible to the other. Budgets, poison, and watched contexts are
// deliberately not snapshotted — a clone starts with a fresh,
// unconstrained evaluation budget (install limits with SetLimits).
//
// Cloning a quiescent space is a pure read of it, so several clones may
// be taken concurrently as long as nothing mutates the original.
func (s *Space) Clone() *Space {
	c := *s
	c.m = s.m.Clone()
	return &c
}
