package sharded

// Chaos acceptance tests for the degradation model across shards, run
// under -race in CI: hostile tests on one worker must not poison
// siblings, cancellation must yield a partial merged trace, and a budget
// trip on any shard must fail the run deterministically.

import (
	"context"
	"errors"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/faults"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func fatTreeBuilder() (*netmodel.Network, error) {
	ft, err := topogen.BuildFatTree(2)
	if err != nil {
		return nil, err
	}
	return ft.Net, nil
}

// markerTest marks a distinctive packet set at a fixed location and
// reports (via the done channel and counter) that it ran.
type markerTest struct {
	name   string
	prefix netip.Prefix
	done   chan<- struct{}
	ran    *atomic.Int32
}

func (t markerTest) Name() string       { return t.name }
func (t markerTest) Kind() testkit.Kind { return testkit.StateInspection }

func (t markerTest) Run(net *netmodel.Network, tracker core.Tracker) testkit.Result {
	tracker.MarkPacket(dataplane.Injected(0), net.Space.DstPrefix(t.prefix))
	if t.ran != nil {
		t.ran.Add(1)
	}
	if t.done != nil {
		t.done <- struct{}{}
	}
	return testkit.Result{Name: t.name, Kind: t.Kind(), Checks: 1}
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPanicOnOneWorkerDoesNotPoisonSiblings(t *testing.T) {
	ctx := context.Background()
	canonical, err := fatTreeBuilder()
	if err != nil {
		t.Fatal(err)
	}
	// Three workers: the panicking test lands alone on worker 0; the
	// sibling shards carry real marker tests that must complete and
	// contribute coverage.
	suite := testkit.Suite{
		faults.PanicTest{Message: "chaos: shard down"},
		markerTest{name: "m1", prefix: mustPrefix(t, "10.1.0.0/16")},
		markerTest{name: "m2", prefix: mustPrefix(t, "10.2.0.0/16")},
		markerTest{name: "m3", prefix: mustPrefix(t, "10.3.0.0/16")},
		markerTest{name: "m4", prefix: mustPrefix(t, "10.4.0.0/16")},
		markerTest{name: "m5", prefix: mustPrefix(t, "10.5.0.0/16")},
	}
	res, err := Run(ctx, canonical, Config{Workers: 3, Build: fatTreeBuilder}, suite)
	if err != nil {
		t.Fatalf("a panicking test must not fail the run: %v", err)
	}
	if len(res.Results) != len(suite) {
		t.Fatalf("%d results, want %d", len(res.Results), len(suite))
	}
	if !res.Results[0].Errored() {
		t.Errorf("panicking test: status %s, want error", res.Results[0].Status())
	}
	for i := 1; i < len(res.Results); i++ {
		if !res.Results[i].Pass() {
			t.Errorf("sibling test %s: status %s, want pass", res.Results[i].Name, res.Results[i].Status())
		}
	}
	// Every sibling's mark survived the merge.
	sp := canonical.Space
	got := res.Trace.PacketsAt(sp, dataplane.Injected(0))
	want := sp.DstPrefix(mustPrefix(t, "10.1.0.0/16")).
		Union(sp.DstPrefix(mustPrefix(t, "10.2.0.0/16"))).
		Union(sp.DstPrefix(mustPrefix(t, "10.3.0.0/16"))).
		Union(sp.DstPrefix(mustPrefix(t, "10.4.0.0/16"))).
		Union(sp.DstPrefix(mustPrefix(t, "10.5.0.0/16")))
	if !got.Equal(want) {
		t.Error("merged trace is missing sibling marks")
	}
}

func TestCancellationReturnsPartialMergedTrace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canonical, err := fatTreeBuilder()
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin over 2 workers:
	//   worker 0: fastA, hang, never
	//   worker 1: fastB, fastC
	// The fast tests signal completion; once all three have run we cancel.
	// The hang unblocks with an errored result, and "never" — behind the
	// hang on worker 0 — must be skipped by the suite's ctx check.
	done := make(chan struct{}, 3)
	var neverRan atomic.Int32
	suite := testkit.Suite{
		markerTest{name: "fastA", prefix: mustPrefix(t, "10.1.0.0/16"), done: done},
		markerTest{name: "fastB", prefix: mustPrefix(t, "10.2.0.0/16"), done: done},
		faults.HangTest{},
		markerTest{name: "fastC", prefix: mustPrefix(t, "10.3.0.0/16"), done: done},
		markerTest{name: "never", prefix: mustPrefix(t, "10.4.0.0/16"), ran: &neverRan},
	}
	go func() {
		for i := 0; i < 3; i++ {
			<-done
		}
		cancel()
	}()

	start := time.Now()
	res, err := Run(ctx, canonical, Config{Workers: 2, Build: fatTreeBuilder}, suite)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("cancellation did not unblock the hung worker promptly")
	}
	if neverRan.Load() != 0 {
		t.Error("test queued behind the hang ran despite cancellation")
	}

	// Partial results: the fast tests and the aborted hang, in suite
	// order, without the skipped tail.
	byName := map[string]testkit.Result{}
	for _, r := range res.Results {
		byName[r.Name] = r
	}
	for _, name := range []string{"fastA", "fastB", "fastC"} {
		if r, ok := byName[name]; !ok || !r.Pass() {
			t.Errorf("fast test %s missing or not passing in partial results", name)
		}
	}
	if r, ok := byName["ChaosHang"]; !ok || !r.Errored() {
		t.Error("hung test should appear as errored in partial results")
	}
	if _, ok := byName["never"]; ok {
		t.Error("skipped test should not appear in partial results")
	}

	// The partial merged trace carries every completed test's marks.
	sp := canonical.Space
	got := res.Trace.PacketsAt(sp, dataplane.Injected(0))
	want := sp.DstPrefix(mustPrefix(t, "10.1.0.0/16")).
		Union(sp.DstPrefix(mustPrefix(t, "10.2.0.0/16"))).
		Union(sp.DstPrefix(mustPrefix(t, "10.3.0.0/16")))
	if !got.Equal(want) {
		t.Error("partial merged trace does not match the completed tests' marks")
	}
}

func TestBudgetTripOnOneShardFailsRunDeterministically(t *testing.T) {
	ctx := context.Background()
	canonical, err := fatTreeBuilder()
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 gets the budget burner; worker 1 gets a real test. The
	// shard budget (MaxOps/2) stops the burner; the sibling completes.
	suite := testkit.Suite{
		faults.BudgetTest{},
		markerTest{name: "sibling", prefix: mustPrefix(t, "10.9.0.0/16")},
	}
	cfg := Config{Workers: 2, Build: fatTreeBuilder, Limits: bdd.Limits{MaxOps: 20000}}

	eng, err := New(ctx, canonical, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, err := eng.Run(ctx, suite)
		if !errors.Is(err, bdd.ErrBudgetExceeded) {
			t.Fatalf("round %d: err = %v, want ErrBudgetExceeded", round, err)
		}
		if len(res.Results) != 2 {
			t.Fatalf("round %d: %d results, want 2", round, len(res.Results))
		}
		if !res.Results[0].Errored() {
			t.Errorf("round %d: budget burner status %s, want error", round, res.Results[0].Status())
		}
		if !res.Results[1].Pass() {
			t.Errorf("round %d: sibling status %s, want pass (budget trips must not cross shards)",
				round, res.Results[1].Status())
		}
		// The sibling's coverage still merged.
		sp := canonical.Space
		if !res.Trace.PacketsAt(sp, dataplane.Injected(0)).Equal(sp.DstPrefix(mustPrefix(t, "10.9.0.0/16"))) {
			t.Errorf("round %d: sibling marks missing from merged trace", round)
		}
	}

	// The same suite under an ample budget passes: the failure above was
	// the budget, not the engine.
	res, err := eng2Run(t, ctx, canonical, suite)
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	if !res.Results[0].Pass() || !res.Results[1].Pass() {
		t.Error("unlimited run should pass both tests")
	}
}

func eng2Run(t *testing.T, ctx context.Context, canonical *netmodel.Network, suite testkit.Suite) (*Result, error) {
	t.Helper()
	return Run(ctx, canonical, Config{Workers: 2, Build: fatTreeBuilder}, suite)
}
