package sharded

import (
	"context"
	"testing"

	"yardstick/internal/bdd"
)

// TestReplicasInheritCacheConfig: replica spaces must be sized like the
// canonical space, so a canonical network tuned with a larger op cache
// gets the same treatment on every worker.
func TestReplicasInheritCacheConfig(t *testing.T) {
	canonical, err := fatTreeBuilder()
	if err != nil {
		t.Fatal(err)
	}
	want := bdd.CacheConfig{MinSlots: 1 << 16, MaxSlots: 1 << 18}
	canonical.Space.SetCacheConfig(want)

	e, err := New(context.Background(), canonical, Config{Workers: 2, Build: fatTreeBuilder})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range e.replicas {
		if got := r.Space.CacheConfig(); got != want {
			t.Errorf("replica %d: cache config %+v, want %+v", i, got, want)
		}
		if got := r.Space.EngineStats().CacheSlots; got < 1<<16 {
			t.Errorf("replica %d: cache %d slots, want >= MinSlots %d", i, got, 1<<16)
		}
	}
}
