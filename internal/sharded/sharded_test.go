package sharded

import (
	"context"
	"sync"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

// regionalOnce caches the canonical regional Clos network and its
// builder — BGP convergence plus match-set computation is the expensive
// part of these tests, so every test shares one canonical instance.
var regionalOnce = sync.OnceValues(func() (*netmodel.Network, error) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		return nil, err
	}
	return rg.Net, nil
})

func regionalBuilder() (*netmodel.Network, error) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		return nil, err
	}
	return rg.Net, nil
}

func regionalNet(t *testing.T) *netmodel.Network {
	t.Helper()
	n, err := regionalOnce()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func fullSuite(t *testing.T) testkit.Suite {
	t.Helper()
	s, err := testkit.BuiltinSuite("default,connected,internal,agg,contract,reach,pingmesh,host")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// metrics summarizes a run for equality comparison. Coverage fractions
// are compared with == on purpose: BDD canonicity means identical sets,
// and identical sets yield bit-identical floats.
type metrics struct {
	rulesW, rulesF, devW, ifaceW float64
	locs, marked                 int
}

func measure(net *netmodel.Network, tr *core.Trace) metrics {
	c := core.NewCoverage(net, tr)
	st := tr.Stats()
	return metrics{
		rulesW: core.RuleCoverage(c, nil, core.Weighted),
		rulesF: core.RuleCoverage(c, nil, core.Fractional),
		devW:   core.DeviceCoverage(c, nil, core.Weighted),
		ifaceW: core.InterfaceCoverage(c, nil, core.Weighted),
		locs:   st.Locations,
		marked: st.MarkedRules,
	}
}

// TestWorkersEquivalence is the acceptance criterion: on the regional
// Clos suite, the sequential path, Workers=1, and Workers=4 all produce
// identical test results and identical coverage metrics.
func TestWorkersEquivalence(t *testing.T) {
	ctx := context.Background()
	suite := fullSuite(t)

	// Sequential reference on its own canonical network.
	seqNet, err := regionalBuilder()
	if err != nil {
		t.Fatal(err)
	}
	seqTrace := core.NewTrace()
	seqResults := suite.Run(ctx, seqNet, seqTrace)
	want := measure(seqNet, seqTrace)

	for _, workers := range []int{1, 4} {
		canonical, err := regionalBuilder()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(ctx, canonical, Config{Workers: workers, Build: regionalBuilder}, suite)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Results) != len(seqResults) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res.Results), len(seqResults))
		}
		for i := range res.Results {
			got, exp := res.Results[i], seqResults[i]
			if got.Name != exp.Name || got.Status() != exp.Status() ||
				got.Checks != exp.Checks || len(got.Failures) != len(exp.Failures) {
				t.Errorf("workers=%d: result %d = %s/%s (%d checks, %d failures), want %s/%s (%d, %d)",
					workers, i, got.Name, got.Status(), got.Checks, len(got.Failures),
					exp.Name, exp.Status(), exp.Checks, len(exp.Failures))
			}
		}
		if got := measure(canonical, res.Trace); got != want {
			t.Errorf("workers=%d: metrics %+v, want %+v", workers, got, want)
		}
	}
}

func TestJSONReplicatorEquivalence(t *testing.T) {
	// The builderless path: replicas via netmodel JSON round-trip must be
	// just as exact.
	ctx := context.Background()
	suite := fullSuite(t)
	canonical := regionalNet(t)

	seqTrace := core.NewTrace()
	seqResults := suite.Run(ctx, canonical, seqTrace)
	want := measure(canonical, seqTrace)

	res, err := Run(ctx, canonical, Config{Workers: 3, Build: JSONReplicator(canonical)}, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(seqResults) {
		t.Fatalf("%d results, want %d", len(res.Results), len(seqResults))
	}
	for i := range res.Results {
		if res.Results[i].Name != seqResults[i].Name || res.Results[i].Status() != seqResults[i].Status() {
			t.Errorf("result %d = %s/%s, want %s/%s", i,
				res.Results[i].Name, res.Results[i].Status(),
				seqResults[i].Name, seqResults[i].Status())
		}
	}
	// The sequential trace lives in the same canonical space here, so
	// metrics equality degenerates to comparing against itself post-merge:
	// measure from the merged trace instead.
	if got := measure(canonical, res.Trace); got != want {
		t.Errorf("metrics %+v, want %+v", got, want)
	}
}

func TestEngineReuseAcrossRuns(t *testing.T) {
	ctx := context.Background()
	canonical := regionalNet(t)
	eng, err := New(ctx, canonical, Config{Workers: 2, Build: JSONReplicator(canonical)})
	if err != nil {
		t.Fatal(err)
	}
	suite := fullSuite(t)
	first, err := eng.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Results) != len(suite) || len(second.Results) != len(suite) {
		t.Fatalf("runs returned %d and %d results, want %d", len(first.Results), len(second.Results), len(suite))
	}
	for i := range first.Results {
		if first.Results[i].Status() != second.Results[i].Status() {
			t.Errorf("result %d status changed across runs: %s -> %s",
				i, first.Results[i].Status(), second.Results[i].Status())
		}
	}
}

func TestShardStatsAndOrdering(t *testing.T) {
	ctx := context.Background()
	canonical := regionalNet(t)
	suite := fullSuite(t)
	res, err := Run(ctx, canonical, Config{Workers: 3, Build: JSONReplicator(canonical)}, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 3 {
		t.Fatalf("got %d shard stats, want 3", len(res.Shards))
	}
	total := 0
	for i, s := range res.Shards {
		if s.Worker != i {
			t.Errorf("shard stats out of order: entry %d is worker %d", i, s.Worker)
		}
		if s.Completed != s.Tests {
			t.Errorf("worker %d completed %d of %d without cancellation", i, s.Completed, s.Tests)
		}
		total += s.Tests
	}
	if total != len(suite) {
		t.Errorf("partition covers %d tests, want %d", total, len(suite))
	}
	// Results come back in suite order regardless of worker scheduling.
	for i, r := range res.Results {
		if r.Name != suite[i].Name() {
			t.Errorf("result %d is %q, want %q", i, r.Name, suite[i].Name())
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	canonical := regionalNet(t)
	if _, err := New(ctx, nil, Config{Build: JSONReplicator(canonical)}); err == nil {
		t.Error("nil canonical network should be rejected")
	}
	// A nil Build is not an error: it selects clone-based replication.
	if eng, err := New(ctx, canonical, Config{Workers: 2}); err != nil || eng.Workers() != 2 {
		t.Errorf("builderless config should clone canonical, got %v", err)
	}
	// A non-deterministic builder (wrong topology) must be caught.
	other := func() (*netmodel.Network, error) {
		ft, err := topogen.BuildFatTree(2)
		if err != nil {
			return nil, err
		}
		return ft.Net, nil
	}
	if _, err := New(ctx, canonical, Config{Workers: 2, Build: other}); err == nil {
		t.Error("builder yielding a different network should be rejected")
	}
}

func TestEmptySuite(t *testing.T) {
	ctx := context.Background()
	canonical := regionalNet(t)
	res, err := Run(ctx, canonical, Config{Workers: 2, Build: JSONReplicator(canonical)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 || res.Trace == nil {
		t.Error("empty suite should yield an empty result with a usable trace")
	}
}

func TestShardLimitsSplit(t *testing.T) {
	l := shardLimits(Limits{MaxNodes: 100, MaxOps: 10}, 4)
	if l.MaxNodes != 100 {
		t.Errorf("MaxNodes = %d, want 100 (per-manager cap, not split)", l.MaxNodes)
	}
	if l.MaxOps != 3 {
		t.Errorf("MaxOps = %d, want 3 (ceiling of 10/4)", l.MaxOps)
	}
	if got := shardLimits(Limits{}, 4); got != (Limits{}) {
		t.Errorf("zero limits should stay zero, got %+v", got)
	}
	if got := shardLimits(Limits{MaxOps: 10}, 1); got.MaxOps != 10 {
		t.Errorf("single worker keeps the full op budget, got %d", got.MaxOps)
	}
}
