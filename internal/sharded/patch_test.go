package sharded

import (
	"context"
	"errors"
	"testing"

	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
)

// TestPatchParity is the replica-pool half of the churn correctness
// bar: a pool patched in place with the same delta the canonical
// network took must behave exactly like a pool rebuilt from the patched
// canonical — identical test results, identical coverage metrics.
func TestPatchParity(t *testing.T) {
	ctx := context.Background()
	canonical, err := regionalBuilder()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(ctx, canonical, Config{Workers: 2, Build: JSONReplicator(canonical)})
	if err != nil {
		t.Fatal(err)
	}

	// A batch against the pre-delta universe: drop rule 0, repoint rule
	// 1, add a blackhole on rule 1's device.
	mod := canonical.RuleSpecOf(1)
	mod.Match.Dst = "10.99.0.0/16"
	add := netmodel.RuleSpec{
		Device: mod.Device, Table: "fib", Action: "drop",
		Match:  netmodel.MatchSpec{Dst: "10.123.0.0/16"},
		Origin: "static",
	}
	ops := []delta.Op{
		{Op: delta.OpRemove, Rule: 0},
		{Op: delta.OpModify, Rule: 1, Spec: &mod},
		{Op: delta.OpAdd, Spec: &add},
	}

	// Canonical first (the service does the same), then the pool.
	if err := delta.ApplyOps(canonical, ops); err != nil {
		t.Fatal(err)
	}
	if err := eng.Patch(func(n *netmodel.Network) error {
		return delta.ApplyOps(n, ops)
	}); err != nil {
		t.Fatal(err)
	}

	// Reference: a pool rebuilt from scratch off the patched canonical.
	fresh, err := New(ctx, canonical, Config{Workers: 2, Build: JSONReplicator(canonical)})
	if err != nil {
		t.Fatal(err)
	}

	suite := fullSuite(t)
	patched, err := eng.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := fresh.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(patched.Results) != len(rebuilt.Results) {
		t.Fatalf("%d results vs %d", len(patched.Results), len(rebuilt.Results))
	}
	for i := range patched.Results {
		p, r := patched.Results[i], rebuilt.Results[i]
		if p.Name != r.Name || p.Status() != r.Status() || p.Checks != r.Checks {
			t.Errorf("result %d = %s/%s (%d checks), rebuilt pool got %s/%s (%d)",
				i, p.Name, p.Status(), p.Checks, r.Name, r.Status(), r.Checks)
		}
	}
	if got, want := measure(canonical, patched.Trace), measure(canonical, rebuilt.Trace); got != want {
		t.Errorf("patched-pool metrics %+v, rebuilt-pool metrics %+v", got, want)
	}
}

func TestPatchErrors(t *testing.T) {
	ctx := context.Background()
	canonical, err := regionalBuilder()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(ctx, canonical, Config{Workers: 2, Build: JSONReplicator(canonical)})
	if err != nil {
		t.Fatal(err)
	}

	// An apply error propagates with the replica index.
	boom := errors.New("boom")
	if err := eng.Patch(func(*netmodel.Network) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("apply error not propagated: %v", err)
	}

	// An apply that mutates replicas without the canonical network moving
	// in lockstep is divergence, not success.
	err = eng.Patch(func(n *netmodel.Network) error {
		return delta.ApplyOps(n, []delta.Op{{Op: delta.OpRemove, Rule: 0}})
	})
	if err == nil {
		t.Fatal("replica-only mutation accepted; pool now silently diverged")
	}
}
