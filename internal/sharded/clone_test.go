package sharded

import (
	"context"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
)

// TestCloneReplicaEquivalence is the clone-path acceptance bar: against
// the SAME canonical network, a clone-based pool and a JSONReplicator
// pool must produce byte-identical coverage tables — Trace.Equal, which
// compares per-location BDD node identity in the canonical space, the
// strongest equality the engine offers — along with identical test
// results and metrics, and Workers=1 must equal Workers=N.
func TestCloneReplicaEquivalence(t *testing.T) {
	ctx := context.Background()
	suite := fullSuite(t)
	canonical := regionalNet(t)

	seqTrace := core.NewTrace()
	seqResults := suite.Run(ctx, canonical, seqTrace)
	want := measure(canonical, seqTrace)

	oracle, err := Run(ctx, canonical, Config{Workers: 3, Build: JSONReplicator(canonical)}, suite)
	if err != nil {
		t.Fatal(err)
	}

	var traces []*core.Trace
	for _, workers := range []int{1, 3} {
		res, err := Run(ctx, canonical, Config{Workers: workers}, suite)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Results) != len(seqResults) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res.Results), len(seqResults))
		}
		for i := range res.Results {
			got, exp := res.Results[i], seqResults[i]
			if got.Name != exp.Name || got.Status() != exp.Status() || got.Checks != exp.Checks {
				t.Errorf("workers=%d: result %d = %s/%s (%d checks), want %s/%s (%d)",
					workers, i, got.Name, got.Status(), got.Checks, exp.Name, exp.Status(), exp.Checks)
			}
		}
		if got := measure(canonical, res.Trace); got != want {
			t.Errorf("workers=%d: metrics %+v, want %+v", workers, got, want)
		}
		if !res.Trace.Equal(oracle.Trace) {
			t.Errorf("workers=%d: clone-pool trace differs from JSONReplicator-pool trace", workers)
		}
		traces = append(traces, res.Trace)
	}
	if !traces[0].Equal(traces[1]) {
		t.Error("clone pool: Workers=1 and Workers=3 traces differ")
	}
	// Both merged traces live in the canonical space, so Equal above is
	// node-for-node: the coverage tables are byte-identical.
	if !seqTrace.Equal(traces[0]) {
		t.Error("clone-pool trace differs from the sequential trace")
	}
}

// TestCloneReplicaIndependence: worker runs on cloned replicas must not
// disturb the canonical network — its structure stays frozen and its
// space only moves during the merge (which lands on existing nodes when
// the workers' sets already exist canonically).
func TestCloneReplicaIndependence(t *testing.T) {
	ctx := context.Background()
	canonical := regionalNet(t)
	statsBefore := canonical.Stats()

	eng, err := New(ctx, canonical, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if canonical.Stats() != statsBefore {
		t.Fatalf("building a clone pool mutated the canonical network: %+v -> %+v",
			statsBefore, canonical.Stats())
	}
	// Mutating a replica's symbolic state must leave the canonical space
	// untouched (no run in flight, so nothing merges).
	nodesBefore := canonical.Space.EngineStats().Nodes
	rep := eng.replicas[0]
	set := rep.Rules[0].MatchSet()
	for i := 0; i < 8; i++ {
		set = set.Negate().Union(rep.Space.DstPort(uint16(1000 + i)))
	}
	if got := canonical.Space.EngineStats().Nodes; got != nodesBefore {
		t.Fatalf("replica ops grew the canonical space %d -> %d nodes", nodesBefore, got)
	}

	if _, err := eng.Run(ctx, fullSuite(t)); err != nil {
		t.Fatal(err)
	}
	if canonical.Stats() != statsBefore {
		t.Fatalf("a clone-pool run mutated the canonical network: %+v -> %+v",
			statsBefore, canonical.Stats())
	}
}

// TestPatchRecloneParity is TestPatchParity for the clone path: a
// clone-based pool realigned via Patch (re-clone of the patched
// canonical) must match a pool rebuilt from scratch.
func TestPatchRecloneParity(t *testing.T) {
	ctx := context.Background()
	canonical, err := regionalBuilder()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(ctx, canonical, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	mod := canonical.RuleSpecOf(1)
	mod.Match.Dst = "10.99.0.0/16"
	add := netmodel.RuleSpec{
		Device: mod.Device, Table: "fib", Action: "drop",
		Match:  netmodel.MatchSpec{Dst: "10.123.0.0/16"},
		Origin: "static",
	}
	ops := []delta.Op{
		{Op: delta.OpRemove, Rule: 0},
		{Op: delta.OpModify, Rule: 1, Spec: &mod},
		{Op: delta.OpAdd, Spec: &add},
	}
	if err := delta.ApplyOps(canonical, ops); err != nil {
		t.Fatal(err)
	}
	// Clone pools ignore the apply function: the canonical network is
	// already the post-delta truth, so Patch re-clones it.
	if err := eng.Patch(func(n *netmodel.Network) error {
		t.Error("clone-based Patch invoked the apply function")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(ctx, canonical, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	suite := fullSuite(t)
	patched, err := eng.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := fresh.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(patched.Results) != len(rebuilt.Results) {
		t.Fatalf("%d results vs %d", len(patched.Results), len(rebuilt.Results))
	}
	for i := range patched.Results {
		p, r := patched.Results[i], rebuilt.Results[i]
		if p.Name != r.Name || p.Status() != r.Status() || p.Checks != r.Checks {
			t.Errorf("result %d = %s/%s (%d checks), rebuilt pool got %s/%s (%d)",
				i, p.Name, p.Status(), p.Checks, r.Name, r.Status(), r.Checks)
		}
	}
	if !patched.Trace.Equal(rebuilt.Trace) {
		t.Error("re-cloned pool trace differs from rebuilt pool trace")
	}
	if got, want := measure(canonical, patched.Trace), measure(canonical, rebuilt.Trace); got != want {
		t.Errorf("re-cloned-pool metrics %+v, rebuilt-pool metrics %+v", got, want)
	}
}
