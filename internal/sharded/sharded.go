// Package sharded evaluates a test suite across a pool of workers, each
// with its own BDD space, and merges the per-worker coverage traces back
// into a canonical space exactly.
//
// The ATU coverage framework is embarrassingly parallel at the test
// granularity: tests only interact through the trace, and Trace.Merge is
// order-independent. What blocks naive parallelism is the BDD manager —
// it is single-threaded by design (hash-consed unique table, memoized
// apply loops) and must stay that way. This package therefore replicates
// the *universe* instead of locking it: each worker owns a private
// network replica whose hdr.Space wraps a private manager. Workers run
// disjoint partitions of the suite through testkit.Suite.Run (keeping
// the per-test runIsolated panic boundary), record into worker-local
// traces, and the engine merges those traces into the canonical space
// with the cross-space transfer kernel (core.Trace.TransferTo — a
// node-by-node DAG copy, no cube round-trip).
//
// Replicas are arena clones by default: netmodel.Network.Clone snapshots
// the canonical network's flat BDD arena in O(size), carrying every
// frozen match set into the replica by node index instead of re-deriving
// it from configuration. A clone's node indices below the snapshot point
// are identical to the canonical space's forever (managers are
// append-only), so the merge recognizes the shared prefix and costs
// O(nodes the workers created), not O(universe). Config.Build overrides
// the factory for callers that need re-derivation — JSONReplicator, the
// replica factory of last resort, replays the network through a JSON
// round-trip and doubles as the validation oracle for the clone path.
//
// Determinism: replicas are deterministic (clones are bit-identical,
// and builders must replay device/iface/rule indices identically), the
// partition is a fixed round-robin of the suite order, results are
// scattered back to suite order, and the merged trace is a union of
// per-location sets — order-independent by construction. Workers=1 and
// Workers=N therefore produce identical results and metrics.
//
// Budgets and cancellation compose with the PR 2 degradation model:
// Config.Limits is installed per shard with MaxOps split evenly across
// workers (MaxNodes is a per-manager memory cap and applies to each
// replica as-is), every worker observes the run context via WatchContext,
// and a budget tripped on any shard — detected via the poisoned manager
// after the shard drains — fails the whole run with an error wrapping
// bdd.ErrBudgetExceeded.
package sharded

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/obs"
	"yardstick/internal/testkit"
)

// Registry metric names recorded by instrumented runs (a span with an
// attached registry must be in the run context; without one the engine
// records nothing).
const (
	MetricRuns        = "yardstick_sharded_runs_total"
	MetricWorkerRuns  = "yardstick_sharded_worker_runs_total"
	MetricBudgetTrips = "yardstick_sharded_budget_trips_total"
)

// Builder constructs one network replica. It must be deterministic —
// every invocation yields a structurally identical network (same device,
// interface, and rule indices) — and safe to call from multiple
// goroutines concurrently (each call builds into a fresh space).
// Deterministic topology generators and JSONReplicator both qualify.
type Builder func() (*netmodel.Network, error)

// JSONReplicator returns a Builder that replays net through a netmodel
// JSON round-trip: the network is encoded once, and every call decodes a
// fresh replica (match sets recomputed deterministically). It is the
// replica factory of last resort — any network can be replicated this
// way, at the cost of one encode plus one decode per worker, with every
// replica re-deriving its match sets from scratch. Prefer the default
// clone-based replication (Config.Build nil); JSONReplicator remains the
// independent oracle clone equivalence is validated against.
func JSONReplicator(net *netmodel.Network) Builder {
	var buf bytes.Buffer
	err := net.EncodeJSON(&buf)
	data := buf.Bytes()
	return func() (*netmodel.Network, error) {
		if err != nil {
			return nil, fmt.Errorf("sharded: encoding canonical network: %w", err)
		}
		return netmodel.DecodeJSON(bytes.NewReader(data))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the pool size; 0 or negative means runtime.GOMAXPROCS(0).
	Workers int
	// Build constructs one replica per worker (see Builder). Nil selects
	// the default: replicas are O(size) arena clones of the canonical
	// network (netmodel.Network.Clone), carrying its frozen match sets by
	// node index.
	Build Builder
	// Limits is the evaluation budget, installed per shard at the start
	// of every Run: MaxOps is split evenly (ceiling division) across the
	// workers that run, MaxNodes applies to each replica's manager as-is.
	Limits Limits
}

// Limits is an alias re-exported for config ergonomics.
type Limits = bdd.Limits

// ShardStats describes one worker's share of a run.
type ShardStats struct {
	// Worker is the shard index in [0, Workers).
	Worker int
	// Tests is the number of suite entries assigned to the shard.
	Tests int
	// Completed is how many of them produced a Result (equals Tests
	// unless the run was cancelled mid-shard).
	Completed int
	// Engine reports the replica manager's counters after the run.
	Engine bdd.Stats
}

// Result is the outcome of one parallel run.
type Result struct {
	// Results holds the per-test results of every test that ran, in
	// suite order regardless of which worker ran it. On a cancelled run
	// it contains the tests that completed before cancellation.
	Results []testkit.Result
	// Trace is the merged coverage trace, in the canonical space. On a
	// failed run it holds whatever merged before the failure (coverage
	// is monotone, so a partial trace is still sound to accumulate).
	Trace *core.Trace
	// Shards reports per-worker statistics, ordered by worker index.
	Shards []ShardStats
}

// Engine is a reusable worker pool bound to one canonical network. The
// replicas are built once at New and reused across Run calls (each Run
// reinstalls fresh shard budgets). An Engine is not safe for concurrent
// use: Run touches the canonical space during the merge phase, and the
// caller must not use the canonical space concurrently with Run.
type Engine struct {
	canonical *netmodel.Network
	cfg       Config
	replicas  []*netmodel.Network
	// cloneBased is true for the default replica factory (arena clones of
	// the canonical network). It changes Patch: clone pools realign by
	// re-cloning the already-patched canonical instead of replaying ops.
	cloneBased bool
}

// New builds an engine with cfg.Workers replicas of the canonical
// network. Replicas are built concurrently (Builder must tolerate that;
// the default clone factory does — cloning a quiescent network is a pure
// read of it) and validated against the canonical network: same family
// and same device/interface/rule counts, so trace indices mean the same
// thing in every space.
func New(ctx context.Context, canonical *netmodel.Network, cfg Config) (*Engine, error) {
	if canonical == nil {
		return nil, errors.New("sharded: nil canonical network")
	}
	canonical.ComputeMatchSets()
	cloneBased := cfg.Build == nil
	build := cfg.Build
	if cloneBased {
		// Default factory: snapshot the (frozen, quiescent) canonical
		// network. The clone carries every match set at its canonical node
		// index, so replicas cost a flat copy, not a re-derivation.
		build = func() (*netmodel.Network, error) { return canonical.Clone(), nil }
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Replica construction is the engine's fixed cost; time it under the
	// caller's span (nil span → zero overhead).
	bsp := obs.SpanFromContext(ctx).Child("sharded.build_replicas")
	bsp.Set("workers", int64(cfg.Workers))
	defer bsp.End()

	type built struct {
		i   int
		net *netmodel.Network
		err error
	}
	ch := make(chan built, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func(i int) {
			n, err := build()
			ch <- built{i: i, net: n, err: err}
		}(i)
	}
	replicas := make([]*netmodel.Network, cfg.Workers)
	var firstErr error
	for i := 0; i < cfg.Workers; i++ {
		b := <-ch
		if b.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sharded: building replica %d: %w", b.i, b.err)
			}
			continue
		}
		replicas[b.i] = b.net
	}
	if firstErr != nil {
		return nil, firstErr
	}
	want := canonical.Stats()
	cc := canonical.Space.CacheConfig()
	for i, r := range replicas {
		// Replica managers inherit the canonical space's op-cache sizing,
		// so per-worker kernels run with the same memoization capacity as
		// a sequential run.
		r.Space.SetCacheConfig(cc)
		r.ComputeMatchSets()
		if r.Family() != canonical.Family() || r.Stats() != want {
			return nil, fmt.Errorf("sharded: replica %d does not match canonical network (family %v stats %+v, want %v %+v): builder is not deterministic",
				i, r.Family(), r.Stats(), canonical.Family(), want)
		}
	}
	return &Engine{canonical: canonical, cfg: cfg, replicas: replicas, cloneBased: cloneBased}, nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.replicas) }

// Patch realigns the pool with a canonical network the caller has
// already mutated.
//
// A clone-based pool (Config.Build nil) realigns by re-cloning the
// patched canonical — an O(size) flat copy per replica; apply is not
// invoked, since the canonical network already embodies the delta, and
// the old replicas (with whatever garbage their runs accreted) are
// discarded. This reads the canonical space, so the caller must not use
// it concurrently.
//
// A builder-based pool applies the rule-level mutation to every replica
// in place instead (the engine never touches the canonical space). The
// apply function must be deterministic — the same delta against
// structurally identical replicas — so replica indices keep meaning the
// same thing in every space; each patched replica is re-validated
// against the canonical network's family and counts, exactly like New.
//
// On any error the pool must be considered torn (some replicas patched,
// some not): discard the engine and rebuild. Patch charges each
// replica's own budget; a trip surfaces as the apply function's error.
func (e *Engine) Patch(apply func(*netmodel.Network) error) error {
	want := e.canonical.Stats()
	if e.cloneBased {
		e.canonical.ComputeMatchSets()
		for i := range e.replicas {
			e.replicas[i] = e.canonical.Clone()
		}
		return nil
	}
	for i, r := range e.replicas {
		if err := apply(r); err != nil {
			return fmt.Errorf("sharded: patching replica %d: %w", i, err)
		}
		if r.Family() != e.canonical.Family() || r.Stats() != want {
			return fmt.Errorf("sharded: replica %d diverged after patch (stats %+v, want %+v)",
				i, r.Stats(), want)
		}
	}
	return nil
}

// ReplicaStats returns the current BDD counters of every replica
// manager, ordered by worker index. Replica managers are quiescent
// between runs, so callers aggregating engine health (a /coverage
// response, a /metrics scrape) may read them whenever no Run is in
// flight.
func (e *Engine) ReplicaStats() []bdd.Stats {
	out := make([]bdd.Stats, len(e.replicas))
	for i, r := range e.replicas {
		out[i] = r.Space.EngineStats()
	}
	return out
}

// Run is a convenience: build an engine for one run and evaluate suite.
func Run(ctx context.Context, canonical *netmodel.Network, cfg Config, suite testkit.Suite) (*Result, error) {
	e, err := New(ctx, canonical, cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, suite)
}

// Run evaluates suite across the pool and merges the results.
//
// Error semantics mirror the sequential degradation model: a budget trip
// on any shard fails the run with an error wrapping bdd.ErrBudgetExceeded
// (the partial Result is still returned — the tripped shard's remaining
// tests are Errored, sibling shards are unaffected); a cancelled context
// returns ctx.Err() with the partial merged trace and the results that
// completed. The Result is never nil.
func (e *Engine) Run(ctx context.Context, suite testkit.Suite) (*Result, error) {
	return e.RunWorkers(ctx, suite, len(e.replicas))
}

// RunWorkers is Run restricted to the first n workers of the pool
// (clamped to [1, Workers()]) — how a service with a fixed pool honors a
// smaller per-request parallelism. The MaxOps budget splits over the
// workers that actually run.
func (e *Engine) RunWorkers(ctx context.Context, suite testkit.Suite, n int) (*Result, error) {
	res := &Result{Trace: core.NewTrace()}
	w := n
	if w < 1 {
		w = 1
	}
	if w > len(e.replicas) {
		w = len(e.replicas)
	}
	if w > len(suite) {
		w = len(suite)
	}
	if w == 0 {
		return res, ctx.Err()
	}
	limits := shardLimits(e.cfg.Limits, w)

	// Instrumentation is carried by the context: a span there (with or
	// without a registry) turns on per-shard timing; absent one, every
	// obs call below is a nil-receiver no-op.
	sp := obs.SpanFromContext(ctx)
	reg := sp.Registry()
	sp.Set("workers", int64(w))
	sp.Set("tests", int64(len(suite)))
	reg.Counter(MetricRuns).Inc()
	reg.Gauge("yardstick_sharded_workers").Set(float64(w))

	// Round-robin partition in suite order: worker i runs tests i, i+w, …
	// The assignment depends only on suite order and pool size, never on
	// scheduling, so reruns partition identically.
	parts := make([][]testkit.Test, w)
	index := make([][]int, w)
	for i, t := range suite {
		parts[i%w] = append(parts[i%w], t)
		index[i%w] = append(index[i%w], i)
	}

	type shardOut struct {
		worker  int
		results []testkit.Result
		trace   *core.Trace
		stats   bdd.Stats
		err     error
	}
	// runShard touches the replica's manager; its deferred WatchContext
	// restore must complete before the result is sent, or a subsequent
	// Run on the same engine could race with the restore write.
	runShard := func(i int) shardOut {
		rep := e.replicas[i]
		// Format the span name only when instrumented: the Sprintf would
		// otherwise be the uninstrumented path's only allocation.
		var ws *obs.Span
		if sp != nil {
			ws = sp.Child(fmt.Sprintf("shard[%d]", i))
		}
		defer ws.End()
		ws.Set("tests", int64(len(parts[i])))
		// Fresh budget per run: SetLimits resets the op counter and
		// clears any poison left by a previous run's trip. The stats
		// baseline comes after — SetLimits zeroes the op counter, and the
		// flush below must see only this run's movement.
		rep.Space.SetLimits(limits)
		base := rep.Space.EngineStats()
		restore := rep.Space.WatchContext(ctx)
		defer restore()
		trace := core.NewTrace()
		results := testkit.Suite(parts[i]).Run(ctx, rep, trace)
		ws.Set("completed", int64(len(results)))
		// A budget panic inside a test is recovered generically by
		// the per-test isolation boundary into an Errored result;
		// the poisoned manager is the durable evidence that the
		// shard — and therefore the run — blew its budget.
		err := rep.Space.Manager().BudgetErr()
		if err != nil {
			ws.Add("budget_trips", 1)
			reg.Counter(MetricBudgetTrips).Inc()
		}
		reg.Counter(MetricWorkerRuns).Inc()
		rep.Space.FlushStats(ws, reg, base)
		return shardOut{
			worker:  i,
			results: results,
			trace:   trace,
			stats:   rep.Space.EngineStats(),
			err:     err,
		}
	}
	ch := make(chan shardOut, w)
	for i := 0; i < w; i++ {
		go func(i int) { ch <- runShard(i) }(i)
	}

	outs := make([]shardOut, 0, w)
	for i := 0; i < w; i++ {
		outs = append(outs, <-ch)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].worker < outs[j].worker })

	// Scatter results back to suite order. Suite.Run returns a prefix of
	// its partition (cancellation skips the rest), so results align with
	// the partition's leading indices.
	slots := make([]*testkit.Result, len(suite))
	var shardErr error
	for _, o := range outs {
		for j := range o.results {
			r := o.results[j]
			slots[index[o.worker][j]] = &r
		}
		res.Shards = append(res.Shards, ShardStats{
			Worker:    o.worker,
			Tests:     len(parts[o.worker]),
			Completed: len(o.results),
			Engine:    o.stats,
		})
		if o.err != nil && shardErr == nil {
			shardErr = fmt.Errorf("sharded: worker %d: %w", o.worker, o.err)
		}
	}
	for _, r := range slots {
		if r != nil {
			res.Results = append(res.Results, *r)
		}
	}

	// Merge worker traces into the canonical space, one at a time (the
	// canonical manager is single-threaded; the workers are done, so
	// their managers are quiescent sources). Union order cannot matter —
	// Trace.Merge is order-independent — but worker order keeps the
	// canonical unique table filling deterministically too. The transfer
	// charges the canonical manager's budget; Guard converts a trip (or a
	// watched-context cancellation installed by the caller) into an error
	// instead of unwinding through us.
	// The merge span records the canonical manager's movement on the span
	// only: registry totals for the canonical engine are settled by its
	// owner (the service scrape path), not here, or the same ops would
	// count twice.
	msp := sp.Child("sharded.merge")
	mergeBase := e.canonical.Space.EngineStats()
	mergeErr := bdd.Guard(func() {
		for _, o := range outs {
			res.Trace.Merge(o.trace.TransferTo(e.canonical.Space))
		}
	})
	e.canonical.Space.FlushStats(msp, nil, mergeBase)
	msp.End()

	switch {
	case shardErr != nil:
		return res, shardErr
	case mergeErr != nil:
		return res, fmt.Errorf("sharded: merging traces: %w", mergeErr)
	default:
		return res, ctx.Err()
	}
}

// shardLimits derives the per-shard budget: MaxOps splits evenly across
// the workers that run (ceiling division, so the aggregate bound is at
// least the configured one); MaxNodes is a per-manager memory cap and
// applies to each replica unchanged — dividing it would charge each
// worker for the replica's base forwarding state w times over.
func shardLimits(l bdd.Limits, w int) bdd.Limits {
	if l.MaxOps > 0 && w > 1 {
		l.MaxOps = (l.MaxOps + w - 1) / w
	}
	return l
}
