// Package coord runs a test suite across a fleet of yardstickd worker
// nodes and merges their coverage into one exact trace — the paper's
// deployment story (§7: testing tools report coverage to a service)
// scaled out, with the failure handling a real fleet needs.
//
// The shape is partition → dispatch → collect → merge:
//
//   - Partition: each built-in suite name becomes one shard (optionally
//     repeated for -rounds; re-running a shard is free because coverage
//     merges by BDD union).
//   - Dispatch: shards are submitted through the async /jobs API of each
//     worker and polled to completion; the per-shard fragment comes back
//     via GET /jobs/{id}/trace as exact cube JSON.
//   - Merge: fragments decode against the coordinator's own
//     deterministic replica of the network — rule and location IDs are
//     indices, identical across replicas, so only the symbolic sets are
//     rebuilt — and fold into one trace by same-space union.
//
// Every robustness decision leans on one invariant: merging is an
// idempotent, commutative union, so it is always safe to run a shard
// again, anywhere. That turns retries, re-dispatch after a node dies,
// duplicate execution after a lost response, and hedged dispatch from
// correctness hazards into pure scheduling choices.
//
// Failure handling, from mildest to worst:
//
//   - A shed poll (429/503) is not a failure: the client backs off by
//     the server's Retry-After hint and keeps polling.
//   - A failed attempt (connection error, HTTP failure, failed job,
//     lost fragment) is retried with jittered exponential backoff, on a
//     different node when one is available.
//   - A node that fails repeatedly trips a circuit breaker: it stops
//     receiving shards for a cooldown, then a single half-open probe
//     decides whether it rejoins the rotation. Its queued work is
//     re-dispatched to healthy nodes.
//   - A shard whose primary dispatch lingers past HedgeAfter is hedged
//     on a second node; first success wins, the loser is cancelled and
//     the duplicate coverage (if any) merges to the same union.
//   - When no healthy node remains, the run degrades gracefully: Run
//     returns an explicit partial Result (per-shard status, Complete
//     false) instead of an error or a hang.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/client"
	"yardstick/internal/core"
	"yardstick/internal/jobs"
	"yardstick/internal/netmodel"
	"yardstick/internal/obs"
	"yardstick/internal/service"
)

// Config describes the fleet and the run.
type Config struct {
	// Nodes are the worker base URLs (http://host:port). At least one.
	Nodes []string

	// Net is the coordinator's replica of the network under test. It is
	// pushed to every node before its first shard (PUT /network) and is
	// the space shard fragments decode into, so it must be built
	// deterministically (same generator, same options) as any replica a
	// node might already hold.
	Net *netmodel.Network

	// NewClient builds the client for one node. nil means
	// client.New(base); tests inject clients whose transports carry
	// chaos faults.
	NewClient func(base string) *client.Client

	// Workers is the per-job worker-count hint sent to nodes (<= 0
	// leaves it to the node).
	Workers int

	// Rounds repeats the shard list this many times (<= 0 means 1).
	// Extra rounds add no coverage — merge is idempotent — but stretch
	// the run, which is how the chaos tests and the CI cluster-smoke
	// keep a kill window open.
	Rounds int

	// Concurrency bounds in-flight shards (<= 0 means 2 per node).
	Concurrency int

	// ShardTimeout bounds one dispatch attempt end to end: submit, poll
	// to terminal, download the fragment (<= 0 means 60s). It is the
	// backstop that turns a hung worker into a retryable failure.
	ShardTimeout time.Duration

	// MaxAttempts bounds dispatch attempts per shard, first try
	// included (<= 0 means 3).
	MaxAttempts int

	// Backoff is the base delay between a shard's attempts, doubled per
	// attempt with equal jitter; a server Retry-After hint is honored
	// when larger (<= 0 means 100ms).
	Backoff time.Duration

	// HedgeAfter launches a second dispatch of a still-running shard on
	// another node after this long; first success wins (0 disables).
	HedgeAfter time.Duration

	// Poll is the job poll interval (<= 0 means client.DefaultJobPoll).
	Poll time.Duration

	// FailureThreshold is the consecutive-failure count that trips a
	// node's circuit breaker (<= 0 means 3). Sheds do not count: a
	// shedding node is busy, not broken.
	FailureThreshold int

	// Cooldown is how long a tripped breaker stays open before one
	// half-open probe may test the node again (<= 0 means 2s).
	Cooldown time.Duration

	// FederationMaxAge is how long a worker's last scraped metric
	// snapshot stays in the coordinator's fleet view after the worker
	// stops answering (<= 0 means obs.DefaultFederationMaxAge). See
	// observe.go.
	FederationMaxAge time.Duration

	// Logger receives dispatch/retry/trip events. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.NewClient == nil {
		c.NewClient = func(base string) *client.Client { return client.New(base) }
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2 * len(c.Nodes)
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 60 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Breaker states. closed = healthy rotation; open = cooling off after
// FailureThreshold consecutive failures; half-open = one probe in
// flight deciding reinstatement.
type breakerState uint8

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stClosed:
		return "closed"
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// node is one worker plus its health accounting.
type node struct {
	base string
	c    *client.Client

	// loadMu serializes network pushes so concurrent shards do not race
	// redundant PUT /network calls at the same node.
	loadMu sync.Mutex

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive non-shed failures
	openedAt time.Time
	loaded   bool // network pushed and acknowledged
	inflight int

	// Counters for the end-of-run report.
	dispatched, succeeded, failed, sheds, trips int
}

// availableClosed claims the node if its breaker is closed.
func (n *node) availableClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state == stClosed
}

// stateNow returns the breaker state for the gauge flush.
func (n *node) stateNow() breakerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

func (n *node) inflightNow() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inflight
}

// claimProbe moves an open breaker past its cooldown to half-open and
// claims the single probe slot. Only one caller wins until the probe
// resolves.
func (n *node) claimProbe(now time.Time, cooldown time.Duration) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != stOpen || now.Sub(n.openedAt) < cooldown {
		return false
	}
	n.state = stHalfOpen
	return true
}

func (n *node) acquire() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inflight++
	n.dispatched++
}

func (n *node) release() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inflight--
}

// onSuccess closes the breaker (a half-open probe that succeeds
// reinstates the node) and clears the failure streak.
func (n *node) onSuccess() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.succeeded++
	n.fails = 0
	n.state = stClosed
}

// onFailure records a non-shed failure: the streak grows, and crossing
// the threshold — or failing the half-open probe — opens the breaker.
// Reports whether this failure tripped it.
func (n *node) onFailure(now time.Time, threshold int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed++
	n.fails++
	if n.state == stHalfOpen || (n.state == stClosed && n.fails >= threshold) {
		n.state = stOpen
		n.openedAt = now
		n.trips++
		return true
	}
	return false
}

// onShed records a load-shed: counted for the report, invisible to the
// breaker (a node shedding load is doing its job). A half-open probe
// that comes back shed still reinstates the node — it is alive.
func (n *node) onShed() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sheds++
	if n.state == stHalfOpen {
		n.state = stClosed
		n.fails = 0
	}
}

// onNeutral releases a claim without judging the node — the attempt was
// cancelled by the coordinator (a hedge lost the race, or the whole run
// was cancelled), which says nothing about node health. A half-open
// probe rolls back to open so another probe can run.
func (n *node) onNeutral() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == stHalfOpen {
		n.state = stOpen
	}
}

func (n *node) markUnloaded() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loaded = false
}

func (n *node) report() NodeReport {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeReport{
		Node: n.base, State: n.state.String(),
		Dispatched: n.dispatched, Succeeded: n.succeeded,
		Failed: n.failed, Sheds: n.sheds, Trips: n.trips,
	}
}

// ShardStatus is one shard's outcome in the Result.
type ShardStatus struct {
	ID       int    `json:"id"`
	Suite    string `json:"suite"`
	Round    int    `json:"round"`
	Node     string `json:"node,omitempty"` // node that completed it
	Attempts int    `json:"attempts"`
	Hedged   bool   `json:"hedged,omitempty"`
	Done     bool   `json:"done"`
	Error    string `json:"error,omitempty"`
}

// NodeReport is one node's health accounting in the Result.
type NodeReport struct {
	Node       string `json:"node"`
	State      string `json:"state"` // breaker state at end of run
	Dispatched int    `json:"dispatched"`
	Succeeded  int    `json:"succeeded"`
	Failed     int    `json:"failed"`
	Sheds      int    `json:"sheds"`
	Trips      int    `json:"trips"`
}

// Result is a distributed run's outcome. Complete false is the graceful
// degradation contract: the trace still holds the union of every shard
// that did finish, and Shards says exactly which did not and why — the
// distributed analogue of the Errored test verdict, which never vouches
// for what it could not check.
type Result struct {
	// RunID is the run's minted identity, carried on every dispatch as
	// the X-Run-Id header and tagged through every span in Timeline.
	RunID    string
	Shards   []ShardStatus
	Nodes    []NodeReport
	Complete bool
	// Trace is the merged coverage in Config.Net's space.
	Trace *core.Trace
	// Tests holds one result set per suite (from the first shard of
	// that suite to finish — repeated rounds re-run identical tests).
	Tests map[string][]service.RunResult
	// Timeline is the cross-node span tree: the coordinator's own
	// partition/dispatch/merge spans with each shard's span — and,
	// beneath it, the worker-side job profile fetched from
	// GET /jobs/{id}/profile — grafted in. Render with
	// obs.WriteFlameProfile; worker subtrees carry node and run tags.
	Timeline *obs.SpanProfile
}

// Coordinator dispatches shards across the fleet. Create with New;
// node health (breaker state, counters) persists across Run calls.
type Coordinator struct {
	cfg     Config
	nodes   []*node
	metrics *obs.Registry
	fed     *obs.Federation
}

// New validates the config and prepares the fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("coord: no nodes")
	}
	if cfg.Net == nil {
		return nil, errors.New("coord: no network replica")
	}
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:     cfg,
		metrics: obs.NewRegistry(),
		fed:     obs.NewFederation(cfg.FederationMaxAge),
	}
	registerCoordHelp(co.metrics)
	for _, base := range cfg.Nodes {
		co.nodes = append(co.nodes, &node{base: base, c: cfg.NewClient(base)})
	}
	return co, nil
}

// NodeReports returns every node's current health accounting (the same
// rows Result.Nodes carries at the end of a run) — what the
// coordinator's own /stats serves mid-run.
func (co *Coordinator) NodeReports() []NodeReport {
	out := make([]NodeReport, 0, len(co.nodes))
	for _, n := range co.nodes {
		out = append(out, n.report())
	}
	return out
}

// shardRun is a ShardStatus plus the collected fragment bytes and the
// shard's observability state: the coordinator-side span and the
// worker-side profile fetched from the winning node.
type shardRun struct {
	ShardStatus
	runID   string
	raw     []byte
	results []service.RunResult
	span    *obs.Span
	// workerProfile is the winning job's span profile (nil when the
	// fetch failed or decoded malformed — best-effort by design).
	workerProfile *obs.SpanProfile
}

// shardID is the shard's wire identity within its run (the X-Shard-Id
// header value).
func (sh *shardRun) shardID() string { return fmt.Sprintf("s%d", sh.ID) }

// Run partitions the suites into shards, dispatches them across the
// fleet, and merges the fragments. The error return covers only setup
// problems and context cancellation; fleet failures degrade into the
// Result (Complete false, per-shard errors).
func (co *Coordinator) Run(ctx context.Context, suites ...string) (*Result, error) {
	if len(suites) == 0 {
		return nil, errors.New("coord: no suites")
	}
	// Every run gets a minted identity. The run ID rides on each
	// dispatch as X-Run-Id (workers tag their span trees, logs, and
	// pprof labels with it), and the root span anchors the coordinator's
	// half of the cross-node timeline.
	runID := newRunID()
	root := obs.NewRoot("coord.run", co.metrics)
	root.SetTag("run", runID)
	root.Set("suites", int64(len(suites)))
	defer root.End()
	co.cfg.Logger.Info("coord: run starting", "run", runID, "suites", suites, "rounds", co.cfg.Rounds)

	shards := make([]*shardRun, 0, len(suites)*co.cfg.Rounds)
	for round := 0; round < co.cfg.Rounds; round++ {
		for _, s := range suites {
			shards = append(shards, &shardRun{
				ShardStatus: ShardStatus{ID: len(shards), Suite: s, Round: round},
				runID:       runID,
			})
		}
	}
	root.Set("shards", int64(len(shards)))

	// Dispatch: a fixed worker pool pulls shards off a channel. Workers
	// never touch the coordinator's BDD space — fragments stay as bytes
	// until the single-threaded merge below.
	dsp := root.Child("coord.dispatch")
	feed := make(chan *shardRun)
	var wg sync.WaitGroup
	for i := 0; i < co.cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range feed {
				co.runShard(ctx, sh)
			}
		}()
	}
	for _, sh := range shards {
		feed <- sh
	}
	close(feed)
	wg.Wait()
	dsp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("coord: run cancelled: %w", err)
	}

	msp := root.Child("coord.merge")
	res := co.mergeShards(shards)
	msp.End()
	root.End()
	res.RunID = runID
	res.Timeline = assembleTimeline(root, shards)
	return res, nil
}

// assembleTimeline stitches the run's cross-node span tree: the run
// root's own profile (dispatch and merge stages), with each shard's
// span — carrying the worker-side job profile beneath it — grafted
// under the dispatch stage. Assembly happens at the profile level
// because the worker half arrives as an imported SpanProfile, not a
// live span.
func assembleTimeline(root *obs.Span, shards []*shardRun) *obs.SpanProfile {
	tl := root.Profile()
	var dispatch *obs.SpanProfile
	for _, c := range tl.Children {
		if c.Name == "coord.dispatch" {
			dispatch = c
		}
	}
	if dispatch == nil { // cannot happen; guard keeps the graft total
		dispatch = tl
	}
	for _, sh := range shards {
		p := sh.span.Profile()
		p.Attach(sh.workerProfile)
		dispatch.Attach(p)
	}
	return tl
}

// mergeShards decodes every collected fragment against the replica
// network and folds them into one trace — sequentially, in shard order:
// decode and union are BDD-manager work, and the manager is
// single-threaded. Order does not affect the union (it is commutative),
// only the manager's internal node numbering.
func (co *Coordinator) mergeShards(shards []*shardRun) *Result {
	res := &Result{Complete: true, Trace: core.NewTrace(), Tests: map[string][]service.RunResult{}}
	for _, sh := range shards {
		if sh.Done {
			// Guarded: decode and union run on the replica's BDD manager,
			// which a budget trip may have poisoned.
			var derr error
			gerr := bdd.Guard(func() {
				var frag *core.Trace
				if frag, derr = core.DecodeTraceJSON(co.cfg.Net, bytes.NewReader(sh.raw)); derr == nil {
					res.Trace.Merge(frag)
				}
			})
			if err := errors.Join(gerr, derr); err != nil {
				// A fragment that does not decode is a failed shard: its
				// coverage is unknown, so the run cannot claim it.
				sh.Done = false
				sh.Error = fmt.Sprintf("fragment decode: %v", err)
			}
		}
		if sh.Done {
			if _, ok := res.Tests[sh.Suite]; !ok && sh.results != nil {
				res.Tests[sh.Suite] = sh.results
			}
		} else {
			res.Complete = false
		}
		res.Shards = append(res.Shards, sh.ShardStatus)
	}
	for _, n := range co.nodes {
		res.Nodes = append(res.Nodes, n.report())
	}
	return res
}

// runShard drives one shard to completion or to attempt exhaustion.
func (co *Coordinator) runShard(ctx context.Context, sh *shardRun) {
	// The shard span is its own root, not a child of the run root: the
	// timeline grafts it (plus the fetched worker profile) in at the
	// profile level (assembleTimeline), and keeping it out of the live
	// tree keeps concurrent shard spans from contending on one parent.
	// Ended with End, not EndStage — per-shard latency goes to the
	// suite-labelled histogram instead of exploding the shared stage
	// histogram's name space.
	sh.span = obs.NewRoot("coord.shard", co.metrics)
	sh.span.SetTag("run", sh.runID)
	sh.span.SetTag("shard", sh.shardID())
	sh.span.SetTag("suite", sh.Suite)
	start := time.Now()
	defer func() {
		sh.span.Set("attempts", int64(sh.Attempts))
		if sh.Node != "" {
			sh.span.SetTag("node", sh.Node)
		}
		sh.span.End()
		if sh.Done {
			co.metrics.Histogram(MetricShardDuration, obs.DefBuckets, "suite", sh.Suite).
				ObserveSince(start)
		}
	}()
	// Run context rides to the worker on headers, on every request of
	// every attempt: submit, polls, artifact fetches.
	ctx = client.ContextWithHeader(ctx, service.HeaderRunID, sh.runID)
	ctx = client.ContextWithHeader(ctx, service.HeaderShardID, sh.shardID())

	var lastErr error
	var lastNode *node
	for attempt := 1; attempt <= co.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		sh.Attempts = attempt
		if attempt > 1 {
			co.metrics.Counter(MetricRedispatch).Inc()
		}
		// Prefer a node other than the one that just failed this shard;
		// fall back to any healthy node (a one-node fleet retries in
		// place).
		n := co.waitForNode(ctx, lastNode)
		if n == nil {
			n = co.waitForNode(ctx, nil)
		}
		if n == nil {
			lastErr = errors.New("no healthy node")
			co.cfg.Logger.Warn("coord: no healthy node for shard",
				"shard", sh.ID, "suite", sh.Suite, "attempt", attempt)
			continue
		}
		err := co.dispatch(ctx, sh, n)
		if err == nil {
			sh.Done = true
			sh.Error = ""
			return
		}
		lastErr = err
		lastNode = n
		co.cfg.Logger.Warn("coord: shard attempt failed",
			"shard", sh.ID, "suite", sh.Suite, "node", n.base, "attempt", attempt, "err", err)
		co.backoff(ctx, attempt, err)
	}
	if lastErr != nil {
		sh.Error = lastErr.Error()
	}
}

// waitForNode picks a node for a shard, excluding one. A tripped node
// whose cooldown has elapsed takes priority as a half-open probe — the
// probe IS a real shard dispatch, and it must outrank the healthy
// nodes, or a fleet with any capacity left would never re-admit a
// recovered node. Otherwise the closed node with the least in-flight
// work wins. When nothing is available it waits — bounded by the
// cooldown plus slack, so a dead fleet degrades instead of hanging.
func (co *Coordinator) waitForNode(ctx context.Context, exclude *node) *node {
	deadline := time.Now().Add(co.cfg.Cooldown + co.cfg.Backoff + 50*time.Millisecond)
	for {
		var best *node
		now := time.Now()
		for _, n := range co.nodes {
			if n != exclude && n.claimProbe(now, co.cfg.Cooldown) {
				co.cfg.Logger.Info("coord: probing node", "node", n.base)
				best = n
				break
			}
		}
		if best == nil {
			for _, n := range co.nodes {
				if n == exclude || !n.availableClosed() {
					continue
				}
				if best == nil || n.inflightNow() < best.inflightNow() {
					best = n
				}
			}
		}
		if best != nil {
			best.acquire()
			return best
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return nil
		}
		t := time.NewTimer(10 * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
}

// pickHedge is the non-blocking variant for hedged dispatch: a healthy
// node other than the primary, or nothing. Hedging never waits and
// never spends a half-open probe — probes are for recovery, not racing.
func (co *Coordinator) pickHedge(primary *node) *node {
	var best *node
	for _, n := range co.nodes {
		if n == primary || !n.availableClosed() {
			continue
		}
		if best == nil || n.inflightNow() < best.inflightNow() {
			best = n
		}
	}
	if best != nil {
		best.acquire()
	}
	return best
}

// dispatch runs one attempt of a shard on a claimed primary node,
// hedging on a second node if the primary lingers past HedgeAfter.
// The claim on every launched node is released here.
func (co *Coordinator) dispatch(ctx context.Context, sh *shardRun, primary *node) error {
	actx, cancel := context.WithTimeout(ctx, co.cfg.ShardTimeout)
	defer cancel()

	type outcome struct {
		out shardOut
		err error
		n   *node
	}
	ch := make(chan outcome, 2)
	var won atomic.Bool
	launch := func(n *node) {
		go func() {
			asp := sh.span.Child("coord.attempt")
			asp.SetTag("node", n.base)
			out, err := co.attemptOn(actx, sh.Suite, n)
			verdict := ""
			switch {
			case err == nil:
				verdict = "success"
				n.onSuccess()
			case won.Load() || ctx.Err() != nil:
				// Cancelled by the winner or by the caller — says
				// nothing about the node.
				verdict = "neutral"
				n.onNeutral()
			default:
				if _, shed := client.IsShed(err); shed {
					verdict = "shed"
					n.onShed()
				} else {
					verdict = "failure"
					if n.onFailure(time.Now(), co.cfg.FailureThreshold) {
						co.cfg.Logger.Warn("coord: breaker tripped", "node", n.base)
					}
				}
			}
			co.metrics.Counter(MetricDispatch, "node", n.base, "outcome", verdict).Inc()
			asp.SetTag("outcome", verdict)
			asp.End()
			n.release()
			ch <- outcome{out, err, n}
		}()
	}

	launch(primary)
	outstanding := 1
	var hedgeC <-chan time.Time
	if co.cfg.HedgeAfter > 0 {
		t := time.NewTimer(co.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil {
				won.Store(true)
				sh.Node = o.n.base
				sh.raw = o.out.raw
				sh.results = o.out.results
				sh.workerProfile = o.out.profile
				return nil
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("node %s: %w", o.n.base, o.err)
			}
			if outstanding == 0 {
				return firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if sec := co.pickHedge(primary); sec != nil {
				sh.Hedged = true
				co.metrics.Counter(MetricHedges).Inc()
				co.cfg.Logger.Info("coord: hedging shard",
					"shard", sh.ID, "suite", sh.Suite, "primary", primary.base, "hedge", sec.base)
				outstanding++
				launch(sec)
			}
		}
	}
}

// shardOut is one successful attempt's collected payload.
type shardOut struct {
	raw     []byte
	results []service.RunResult
	// profile is the job's worker-side span profile (nil when
	// unavailable — its fetch is best-effort).
	profile *obs.SpanProfile
}

// attemptOn runs a shard once on one node: ensure the network is
// loaded, submit, poll to terminal, download the fragment. A lost
// response after the job actually ran leaves a duplicate execution
// behind on retry — safe, merge is idempotent — so no cleanup pass is
// needed.
func (co *Coordinator) attemptOn(ctx context.Context, suite string, n *node) (shardOut, error) {
	var out shardOut
	if err := co.ensureLoaded(ctx, n); err != nil {
		return out, fmt.Errorf("load network: %w", err)
	}
	j, err := n.c.SubmitJob(ctx, co.cfg.Workers, suite)
	if err != nil {
		return out, fmt.Errorf("submit: %w", err)
	}
	if j, err = n.c.WaitJob(ctx, j.ID, co.cfg.Poll); err != nil {
		return out, fmt.Errorf("wait job %s: %w", j.ID, err)
	}
	if j.State != jobs.StateDone {
		// A worker that restarted (or was never loaded) fails jobs with
		// "no network loaded"; flag it so the next attempt re-pushes
		// before submitting.
		if strings.Contains(j.Error, "no network loaded") {
			n.markUnloaded()
		}
		return out, fmt.Errorf("job %s %s: %s", j.ID, j.State, j.Error)
	}
	if out.raw, err = n.c.JobTraceRaw(ctx, j.ID); err != nil {
		// 410 Gone (artifact lost to a restart) lands here: the retry
		// re-runs the shard, which regenerates the fragment.
		return out, fmt.Errorf("fetch trace %s: %w", j.ID, err)
	}
	if len(j.Result) > 0 {
		if uerr := json.Unmarshal(j.Result, &out.results); uerr != nil {
			return out, fmt.Errorf("decode job %s result: %w", j.ID, uerr)
		}
	}
	// The worker-side span profile is observability, not coverage: its
	// fetch is best-effort and can never fail the shard. Malformed bytes
	// are counted and dropped — obs.DecodeSpanProfile guarantees no
	// input panics the coordinator.
	if praw, perr := n.c.JobProfileRaw(ctx, j.ID); perr != nil {
		co.metrics.Counter(MetricProfileFetchFailures).Inc()
		co.cfg.Logger.Info("coord: job profile unavailable", "node", n.base, "job", j.ID, "err", perr)
	} else if out.profile, perr = obs.DecodeSpanProfile(praw); perr != nil {
		co.metrics.Counter(MetricProfileDecodeFailures).Inc()
		co.cfg.Logger.Warn("coord: job profile malformed", "node", n.base, "job", j.ID, "err", perr)
	}
	return out, nil
}

// ensureLoaded pushes the replica network to a node that has not
// acknowledged one yet, serialized per node.
func (co *Coordinator) ensureLoaded(ctx context.Context, n *node) error {
	n.loadMu.Lock()
	defer n.loadMu.Unlock()
	n.mu.Lock()
	loaded := n.loaded
	n.mu.Unlock()
	if loaded {
		return nil
	}
	if _, err := n.c.LoadNetwork(ctx, co.cfg.Net); err != nil {
		return err
	}
	n.mu.Lock()
	n.loaded = true
	n.mu.Unlock()
	return nil
}

// backoff sleeps between a shard's attempts: base doubled per attempt
// with equal jitter, capped, and stretched to any server Retry-After
// hint carried by the error.
func (co *Coordinator) backoff(ctx context.Context, attempt int, err error) {
	d := co.cfg.Backoff << (attempt - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	d = d/2 + rand.N(d/2+1)
	if hint, shed := client.IsShed(err); shed && hint > d {
		d = min(hint, 5*time.Second)
	}
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-ctx.Done():
		t.Stop()
	}
}
