// Coordinator observability: native metrics, the fleet federation
// loop, and the coordinator's own HTTP surface.
//
// The coordinator is the one process that can see a distributed run
// whole, so it exposes two views at once from a single /metrics:
//
//   - Native series (yardstick_coord_*): dispatch outcomes per node,
//     re-dispatches, hedges, breaker states, per-suite shard latency,
//     federation health. These live in a normal obs.Registry.
//
//   - Federated series: each worker's full metric snapshot, scraped
//     from its /stats (whose Metrics field carries exactly what the
//     worker's own /metrics exposes, job gauges freshly flushed),
//     re-labelled under node="<base-url>". These live in an
//     obs.Federation — per-node snapshots replaced wholesale per
//     scrape, aged out when a node stops answering — because federated
//     counters are re-exported readings that may legally reset, which
//     a Registry's monotonic counters cannot represent.
//
// The two views merge only at exposition time (FleetMetrics), where
// type conflicts and duplicate series are dropped and counted rather
// than double-reported. The native families all carry the
// yardstick_coord_ prefix, so in practice nothing collides with the
// workers' yardstick_* families.
package coord

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"yardstick/internal/obs"
)

// Coordinator-native metric names.
const (
	// MetricDispatch counts dispatch attempts by node and outcome
	// (success, failure, shed, neutral — neutral is a cancelled attempt
	// that says nothing about the node).
	MetricDispatch = "yardstick_coord_dispatch_total"
	// MetricRedispatch counts shard attempts beyond each shard's first.
	MetricRedispatch = "yardstick_coord_redispatch_total"
	// MetricHedges counts hedged (duplicate, racing) dispatches.
	MetricHedges = "yardstick_coord_hedge_total"
	// MetricBreakerState gauges each node's breaker: 0 closed, 1
	// half-open, 2 open.
	MetricBreakerState = "yardstick_coord_breaker_state"
	// MetricShardDuration is the completed-shard latency histogram, by
	// suite: dispatch to collected fragment, queue and retries included.
	MetricShardDuration = "yardstick_coord_shard_duration_seconds"
	// MetricProfileFetchFailures counts worker span profiles that could
	// not be fetched (best-effort; the shard still completes).
	MetricProfileFetchFailures = "yardstick_coord_profile_fetch_failures_total"
	// MetricProfileDecodeFailures counts fetched profiles rejected as
	// malformed by the obs codec.
	MetricProfileDecodeFailures = "yardstick_coord_profile_decode_failures_total"
	// MetricScrapes counts federation scrapes by node and outcome.
	MetricScrapes = "yardstick_coord_scrape_total"
	// MetricFederatedSeries gauges how many federated series the last
	// FleetMetrics exposition carried.
	MetricFederatedSeries = "yardstick_coord_federated_series"
	// MetricMergeDropped gauges series dropped from the last exposition
	// for type conflicts or duplication — nonzero means two sources
	// disagree and one was silenced rather than double-counted.
	MetricMergeDropped = "yardstick_coord_merge_dropped_series"
)

func registerCoordHelp(r *obs.Registry) {
	r.SetHelp(MetricDispatch, "Shard dispatch attempts, by node and outcome")
	r.SetHelp(MetricRedispatch, "Shard attempts beyond the first")
	r.SetHelp(MetricHedges, "Hedged (racing duplicate) dispatches")
	r.SetHelp(MetricBreakerState, "Per-node breaker state: 0 closed, 1 half-open, 2 open")
	r.SetHelp(MetricShardDuration, "Completed shard latency, by suite")
	r.SetHelp(MetricProfileFetchFailures, "Worker span profiles that could not be fetched")
	r.SetHelp(MetricProfileDecodeFailures, "Worker span profiles rejected as malformed")
	r.SetHelp(MetricScrapes, "Federation scrapes, by node and outcome")
	r.SetHelp(MetricFederatedSeries, "Federated series in the last fleet exposition")
	r.SetHelp(MetricMergeDropped, "Series dropped from the last fleet exposition (type conflict or duplicate)")
}

// newRunID mints a 16-hex-char run ID (the same shape as request and
// job IDs). Randomness failures degrade to a timestamp-derived ID.
func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Metrics exposes the coordinator's native metric registry.
func (co *Coordinator) Metrics() *obs.Registry { return co.metrics }

// flushBreakerGauges refreshes the per-node breaker state gauges;
// called at exposition time so a scrape always reflects current state.
func (co *Coordinator) flushBreakerGauges() {
	for _, n := range co.nodes {
		v := 0.0
		switch n.stateNow() {
		case stHalfOpen:
			v = 1
		case stOpen:
			v = 2
		}
		co.metrics.Gauge(MetricBreakerState, "node", n.base).Set(v)
	}
}

// ScrapeNode pulls one worker's /stats and ingests its metric snapshot
// into the federation under the node's base URL. A worker that does not
// answer leaves its previous snapshot in place to age out — failure
// here is recorded, never fatal.
func (co *Coordinator) scrapeNode(ctx context.Context, n *node, now time.Time) error {
	st, err := n.c.Stats(ctx)
	if err != nil {
		co.metrics.Counter(MetricScrapes, "node", n.base, "outcome", "failure").Inc()
		return err
	}
	co.fed.Ingest(n.base, st.Metrics, now)
	co.metrics.Counter(MetricScrapes, "node", n.base, "outcome", "success").Inc()
	return nil
}

// ScrapeFleet runs one federation sweep over every node. Nodes are
// scraped sequentially — fleet sizes here are small and the scrape
// client already bounds each request — and failures are per-node:
// a dead worker costs one error log, not the sweep.
func (co *Coordinator) ScrapeFleet(ctx context.Context) {
	now := time.Now()
	for _, n := range co.nodes {
		if ctx.Err() != nil {
			return
		}
		if err := co.scrapeNode(ctx, n, now); err != nil {
			co.cfg.Logger.Info("coord: scrape failed", "node", n.base, "err", err)
		}
	}
}

// Federate runs the scrape loop every interval until ctx is done — the
// coordinator's pull-based metric federation. Pair it with a metrics
// listener serving WriteFleetMetrics. interval <= 0 means 2s.
func (co *Coordinator) Federate(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	co.ScrapeFleet(ctx)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			co.ScrapeFleet(ctx)
		}
	}
}

// FleetMetrics returns the merged fleet view: the coordinator's native
// series plus every fresh federated node snapshot, sorted and
// de-duplicated. The federation-health gauges describe the very
// exposition being built, so they are computed in two passes: merge
// once to count, set the gauges, snapshot again.
func (co *Coordinator) FleetMetrics() []obs.Metric {
	co.flushBreakerGauges()
	now := time.Now()
	fed := co.fed.Snapshot(now)
	_, dropped := obs.MergeMetrics(co.metrics.Snapshot(), fed)
	co.metrics.Gauge(MetricFederatedSeries).Set(float64(len(fed)))
	co.metrics.Gauge(MetricMergeDropped).Set(float64(dropped))
	merged, _ := obs.MergeMetrics(co.metrics.Snapshot(), fed)
	return merged
}

// WriteFleetMetrics writes the merged fleet view in the Prometheus text
// exposition format — what the coordinator's -metrics-addr /metrics
// serves.
func (co *Coordinator) WriteFleetMetrics(w io.Writer) error {
	return obs.WritePrometheusMetrics(w, co.metrics.Help(), co.FleetMetrics())
}

// FederatedNodes returns the nodes with a fresh snapshot in the fleet
// view — the staleness-filtered federation membership.
func (co *Coordinator) FederatedNodes() []string {
	return co.fed.Nodes(time.Now())
}

// CoordStats is the coordinator's GET /stats body: per-node breaker
// accounting plus federation membership.
type CoordStats struct {
	Nodes []NodeReport `json:"nodes"`
	// Federated lists the worker nodes whose metrics are currently
	// (non-stale) part of the fleet view.
	Federated []string     `json:"federated"`
	Metrics   []obs.Metric `json:"metrics"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the coordinator's own observability surface — what
// cmd/yardstick-coord mounts on -metrics-addr:
//
//	GET /metrics  merged native + federated exposition
//	GET /stats    JSON: node reports, federation membership, metrics
//	GET /healthz  liveness
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		co.WriteFleetMetrics(w)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, CoordStats{
			Nodes:     co.NodeReports(),
			Federated: co.FederatedNodes(),
			Metrics:   co.FleetMetrics(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}
