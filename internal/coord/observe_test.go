package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"yardstick/internal/client"
	"yardstick/internal/obs"
	"yardstick/internal/promlint"
)

// shardProfiles collects the per-shard subtrees of a run timeline,
// keyed by their shard tag.
func shardProfiles(tl *obs.SpanProfile) map[string]*obs.SpanProfile {
	out := map[string]*obs.SpanProfile{}
	tl.Walk(func(_ int, sp *obs.SpanProfile) {
		if sp.Name == "coord.shard" {
			out[sp.Tag("shard")] = sp
		}
	})
	return out
}

// TestTimelineUnderWorkerKill is the cross-node tracing tentpole: a
// 3-node run where one worker is killed mid-run must still produce a
// timeline that covers every completed shard, each with its worker-side
// stage spans linked by the run ID — while the merged coverage stays
// bit-identical to the single-node baseline.
func TestTimelineUnderWorkerKill(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 3)
	suites := []string{"default", "internal", "contract"}

	doomed := nodes[1]
	killer := &crashAfterSubmits{ct: chaos[doomed], after: 3}

	cfg := fastCfg(nodes, chaos, rep)
	cfg.Rounds = 4
	cfg.FailureThreshold = 1
	cfg.NewClient = func(base string) *client.Client {
		var rt http.RoundTripper = chaos[base]
		if base == doomed {
			rt = killer
		}
		return client.New(base,
			client.WithHTTPClient(&http.Client{Transport: rt}),
			client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
		)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), suites...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("run incomplete: %+v", res.Shards)
	}
	if res.RunID == "" {
		t.Fatal("run has no run ID")
	}
	if res.Timeline == nil {
		t.Fatal("run has no timeline")
	}
	if res.Timeline.Tag("run") != res.RunID {
		t.Fatalf("timeline root run tag = %q, want %q", res.Timeline.Tag("run"), res.RunID)
	}

	byShard := shardProfiles(res.Timeline)
	for _, sh := range res.Shards {
		if !sh.Done {
			continue
		}
		id := "s" + strconv.Itoa(sh.ID)
		p, ok := byShard[id]
		if !ok {
			t.Fatalf("completed shard %s missing from the timeline", id)
		}
		if p.Tag("run") != res.RunID {
			t.Errorf("shard %s run tag = %q, want %q", id, p.Tag("run"), res.RunID)
		}
		if p.Tag("node") != sh.Node {
			t.Errorf("shard %s node tag = %q, want %q", id, p.Tag("node"), sh.Node)
		}
		// The worker half: a grafted service.job subtree carrying the SAME
		// run ID (propagated over X-Run-Id, round-tripped through the
		// worker's span tags) and its evaluation stage span.
		var job *obs.SpanProfile
		foundEval := false
		p.Walk(func(_ int, sp *obs.SpanProfile) {
			switch sp.Name {
			case "service.job":
				job = sp
			case "service.evaluate":
				foundEval = true
			}
		})
		if job == nil {
			t.Fatalf("shard %s has no worker-side profile grafted in", id)
		}
		if job.Tag("run") != res.RunID || job.Tag("shard") != id {
			t.Errorf("worker profile for shard %s carries run=%q shard=%q, want run=%q shard=%q",
				id, job.Tag("run"), job.Tag("shard"), res.RunID, id)
		}
		if !foundEval {
			t.Errorf("shard %s worker profile missing the service.evaluate stage", id)
		}
	}

	// The flame rendering of the cross-node tree must work end to end.
	var flame bytes.Buffer
	obs.WriteFlameProfile(&flame, res.Timeline)
	for _, want := range []string{"coord.run", "coord.dispatch", "coord.shard", "service.job"} {
		if !strings.Contains(flame.String(), want) {
			t.Errorf("flame timeline missing %s:\n%s", want, flame.String())
		}
	}

	// And the coverage contract is untouched by all the tracing.
	requireIdentical(t, res.Trace, baseline(t, rep, suites))
}

// corruptProfiles serves garbage bytes for every job-profile fetch,
// leaving all other traffic intact.
type corruptProfiles struct{ rt http.RoundTripper }

func (c corruptProfiles) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := c.rt.RoundTrip(r)
	if err != nil || !strings.HasSuffix(r.URL.Path, "/profile") {
		return resp, err
	}
	resp.Body.Close()
	// Well-formed JSON, invalid profile (negative duration): it passes
	// the HTTP client's body decode and must be rejected by the span
	// profile codec inside the coordinator.
	resp.Body = io.NopCloser(strings.NewReader(`{"name":"evil","durNs":-1}`))
	resp.ContentLength = -1
	return resp, nil
}

// TestMalformedProfilesNeverPoisonMerge: a fleet whose profile payloads
// are all corrupt still completes the run with exact coverage — profile
// fetching is strictly best-effort — and the failure is visible as a
// decode-failure counter, not a crash.
func TestMalformedProfilesNeverPoisonMerge(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 2)
	suites := []string{"default", "internal"}

	cfg := fastCfg(nodes, chaos, rep)
	cfg.NewClient = func(base string) *client.Client {
		return client.New(base,
			client.WithHTTPClient(&http.Client{Transport: corruptProfiles{chaos[base]}}),
			client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
		)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), suites...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("corrupt profiles failed the run: %+v", res.Shards)
	}
	requireIdentical(t, res.Trace, baseline(t, rep, suites))

	// The timeline still exists — coordinator-side spans only.
	if res.Timeline == nil {
		t.Fatal("no timeline")
	}
	res.Timeline.Walk(func(_ int, sp *obs.SpanProfile) {
		if sp.Name == "service.job" {
			t.Error("corrupt worker profile made it into the timeline")
		}
	})

	decodeFails := 0.0
	for _, m := range co.Metrics().Snapshot() {
		if m.Name == MetricProfileDecodeFailures {
			decodeFails += m.Value
		}
	}
	if decodeFails < float64(len(res.Shards)) {
		t.Errorf("decode failures = %v, want >= %d", decodeFails, len(res.Shards))
	}
}

// TestFleetMetricsFederation: after a run, the coordinator's merged
// exposition carries every worker's series under its node label plus
// the native yardstick_coord_* families; a node that stops answering
// ages out of the fleet view; and the whole exposition stays
// promlint-clean throughout.
func TestFleetMetricsFederation(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 3)

	cfg := fastCfg(nodes, chaos, rep)
	cfg.FederationMaxAge = 80 * time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(context.Background(), "default", "internal"); err != nil {
		t.Fatalf("Run: %v", err)
	}

	co.ScrapeFleet(context.Background())
	if got := co.FederatedNodes(); len(got) != 3 {
		t.Fatalf("federated nodes = %v, want all 3", got)
	}

	lintFleet := func() string {
		t.Helper()
		var buf bytes.Buffer
		if err := co.WriteFleetMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		if issues := promlint.Lint(bytes.NewReader(buf.Bytes())); len(issues) > 0 {
			t.Fatalf("fleet exposition lint issues: %v\n%s", issues, buf.String())
		}
		return buf.String()
	}

	body := lintFleet()
	for _, base := range nodes {
		if !strings.Contains(body, `node="`+base+`"`) {
			t.Errorf("exposition missing federated series for %s", base)
		}
	}
	for _, fam := range []string{MetricDispatch, MetricBreakerState, MetricShardDuration, MetricScrapes,
		"yardstick_http_requests_total", "yardstick_jobs_running"} {
		if !strings.Contains(body, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}

	// Kill a worker: its scrapes fail, its last snapshot ages out, and
	// the fleet view converges to the survivors — still lint-clean.
	dead := nodes[2]
	chaos[dead].Crash()
	deadline := time.Now().Add(5 * time.Second)
	for {
		co.ScrapeFleet(context.Background())
		if got := co.FederatedNodes(); len(got) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead node never aged out: %v", co.FederatedNodes())
		}
		time.Sleep(20 * time.Millisecond)
	}
	body = lintFleet()
	if strings.Contains(body, `node="`+dead+`",route`) {
		t.Errorf("dead node's federated series still exposed:\n%s", body)
	}

	// Revival: one successful scrape and the node is back, series intact.
	chaos[dead].Revive()
	co.ScrapeFleet(context.Background())
	if got := co.FederatedNodes(); len(got) != 3 {
		t.Fatalf("revived node not re-federated: %v", got)
	}
	lintFleet()
}

// TestCoordinatorHandler exercises the -metrics-addr surface end to
// end: /metrics (lint-clean, right content type), /stats (decodable,
// naming every node), /healthz.
func TestCoordinatorHandler(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 2)

	co, err := New(fastCfg(nodes, chaos, rep))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(context.Background(), "default"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	co.ScrapeFleet(context.Background())

	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != obs.ContentType {
		t.Fatalf("GET /metrics = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if issues := promlint.Lint(bytes.NewReader(raw)); len(issues) > 0 {
		t.Fatalf("served exposition lint issues: %v", issues)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st CoordStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Nodes) != 2 || len(st.Federated) != 2 {
		t.Fatalf("stats = %d nodes, %d federated, want 2/2", len(st.Nodes), len(st.Federated))
	}
	if len(st.Metrics) == 0 {
		t.Fatal("stats carries no metrics")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
}
