package coord

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yardstick/internal/client"
	"yardstick/internal/core"
	"yardstick/internal/faults"
	"yardstick/internal/netmodel"
	"yardstick/internal/service"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func newSeededRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func quiet() service.Option {
	return service.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// replica builds the deterministic network every party holds: the
// coordinator's merge space, the single-node baseline, and (via
// PUT /network round-trip) each worker's copy.
func replica(t *testing.T) *netmodel.Network {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rg.Net
}

// startWorker boots one yardstickd-shaped worker: empty server (the
// coordinator pushes the network), live job pool.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := service.New(quiet())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.RunJobs(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return ts
}

// fleet boots n workers and returns their base URLs plus one chaos
// transport per node (zero-valued: no faults until a test arms them).
func fleet(t *testing.T, n int) ([]string, map[string]*faults.ChaosTransport) {
	t.Helper()
	bases := make([]string, 0, n)
	chaos := make(map[string]*faults.ChaosTransport, n)
	for i := 0; i < n; i++ {
		ts := startWorker(t)
		bases = append(bases, ts.URL)
		chaos[ts.URL] = &faults.ChaosTransport{}
	}
	return bases, chaos
}

// fastCfg is a test-speed coordinator config over the fleet, routing
// every node's client through its chaos transport.
func fastCfg(nodes []string, chaos map[string]*faults.ChaosTransport, rep *netmodel.Network) Config {
	return Config{
		Nodes: nodes,
		Net:   rep,
		NewClient: func(base string) *client.Client {
			return client.New(base,
				client.WithHTTPClient(&http.Client{Transport: chaos[base]}),
				client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
			)
		},
		Poll:             2 * time.Millisecond,
		ShardTimeout:     10 * time.Second,
		Backoff:          2 * time.Millisecond,
		MaxAttempts:      3,
		FailureThreshold: 2,
		Cooldown:         30 * time.Millisecond,
	}
}

// baseline runs the suites once, sequentially, in-process, against the
// same replica the coordinator merges into — the single-node ground
// truth the distributed run must reproduce exactly.
func baseline(t *testing.T, rep *netmodel.Network, suites []string) *core.Trace {
	t.Helper()
	suite, err := testkit.BuiltinSuite(strings.Join(suites, ","))
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewTrace()
	suite.Run(context.Background(), rep, tr)
	return tr
}

// requireIdentical asserts the distributed trace is bit-identical to
// the single-node baseline: same marked rules, same packet set (same
// canonical BDD node) at every location.
func requireIdentical(t *testing.T, got, want *core.Trace) {
	t.Helper()
	if gs, ws := got.Stats(), want.Stats(); gs != ws {
		t.Fatalf("merged trace stats %+v != baseline %+v", gs, ws)
	}
	if !got.Equal(want) {
		t.Fatal("merged trace differs from the single-node baseline")
	}
}

// TestClusterMatchesSingleNode: the happy path over 3 nodes — with
// repeated rounds, so shards of the same suite land on multiple nodes —
// merges to exactly the single-node sequential trace.
func TestClusterMatchesSingleNode(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 3)
	suites := []string{"default", "connected", "internal", "agg", "contract", "host"}

	cfg := fastCfg(nodes, chaos, rep)
	cfg.Rounds = 2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), suites...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("run incomplete: %+v", res.Shards)
	}
	if len(res.Shards) != len(suites)*2 {
		t.Fatalf("shards = %d, want %d", len(res.Shards), len(suites)*2)
	}
	for _, sh := range res.Shards {
		if !sh.Done || sh.Node == "" {
			t.Fatalf("shard not done: %+v", sh)
		}
	}
	for _, s := range suites {
		rr, ok := res.Tests[s]
		if !ok || len(rr) == 0 {
			t.Fatalf("no test results for suite %s", s)
		}
		for _, r := range rr {
			if !r.Pass {
				t.Fatalf("suite %s test %s failed: %+v", s, r.Name, r)
			}
		}
	}
	total := 0
	for _, nr := range res.Nodes {
		total += nr.Succeeded
	}
	if total != len(res.Shards) {
		t.Fatalf("node successes = %d, want %d", total, len(res.Shards))
	}
	requireIdentical(t, res.Trace, baseline(t, rep, suites))
}

// crashAfterSubmits crashes the chaos transport permanently once the
// node has accepted `after` job submissions — a worker SIGKILLed midway
// through the run, deterministically.
type crashAfterSubmits struct {
	ct    *faults.ChaosTransport
	seen  atomic.Int32
	after int32
}

func (c *crashAfterSubmits) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/jobs") &&
		c.seen.Add(1) == c.after {
		c.ct.Crash()
	}
	return c.ct.RoundTrip(r)
}

// TestKillWorkerMidRun is the tentpole assertion: a 3-node cluster
// where one worker dies after completing real work still finishes the
// run — failed and orphaned shards re-dispatch to the survivors — and
// the merged coverage is bit-identical to the single-node baseline,
// because re-running shards merges by idempotent union.
func TestKillWorkerMidRun(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 3)
	suites := []string{"default", "internal", "contract"}

	// The doomed node dies as it accepts its 3rd job: it has done real
	// work (fragments already collected from it) and still owes work
	// (the accepted job's fragment can never be fetched).
	doomed := nodes[1]
	killer := &crashAfterSubmits{ct: chaos[doomed], after: 3}

	cfg := fastCfg(nodes, chaos, rep)
	cfg.Rounds = 4
	// Threshold 1: the breaker counts *consecutive* failures, and the
	// doomed node can have two shards in flight at crash time whose
	// completions interleave success/failure — tripping on the first
	// failure keeps the "kill was observed" assertion deterministic.
	cfg.FailureThreshold = 1
	cfg.NewClient = func(base string) *client.Client {
		var rt http.RoundTripper = chaos[base]
		if base == doomed {
			rt = killer
		}
		return client.New(base,
			client.WithHTTPClient(&http.Client{Transport: rt}),
			client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
		)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), suites...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("run incomplete after single-node kill: %+v", res.Shards)
	}
	var dead NodeReport
	for _, nr := range res.Nodes {
		if nr.Node == doomed {
			dead = nr
		}
	}
	if dead.Failed == 0 {
		t.Fatalf("killed node reports no failures: %+v", dead)
	}
	if dead.State == "closed" {
		t.Fatalf("killed node's breaker still closed: %+v", dead)
	}
	// Survivors absorbed everything: every shard is done, and the union
	// is exact despite retries, re-dispatch, and duplicate execution.
	requireIdentical(t, res.Trace, baseline(t, rep, suites))
}

// TestHedgedDispatch: a node that black-holes every request (accepts
// connections, never answers) cannot stall the run for ShardTimeout —
// the hedge launches on a healthy node after HedgeAfter and wins.
func TestHedgedDispatch(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 2)
	suites := []string{"default", "internal"}

	// Node 0 hangs everything; chaos hangs resolve when the request
	// context is cancelled, which the hedge's win triggers.
	chaos[nodes[0]].PHang = 1
	chaos[nodes[0]].Rand = newSeededRand()

	cfg := fastCfg(nodes, chaos, rep)
	cfg.HedgeAfter = 25 * time.Millisecond
	cfg.ShardTimeout = 30 * time.Second // only hedging can finish this fast
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := co.Run(context.Background(), suites...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("run incomplete: %+v", res.Shards)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v; hedging should have rescued the hung shards long before ShardTimeout", elapsed)
	}
	hedged := false
	for _, sh := range res.Shards {
		hedged = hedged || sh.Hedged
		if sh.Node == nodes[0] {
			t.Fatalf("shard credited to the black-holed node: %+v", sh)
		}
	}
	if !hedged {
		t.Fatalf("no shard was hedged: %+v", res.Shards)
	}
	requireIdentical(t, res.Trace, baseline(t, rep, suites))
}

// TestAllNodesDownDegrades: with every node dead the run neither errors
// nor hangs — it returns an explicit partial result naming each shard's
// failure, the degradation ladder's last rung.
func TestAllNodesDownDegrades(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 2)
	for _, ct := range chaos {
		ct.Crash()
	}

	cfg := fastCfg(nodes, chaos, rep)
	cfg.MaxAttempts = 2
	cfg.Cooldown = 15 * time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), "default", "internal")
	if err != nil {
		t.Fatalf("Run on a dead fleet must degrade, not error: %v", err)
	}
	if res.Complete {
		t.Fatal("run claims completeness with every node dead")
	}
	for _, sh := range res.Shards {
		if sh.Done || sh.Error == "" {
			t.Fatalf("shard on a dead fleet = %+v, want failed with a reason", sh)
		}
	}
	if st := res.Trace.Stats(); st.Locations != 0 || st.MarkedRules != 0 {
		t.Fatalf("dead fleet produced coverage: %+v", st)
	}
	tripped := 0
	for _, nr := range res.Nodes {
		if nr.Trips > 0 {
			tripped++
		}
	}
	if tripped == 0 {
		t.Fatalf("no breaker tripped on a dead fleet: %+v", res.Nodes)
	}
}

// TestBreakerRecovery: a node dead at the start of the run trips its
// breaker, then revives mid-run; the half-open probe re-admits it and
// it finishes real shards. Node state persists on the Coordinator, so
// one run is enough to observe trip → cooldown → probe → closed.
func TestBreakerRecovery(t *testing.T) {
	rep := replica(t)
	nodes, chaos := fleet(t, 2)
	flaky := nodes[1]
	chaos[flaky].Crash()

	cfg := fastCfg(nodes, chaos, rep)
	cfg.FailureThreshold = 1
	cfg.Cooldown = 10 * time.Millisecond
	cfg.Rounds = 300
	cfg.Concurrency = 2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reviveTimer := time.AfterFunc(20*time.Millisecond, chaos[flaky].Revive)
	defer reviveTimer.Stop()

	res, err := co.Run(context.Background(), "default")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("run incomplete: %+v", res.Shards)
	}
	var fr NodeReport
	for _, nr := range res.Nodes {
		if nr.Node == flaky {
			fr = nr
		}
	}
	if fr.Trips == 0 {
		t.Fatalf("flaky node never tripped: %+v", fr)
	}
	if fr.Succeeded == 0 {
		t.Fatalf("flaky node was never re-admitted after reviving: %+v", fr)
	}
	if fr.State != "closed" {
		t.Fatalf("flaky node's breaker = %s after recovery, want closed", fr.State)
	}
	requireIdentical(t, res.Trace, baseline(t, rep, []string{"default"}))
}

// TestWorkerRestartReload: a worker that restarts (losing its network
// and artifacts, keeping its address) fails the next job with "no
// network loaded"; the coordinator re-pushes the replica and the retry
// succeeds — no operator intervention, no stale state.
func TestWorkerRestartReload(t *testing.T) {
	rep := replica(t)

	// A worker on a listener we control, so a restart keeps the address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	startOn := func(l net.Listener) (*http.Server, context.CancelFunc) {
		srv := service.New(quiet())
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(l)
		ctx, cancel := context.WithCancel(context.Background())
		go srv.RunJobs(ctx)
		return hs, cancel
	}
	hs1, cancel1 := startOn(ln)

	cfg := Config{
		Nodes: []string{"http://" + addr},
		Net:   rep,
		NewClient: func(base string) *client.Client {
			return client.New(base, client.WithRetry(client.RetryPolicy{
				MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
			}))
		},
		Poll: 2 * time.Millisecond, Backoff: 2 * time.Millisecond,
		ShardTimeout: 10 * time.Second, MaxAttempts: 3,
		FailureThreshold: 3, Cooldown: 30 * time.Millisecond,
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(context.Background(), "default")
	if err != nil || !res.Complete {
		t.Fatalf("first run = (%+v, %v), want complete", res, err)
	}

	// Restart: same address, fresh empty server. The coordinator still
	// believes the network is loaded.
	cancel1()
	hs1.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hs2, cancel2 := startOn(ln2)
	defer func() { cancel2(); hs2.Close() }()

	res, err = co.Run(context.Background(), "internal")
	if err != nil {
		t.Fatalf("post-restart run: %v", err)
	}
	if !res.Complete {
		t.Fatalf("post-restart run incomplete: %+v", res.Shards)
	}
	if res.Shards[0].Attempts < 2 {
		t.Fatalf("post-restart shard took %d attempts, want >= 2 (fail, re-push, succeed)", res.Shards[0].Attempts)
	}
	requireIdentical(t, res.Trace, baseline(t, rep, []string{"internal"}))
}
