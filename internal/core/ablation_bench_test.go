package core

import (
	"testing"

	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

// Ablation benchmarks for the design choices DESIGN.md calls out.
//
// 1. The coverage trace merges overlapping reports on the fly (§5.2:
//    "Yardstick does not keep the entire log and removes overlapping
//    information on the fly"). The alternative — append every report to
//    a log and merge at metric time — is implemented below as logTrace.
//    The benchmarks compare both the marking phase and the end-to-end
//    (mark + first metric) cost.
//
// 2. Covered sets T[r] are computed lazily per rule and cached. The
//    alternative eagerly computes all of them; the benchmark shows the
//    difference when only a small slice of the network is queried
//    (zoom-in usage, §6).

// logTrace is the ablation alternative: a full log of (loc, set) marks,
// merged only when read.
type logTrace struct {
	marks []logMark
	rules map[netmodel.RuleID]bool
}

type logMark struct {
	loc dataplane.Loc
	set hdr.Set
}

func newLogTrace() *logTrace {
	return &logTrace{rules: make(map[netmodel.RuleID]bool)}
}

func (t *logTrace) MarkPacket(loc dataplane.Loc, pkts hdr.Set) {
	if pkts.IsEmpty() {
		return
	}
	t.marks = append(t.marks, logMark{loc, pkts})
}

func (t *logTrace) MarkRule(r netmodel.RuleID) { t.rules[r] = true }

// toTrace merges the log into a canonical Trace (the deferred work).
func (t *logTrace) toTrace() *Trace {
	out := NewTrace()
	for _, m := range t.marks {
		out.MarkPacket(m.loc, m.set)
	}
	for r := range t.rules {
		out.MarkRule(r)
	}
	return out
}

// repeatedMarks simulates a redundant test suite: every ToR prefix is
// marked at every device reps times (tests heavily overlap in practice —
// pingmesh and reachability both walk the same spine rules).
func repeatedMarks(ft *topogen.FatTree, tracker Tracker, reps int) {
	for i := 0; i < reps; i++ {
		for _, tor := range ft.ToRs {
			set := ft.Net.Space.DstPrefix(ft.HostPrefix[tor])
			for _, d := range ft.Net.Devices {
				tracker.MarkPacket(dataplane.Injected(d.ID), set)
			}
		}
	}
}

func BenchmarkAblationTraceMergeOnline(b *testing.B) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("merge=online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := NewTrace()
			repeatedMarks(ft, tr, 3)
		}
	})
	b.Run("merge=log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := newLogTrace()
			repeatedMarks(ft, tr, 3)
		}
	})
}

func BenchmarkAblationTraceMergeEndToEnd(b *testing.B) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("merge=online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := NewTrace()
			repeatedMarks(ft, tr, 3)
			c := NewCoverage(ft.Net, tr)
			RuleCoverage(c, nil, Fractional)
		}
	})
	b.Run("merge=log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := newLogTrace()
			repeatedMarks(ft, tr, 3)
			c := NewCoverage(ft.Net, tr.toTrace())
			RuleCoverage(c, nil, Fractional)
		}
	})
}

func BenchmarkAblationLazyCoveredSets(b *testing.B) {
	ft, err := topogen.BuildFatTree(6)
	if err != nil {
		b.Fatal(err)
	}
	tr := NewTrace()
	repeatedMarks(ft, tr, 1)
	// Zoom-in query: rule coverage of a single ToR.
	target := RulesOfDevices(ft.Net, []netmodel.DeviceID{ft.ToRs[0]})
	b.Run("covered=lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCoverage(ft.Net, tr)
			RuleCoverage(c, target, Fractional)
		}
	})
	b.Run("covered=eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCoverage(ft.Net, tr)
			for _, r := range ft.Net.Rules {
				c.Covered(r.ID) // Algorithm 1 over the whole network
			}
			RuleCoverage(c, target, Fractional)
		}
	})
}
