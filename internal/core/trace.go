// Package core implements the paper's coverage framework (§4) and the
// Yardstick two-phase system that computes it (§5).
//
// The primitive unit is the Atomic Testable Unit (ATU): one forwarding
// rule exercised on one packet. Tests never report ATUs directly — during
// the online phase they call the two tracking APIs of §5.1, MarkPacket for
// behavioral tests (the located packets at each hop) and MarkRule for
// state-inspection tests. The tracker folds everything into the coverage
// trace (P_T, R_T) on the fly, so equivalent test suites produce equal
// traces and nothing is double counted.
//
// The post-processing phase (§5.2) derives each rule's covered set T[r]
// with Algorithm 1 and evaluates coverage specifications — guarded strings
// with a measure µ and combinator κ per component (Equation 1), aggregated
// across components (Equation 2).
package core

import (
	"sort"
	"sync"

	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// Tracker is the coverage-reporting interface testing tools call during
// the online phase (§5.1).
type Tracker interface {
	// MarkPacket reports that a behavioral test exercised the located
	// packet set pkts (one call per hop for end-to-end tests).
	MarkPacket(loc dataplane.Loc, pkts hdr.Set)
	// MarkRule reports that a state-inspection test inspected rule r.
	MarkRule(r netmodel.RuleID)
}

// Nop is a Tracker that discards everything; it measures the baseline
// cost of tests with coverage tracking disabled (Figure 8).
type Nop struct{}

// MarkPacket implements Tracker.
func (Nop) MarkPacket(dataplane.Loc, hdr.Set) {}

// MarkRule implements Tracker.
func (Nop) MarkRule(netmodel.RuleID) {}

// Trace is the coverage trace (P_T, R_T) of §5.2: the union of all
// located packets reported by MarkPacket and the set of rules reported by
// MarkRule. Overlapping reports are merged as they arrive, so the trace
// is independent of test order and repetition.
//
// Marking is guarded by a mutex so tests may report concurrently, but the
// underlying BDD manager is single-threaded: concurrent markers must not
// share a manager with other concurrent work.
type Trace struct {
	mu      sync.Mutex
	packets map[dataplane.Loc]hdr.Set
	rules   map[netmodel.RuleID]bool
}

// NewTrace returns an empty coverage trace.
func NewTrace() *Trace {
	return &Trace{
		packets: make(map[dataplane.Loc]hdr.Set),
		rules:   make(map[netmodel.RuleID]bool),
	}
}

// MarkPacket implements Tracker.
func (t *Trace) MarkPacket(loc dataplane.Loc, pkts hdr.Set) {
	if pkts.IsEmpty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.packets[loc]; ok {
		t.packets[loc] = cur.Union(pkts)
	} else {
		t.packets[loc] = pkts
	}
}

// MarkRule implements Tracker.
func (t *Trace) MarkRule(r netmodel.RuleID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules[r] = true
}

// Merge folds another trace into t (used to combine traces of independent
// test suite runs).
func (t *Trace) Merge(other *Trace) {
	other.mu.Lock()
	locs := make(map[dataplane.Loc]hdr.Set, len(other.packets))
	for l, s := range other.packets {
		locs[l] = s
	}
	rules := make([]netmodel.RuleID, 0, len(other.rules))
	for r := range other.rules {
		rules = append(rules, r)
	}
	other.mu.Unlock()
	for l, s := range locs {
		t.MarkPacket(l, s)
	}
	for _, r := range rules {
		t.MarkRule(r)
	}
}

// TransferTo returns a copy of the trace whose packet sets live in dst's
// BDD space; marked rules carry over unchanged. It is how a worker-local
// trace recorded against a network replica is merged back into the
// canonical space: rule and location IDs are indices, identical across
// deterministic replicas, so only the symbolic sets need translating.
//
// All of a trace's sets normally share one source space, so the copy
// runs through a single hdr.Transfer session: one memo spans every
// per-location set (the sets overlap heavily — they are unions of the
// same test packets at successive hops), and when the source space is a
// clone of dst the shared node prefix is skipped outright. Sets already
// in dst pass through untouched; a trace mixing several source spaces
// still transfers correctly (the session is re-opened per source).
//
// The transfer reads the source spaces' managers and writes dst's, so
// the caller must hold them single-threaded for the duration (merge
// worker traces one at a time, after the workers have finished).
func (t *Trace) TransferTo(dst *hdr.Space) *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := NewTrace()
	var tr *hdr.Transfer
	for loc, s := range t.packets {
		if s.Space() == dst {
			out.packets[loc] = s
			continue
		}
		if tr == nil || tr.Src() != s.Space() {
			tr = hdr.NewTransfer(s.Space(), dst)
		}
		out.packets[loc] = tr.Move(s)
	}
	for r := range t.rules {
		out.rules[r] = true
	}
	return out
}

// RemapRules rewrites the trace's rule marks through remap (old ID →
// new ID; netmodel.NoRule drops the mark) after a rule-level network
// mutation. Marks on IDs outside the remap are dropped too — they
// cannot refer to anything in the new universe. Packet marks are keyed
// by location, which survives rule churn unchanged, so they are not
// touched. It returns the old IDs whose marks were dropped, ascending —
// the explicit coverage decay a delta report accounts for.
func (t *Trace) RemapRules(remap []netmodel.RuleID) (dropped []netmodel.RuleID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rules := make(map[netmodel.RuleID]bool, len(t.rules))
	for r := range t.rules {
		if int(r) >= 0 && int(r) < len(remap) && remap[r] != netmodel.NoRule {
			rules[remap[r]] = true
		} else {
			dropped = append(dropped, r)
		}
	}
	t.rules = rules
	sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
	return dropped
}

// Equal reports whether two traces mark the same rules and equal packet
// sets at the same locations. Both traces' sets must live in the same
// BDD space — set equality is canonical-node identity within one
// manager, which is exactly the "bit-identical" a distributed run must
// reproduce against its single-node baseline. Empty-set entries count:
// MarkPacket never stores one, so any difference in stored locations is
// a real coverage difference.
//
// Equal snapshots each trace under its own lock in turn, never holding
// both at once, so it cannot deadlock against a concurrent
// Merge(a, b)/Merge(b, a) pair. Set comparison touches the shared BDD
// manager only trivially (node identity), so no manager serialization
// is needed beyond the usual single-threaded discipline.
func (t *Trace) Equal(other *Trace) bool {
	if t == other {
		return true
	}
	snap := func(tr *Trace) (map[dataplane.Loc]hdr.Set, map[netmodel.RuleID]bool) {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		locs := make(map[dataplane.Loc]hdr.Set, len(tr.packets))
		for l, s := range tr.packets {
			locs[l] = s
		}
		rules := make(map[netmodel.RuleID]bool, len(tr.rules))
		for r := range tr.rules {
			rules[r] = true
		}
		return locs, rules
	}
	tl, tr := snap(t)
	ol, or := snap(other)
	if len(tl) != len(ol) || len(tr) != len(or) {
		return false
	}
	for r := range tr {
		if !or[r] {
			return false
		}
	}
	for loc, s := range tl {
		os, ok := ol[loc]
		if !ok || !s.Equal(os) {
			return false
		}
	}
	return true
}

// PacketsAt returns the trace's packet set at a location (empty set of sp
// when none).
func (t *Trace) PacketsAt(sp *hdr.Space, loc dataplane.Loc) hdr.Set {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.packets[loc]; ok {
		return s
	}
	return sp.Empty()
}

// RuleMarked reports whether r was reported via MarkRule.
func (t *Trace) RuleMarked(r netmodel.RuleID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rules[r]
}

// Locations returns the marked locations (order unspecified).
func (t *Trace) Locations() []dataplane.Loc {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]dataplane.Loc, 0, len(t.packets))
	for l := range t.packets {
		out = append(out, l)
	}
	return out
}

// Stats summarizes trace size.
type TraceStats struct {
	Locations, MarkedRules int
}

// Stats returns the number of marked locations and rules.
func (t *Trace) Stats() TraceStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceStats{Locations: len(t.packets), MarkedRules: len(t.rules)}
}

// Coverage is the post-processing phase state: the network, the trace,
// and the covered sets T[r] of Algorithm 1, computed lazily per rule and
// cached. Coverage is not safe for concurrent use (it shares the
// network's BDD manager).
type Coverage struct {
	Net   *netmodel.Network
	Trace *Trace

	// atDevice caches the union of trace packets per device.
	atDevice map[netmodel.DeviceID]hdr.Set
	// covered caches T[r] per rule.
	covered map[netmodel.RuleID]hdr.Set
}

// NewCoverage prepares metric computation over a frozen network and a
// trace. The trace should not be marked concurrently with computation.
func NewCoverage(net *netmodel.Network, trace *Trace) *Coverage {
	if !net.MatchSetsComputed() {
		panic("core: network match sets not computed")
	}
	return &Coverage{
		Net:      net,
		Trace:    trace,
		atDevice: make(map[netmodel.DeviceID]hdr.Set),
		covered:  make(map[netmodel.RuleID]hdr.Set),
	}
}

// packetsAtDevice returns the union of trace packets over every location
// at the device.
func (c *Coverage) packetsAtDevice(dev netmodel.DeviceID) hdr.Set {
	if s, ok := c.atDevice[dev]; ok {
		return s
	}
	s := c.Net.Space.Empty()
	for _, loc := range c.Trace.Locations() {
		if loc.Device == dev {
			s = s.Union(c.Trace.PacketsAt(c.Net.Space, loc))
		}
	}
	c.atDevice[dev] = s
	return s
}

// Covered returns the covered set T[r] (Algorithm 1): the full match set
// when the rule was inspected directly, otherwise the intersection of the
// match set with the packets the trace saw at the rule's device.
func (c *Coverage) Covered(r netmodel.RuleID) hdr.Set {
	if s, ok := c.covered[r]; ok {
		return s
	}
	rule := c.Net.Rule(r)
	var s hdr.Set
	if c.Trace.RuleMarked(r) {
		s = rule.MatchSet()
	} else {
		s = c.packetsAtDevice(rule.Device).Intersect(rule.MatchSet())
	}
	c.covered[r] = s
	return s
}

// CoveredAt is Covered restricted to packets that arrived at a specific
// location — used by incoming-interface specifications, whose guards are
// limited to packets on the interface (§4.3.2).
func (c *Coverage) CoveredAt(r netmodel.RuleID, loc dataplane.Loc) hdr.Set {
	rule := c.Net.Rule(r)
	if c.Trace.RuleMarked(r) {
		return rule.MatchSet()
	}
	return c.Trace.PacketsAt(c.Net.Space, loc).Intersect(rule.MatchSet())
}
