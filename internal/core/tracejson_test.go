package core

import (
	"bytes"
	"strings"
	"testing"

	"yardstick/internal/dataplane"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9")).Union(sp.DstPrefix(pfx(t, "192.168.0.0/16"))))
	tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/16")).Intersect(sp.Proto(6)))
	tr.MarkRule(cn.r2)

	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := DecodeTraceJSON(cn.n, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Identical packet sets at every location, identical marked rules.
	for _, loc := range []dataplane.Loc{dataplane.Injected(cn.d1), cn.loc1Peer} {
		if !tr.PacketsAt(sp, loc).Equal(tr2.PacketsAt(sp, loc)) {
			t.Errorf("location %+v differs after round trip", loc)
		}
	}
	if !tr2.RuleMarked(cn.r2) || tr2.RuleMarked(cn.r1) {
		t.Error("rule marks differ after round trip")
	}

	// Metrics are identical.
	c1 := NewCoverage(cn.n, tr)
	c2 := NewCoverage(cn.n, tr2)
	for _, r := range cn.n.Rules {
		if !c1.Covered(r.ID).Equal(c2.Covered(r.ID)) {
			t.Errorf("covered set of rule %d differs", r.ID)
		}
	}

	// Deterministic encoding.
	var buf2 bytes.Buffer
	if err := tr2.EncodeJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("encoding not deterministic")
	}
}

func TestTraceJSONAccumulatesAcrossRuns(t *testing.T) {
	// The cross-run workflow: run A records a trace; run B loads it,
	// adds more coverage, and metrics only grow.
	cn := buildChain(t)
	sp := cn.n.Space

	trA := NewTrace()
	trA.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9")))
	var buf bytes.Buffer
	if err := trA.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}

	trB, err := DecodeTraceJSON(cn.n, &buf)
	if err != nil {
		t.Fatal(err)
	}
	before := RuleCoverage(NewCoverage(cn.n, trB), nil, Weighted)
	trB.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.128.0.0/9")))
	after := RuleCoverage(NewCoverage(cn.n, trB), nil, Weighted)
	if after <= before {
		t.Errorf("accumulated coverage did not grow: %v -> %v", before, after)
	}
}

func TestDecodeTraceJSONErrors(t *testing.T) {
	cn := buildChain(t)
	cases := []struct{ name, in string }{
		{"garbage", "nope"},
		{"unknown field", `{"packets":[],"rules":[],"x":1}`},
		{"bad device", `{"packets":[{"device":99,"iface":-1,"cubes":[]}],"rules":[]}`},
		{"bad iface", `{"packets":[{"device":0,"iface":99,"cubes":[]}],"rules":[]}`},
		{"bad cube length", `{"packets":[{"device":0,"iface":-1,"cubes":["01-"]}],"rules":[]}`},
		{"bad rule", `{"packets":[],"rules":[999]}`},
	}
	for _, c := range cases {
		if _, err := DecodeTraceJSON(cn.n, strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Bad cube character.
	bad := strings.Repeat("x", 104)
	if _, err := DecodeTraceJSON(cn.n, strings.NewReader(
		`{"packets":[{"device":0,"iface":-1,"cubes":["`+bad+`"]}],"rules":[]}`)); err == nil {
		t.Error("bad cube character: expected error")
	}
}

// FuzzTraceRoundTrip checks the encode/decode pair is a fixed point:
// any input the decoder accepts must re-encode to a form that decodes
// to the same trace and the same encoding (decode∘encode = identity on
// decoder-accepted traces). FuzzDecodeTraceJSON below only checks the
// decoder doesn't crash or produce an unusable trace; this target pins
// the semantics cross-run accumulation (TestTraceJSONAccumulatesAcrossRuns)
// depends on: a snapshot survives arbitrarily many store/load cycles
// unchanged.
func FuzzTraceRoundTrip(f *testing.F) {
	cn := buildChain(f)
	sp := cn.n.Space
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(f, "10.0.0.0/9")).Union(sp.DstPrefix(pfx(f, "192.168.0.0/16"))))
	tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(f, "10.0.0.0/16")).Intersect(sp.Proto(6)))
	tr.MarkRule(cn.r2)
	var seed bytes.Buffer
	tr.EncodeJSON(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte(`{"packets":[],"rules":[]}`))
	f.Add([]byte(`{"packets":[{"device":0,"iface":-1,"cubes":[]}],"rules":[0]}`))
	f.Add([]byte(`{"packets":[{"device":0,"iface":-1,"cubes":["` + strings.Repeat("-", 104) + `"]}],"rules":[]}`))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr1, err := DecodeTraceJSON(cn.n, bytes.NewReader(in))
		if err != nil {
			return // decoder rejected the input; nothing to round-trip
		}
		var enc1 bytes.Buffer
		if err := tr1.EncodeJSON(&enc1); err != nil {
			t.Fatalf("encode of decoded trace failed: %v", err)
		}
		tr2, err := DecodeTraceJSON(cn.n, bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v\n%s", err, enc1.String())
		}
		// Same packet sets everywhere the decoded traces touched, same
		// rule marks.
		locs := map[dataplane.Loc]bool{}
		for _, trc := range []*Trace{tr1, tr2} {
			for _, loc := range trc.Locations() {
				locs[loc] = true
			}
		}
		for loc := range locs {
			if !tr1.PacketsAt(sp, loc).Equal(tr2.PacketsAt(sp, loc)) {
				t.Fatalf("packets at %+v differ after round trip", loc)
			}
		}
		for _, r := range cn.n.Rules {
			if tr1.RuleMarked(r.ID) != tr2.RuleMarked(r.ID) {
				t.Fatalf("rule %d mark differs after round trip", r.ID)
			}
		}
		// And the encoding itself is a fixed point.
		var enc2 bytes.Buffer
		if err := tr2.EncodeJSON(&enc2); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if enc1.String() != enc2.String() {
			t.Fatalf("encoding is not a fixed point:\n%s\nvs\n%s", enc1.String(), enc2.String())
		}
	})
}

func FuzzDecodeTraceJSON(f *testing.F) {
	cn := buildChain(f)
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), cn.n.Space.DstPrefix(pfx(f, "10.0.0.0/9")))
	tr.MarkRule(cn.r2)
	var seed bytes.Buffer
	tr.EncodeJSON(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte(`{"packets":[],"rules":[]}`))
	f.Add([]byte(`{"packets":[{"device":0,"iface":-1,"cubes":[]}],"rules":[0]}`))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := DecodeTraceJSON(cn.n, bytes.NewReader(in))
		if err != nil {
			return
		}
		// A decoded trace is usable and re-encodable.
		c := NewCoverage(cn.n, got)
		for _, r := range cn.n.Rules {
			c.Covered(r.ID)
		}
		var buf bytes.Buffer
		if err := got.EncodeJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
