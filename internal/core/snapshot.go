package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"yardstick/internal/netmodel"
)

// Trace snapshots make the accumulate-and-query service model crash
// safe: a daemon periodically writes the accumulated trace together
// with a fingerprint of the network it was recorded against, and on
// restart recovers the trace — but only if the loaded network still
// matches, since rule and location IDs are meaningless against any
// other network.

// ErrSnapshotMismatch is returned by DecodeSnapshot and LoadSnapshot
// when the snapshot was recorded against a different network than the
// one provided. Callers should discard the snapshot and start from an
// empty trace.
var ErrSnapshotMismatch = errors.New("core: snapshot network fingerprint mismatch")

// Fingerprint returns a stable hex digest identifying a network's
// topology and rules. It hashes the canonical JSON encoding, which is
// deterministic (devices, interfaces, and rules serialize in ID order).
func Fingerprint(net *netmodel.Network) (string, error) {
	h := sha256.New()
	if err := net.EncodeJSON(h); err != nil {
		return "", fmt.Errorf("core: fingerprint network: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

type snapshotJSON struct {
	Fingerprint string          `json:"fingerprint"`
	Trace       json.RawMessage `json:"trace"`
}

// EncodeSnapshot writes the trace plus the network's fingerprint.
func EncodeSnapshot(w io.Writer, net *netmodel.Network, t *Trace) error {
	fp, err := Fingerprint(net)
	if err != nil {
		return err
	}
	var trace bytes.Buffer
	if err := t.EncodeJSON(&trace); err != nil {
		return fmt.Errorf("core: encode snapshot trace: %w", err)
	}
	return json.NewEncoder(w).Encode(snapshotJSON{
		Fingerprint: fp,
		Trace:       json.RawMessage(trace.Bytes()),
	})
}

// DecodeSnapshot reads a snapshot recorded against net. It returns
// ErrSnapshotMismatch when the fingerprint does not match net's.
func DecodeSnapshot(r io.Reader, net *netmodel.Network) (*Trace, error) {
	var sj snapshotJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	fp, err := Fingerprint(net)
	if err != nil {
		return nil, err
	}
	if sj.Fingerprint != fp {
		return nil, ErrSnapshotMismatch
	}
	return DecodeTraceJSON(net, bytes.NewReader(sj.Trace))
}

// SaveSnapshot atomically writes a JSON snapshot file: the snapshot is
// written to a temporary file in the same directory and renamed into
// place, so a crash mid-write never corrupts the previous snapshot.
func SaveSnapshot(path string, net *netmodel.Network, t *Trace) error {
	return saveAtomic(path, func(w io.Writer) error { return EncodeSnapshot(w, net, t) })
}

// SaveSnapshotArena is SaveSnapshot over the binary arena codec
// (EncodeSnapshotArena): same atomic write, sets persisted as a BDD
// arena instead of cube lists. LoadSnapshot reads either format.
func SaveSnapshotArena(path string, net *netmodel.Network, t *Trace) error {
	return saveAtomic(path, func(w io.Writer) error { return EncodeSnapshotArena(w, net, t) })
}

func saveAtomic(path string, encode func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: save snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: save snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot file recorded against net, sniffing the
// codec by magic: arena snapshots (SaveSnapshotArena) decode through
// DecodeSnapshotArena, anything else through the JSON codec. It returns
// fs.ErrNotExist (wrapped) when no snapshot exists and
// ErrSnapshotMismatch when the snapshot belongs to a different network.
func LoadSnapshot(path string, net *netmodel.Network) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if IsSnapshotArena(data) {
		return DecodeSnapshotArena(data, net)
	}
	return DecodeSnapshot(bytes.NewReader(data), net)
}
