package core

import (
	"testing"

	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
)

func TestTraceRemapRules(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	tr.MarkRule(cn.r1)
	tr.MarkRule(cn.r2)
	tr.MarkRule(cn.rDrop)
	pk := cn.n.Space.DstPrefix(pfx(t, "10.0.1.0/24"))
	tr.MarkPacket(dataplane.Injected(cn.d1), pk)

	// r1 keeps its ID, r2 is dropped, rDrop compacts down one slot.
	remap := make([]netmodel.RuleID, 3)
	remap[cn.r1] = cn.r1
	remap[cn.r2] = netmodel.NoRule
	remap[cn.rDrop] = cn.rDrop - 1
	dropped := tr.RemapRules(remap)
	if len(dropped) != 1 || dropped[0] != cn.r2 {
		t.Fatalf("dropped = %v, want [%d]", dropped, cn.r2)
	}
	if !tr.RuleMarked(cn.r1) {
		t.Error("surviving mark on r1 lost")
	}
	if !tr.RuleMarked(cn.rDrop - 1) {
		t.Error("compacted mark not carried to new ID")
	}
	if tr.RuleMarked(cn.rDrop) {
		t.Error("old ID still marked after compaction")
	}
	// Packet marks are keyed by location and survive untouched.
	if !tr.PacketsAt(cn.n.Space, dataplane.Injected(cn.d1)).Equal(pk) {
		t.Error("packet marks must survive a rule remap")
	}
}

func TestTraceRemapRulesOutOfUniverse(t *testing.T) {
	tr := NewTrace()
	tr.MarkRule(5)  // beyond the remap table
	tr.MarkRule(-3) // nonsense ID (traces are client-reported)
	tr.MarkRule(0)
	dropped := tr.RemapRules([]netmodel.RuleID{0: 0, 1: netmodel.NoRule})
	if len(dropped) != 2 || dropped[0] != -3 || dropped[1] != 5 {
		t.Fatalf("dropped = %v, want [-3 5] (ascending)", dropped)
	}
	if !tr.RuleMarked(0) {
		t.Error("in-range mark lost")
	}
	if st := tr.Stats(); st.MarkedRules != 1 {
		t.Errorf("MarkedRules = %d, want 1", st.MarkedRules)
	}
}
