package core

import (
	"bytes"
	"errors"
	"io/fs"
	"path/filepath"
	"testing"

	"yardstick/internal/bdd"
	"yardstick/internal/dataplane"
)

// snapFixture builds a chain network and a trace with packet and rule
// marks — the usual snapshot material.
func snapFixture(tb testing.TB) (chainNet, *Trace) {
	tb.Helper()
	cn := buildChain(tb)
	sp := cn.n.Space
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(tb, "10.0.0.0/9")).Union(sp.DstPrefix(pfx(tb, "192.168.0.0/16"))))
	tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(tb, "10.0.0.0/16")).Intersect(sp.Proto(6)))
	tr.MarkRule(cn.r2)
	return cn, tr
}

func TestSnapshotArenaRoundTrip(t *testing.T) {
	cn, tr := snapFixture(t)

	var buf bytes.Buffer
	if err := EncodeSnapshotArena(&buf, cn.n, tr); err != nil {
		t.Fatal(err)
	}
	if !IsSnapshotArena(buf.Bytes()) {
		t.Fatal("IsSnapshotArena rejected a fresh snapshot")
	}
	got, err := DecodeSnapshotArena(buf.Bytes(), cn.n)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded sets live in the network's space and are node-equal to
	// the originals (the transfer lands on canonical nodes), so the
	// strongest trace equality holds.
	if !got.Equal(tr) {
		t.Fatal("trace differs after arena round trip")
	}
	// Metrics are identical.
	c1, c2 := NewCoverage(cn.n, tr), NewCoverage(cn.n, got)
	for _, r := range cn.n.Rules {
		if !c1.Covered(r.ID).Equal(c2.Covered(r.ID)) {
			t.Errorf("covered set of rule %d differs", r.ID)
		}
	}
	// Deterministic encoding: re-encoding the decoded trace reproduces
	// the file byte for byte.
	var buf2 bytes.Buffer
	if err := EncodeSnapshotArena(&buf2, cn.n, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("arena snapshot encoding is not deterministic")
	}
}

func TestSnapshotArenaMismatch(t *testing.T) {
	cn, tr := snapFixture(t)
	var buf bytes.Buffer
	if err := EncodeSnapshotArena(&buf, cn.n, tr); err != nil {
		t.Fatal(err)
	}
	other := buildChain(t)
	other.n.AddDevice("extra", "leaf", 9)
	if _, err := DecodeSnapshotArena(buf.Bytes(), other.n); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
}

func TestSnapshotArenaRejectsDamage(t *testing.T) {
	cn, tr := snapFixture(t)
	var buf bytes.Buffer
	if err := EncodeSnapshotArena(&buf, cn.n, tr); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		got, err := DecodeSnapshotArena(data, cn.n)
		if err == nil {
			t.Fatalf("%s: decode accepted corrupt input", name)
		}
		if got != nil {
			t.Fatalf("%s: non-nil trace alongside error", name)
		}
		if errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("%s: corruption misreported as fingerprint mismatch: %v", name, err)
		}
	}

	check("empty", nil)
	check("truncated header", good[:8])
	check("truncated mid-fingerprint", good[:20])
	check("truncated body", good[:len(good)-10])
	check("trailing garbage", append(append([]byte(nil), good...), 0))

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	check("bad magic", bad)

	// A flipped bit anywhere fails the outer checksum.
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	check("bit flip", bad)
}

func TestSaveSnapshotArenaAndSniffingLoad(t *testing.T) {
	cn, tr := snapFixture(t)
	dir := t.TempDir()

	// Arena file loads through the same LoadSnapshot entry point.
	ap := filepath.Join(dir, "arena.snap")
	if err := SaveSnapshotArena(ap, cn.n, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(ap, cn.n)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) {
		t.Error("arena snapshot differs after LoadSnapshot")
	}

	// JSON files still load (the codec is sniffed, not configured).
	jp := filepath.Join(dir, "json.snap")
	if err := SaveSnapshot(jp, cn.n, tr); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := LoadSnapshot(jp, cn.n)
	if err != nil {
		t.Fatal(err)
	}
	if !gotJSON.Equal(tr) {
		t.Error("JSON snapshot differs after LoadSnapshot")
	}

	// Missing files still surface fs.ErrNotExist for the restore path.
	if _, err := LoadSnapshot(filepath.Join(dir, "nope"), cn.n); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file err = %v, want fs.ErrNotExist", err)
	}

	// Restore must charge the live manager's budget: a poisoned-tight
	// budget degrades into an error, not a panic.
	cn.n.Space.SetLimits(bdd.Limits{MaxOps: 1})
	if _, err := LoadSnapshot(ap, cn.n); !errors.Is(err, bdd.ErrBudgetExceeded) {
		t.Errorf("budgeted restore err = %v, want ErrBudgetExceeded", err)
	}
	cn.n.Space.SetLimits(bdd.Limits{})
}

// FuzzSnapshotArenaDecode mirrors FuzzArenaDecode one layer up: no
// input may panic, and any accepted input must round-trip stably — the
// re-encoding decodes to an equal trace and is itself a fixed point.
// (Byte-identity to the *input* is not required: a hand-crafted but
// valid snapshot may carry arena nodes the encoder would compact away.)
func FuzzSnapshotArenaDecode(f *testing.F) {
	cn, tr := snapFixture(f)
	var buf bytes.Buffer
	if err := EncodeSnapshotArena(&buf, cn.n, tr); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(snapMagic))
	var empty bytes.Buffer
	if err := EncodeSnapshotArena(&empty, cn.n, NewTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSnapshotArena(data, cn.n)
		if err != nil {
			return
		}
		var e1 bytes.Buffer
		if err := EncodeSnapshotArena(&e1, cn.n, got); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		got2, err := DecodeSnapshotArena(e1.Bytes(), cn.n)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v", err)
		}
		if !got2.Equal(got) {
			t.Fatal("trace changed across a re-encode cycle")
		}
		var e2 bytes.Buffer
		if err := EncodeSnapshotArena(&e2, cn.n, got2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
