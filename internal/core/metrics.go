package core

import (
	"context"

	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// RuleCoverage aggregates rule coverage across the given rules (all rules
// in the network when rules is nil).
func RuleCoverage(c *Coverage, rules []netmodel.RuleID, kind AggKind) float64 {
	acc := NewAccum(kind)
	add := func(rid netmodel.RuleID) {
		ms := c.Net.Rule(rid).MatchSet()
		v := c.Covered(rid).FractionOf(ms)
		acc.Add(clamp01(v), ms.Fraction())
	}
	if rules == nil {
		for _, r := range c.Net.Rules {
			add(r.ID)
		}
	} else {
		for _, rid := range rules {
			add(rid)
		}
	}
	return acc.Value()
}

// DeviceCoverage aggregates device coverage across the given devices (all
// devices when devs is nil). Each device's weight is the packet space its
// rules handle.
func DeviceCoverage(c *Coverage, devs []netmodel.DeviceID, kind AggKind) float64 {
	if devs == nil {
		devs = make([]netmodel.DeviceID, len(c.Net.Devices))
		for i := range devs {
			devs[i] = netmodel.DeviceID(i)
		}
	}
	acc := NewAccum(kind)
	for _, dev := range devs {
		s := DeviceSpec(c.Net, dev)
		w := 0.0
		for _, wi := range s.Weights {
			w += wi
		}
		acc.Add(ComponentCoverage(c, s), w)
	}
	return acc.Value()
}

// InterfaceCoverage aggregates outgoing-interface coverage across the
// given interfaces (all interfaces when ifaces is nil).
func InterfaceCoverage(c *Coverage, ifaces []netmodel.IfaceID, kind AggKind) float64 {
	if ifaces == nil {
		ifaces = make([]netmodel.IfaceID, len(c.Net.Ifaces))
		for i := range ifaces {
			ifaces[i] = netmodel.IfaceID(i)
		}
	}
	acc := NewAccum(kind)
	for _, ifid := range ifaces {
		s := OutIfaceSpec(c.Net, ifid)
		w := 0.0
		for _, wi := range s.Weights {
			w += wi
		}
		acc.Add(ComponentCoverage(c, s), w)
	}
	return acc.Value()
}

// InIfaceCoverage aggregates incoming-interface coverage — how well the
// state responsible for packets *entering* each interface is tested —
// across the given interfaces (all interfaces when nil).
func InIfaceCoverage(c *Coverage, ifaces []netmodel.IfaceID, kind AggKind) float64 {
	if ifaces == nil {
		ifaces = make([]netmodel.IfaceID, len(c.Net.Ifaces))
		for i := range ifaces {
			ifaces[i] = netmodel.IfaceID(i)
		}
	}
	acc := NewAccum(kind)
	for _, ifid := range ifaces {
		s := InIfaceSpec(c.Net, ifid)
		w := 0.0
		for _, wi := range s.Weights {
			w += wi
		}
		acc.Add(ComponentCoverage(c, s), w)
	}
	return acc.Value()
}

// PathCoverageResult reports an aggregate over the path universe.
type PathCoverageResult struct {
	Value    float64
	Paths    int  // paths processed
	Complete bool // false when a budget cut enumeration short
}

// PathCoverage enumerates the path universe from the given starts
// (EdgeStarts when nil) and aggregates Equation-3 coverage per path,
// streaming — paths are never materialized (§5.2 Step 3). Each path's
// weight is the size of its guard. Cancelling ctx stops enumeration;
// the result then carries the partial aggregate with Complete=false.
func PathCoverage(ctx context.Context, c *Coverage, starts []dataplane.Start, opts dataplane.EnumOpts, kind AggKind) PathCoverageResult {
	if starts == nil {
		starts = dataplane.EdgeStarts(c.Net)
	}
	acc := NewAccum(kind)
	n, complete := dataplane.EnumeratePaths(ctx, c.Net, starts, opts, func(p dataplane.Path) bool {
		v := PathMeasure(c, GuardedString{Rules: p.Rules})
		acc.Add(clamp01(v), p.Guard.Fraction())
		return true
	})
	return PathCoverageResult{Value: acc.Value(), Paths: n, Complete: complete}
}

// FlowCoverage computes coverage of one flow (start location and header
// space) per §4.3.2: the weighted average of end-to-end path coverage
// across the flow's paths.
func FlowCoverage(c *Coverage, start dataplane.Loc, flow hdr.Set) float64 {
	return ComponentCoverage(c, FlowSpec(c.Net, start, flow))
}

// DevicesByRole returns the devices with the given role.
func DevicesByRole(net *netmodel.Network, role netmodel.Role) []netmodel.DeviceID {
	var out []netmodel.DeviceID
	for _, d := range net.Devices {
		if d.Role == role {
			out = append(out, d.ID)
		}
	}
	return out
}

// FilterDevices returns the devices accepted by keep — the zoom-in hook
// of §6.
func FilterDevices(net *netmodel.Network, keep func(*netmodel.Device) bool) []netmodel.DeviceID {
	var out []netmodel.DeviceID
	for _, d := range net.Devices {
		if keep(d) {
			out = append(out, d.ID)
		}
	}
	return out
}

// IfacesOfDevices returns every interface on the given devices.
func IfacesOfDevices(net *netmodel.Network, devs []netmodel.DeviceID) []netmodel.IfaceID {
	var out []netmodel.IfaceID
	for _, dev := range devs {
		out = append(out, net.Device(dev).Ifaces...)
	}
	return out
}

// RulesOfDevices returns every rule on the given devices.
func RulesOfDevices(net *netmodel.Network, devs []netmodel.DeviceID) []netmodel.RuleID {
	var out []netmodel.RuleID
	for _, dev := range devs {
		out = append(out, net.DeviceRules(dev)...)
	}
	return out
}

// UncoveredRules returns the rules with zero coverage among the given set
// (all rules when nil) — the drill-down the case study used to find the
// testing gaps (§7.2).
func UncoveredRules(c *Coverage, rules []netmodel.RuleID) []netmodel.RuleID {
	if rules == nil {
		rules = make([]netmodel.RuleID, len(c.Net.Rules))
		for i := range rules {
			rules[i] = netmodel.RuleID(i)
		}
	}
	var out []netmodel.RuleID
	for _, rid := range rules {
		if c.Covered(rid).IsEmpty() && !c.Net.Rule(rid).MatchSet().IsEmpty() {
			out = append(out, rid)
		}
	}
	return out
}

// UncoveredByOrigin buckets uncovered rules by route origin — the §7.2
// categorization (internal, connected, wide-area, …).
func UncoveredByOrigin(c *Coverage, rules []netmodel.RuleID) map[netmodel.RouteOrigin]int {
	out := make(map[netmodel.RouteOrigin]int)
	for _, rid := range UncoveredRules(c, rules) {
		out[c.Net.Rule(rid).Origin]++
	}
	return out
}
