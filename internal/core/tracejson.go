package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
)

// Trace serialization lets coverage accumulate across test-suite runs
// and days — the "compare coverage across time for the same network"
// use case of §3.2. Packet sets are stored exactly as BDD cubes, so a
// decoded trace yields identical metrics.
//
// Rule and location IDs are only meaningful alongside the network the
// trace was recorded against; store the trace next to the network's own
// JSON (netmodel.EncodeJSON).

type traceJSON struct {
	Packets []tracePackets `json:"packets"`
	Rules   []int32        `json:"rules"`
}

type tracePackets struct {
	Device int32    `json:"device"`
	Iface  int32    `json:"iface"` // -1 = injected at the device
	Cubes  []string `json:"cubes"`
}

// EncodeJSON writes the trace. Output is deterministic (sorted by
// location and rule).
//
// The snapshot — including cube extraction, which is BDD-manager work and
// must stay serialized with concurrent markers — happens under the trace
// lock; JSON encoding and the writes to w happen after it is released, so
// a slow writer (a snapshot to disk, a stalled HTTP client) never blocks
// concurrent marking.
func (t *Trace) EncodeJSON(w io.Writer) error {
	t.mu.Lock()

	var tj traceJSON
	locs := make([]dataplane.Loc, 0, len(t.packets))
	for loc := range t.packets {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Device != locs[j].Device {
			return locs[i].Device < locs[j].Device
		}
		return locs[i].Iface < locs[j].Iface
	})
	for _, loc := range locs {
		tj.Packets = append(tj.Packets, tracePackets{
			Device: int32(loc.Device),
			Iface:  int32(loc.Iface),
			Cubes:  t.packets[loc].Cubes(),
		})
	}
	for r := range t.rules {
		tj.Rules = append(tj.Rules, int32(r))
	}
	sort.Slice(tj.Rules, func(i, j int) bool { return tj.Rules[i] < tj.Rules[j] })
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(tj)
}

// DecodeTraceJSON reads a trace recorded against the given network. The
// network bounds validation: device, interface, and rule indices must be
// in range.
func DecodeTraceJSON(net *netmodel.Network, r io.Reader) (*Trace, error) {
	var tj traceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tj); err != nil {
		return nil, fmt.Errorf("core: decode trace: %w", err)
	}
	t := NewTrace()
	for i, p := range tj.Packets {
		if int(p.Device) < 0 || int(p.Device) >= len(net.Devices) {
			return nil, fmt.Errorf("core: trace entry %d: device %d out of range", i, p.Device)
		}
		if p.Iface != int32(netmodel.NoIface) && (int(p.Iface) < 0 || int(p.Iface) >= len(net.Ifaces)) {
			return nil, fmt.Errorf("core: trace entry %d: iface %d out of range", i, p.Iface)
		}
		set, err := net.Space.FromCubes(p.Cubes)
		if err != nil {
			return nil, fmt.Errorf("core: trace entry %d: %w", i, err)
		}
		t.MarkPacket(dataplane.Loc{
			Device: netmodel.DeviceID(p.Device),
			Iface:  netmodel.IfaceID(p.Iface),
		}, set)
	}
	for i, r := range tj.Rules {
		if int(r) < 0 || int(r) >= len(net.Rules) {
			return nil, fmt.Errorf("core: trace rule %d: id %d out of range", i, r)
		}
		t.MarkRule(netmodel.RuleID(r))
	}
	return t, nil
}
