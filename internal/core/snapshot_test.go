package core

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
)

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	cn := buildChain(t)
	fp1, err := Fingerprint(cn.n)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(cn.n)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint not stable: %s != %s", fp1, fp2)
	}
	if len(fp1) != 64 {
		t.Errorf("fingerprint length = %d, want 64 hex chars", len(fp1))
	}

	fpOther, err := Fingerprint(buildVariantNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if fpOther == fp1 {
		t.Error("different networks should have different fingerprints")
	}
}

// buildVariantNet is a chain like buildChain's but with an extra drop
// rule, so its fingerprint must differ.
func buildVariantNet(t testing.TB) *netmodel.Network {
	t.Helper()
	n := netmodel.New()
	d1 := n.AddDevice("d1", netmodel.RoleLeaf, 1)
	d2 := n.AddDevice("d2", netmodel.RoleSpine, 2)
	i1, _ := n.Connect(d1, d2, pfx(t, "10.255.0.0/31"))
	n.AddFIBRule(d1, netmodel.MatchDst(pfx(t, "10.0.0.0/8")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{i1}}, netmodel.OriginInternal)
	n.AddFIBRule(d2, netmodel.MatchDst(pfx(t, "192.168.0.0/16")),
		netmodel.Action{Kind: netmodel.ActDrop}, netmodel.OriginStatic)
	n.ComputeMatchSets()
	return n
}

func TestSnapshotRoundTrip(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	tr.MarkRule(cn.r1)
	tr.MarkPacket(dataplane.Injected(cn.d1), cn.n.Space.DstPrefix(pfx(t, "10.0.0.0/16")))

	path := filepath.Join(t.TempDir(), "trace.snap")
	if err := SaveSnapshot(path, cn.n, tr); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSnapshot(path, cn.n)
	if err != nil {
		t.Fatal(err)
	}
	if !got.RuleMarked(cn.r1) {
		t.Error("restored trace lost the marked rule")
	}
	want := tr.PacketsAt(cn.n.Space, dataplane.Injected(cn.d1))
	if !got.PacketsAt(cn.n.Space, dataplane.Injected(cn.d1)).Equal(want) {
		t.Error("restored trace packets differ")
	}

	// Saving again overwrites atomically and leaves no temp files.
	if err := SaveSnapshot(path, cn.n, tr); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	tr.MarkRule(cn.r1)
	path := filepath.Join(t.TempDir(), "trace.snap")
	if err := SaveSnapshot(path, cn.n, tr); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadSnapshot(path, buildVariantNet(t)); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("LoadSnapshot against a different network = %v, want ErrSnapshotMismatch", err)
	}
}

func TestLoadSnapshotMissing(t *testing.T) {
	cn := buildChain(t)
	_, err := LoadSnapshot(filepath.Join(t.TempDir(), "absent.snap"), cn.n)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("LoadSnapshot on missing file = %v, want fs.ErrNotExist", err)
	}
}
