// Binary trace snapshots over the BDD arena format.
//
// The JSON snapshot (snapshot.go) serializes packet sets as cube lists —
// exact, but cube extraction can blow up for sets with many disjoint
// cubes, and decoding re-derives every set through full BDD apply
// chains. The arena snapshot instead persists the sets *as a BDD*: the
// per-location sets are extracted into a compact private manager (one
// hdr.Transfer session, so shared structure is stored once), that
// manager's flat node array is dumped via the bdd arena codec, and the
// per-location roots are recorded as plain node indices. Restore decodes
// the arena and transfers the roots back into the live network's space —
// linear in the stored representation, no cube round-trip in either
// direction.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "YSS1"
//	4       4     version (currently 1)
//	8       4     fingerprint length F
//	12      F     network fingerprint (core.Fingerprint, hex)
//	…       8     bdd arena length A
//	…       A     bdd arena blob (bdd.AppendArena, self-checksummed)
//	…       4     location count L
//	…       12*L  locations: device i32, iface i32, root u32,
//	              sorted by (device, iface)
//	…       4     rule count R
//	…       4*R   marked rule IDs, i32, ascending
//	…       4     CRC-32 (IEEE) of everything before it
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"yardstick/internal/bdd"
	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// Arena snapshot format constants.
const (
	snapMagic   = "YSS1"
	snapVersion = 1
)

// ErrSnapshotFormat marks a structurally invalid arena snapshot: wrong
// magic, truncation, a failed checksum, or indices that do not resolve
// against the network. (A valid snapshot of a *different* network is
// ErrSnapshotMismatch, as with the JSON codec.)
var ErrSnapshotFormat = errors.New("core: invalid arena snapshot")

// IsSnapshotArena reports whether data begins with the arena snapshot
// magic — the sniff LoadSnapshot uses to pick a codec.
func IsSnapshotArena(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == snapMagic
}

// snapLoc is one encoded location record.
type snapLoc struct {
	dev   netmodel.DeviceID
	iface netmodel.IfaceID
	root  bdd.Node
}

// EncodeSnapshotArena writes the trace plus the network's fingerprint in
// the binary arena format. The set extraction (BDD-manager work, held
// under the trace lock like EncodeJSON's cube extraction) reads net's
// space; the charged transfer work lands on the private extraction
// manager, so a budget installed on net never trips here.
func EncodeSnapshotArena(w io.Writer, net *netmodel.Network, t *Trace) error {
	fp, err := Fingerprint(net)
	if err != nil {
		return err
	}

	t.mu.Lock()
	locs := make([]dataplane.Loc, 0, len(t.packets))
	for loc := range t.packets {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Device != locs[j].Device {
			return locs[i].Device < locs[j].Device
		}
		return locs[i].Iface < locs[j].Iface
	})
	// Extract the sets into a compact private space: the arena then holds
	// only the nodes the trace actually reaches, not the whole evaluation
	// universe, and shared structure across locations is stored once.
	ex := hdr.NewFamilySpace(net.Family())
	tr := hdr.NewTransfer(net.Space, ex)
	recs := make([]snapLoc, 0, len(locs))
	for _, loc := range locs {
		recs = append(recs, snapLoc{dev: loc.Device, iface: loc.Iface, root: tr.Move(t.packets[loc]).Node()})
	}
	rules := make([]netmodel.RuleID, 0, len(t.rules))
	for r := range t.rules {
		rules = append(rules, r)
	}
	t.mu.Unlock()
	sort.Slice(rules, func(i, j int) bool { return rules[i] < rules[j] })

	am := ex.Manager()
	buf := make([]byte, 0, 4+4+4+len(fp)+8+am.ArenaSize()+4+12*len(recs)+4+4*len(rules)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fp)))
	buf = append(buf, fp...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(am.ArenaSize()))
	buf = am.AppendArena(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.dev))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.iface))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.root))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rules)))
	for _, r := range rules {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("core: write arena snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshotArena reads an arena snapshot recorded against net. It
// returns ErrSnapshotMismatch when the fingerprint belongs to another
// network and errors wrapping ErrSnapshotFormat (or the bdd arena
// errors) for damaged input; no input panics. The decoded sets are
// transferred into net's space, charging its budget and observing its
// watched context like any other symbolic work.
func DecodeSnapshotArena(data []byte, net *netmodel.Network) (*Trace, error) {
	// header through fingerprint length, plus the three trailing counts
	// and the CRC.
	if len(data) < 4+4+4+8+4+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal snapshot", ErrSnapshotFormat, len(data))
	}
	if !IsSnapshotArena(data) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrSnapshotFormat, v, snapVersion)
	}
	if got, sum := binary.LittleEndian.Uint32(data[len(data)-4:]), crc32.ChecksumIEEE(data[:len(data)-4]); got != sum {
		return nil, fmt.Errorf("%w: crc %08x, computed %08x", ErrSnapshotFormat, got, sum)
	}
	rd := &snapReader{data: data[:len(data)-4], off: 8}

	fpLen := rd.u32()
	if fpLen > 1<<10 {
		return nil, fmt.Errorf("%w: fingerprint length %d out of range", ErrSnapshotFormat, fpLen)
	}
	fp := string(rd.bytes(int(fpLen)))
	if rd.short {
		return nil, fmt.Errorf("%w: truncated fingerprint", ErrSnapshotFormat)
	}
	want, err := Fingerprint(net)
	if err != nil {
		return nil, err
	}
	if fp != want {
		return nil, ErrSnapshotMismatch
	}

	arenaLen := rd.u64()
	if rd.short || arenaLen > uint64(rd.remaining()) {
		return nil, fmt.Errorf("%w: arena length %d exceeds snapshot", ErrSnapshotFormat, arenaLen)
	}
	am, err := bdd.DecodeArena(rd.bytes(int(arenaLen)))
	if err != nil {
		return nil, fmt.Errorf("core: arena snapshot: %w", err)
	}
	if am.NumVars() != net.Space.NumBits() {
		return nil, fmt.Errorf("%w: arena is %d bits wide, network space is %d", ErrSnapshotFormat, am.NumVars(), net.Space.NumBits())
	}

	nLocs := rd.u32()
	if rd.short || uint64(nLocs)*12 > uint64(rd.remaining()) {
		return nil, fmt.Errorf("%w: location count %d exceeds snapshot", ErrSnapshotFormat, nLocs)
	}
	recs := make([]snapLoc, nLocs)
	for i := range recs {
		recs[i] = snapLoc{
			dev:   netmodel.DeviceID(int32(rd.u32())),
			iface: netmodel.IfaceID(int32(rd.u32())),
			root:  bdd.Node(int32(rd.u32())),
		}
		rec := &recs[i]
		if int(rec.dev) < 0 || int(rec.dev) >= len(net.Devices) {
			return nil, fmt.Errorf("%w: location %d: device %d out of range", ErrSnapshotFormat, i, rec.dev)
		}
		if rec.iface != netmodel.NoIface && (int(rec.iface) < 0 || int(rec.iface) >= len(net.Ifaces)) {
			return nil, fmt.Errorf("%w: location %d: iface %d out of range", ErrSnapshotFormat, i, rec.iface)
		}
		if rec.root < 0 || int(rec.root) >= am.Size() {
			return nil, fmt.Errorf("%w: location %d: root %d outside arena", ErrSnapshotFormat, i, rec.root)
		}
	}
	nRules := rd.u32()
	if rd.short || uint64(nRules)*4 > uint64(rd.remaining()) {
		return nil, fmt.Errorf("%w: rule count %d exceeds snapshot", ErrSnapshotFormat, nRules)
	}
	ruleIDs := make([]netmodel.RuleID, nRules)
	for i := range ruleIDs {
		ruleIDs[i] = netmodel.RuleID(int32(rd.u32()))
		if int(ruleIDs[i]) < 0 || int(ruleIDs[i]) >= len(net.Rules) {
			return nil, fmt.Errorf("%w: rule entry %d: id %d out of range", ErrSnapshotFormat, i, ruleIDs[i])
		}
	}
	if rd.short || rd.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotFormat, rd.remaining())
	}

	// Transfer the roots into the live space through one session. Guard:
	// the live manager may carry a budget, and restore work must degrade
	// into an error like any other budgeted evaluation.
	t := NewTrace()
	gerr := bdd.Guard(func() {
		tr := net.Space.Manager().BeginTransfer(am)
		for _, rec := range recs {
			t.MarkPacket(
				dataplane.Loc{Device: rec.dev, Iface: rec.iface},
				net.Space.FromNode(tr.Copy(rec.root)),
			)
		}
	})
	if gerr != nil {
		return nil, fmt.Errorf("core: arena snapshot restore: %w", gerr)
	}
	for _, r := range ruleIDs {
		t.MarkRule(r)
	}
	return t, nil
}

// snapReader is a bounds-tracked cursor over the snapshot payload. A
// read past the end sets short and sticks there, returning zero values;
// decode checks short at every stage boundary, so truncated input is
// always a typed format error, never a panic.
type snapReader struct {
	data  []byte
	off   int
	short bool
}

func (r *snapReader) remaining() int { return len(r.data) - r.off }

func (r *snapReader) take(n int) []byte {
	if r.short || r.remaining() < n {
		r.short = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) bytes(n int) []byte { return r.take(n) }
