package core

import (
	"context"

	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// GuardedString is the dependency unit of §4.3.1: a packet-set guard P
// followed by a rule path r1…rj (a valid forwarding sequence). Single-rule
// components use one-rule "paths".
type GuardedString struct {
	// Guard is P. An invalid (zero) Guard means "the match set of the
	// first rule", the common case for single-rule dependencies.
	Guard hdr.Set
	Rules []netmodel.RuleID
	// At optionally restricts which trace packets count as covering the
	// rules — incoming-interface specs limit guards to packets on the
	// interface (§4.3.2). Nil means any location at the rule's device.
	At *dataplane.Loc
}

// guard resolves the effective guard set.
func (g GuardedString) guard(c *Coverage) hdr.Set {
	if g.Guard.Space() != nil {
		return g.Guard
	}
	return c.Net.Rule(g.Rules[0]).MatchSet()
}

// Measure is µ of §4.3.1: the extent, in [0,1], to which the test suite
// (via the Coverage's trace) covers one guarded string.
type Measure func(c *Coverage, g GuardedString) float64

// Combinator is κ of §4.3.1: it folds the per-guarded-string measures of
// one component into the component's coverage. The weights slice is
// parallel to vals (nil when the spec carries no weights).
type Combinator func(vals, weights []float64) float64

// Spec is a coverage specification (G, µ, κ) for one network component
// (Equation 1).
type Spec struct {
	Name    string
	G       []GuardedString
	Weights []float64 // optional, parallel to G; used by weighted combinators
	Measure Measure
	Combine Combinator
}

// ComponentCoverage evaluates Equation 1: κ(map (µ[T]) G). A spec with an
// empty dependency set has coverage 0 by convention.
func ComponentCoverage(c *Coverage, s Spec) float64 {
	if len(s.G) == 0 {
		return 0
	}
	vals := make([]float64, len(s.G))
	for i, g := range s.G {
		vals[i] = clamp01(s.Measure(c, g))
	}
	return clamp01(s.Combine(vals, s.Weights))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Measures
// ---------------------------------------------------------------------------

// FractionMeasure is the single-rule measure |T[r] ∩ P| / |P|: the share
// of the guard exercised on the rule. With P = M[r] this is the rule
// coverage ratio |T[r]|/|M[r]| of §4.3.2.
func FractionMeasure(c *Coverage, g GuardedString) float64 {
	if len(g.Rules) != 1 {
		panic("core: FractionMeasure requires a single-rule guarded string")
	}
	r := g.Rules[0]
	var covered hdr.Set
	if g.At != nil {
		covered = c.CoveredAt(r, *g.At)
	} else {
		covered = c.Covered(r)
	}
	return covered.FractionOf(g.guard(c))
}

// PathMeasure implements Equation 3: it pushes two packet-set sequences
// through the path's rules from P_0 = P'_0 = Guard ∩ M[r1] — one
// constrained by the covered sets (P_i = F[r_i][P_{i-1} ∩ T[r_i]]) and an
// unconstrained reference (P'_i, with M[r_i] in place of T[r_i]) whose
// final value is the path's guard. For transform-free paths the coverage
// is the final ratio |P_k|/|P'_k|; when a rule transforms headers
// (one-to-many or many-to-one), sizes are no longer preserved and the
// footnote-2 generalization applies: the minimum per-hop ratio.
func PathMeasure(c *Coverage, g GuardedString) float64 {
	if len(g.Rules) == 0 {
		return 0
	}
	sp := c.Net.Space
	first := c.Net.Rule(g.Rules[0])
	ref := first.MatchSet()
	if g.Guard.Space() != nil {
		ref = ref.Intersect(g.Guard)
	}
	cur := ref
	minRatio := 1.0
	ratio := 0.0
	transforms := false
	for _, rid := range g.Rules {
		rule := c.Net.Rule(rid)
		if rule.Action.Transform != nil {
			transforms = true
		}
		var covered hdr.Set
		if g.At != nil {
			covered = c.CoveredAt(rid, *g.At)
		} else {
			covered = c.Covered(rid)
		}
		cur = cur.Intersect(covered)
		ref = ref.Intersect(rule.MatchSet())
		if ref.IsEmpty() {
			// The guard never makes it through this rule: the string
			// describes no packets, so there is nothing to cover.
			return 0
		}
		ratio = cur.FractionOf(ref)
		if ratio < minRatio {
			minRatio = ratio
		}
		// Apply the rule's action to both sequences.
		cur = applyAction(sp, rule, cur)
		ref = applyAction(sp, rule, ref)
	}
	if transforms {
		return minRatio
	}
	return ratio
}

func applyAction(sp *hdr.Space, rule *netmodel.Rule, s hdr.Set) hdr.Set {
	if rule.Action.Kind != netmodel.ActForward {
		return s
	}
	if tr := rule.Action.Transform; tr != nil {
		if tr.RewriteDst {
			s = s.RewriteDstIP(tr.Addr)
		}
		if tr.RewriteSrc {
			s = s.RewriteSrcIP(tr.Addr)
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

// CombineOnly expects a singleton and returns its element (rule and path
// specs).
func CombineOnly(vals, _ []float64) float64 {
	if len(vals) != 1 {
		panic("core: CombineOnly on non-singleton")
	}
	return vals[0]
}

// CombineMean is the unweighted mean.
func CombineMean(vals, _ []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// CombineWeightedMean weighs each measure; with nil weights it degrades
// to the unweighted mean, and with all-zero weights it returns 0.
func CombineWeightedMean(vals, weights []float64) float64 {
	if weights == nil {
		return CombineMean(vals, nil)
	}
	var num, den float64
	for i, v := range vals {
		num += v * weights[i]
		den += weights[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CombineMin returns the minimum measure.
func CombineMin(vals, _ []float64) float64 {
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// CombineMax returns the maximum measure.
func CombineMax(vals, _ []float64) float64 {
	max := vals[0]
	for _, v := range vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// Component spec builders (§4.3.2)
// ---------------------------------------------------------------------------

// RuleSpec builds the rule-coverage spec: G = {M[r] ▷ r}, µ the match-set
// fraction, κ the only element.
func RuleSpec(net *netmodel.Network, r netmodel.RuleID) Spec {
	return Spec{
		Name:    "rule:" + net.Device(net.Rule(r).Device).Name,
		G:       []GuardedString{{Rules: []netmodel.RuleID{r}}},
		Measure: FractionMeasure,
		Combine: CombineOnly,
	}
}

// DeviceSpec builds the device-coverage spec: one guarded string per rule,
// combined by a weighted average with weights proportional to match-set
// sizes, so the result is the fraction of total packets against which the
// device as a whole has been tested.
func DeviceSpec(net *netmodel.Network, dev netmodel.DeviceID) Spec {
	rules := net.DeviceRules(dev)
	s := Spec{
		Name:    "device:" + net.Device(dev).Name,
		Measure: FractionMeasure,
		Combine: CombineWeightedMean,
	}
	for _, rid := range rules {
		s.G = append(s.G, GuardedString{Rules: []netmodel.RuleID{rid}})
		s.Weights = append(s.Weights, net.Rule(rid).MatchSet().Fraction())
	}
	return s
}

// OutIfaceSpec builds the outgoing-interface spec: the rules that forward
// packets out the interface, plus the connected route owning the
// interface's own /31 (the state responsible for packets leaving via it).
func OutIfaceSpec(net *netmodel.Network, ifid netmodel.IfaceID) Spec {
	ifc := net.Iface(ifid)
	s := Spec{
		Name:    "iface:" + net.Device(ifc.Device).Name + "/" + ifc.Name,
		Measure: FractionMeasure,
		Combine: CombineWeightedMean,
	}
	deps := net.RulesForwardingTo(ifid)
	if ifc.Addr.IsValid() {
		for _, rid := range net.Device(ifc.Device).FIB {
			r := net.Rule(rid)
			if r.Origin == netmodel.OriginConnected && r.Match.DstPrefix == ifc.Addr.Masked() {
				deps = append(deps, rid)
			}
		}
	}
	for _, rid := range deps {
		s.G = append(s.G, GuardedString{Rules: []netmodel.RuleID{rid}})
		s.Weights = append(s.Weights, net.Rule(rid).MatchSet().Fraction())
	}
	return s
}

// InIfaceSpec builds the incoming-interface spec: every rule of the
// device, with guards limited to the packets the trace saw arriving on
// the interface.
func InIfaceSpec(net *netmodel.Network, ifid netmodel.IfaceID) Spec {
	ifc := net.Iface(ifid)
	loc := dataplane.Loc{Device: ifc.Device, Iface: ifid}
	s := Spec{
		Name:    "in-iface:" + net.Device(ifc.Device).Name + "/" + ifc.Name,
		Measure: FractionMeasure,
		Combine: CombineWeightedMean,
	}
	for _, rid := range net.DeviceRules(ifc.Device) {
		l := loc
		s.G = append(s.G, GuardedString{Rules: []netmodel.RuleID{rid}, At: &l})
		s.Weights = append(s.Weights, net.Rule(rid).MatchSet().Fraction())
	}
	return s
}

// PathSpec builds the path-coverage spec for one path of the universe:
// a single guarded string measured by Equation 3.
func PathSpec(p dataplane.Path) Spec {
	return Spec{
		Name:    "path",
		G:       []GuardedString{{Guard: p.Guard, Rules: p.Rules}},
		Measure: PathMeasure,
		Combine: CombineOnly,
	}
}

// FlowSpec builds the flow-coverage spec (§4.3.2): the flow — a start
// location and header space — is decomposed into its paths by processing
// the forwarding state; each path becomes a guarded string weighted by
// the fraction of the flow's packets that use it, measured end-to-end by
// Equation 3 and combined by weighted average.
func FlowSpec(net *netmodel.Network, start dataplane.Loc, flow hdr.Set) Spec {
	s := Spec{
		Name:    "flow:" + net.Device(start.Device).Name,
		Measure: PathMeasure,
		Combine: CombineWeightedMean,
	}
	dataplane.EnumeratePaths(context.Background(), net,
		[]dataplane.Start{{Loc: start, Pkts: flow}},
		dataplane.EnumOpts{},
		func(p dataplane.Path) bool {
			s.G = append(s.G, GuardedString{Guard: flow, Rules: p.Rules})
			s.Weights = append(s.Weights, p.Guard.Fraction())
			return true
		})
	return s
}

// Flow identifies one flow: an injection point and its header space.
type Flow struct {
	Start dataplane.Loc
	Pkts  hdr.Set
}

// CoFlowSpec builds the coverage spec of a CoFlow — the set of flows
// generated by one distributed application (§4.3.2). Each member flow is
// decomposed into its paths; guarded strings are weighted by the packet
// space each path carries, so the CoFlow's coverage is the fraction of
// the application's traffic that has been tested end-to-end.
func CoFlowSpec(net *netmodel.Network, flows []Flow) Spec {
	s := Spec{
		Name:    "coflow",
		Measure: PathMeasure,
		Combine: CombineWeightedMean,
	}
	for _, f := range flows {
		flow := f
		dataplane.EnumeratePaths(context.Background(), net,
			[]dataplane.Start{{Loc: flow.Start, Pkts: flow.Pkts}},
			dataplane.EnumOpts{},
			func(p dataplane.Path) bool {
				s.G = append(s.G, GuardedString{Guard: flow.Pkts, Rules: p.Rules})
				s.Weights = append(s.Weights, p.Guard.Fraction())
				return true
			})
	}
	return s
}

// CoFlowCoverage computes the coverage of a CoFlow.
func CoFlowCoverage(c *Coverage, flows []Flow) float64 {
	return ComponentCoverage(c, CoFlowSpec(c.Net, flows))
}

// ---------------------------------------------------------------------------
// Aggregation across components (§4.3.3)
// ---------------------------------------------------------------------------

// AggKind selects how component coverages are summarized (Equation 2).
type AggKind uint8

// Aggregators.
const (
	// Simple is the unweighted mean across components.
	Simple AggKind = iota
	// Weighted weighs each component by the packet space it handles.
	Weighted
	// Fractional reports the fraction of components with non-zero
	// coverage.
	Fractional
)

func (k AggKind) String() string {
	switch k {
	case Simple:
		return "simple"
	case Weighted:
		return "weighted"
	case Fractional:
		return "fractional"
	}
	return "unknown"
}

// Accum accumulates component coverages online, so collections (e.g. the
// path universe) never need to be materialized.
type Accum struct {
	kind      AggKind
	n         int
	sum       float64 // Simple: Σv; Weighted: Σv·w; Fractional: count(v>0)
	weightSum float64
}

// NewAccum returns an empty accumulator of the given kind.
func NewAccum(kind AggKind) *Accum { return &Accum{kind: kind} }

// Add folds in one component's coverage with its weight (ignored except
// for Weighted).
func (a *Accum) Add(v, w float64) {
	a.n++
	switch a.kind {
	case Simple:
		a.sum += v
	case Weighted:
		a.sum += v * w
		a.weightSum += w
	case Fractional:
		if v > 0 {
			a.sum++
		}
	}
}

// Count returns the number of components folded in.
func (a *Accum) Count() int { return a.n }

// Value returns the aggregate; 0 for an empty accumulator.
func (a *Accum) Value() float64 {
	if a.n == 0 {
		return 0
	}
	switch a.kind {
	case Weighted:
		if a.weightSum == 0 {
			return 0
		}
		return clamp01(a.sum / a.weightSum)
	default:
		return clamp01(a.sum / float64(a.n))
	}
}

// AggregateSpecs evaluates Equation 2 for a collection of component specs:
// each component's weight is the total packet-space fraction it handles.
func AggregateSpecs(c *Coverage, specs []Spec, kind AggKind) float64 {
	acc := NewAccum(kind)
	for _, s := range specs {
		w := 0.0
		for _, wi := range s.Weights {
			w += wi
		}
		if s.Weights == nil {
			w = 1
		}
		acc.Add(ComponentCoverage(c, s), w)
	}
	return acc.Value()
}
