package core

import (
	"context"
	"math"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

func pfx(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// chain builds d1 → d2: d1 forwards 10/8 to d2, d2 delivers 10.0/16 and
// drops the rest of 10/8; returns ids.
type chainNet struct {
	n        *netmodel.Network
	d1, d2   netmodel.DeviceID
	r1, r2   netmodel.RuleID // d1's 10/8 forward, d2's 10.0/16 deliver
	rDrop    netmodel.RuleID // d2's drop
	loc1Peer dataplane.Loc   // location at d2 entered from d1
}

func buildChain(t testing.TB) chainNet {
	t.Helper()
	n := netmodel.New()
	d1 := n.AddDevice("d1", netmodel.RoleLeaf, 1)
	d2 := n.AddDevice("d2", netmodel.RoleSpine, 2)
	i1, i2 := n.Connect(d1, d2, pfx(t, "10.255.0.0/31"))
	r1 := n.AddFIBRule(d1, netmodel.MatchDst(pfx(t, "10.0.0.0/8")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{i1}}, netmodel.OriginInternal)
	r2 := n.AddFIBRule(d2, netmodel.MatchDst(pfx(t, "10.0.0.0/16")),
		netmodel.Action{Kind: netmodel.ActDeliver}, netmodel.OriginInternal)
	rDrop := n.AddFIBRule(d2, netmodel.MatchDst(pfx(t, "10.0.0.0/8")),
		netmodel.Action{Kind: netmodel.ActDrop}, netmodel.OriginStatic)
	n.ComputeMatchSets()
	return chainNet{n: n, d1: d1, d2: d2, r1: r1, r2: r2, rDrop: rDrop,
		loc1Peer: dataplane.Loc{Device: d2, Iface: i2}}
}

func TestAlgorithm1MarkRule(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	tr.MarkRule(cn.r1)
	c := NewCoverage(cn.n, tr)
	if !c.Covered(cn.r1).Equal(cn.n.Rule(cn.r1).MatchSet()) {
		t.Error("marked rule should be covered over its full match set")
	}
	if !c.Covered(cn.r2).IsEmpty() {
		t.Error("unmarked rule with no packets should be uncovered")
	}
}

func TestAlgorithm1MarkPacket(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	tr := NewTrace()
	sub := sp.DstPrefix(pfx(t, "10.0.1.0/24"))
	tr.MarkPacket(dataplane.Injected(cn.d1), sub)
	c := NewCoverage(cn.n, tr)
	// T[r1] = P_T ∩ M[r1] = the /24.
	if !c.Covered(cn.r1).Equal(sub) {
		t.Error("covered set should be the intersection with the trace")
	}
	// d2 saw nothing (test marked only d1).
	if !c.Covered(cn.r2).IsEmpty() {
		t.Error("rule on unmarked device should be uncovered")
	}
}

func TestTraceMergeOrderIndependent(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	a := sp.DstPrefix(pfx(t, "10.1.0.0/16"))
	b := sp.DstPrefix(pfx(t, "10.2.0.0/16"))
	loc := dataplane.Injected(cn.d1)

	t1 := NewTrace()
	t1.MarkPacket(loc, a)
	t1.MarkPacket(loc, b)
	t2 := NewTrace()
	t2.MarkPacket(loc, b)
	t2.MarkPacket(loc, a)
	t2.MarkPacket(loc, a) // idempotent
	if !t1.PacketsAt(sp, loc).Equal(t2.PacketsAt(sp, loc)) {
		t.Error("trace should be order-independent and idempotent")
	}

	t3 := NewTrace()
	t3.MarkPacket(loc, a)
	t4 := NewTrace()
	t4.MarkPacket(loc, b)
	t4.MarkRule(cn.r2)
	t3.Merge(t4)
	if !t3.PacketsAt(sp, loc).Equal(a.Union(b)) {
		t.Error("merge lost packets")
	}
	if !t3.RuleMarked(cn.r2) {
		t.Error("merge lost rules")
	}
	if st := t3.Stats(); st.Locations != 1 || st.MarkedRules != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRuleCoverageFraction(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	tr := NewTrace()
	// Cover half of 10/8 (a /9).
	tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9")))
	c := NewCoverage(cn.n, tr)
	got := ComponentCoverage(c, RuleSpec(cn.n, cn.r1))
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rule coverage = %v, want 0.5", got)
	}
}

func TestDeviceCoverageWeighted(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	tr := NewTrace()
	// On d2: cover r2 (10.0/16) fully via packets; rDrop and connected
	// route uncovered. Device coverage (weighted by match-set size) =
	// |10.0/16| / (|10.0/16| + |10/8 minus /16| + |/31|).
	tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/16")))
	c := NewCoverage(cn.n, tr)
	got := ComponentCoverage(c, DeviceSpec(cn.n, cn.d2))
	m16 := sp.DstPrefix(pfx(t, "10.0.0.0/16")).Fraction()
	m8rest := cn.n.Rule(cn.rDrop).MatchSet().Fraction()
	m31 := math.Pow(2, -31)
	want := m16 / (m16 + m8rest + m31)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("device coverage = %v, want %v", got, want)
	}
}

func TestPathMeasureFullAndDisjoint(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	path := GuardedString{Rules: []netmodel.RuleID{cn.r1, cn.r2}}

	// End-to-end coverage with the same packets at both hops: the path's
	// guard is 10.0/16 (r2's match), and it is fully covered even though
	// r1's match set is much wider.
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/16")))
	tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/16")))
	c := NewCoverage(cn.n, tr)
	if got := PathMeasure(c, path); math.Abs(got-1) > 1e-12 {
		t.Errorf("fully-covered path = %v, want 1", got)
	}

	// Disjoint packets at the two hops: no packet crosses the whole
	// path, so coverage is zero (§4.3.2).
	tr2 := NewTrace()
	tr2.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/17")))
	tr2.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.128.0/17")))
	c2 := NewCoverage(cn.n, tr2)
	if got := PathMeasure(c2, path); got != 0 {
		t.Errorf("disjoint-hop path coverage = %v, want 0", got)
	}

	// Half the guard end-to-end = 0.5.
	tr3 := NewTrace()
	tr3.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/17")))
	tr3.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/17")))
	c3 := NewCoverage(cn.n, tr3)
	if got := PathMeasure(c3, path); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-covered path = %v, want 0.5", got)
	}
}

func TestPathMeasureInvalidPath(t *testing.T) {
	cn := buildChain(t)
	// r2 then r1 is not a real path: guards don't survive — r1's match
	// excludes nothing of r2's, but check a truly empty composition:
	// restrict the guard away from both.
	g := GuardedString{
		Guard: cn.n.Space.DstPrefix(pfx(t, "192.168.0.0/16")),
		Rules: []netmodel.RuleID{cn.r1, cn.r2},
	}
	tr := NewTrace()
	c := NewCoverage(cn.n, tr)
	if got := PathMeasure(c, g); got != 0 {
		t.Errorf("empty-guard path = %v, want 0", got)
	}
}

func TestPathMeasureWithTransformUsesMinRatio(t *testing.T) {
	// d1 rewrites dst to a VIP and forwards to d2, which delivers the
	// VIP /32. The many-to-one collapse makes the final ratio misleading;
	// the min per-hop ratio reflects the barely-covered first hop.
	n := netmodel.New()
	d1 := n.AddDevice("nat", netmodel.RoleBorder, 1)
	d2 := n.AddDevice("srv", netmodel.RoleLeaf, 2)
	i1, i2 := n.Connect(d1, d2, netip.MustParsePrefix("10.255.0.0/31"))
	vip := netip.MustParseAddr("192.0.2.10")
	r1 := n.AddFIBRule(d1, netmodel.MatchDst(netip.MustParsePrefix("10.0.0.0/8")),
		netmodel.Action{
			Kind:      netmodel.ActForward,
			OutIfaces: []netmodel.IfaceID{i1},
			Transform: &netmodel.Transform{RewriteDst: true, Addr: vip},
		}, netmodel.OriginStatic)
	r2 := n.AddFIBRule(d2, netmodel.MatchDst(netip.PrefixFrom(vip, 32)),
		netmodel.Action{Kind: netmodel.ActDeliver}, netmodel.OriginStatic)
	n.ComputeMatchSets()

	sp := n.Space
	tr := NewTrace()
	// Cover only half of the pre-NAT space at hop 1, everything at hop 2.
	tr.MarkPacket(dataplane.Injected(d1), sp.DstPrefix(netip.MustParsePrefix("10.0.0.0/9")))
	tr.MarkPacket(dataplane.Loc{Device: d2, Iface: i2}, sp.Full())
	c := NewCoverage(n, tr)
	got := PathMeasure(c, GuardedString{Rules: []netmodel.RuleID{r1, r2}})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("transform path coverage = %v, want 0.5 (min hop ratio)", got)
	}
}

func TestCombinators(t *testing.T) {
	vals := []float64{0.2, 0.4, 1.0}
	w := []float64{1, 1, 2}
	if got := CombineMean(vals, nil); math.Abs(got-(1.6/3)) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := CombineWeightedMean(vals, w); math.Abs(got-(0.2+0.4+2.0)/4) > 1e-12 {
		t.Errorf("weighted mean = %v", got)
	}
	if CombineMin(vals, nil) != 0.2 || CombineMax(vals, nil) != 1.0 {
		t.Error("min/max wrong")
	}
	if CombineOnly([]float64{0.7}, nil) != 0.7 {
		t.Error("only wrong")
	}
	if CombineWeightedMean(vals, nil) != CombineMean(vals, nil) {
		t.Error("weighted mean with nil weights should degrade to mean")
	}
	if CombineWeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Error("all-zero weights should give 0")
	}
}

func TestAccumAggregators(t *testing.T) {
	add := func(kind AggKind) *Accum {
		a := NewAccum(kind)
		a.Add(0, 1)
		a.Add(0.5, 1)
		a.Add(1, 2)
		return a
	}
	if got := add(Simple).Value(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("simple = %v", got)
	}
	if got := add(Weighted).Value(); math.Abs(got-(0.5+2)/4) > 1e-12 {
		t.Errorf("weighted = %v", got)
	}
	if got := add(Fractional).Value(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("fractional = %v", got)
	}
	if NewAccum(Simple).Value() != 0 {
		t.Error("empty accumulator should be 0")
	}
	for _, k := range []AggKind{Simple, Weighted, Fractional} {
		if k.String() == "unknown" {
			t.Error("aggregator must have a name")
		}
	}
}

func TestInterfaceSpecIncludesConnectedRoute(t *testing.T) {
	cn := buildChain(t)
	// d1's link interface: deps are r1 (forwards out it) and the /31
	// connected route. Inspecting the connected route alone gives the
	// interface non-zero coverage (the ConnectedRouteCheck effect).
	ifid := cn.n.Device(cn.d1).Ifaces[0]
	var connected netmodel.RuleID = -1
	for _, rid := range cn.n.Device(cn.d1).FIB {
		if cn.n.Rule(rid).Origin == netmodel.OriginConnected {
			connected = rid
		}
	}
	if connected == -1 {
		// The chain fixture has no connected rules (no bgp.Run); add one
		// manually via a fresh network instead.
		t.Skip("fixture has no connected route")
	}
	tr := NewTrace()
	tr.MarkRule(connected)
	c := NewCoverage(cn.n, tr)
	if got := ComponentCoverage(c, OutIfaceSpec(cn.n, ifid)); got <= 0 {
		t.Errorf("interface coverage = %v, want > 0", got)
	}
}

func TestMetricsOnExampleNetwork(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{BugNullRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	tr := NewTrace()

	// The §2 test suite: (1) leaf-to-leaf, (2) leaf-to-WAN with public
	// destinations, (3) border-to-leaf — all behavioral floods marking
	// each hop.
	mark := func(loc dataplane.Loc, pkts hdr.Set) { tr.MarkPacket(loc, pkts) }
	public := n.Space.DstPrefix(pfx(t, "93.0.0.0/8"))
	for _, l := range ex.Leaves {
		for _, l2 := range ex.Leaves {
			if l == l2 {
				continue
			}
			if _, err := dataplane.Reach(n, dataplane.Injected(l), n.Space.DstPrefix(ex.LeafPrefix[l2]), dataplane.ReachOpts{OnHop: mark}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := dataplane.Reach(n, dataplane.Injected(l), public, dataplane.ReachOpts{OnHop: mark}); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range ex.Borders {
		for _, l := range ex.Leaves {
			if _, err := dataplane.Reach(n, dataplane.Injected(b), n.Space.DstPrefix(ex.LeafPrefix[l]), dataplane.ReachOpts{OnHop: mark}); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := NewCoverage(n, tr)

	// Exactly the paper's observation: device coverage is 100% (B2 is
	// traversed by the border-to-leaf test) yet B2's null-routed default
	// rule is never exercised — only rule coverage flags the gap.
	b2, _ := n.DeviceByName("b2")
	b1, _ := n.DeviceByName("b1")
	if got := DeviceCoverage(c, nil, Fractional); got != 1 {
		t.Errorf("fractional device coverage = %v, want 1", got)
	}
	unc := UncoveredByOrigin(c, RulesOfDevices(n, []netmodel.DeviceID{b2.ID}))
	if unc[netmodel.OriginDefault] != 1 {
		t.Errorf("uncovered by origin at B2 = %v, want one default", unc)
	}
	// B1's default, in contrast, is covered by the leaf-to-WAN test, so
	// B2's rule coverage is lower than its symmetric counterpart's.
	b1Rule := RuleCoverage(c, RulesOfDevices(n, []netmodel.DeviceID{b1.ID}), Fractional)
	b2Rule := RuleCoverage(c, RulesOfDevices(n, []netmodel.DeviceID{b2.ID}), Fractional)
	if b2Rule >= b1Rule {
		t.Errorf("B2 rule coverage (%v) should be below B1's (%v)", b2Rule, b1Rule)
	}
	// A DefaultRouteCheck-style state inspection covers each healthy
	// default route fully; because the default matches the vast majority
	// of the space, weighted rule coverage then dwarfs fractional rule
	// coverage (the Figure 6a observation).
	for _, r := range n.Rules {
		if r.Origin == netmodel.OriginDefault && r.Action.Kind == netmodel.ActForward {
			tr.MarkRule(r.ID)
		}
	}
	c2 := NewCoverage(n, tr)
	frac := RuleCoverage(c2, nil, Fractional)
	weighted := RuleCoverage(c2, nil, Weighted)
	// 6 of 7 devices have their (dominant) default fully covered; B2's
	// null-routed default stays dark.
	if weighted < 0.8 {
		t.Errorf("weighted rule coverage = %v, want > 0.8", weighted)
	}
	if weighted <= frac {
		t.Errorf("weighted (%v) should exceed fractional (%v) rule coverage", weighted, frac)
	}
}

// TestCompositionality verifies §3.2: a symbolic test's coverage equals
// the union of concrete tests over the same packets, and a state
// inspection equals a symbolic test over the rule's full match set.
func TestCompositionality(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	loc := dataplane.Injected(cn.d1)

	// Symbolic: a small set of 4 concrete packets (vary last 2 dst bits).
	base := hdr.Packet{Dst: netip.MustParseAddr("10.1.1.0"), Src: netip.MustParseAddr("172.16.0.1"), Proto: 6, DstPort: 80, SrcPort: 1234}
	symbolic := sp.Empty()
	concrete := NewTrace()
	for i := 0; i < 4; i++ {
		p := base
		b := p.Dst.As4()
		b[3] = byte(i)
		p.Dst = netip.AddrFrom4(b)
		symbolic = symbolic.Union(sp.Singleton(p))
		concrete.MarkPacket(loc, sp.Singleton(p))
	}
	symTrace := NewTrace()
	symTrace.MarkPacket(loc, symbolic)

	cSym := NewCoverage(cn.n, symTrace)
	cCon := NewCoverage(cn.n, concrete)
	for _, rid := range cn.n.DeviceRules(cn.d1) {
		if !cSym.Covered(rid).Equal(cCon.Covered(rid)) {
			t.Errorf("rule %d: symbolic and concrete coverage differ", rid)
		}
	}

	// State inspection of r1 == symbolic test covering M[r1].
	insp := NewTrace()
	insp.MarkRule(cn.r1)
	symFull := NewTrace()
	symFull.MarkPacket(loc, cn.n.Rule(cn.r1).MatchSet())
	cInsp := NewCoverage(cn.n, insp)
	cFull := NewCoverage(cn.n, symFull)
	if !cInsp.Covered(cn.r1).Equal(cFull.Covered(cn.r1)) {
		t.Error("state inspection != equivalent symbolic test")
	}
}

// TestMonotonicityAndBoundedness is the §3.2 property test: randomly
// grown traces never decrease any metric, and all metrics stay in [0,1].
func TestMonotonicityAndBoundedness(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	rng := rand.New(rand.NewSource(77))
	tr := NewTrace()

	var prevRuleF, prevRuleW, prevDev, prevIf float64
	for step := 0; step < 25; step++ {
		// Random new "test": either inspect a random rule or flood a
		// random prefix from a random device.
		if rng.Intn(3) == 0 {
			tr.MarkRule(netmodel.RuleID(rng.Intn(len(n.Rules))))
		} else {
			dev := netmodel.DeviceID(rng.Intn(len(n.Devices)))
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), 0, 0})
			p := netip.PrefixFrom(addr, rng.Intn(17)+8).Masked()
			_, err := dataplane.Reach(n, dataplane.Injected(dev), n.Space.DstPrefix(p), dataplane.ReachOpts{
				OnHop: func(loc dataplane.Loc, pkts hdr.Set) { tr.MarkPacket(loc, pkts) },
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		c := NewCoverage(n, tr)
		ruleF := RuleCoverage(c, nil, Fractional)
		ruleW := RuleCoverage(c, nil, Weighted)
		dev := DeviceCoverage(c, nil, Simple)
		ifc := InterfaceCoverage(c, nil, Fractional)
		for name, pair := range map[string][2]float64{
			"rule-fractional": {prevRuleF, ruleF},
			"rule-weighted":   {prevRuleW, ruleW},
			"device-simple":   {prevDev, dev},
			"iface-frac":      {prevIf, ifc},
		} {
			if pair[1] < pair[0]-1e-12 {
				t.Fatalf("step %d: %s decreased from %v to %v", step, name, pair[0], pair[1])
			}
			if pair[1] < 0 || pair[1] > 1 {
				t.Fatalf("step %d: %s = %v out of [0,1]", step, name, pair[1])
			}
		}
		prevRuleF, prevRuleW, prevDev, prevIf = ruleF, ruleW, dev, ifc
	}
	if prevRuleF == 0 {
		t.Error("random tests should have covered some rules")
	}
}

func TestPathCoverageStreaming(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net

	// Empty trace: path coverage 0, but paths exist.
	c0 := NewCoverage(n, NewTrace())
	res := PathCoverage(context.Background(), c0, nil, dataplane.EnumOpts{}, Fractional)
	if !res.Complete || res.Paths == 0 {
		t.Fatalf("path enumeration: %+v", res)
	}
	if res.Value != 0 {
		t.Errorf("empty-trace path coverage = %v", res.Value)
	}

	// Full behavioral flood from every edge: every non-loop path should
	// be covered; fractional path coverage becomes high.
	tr := NewTrace()
	for _, st := range dataplane.EdgeStarts(n) {
		_, err := dataplane.Reach(n, st.Loc, st.Pkts, dataplane.ReachOpts{
			OnHop: func(loc dataplane.Loc, pkts hdr.Set) { tr.MarkPacket(loc, pkts) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	c := NewCoverage(n, tr)
	res2 := PathCoverage(context.Background(), c, nil, dataplane.EnumOpts{}, Fractional)
	if res2.Value <= res.Value {
		t.Errorf("path coverage did not improve: %v", res2.Value)
	}
	if res2.Value < 0.9 {
		t.Errorf("full flood should cover nearly all paths, got %v", res2.Value)
	}
}

func TestFlowCoverage(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	src, dst := ex.Leaves[0], ex.Leaves[1]
	flow := n.Space.DstPrefix(ex.LeafPrefix[dst])

	// Untested flow = 0.
	c0 := NewCoverage(n, NewTrace())
	if got := FlowCoverage(c0, dataplane.Injected(src), flow); got != 0 {
		t.Errorf("untested flow coverage = %v", got)
	}

	// Flood exactly the flow: fully covered end-to-end.
	tr := NewTrace()
	_, err = dataplane.Reach(n, dataplane.Injected(src), flow, dataplane.ReachOpts{
		OnHop: func(loc dataplane.Loc, pkts hdr.Set) { tr.MarkPacket(loc, pkts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoverage(n, tr)
	got := FlowCoverage(c, dataplane.Injected(src), flow)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("fully tested flow coverage = %v, want 1", got)
	}

	// Test only half the flow's packets: coverage ≈ 0.5.
	half := flow.Intersect(n.Space.DstPrefix(netip.PrefixFrom(ex.LeafPrefix[dst].Addr(), 25)))
	tr2 := NewTrace()
	_, err = dataplane.Reach(n, dataplane.Injected(src), half, dataplane.ReachOpts{
		OnHop: func(loc dataplane.Loc, pkts hdr.Set) { tr2.MarkPacket(loc, pkts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoverage(n, tr2)
	got2 := FlowCoverage(c2, dataplane.Injected(src), flow)
	if math.Abs(got2-0.5) > 1e-9 {
		t.Errorf("half tested flow coverage = %v, want 0.5", got2)
	}
}

func TestUncoveredRules(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	tr.MarkRule(cn.r1)
	c := NewCoverage(cn.n, tr)
	unc := UncoveredRules(c, nil)
	for _, rid := range unc {
		if rid == cn.r1 {
			t.Error("marked rule reported uncovered")
		}
	}
	if len(unc) == 0 {
		t.Error("unmarked rules should be reported")
	}
}

func TestDevicesByRoleAndFilters(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	if got := DevicesByRole(n, netmodel.RoleBorder); len(got) != 2 {
		t.Errorf("borders = %d", len(got))
	}
	leaves := FilterDevices(n, func(d *netmodel.Device) bool { return d.Role == netmodel.RoleLeaf })
	if len(leaves) != 3 {
		t.Errorf("leaves = %d", len(leaves))
	}
	ifs := IfacesOfDevices(n, leaves)
	// Each leaf: 2 spine links + 1 host iface.
	if len(ifs) != 9 {
		t.Errorf("leaf ifaces = %d, want 9", len(ifs))
	}
}

func TestNopTracker(t *testing.T) {
	var tr Tracker = Nop{}
	cn := buildChain(t)
	tr.MarkRule(cn.r1)
	tr.MarkPacket(dataplane.Injected(cn.d1), cn.n.Space.Full())
	// Nothing to assert beyond "does not panic and satisfies Tracker".
}

func TestComponentCoverageEmptySpec(t *testing.T) {
	cn := buildChain(t)
	c := NewCoverage(cn.n, NewTrace())
	s := Spec{Name: "empty", Measure: FractionMeasure, Combine: CombineMean}
	if got := ComponentCoverage(c, s); got != 0 {
		t.Errorf("empty spec coverage = %v, want 0", got)
	}
}

func TestInIfaceSpec(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	// Packets arrive at d2 via the link from d1.
	tr := NewTrace()
	tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/16")))
	c := NewCoverage(cn.n, tr)
	spec := InIfaceSpec(cn.n, cn.loc1Peer.Iface)
	if got := ComponentCoverage(c, spec); got <= 0 {
		t.Errorf("in-iface coverage = %v, want > 0", got)
	}
	// A different (injected) location does not count toward this iface.
	tr2 := NewTrace()
	tr2.MarkPacket(dataplane.Injected(cn.d2), sp.DstPrefix(pfx(t, "10.0.0.0/16")))
	c2 := NewCoverage(cn.n, tr2)
	if got := ComponentCoverage(c2, spec); got != 0 {
		t.Errorf("in-iface coverage from other location = %v, want 0", got)
	}
}

func TestInIfaceCoverageAggregate(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	tr := NewTrace()
	tr.MarkPacket(cn.loc1Peer, sp.Full())
	c := NewCoverage(cn.n, tr)
	// d2's ingress interface sees everything: its incoming coverage is 1.
	got := InIfaceCoverage(c, []netmodel.IfaceID{cn.loc1Peer.Iface}, Weighted)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("in-iface coverage = %v, want 1", got)
	}
	// d1's ingress interface (peer side) saw nothing.
	peer := cn.n.Iface(cn.loc1Peer.Iface).Peer
	if got := InIfaceCoverage(c, []netmodel.IfaceID{peer}, Fractional); got != 0 {
		t.Errorf("unvisited in-iface coverage = %v, want 0", got)
	}
	// All-interface aggregate is bounded.
	if v := InIfaceCoverage(c, nil, Simple); v < 0 || v > 1 {
		t.Errorf("aggregate out of range: %v", v)
	}
}

func TestCoFlowCoverage(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	flowA := Flow{Start: dataplane.Injected(cn.d1), Pkts: sp.DstPrefix(pfx(t, "10.0.0.0/16"))}
	flowB := Flow{Start: dataplane.Injected(cn.d1), Pkts: sp.DstPrefix(pfx(t, "10.1.0.0/16"))}

	// Test only flow A end-to-end.
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), flowA.Pkts)
	tr.MarkPacket(cn.loc1Peer, flowA.Pkts)
	c := NewCoverage(cn.n, tr)

	a := CoFlowCoverage(c, []Flow{flowA})
	b := CoFlowCoverage(c, []Flow{flowB})
	both := CoFlowCoverage(c, []Flow{flowA, flowB})
	if math.Abs(a-1) > 1e-9 {
		t.Errorf("tested flow coverage = %v, want 1", a)
	}
	if b != 0 {
		t.Errorf("untested flow coverage = %v, want 0", b)
	}
	if both <= 0 || both >= 1 {
		t.Errorf("coflow coverage = %v, want strictly between", both)
	}
	if CoFlowCoverage(c, nil) != 0 {
		t.Error("empty coflow should be 0")
	}
}

// TestConcurrentMarking exercises the tracker's mutex: rule marking is
// goroutine-safe (packet marking shares the BDD manager and must not run
// concurrently with other manager users, so it stays single-threaded
// here).
func TestConcurrentMarking(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.MarkRule(netmodel.RuleID(i % len(cn.n.Rules)))
			}
		}(w)
	}
	wg.Wait()
	if st := tr.Stats(); st.MarkedRules != len(cn.n.Rules) {
		t.Errorf("marked rules = %d, want %d", st.MarkedRules, len(cn.n.Rules))
	}
}

// TestSuitePermutationEquivalence: the same tests in any order produce
// identical covered sets (§3.2 compositionality implies order cannot
// matter).
func TestSuitePermutationEquivalence(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	marks := []struct {
		loc dataplane.Loc
		set hdr.Set
	}{
		{dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9"))},
		{cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/16"))},
		{dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.64.0.0/10"))},
		{cn.loc1Peer, sp.Proto(6)},
	}
	apply := func(order []int) *Coverage {
		tr := NewTrace()
		for _, i := range order {
			tr.MarkPacket(marks[i].loc, marks[i].set)
		}
		tr.MarkRule(cn.rDrop)
		return NewCoverage(cn.n, tr)
	}
	c1 := apply([]int{0, 1, 2, 3})
	c2 := apply([]int{3, 1, 0, 2})
	for _, r := range cn.n.Rules {
		if !c1.Covered(r.ID).Equal(c2.Covered(r.ID)) {
			t.Fatalf("rule %d covered set depends on mark order", r.ID)
		}
	}
}

// TestPropertySplitInvariance is the metamorphic form of §3.2
// compositionality: splitting any behavioral mark into arbitrary
// fragments (here: random prefix partitions) yields exactly the same
// covered sets as marking the whole.
func TestPropertySplitInvariance(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	rng := rand.New(rand.NewSource(2024))
	loc := dataplane.Injected(cn.d1)

	for trial := 0; trial < 20; trial++ {
		// A random "whole" set.
		whole := sp.Empty()
		for i := rng.Intn(4) + 1; i > 0; i-- {
			bits := rng.Intn(20) + 4
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), 0, 0})
			whole = whole.Union(sp.DstPrefix(netip.PrefixFrom(addr, bits).Masked()))
		}
		// Split it along a random pivot prefix (possibly overlapping).
		pivot := sp.DstPrefix(netip.PrefixFrom(
			netip.AddrFrom4([4]byte{byte(rng.Intn(256)), 0, 0, 0}), rng.Intn(9)).Masked())
		partA := whole.Intersect(pivot)
		partB := whole.Diff(pivot)
		overlap := whole.Intersect(sp.DstPrefix(netip.MustParsePrefix("10.0.0.0/8")))

		one := NewTrace()
		one.MarkPacket(loc, whole)
		many := NewTrace()
		many.MarkPacket(loc, partA)
		many.MarkPacket(loc, partB)
		many.MarkPacket(loc, overlap) // redundant re-marking must not matter

		c1 := NewCoverage(cn.n, one)
		c2 := NewCoverage(cn.n, many)
		for _, r := range cn.n.Rules {
			if !c1.Covered(r.ID).Equal(c2.Covered(r.ID)) {
				t.Fatalf("trial %d: split marking changed covered set of rule %d", trial, r.ID)
			}
		}
	}
}

func TestAggregateSpecs(t *testing.T) {
	cn := buildChain(t)
	tr := NewTrace()
	tr.MarkRule(cn.r1)
	c := NewCoverage(cn.n, tr)

	specs := []Spec{
		RuleSpec(cn.n, cn.r1), // covered: 1
		RuleSpec(cn.n, cn.r2), // uncovered: 0
	}
	if got := AggregateSpecs(c, specs, Simple); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("simple aggregate = %v, want 0.5", got)
	}
	if got := AggregateSpecs(c, specs, Fractional); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("fractional aggregate = %v, want 0.5", got)
	}
	// Weighted over devices: d1 and d2 handle nearly the same packet
	// space (both ≈ 10/8 plus a /31), so the aggregate sits at ~0.5 —
	// d1 fully covered, d2 dark.
	got := AggregateSpecs(c, []Spec{DeviceSpec(cn.n, cn.d1), DeviceSpec(cn.n, cn.d2)}, Weighted)
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("weighted aggregate = %v, want ~0.5", got)
	}
	if AggregateSpecs(c, nil, Simple) != 0 {
		t.Error("empty collection should aggregate to 0")
	}
}
