package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"yardstick/internal/dataplane"
)

func TestTraceTransferTo(t *testing.T) {
	// Two structurally identical networks in independent BDD spaces —
	// the replica situation the sharded engine creates.
	canon := buildChain(t)
	replica := buildChain(t)
	if canon.n.Space == replica.n.Space {
		t.Fatal("fixture error: networks share a space")
	}

	// Record against the replica, as a worker would.
	rsp := replica.n.Space
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(replica.d1), rsp.DstPrefix(pfx(t, "10.0.0.0/9")))
	tr.MarkPacket(replica.loc1Peer, rsp.DstPrefix(pfx(t, "10.0.0.0/16")).Intersect(rsp.Proto(6)))
	tr.MarkRule(replica.r2)

	got := tr.TransferTo(canon.n.Space)

	// The transferred trace matches one recorded natively in the
	// canonical space, set for set and rule for rule.
	csp := canon.n.Space
	want := NewTrace()
	want.MarkPacket(dataplane.Injected(canon.d1), csp.DstPrefix(pfx(t, "10.0.0.0/9")))
	want.MarkPacket(canon.loc1Peer, csp.DstPrefix(pfx(t, "10.0.0.0/16")).Intersect(csp.Proto(6)))
	want.MarkRule(canon.r2)

	for _, loc := range want.Locations() {
		if !got.PacketsAt(csp, loc).Equal(want.PacketsAt(csp, loc)) {
			t.Errorf("packets at %+v differ from natively recorded trace", loc)
		}
	}
	if got.Stats() != want.Stats() {
		t.Errorf("stats differ: %+v vs %+v", got.Stats(), want.Stats())
	}
	if !got.RuleMarked(canon.r2) || got.RuleMarked(canon.r1) {
		t.Error("rule marks differ after transfer")
	}

	// Coverage metrics computed from the transferred trace are identical.
	cGot, cWant := NewCoverage(canon.n, got), NewCoverage(canon.n, want)
	for _, r := range canon.n.Rules {
		if !cGot.Covered(r.ID).Equal(cWant.Covered(r.ID)) {
			t.Errorf("covered set of rule %d differs", r.ID)
		}
	}
}

// TestMergeIdempotent: merge(T, T) == T, and folding the same fragment
// in any number of times changes nothing — the invariant that makes the
// distributed coordinator's retries, re-dispatch, duplicate execution,
// and hedged dispatch all safe.
func TestMergeIdempotent(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	mk := func() *Trace {
		tr := NewTrace()
		tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9")))
		tr.MarkPacket(cn.loc1Peer, sp.DstPrefix(pfx(t, "10.0.0.0/16")).Intersect(sp.Proto(6)))
		tr.MarkRule(cn.r2)
		return tr
	}

	tr, dup := mk(), mk()
	if !tr.Equal(dup) {
		t.Fatal("identically recorded traces are not Equal")
	}
	tr.Merge(tr) // self-merge: the degenerate duplicate
	if !tr.Equal(dup) {
		t.Fatal("merge(T, T) changed T")
	}
	for i := 0; i < 3; i++ {
		tr.Merge(dup)
	}
	if !tr.Equal(dup) {
		t.Fatal("repeated duplicate merges changed the trace")
	}

	// A genuinely new mark does change it — Equal is not vacuous.
	tr.MarkRule(cn.r1)
	if tr.Equal(dup) {
		t.Fatal("Equal missed a differing rule mark")
	}
}

// TestMergeOrderIndependentAcrossSpaces: three workers record
// overlapping fragments against three independent replica spaces; the
// canonical merge is the same union no matter the arrival order —
// transfer then merge is commutative, so a coordinator may fold
// fragments in whatever order the network delivers them.
func TestMergeOrderIndependentAcrossSpaces(t *testing.T) {
	canon := buildChain(t)
	csp := canon.n.Space

	// Each worker marks a different (deliberately overlapping) slice of
	// the same coverage story in its own space.
	frag := func(t *testing.T) [3]*Trace {
		t.Helper()
		var out [3]*Trace
		for i := range out {
			w := buildChain(t)
			if w.n.Space == csp {
				t.Fatal("fixture error: replica shares the canonical space")
			}
			sp := w.n.Space
			tr := NewTrace()
			switch i {
			case 0:
				tr.MarkPacket(dataplane.Injected(w.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9")))
				tr.MarkRule(w.r1)
			case 1:
				tr.MarkPacket(dataplane.Injected(w.d1), sp.DstPrefix(pfx(t, "10.0.0.0/16")))
				tr.MarkPacket(w.loc1Peer, sp.Proto(6))
				tr.MarkRule(w.r1) // overlaps worker 0's rule mark
			case 2:
				tr.MarkPacket(w.loc1Peer, sp.Proto(17))
				tr.MarkRule(w.r2)
			}
			out[i] = tr.TransferTo(csp)
		}
		return out
	}

	merge := func(order [3]int, frags [3]*Trace) *Trace {
		acc := NewTrace()
		for _, i := range order {
			acc.Merge(frags[i])
		}
		return acc
	}
	frags := frag(t)
	want := merge([3]int{0, 1, 2}, frags)
	for _, order := range [][3]int{{2, 1, 0}, {1, 0, 2}, {0, 2, 1}} {
		if got := merge(order, frags); !got.Equal(want) {
			t.Fatalf("merge order %v produced a different trace", order)
		}
	}

	// And with a straggler's duplicate arriving twice mid-stream.
	dup := merge([3]int{2, 0, 1}, frags)
	dup.Merge(frags[0])
	dup.Merge(frags[2])
	if !dup.Equal(want) {
		t.Fatal("duplicate fragment arrivals changed the union")
	}
}

// blockingWriter stalls the first write until released, signalling when
// the write has started.
type blockingWriter struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
	out     []byte
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		close(w.started)
		<-w.release
	})
	w.out = append(w.out, p...)
	return len(p), nil
}

func TestEncodeJSONDoesNotBlockMarking(t *testing.T) {
	cn := buildChain(t)
	sp := cn.n.Space
	tr := NewTrace()
	tr.MarkPacket(dataplane.Injected(cn.d1), sp.DstPrefix(pfx(t, "10.0.0.0/9")))

	w := &blockingWriter{started: make(chan struct{}), release: make(chan struct{})}
	encDone := make(chan error, 1)
	go func() { encDone <- tr.EncodeJSON(w) }()

	<-w.started
	// The writer is stalled mid-encode. Marking must complete anyway:
	// the snapshot was taken under the lock, the write happens outside it.
	// (MarkRule only — a packet mark would touch the BDD manager, which
	// the stalled encoder has already finished with but which this test
	// keeps single-threaded anyway.)
	marked := make(chan struct{})
	go func() {
		tr.MarkRule(cn.r1)
		close(marked)
	}()
	select {
	case <-marked:
	case <-time.After(5 * time.Second):
		t.Fatal("MarkRule blocked behind a stalled EncodeJSON writer")
	}

	close(w.release)
	if err := <-encDone; err != nil {
		t.Fatal(err)
	}

	// The encoding reflects the pre-mark snapshot and decodes cleanly.
	dec, err := DecodeTraceJSON(cn.n, bytes.NewReader(w.out))
	if err != nil {
		t.Fatal(err)
	}
	if dec.RuleMarked(cn.r1) {
		t.Error("snapshot taken under the lock should not contain the later mark")
	}
	if !dec.PacketsAt(cn.n.Space, dataplane.Injected(cn.d1)).Equal(tr.PacketsAt(cn.n.Space, dataplane.Injected(cn.d1))) {
		t.Error("decoded packets differ")
	}
}
