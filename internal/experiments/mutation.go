package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"yardstick/internal/core"
	"yardstick/internal/faults"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

// MutationRow reports one suite's showing in the mutation study.
type MutationRow struct {
	Suite        string
	RuleCoverage float64 // fractional rule coverage on the clean network
	Detected     int
	Faults       int
}

// MutationResult is the full study.
type MutationResult struct {
	Rows   []MutationRow
	Faults []string
}

// MutationStudy quantifies the paper's core motivation — more coverage
// finds more bugs — with the software-testing mutation methodology: n
// random forwarding faults are injected one at a time into the regional
// network, and each suite (original §7.2, final §7.3, extended with the
// future-work tests) reports whether it caught the fault. Detection
// counts should order exactly like the suites' rule coverage.
func MutationStudy(ctx context.Context, rg *topogen.Regional, n int, seed int64) (*MutationResult, error) {
	suites := []struct {
		name  string
		suite testkit.Suite
	}{
		{"original", OriginalSuite()},
		{"final", FinalSuite()},
		{"extended", append(FinalSuite(),
			testkit.WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs},
			testkit.HostInterfaceCheck{},
		)},
	}

	res := &MutationResult{}
	detectors := make([]func() bool, len(suites))
	for i, s := range suites {
		suite := s.suite
		detectors[i] = func() bool {
			for _, r := range suite.Run(ctx, rg.Net, core.Nop{}) {
				if !r.Pass() {
					return true
				}
			}
			return false
		}
		// Coverage on the clean network, for the correlation column.
		trace := core.NewTrace()
		suite.Run(ctx, rg.Net, trace)
		cov := core.NewCoverage(rg.Net, trace)
		res.Rows = append(res.Rows, MutationRow{
			Suite:        s.name,
			RuleCoverage: core.RuleCoverage(cov, nil, core.Fractional),
			Faults:       n,
		})
	}

	rng := rand.New(rand.NewSource(seed))
	campaign, err := faults.Run(rg.Net, rng, n, nil, detectors...)
	if err != nil {
		return nil, err
	}
	res.Faults = campaign.Faults
	for i := range res.Rows {
		res.Rows[i].Detected = campaign.Totals[i]
	}
	return res, nil
}

// RenderMutation formats the study as a table.
func RenderMutation(res *MutationResult) string {
	s := fmt.Sprintf("%-10s %14s %10s %8s\n", "suite", "rule coverage", "detected", "faults")
	for _, r := range res.Rows {
		s += fmt.Sprintf("%-10s %13.1f%% %10d %8d\n", r.Suite, 100*r.RuleCoverage, r.Detected, r.Faults)
	}
	return s
}
