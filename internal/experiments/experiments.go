// Package experiments regenerates every figure of the paper's evaluation:
//
//	Figure 6 (a–d)  coverage of the case-study test suites by router type
//	Figure 7        coverage improvement across test-suite iterations
//	Figure 8        overhead of coverage tracking while tests run
//	Figure 9        time to compute each metric after tests finish
//
// Absolute numbers differ from the paper (different hardware, synthetic
// networks, smaller scales); the comparisons each figure makes — which
// tests cover what, how overheads relate to baseline test cost, which
// metrics are cheap — are preserved. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
	"yardstick/internal/report"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

// CaseStudyRoles is the router-type order of Figure 6's x axis.
var CaseStudyRoles = []netmodel.Role{
	netmodel.RoleToR, netmodel.RoleAgg, netmodel.RoleSpine, netmodel.RoleHub,
}

// OriginalSuite is the case-study network's test suite before Yardstick:
// DefaultRouteCheck plus AggCanReachTorLoopback (§7.2).
func OriginalSuite() testkit.Suite {
	return testkit.Suite{testkit.DefaultRouteCheck{}, testkit.AggCanReachTorLoopback{}}
}

// FinalSuite is the improved suite after the Yardstick-guided iterations:
// the original tests plus InternalRouteCheck and ConnectedRouteCheck
// (§7.3).
func FinalSuite() testkit.Suite {
	return append(OriginalSuite(), testkit.InternalRouteCheck{}, testkit.ConnectedRouteCheck{})
}

// Figure6Result is one panel of Figure 6.
type Figure6Result struct {
	Panel   string // "6a".."6d"
	Suite   []string
	Rows    []report.Metrics
	Results []testkit.Result
}

// Figure6 runs one suite against the case-study network and reports
// coverage by router type (one panel of Figure 6).
func Figure6(ctx context.Context, rg *topogen.Regional, panel string, suite testkit.Suite) Figure6Result {
	trace := core.NewTrace()
	results := suite.Run(ctx, rg.Net, trace)
	cov := core.NewCoverage(rg.Net, trace)
	out := Figure6Result{Panel: panel, Rows: report.ByRole(cov, CaseStudyRoles), Results: results}
	for _, t := range suite {
		out.Suite = append(out.Suite, t.Name())
	}
	return out
}

// Figure6All reproduces the four panels: (a) the original suite, (b)
// InternalRouteCheck alone, (c) ConnectedRouteCheck alone, (d) the final
// suite.
func Figure6All(ctx context.Context, rg *topogen.Regional) []Figure6Result {
	return []Figure6Result{
		Figure6(ctx, rg, "6a", OriginalSuite()),
		Figure6(ctx, rg, "6b", testkit.Suite{testkit.InternalRouteCheck{}}),
		Figure6(ctx, rg, "6c", testkit.Suite{testkit.ConnectedRouteCheck{}}),
		Figure6(ctx, rg, "6d", FinalSuite()),
	}
}

// Figure7Row is one suite iteration of Figure 7.
type Figure7Row struct {
	Label string
	report.Metrics
}

// Figure7Result is the iteration series plus the headline improvement
// (the paper's "+89% rules, +17% interfaces").
type Figure7Result struct {
	Rows        []Figure7Row
	Improvement report.Delta
}

// Figure7 reproduces the coverage-improvement iterations: the original
// suite, then adding InternalRouteCheck, then adding ConnectedRouteCheck,
// aggregated across all devices.
func Figure7(ctx context.Context, rg *topogen.Regional) Figure7Result {
	iterations := []struct {
		label string
		suite testkit.Suite
	}{
		{"original", OriginalSuite()},
		{"+InternalRouteCheck", append(OriginalSuite(), testkit.InternalRouteCheck{})},
		{"+ConnectedRouteCheck", FinalSuite()},
	}
	var out Figure7Result
	for _, it := range iterations {
		trace := core.NewTrace()
		it.suite.Run(ctx, rg.Net, trace)
		cov := core.NewCoverage(rg.Net, trace)
		out.Rows = append(out.Rows, Figure7Row{Label: it.label, Metrics: report.Total(cov, it.label)})
	}
	out.Improvement = report.Improvement(out.Rows[0].Metrics, out.Rows[len(out.Rows)-1].Metrics)
	return out
}

// Figure8Tests are the four §8 benchmark tests in the paper's order.
func Figure8Tests() []testkit.Test {
	return []testkit.Test{
		testkit.DefaultRouteCheck{},
		testkit.ToRReachability{},
		testkit.ToRContract{},
		testkit.ToRPingmesh{},
	}
}

// Figure8Row is one (network size, test) cell of Figure 8.
type Figure8Row struct {
	K        int
	Routers  int
	Test     string
	Baseline time.Duration // coverage tracking disabled (core.Nop)
	Tracked  time.Duration // coverage tracking enabled
	Overhead float64       // (Tracked-Baseline)/Baseline
}

// Figure8 measures the overhead of coverage tracking: each test type runs
// with tracking disabled and enabled on fat-trees of the given sizes.
// Building the networks is excluded from the timings. Each test gets one
// untracked warm-up run (so the shared BDD caches don't bias whichever
// variant runs second) and each variant is measured as the minimum of
// three repetitions.
func Figure8(ctx context.Context, ks []int) ([]Figure8Row, error) {
	var out []Figure8Row
	for _, k := range ks {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		ft, err := topogen.BuildFatTree(k)
		if err != nil {
			return out, err
		}
		// The measurement phase is symbolic and grows steeply with k, so
		// it runs under the engine's watched context: cancellation aborts
		// mid-test instead of waiting out the whole sweep point.
		restore := ft.Net.Space.WatchContext(ctx)
		gerr := bdd.Guard(func() {
			for _, test := range Figure8Tests() {
				test.Run(ft.Net, core.Nop{}) // warm up caches
				base := timeIt(func() { test.Run(ft.Net, core.Nop{}) })
				tracked := timeIt(func() {
					trace := core.NewTrace()
					test.Run(ft.Net, trace)
				})
				overhead := 0.0
				if base > 0 {
					overhead = float64(tracked-base) / float64(base)
				}
				out = append(out, Figure8Row{
					K: k, Routers: topogen.FatTreeSize(k), Test: test.Name(),
					Baseline: base, Tracked: tracked, Overhead: overhead,
				})
			}
		})
		restore()
		if gerr != nil {
			return out, gerr
		}
	}
	return out, nil
}

// timeIt reports the minimum of three runs of f, the standard defense
// against scheduler noise at sub-millisecond scales.
func timeIt(f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Figure9Row is one (network size, metric) cell of Figure 9.
type Figure9Row struct {
	K        int
	Routers  int
	Metric   string
	Duration time.Duration
	Paths    int  // path metric only
	Complete bool // false when the path budget cut enumeration short
}

// Figure9Opts bounds the expensive path metric.
type Figure9Opts struct {
	// PathBudget caps the number of paths processed per network
	// (0 = unlimited), standing in for the paper's 1-hour timeout.
	PathBudget int
	// SkipPaths drops the path metric entirely.
	SkipPaths bool
}

// Figure9 measures the time to compute each coverage metric from a
// realistic trace: the full Figure 8 test battery runs first (tracked),
// then each metric is computed on its own coverage instance so per-metric
// timings include the shared match-set/covered-set work, as in the paper.
func Figure9(ctx context.Context, ks []int, opts Figure9Opts) ([]Figure9Row, error) {
	var out []Figure9Row
	for _, k := range ks {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		ft, err := topogen.BuildFatTree(k)
		if err != nil {
			return out, err
		}
		routers := topogen.FatTreeSize(k)
		// Trace construction and the non-path metrics are symbolic work
		// with no internal budget hooks; the watched context makes them
		// cancellable mid-computation (the path metric additionally
		// observes ctx through EnumeratePaths).
		restore := ft.Net.Space.WatchContext(ctx)
		gerr := bdd.Guard(func() {
			trace := core.NewTrace()
			for _, test := range Figure8Tests() {
				test.Run(ft.Net, trace)
			}

			cov := core.NewCoverage(ft.Net, trace)
			d := timeIt(func() { core.DeviceCoverage(cov, nil, core.Fractional) })
			out = append(out, Figure9Row{K: k, Routers: routers, Metric: "device", Duration: d, Complete: true})

			cov = core.NewCoverage(ft.Net, trace)
			d = timeIt(func() { core.InterfaceCoverage(cov, nil, core.Fractional) })
			out = append(out, Figure9Row{K: k, Routers: routers, Metric: "interface", Duration: d, Complete: true})

			cov = core.NewCoverage(ft.Net, trace)
			d = timeIt(func() { core.RuleCoverage(cov, nil, core.Fractional) })
			out = append(out, Figure9Row{K: k, Routers: routers, Metric: "rule", Duration: d, Complete: true})

			if !opts.SkipPaths {
				cov = core.NewCoverage(ft.Net, trace)
				var res core.PathCoverageResult
				d = timeIt(func() {
					res = core.PathCoverage(ctx, cov, nil, dataplane.EnumOpts{MaxPaths: opts.PathBudget}, core.Fractional)
				})
				out = append(out, Figure9Row{
					K: k, Routers: routers, Metric: "path", Duration: d,
					Paths: res.Paths, Complete: res.Complete,
				})
			}
		})
		restore()
		if gerr != nil {
			return out, gerr
		}
	}
	return out, nil
}

// RenderFigure8 formats Figure 8 rows as a table.
func RenderFigure8(rows []Figure8Row) string {
	s := fmt.Sprintf("%-6s %-8s %-22s %14s %14s %10s\n",
		"k", "routers", "test", "baseline", "tracked", "overhead")
	for _, r := range rows {
		s += fmt.Sprintf("%-6d %-8d %-22s %14s %14s %9.1f%%\n",
			r.K, r.Routers, r.Test, r.Baseline.Round(time.Microsecond),
			r.Tracked.Round(time.Microsecond), 100*r.Overhead)
	}
	return s
}

// RenderFigure9 formats Figure 9 rows as a table.
func RenderFigure9(rows []Figure9Row) string {
	s := fmt.Sprintf("%-6s %-8s %-10s %14s %10s %9s\n",
		"k", "routers", "metric", "time", "paths", "complete")
	for _, r := range rows {
		paths := "-"
		if r.Metric == "path" {
			paths = fmt.Sprint(r.Paths)
		}
		s += fmt.Sprintf("%-6d %-8d %-10s %14s %10s %9v\n",
			r.K, r.Routers, r.Metric, r.Duration.Round(time.Microsecond), paths, r.Complete)
	}
	return s
}
