package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"yardstick/internal/bgp"
	"yardstick/internal/core"
	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
	"yardstick/internal/report"
	"yardstick/internal/topogen"
)

// ChurnStep is one flap event's worth of the churn time series: the
// coverage the suite's single up-front run still attests after the
// network moved underneath it.
type ChurnStep struct {
	Step  int
	Event string // "origin N down" / "origin N up"
	Rules int
	Ops   int // delta document size

	RuleCoverage   float64 // weighted rule coverage after the event
	ConfigCoverage float64 // covered config-line fraction (arXiv 2209.12870 sense)
	Decay          float64 // cumulative covered fraction lost to dropped rule marks

	DeltaNS   int64 // incremental apply
	RebuildNS int64 // from-scratch decode + match-set re-derivation
	Identical bool  // incremental coverage bit-identical to the rebuild
}

// ChurnResult is the full study.
type ChurnResult struct {
	Steps     []ChurnStep
	DeltaNS   int64 // totals across the series
	RebuildNS int64
}

// Speedup is the series-total rebuild/delta time ratio.
func (r *ChurnResult) Speedup() float64 {
	if r.DeltaNS == 0 {
		return 0
	}
	return float64(r.RebuildNS) / float64(r.DeltaNS)
}

// ChurnStudy runs the incremental-coverage-under-churn scenario: test
// once, then watch coverage decay as a deterministic BGP flap schedule
// churns the regional network's forwarding state. Each event is
// re-converged by control-plane replay, diffed into a rule-level delta,
// and applied incrementally; every step also times (and validates
// against) the from-scratch rebuild the delta engine replaces.
//
// On cancellation the completed steps are returned with ctx.Err().
func ChurnStudy(ctx context.Context, rg *topogen.Regional, events int, seed int64) (*ChurnResult, error) {
	trace := core.NewTrace()
	FinalSuite().Run(ctx, rg.Net, trace)
	eng, err := delta.NewEngine(rg.Net, trace)
	if err != nil {
		return nil, err
	}
	replay := bgp.NewReplay(bgp.Config{
		Net: rg.Net, Origins: rg.Origins, Statics: rg.Statics, Export: rg.Export,
	})
	flaps := bgp.GenFlaps(seed, events, len(rg.Origins))

	res := &ChurnResult{}
	var decay float64
	for i, ev := range flaps {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := replay.Toggle(ev); err != nil {
			return res, err
		}
		next, err := replay.Build()
		if err != nil {
			return res, err
		}
		ops, err := delta.Diff(eng.Net, next)
		if err != nil {
			return res, err
		}

		t0 := time.Now()
		ap, err := eng.Apply(delta.Document{Ops: ops})
		deltaNS := time.Since(t0).Nanoseconds()
		if err != nil {
			return res, err
		}
		decay += ap.Decay.LostFraction

		// The alternative the delta path replaces: tear down and rebuild
		// from the wire bytes, fresh BDD space, full re-derivation. Also
		// the per-step validation that incremental stayed exact.
		t1 := time.Now()
		var buf bytes.Buffer
		if err := eng.Net.EncodeJSON(&buf); err != nil {
			return res, err
		}
		rb, err := netmodel.DecodeJSON(&buf)
		if err != nil {
			return res, err
		}
		rb.ComputeMatchSets()
		rebuildNS := time.Since(t1).Nanoseconds()

		moved := eng.Trace.TransferTo(rb.Space)
		covLive := core.NewCoverage(eng.Net, eng.Trace)
		covRb := core.NewCoverage(rb, moved)
		identical := core.RuleCoverage(covLive, nil, core.Weighted) == core.RuleCoverage(covRb, nil, core.Weighted) &&
			core.RuleCoverage(covLive, nil, core.Fractional) == core.RuleCoverage(covRb, nil, core.Fractional)

		dir := "down"
		if ev.Up {
			dir = "up"
		}
		cfgRows := report.ConfigCoverage(covLive)
		res.Steps = append(res.Steps, ChurnStep{
			Step:           i + 1,
			Event:          fmt.Sprintf("origin %d %s", ev.Origin, dir),
			Rules:          len(eng.Net.Rules),
			Ops:            len(ops),
			RuleCoverage:   core.RuleCoverage(covLive, nil, core.Weighted),
			ConfigCoverage: report.ConfigTotal(cfgRows).Fraction(),
			Decay:          decay,
			DeltaNS:        deltaNS,
			RebuildNS:      rebuildNS,
			Identical:      identical,
		})
		res.DeltaNS += deltaNS
		res.RebuildNS += rebuildNS
	}
	return res, nil
}

// RenderChurn formats the time series as a table.
func RenderChurn(res *ChurnResult) string {
	s := fmt.Sprintf("%4s %-14s %6s %4s %9s %8s %7s %9s %11s %6s\n",
		"step", "event", "rules", "ops", "rule-cov", "cfg-cov", "decay", "delta", "rebuild", "exact")
	for _, st := range res.Steps {
		s += fmt.Sprintf("%4d %-14s %6d %4d %8.2f%% %7.2f%% %6.3f %9s %11s %6v\n",
			st.Step, st.Event, st.Rules, st.Ops,
			100*st.RuleCoverage, 100*st.ConfigCoverage, st.Decay,
			time.Duration(st.DeltaNS).Round(time.Microsecond),
			time.Duration(st.RebuildNS).Round(time.Microsecond),
			st.Identical)
	}
	s += fmt.Sprintf("\ntotals: delta %s, rebuild %s (%.1fx speedup over %d events)\n",
		time.Duration(res.DeltaNS).Round(time.Microsecond),
		time.Duration(res.RebuildNS).Round(time.Microsecond),
		res.Speedup(), len(res.Steps))
	return s
}
