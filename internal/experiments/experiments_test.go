package experiments

import (
	"context"
	"testing"

	"yardstick/internal/topogen"
)

func regional(t *testing.T) *topogen.Regional {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

// TestFigure6Shapes verifies the qualitative claims of each Figure 6
// panel on the synthetic case-study network.
func TestFigure6Shapes(t *testing.T) {
	rg := regional(t)
	panels := Figure6All(context.Background(), rg)
	if len(panels) != 4 {
		t.Fatalf("panels = %d", len(panels))
	}
	byLabel := func(p Figure6Result, role string) (m struct {
		dev, ifc, ruleF, ruleW float64
	}) {
		for _, r := range p.Rows {
			if r.Label == role {
				m.dev, m.ifc, m.ruleF, m.ruleW =
					r.DeviceFractional, r.IfaceFractional, r.RuleFractional, r.RuleWeighted
			}
		}
		return
	}

	// Panel 6a: original suite.
	a := panels[0]
	for _, role := range []string{"tor", "agg", "spine"} {
		if m := byLabel(a, role); m.dev != 1 {
			t.Errorf("6a: %s fractional device coverage = %v, want 1", role, m.dev)
		}
	}
	// Hubs dip slightly: interconnect-only hubs are excluded from
	// DefaultRouteCheck.
	if m := byLabel(a, "hub"); m.dev >= 1 || m.dev == 0 {
		t.Errorf("6a: hub device coverage = %v, want in (0,1)", m.dev)
	}
	// Interface coverage is high only for aggregation routers.
	aggIf := byLabel(a, "agg").ifc
	for _, role := range []string{"tor", "spine", "hub"} {
		if other := byLabel(a, role).ifc; other >= aggIf {
			t.Errorf("6a: %s interface coverage (%v) should be below agg (%v)", role, other, aggIf)
		}
	}
	// Fractional rule coverage is tiny; weighted is high (default route
	// dominates the space).
	for _, role := range []string{"tor", "spine", "hub"} {
		m := byLabel(a, role)
		if m.ruleF > 0.25 {
			t.Errorf("6a: %s fractional rule coverage = %v, want small", role, m.ruleF)
		}
		if m.ruleW < 0.5 {
			t.Errorf("6a: %s weighted rule coverage = %v, want large", role, m.ruleW)
		}
		if m.ruleW <= m.ruleF {
			t.Errorf("6a: %s weighted (%v) should exceed fractional (%v)", role, m.ruleW, m.ruleF)
		}
	}

	// Panel 6b: InternalRouteCheck covers most ToR/agg rules, about half
	// on spines/hubs (wide-area and connected routes stay dark).
	b := panels[1]
	for _, role := range []string{"tor", "agg"} {
		if m := byLabel(b, role); m.ruleF < 0.6 {
			t.Errorf("6b: %s fractional rule coverage = %v, want high", role, m.ruleF)
		}
	}
	for _, role := range []string{"spine", "hub"} {
		m := byLabel(b, role)
		if m.ruleF < 0.25 || m.ruleF > 0.85 {
			t.Errorf("6b: %s fractional rule coverage = %v, want mid-range", role, m.ruleF)
		}
		if m.ruleF >= byLabel(b, "tor").ruleF {
			t.Errorf("6b: %s should trail tor", role)
		}
	}

	// Panel 6c: ConnectedRouteCheck covers nearly all interfaces except
	// on ToRs (host-facing interfaces have no /31).
	c := panels[2]
	for _, role := range []string{"agg", "spine"} {
		if m := byLabel(c, role); m.ifc < 0.95 {
			t.Errorf("6c: %s interface coverage = %v, want ~1", role, m.ifc)
		}
	}
	// Hubs are "nearly 100%": only their WAN edges (no /31) stay dark.
	if m := byLabel(c, "hub"); m.ifc < 0.85 {
		t.Errorf("6c: hub interface coverage = %v, want ~0.9", m.ifc)
	}
	if m := byLabel(c, "tor"); m.ifc >= 0.95 {
		t.Errorf("6c: tor interface coverage = %v, want below the rest", m.ifc)
	}

	// Panel 6d: the final suite strictly dominates the original on every
	// role and metric.
	d := panels[3]
	for _, role := range []string{"tor", "agg", "spine", "hub"} {
		ma, md := byLabel(a, role), byLabel(d, role)
		if md.ruleF < ma.ruleF || md.ifc < ma.ifc || md.dev < ma.dev {
			t.Errorf("6d: %s final suite regressed vs original", role)
		}
	}
	// Wide-area gap persists: spine/hub fractional rule coverage stays
	// well below 1.
	for _, role := range []string{"spine", "hub"} {
		if m := byLabel(d, role); m.ruleF > 0.9 {
			t.Errorf("6d: %s rule coverage = %v — wide-area gap should persist", role, m.ruleF)
		}
	}
	// All tests pass on the healthy network.
	for _, p := range panels {
		for _, r := range p.Results {
			if !r.Pass() {
				t.Errorf("panel %s: %s failed: %+v", p.Panel, r.Name, r.Failures[:1])
			}
		}
	}
}

func TestFigure7Improvement(t *testing.T) {
	rg := regional(t)
	res := Figure7(context.Background(), rg)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Monotone improvement across iterations for rules and interfaces.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].RuleFractional < res.Rows[i-1].RuleFractional {
			t.Errorf("iteration %d decreased rule coverage", i)
		}
		if res.Rows[i].IfaceFractional < res.Rows[i-1].IfaceFractional {
			t.Errorf("iteration %d decreased interface coverage", i)
		}
	}
	// The headline: large relative rule gain, modest interface gain.
	if res.Improvement.RulePct < 50 {
		t.Errorf("rule improvement = %v%%, want large", res.Improvement.RulePct)
	}
	if res.Improvement.IfacePct <= 0 {
		t.Errorf("interface improvement = %v%%, want positive", res.Improvement.IfacePct)
	}
}

func TestFigure8SmallSweep(t *testing.T) {
	rows, err := Figure8(context.Background(), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 tests", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Test] = true
		if r.Baseline < 0 || r.Tracked < 0 {
			t.Errorf("negative duration: %+v", r)
		}
	}
	for _, want := range []string{"DefaultRouteCheck", "ToRReachability", "ToRContract", "ToRPingmesh"} {
		if !names[want] {
			t.Errorf("missing test %s", want)
		}
	}
	if out := RenderFigure8(rows); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestFigure9SmallSweep(t *testing.T) {
	rows, err := Figure9(context.Background(), []int{4}, Figure9Opts{PathBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 metrics", len(rows))
	}
	var pathRow *Figure9Row
	for i := range rows {
		if rows[i].Metric == "path" {
			pathRow = &rows[i]
		}
	}
	if pathRow == nil || pathRow.Paths == 0 {
		t.Fatal("path metric missing or processed no paths")
	}
	if out := RenderFigure9(rows); len(out) == 0 {
		t.Error("empty render")
	}
	// SkipPaths drops the path row.
	rows, err = Figure9(context.Background(), []int{4}, Figure9Opts{SkipPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3 with SkipPaths", len(rows))
	}
}

func TestMutationStudyCorrelation(t *testing.T) {
	rg := regional(t)
	res, err := MutationStudy(context.Background(), rg, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Faults) != 30 {
		t.Fatalf("shape: %d rows %d faults", len(res.Rows), len(res.Faults))
	}
	// Detection must order with coverage: original <= final <= extended.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].RuleCoverage < res.Rows[i-1].RuleCoverage {
			t.Errorf("coverage not increasing at %s", res.Rows[i].Suite)
		}
		if res.Rows[i].Detected < res.Rows[i-1].Detected {
			t.Errorf("detection not increasing at %s", res.Rows[i].Suite)
		}
	}
	if res.Rows[2].Detected <= res.Rows[0].Detected {
		t.Error("extended suite should strictly beat the original")
	}
	if out := RenderMutation(res); out == "" {
		t.Error("empty render")
	}
}

// TestFigure6dPaperExactToRInterfaces pins the paper-exact Figure 6d ToR
// interface number: with six host ports per ToR (the production-realistic
// density), the final suite leaves exactly 25% of ToR interfaces covered.
func TestFigure6dPaperExactToRInterfaces(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{SubnetsPerToR: 6})
	if err != nil {
		t.Fatal(err)
	}
	panel := Figure6(context.Background(), rg, "6d", FinalSuite())
	for _, row := range panel.Rows {
		if row.Label == "tor" {
			if row.IfaceFractional != 0.25 {
				t.Errorf("ToR interface coverage = %v, want exactly 0.25", row.IfaceFractional)
			}
			return
		}
	}
	t.Fatal("no tor row")
}
