package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Job persistence follows the trace-snapshot discipline (internal/core
// snapshot.go): an atomic-rename JSON file stamped with the network
// fingerprint the jobs ran against, discarded wholesale when the
// fingerprint no longer matches. Completed jobs survive a daemon
// restart with their results intact; jobs caught queued or running are
// converted by Restore into failures with an explicit reason, so a
// poller that submitted before the crash gets a diagnosable terminal
// state instead of a 404 or an eternally "queued" ghost.

// ErrMismatch is returned by Load when the records were saved against a
// different network than the provided fingerprint. Callers should
// discard the file and start empty.
var ErrMismatch = errors.New("jobs: snapshot network fingerprint mismatch")

// ErrInterrupted is the reason stamped on restored jobs that were
// queued or running when the daemon stopped.
const ErrInterrupted = "interrupted by daemon restart before completion"

type fileJSON struct {
	Fingerprint string `json:"fingerprint"`
	Jobs        []Job  `json:"jobs"`
}

// Save atomically writes the job records stamped with the network
// fingerprint: temp file in the target directory, then rename, so a
// crash mid-write never corrupts the previous file.
func Save(path, fingerprint string, js []Job) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("jobs: save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(fileJSON{Fingerprint: fingerprint, Jobs: js}); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("jobs: save: %w", err)
	}
	return nil
}

// Load reads job records saved against fingerprint. It returns
// fs.ErrNotExist (wrapped) when no file exists and ErrMismatch when the
// records belong to a different network.
func Load(path, fingerprint string) ([]Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var fj fileJSON
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fj); err != nil {
		return nil, fmt.Errorf("jobs: load: %w", err)
	}
	if fj.Fingerprint != fingerprint {
		return nil, ErrMismatch
	}
	return fj.Jobs, nil
}

// Records snapshots every retained job for persistence, oldest first.
// Call after Wait so running states are settled — records taken while
// workers are live may still say "running", which Restore converts to a
// failure on the other side.
func (q *Queue) Records() []Job { return q.Jobs() }

// Restore merges previously saved records into the queue: terminal jobs
// are recovered verbatim (a done job's Result is fetchable again), jobs
// that were queued or running at shutdown become failed with
// ErrInterrupted as the reason. IDs already present are skipped — the
// live queue's view wins. It returns how many jobs were recovered and
// how many of those were converted to failures.
func (q *Queue) Restore(js []Job) (recovered, interrupted int) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, rec := range js {
		if rec.ID == "" {
			continue
		}
		if _, exists := q.jobs[rec.ID]; exists {
			continue
		}
		if !rec.State.Terminal() {
			rec.State = StateFailed
			rec.Error = ErrInterrupted
			rec.Result = nil
			interrupted++
		}
		if rec.Finished.IsZero() {
			rec.Finished = now // start the TTL clock for swept-in records
		}
		q.jobs[rec.ID] = &job{Job: rec}
		recovered++
	}
	return recovered, interrupted
}
