package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoRunner returns the spec's suite string as the result.
func echoRunner(ctx context.Context, spec Spec) (json.RawMessage, error) {
	return json.Marshal(spec.Suites)
}

// waitState polls until the job reaches a terminal state or the
// deadline passes.
func waitTerminal(t *testing.T, q *Queue, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

func TestSubmitRunDone(t *testing.T) {
	q := New(echoRunner, Config{QueueDepth: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); q.Wait() }()
	q.Start(ctx)

	j, err := q.Submit(Spec{Suites: "default"})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" || j.Submitted.IsZero() {
		t.Fatalf("submit snapshot = %+v", j)
	}
	got := waitTerminal(t, q, j.ID)
	if got.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", got.State, got.Error)
	}
	var suites string
	if err := json.Unmarshal(got.Result, &suites); err != nil || suites != "default" {
		t.Fatalf("result = %q, %v", got.Result, err)
	}
	if got.Started.IsZero() || got.Finished.IsZero() {
		t.Fatalf("timestamps not set: %+v", got)
	}
	st := q.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFIFOOrder(t *testing.T) {
	var mu []string
	done := make(chan struct{}, 16)
	run := func(ctx context.Context, spec Spec) (json.RawMessage, error) {
		mu = append(mu, spec.Suites) // single worker: no data race
		done <- struct{}{}
		return nil, nil
	}
	q := New(run, Config{QueueDepth: 16, Workers: 1})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := q.Submit(Spec{Suites: fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); q.Wait() }()
	q.Start(ctx)
	for i := 0; i < 5; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("jobs did not drain")
		}
	}
	waitTerminal(t, q, ids[4])
	for i, s := range mu {
		if s != fmt.Sprint(i) {
			t.Fatalf("execution order %v, want FIFO", mu)
		}
	}
}

func TestQueueFullSheds(t *testing.T) {
	q := New(echoRunner, Config{QueueDepth: 2}) // workers never started
	if _, err := q.Submit(Spec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	st := q.Stats()
	if st.ShedFull != 1 || st.Depth != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.Saturated() {
		t.Fatal("full queue not reported saturated")
	}
}

func TestCancelQueued(t *testing.T) {
	q := New(echoRunner, Config{QueueDepth: 2}) // no workers: stays queued
	j, err := q.Submit(Spec{Suites: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled || got.Error == "" || got.Finished.IsZero() {
		t.Fatalf("cancelled snapshot = %+v", got)
	}
	// Cancelling again reports the terminal state.
	if _, err := q.Cancel(j.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel err = %v, want ErrFinished", err)
	}
	if _, err := q.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown cancel err = %v, want ErrNotFound", err)
	}
	// A worker started later skips the tombstone without running it.
	ran := atomic.Bool{}
	q2 := New(func(ctx context.Context, spec Spec) (json.RawMessage, error) {
		ran.Store(true)
		return nil, nil
	}, Config{QueueDepth: 2})
	j2, _ := q2.Submit(Spec{})
	if _, err := q2.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q2.Start(ctx)
	time.Sleep(20 * time.Millisecond)
	cancel()
	q2.Wait()
	if ran.Load() {
		t.Fatal("cancelled-while-queued job was executed")
	}
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	run := func(ctx context.Context, spec Spec) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := New(run, Config{QueueDepth: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); q.Wait() }()
	q.Start(ctx)
	j, err := q.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	// Cancel marks the state immediately; the worker finalizes Finished
	// and the counter when the runner unwinds — wait for that.
	var got Job
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, _ = q.Get(j.ID)
		if !got.Finished.IsZero() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got.State != StateCancelled || !strings.Contains(got.Error, "cancelled") || got.Finished.IsZero() {
		t.Fatalf("job = %+v, want finalized cancelled", got)
	}
	if q.Stats().Cancelled != 1 {
		t.Fatalf("cancelled counter = %d", q.Stats().Cancelled)
	}
}

func TestRunTimeout(t *testing.T) {
	run := func(ctx context.Context, spec Spec) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := New(run, Config{QueueDepth: 2, RunTimeout: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); q.Wait() }()
	q.Start(ctx)
	j, _ := q.Submit(Spec{})
	got := waitTerminal(t, q, j.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("job = %+v, want failed on deadline", got)
	}
}

func TestPanicIsolatesToJob(t *testing.T) {
	n := atomic.Int64{}
	run := func(ctx context.Context, spec Spec) (json.RawMessage, error) {
		if n.Add(1) == 1 {
			panic("boom")
		}
		return json.RawMessage(`"ok"`), nil
	}
	q := New(run, Config{QueueDepth: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); q.Wait() }()
	q.Start(ctx)
	j1, _ := q.Submit(Spec{})
	j2, _ := q.Submit(Spec{})
	got1 := waitTerminal(t, q, j1.ID)
	got2 := waitTerminal(t, q, j2.ID)
	if got1.State != StateFailed || !strings.Contains(got1.Error, "boom") {
		t.Fatalf("panicked job = %+v", got1)
	}
	if got2.State != StateDone {
		t.Fatalf("the worker did not survive the panic: %+v", got2)
	}
}

func TestTTLSweep(t *testing.T) {
	q := New(echoRunner, Config{QueueDepth: 4, TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	q.Start(ctx)
	j, _ := q.Submit(Spec{})
	waitTerminal(t, q, j.ID)
	cancel()
	q.Wait()
	if n := q.Sweep(time.Now()); n != 0 {
		t.Fatalf("fresh job swept (%d)", n)
	}
	if n := q.Sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired sweep removed %d, want 1", n)
	}
	if _, ok := q.Get(j.ID); ok {
		t.Fatal("swept job still retrievable")
	}
}

// TestChaosRestartMidQueue is the package-level restart chaos test: a
// queue with one job done, one running, and one queued is checkpointed
// the way a shutting-down daemon would, then restored into a fresh
// queue — the done job's result survives, the interrupted ones surface
// as failed with an explicit reason.
func TestChaosRestartMidQueue(t *testing.T) {
	block := make(chan struct{})
	running := make(chan struct{}, 1)
	run := func(ctx context.Context, spec Spec) (json.RawMessage, error) {
		if spec.Suites == "slow" {
			running <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return json.Marshal("result:" + spec.Suites)
	}
	q := New(run, Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	q.Start(ctx)

	jDone, _ := q.Submit(Spec{Suites: "fast"})
	waitTerminal(t, q, jDone.ID)
	jRun, _ := q.Submit(Spec{Suites: "slow"})
	<-running // the slow job is mid-flight
	jQueued, _ := q.Submit(Spec{Suites: "later"})

	// Daemon shutdown: cancel workers, wait, then checkpoint. The
	// running job fails on its cancelled context; the queued one is
	// persisted still queued.
	cancel()
	q.Wait()
	close(block)
	recs := q.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.snap")
	if err := Save(path, "fp-1", recs); err != nil {
		t.Fatal(err)
	}

	// Fingerprint mismatch discards wholesale.
	if _, err := Load(path, "other-network"); !errors.Is(err, ErrMismatch) {
		t.Fatalf("mismatched load err = %v, want ErrMismatch", err)
	}

	loaded, err := Load(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	q2 := New(run, Config{QueueDepth: 4})
	recovered, interrupted := q2.Restore(loaded)
	if recovered != 3 {
		t.Fatalf("recovered = %d, want 3", recovered)
	}
	// jQueued was persisted queued; jRun either failed on context
	// cancellation before the checkpoint (settled) or was persisted
	// running and converted by Restore. Either way both must now be
	// terminal failures with a reason.
	if interrupted < 1 {
		t.Fatalf("interrupted = %d, want >= 1", interrupted)
	}

	got, ok := q2.Get(jDone.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("done job not recovered: %+v ok=%v", got, ok)
	}
	var res string
	if err := json.Unmarshal(got.Result, &res); err != nil || res != "result:fast" {
		t.Fatalf("recovered result = %q, %v", got.Result, err)
	}
	for _, id := range []string{jRun.ID, jQueued.ID} {
		j, ok := q2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if j.State != StateFailed && j.State != StateCancelled {
			t.Fatalf("interrupted job %s = %+v, want failed-with-reason", id, j)
		}
		if j.Error == "" {
			t.Fatalf("interrupted job %s has no reason", id)
		}
	}
	if jq, _ := q2.Get(jQueued.ID); jq.Error != ErrInterrupted {
		t.Fatalf("queued-at-shutdown job reason = %q, want %q", jq.Error, ErrInterrupted)
	}

	// Restoring the same records again is a no-op (live view wins).
	if n, _ := q2.Restore(loaded); n != 0 {
		t.Fatalf("double restore recovered %d, want 0", n)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.snap"), "fp")
	if err == nil {
		t.Fatal("expected error for a missing file")
	}
}
