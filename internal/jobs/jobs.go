// Package jobs is the asynchronous admission layer behind the coverage
// service's POST /jobs API: a bounded FIFO queue feeding a fixed worker
// pool, so a long-running coverage run no longer ties an HTTP connection
// up for its whole duration and a burst of submissions degrades into
// explicit load-shedding (ErrQueueFull → 503 + Retry-After at the HTTP
// layer) instead of an unbounded pile-up on the evaluation mutex.
//
// A job moves through a small state machine:
//
//	queued ──▶ running ──▶ done
//	   │          │    └──▶ failed     (runner error, panic, budget, ctx)
//	   └──────────┴───────▶ cancelled  (DELETE /jobs/{id})
//
// done, failed, and cancelled are terminal. Terminal jobs are retained
// for Config.TTL so pollers can fetch results, then swept. The queue
// itself never inspects what a job computes: the Runner callback returns
// an opaque json.RawMessage, which keeps this package free of service
// and evaluation dependencies (and therefore trivially testable).
//
// Persistence (persist.go) rides the service's fingerprinted-snapshot
// path: Records serializes every job, Save/Load wrap the same
// atomic-rename + network-fingerprint discipline as core trace
// snapshots, and Restore recovers terminal jobs verbatim while
// surfacing jobs that were queued or running at the crash as failed
// with an explicit reason — a restart never silently loses a job, it
// converts it into a diagnosable failure.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's position in the lifecycle state machine.
type State string

// Job states. Done, Failed, and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final (the job will never run
// again and its Result/Error fields are settled).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is what a job was asked to do — the queue carries it opaquely to
// the Runner.
type Spec struct {
	// Suites is the comma-separated built-in suite list (the same syntax
	// POST /run accepts).
	Suites string `json:"suites"`
	// Workers is the requested per-run parallelism (0 = the server cap,
	// 1 = sequential), clamped server-side like POST /run's ?workers.
	Workers int `json:"workers,omitempty"`
	// RunID is the distributed run this job belongs to, minted by the
	// coordinator and delivered in the X-Run-Id submit header ("" for a
	// standalone job). The job's span tree, logs, and pprof labels carry
	// it so fleet-wide profiles can be joined per run.
	RunID string `json:"runId,omitempty"`
	// Shard identifies which shard of the run this job executes (from
	// the X-Shard-Id submit header; "" for standalone jobs).
	Shard string `json:"shard,omitempty"`
}

// Job is the externally visible snapshot of one job — what GET
// /jobs/{id} serves and what persistence records. Zero timestamps mean
// "not reached yet" (a queued job has no Started).
type Job struct {
	ID        string          `json:"id"`
	Spec      Spec            `json:"spec"`
	State     State           `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started"`
	Finished  time.Time       `json:"finished"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// Runner executes one job's work under ctx (cancelled on DELETE, on the
// per-job run-timeout, and on queue shutdown) and returns the job's
// result as opaque JSON. A panic in the runner fails the job, not the
// worker.
type Runner func(ctx context.Context, spec Spec) (json.RawMessage, error)

// Config sizes a Queue.
type Config struct {
	// QueueDepth bounds how many jobs may wait (default 64). Submit
	// returns ErrQueueFull past it — the admission signal the HTTP layer
	// turns into 503 + Retry-After.
	QueueDepth int
	// Workers is the worker-pool size (default 1). The coverage service
	// sizes this off its evaluation Workers cap.
	Workers int
	// RunTimeout bounds each job's execution context (0 = unbounded).
	RunTimeout time.Duration
	// TTL is how long terminal jobs are retained for polling before the
	// janitor sweeps them (default 1h).
	TTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.TTL <= 0 {
		c.TTL = time.Hour
	}
	return c
}

// Sentinel errors for Submit and Cancel.
var (
	// ErrQueueFull rejects a Submit when QueueDepth jobs are already
	// waiting — the backpressure signal.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotFound is returned for an unknown (or already swept) job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished rejects a Cancel of a job already in a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// job is the internal mutable record; Job snapshots of it are handed
// out under the queue mutex.
type job struct {
	Job
	cancel context.CancelFunc // non-nil only while running
}

// Queue is a bounded FIFO job queue with a fixed worker pool. Create
// with New, start workers with Start, and stop them by cancelling
// Start's context (then Wait). All methods are safe for concurrent use;
// Submit/Get/Cancel work even before Start (jobs simply wait).
type Queue struct {
	run Runner
	cfg Config

	// fifo carries admission: a Submit that cannot buffer immediately is
	// shed. A job cancelled while queued keeps its slot until a worker
	// dequeues and discards it, so Depth briefly includes tombstones.
	fifo chan *job

	mu      sync.Mutex
	jobs    map[string]*job
	running int
	// lifetime counters (monotonic; surfaced by Stats)
	submitted, done, failed, cancelled, shedFull uint64

	wg sync.WaitGroup
}

// New returns a queue executing jobs with run. Workers do not start
// until Start.
func New(run Runner, cfg Config) *Queue {
	cfg = cfg.withDefaults()
	return &Queue{
		run:  run,
		cfg:  cfg,
		fifo: make(chan *job, cfg.QueueDepth),
		jobs: map[string]*job{},
	}
}

// Config reports the queue's effective (defaulted) configuration.
func (q *Queue) Config() Config { return q.cfg }

// Start launches the worker pool and the TTL janitor. Workers exit when
// ctx is cancelled; a job running at that moment has its own context
// cancelled and finishes as failed (context.Canceled) — the state
// persistence then reports after a restart.
func (q *Queue) Start(ctx context.Context) {
	for i := 0; i < q.cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker(ctx)
	}
	q.wg.Add(1)
	go q.janitor(ctx)
}

// Wait blocks until every goroutine Start launched has exited. Call
// after cancelling Start's context and before persisting Records, so
// the saved states are settled.
func (q *Queue) Wait() { q.wg.Wait() }

// newID returns a 16-hex-char random job ID (the same shape as request
// IDs). Randomness failures degrade to a timestamp-derived ID rather
// than failing the submit.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues a job, returning its snapshot (State queued) or
// ErrQueueFull when QueueDepth jobs are already waiting.
func (q *Queue) Submit(spec Spec) (Job, error) {
	j := &job{Job: Job{
		ID:        newID(),
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now(),
	}}
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.fifo <- j:
	default:
		q.shedFull++
		return Job{}, ErrQueueFull
	}
	q.jobs[j.ID] = j
	q.submitted++
	return j.Job, nil
}

// Get returns a snapshot of the job, or false for an unknown ID.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.Job, true
}

// Jobs returns a snapshot of every retained job, oldest submission
// first.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	out := make([]Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j.Job)
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Submitted.Equal(out[k].Submitted) {
			return out[i].Submitted.Before(out[k].Submitted)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel moves a queued job straight to cancelled, or aborts a running
// job by cancelling its context (the worker then finalizes it as
// cancelled). Cancelling a terminal job returns its snapshot with
// ErrFinished; an unknown ID returns ErrNotFound.
func (q *Queue) Cancel(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		// The fifo slot is reclaimed when a worker dequeues the tombstone.
		j.State = StateCancelled
		j.Error = "cancelled before start"
		j.Finished = time.Now()
		q.cancelled++
	case StateRunning:
		j.State = StateCancelled
		j.Error = "cancelled while running"
		j.cancel()
	default:
		return j.Job, ErrFinished
	}
	return j.Job, nil
}

func (q *Queue) worker(ctx context.Context) {
	defer q.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-q.fifo:
			// The select is unordered: a cancelled ctx and a ready fifo can
			// both fire. Never start new work during shutdown — the job
			// stays in the map as queued, for persistence to report.
			if ctx.Err() != nil {
				return
			}
			q.exec(ctx, j)
		}
	}
}

// jobIDKey carries the executing job's ID on its context, so a Runner
// can key side artifacts (the coverage service keys per-job trace
// exports) without widening the Runner signature.
type jobIDKey struct{}

// JobID returns the ID of the job a Runner is executing, when ctx is a
// job execution context ("" otherwise).
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// exec runs one dequeued job to a terminal state.
func (q *Queue) exec(ctx context.Context, j *job) {
	q.mu.Lock()
	if j.State != StateQueued { // cancelled while waiting; slot reclaimed
		q.mu.Unlock()
		return
	}
	jctx, cancel := q.jobContext(ctx)
	jctx = context.WithValue(jctx, jobIDKey{}, j.ID)
	j.State = StateRunning
	j.Started = time.Now()
	j.cancel = cancel
	q.running++
	q.mu.Unlock()

	res, err := q.safeRun(jctx, j.Spec)
	cancel()

	q.mu.Lock()
	q.running--
	j.cancel = nil
	j.Finished = time.Now()
	switch {
	case j.State == StateCancelled:
		// A DELETE raced the run to completion; the cancel verdict (and
		// its reason, set by Cancel) wins regardless of the run's outcome.
		q.cancelled++
	case err != nil:
		j.State = StateFailed
		j.Error = err.Error()
		q.failed++
	default:
		j.State = StateDone
		j.Result = res
		q.done++
	}
	q.mu.Unlock()
}

// jobContext derives one job's execution context: the worker context
// (queue shutdown) bounded by the configured run-timeout.
func (q *Queue) jobContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if q.cfg.RunTimeout > 0 {
		return context.WithTimeout(ctx, q.cfg.RunTimeout)
	}
	return context.WithCancel(ctx)
}

// safeRun isolates runner panics: a panicking job fails; the worker
// survives to take the next one.
func (q *Queue) safeRun(ctx context.Context, spec Spec) (res json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	return q.run(ctx, spec)
}

// janitor sweeps expired terminal jobs every quarter-TTL (clamped to
// [1s, 1m] so tiny TTLs don't spin and huge ones still converge).
func (q *Queue) janitor(ctx context.Context) {
	defer q.wg.Done()
	interval := q.cfg.TTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			q.Sweep(time.Now())
		}
	}
}

// Sweep drops terminal jobs that finished more than TTL before now and
// reports how many were removed. Exported for tests and for operators
// embedding the queue without the janitor.
func (q *Queue) Sweep(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for id, j := range q.jobs {
		if j.State.Terminal() && !j.Finished.IsZero() && now.Sub(j.Finished) > q.cfg.TTL {
			delete(q.jobs, id)
			n++
		}
	}
	return n
}

// Stats is a point-in-time queue health snapshot (served by GET /stats
// and flushed into the metrics registry at scrape time).
type Stats struct {
	// Depth is the number of fifo slots in use — jobs waiting plus
	// cancelled-while-queued tombstones not yet dequeued.
	Depth int `json:"depth"`
	// Capacity is the configured QueueDepth.
	Capacity int `json:"capacity"`
	// Running is the number of jobs currently executing.
	Running int `json:"running"`
	// Retained is the number of jobs held in memory, terminal ones
	// (pre-TTL) included.
	Retained  int    `json:"retained"`
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// ShedFull counts Submits rejected with ErrQueueFull.
	ShedFull uint64 `json:"shedFull"`
}

// Saturated reports whether the queue has no admission headroom (the
// /readyz queue_saturated condition).
func (s Stats) Saturated() bool { return s.Depth >= s.Capacity }

// Stats returns current queue statistics.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:     len(q.fifo),
		Capacity:  q.cfg.QueueDepth,
		Running:   q.running,
		Retained:  len(q.jobs),
		Submitted: q.submitted,
		Done:      q.done,
		Failed:    q.failed,
		Cancelled: q.cancelled,
		ShedFull:  q.shedFull,
	}
}
