package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"yardstick/internal/hdr"
)

// The JSON format mirrors the internal arrays: device, interface, and
// rule indices in the file are the DeviceID/IfaceID/RuleID values, so a
// decoded network is structurally identical to the encoded one.

type jsonNetwork struct {
	Family  string       `json:"family,omitempty"` // "ipv6"; absent = IPv4
	Devices []jsonDevice `json:"devices"`
	Ifaces  []jsonIface  `json:"ifaces"`
	Rules   []RuleSpec   `json:"rules"`
}

type jsonDevice struct {
	Name      string   `json:"name"`
	Role      string   `json:"role"`
	ASN       uint32   `json:"asn,omitempty"`
	Loopbacks []string `json:"loopbacks,omitempty"`
	Subnets   []string `json:"subnets,omitempty"`
}

type jsonIface struct {
	Device   int32  `json:"device"`
	Name     string `json:"name"`
	Addr     string `json:"addr,omitempty"`
	Peer     int32  `json:"peer"` // -1 = none
	External bool   `json:"external,omitempty"`
}

// MatchSpec is the wire form of a rule's match fields. It is shared by
// the whole-network JSON format and the rule-delta documents of
// internal/delta (PATCH /network), so a delta can carry exactly what a
// network file would.
type MatchSpec struct {
	Dst     string    `json:"dst,omitempty"`
	Src     string    `json:"src,omitempty"`
	Proto   *int32    `json:"proto,omitempty"`
	DstPort *[2]int32 `json:"dstPort,omitempty"`
	SrcPort *[2]int32 `json:"srcPort,omitempty"`
}

// TransformSpec is the wire form of a rule's header rewrite.
type TransformSpec struct {
	RewriteDst bool   `json:"rewriteDst,omitempty"`
	RewriteSrc bool   `json:"rewriteSrc,omitempty"`
	Addr       string `json:"addr"`
}

// RuleSpec is the wire form of one rule: the element type of a network
// file's "rules" array and the payload of delta add/modify operations.
// Device and interface references are indices into the network the spec
// is applied to.
type RuleSpec struct {
	Device    int32          `json:"device"`
	Table     string         `json:"table"` // "acl" or "fib"
	Match     MatchSpec      `json:"match"`
	Action    string         `json:"action"` // "forward", "drop", "deliver"
	Out       []int32        `json:"out,omitempty"`
	Transform *TransformSpec `json:"transform,omitempty"`
	Origin    string         `json:"origin,omitempty"`
	Deny      bool           `json:"deny,omitempty"`
}

func prefixString(p netip.Prefix) string {
	if !p.IsValid() {
		return ""
	}
	return p.String()
}

func parsePrefix(s string) (netip.Prefix, error) {
	if s == "" {
		return netip.Prefix{}, nil
	}
	return netip.ParsePrefix(s)
}

// MatchSpecOf converts match fields to their wire form.
func MatchSpecOf(m Match) MatchSpec {
	var jm MatchSpec
	jm.Dst = prefixString(m.DstPrefix)
	jm.Src = prefixString(m.SrcPrefix)
	if m.Proto >= 0 {
		p := m.Proto
		jm.Proto = &p
	}
	if m.DstPortLo != 0 || m.DstPortHi != 65535 {
		jm.DstPort = &[2]int32{int32(m.DstPortLo), int32(m.DstPortHi)}
	}
	if m.SrcPortLo != 0 || m.SrcPortHi != 65535 {
		jm.SrcPort = &[2]int32{int32(m.SrcPortLo), int32(m.SrcPortHi)}
	}
	return jm
}

// Match parses and validates the spec's match fields.
func (jm MatchSpec) Match() (Match, error) {
	m := MatchAll()
	var err error
	if m.DstPrefix, err = parsePrefix(jm.Dst); err != nil {
		return m, fmt.Errorf("dst: %w", err)
	}
	if m.SrcPrefix, err = parsePrefix(jm.Src); err != nil {
		return m, fmt.Errorf("src: %w", err)
	}
	if jm.Proto != nil {
		if *jm.Proto < 0 || *jm.Proto > 255 {
			return m, fmt.Errorf("proto %d out of range", *jm.Proto)
		}
		m.Proto = *jm.Proto
	}
	if jm.DstPort != nil {
		if err := checkPort(jm.DstPort); err != nil {
			return m, fmt.Errorf("dstPort: %w", err)
		}
		m.DstPortLo, m.DstPortHi = uint16(jm.DstPort[0]), uint16(jm.DstPort[1])
	}
	if jm.SrcPort != nil {
		if err := checkPort(jm.SrcPort); err != nil {
			return m, fmt.Errorf("srcPort: %w", err)
		}
		m.SrcPortLo, m.SrcPortHi = uint16(jm.SrcPort[0]), uint16(jm.SrcPort[1])
	}
	return m, nil
}

func checkPort(r *[2]int32) error {
	for _, v := range r {
		if v < 0 || v > 65535 {
			return fmt.Errorf("port %d out of range", v)
		}
	}
	return nil
}

// RuleDef is a parsed, validated rule specification in model types —
// what a RuleSpec becomes after ParseRuleSpec, and what Mutation
// operations consume.
type RuleDef struct {
	Device DeviceID
	Table  TableKind
	Match  Match
	Action Action
	Origin RouteOrigin
	Deny   bool
}

// ParseRuleSpec validates a wire-format rule against the network's
// topology (device and interface references must resolve) and converts
// it to model types. ACL entries take their action from the deny flag;
// the spec's action field is ignored for them, mirroring DecodeJSON.
func (n *Network) ParseRuleSpec(spec RuleSpec) (RuleDef, error) {
	var def RuleDef
	if int(spec.Device) < 0 || int(spec.Device) >= len(n.Devices) {
		return def, fmt.Errorf("device %d out of range", spec.Device)
	}
	def.Device = DeviceID(spec.Device)
	m, err := spec.Match.Match()
	if err != nil {
		return def, fmt.Errorf("match: %w", err)
	}
	def.Match = m
	def.Origin = RouteOrigin(spec.Origin)
	def.Deny = spec.Deny
	if spec.Table == "acl" {
		// ACL actions are implied by the deny flag.
		def.Table = TableACL
		if spec.Deny {
			def.Action = Action{Kind: ActDrop}
		} else {
			def.Action = Action{Kind: ActForward}
		}
		return def, nil
	}
	switch spec.Action {
	case "forward":
		def.Action.Kind = ActForward
		if len(spec.Out) == 0 {
			return def, fmt.Errorf("forward with no out interfaces")
		}
		for _, out := range spec.Out {
			if int(out) < 0 || int(out) >= len(n.Ifaces) {
				return def, fmt.Errorf("out iface %d out of range", out)
			}
			if n.Iface(IfaceID(out)).Device != def.Device {
				return def, fmt.Errorf("out iface %d not on device", out)
			}
			def.Action.OutIfaces = append(def.Action.OutIfaces, IfaceID(out))
		}
	case "drop":
		def.Action.Kind = ActDrop
	case "deliver":
		def.Action.Kind = ActDeliver
	default:
		return def, fmt.Errorf("unknown action %q", spec.Action)
	}
	if spec.Transform != nil {
		addr, err := netip.ParseAddr(spec.Transform.Addr)
		if err != nil {
			return def, fmt.Errorf("transform: %w", err)
		}
		def.Action.Transform = &Transform{
			RewriteDst: spec.Transform.RewriteDst,
			RewriteSrc: spec.Transform.RewriteSrc,
			Addr:       addr,
		}
	}
	if spec.Table != "fib" {
		return def, fmt.Errorf("unknown table %q", spec.Table)
	}
	def.Table = TableFIB
	return def, nil
}

// ruleSpec converts a live rule back to its wire form.
func ruleSpec(r *Rule) RuleSpec {
	jr := RuleSpec{
		Device: int32(r.Device),
		Match:  MatchSpecOf(r.Match),
		Origin: string(r.Origin),
		Deny:   r.Deny,
	}
	if r.Table == TableACL {
		jr.Table = "acl"
	} else {
		jr.Table = "fib"
	}
	switch r.Action.Kind {
	case ActForward:
		jr.Action = "forward"
		for _, out := range r.Action.OutIfaces {
			jr.Out = append(jr.Out, int32(out))
		}
	case ActDrop:
		jr.Action = "drop"
	case ActDeliver:
		jr.Action = "deliver"
	}
	if tr := r.Action.Transform; tr != nil {
		jr.Transform = &TransformSpec{
			RewriteDst: tr.RewriteDst,
			RewriteSrc: tr.RewriteSrc,
			Addr:       tr.Addr.String(),
		}
	}
	return jr
}

// RuleSpecOf returns the wire-format spec of an existing rule, suitable
// as the payload of a delta add or modify operation.
func (n *Network) RuleSpecOf(id RuleID) RuleSpec {
	return ruleSpec(n.Rules[id])
}

// EncodeJSON writes the network (topology and rules) as JSON. Match sets
// are not serialized; they are recomputed on decode.
func (n *Network) EncodeJSON(w io.Writer) error {
	jn := jsonNetwork{}
	if n.Family() == hdr.V6 {
		jn.Family = "ipv6"
	}
	for _, d := range n.Devices {
		jd := jsonDevice{Name: d.Name, Role: string(d.Role), ASN: d.ASN}
		for _, p := range d.Loopbacks {
			jd.Loopbacks = append(jd.Loopbacks, p.String())
		}
		for _, p := range d.Subnets {
			jd.Subnets = append(jd.Subnets, p.String())
		}
		jn.Devices = append(jn.Devices, jd)
	}
	for _, ifc := range n.Ifaces {
		jn.Ifaces = append(jn.Ifaces, jsonIface{
			Device:   int32(ifc.Device),
			Name:     ifc.Name,
			Addr:     prefixString(ifc.Addr),
			Peer:     int32(ifc.Peer),
			External: ifc.External,
		})
	}
	for _, r := range n.Rules {
		jn.Rules = append(jn.Rules, ruleSpec(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jn)
}

// DecodeJSON reads a network from JSON, rebuilds it, and computes match
// sets. The result is frozen (no further rules can be added).
func DecodeJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("netmodel: decode: %w", err)
	}
	var n *Network
	switch jn.Family {
	case "":
		n = New()
	case "ipv6":
		n = NewV6()
	default:
		return nil, fmt.Errorf("netmodel: unknown family %q", jn.Family)
	}
	for i, jd := range jn.Devices {
		if jd.Name == "" {
			return nil, fmt.Errorf("netmodel: device %d has no name", i)
		}
		dev := n.AddDevice(jd.Name, Role(jd.Role), jd.ASN)
		d := n.Device(dev)
		for _, s := range jd.Loopbacks {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("netmodel: device %s loopback: %w", jd.Name, err)
			}
			d.Loopbacks = append(d.Loopbacks, p)
		}
		for _, s := range jd.Subnets {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("netmodel: device %s subnet: %w", jd.Name, err)
			}
			d.Subnets = append(d.Subnets, p)
		}
	}
	for i, ji := range jn.Ifaces {
		if int(ji.Device) < 0 || int(ji.Device) >= len(n.Devices) {
			return nil, fmt.Errorf("netmodel: iface %d: device %d out of range", i, ji.Device)
		}
		id := n.AddIface(DeviceID(ji.Device), ji.Name)
		ifc := n.Iface(id)
		ifc.External = ji.External
		ifc.Peer = IfaceID(ji.Peer)
		var err error
		if ifc.Addr, err = parsePrefix(ji.Addr); err != nil {
			return nil, fmt.Errorf("netmodel: iface %d addr: %w", i, err)
		}
	}
	// Validate peer symmetry.
	for i, ifc := range n.Ifaces {
		if ifc.Peer == NoIface {
			continue
		}
		if int(ifc.Peer) < 0 || int(ifc.Peer) >= len(n.Ifaces) {
			return nil, fmt.Errorf("netmodel: iface %d: peer %d out of range", i, ifc.Peer)
		}
		if n.Iface(ifc.Peer).Peer != ifc.ID {
			return nil, fmt.Errorf("netmodel: iface %d: asymmetric peer link", i)
		}
	}
	for i, jr := range jn.Rules {
		def, err := n.ParseRuleSpec(jr)
		if err != nil {
			return nil, fmt.Errorf("netmodel: rule %d: %w", i, err)
		}
		n.addDef(def)
	}
	n.ComputeMatchSets()
	return n, nil
}
