package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"yardstick/internal/hdr"
)

// The JSON format mirrors the internal arrays: device, interface, and
// rule indices in the file are the DeviceID/IfaceID/RuleID values, so a
// decoded network is structurally identical to the encoded one.

type jsonNetwork struct {
	Family  string       `json:"family,omitempty"` // "ipv6"; absent = IPv4
	Devices []jsonDevice `json:"devices"`
	Ifaces  []jsonIface  `json:"ifaces"`
	Rules   []jsonRule   `json:"rules"`
}

type jsonDevice struct {
	Name      string   `json:"name"`
	Role      string   `json:"role"`
	ASN       uint32   `json:"asn,omitempty"`
	Loopbacks []string `json:"loopbacks,omitempty"`
	Subnets   []string `json:"subnets,omitempty"`
}

type jsonIface struct {
	Device   int32  `json:"device"`
	Name     string `json:"name"`
	Addr     string `json:"addr,omitempty"`
	Peer     int32  `json:"peer"` // -1 = none
	External bool   `json:"external,omitempty"`
}

type jsonMatch struct {
	Dst     string    `json:"dst,omitempty"`
	Src     string    `json:"src,omitempty"`
	Proto   *int32    `json:"proto,omitempty"`
	DstPort *[2]int32 `json:"dstPort,omitempty"`
	SrcPort *[2]int32 `json:"srcPort,omitempty"`
}

type jsonTransform struct {
	RewriteDst bool   `json:"rewriteDst,omitempty"`
	RewriteSrc bool   `json:"rewriteSrc,omitempty"`
	Addr       string `json:"addr"`
}

type jsonRule struct {
	Device    int32          `json:"device"`
	Table     string         `json:"table"` // "acl" or "fib"
	Match     jsonMatch      `json:"match"`
	Action    string         `json:"action"` // "forward", "drop", "deliver"
	Out       []int32        `json:"out,omitempty"`
	Transform *jsonTransform `json:"transform,omitempty"`
	Origin    string         `json:"origin,omitempty"`
	Deny      bool           `json:"deny,omitempty"`
}

func prefixString(p netip.Prefix) string {
	if !p.IsValid() {
		return ""
	}
	return p.String()
}

func parsePrefix(s string) (netip.Prefix, error) {
	if s == "" {
		return netip.Prefix{}, nil
	}
	return netip.ParsePrefix(s)
}

func toJSONMatch(m Match) jsonMatch {
	var jm jsonMatch
	jm.Dst = prefixString(m.DstPrefix)
	jm.Src = prefixString(m.SrcPrefix)
	if m.Proto >= 0 {
		p := m.Proto
		jm.Proto = &p
	}
	if m.DstPortLo != 0 || m.DstPortHi != 65535 {
		jm.DstPort = &[2]int32{int32(m.DstPortLo), int32(m.DstPortHi)}
	}
	if m.SrcPortLo != 0 || m.SrcPortHi != 65535 {
		jm.SrcPort = &[2]int32{int32(m.SrcPortLo), int32(m.SrcPortHi)}
	}
	return jm
}

func fromJSONMatch(jm jsonMatch) (Match, error) {
	m := MatchAll()
	var err error
	if m.DstPrefix, err = parsePrefix(jm.Dst); err != nil {
		return m, fmt.Errorf("dst: %w", err)
	}
	if m.SrcPrefix, err = parsePrefix(jm.Src); err != nil {
		return m, fmt.Errorf("src: %w", err)
	}
	if jm.Proto != nil {
		if *jm.Proto < 0 || *jm.Proto > 255 {
			return m, fmt.Errorf("proto %d out of range", *jm.Proto)
		}
		m.Proto = *jm.Proto
	}
	if jm.DstPort != nil {
		if err := checkPort(jm.DstPort); err != nil {
			return m, fmt.Errorf("dstPort: %w", err)
		}
		m.DstPortLo, m.DstPortHi = uint16(jm.DstPort[0]), uint16(jm.DstPort[1])
	}
	if jm.SrcPort != nil {
		if err := checkPort(jm.SrcPort); err != nil {
			return m, fmt.Errorf("srcPort: %w", err)
		}
		m.SrcPortLo, m.SrcPortHi = uint16(jm.SrcPort[0]), uint16(jm.SrcPort[1])
	}
	return m, nil
}

func checkPort(r *[2]int32) error {
	for _, v := range r {
		if v < 0 || v > 65535 {
			return fmt.Errorf("port %d out of range", v)
		}
	}
	return nil
}

// EncodeJSON writes the network (topology and rules) as JSON. Match sets
// are not serialized; they are recomputed on decode.
func (n *Network) EncodeJSON(w io.Writer) error {
	jn := jsonNetwork{}
	if n.Family() == hdr.V6 {
		jn.Family = "ipv6"
	}
	for _, d := range n.Devices {
		jd := jsonDevice{Name: d.Name, Role: string(d.Role), ASN: d.ASN}
		for _, p := range d.Loopbacks {
			jd.Loopbacks = append(jd.Loopbacks, p.String())
		}
		for _, p := range d.Subnets {
			jd.Subnets = append(jd.Subnets, p.String())
		}
		jn.Devices = append(jn.Devices, jd)
	}
	for _, ifc := range n.Ifaces {
		jn.Ifaces = append(jn.Ifaces, jsonIface{
			Device:   int32(ifc.Device),
			Name:     ifc.Name,
			Addr:     prefixString(ifc.Addr),
			Peer:     int32(ifc.Peer),
			External: ifc.External,
		})
	}
	for _, r := range n.Rules {
		jr := jsonRule{
			Device: int32(r.Device),
			Match:  toJSONMatch(r.Match),
			Origin: string(r.Origin),
			Deny:   r.Deny,
		}
		if r.Table == TableACL {
			jr.Table = "acl"
		} else {
			jr.Table = "fib"
		}
		switch r.Action.Kind {
		case ActForward:
			jr.Action = "forward"
			for _, out := range r.Action.OutIfaces {
				jr.Out = append(jr.Out, int32(out))
			}
		case ActDrop:
			jr.Action = "drop"
		case ActDeliver:
			jr.Action = "deliver"
		}
		if tr := r.Action.Transform; tr != nil {
			jr.Transform = &jsonTransform{
				RewriteDst: tr.RewriteDst,
				RewriteSrc: tr.RewriteSrc,
				Addr:       tr.Addr.String(),
			}
		}
		jn.Rules = append(jn.Rules, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jn)
}

// DecodeJSON reads a network from JSON, rebuilds it, and computes match
// sets. The result is frozen (no further rules can be added).
func DecodeJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("netmodel: decode: %w", err)
	}
	var n *Network
	switch jn.Family {
	case "":
		n = New()
	case "ipv6":
		n = NewV6()
	default:
		return nil, fmt.Errorf("netmodel: unknown family %q", jn.Family)
	}
	for i, jd := range jn.Devices {
		if jd.Name == "" {
			return nil, fmt.Errorf("netmodel: device %d has no name", i)
		}
		dev := n.AddDevice(jd.Name, Role(jd.Role), jd.ASN)
		d := n.Device(dev)
		for _, s := range jd.Loopbacks {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("netmodel: device %s loopback: %w", jd.Name, err)
			}
			d.Loopbacks = append(d.Loopbacks, p)
		}
		for _, s := range jd.Subnets {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("netmodel: device %s subnet: %w", jd.Name, err)
			}
			d.Subnets = append(d.Subnets, p)
		}
	}
	for i, ji := range jn.Ifaces {
		if int(ji.Device) < 0 || int(ji.Device) >= len(n.Devices) {
			return nil, fmt.Errorf("netmodel: iface %d: device %d out of range", i, ji.Device)
		}
		id := n.AddIface(DeviceID(ji.Device), ji.Name)
		ifc := n.Iface(id)
		ifc.External = ji.External
		ifc.Peer = IfaceID(ji.Peer)
		var err error
		if ifc.Addr, err = parsePrefix(ji.Addr); err != nil {
			return nil, fmt.Errorf("netmodel: iface %d addr: %w", i, err)
		}
	}
	// Validate peer symmetry.
	for i, ifc := range n.Ifaces {
		if ifc.Peer == NoIface {
			continue
		}
		if int(ifc.Peer) < 0 || int(ifc.Peer) >= len(n.Ifaces) {
			return nil, fmt.Errorf("netmodel: iface %d: peer %d out of range", i, ifc.Peer)
		}
		if n.Iface(ifc.Peer).Peer != ifc.ID {
			return nil, fmt.Errorf("netmodel: iface %d: asymmetric peer link", i)
		}
	}
	for i, jr := range jn.Rules {
		if int(jr.Device) < 0 || int(jr.Device) >= len(n.Devices) {
			return nil, fmt.Errorf("netmodel: rule %d: device %d out of range", i, jr.Device)
		}
		m, err := fromJSONMatch(jr.Match)
		if err != nil {
			return nil, fmt.Errorf("netmodel: rule %d match: %w", i, err)
		}
		if jr.Table == "acl" {
			// ACL actions are implied by the deny flag.
			id := n.AddACLRule(DeviceID(jr.Device), m, jr.Deny)
			n.Rule(id).Origin = RouteOrigin(jr.Origin)
			continue
		}
		var act Action
		switch jr.Action {
		case "forward":
			act.Kind = ActForward
			if len(jr.Out) == 0 {
				return nil, fmt.Errorf("netmodel: rule %d: forward with no out interfaces", i)
			}
			for _, out := range jr.Out {
				if int(out) < 0 || int(out) >= len(n.Ifaces) {
					return nil, fmt.Errorf("netmodel: rule %d: out iface %d out of range", i, out)
				}
				if n.Iface(IfaceID(out)).Device != DeviceID(jr.Device) {
					return nil, fmt.Errorf("netmodel: rule %d: out iface %d not on device", i, out)
				}
				act.OutIfaces = append(act.OutIfaces, IfaceID(out))
			}
		case "drop":
			act.Kind = ActDrop
		case "deliver":
			act.Kind = ActDeliver
		default:
			return nil, fmt.Errorf("netmodel: rule %d: unknown action %q", i, jr.Action)
		}
		if jr.Transform != nil {
			addr, err := netip.ParseAddr(jr.Transform.Addr)
			if err != nil {
				return nil, fmt.Errorf("netmodel: rule %d transform: %w", i, err)
			}
			act.Transform = &Transform{
				RewriteDst: jr.Transform.RewriteDst,
				RewriteSrc: jr.Transform.RewriteSrc,
				Addr:       addr,
			}
		}
		if jr.Table != "fib" {
			return nil, fmt.Errorf("netmodel: rule %d: unknown table %q", i, jr.Table)
		}
		n.AddFIBRule(DeviceID(jr.Device), m, act, RouteOrigin(jr.Origin))
	}
	n.ComputeMatchSets()
	return n, nil
}
