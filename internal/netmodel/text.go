package netmodel

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"

	"sort"
	"strconv"
	"strings"
	"yardstick/internal/hdr"
)

// This file implements a line-oriented text format for networks, closer
// to the router-dump form operators actually have than the JSON format.
// It is deliberately forgiving: devices may be declared in any order
// before use, interfaces are named, and routes reference neighbors or
// interface names.
//
//	# comments and blank lines are ignored
//	device tor1 role=tor asn=65001
//	device agg1 role=agg asn=65002
//	loopback tor1 172.16.0.1/32
//	link tor1 agg1 10.128.0.0/31        # /31 optional
//	edge tor1 host0 10.1.0.0/24         # host/WAN-facing port
//	subnet tor1 10.1.0.0/24             # hosted subnet (metadata)
//	route tor1 0.0.0.0/0 via agg1 origin=default
//	route tor1 10.1.0.0/24 out host0 origin=internal
//	route agg1 192.0.2.0/24 drop
//	route tor1 172.16.0.9/32 deliver origin=internal
//	acl tor1 deny dst=0.0.0.0/0 proto=6 dport=23
//	acl tor1 permit
//
// Route "via" targets are neighbor device names (all parallel links are
// used, giving ECMP for comma-separated lists); "out" targets are local
// interface names.

// ParseText reads the text format and returns a frozen network. An
// optional `family ipv6` directive (before any link or route) selects
// IPv6; the default is IPv4.
func ParseText(r io.Reader) (*Network, error) {
	n := New()
	sawContent := false
	type pendingRoute struct {
		line    int
		dev     string
		prefix  netip.Prefix
		kind    string // via, out, drop, deliver
		targets []string
		origin  RouteOrigin
	}
	type pendingACL struct {
		line int
		dev  string
		deny bool
		args []string
	}
	var routes []pendingRoute
	var acls []pendingACL
	ifaceByName := make(map[string]IfaceID) // "dev/name"

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("netmodel: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if fields[0] != "family" {
			sawContent = true
		}
		switch fields[0] {
		case "family":
			if sawContent {
				return nil, fail("family must precede all other directives")
			}
			switch {
			case len(fields) == 2 && fields[1] == "ipv6":
				n = NewV6()
			case len(fields) == 2 && fields[1] == "ipv4":
				n = New()
			default:
				return nil, fail("family must be ipv4 or ipv6")
			}

		case "device":
			if len(fields) < 2 {
				return nil, fail("device needs a name")
			}
			name := fields[1]
			role := Role("")
			var asn uint64
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fail("bad attribute %q", kv)
				}
				switch k {
				case "role":
					role = Role(v)
				case "asn":
					var err error
					asn, err = strconv.ParseUint(v, 10, 32)
					if err != nil {
						return nil, fail("bad asn %q", v)
					}
				default:
					return nil, fail("unknown attribute %q", k)
				}
			}
			if _, dup := n.byName[name]; dup {
				return nil, fail("duplicate device %q", name)
			}
			n.AddDevice(name, role, uint32(asn))

		case "loopback", "subnet":
			if len(fields) != 3 {
				return nil, fail("%s needs device and prefix", fields[0])
			}
			d, ok := n.DeviceByName(fields[1])
			if !ok {
				return nil, fail("unknown device %q", fields[1])
			}
			p, err := netip.ParsePrefix(fields[2])
			if err != nil {
				return nil, fail("bad prefix %q", fields[2])
			}
			if fields[0] == "loopback" {
				d.Loopbacks = append(d.Loopbacks, p)
			} else {
				d.Subnets = append(d.Subnets, p)
			}

		case "link":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fail("link needs two devices and an optional /31")
			}
			a, ok := n.DeviceByName(fields[1])
			if !ok {
				return nil, fail("unknown device %q", fields[1])
			}
			b, ok := n.DeviceByName(fields[2])
			if !ok {
				return nil, fail("unknown device %q", fields[2])
			}
			subnet := netip.Prefix{}
			if len(fields) == 4 {
				var err error
				subnet, err = netip.ParsePrefix(fields[3])
				if err != nil {
					return nil, fail("bad link subnet %q", fields[3])
				}
				wantV4 := n.Family() == hdr.V4
				if wantV4 && subnet.Bits() != 31 {
					return nil, fail("IPv4 link subnet %q must be a /31", fields[3])
				}
				if !wantV4 && subnet.Bits() != 126 && subnet.Bits() != 127 {
					return nil, fail("IPv6 link subnet %q must be a /126 or /127", fields[3])
				}
			}
			ia, ib := n.Connect(a.ID, b.ID, subnet)
			ifaceByName[a.Name+"/"+n.Iface(ia).Name] = ia
			ifaceByName[b.Name+"/"+n.Iface(ib).Name] = ib

		case "edge":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fail("edge needs device, port name, optional prefix")
			}
			d, ok := n.DeviceByName(fields[1])
			if !ok {
				return nil, fail("unknown device %q", fields[1])
			}
			addr := netip.Prefix{}
			if len(fields) == 4 {
				var err error
				addr, err = netip.ParsePrefix(fields[3])
				if err != nil {
					return nil, fail("bad prefix %q", fields[3])
				}
			}
			key := d.Name + "/" + fields[2]
			if _, dup := ifaceByName[key]; dup {
				return nil, fail("duplicate interface %q", key)
			}
			ifaceByName[key] = n.AddEdgeIface(d.ID, fields[2], addr)

		case "route":
			if len(fields) < 4 {
				return nil, fail("route needs device, prefix, and an action")
			}
			p, err := netip.ParsePrefix(fields[2])
			if err != nil {
				return nil, fail("bad prefix %q", fields[2])
			}
			pr := pendingRoute{line: lineNo, dev: fields[1], prefix: p, origin: OriginStatic}
			rest := fields[3:]
			switch rest[0] {
			case "via", "out":
				if len(rest) < 2 {
					return nil, fail("route %s needs targets", rest[0])
				}
				pr.kind = rest[0]
				pr.targets = strings.Split(rest[1], ",")
				rest = rest[2:]
			case "drop", "deliver":
				pr.kind = rest[0]
				rest = rest[1:]
			default:
				return nil, fail("unknown route action %q", rest[0])
			}
			for _, kv := range rest {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || k != "origin" {
					return nil, fail("unknown route attribute %q", kv)
				}
				pr.origin = RouteOrigin(v)
			}
			routes = append(routes, pr)

		case "acl":
			if len(fields) < 3 {
				return nil, fail("acl needs device and deny/permit")
			}
			deny := false
			switch fields[2] {
			case "deny":
				deny = true
			case "permit":
			default:
				return nil, fail("acl action %q must be deny or permit", fields[2])
			}
			acls = append(acls, pendingACL{line: lineNo, dev: fields[1], deny: deny, args: fields[3:]})

		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netmodel: %w", err)
	}

	// Resolve ACLs in order (insertion order is match order).
	for _, a := range acls {
		d, ok := n.DeviceByName(a.dev)
		if !ok {
			return nil, fmt.Errorf("netmodel: line %d: unknown device %q", a.line, a.dev)
		}
		m := MatchAll()
		for _, kv := range a.args {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("netmodel: line %d: bad acl field %q", a.line, kv)
			}
			switch k {
			case "dst":
				p, err := netip.ParsePrefix(v)
				if err != nil {
					return nil, fmt.Errorf("netmodel: line %d: bad dst %q", a.line, v)
				}
				m.DstPrefix = p
			case "src":
				p, err := netip.ParsePrefix(v)
				if err != nil {
					return nil, fmt.Errorf("netmodel: line %d: bad src %q", a.line, v)
				}
				m.SrcPrefix = p
			case "proto":
				x, err := strconv.ParseUint(v, 10, 8)
				if err != nil {
					return nil, fmt.Errorf("netmodel: line %d: bad proto %q", a.line, v)
				}
				m.Proto = int32(x)
			case "dport", "sport":
				lo, hi, err := parsePortRange(v)
				if err != nil {
					return nil, fmt.Errorf("netmodel: line %d: bad %s %q", a.line, k, v)
				}
				if k == "dport" {
					m.DstPortLo, m.DstPortHi = lo, hi
				} else {
					m.SrcPortLo, m.SrcPortHi = lo, hi
				}
			default:
				return nil, fmt.Errorf("netmodel: line %d: unknown acl field %q", a.line, k)
			}
		}
		n.AddACLRule(d.ID, m, a.deny)
	}

	// Resolve routes.
	for _, pr := range routes {
		d, ok := n.DeviceByName(pr.dev)
		if !ok {
			return nil, fmt.Errorf("netmodel: line %d: unknown device %q", pr.line, pr.dev)
		}
		var act Action
		switch pr.kind {
		case "drop":
			act = Action{Kind: ActDrop}
		case "deliver":
			act = Action{Kind: ActDeliver}
		case "via":
			act.Kind = ActForward
			for _, t := range pr.targets {
				nb, ok := n.DeviceByName(t)
				if !ok {
					return nil, fmt.Errorf("netmodel: line %d: unknown next hop %q", pr.line, t)
				}
				outs := n.IfaceTo(d.ID, nb.ID)
				if len(outs) == 0 {
					return nil, fmt.Errorf("netmodel: line %d: %s has no link to %s", pr.line, d.Name, nb.Name)
				}
				act.OutIfaces = append(act.OutIfaces, outs...)
			}
		case "out":
			act.Kind = ActForward
			for _, t := range pr.targets {
				ifid, ok := ifaceByName[d.Name+"/"+t]
				if !ok {
					return nil, fmt.Errorf("netmodel: line %d: %s has no interface %q", pr.line, d.Name, t)
				}
				act.OutIfaces = append(act.OutIfaces, ifid)
			}
		}
		n.AddFIBRule(d.ID, MatchDst(pr.prefix), act, pr.origin)
	}

	n.ComputeMatchSets()
	return n, nil
}

func parsePortRange(v string) (uint16, uint16, error) {
	lo, hi, found := strings.Cut(v, "-")
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return 0, 0, err
	}
	if !found {
		return uint16(l), uint16(l), nil
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return 0, 0, err
	}
	return uint16(l), uint16(h), nil
}

// EncodeText writes the network in the text format accepted by
// ParseText. Encode→Parse round trips to a structurally equal network
// (interface names must be unique per device for the round trip to
// resolve "out" routes).
func (n *Network) EncodeText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if n.Family() == hdr.V6 {
		fmt.Fprintln(bw, "family ipv6")
	}
	for _, d := range n.Devices {
		fmt.Fprintf(bw, "device %s role=%s asn=%d\n", d.Name, d.Role, d.ASN)
	}
	for _, d := range n.Devices {
		for _, p := range d.Loopbacks {
			fmt.Fprintf(bw, "loopback %s %s\n", d.Name, p)
		}
		for _, p := range d.Subnets {
			fmt.Fprintf(bw, "subnet %s %s\n", d.Name, p)
		}
	}
	// Links once per pair, in interface order.
	for _, ifc := range n.Ifaces {
		if ifc.Peer != NoIface && ifc.ID < ifc.Peer {
			a := n.Device(ifc.Device).Name
			b := n.Device(n.Iface(ifc.Peer).Device).Name
			if ifc.Addr.IsValid() {
				fmt.Fprintf(bw, "link %s %s %s\n", a, b, netip.PrefixFrom(ifc.Addr.Addr(), ifc.Addr.Bits()).Masked())
			} else {
				fmt.Fprintf(bw, "link %s %s\n", a, b)
			}
		}
		if ifc.Peer == NoIface && ifc.External {
			if ifc.Addr.IsValid() {
				fmt.Fprintf(bw, "edge %s %s %s\n", n.Device(ifc.Device).Name, ifc.Name, ifc.Addr)
			} else {
				fmt.Fprintf(bw, "edge %s %s\n", n.Device(ifc.Device).Name, ifc.Name)
			}
		}
	}
	for _, r := range n.Rules {
		dev := n.Device(r.Device)
		if r.Table == TableACL {
			verb := "permit"
			if r.Deny {
				verb = "deny"
			}
			fmt.Fprintf(bw, "acl %s %s%s\n", dev.Name, verb, matchText(r.Match))
			continue
		}
		switch r.Action.Kind {
		case ActDrop:
			fmt.Fprintf(bw, "route %s %s drop origin=%s\n", dev.Name, r.Match.DstPrefix, r.Origin)
		case ActDeliver:
			fmt.Fprintf(bw, "route %s %s deliver origin=%s\n", dev.Name, r.Match.DstPrefix, r.Origin)
		case ActForward:
			// Prefer "via neighbors" when every out-iface has a peer;
			// fall back to "out" port names.
			allPeered := true
			for _, ifid := range r.Action.OutIfaces {
				if n.Iface(ifid).Peer == NoIface {
					allPeered = false
					break
				}
			}
			if allPeered {
				nbs := map[string]bool{}
				for _, ifid := range r.Action.OutIfaces {
					nbs[n.Device(n.Iface(n.Iface(ifid).Peer).Device).Name] = true
				}
				names := make([]string, 0, len(nbs))
				for nb := range nbs {
					names = append(names, nb)
				}
				sort.Strings(names)
				fmt.Fprintf(bw, "route %s %s via %s origin=%s\n",
					dev.Name, r.Match.DstPrefix, strings.Join(names, ","), r.Origin)
			} else {
				names := make([]string, 0, len(r.Action.OutIfaces))
				for _, ifid := range r.Action.OutIfaces {
					names = append(names, n.Iface(ifid).Name)
				}
				fmt.Fprintf(bw, "route %s %s out %s origin=%s\n",
					dev.Name, r.Match.DstPrefix, strings.Join(names, ","), r.Origin)
			}
		}
	}
	return bw.Flush()
}

func matchText(m Match) string {
	var sb strings.Builder
	if m.DstPrefix.IsValid() {
		fmt.Fprintf(&sb, " dst=%s", m.DstPrefix)
	}
	if m.SrcPrefix.IsValid() {
		fmt.Fprintf(&sb, " src=%s", m.SrcPrefix)
	}
	if m.Proto >= 0 {
		fmt.Fprintf(&sb, " proto=%d", m.Proto)
	}
	if m.DstPortLo != 0 || m.DstPortHi != 65535 {
		if m.DstPortLo == m.DstPortHi {
			fmt.Fprintf(&sb, " dport=%d", m.DstPortLo)
		} else {
			fmt.Fprintf(&sb, " dport=%d-%d", m.DstPortLo, m.DstPortHi)
		}
	}
	if m.SrcPortLo != 0 || m.SrcPortHi != 65535 {
		if m.SrcPortLo == m.SrcPortHi {
			fmt.Fprintf(&sb, " sport=%d", m.SrcPortLo)
		} else {
			fmt.Fprintf(&sb, " sport=%d-%d", m.SrcPortLo, m.SrcPortHi)
		}
	}
	return sb.String()
}
