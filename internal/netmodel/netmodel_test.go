package netmodel

import (
	"math/rand"
	"net/netip"
	"testing"
)

func p(t *testing.T, s string) netip.Prefix {
	t.Helper()
	pf, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func TestAddDeviceAndLookup(t *testing.T) {
	n := New()
	id := n.AddDevice("r1", RoleSpine, 65001)
	d, ok := n.DeviceByName("r1")
	if !ok || d.ID != id || d.Role != RoleSpine || d.ASN != 65001 {
		t.Fatalf("lookup failed: %+v ok=%v", d, ok)
	}
	if _, ok := n.DeviceByName("nope"); ok {
		t.Error("lookup of unknown device succeeded")
	}
}

func TestDuplicateDevicePanics(t *testing.T) {
	n := New()
	n.AddDevice("r1", RoleSpine, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate device name did not panic")
		}
	}()
	n.AddDevice("r1", RoleSpine, 2)
}

func TestConnectAssignsSlash31(t *testing.T) {
	n := New()
	a := n.AddDevice("a", RoleLeaf, 1)
	b := n.AddDevice("b", RoleSpine, 2)
	ia, ib := n.Connect(a, b, p(t, "10.0.0.0/31"))
	if n.Iface(ia).Addr.Addr() != netip.MustParseAddr("10.0.0.0") {
		t.Errorf("a-end addr = %v", n.Iface(ia).Addr)
	}
	if n.Iface(ib).Addr.Addr() != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("b-end addr = %v", n.Iface(ib).Addr)
	}
	if n.Iface(ia).Peer != ib || n.Iface(ib).Peer != ia {
		t.Error("peers not symmetric")
	}
	nbs := n.Neighbors(a)
	if len(nbs) != 1 || nbs[0] != b {
		t.Errorf("Neighbors(a) = %v", nbs)
	}
	if got := n.IfaceTo(a, b); len(got) != 1 || got[0] != ia {
		t.Errorf("IfaceTo(a,b) = %v", got)
	}
	if st := n.Stats(); st.Links != 1 || st.Ifaces != 2 || st.Devices != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestConnectRejectsNonSlash31(t *testing.T) {
	n := New()
	a := n.AddDevice("a", RoleLeaf, 1)
	b := n.AddDevice("b", RoleSpine, 2)
	defer func() {
		if recover() == nil {
			t.Error("/30 subnet did not panic")
		}
	}()
	n.Connect(a, b, p(t, "10.0.0.0/30"))
}

// buildLPMFib installs overlapping prefixes and returns the network.
func buildLPMFib(t *testing.T) (*Network, DeviceID, []RuleID) {
	n := New()
	d := n.AddDevice("r", RoleToR, 1)
	out := n.AddIface(d, "up")
	act := Action{Kind: ActForward, OutIfaces: []IfaceID{out}}
	// Inserted shortest-first on purpose; LPM must reorder.
	rDefault := n.AddFIBRule(d, MatchDst(p(t, "0.0.0.0/0")), act, OriginDefault)
	r8 := n.AddFIBRule(d, MatchDst(p(t, "10.0.0.0/8")), act, OriginInternal)
	r24 := n.AddFIBRule(d, MatchDst(p(t, "10.1.2.0/24")), act, OriginInternal)
	n.ComputeMatchSets()
	return n, d, []RuleID{rDefault, r8, r24}
}

func TestLPMMatchSetsDisjointAndComplete(t *testing.T) {
	n, d, ids := buildLPMFib(t)
	rDefault, r8, r24 := ids[0], ids[1], ids[2]
	sp := n.Space

	// The /24 keeps its full prefix.
	if !n.Rule(r24).MatchSet().Equal(sp.DstPrefix(p(t, "10.1.2.0/24"))) {
		t.Error("/24 match set should be its full prefix")
	}
	// The /8 excludes the /24.
	want8 := sp.DstPrefix(p(t, "10.0.0.0/8")).Diff(sp.DstPrefix(p(t, "10.1.2.0/24")))
	if !n.Rule(r8).MatchSet().Equal(want8) {
		t.Error("/8 match set should exclude the /24")
	}
	// The default excludes the /8 (which subsumes the /24).
	wantDef := sp.Full().Diff(sp.DstPrefix(p(t, "10.0.0.0/8")))
	if !n.Rule(rDefault).MatchSet().Equal(wantDef) {
		t.Error("default match set should exclude 10/8")
	}
	// Disjointness and completeness.
	union := sp.Empty()
	for _, id := range n.DeviceRules(d) {
		ms := n.Rule(id).MatchSet()
		if union.Overlaps(ms) {
			t.Fatalf("rule %d match set overlaps earlier rules", id)
		}
		union = union.Union(ms)
	}
	if !union.IsFull() {
		t.Error("union of match sets should equal union of raw matches (full here)")
	}
}

func TestMatchSetPanicsBeforeCompute(t *testing.T) {
	n := New()
	d := n.AddDevice("r", RoleToR, 1)
	id := n.AddFIBRule(d, MatchDst(p(t, "10.0.0.0/8")), Action{Kind: ActDrop}, OriginStatic)
	defer func() {
		if recover() == nil {
			t.Error("MatchSet before ComputeMatchSets did not panic")
		}
	}()
	n.Rule(id).MatchSet()
}

func TestAddRuleAfterComputePanics(t *testing.T) {
	n := New()
	d := n.AddDevice("r", RoleToR, 1)
	n.ComputeMatchSets()
	defer func() {
		if recover() == nil {
			t.Error("AddFIBRule after ComputeMatchSets did not panic")
		}
	}()
	n.AddFIBRule(d, MatchAll(), Action{Kind: ActDrop}, OriginStatic)
}

func TestACLOrderFirstMatchWins(t *testing.T) {
	n := New()
	d := n.AddDevice("fw", RoleBorder, 1)
	// Deny port 23, then permit everything.
	deny := MatchAll()
	deny.DstPortLo, deny.DstPortHi = 23, 23
	rDeny := n.AddACLRule(d, deny, true)
	rPermit := n.AddACLRule(d, MatchAll(), false)
	n.ComputeMatchSets()

	sp := n.Space
	if !n.Rule(rDeny).MatchSet().Equal(sp.DstPort(23)) {
		t.Error("deny rule should match exactly port 23")
	}
	if n.Rule(rPermit).MatchSet().Overlaps(sp.DstPort(23)) {
		t.Error("permit rule should exclude port 23")
	}
	if !n.Rule(rDeny).Deny || n.Rule(rPermit).Deny {
		t.Error("deny flags wrong")
	}
}

func TestRulesForwardingTo(t *testing.T) {
	n := New()
	d := n.AddDevice("r", RoleSpine, 1)
	up := n.AddIface(d, "up")
	down := n.AddIface(d, "down")
	rUp := n.AddFIBRule(d, MatchDst(p(t, "0.0.0.0/0")), Action{Kind: ActForward, OutIfaces: []IfaceID{up}}, OriginDefault)
	rDown := n.AddFIBRule(d, MatchDst(p(t, "10.0.0.0/8")), Action{Kind: ActForward, OutIfaces: []IfaceID{down}}, OriginInternal)
	rBoth := n.AddFIBRule(d, MatchDst(p(t, "10.1.0.0/16")), Action{Kind: ActForward, OutIfaces: []IfaceID{up, down}}, OriginInternal)
	n.AddFIBRule(d, MatchDst(p(t, "192.168.0.0/16")), Action{Kind: ActDrop}, OriginStatic)
	n.ComputeMatchSets()

	got := n.RulesForwardingTo(up)
	if len(got) != 2 || !containsRule(got, rUp) || !containsRule(got, rBoth) {
		t.Errorf("RulesForwardingTo(up) = %v", got)
	}
	got = n.RulesForwardingTo(down)
	if len(got) != 2 || !containsRule(got, rDown) || !containsRule(got, rBoth) {
		t.Errorf("RulesForwardingTo(down) = %v", got)
	}
}

func containsRule(ids []RuleID, want RuleID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// TestPropertyMatchSetsDisjoint generates random FIBs and checks the §4.1
// invariant: per-table match sets are pairwise disjoint and union to the
// union of raw matches.
func TestPropertyMatchSetsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := New()
		d := n.AddDevice("r", RoleToR, 1)
		out := n.AddIface(d, "o")
		act := Action{Kind: ActForward, OutIfaces: []IfaceID{out}}
		raw := n.Space.Empty()
		nRules := rng.Intn(20) + 2
		for i := 0; i < nRules; i++ {
			bits := rng.Intn(25)
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(4) * 64), byte(rng.Intn(256)), 0, 0})
			pf := netip.PrefixFrom(addr, bits).Masked()
			n.AddFIBRule(d, MatchDst(pf), act, OriginInternal)
			raw = raw.Union(n.Space.DstPrefix(pf))
		}
		n.ComputeMatchSets()
		union := n.Space.Empty()
		for _, id := range n.DeviceRules(d) {
			ms := n.Rule(id).MatchSet()
			if union.Overlaps(ms) {
				t.Fatalf("trial %d: overlap detected", trial)
			}
			union = union.Union(ms)
		}
		if !union.Equal(raw) {
			t.Fatalf("trial %d: union of match sets != union of raw matches", trial)
		}
	}
}

func TestMatchSetFieldCombination(t *testing.T) {
	n := New()
	sp := n.Space
	m := Match{
		DstPrefix: p(t, "10.0.0.0/8"),
		SrcPrefix: p(t, "172.16.0.0/12"),
		Proto:     6,
		DstPortLo: 80, DstPortHi: 80,
		SrcPortLo: 0, SrcPortHi: 65535,
	}
	set := m.Set(sp)
	want := sp.DstPrefix(p(t, "10.0.0.0/8")).
		Intersect(sp.SrcPrefix(p(t, "172.16.0.0/12"))).
		Intersect(sp.Proto(6)).
		Intersect(sp.DstPort(80))
	if !set.Equal(want) {
		t.Error("Match.Set field combination mismatch")
	}
	if !MatchAll().Set(sp).IsFull() {
		t.Error("MatchAll should be the full space")
	}
}

func TestEdgeIface(t *testing.T) {
	n := New()
	d := n.AddDevice("tor", RoleToR, 1)
	e := n.AddEdgeIface(d, "host0", p(t, "10.1.0.0/24"))
	if !n.Iface(e).External {
		t.Error("edge iface not external")
	}
	if n.Iface(e).Peer != NoIface {
		t.Error("edge iface should have no peer")
	}
	if len(n.Neighbors(d)) != 0 {
		t.Error("edge iface should not create neighbors")
	}
}

func TestFIBRuleFor(t *testing.T) {
	n, d, ids := buildLPMFib(t)
	r, ok := n.FIBRuleFor(d, p(t, "10.1.2.0/24"))
	if !ok || r.ID != ids[2] {
		t.Fatalf("FIBRuleFor /24 = %v, %v", r, ok)
	}
	// Unmasked input resolves too.
	r, ok = n.FIBRuleFor(d, p(t, "10.0.0.0/8"))
	if !ok || r.ID != ids[1] {
		t.Fatalf("FIBRuleFor /8 = %v, %v", r, ok)
	}
	if _, ok := n.FIBRuleFor(d, p(t, "192.168.0.0/16")); ok {
		t.Error("missing prefix should not resolve")
	}
}

func TestFIBRuleForPanicsBeforeCompute(t *testing.T) {
	n := New()
	d := n.AddDevice("r", RoleToR, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.FIBRuleFor(d, p(t, "10.0.0.0/8"))
}
