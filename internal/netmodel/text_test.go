package netmodel

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

const sampleText = `
# a small leaf-spine network
device tor1 role=tor asn=65001
device tor2 role=tor asn=65002
device spine1 role=spine asn=65003

loopback spine1 172.16.0.3/32
subnet tor1 10.1.0.0/24
subnet tor2 10.2.0.0/24

link tor1 spine1 10.128.0.0/31
link tor2 spine1 10.128.0.2/31
edge tor1 host0 10.1.0.0/24
edge tor2 host0 10.2.0.0/24

acl spine1 deny dst=0.0.0.0/0 proto=6 dport=23
acl spine1 permit

route tor1 10.1.0.0/24 out host0 origin=internal
route tor1 0.0.0.0/0 via spine1 origin=default
route tor2 10.2.0.0/24 out host0 origin=internal
route tor2 0.0.0.0/0 via spine1 origin=default
route spine1 10.1.0.0/24 via tor1 origin=internal
route spine1 10.2.0.0/24 via tor2 origin=internal
route spine1 172.16.0.3/32 deliver origin=internal
route spine1 192.0.2.0/24 drop origin=static
`

func TestParseText(t *testing.T) {
	n, err := ParseText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Devices != 3 || st.Links != 2 || st.Ifaces != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Rules != 10 { // 8 routes + 2 ACL entries
		t.Fatalf("rules = %d, want 10", st.Rules)
	}
	if !n.MatchSetsComputed() {
		t.Fatal("parsed network should be frozen")
	}

	spine, _ := n.DeviceByName("spine1")
	if spine.Role != RoleSpine || spine.ASN != 65003 {
		t.Errorf("spine metadata: %+v", spine)
	}
	if len(spine.ACL) != 2 || len(spine.FIB) != 4 {
		t.Errorf("spine tables: acl=%d fib=%d", len(spine.ACL), len(spine.FIB))
	}
	if len(spine.Loopbacks) != 1 {
		t.Error("loopback lost")
	}
	// The deny entry matches TCP/23 only.
	deny := n.Rule(spine.ACL[0])
	if !deny.Deny || deny.Match.Proto != 6 || deny.Match.DstPortLo != 23 {
		t.Errorf("deny entry: %+v", deny.Match)
	}

	// "via" resolved to the link interface.
	tor1, _ := n.DeviceByName("tor1")
	def, ok := n.FIBRuleFor(tor1.ID, netip.MustParsePrefix("0.0.0.0/0"))
	if !ok || def.Action.Kind != ActForward {
		t.Fatal("tor1 default missing")
	}
	peer := n.Iface(n.Iface(def.Action.OutIfaces[0]).Peer).Device
	if peer != spine.ID {
		t.Error("default should point at spine1")
	}
	if def.Origin != OriginDefault {
		t.Errorf("origin = %v", def.Origin)
	}
}

func TestTextRoundTrip(t *testing.T) {
	n, err := ParseText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.EncodeText(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if n.Stats() != n2.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", n.Stats(), n2.Stats())
	}
	// Second encode is identical (canonical form).
	var buf2 bytes.Buffer
	if err := n2.EncodeText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("text encoding not canonical")
	}
	// Rule semantics are preserved (match-set sizes per rule).
	for i := range n.Rules {
		if n.Rules[i].MatchSet().Fraction() != n2.Rules[i].MatchSet().Fraction() {
			t.Errorf("rule %d match-set size differs", i)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"unknown directive", "frobnicate x"},
		{"device no name", "device"},
		{"bad attr", "device r bogus"},
		{"unknown attr", "device r color=red"},
		{"bad asn", "device r asn=zz"},
		{"dup device", "device r\ndevice r"},
		{"loopback unknown dev", "loopback r 1.2.3.4/32"},
		{"loopback bad prefix", "device r\nloopback r zz"},
		{"link unknown dev", "device a\nlink a b"},
		{"link bad subnet", "device a\ndevice b\nlink a b 10.0.0.0/30"},
		{"edge unknown dev", "edge r p"},
		{"edge dup", "device r\nedge r p\nedge r p"},
		{"route unknown dev", "route r 0.0.0.0/0 drop"},
		{"route bad prefix", "device r\nroute r zz drop"},
		{"route bad action", "device r\nroute r 0.0.0.0/0 teleport"},
		{"route via missing target", "device r\nroute r 0.0.0.0/0 via"},
		{"route via unknown", "device r\nroute r 0.0.0.0/0 via s"},
		{"route via not adjacent", "device r\ndevice s\nroute r 0.0.0.0/0 via s"},
		{"route out unknown", "device r\nroute r 0.0.0.0/0 out p"},
		{"route bad attr", "device r\nroute r 0.0.0.0/0 drop color=red"},
		{"acl bad action", "device r\nacl r maybe"},
		{"acl bad field", "device r\nacl r deny bogus"},
		{"acl bad proto", "device r\nacl r deny proto=999"},
		{"acl bad port", "device r\nacl r deny dport=zz"},
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParsePortRange(t *testing.T) {
	lo, hi, err := parsePortRange("80")
	if err != nil || lo != 80 || hi != 80 {
		t.Errorf("single port: %d-%d %v", lo, hi, err)
	}
	lo, hi, err = parsePortRange("1000-2000")
	if err != nil || lo != 1000 || hi != 2000 {
		t.Errorf("range: %d-%d %v", lo, hi, err)
	}
	if _, _, err := parsePortRange("a-b"); err == nil {
		t.Error("bad range should error")
	}
}

func TestParseTextECMPVia(t *testing.T) {
	in := `
device tor role=tor
device s1 role=spine
device s2 role=spine
link tor s1
link tor s2
route tor 0.0.0.0/0 via s1,s2 origin=default
`
	n, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tor, _ := n.DeviceByName("tor")
	def, ok := n.FIBRuleFor(tor.ID, netip.MustParsePrefix("0.0.0.0/0"))
	if !ok || len(def.Action.OutIfaces) != 2 {
		t.Fatalf("ECMP via: %+v", def)
	}
}

func TestTextIPv6RoundTrip(t *testing.T) {
	in := `
family ipv6
device a role=tor asn=65001
device b role=spine asn=65002
loopback a fd00:99::1/128
subnet a fd00:1::/64
link a b fd00:ff::/126
edge a host0 fd00:1::/64
route a fd00:1::/64 out host0 origin=internal
route a ::/0 via b origin=default
route b fd00:1::/64 via a origin=internal
`
	n, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n.Family().String() != "ipv6" {
		t.Fatalf("family = %v", n.Family())
	}
	// /126 link ends at ::1/::2.
	for _, ifc := range n.Ifaces {
		if ifc.Peer != NoIface && ifc.Addr.IsValid() {
			low := ifc.Addr.Addr().As16()[15]
			if low != 1 && low != 2 {
				t.Errorf("link end %v", ifc.Addr)
			}
		}
	}
	var buf bytes.Buffer
	if err := n.EncodeText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "family ipv6\n") {
		t.Error("family directive missing")
	}
	n2, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if n2.Stats() != n.Stats() {
		t.Fatalf("stats: %+v vs %+v", n2.Stats(), n.Stats())
	}
}

func TestTextFamilyErrors(t *testing.T) {
	cases := []string{
		"device a\nfamily ipv6", // too late
		"family ipv5",           // unknown
		"family",                // missing
		"family ipv6\nlink a b", // unknown device is separate; fine
	}
	for i, c := range cases[:3] {
		if _, err := ParseText(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// v4 subnet on v6 network.
	bad := "family ipv6\ndevice a\ndevice b\nlink a b 10.0.0.0/31"
	if _, err := ParseText(strings.NewReader(bad)); err == nil {
		t.Error("v4 /31 on v6 network should error")
	}
}
