package netmodel

import (
	"net/netip"

	"yardstick/internal/hdr"
)

// Clone returns an O(size) deep copy of the network over a Clone of its
// header space. Because the cloned space holds the same BDD nodes at the
// same indices (hdr.Space.Clone), every derived set — each rule's raw
// and disjoint match set, the match memo — is carried into the copy by
// node index instead of being re-derived from configuration. A frozen
// network (ComputeMatchSets done) clones into a frozen network whose
// match sets are bit-identical to the original's.
//
// The copy is independent afterwards: mutating either network's rules or
// growing either space is invisible to the other. Budgets and watched
// contexts on the space are not carried (see hdr.Space.Clone); install
// limits on the clone's space if the replica should be bounded.
//
// Cloning a quiescent network only reads it, so several replicas may be
// cloned concurrently as long as nothing mutates the original.
func (n *Network) Clone() *Network {
	cs := n.Space.Clone()
	// Re-point a set derived in n.Space to the cloned space: same node
	// index, same header set (the clone invariant).
	carry := func(s hdr.Set) hdr.Set {
		if s.Space() == nil {
			return s // zero Set (rule not frozen yet)
		}
		return cs.FromNode(s.Node())
	}

	out := &Network{
		Space:         cs,
		Devices:       make([]*Device, len(n.Devices)),
		Ifaces:        make([]*Interface, len(n.Ifaces)),
		Rules:         make([]*Rule, len(n.Rules)),
		byName:        make(map[string]DeviceID, len(n.byName)),
		matchSetsDone: n.matchSetsDone,
	}
	for name, id := range n.byName {
		out.byName[name] = id
	}
	for i, d := range n.Devices {
		nd := *d
		nd.Ifaces = append([]IfaceID(nil), d.Ifaces...)
		nd.Loopbacks = append([]netip.Prefix(nil), d.Loopbacks...)
		nd.Subnets = append([]netip.Prefix(nil), d.Subnets...)
		nd.ACL = append([]RuleID(nil), d.ACL...)
		nd.FIB = append([]RuleID(nil), d.FIB...)
		out.Devices[i] = &nd
	}
	for i, ifc := range n.Ifaces {
		ni := *ifc
		out.Ifaces[i] = &ni
	}
	for i, r := range n.Rules {
		nr := *r
		nr.Action.OutIfaces = append([]IfaceID(nil), r.Action.OutIfaces...)
		if r.Action.Transform != nil {
			tr := *r.Action.Transform
			nr.Action.Transform = &tr
		}
		nr.raw = carry(r.raw)
		nr.match = carry(r.match)
		out.Rules[i] = &nr
	}
	if n.fibIndex != nil {
		out.fibIndex = make(map[fibKey]RuleID, len(n.fibIndex))
		for k, v := range n.fibIndex {
			out.fibIndex[k] = v
		}
	}
	if n.matchMemo != nil {
		out.matchMemo = make(map[Match]hdr.Set, len(n.matchMemo))
		for k, v := range n.matchMemo {
			out.matchMemo[k] = carry(v)
		}
	}
	return out
}
