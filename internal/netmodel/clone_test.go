package netmodel

import (
	"testing"

	"yardstick/internal/bdd"
	"yardstick/internal/hdr"
)

// TestCloneCarriesMatchSets: a frozen network clones into a frozen
// network whose match sets sit at the same node indices — carried by
// index, not re-derived.
func TestCloneCarriesMatchSets(t *testing.T) {
	n, dev, rules := buildLPMFib(t)
	n.AddDevice("extra", RoleAgg, 7) // exercise byName copy
	c := n.Clone()

	if !c.MatchSetsComputed() {
		t.Fatal("clone lost matchSetsDone")
	}
	if c.Space == n.Space || c.Space.Manager() == n.Space.Manager() {
		t.Fatal("clone shares the original's space")
	}
	if c.Stats() != n.Stats() {
		t.Fatalf("clone stats %+v != original %+v", c.Stats(), n.Stats())
	}
	opsBefore := c.Space.EngineStats().Ops
	for _, id := range rules {
		want := n.Rules[id].MatchSet()
		got := c.Rules[id].MatchSet()
		if got.Space() != c.Space {
			t.Fatalf("rule %d match set not re-pointed to the clone's space", id)
		}
		if got.Node() != want.Node() {
			t.Fatalf("rule %d match set at node %d in clone, %d in original", id, got.Node(), want.Node())
		}
	}
	if ops := c.Space.EngineStats().Ops - opsBefore; ops != 0 {
		t.Fatalf("reading carried match sets charged %d ops (re-derived?)", ops)
	}
	// The FIB index resolves in the clone.
	r, ok := c.FIBRuleFor(dev, p(t, "10.0.0.0/8"))
	if !ok || r.ID != rules[1] {
		t.Fatalf("clone FIBRuleFor = %v, %v", r, ok)
	}
	if _, ok := c.DeviceByName("extra"); !ok {
		t.Fatal("clone lost device name index")
	}
}

// TestCloneIndependentState: structural and symbolic mutations on either
// side stay invisible to the other.
func TestCloneIndependentState(t *testing.T) {
	n, dev, rules := buildLPMFib(t)
	c := n.Clone()

	// Mutate clone structures: device tables, interface wiring, actions.
	c.Devices[dev].FIB = c.Devices[dev].FIB[:1]
	c.Ifaces[0].Name = "renamed"
	c.Rules[rules[0]].Action.OutIfaces[0] = 99
	if len(n.Devices[dev].FIB) != len(rules) {
		t.Fatal("truncating clone FIB truncated original")
	}
	if n.Ifaces[0].Name == "renamed" {
		t.Fatal("renaming clone iface renamed original")
	}
	if n.Rules[rules[0]].Action.OutIfaces[0] == 99 {
		t.Fatal("clone action slice aliases original")
	}

	// Symbolic growth in the clone must not grow the canonical space.
	sizeBefore := n.Space.EngineStats().Nodes
	set := c.Rules[rules[1]].MatchSet()
	for i := 0; i < 8; i++ {
		set = set.Negate().Union(c.Space.Proto(uint8(i)))
	}
	if got := n.Space.EngineStats().Nodes; got != sizeBefore {
		t.Fatalf("clone ops grew canonical space %d -> %d nodes", sizeBefore, got)
	}

	// Budget state is not carried: a poisoned original clones clean.
	n.Space.SetLimits(bdd.Limits{MaxNodes: 1})
	c2 := n.Clone()
	if err := bdd.Guard(func() { c2.Rules[rules[2]].MatchSet().Negate() }); err != nil {
		t.Fatalf("clone of limited network inherited budget: %v", err)
	}
}

// TestCloneUnfrozenNetwork: cloning before ComputeMatchSets yields an
// unfrozen copy that can be frozen independently.
func TestCloneUnfrozenNetwork(t *testing.T) {
	n := New()
	d := n.AddDevice("r", RoleToR, 1)
	out := n.AddIface(d, "up")
	act := Action{Kind: ActForward, OutIfaces: []IfaceID{out}}
	n.AddFIBRule(d, MatchDst(p(t, "0.0.0.0/0")), act, OriginDefault)

	c := n.Clone()
	if c.MatchSetsComputed() {
		t.Fatal("unfrozen network cloned frozen")
	}
	rid := c.AddFIBRule(d, MatchDst(p(t, "10.0.0.0/8")), act, OriginInternal)
	c.ComputeMatchSets()
	if !c.Rules[rid].MatchSet().Equal(c.Space.DstPrefix(p(t, "10.0.0.0/8"))) {
		t.Fatal("clone-added rule has wrong match set")
	}
	if n.MatchSetsComputed() || len(n.Rules) != 1 {
		t.Fatal("freezing the clone leaked into the original")
	}
}

// TestCloneTransferSession: moving several sets between a clone pair via
// one hdr.Transfer lands them on the original indices (shared prefix).
func TestCloneTransferSession(t *testing.T) {
	n, _, rules := buildLPMFib(t)
	c := n.Clone()
	// Grow the clone so the transfer has fresh material too.
	fresh := c.Rules[rules[2]].MatchSet().Union(c.Space.DstPort(443))

	tr := hdr.NewTransfer(c.Space, n.Space)
	for _, id := range rules {
		moved := tr.Move(c.Rules[id].MatchSet())
		if moved.Node() != n.Rules[id].MatchSet().Node() {
			t.Fatalf("rule %d moved to node %d, want %d", id, moved.Node(), n.Rules[id].MatchSet().Node())
		}
	}
	movedFresh := tr.Move(fresh)
	want := n.Rules[rules[2]].MatchSet().Union(n.Space.DstPort(443))
	if !movedFresh.Equal(want) {
		t.Fatal("fresh set transferred incorrectly")
	}
}
