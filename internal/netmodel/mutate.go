package netmodel

import (
	"fmt"
	"net/netip"
	"sort"

	"yardstick/internal/hdr"
)

// This file implements incremental mutation of a frozen network: the
// rule-level deltas of internal/delta (PATCH /network) bottom out here.
// A Mutation batches rule removals, modifications, and additions against
// the *current* rule universe and Commit applies them atomically:
//
//   - Rule IDs compact on removal (every higher ID shifts down) and
//     additions append at the end, so EncodeJSON/DecodeJSON of the
//     mutated network round-trips with identical IDs — the network stays
//     a fixed point of its own JSON encoding, which is what keeps
//     fingerprints well-defined and replicas rebuildable at any time.
//     Commit reports the old→new correspondence in MutationResult.Remap.
//
//   - Only the tables of touched devices (those owning a removed,
//     modified, or added rule) are re-derived. Untouched rules keep
//     their existing raw and disjoint match sets verbatim — zero BDD
//     work — which is sound because a table's claimed-union walk only
//     ever reads rules of the same device, and the Match→set memo
//     (matchSet) is keyed by pure match values, never by rule identity.
//
//   - Commit is copy-on-write: it stages a complete new rule universe
//     (fresh Rule structs; untouched ones share their hdr.Set values)
//     and performs all BDD recomputation against the staged copy before
//     publishing anything. A budget trip or watched-context cancellation
//     panic mid-derivation unwinds leaving the network exactly as it
//     was (the match memo may have grown — it is a pure value cache, so
//     extra entries are harmless). The publish step itself is pure
//     pointer and slice assignment and cannot panic.
type Mutation struct {
	n        *Network
	removed  map[RuleID]bool
	modified map[RuleID]RuleDef
	added    []RuleDef
	done     bool
}

// NoRule marks "no rule" in remap tables: the image of a removed rule.
const NoRule RuleID = -1

// MutationResult reports what Commit did.
type MutationResult struct {
	// Remap maps every pre-mutation rule ID to its post-mutation ID,
	// NoRule for removed rules. len(Remap) is the old rule count.
	Remap []RuleID
	// Added holds the new IDs of added rules, in Add-call order.
	Added []RuleID
	// Touched lists the devices whose tables were re-derived, ascending.
	Touched []DeviceID
}

// BeginMutation starts a batch of rule-level changes against a frozen
// network (ComputeMatchSets must have run — mutation exists precisely to
// avoid re-freezing from scratch).
func (n *Network) BeginMutation() *Mutation {
	if !n.matchSetsDone {
		panic("netmodel: BeginMutation before ComputeMatchSets")
	}
	return &Mutation{
		n:        n,
		removed:  make(map[RuleID]bool),
		modified: make(map[RuleID]RuleDef),
	}
}

func (m *Mutation) checkOpen() error {
	if m.done {
		return fmt.Errorf("netmodel: mutation already committed")
	}
	return nil
}

func (m *Mutation) checkTarget(id RuleID) error {
	if int(id) < 0 || int(id) >= len(m.n.Rules) {
		return fmt.Errorf("netmodel: rule %d out of range", id)
	}
	if m.removed[id] {
		return fmt.Errorf("netmodel: rule %d already removed in this mutation", id)
	}
	if _, mod := m.modified[id]; mod {
		return fmt.Errorf("netmodel: rule %d already modified in this mutation", id)
	}
	return nil
}

// validateDef checks a rule definition against the network's topology.
func (n *Network) validateDef(def RuleDef) error {
	if int(def.Device) < 0 || int(def.Device) >= len(n.Devices) {
		return fmt.Errorf("device %d out of range", def.Device)
	}
	if def.Table != TableACL && def.Table != TableFIB {
		return fmt.Errorf("unknown table %d", def.Table)
	}
	if def.Table == TableFIB && def.Action.Kind == ActForward {
		if len(def.Action.OutIfaces) == 0 {
			return fmt.Errorf("forward with no out interfaces")
		}
		for _, out := range def.Action.OutIfaces {
			if int(out) < 0 || int(out) >= len(n.Ifaces) {
				return fmt.Errorf("out iface %d out of range", out)
			}
			if n.Ifaces[out].Device != def.Device {
				return fmt.Errorf("out iface %d not on device %d", out, def.Device)
			}
		}
	}
	return nil
}

// Remove schedules a rule for removal. The rule's ID refers to the
// pre-mutation universe; higher IDs compact down on Commit.
func (m *Mutation) Remove(id RuleID) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkTarget(id); err != nil {
		return err
	}
	m.removed[id] = true
	return nil
}

// Modify schedules an in-place redefinition of a rule: match, action,
// origin, and deny flag are replaced; the rule keeps its device, table,
// and position (ID compaction aside). Moving a rule between devices or
// tables is a Remove plus an Add.
func (m *Mutation) Modify(id RuleID, def RuleDef) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkTarget(id); err != nil {
		return err
	}
	old := m.n.Rules[id]
	if def.Device != old.Device {
		return fmt.Errorf("netmodel: modify rule %d: device %d does not match rule's device %d", id, def.Device, old.Device)
	}
	if def.Table != old.Table {
		return fmt.Errorf("netmodel: modify rule %d: table change not allowed (remove and add instead)", id)
	}
	if err := m.n.validateDef(def); err != nil {
		return fmt.Errorf("netmodel: modify rule %d: %w", id, err)
	}
	m.modified[id] = def
	return nil
}

// Add schedules a new rule. It is appended to its device's table: ACL
// entries evaluate after the device's existing entries; FIB entries slot
// into longest-prefix-match order as usual.
func (m *Mutation) Add(def RuleDef) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.n.validateDef(def); err != nil {
		return fmt.Errorf("netmodel: add rule: %w", err)
	}
	m.added = append(m.added, def)
	return nil
}

// Pending reports the batch size: removed, modified, added.
func (m *Mutation) Pending() (removed, modified, added int) {
	return len(m.removed), len(m.modified), len(m.added)
}

// Commit applies the batch atomically. On return the network is frozen
// again with every rule's disjoint match set valid. If the symbolic
// derivation panics (budget trip, watched-context cancellation), the
// panic propagates and the network is untouched; the mutation may not be
// reused either way.
func (m *Mutation) Commit() (MutationResult, error) {
	if err := m.checkOpen(); err != nil {
		return MutationResult{}, err
	}
	m.done = true
	n := m.n

	// Devices whose tables need re-deriving.
	touched := make(map[DeviceID]bool)
	for id := range m.removed {
		touched[n.Rules[id].Device] = true
	}
	for id := range m.modified {
		touched[n.Rules[id].Device] = true
	}
	for _, def := range m.added {
		touched[def.Device] = true
	}

	// Stage the new rule universe: survivors compact in ID order,
	// additions append. Every staged rule is a fresh struct, so nothing
	// below mutates the live network.
	remap := make([]RuleID, len(n.Rules))
	newRules := make([]*Rule, 0, len(n.Rules)-len(m.removed)+len(m.added))
	for _, r := range n.Rules {
		if m.removed[r.ID] {
			remap[r.ID] = NoRule
			continue
		}
		nr := *r
		nr.ID = RuleID(len(newRules))
		if def, ok := m.modified[r.ID]; ok {
			nr.Match = def.Match
			nr.Action = def.Action
			nr.Origin = def.Origin
			nr.Deny = def.Deny
		}
		if touched[nr.Device] {
			nr.matchOK = false
			nr.raw, nr.match = hdr.Set{}, hdr.Set{}
		}
		remap[r.ID] = nr.ID
		newRules = append(newRules, &nr)
	}
	addedIDs := make([]RuleID, 0, len(m.added))
	for _, def := range m.added {
		id := RuleID(len(newRules))
		newRules = append(newRules, &Rule{
			ID:     id,
			Device: def.Device,
			Table:  def.Table,
			Match:  def.Match,
			Action: def.Action,
			Origin: def.Origin,
			Deny:   def.Deny,
		})
		addedIDs = append(addedIDs, id)
	}

	// Stage per-device table orders: surviving rules keep their relative
	// order (compaction preserves it), additions go at the end, and
	// touched FIBs re-sort with the ComputeMatchSets comparator. For
	// untouched devices the remapped order is exactly the old one.
	newACL := make([][]RuleID, len(n.Devices))
	newFIB := make([][]RuleID, len(n.Devices))
	for di, d := range n.Devices {
		for _, id := range d.ACL {
			if nid := remap[id]; nid != NoRule {
				newACL[di] = append(newACL[di], nid)
			}
		}
		for _, id := range d.FIB {
			if nid := remap[id]; nid != NoRule {
				newFIB[di] = append(newFIB[di], nid)
			}
		}
	}
	for i, def := range m.added {
		if def.Table == TableACL {
			newACL[def.Device] = append(newACL[def.Device], addedIDs[i])
		} else {
			newFIB[def.Device] = append(newFIB[def.Device], addedIDs[i])
		}
	}
	for dev := range touched {
		fib := newFIB[dev]
		sort.SliceStable(fib, func(i, j int) bool {
			pi := newRules[fib[i]].Match.DstPrefix
			pj := newRules[fib[j]].Match.DstPrefix
			bi, bj := prefixLen(pi), prefixLen(pj)
			if bi != bj {
				return bi > bj
			}
			return fib[i] < fib[j]
		})
	}

	// All BDD work happens here, against the staged copy. A panic
	// unwinds with the live network untouched.
	touchedList := make([]DeviceID, 0, len(touched))
	for dev := range touched {
		touchedList = append(touchedList, dev)
	}
	sort.Slice(touchedList, func(i, j int) bool { return touchedList[i] < touchedList[j] })
	for _, dev := range touchedList {
		n.computeTableStaged(newRules, newACL[dev])
		n.computeTableStaged(newRules, newFIB[dev])
	}

	// Rebuild the FIB index over the new universe (pure map work).
	newFibIndex := make(map[fibKey]RuleID, len(newRules))
	for _, r := range newRules {
		if r.Table == TableFIB && r.Match.DstPrefix.IsValid() {
			newFibIndex[fibKey{r.Device, r.Match.DstPrefix.Masked()}] = r.ID
		}
	}

	// Publish: assignments only, no panic sources.
	for di, d := range n.Devices {
		d.ACL = newACL[di]
		d.FIB = newFIB[di]
	}
	n.Rules = newRules
	n.fibIndex = newFibIndex

	return MutationResult{Remap: remap, Added: addedIDs, Touched: touchedList}, nil
}

// computeTableStaged is computeTable against a staged rule slice: same
// claimed-union walk and the same Match→set memo, but reads and writes
// only the staged copies.
func (n *Network) computeTableStaged(rules []*Rule, order []RuleID) {
	claimed := n.Space.Empty()
	for i, id := range order {
		r := rules[id]
		r.raw = n.matchSet(r.Match)
		if i == 0 {
			r.match = r.raw
		} else {
			r.match = r.raw.Diff(claimed)
		}
		r.matchOK = true
		claimed = claimed.Union(r.raw)
	}
}

// CloneTopology returns an unfrozen copy of the network's topology —
// devices, interfaces, loopbacks, and subnets, with identical IDs — in a
// fresh BDD space, with no rules. It is how control-plane replays
// (internal/bgp flap schedules) rebuild candidate forwarding state for
// the same physical network without disturbing the live one.
func (n *Network) CloneTopology() *Network {
	out := NewFamily(n.Family())
	for _, d := range n.Devices {
		id := out.AddDevice(d.Name, d.Role, d.ASN)
		nd := out.Devices[id]
		nd.Loopbacks = append([]netip.Prefix(nil), d.Loopbacks...)
		nd.Subnets = append([]netip.Prefix(nil), d.Subnets...)
	}
	for _, ifc := range n.Ifaces {
		id := out.AddIface(ifc.Device, ifc.Name)
		ni := out.Ifaces[id]
		ni.Addr = ifc.Addr
		ni.Peer = ifc.Peer
		ni.External = ifc.External
	}
	return out
}

// addDef installs a parsed rule definition on an unfrozen network
// (DecodeJSON's rule loop).
func (n *Network) addDef(def RuleDef) RuleID {
	if def.Table == TableACL {
		id := n.AddACLRule(def.Device, def.Match, def.Deny)
		n.Rules[id].Origin = def.Origin
		return id
	}
	return n.AddFIBRule(def.Device, def.Match, def.Action, def.Origin)
}
