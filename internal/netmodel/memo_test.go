package netmodel

import (
	"testing"
)

// TestMatchSetMemoized: identical Match values across devices must hit
// the per-network memo, deriving the BDD once and sharing the node.
func TestMatchSetMemoized(t *testing.T) {
	n := New()
	mt := MatchDst(p(t, "10.0.0.0/8"))
	var rules []RuleID
	for _, name := range []string{"a", "b", "c"} {
		d := n.AddDevice(name, RoleToR, 1)
		rules = append(rules, n.AddFIBRule(d, mt, Action{Kind: ActDrop}, OriginStatic))
	}
	n.ComputeMatchSets()

	if got := len(n.matchMemo); got != 1 {
		t.Errorf("matchMemo has %d entries, want 1 (identical matches)", got)
	}
	// Same memoized derivation → same canonical node, not just Equal.
	first := n.Rule(rules[0]).raw.Node()
	for _, id := range rules[1:] {
		if got := n.Rule(id).raw.Node(); got != first {
			t.Errorf("rule %d raw node %d, want shared node %d", id, got, first)
		}
	}
	// Each device has one rule, so its effective match is the raw set
	// verbatim (first-rule Diff skip).
	for _, id := range rules {
		if !n.Rule(id).MatchSet().Equal(n.Rule(id).raw) {
			t.Errorf("rule %d: single-rule table should keep raw match", id)
		}
	}
}

// TestMatchSetMemoDistinct: different matches stay distinct entries.
func TestMatchSetMemoDistinct(t *testing.T) {
	n := New()
	d := n.AddDevice("r", RoleToR, 1)
	n.AddFIBRule(d, MatchDst(p(t, "10.0.0.0/8")), Action{Kind: ActDrop}, OriginStatic)
	n.AddFIBRule(d, MatchDst(p(t, "10.1.0.0/16")), Action{Kind: ActDrop}, OriginStatic)
	n.AddFIBRule(d, MatchDst(p(t, "10.0.0.0/8")), Action{Kind: ActDrop}, OriginStatic)
	n.ComputeMatchSets()
	if got := len(n.matchMemo); got != 2 {
		t.Errorf("matchMemo has %d entries, want 2", got)
	}
}
