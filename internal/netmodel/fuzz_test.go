package netmodel

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two ingestion parsers: arbitrary input must never
// panic — it either parses into a consistent network or returns an error.
// The seeds double as regression inputs on plain `go test` runs.

func FuzzParseText(f *testing.F) {
	f.Add(sampleText)
	f.Add("family ipv6\ndevice a role=tor\n")
	f.Add("device a\ndevice b\nlink a b 10.0.0.0/31\nroute a 0.0.0.0/0 via b\n")
	f.Add("acl a deny dst=10.0.0.0/8 proto=6 dport=1-9\n")
	f.Add("# comment\n\nroute x 0.0.0.0/0 drop\n")
	f.Add("device a\nedge a p 10.0.0.0/24\nroute a 10.0.0.0/24 out p\n")
	f.Fuzz(func(t *testing.T, in string) {
		n, err := ParseText(strings.NewReader(in))
		if err != nil {
			return
		}
		// A parsed network is internally consistent.
		if !n.MatchSetsComputed() {
			t.Fatal("parsed network not frozen")
		}
		for _, r := range n.Rules {
			_ = r.MatchSet() // must not panic
		}
		// And re-encodable.
		var buf bytes.Buffer
		if err := n.EncodeText(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

func FuzzDecodeJSON(f *testing.F) {
	var seed bytes.Buffer
	buildRich(f).EncodeJSON(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte(`{"devices":[{"name":"r","role":"tor"}],"ifaces":[],"rules":[]}`))
	f.Add([]byte(`{"family":"ipv6","devices":[],"ifaces":[],"rules":[]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, in []byte) {
		n, err := DecodeJSON(bytes.NewReader(in))
		if err != nil {
			return
		}
		for _, r := range n.Rules {
			_ = r.MatchSet()
		}
		var buf bytes.Buffer
		if err := n.EncodeJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
