package netmodel

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"

	"yardstick/internal/bdd"
)

// buildMutable builds a two-device network with overlapping FIBs and an
// ACL, frozen and ready for mutation.
func buildMutable(t *testing.T) (*Network, DeviceID, DeviceID) {
	t.Helper()
	n := New()
	a := n.AddDevice("a", RoleToR, 1)
	b := n.AddDevice("b", RoleSpine, 2)
	aOut := n.AddIface(a, "up")
	bOut := n.AddIface(b, "up")
	aFwd := Action{Kind: ActForward, OutIfaces: []IfaceID{aOut}}
	bFwd := Action{Kind: ActForward, OutIfaces: []IfaceID{bOut}}
	n.AddFIBRule(a, MatchDst(p(t, "0.0.0.0/0")), aFwd, OriginDefault)
	n.AddFIBRule(a, MatchDst(p(t, "10.0.0.0/8")), aFwd, OriginInternal)
	n.AddFIBRule(a, MatchDst(p(t, "10.1.0.0/16")), aFwd, OriginInternal)
	n.AddACLRule(a, MatchDst(p(t, "192.168.0.0/16")), true)
	n.AddFIBRule(b, MatchDst(p(t, "0.0.0.0/0")), bFwd, OriginDefault)
	n.AddFIBRule(b, MatchDst(p(t, "172.16.0.0/12")), bFwd, OriginStatic)
	n.ComputeMatchSets()
	return n, a, b
}

func encodeNet(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rebuildJSON rebuilds the network from scratch in a fresh space via its
// own JSON encoding — the from-scratch baseline every mutation must be
// equivalent to.
func rebuildJSON(t *testing.T, n *Network) *Network {
	t.Helper()
	rb, err := DecodeJSON(bytes.NewReader(encodeNet(t, n)))
	if err != nil {
		t.Fatal(err)
	}
	rb.ComputeMatchSets()
	return rb
}

// assertRebuildEquivalent checks the incremental network against its
// from-scratch rebuild: identical JSON (IDs are a fixed point of the
// encoding) and bit-identical per-rule match sets across spaces.
func assertRebuildEquivalent(t *testing.T, live *Network) {
	t.Helper()
	rb := rebuildJSON(t, live)
	if !bytes.Equal(encodeNet(t, live), encodeNet(t, rb)) {
		t.Fatal("JSON round-trip of mutated network is not a fixed point")
	}
	if len(rb.Rules) != len(live.Rules) {
		t.Fatalf("rebuild has %d rules, live %d", len(rb.Rules), len(live.Rules))
	}
	for _, r := range live.Rules {
		want := rb.Rule(r.ID).MatchSet().TransferTo(live.Space)
		if !r.MatchSet().Equal(want) {
			t.Fatalf("rule %d (dev %d): incremental match set differs from rebuild", r.ID, r.Device)
		}
	}
}

func TestMutationRemoveCompactsIDs(t *testing.T) {
	n, a, _ := buildMutable(t)
	before := len(n.Rules)
	mut := n.BeginMutation()
	if err := mut.Remove(1); err != nil {
		t.Fatal(err)
	}
	res, err := mut.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Rules) != before-1 {
		t.Fatalf("rules = %d, want %d", len(n.Rules), before-1)
	}
	if res.Remap[1] != NoRule {
		t.Errorf("removed rule remap = %d, want NoRule", res.Remap[1])
	}
	if res.Remap[0] != 0 || res.Remap[2] != 1 || res.Remap[before-1] != RuleID(before-2) {
		t.Errorf("compaction remap wrong: %v", res.Remap)
	}
	for i, r := range n.Rules {
		if r.ID != RuleID(i) {
			t.Fatalf("rule at index %d has ID %d", i, r.ID)
		}
	}
	if len(res.Touched) != 1 || res.Touched[0] != a {
		t.Errorf("touched = %v, want [%d]", res.Touched, a)
	}
	assertRebuildEquivalent(t, n)
}

func TestMutationAddAndModify(t *testing.T) {
	n, a, b := buildMutable(t)
	mut := n.BeginMutation()
	// Narrow the 10/8 route (rule 1) and add a more-specific on b.
	def := RuleDef{
		Device: a, Table: TableFIB,
		Match:  MatchDst(p(t, "10.0.0.0/9")),
		Action: n.Rule(1).Action,
		Origin: OriginStatic,
	}
	if err := mut.Modify(1, def); err != nil {
		t.Fatal(err)
	}
	add := RuleDef{
		Device: b, Table: TableFIB,
		Match:  MatchDst(p(t, "172.16.5.0/24")),
		Action: n.Rule(4).Action,
		Origin: OriginInternal,
	}
	if err := mut.Add(add); err != nil {
		t.Fatal(err)
	}
	rm, md, ad := mut.Pending()
	if rm != 0 || md != 1 || ad != 1 {
		t.Fatalf("Pending = %d,%d,%d", rm, md, ad)
	}
	res, err := mut.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 {
		t.Fatalf("Added = %v", res.Added)
	}
	nr := n.Rule(res.Added[0])
	if nr.Device != b || nr.Match.DstPrefix != p(t, "172.16.5.0/24") {
		t.Errorf("added rule wrong: %+v", nr)
	}
	if n.Rule(1).Origin != OriginStatic || n.Rule(1).Match.DstPrefix != p(t, "10.0.0.0/9") {
		t.Errorf("modified rule wrong: %+v", n.Rule(1))
	}
	// The new /24 must have claimed its packets from b's /12.
	sp := n.Space
	if n.Rule(4).ID != 4 {
		t.Fatalf("unexpected compaction: %v", n.Rule(4))
	}
	if n.Rule(5).MatchSet().Overlaps(nr.MatchSet()) {
		t.Error("b's /12 still overlaps the added /24")
	}
	if !nr.MatchSet().Equal(sp.DstPrefix(p(t, "172.16.5.0/24"))) {
		t.Error("added /24 should keep its full prefix (most specific)")
	}
	assertRebuildEquivalent(t, n)
}

func TestMutationUntouchedDeviceKeepsSets(t *testing.T) {
	n, a, b := buildMutable(t)
	// b's rules are untouched by a mutation on a: their set values must
	// survive verbatim (same BDD nodes, not merely equal sets).
	bRules := n.DeviceRules(b)
	type pair struct{ raw, match bdd.Node }
	before := make(map[RuleID]pair)
	for _, id := range bRules {
		r := n.Rule(id)
		before[id] = pair{raw: r.raw.Node(), match: r.match.Node()}
	}
	mut := n.BeginMutation()
	if err := mut.Remove(0); err != nil {
		t.Fatal(err)
	}
	res, err := mut.Commit()
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range res.Touched {
		if dev == b {
			t.Fatal("b should not be touched")
		}
	}
	for old, want := range before {
		nr := n.Rule(res.Remap[old])
		if nr.raw.Node() != want.raw || nr.match.Node() != want.match {
			t.Fatalf("untouched rule %d: set nodes changed", old)
		}
	}
	_ = a
}

func TestMutationValidation(t *testing.T) {
	n, a, b := buildMutable(t)
	fwd := n.Rule(0).Action
	mut := n.BeginMutation()
	if err := mut.Remove(RuleID(len(n.Rules))); err == nil {
		t.Error("out-of-range remove accepted")
	}
	if err := mut.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := mut.Remove(0); err == nil {
		t.Error("double remove accepted")
	}
	if err := mut.Modify(0, RuleDef{Device: a, Table: TableFIB, Match: MatchAll(), Action: fwd}); err == nil {
		t.Error("modify of removed rule accepted")
	}
	if err := mut.Modify(1, RuleDef{Device: b, Table: TableFIB, Match: MatchAll(), Action: fwd}); err == nil {
		t.Error("cross-device modify accepted")
	}
	if err := mut.Modify(1, RuleDef{Device: a, Table: TableACL, Match: MatchAll()}); err == nil {
		t.Error("table-change modify accepted")
	}
	if err := mut.Add(RuleDef{Device: DeviceID(99), Table: TableFIB, Match: MatchAll(), Action: fwd}); err == nil {
		t.Error("out-of-range device add accepted")
	}
	if err := mut.Add(RuleDef{Device: b, Table: TableFIB, Match: MatchAll(), Action: Action{Kind: ActForward}}); err == nil {
		t.Error("forward with no out ifaces accepted")
	}
	if err := mut.Add(RuleDef{Device: b, Table: TableFIB, Match: MatchAll(), Action: fwd}); err == nil {
		t.Error("foreign out iface accepted")
	}
	if _, err := mut.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := mut.Remove(0); err == nil {
		t.Error("mutation reusable after commit")
	}
	if _, err := mut.Commit(); err == nil {
		t.Error("double commit accepted")
	}
}

func TestBeginMutationBeforeComputePanics(t *testing.T) {
	n := New()
	n.AddDevice("r", RoleToR, 1)
	defer func() {
		if recover() == nil {
			t.Error("BeginMutation before ComputeMatchSets did not panic")
		}
	}()
	n.BeginMutation()
}

// TestMutationCommitAtomicOnBudgetTrip drives Commit into a BDD budget
// trip and checks the network is untouched: same JSON, every rule still
// frozen with its old sets.
func TestMutationCommitAtomicOnBudgetTrip(t *testing.T) {
	n, a, _ := buildMutable(t)
	before := encodeNet(t, n)
	fwd := n.Rule(0).Action
	mut := n.BeginMutation()
	// New matches the memo has never seen force fresh symbolic work.
	for i := 0; i < 8; i++ {
		if err := mut.Add(RuleDef{
			Device: a, Table: TableFIB,
			Match:  MatchDst(p(t, "10.9.0.0/16")),
			Action: fwd, Origin: OriginStatic,
		}); err != nil {
			t.Fatal(err)
		}
	}
	n.Space.SetLimits(bdd.Limits{MaxOps: 1})
	gerr := bdd.Guard(func() { mut.Commit() })
	n.Space.SetLimits(bdd.Limits{})
	if gerr == nil {
		t.Skip("budget did not trip (all work memoized)")
	}
	if !bytes.Equal(before, encodeNet(t, n)) {
		t.Fatal("network changed despite aborted commit")
	}
	for _, r := range n.Rules {
		if !r.matchOK {
			t.Fatalf("rule %d left unfrozen by aborted commit", r.ID)
		}
	}
	// The network still works: a fresh mutation commits cleanly.
	mut = n.BeginMutation()
	if err := mut.Add(RuleDef{
		Device: a, Table: TableFIB,
		Match:  MatchDst(p(t, "10.9.0.0/16")),
		Action: fwd, Origin: OriginStatic,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mut.Commit(); err != nil {
		t.Fatal(err)
	}
	assertRebuildEquivalent(t, n)
}

// randomDef generates a valid random FIB or ACL definition for dev.
func randomDef(rng *rand.Rand, n *Network, dev DeviceID) RuleDef {
	if rng.Intn(4) == 0 {
		return randomDefTable(rng, n, dev, TableACL)
	}
	return randomDefTable(rng, n, dev, TableFIB)
}

// randomDefTable is randomDef pinned to a table (what a modify needs).
func randomDefTable(rng *rand.Rand, n *Network, dev DeviceID, table TableKind) RuleDef {
	pf := netip.PrefixFrom(
		netip.AddrFrom4([4]byte{byte(rng.Intn(4) * 64), byte(rng.Intn(256)), 0, 0}),
		rng.Intn(25),
	).Masked()
	if table == TableACL {
		deny := rng.Intn(2) == 0
		act := Action{Kind: ActForward} // permit: continue to FIB
		if deny {
			act = Action{Kind: ActDrop}
		}
		return RuleDef{Device: dev, Table: TableACL, Match: MatchDst(pf), Action: act, Deny: deny, Origin: OriginACL}
	}
	var out []IfaceID
	for _, ifc := range n.Ifaces {
		if ifc.Device == dev {
			out = append(out, ifc.ID)
		}
	}
	act := Action{Kind: ActDrop}
	if len(out) > 0 && rng.Intn(4) > 0 {
		act = Action{Kind: ActForward, OutIfaces: out[:1+rng.Intn(len(out))]}
	}
	return RuleDef{Device: dev, Table: TableFIB, Match: MatchDst(pf), Action: act, Origin: OriginInternal}
}

// TestPropertyMutationEquivalence runs random mutation batches against
// random networks and checks, after every commit, that the incremental
// state is bit-identical to a from-scratch rebuild.
func TestPropertyMutationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		n := New()
		devs := make([]DeviceID, 2+rng.Intn(3))
		for i := range devs {
			devs[i] = n.AddDevice(string(rune('a'+i)), RoleToR, uint32(i+1))
			n.AddIface(devs[i], "up")
			n.AddIface(devs[i], "down")
		}
		for i := 0; i < 5+rng.Intn(10); i++ {
			dev := devs[rng.Intn(len(devs))]
			def := randomDef(rng, n, dev)
			n.addDef(def)
		}
		n.ComputeMatchSets()

		for step := 0; step < 4; step++ {
			mut := n.BeginMutation()
			used := map[RuleID]bool{}
			for op := 0; op < 1+rng.Intn(4); op++ {
				switch k := rng.Intn(3); {
				case k == 0 && len(n.Rules) > 0:
					id := RuleID(rng.Intn(len(n.Rules)))
					if !used[id] {
						used[id] = true
						if err := mut.Remove(id); err != nil {
							t.Fatal(err)
						}
					}
				case k == 1 && len(n.Rules) > 0:
					id := RuleID(rng.Intn(len(n.Rules)))
					if !used[id] {
						used[id] = true
						old := n.Rule(id)
						def := randomDefTable(rng, n, old.Device, old.Table)
						if err := mut.Modify(id, def); err != nil {
							t.Fatal(err)
						}
					}
				default:
					def := randomDef(rng, n, devs[rng.Intn(len(devs))])
					if err := mut.Add(def); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := mut.Commit(); err != nil {
				t.Fatal(err)
			}
			assertRebuildEquivalent(t, n)
		}
	}
}

// TestPropertyMemoNeverStale is the match-memo staleness check: after a
// mutation batch, every rule's cached raw set must equal a from-scratch
// evaluation of its match, and every disjoint set must equal a fresh
// claimed-union walk — i.e. memo hits during incremental re-derivation
// never served a set for the wrong match value.
func TestPropertyMemoNeverStale(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, a, b := buildMutable(t)
	devs := []DeviceID{a, b}
	for step := 0; step < 8; step++ {
		mut := n.BeginMutation()
		if len(n.Rules) > 0 && rng.Intn(2) == 0 {
			id := RuleID(rng.Intn(len(n.Rules)))
			old := n.Rule(id)
			def := randomDefTable(rng, n, old.Device, old.Table)
			if err := mut.Modify(id, def); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := mut.Add(randomDef(rng, n, devs[rng.Intn(2)])); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mut.Commit(); err != nil {
			t.Fatal(err)
		}
		for _, d := range n.Devices {
			for _, order := range [][]RuleID{d.ACL, d.FIB} {
				claimed := n.Space.Empty()
				for i, id := range order {
					r := n.Rules[id]
					fresh := r.Match.Set(n.Space) // bypasses the memo
					if !fresh.Equal(r.raw) {
						t.Fatalf("step %d: rule %d raw set is stale", step, id)
					}
					want := fresh
					if i > 0 {
						want = fresh.Diff(claimed)
					}
					if !want.Equal(r.match) {
						t.Fatalf("step %d: rule %d disjoint set is stale", step, id)
					}
					claimed = claimed.Union(fresh)
				}
			}
		}
	}
}

func TestCloneTopology(t *testing.T) {
	n, a, _ := buildMutable(t)
	clone := n.CloneTopology()
	if clone.Family() != n.Family() {
		t.Fatal("family mismatch")
	}
	if len(clone.Devices) != len(n.Devices) || len(clone.Ifaces) != len(n.Ifaces) {
		t.Fatalf("topology size mismatch: %d/%d devices, %d/%d ifaces",
			len(clone.Devices), len(n.Devices), len(clone.Ifaces), len(n.Ifaces))
	}
	for i, d := range n.Devices {
		cd := clone.Devices[i]
		if cd.Name != d.Name || cd.Role != d.Role || cd.ASN != d.ASN {
			t.Fatalf("device %d mismatch: %+v vs %+v", i, cd, d)
		}
	}
	for i, ifc := range n.Ifaces {
		ci := clone.Ifaces[i]
		if ci.Device != ifc.Device || ci.Name != ifc.Name || ci.Peer != ifc.Peer ||
			ci.Addr != ifc.Addr || ci.External != ifc.External {
			t.Fatalf("iface %d mismatch: %+v vs %+v", i, ci, ifc)
		}
	}
	if len(clone.Rules) != 0 {
		t.Fatalf("clone has %d rules, want 0", len(clone.Rules))
	}
	if clone.Space == n.Space {
		t.Fatal("clone shares the original's space")
	}
	// The clone is unfrozen: rules can be installed and frozen anew.
	clone.AddFIBRule(a, MatchAll(), Action{Kind: ActDrop}, OriginStatic)
	clone.ComputeMatchSets()
}
