package netmodel

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

// buildRich creates a network exercising every serialized feature.
func buildRich(t testing.TB) *Network {
	t.Helper()
	n := New()
	a := n.AddDevice("a", RoleBorder, 65001)
	b := n.AddDevice("b", RoleLeaf, 65002)
	n.Device(a).Loopbacks = append(n.Device(a).Loopbacks, netip.MustParsePrefix("192.0.2.1/32"))
	n.Device(b).Subnets = append(n.Device(b).Subnets, netip.MustParsePrefix("10.1.0.0/24"))
	ia, _ := n.Connect(a, b, netip.MustParsePrefix("10.255.0.0/31"))
	edge := n.AddEdgeIface(b, "host0", netip.MustParsePrefix("10.1.0.0/24"))

	deny := MatchAll()
	deny.DstPortLo, deny.DstPortHi = 23, 23
	deny.Proto = 6
	n.AddACLRule(a, deny, true)
	n.AddACLRule(a, MatchAll(), false)

	n.AddFIBRule(a, MatchDst(netip.MustParsePrefix("10.1.0.0/24")),
		Action{Kind: ActForward, OutIfaces: []IfaceID{ia}}, OriginInternal)
	n.AddFIBRule(a, MatchDst(netip.MustParsePrefix("0.0.0.0/0")),
		Action{Kind: ActDrop}, OriginDefault)
	n.AddFIBRule(b, MatchDst(netip.MustParsePrefix("10.1.0.0/24")),
		Action{Kind: ActForward, OutIfaces: []IfaceID{edge},
			Transform: &Transform{RewriteDst: true, Addr: netip.MustParseAddr("10.1.0.9")}}, OriginInternal)
	n.AddFIBRule(b, MatchDst(netip.MustParsePrefix("192.0.2.1/32")),
		Action{Kind: ActDeliver}, OriginInternal)
	n.ComputeMatchSets()
	return n
}

func TestJSONRoundTrip(t *testing.T) {
	n := buildRich(t)
	var buf bytes.Buffer
	if err := n.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(n2.Devices) != len(n.Devices) || len(n2.Ifaces) != len(n.Ifaces) || len(n2.Rules) != len(n.Rules) {
		t.Fatalf("shape mismatch: %+v vs %+v", n2.Stats(), n.Stats())
	}
	for i, d := range n.Devices {
		d2 := n2.Devices[i]
		if d.Name != d2.Name || d.Role != d2.Role || d.ASN != d2.ASN {
			t.Errorf("device %d mismatch", i)
		}
		if len(d.Loopbacks) != len(d2.Loopbacks) || len(d.Subnets) != len(d2.Subnets) {
			t.Errorf("device %d prefixes mismatch", i)
		}
	}
	for i, ifc := range n.Ifaces {
		i2 := n2.Ifaces[i]
		if ifc.Device != i2.Device || ifc.Name != i2.Name || ifc.Peer != i2.Peer ||
			ifc.External != i2.External || ifc.Addr != i2.Addr {
			t.Errorf("iface %d mismatch: %+v vs %+v", i, ifc, i2)
		}
	}
	// Rules: same matches, actions, and (after recompute) semantically
	// equal match sets. The two networks use different BDD spaces, so
	// compare via fractions and probe containment.
	for i, r := range n.Rules {
		r2 := n2.Rules[i]
		if r.Device != r2.Device || r.Table != r2.Table || r.Origin != r2.Origin || r.Deny != r2.Deny {
			t.Errorf("rule %d metadata mismatch", i)
		}
		if r.Match != r2.Match {
			t.Errorf("rule %d match mismatch: %+v vs %+v", i, r.Match, r2.Match)
		}
		if r.Action.Kind != r2.Action.Kind || len(r.Action.OutIfaces) != len(r2.Action.OutIfaces) {
			t.Errorf("rule %d action mismatch", i)
		}
		if (r.Action.Transform == nil) != (r2.Action.Transform == nil) {
			t.Errorf("rule %d transform presence mismatch", i)
		} else if r.Action.Transform != nil && *r.Action.Transform != *r2.Action.Transform {
			t.Errorf("rule %d transform mismatch", i)
		}
		if r.MatchSet().Fraction() != r2.MatchSet().Fraction() {
			t.Errorf("rule %d match-set size mismatch", i)
		}
	}
	if !n2.MatchSetsComputed() {
		t.Error("decoded network should be frozen")
	}
}

func TestJSONRoundTripIdempotent(t *testing.T) {
	n := buildRich(t)
	var b1, b2 bytes.Buffer
	if err := n.EncodeJSON(&b1); err != nil {
		t.Fatal(err)
	}
	n2, err := DecodeJSON(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.EncodeJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("encode(decode(x)) != encode(x)")
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"devices":[],"ifaces":[],"rules":[],"bogus":1}`},
		{"unnamed device", `{"devices":[{"name":""}],"ifaces":[],"rules":[]}`},
		{"iface bad device", `{"devices":[],"ifaces":[{"device":0,"name":"x","peer":-1}],"rules":[]}`},
		{"asymmetric peer", `{"devices":[{"name":"a"},{"name":"b"}],
			"ifaces":[{"device":0,"name":"x","peer":1},{"device":1,"name":"y","peer":-1}],"rules":[]}`},
		{"peer out of range", `{"devices":[{"name":"a"}],
			"ifaces":[{"device":0,"name":"x","peer":7}],"rules":[]}`},
		{"rule bad device", `{"devices":[],"ifaces":[],"rules":[{"device":0,"table":"fib","match":{},"action":"drop"}]}`},
		{"bad action", `{"devices":[{"name":"a"}],"ifaces":[],"rules":[{"device":0,"table":"fib","match":{},"action":"teleport"}]}`},
		{"bad table", `{"devices":[{"name":"a"}],"ifaces":[],"rules":[{"device":0,"table":"nat","match":{},"action":"drop"}]}`},
		{"forward no out", `{"devices":[{"name":"a"}],"ifaces":[],"rules":[{"device":0,"table":"fib","match":{},"action":"forward"}]}`},
		{"out not on device", `{"devices":[{"name":"a"},{"name":"b"}],
			"ifaces":[{"device":1,"name":"x","peer":-1}],
			"rules":[{"device":0,"table":"fib","match":{},"action":"forward","out":[0]}]}`},
		{"bad match prefix", `{"devices":[{"name":"a"}],"ifaces":[],"rules":[{"device":0,"table":"fib","match":{"dst":"nope"},"action":"drop"}]}`},
		{"bad proto", `{"devices":[{"name":"a"}],"ifaces":[],"rules":[{"device":0,"table":"fib","match":{"proto":900},"action":"drop"}]}`},
		{"bad port", `{"devices":[{"name":"a"}],"ifaces":[],"rules":[{"device":0,"table":"fib","match":{"dstPort":[0,70000]},"action":"drop"}]}`},
		{"bad transform addr", `{"devices":[{"name":"a"}],"ifaces":[],
			"rules":[{"device":0,"table":"fib","match":{},"action":"drop","transform":{"addr":"xx"}}]}`},
	}
	for _, c := range cases {
		if _, err := DecodeJSON(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodeJSONMinimal(t *testing.T) {
	n, err := DecodeJSON(strings.NewReader(`{"devices":[{"name":"r","role":"tor"}],"ifaces":[],"rules":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Devices) != 1 || n.Devices[0].Role != RoleToR {
		t.Error("minimal decode wrong")
	}
}

func TestJSONRoundTripIPv6(t *testing.T) {
	n := NewV6()
	a := n.AddDevice("a", RoleToR, 65001)
	b := n.AddDevice("b", RoleSpine, 65002)
	n.Device(a).Loopbacks = append(n.Device(a).Loopbacks, netip.MustParsePrefix("fd00:99::1/128"))
	n.Device(a).Subnets = append(n.Device(a).Subnets, netip.MustParsePrefix("fd00:1::/64"))
	ia, _ := n.Connect(a, b, netip.MustParsePrefix("fd00:ff::/126"))
	host := n.AddEdgeIface(a, "host0", netip.MustParsePrefix("fd00:1::/64"))
	n.AddFIBRule(a, MatchDst(netip.MustParsePrefix("fd00:1::/64")),
		Action{Kind: ActForward, OutIfaces: []IfaceID{host}}, OriginInternal)
	n.AddFIBRule(a, MatchDst(netip.MustParsePrefix("::/0")),
		Action{Kind: ActForward, OutIfaces: []IfaceID{ia}}, OriginDefault)
	n.AddFIBRule(b, MatchDst(netip.MustParsePrefix("fd00:1::/64")),
		Action{Kind: ActForward, OutIfaces: []IfaceID{n.Iface(ia).Peer}}, OriginInternal)
	n.ComputeMatchSets()

	var buf bytes.Buffer
	if err := n.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"family": "ipv6"`) {
		t.Error("family marker missing")
	}
	n2, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Family().String() != "ipv6" || n2.Stats() != n.Stats() {
		t.Fatalf("round trip: family=%v stats=%+v", n2.Family(), n2.Stats())
	}
	for i := range n.Rules {
		if n.Rules[i].MatchSet().Fraction() != n2.Rules[i].MatchSet().Fraction() {
			t.Errorf("rule %d size mismatch", i)
		}
	}
}

func TestDecodeJSONBadFamily(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader(`{"family":"ipv5","devices":[],"ifaces":[],"rules":[]}`)); err == nil {
		t.Error("bad family should error")
	}
}
