// Package netmodel defines the network model of the paper's §4.1: a network
// N = (V, I, E, S) of devices, interfaces, links, and forwarding state.
//
// Forwarding state is held per device as ordered rule tables: an optional
// ingress ACL (5-tuple matches, permit/deny) followed by a FIB
// (longest-prefix match on destination IP). After a network's state is
// populated, ComputeMatchSets derives each rule's *disjoint* match set
// M[r] — the packets for which r, and no earlier rule in its table, fires —
// which makes the rule applying to any packet unambiguous (§4.1) and is
// Step 1 of Yardstick's metric computation (§5.2).
package netmodel

import (
	"fmt"
	"net/netip"
	"sort"

	"yardstick/internal/hdr"
)

// DeviceID indexes a device within a Network.
type DeviceID int32

// IfaceID indexes an interface within a Network.
type IfaceID int32

// RuleID indexes a rule within a Network (global across devices).
type RuleID int32

// NoIface marks "no interface": packets injected directly at a device.
const NoIface IfaceID = -1

// Role classifies a device by its place in the topology. Coverage reports
// break down by role (Figure 6 of the paper).
type Role string

// Roles used by the built-in topologies.
const (
	RoleToR    Role = "tor"
	RoleAgg    Role = "agg"
	RoleSpine  Role = "spine"
	RoleHub    Role = "hub"    // regional hub router (§7.1)
	RoleBorder Role = "border" // border router (Figure 1 example)
	RoleLeaf   Role = "leaf"   // leaf router (Figure 1 example)
	RoleCore   Role = "core"   // fat-tree core layer (§8)
)

// RouteOrigin classifies why a rule exists. The case study's gap analysis
// (§7.2) groups untested rules into exactly these categories.
type RouteOrigin string

// Route origins.
const (
	OriginDefault   RouteOrigin = "default"   // the 0.0.0.0/0 route
	OriginConnected RouteOrigin = "connected" // /31s of point-to-point links
	OriginInternal  RouteOrigin = "internal"  // host subnets and loopbacks (BGP)
	OriginWideArea  RouteOrigin = "wide-area" // routes learned from the WAN
	OriginStatic    RouteOrigin = "static"    // other static routes
	OriginACL       RouteOrigin = "acl"       // access-control entries
)

// ActionKind distinguishes rule actions.
type ActionKind uint8

// Rule action kinds.
const (
	ActForward ActionKind = iota // forward out OutIfaces (several = ECMP)
	ActDrop                      // drop the packet (includes null routes)
	ActDeliver                   // deliver locally (loopback / attached subnet)
)

// Transform optionally rewrites a header field when a rule applies.
// Only destination/source IP rewrites are modeled (enough for NAT-style
// one-to-many and many-to-one transformations the paper's §4.3.2 footnote
// discusses).
type Transform struct {
	RewriteDst bool
	RewriteSrc bool
	Addr       netip.Addr
}

// Action is what a rule does to matched packets.
type Action struct {
	Kind      ActionKind
	OutIfaces []IfaceID // for ActForward; multiple entries = ECMP/multicast
	Transform *Transform
}

// Match is the match *fields* of a rule as configured. The effective match
// set M[r] additionally excludes packets claimed by earlier rules in the
// same table; it is computed by ComputeMatchSets.
type Match struct {
	DstPrefix netip.Prefix // zero value = any
	SrcPrefix netip.Prefix // zero value = any
	Proto     int32        // -1 = any
	DstPortLo uint16       // [lo,hi]; 0..65535 = any
	DstPortHi uint16
	SrcPortLo uint16
	SrcPortHi uint16
}

// MatchAll returns a Match that matches every packet.
func MatchAll() Match {
	return Match{Proto: -1, DstPortHi: 65535, SrcPortHi: 65535}
}

// MatchDst returns a Match on a destination prefix only.
func MatchDst(p netip.Prefix) Match {
	m := MatchAll()
	m.DstPrefix = p
	return m
}

// Set converts the match fields to a packet set (Figure 5's fromRule,
// before disjointness).
func (mt Match) Set(sp *hdr.Space) hdr.Set {
	s := sp.Full()
	if mt.DstPrefix.IsValid() {
		s = s.Intersect(sp.DstPrefix(mt.DstPrefix))
	}
	if mt.SrcPrefix.IsValid() {
		s = s.Intersect(sp.SrcPrefix(mt.SrcPrefix))
	}
	if mt.Proto >= 0 {
		s = s.Intersect(sp.Proto(uint8(mt.Proto)))
	}
	if mt.DstPortLo != 0 || mt.DstPortHi != 65535 {
		s = s.Intersect(sp.DstPortRange(mt.DstPortLo, mt.DstPortHi))
	}
	if mt.SrcPortLo != 0 || mt.SrcPortHi != 65535 {
		s = s.Intersect(sp.SrcPortRange(mt.SrcPortLo, mt.SrcPortHi))
	}
	return s
}

// TableKind identifies which table of a device a rule lives in.
type TableKind uint8

// Device tables, in pipeline order.
const (
	TableACL TableKind = iota // ingress ACL, evaluated before the FIB
	TableFIB
)

// Rule is one match-action rule (§4.1). MatchSet is valid only after
// Network.ComputeMatchSets.
type Rule struct {
	ID      RuleID
	Device  DeviceID
	Table   TableKind
	Match   Match
	Action  Action
	Origin  RouteOrigin
	Deny    bool // ACL entries: true = drop, false = permit
	raw     hdr.Set
	matchOK bool
	match   hdr.Set
}

// MatchSet returns the disjoint match set M[r]. It panics if
// ComputeMatchSets has not run.
func (r *Rule) MatchSet() hdr.Set {
	if !r.matchOK {
		panic(fmt.Sprintf("netmodel: MatchSet of rule %d before ComputeMatchSets", r.ID))
	}
	return r.match
}

// Interface is a device port. Point-to-point interfaces carry a /31
// address; edge interfaces (host- or WAN-facing) are marked External.
type Interface struct {
	ID       IfaceID
	Device   DeviceID
	Name     string
	Addr     netip.Prefix // interface address (e.g. 10.0.0.0/31); may be invalid
	Peer     IfaceID      // other end of the link; NoIface for edge interfaces
	External bool         // host- or WAN-facing edge
}

// Device is one router.
type Device struct {
	ID   DeviceID
	Name string
	Role Role
	ASN  uint32

	Ifaces    []IfaceID
	Loopbacks []netip.Prefix // /32 loopback prefixes
	Subnets   []netip.Prefix // directly attached host subnets (ToRs)

	ACL []RuleID // ordered ACL entries (may be empty)
	FIB []RuleID // FIB entries; LPM order fixed by ComputeMatchSets
}

// Network is the full model.
type Network struct {
	Space   *hdr.Space
	Devices []*Device
	Ifaces  []*Interface
	Rules   []*Rule

	byName map[string]DeviceID
	// fibIndex maps (device, exact destination prefix) to the FIB rule,
	// built by ComputeMatchSets. Tests resolve expected routes through
	// it in O(1).
	fibIndex map[fibKey]RuleID
	// matchMemo caches Match → raw packet set during ComputeMatchSets,
	// so identical matches across devices derive the BDD once.
	matchMemo map[Match]hdr.Set

	matchSetsDone bool
}

type fibKey struct {
	dev    DeviceID
	prefix netip.Prefix
}

// New returns an empty IPv4 network over a fresh header space.
func New() *Network { return NewFamily(hdr.V4) }

// NewV6 returns an empty IPv6 network. The paper's case-study network is
// dual-stack (/31 IPv4 and /126 IPv6 point-to-point prefixes); each
// family's forwarding state is modeled as its own network.
func NewV6() *Network { return NewFamily(hdr.V6) }

// NewFamily returns an empty network of the given address family.
func NewFamily(f hdr.Family) *Network {
	return &Network{
		Space:  hdr.NewFamilySpace(f),
		byName: make(map[string]DeviceID),
	}
}

// Family returns the network's address family.
func (n *Network) Family() hdr.Family { return n.Space.Family() }

// AddDevice creates a device. Names must be unique.
func (n *Network) AddDevice(name string, role Role, asn uint32) DeviceID {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netmodel: duplicate device name %q", name))
	}
	id := DeviceID(len(n.Devices))
	n.Devices = append(n.Devices, &Device{ID: id, Name: name, Role: role, ASN: asn})
	n.byName[name] = id
	return id
}

// Device returns the device with the given ID.
func (n *Network) Device(id DeviceID) *Device { return n.Devices[id] }

// DeviceByName looks a device up by name.
func (n *Network) DeviceByName(name string) (*Device, bool) {
	id, ok := n.byName[name]
	if !ok {
		return nil, false
	}
	return n.Devices[id], true
}

// Iface returns the interface with the given ID.
func (n *Network) Iface(id IfaceID) *Interface { return n.Ifaces[id] }

// Rule returns the rule with the given ID.
func (n *Network) Rule(id RuleID) *Rule { return n.Rules[id] }

// AddIface creates an unconnected interface on a device.
func (n *Network) AddIface(dev DeviceID, name string) IfaceID {
	id := IfaceID(len(n.Ifaces))
	n.Ifaces = append(n.Ifaces, &Interface{ID: id, Device: dev, Name: name, Peer: NoIface})
	n.Devices[dev].Ifaces = append(n.Devices[dev].Ifaces, id)
	return id
}

// AddEdgeIface creates an external (host- or WAN-facing) interface.
func (n *Network) AddEdgeIface(dev DeviceID, name string, addr netip.Prefix) IfaceID {
	id := n.AddIface(dev, name)
	n.Ifaces[id].External = true
	n.Ifaces[id].Addr = addr
	return id
}

// Connect links two devices with a point-to-point subnet: a /31 for IPv4
// networks (ends get .0 and .1) or a /126 or /127 for IPv6 (per the
// paper's §7.2: "statically configured /31 (IPv4) and /126 (IPv6)
// prefixes"). A /126's ends get ::1 and ::2; a /127's get ::0 and ::1.
// It returns the two new interfaces.
func (n *Network) Connect(a, b DeviceID, subnet netip.Prefix) (IfaceID, IfaceID) {
	if subnet.IsValid() {
		switch n.Family() {
		case hdr.V4:
			if !subnet.Addr().Is4() || subnet.Bits() != 31 {
				panic(fmt.Sprintf("netmodel: IPv4 point-to-point subnet %v must be a /31", subnet))
			}
		case hdr.V6:
			if subnet.Addr().Is4() || (subnet.Bits() != 126 && subnet.Bits() != 127) {
				panic(fmt.Sprintf("netmodel: IPv6 point-to-point subnet %v must be a /126 or /127", subnet))
			}
		}
	}
	ia := n.AddIface(a, fmt.Sprintf("to-%s", n.Devices[b].Name))
	ib := n.AddIface(b, fmt.Sprintf("to-%s", n.Devices[a].Name))
	n.Ifaces[ia].Peer = ib
	n.Ifaces[ib].Peer = ia
	if subnet.IsValid() {
		lo := subnet.Masked().Addr()
		if subnet.Bits() == 126 {
			lo = lo.Next() // convention: ::1 and ::2 on a /126
		}
		n.Ifaces[ia].Addr = netip.PrefixFrom(lo, subnet.Bits())
		n.Ifaces[ib].Addr = netip.PrefixFrom(lo.Next(), subnet.Bits())
	}
	return ia, ib
}

// Neighbors returns the devices adjacent to dev via internal links.
func (n *Network) Neighbors(dev DeviceID) []DeviceID {
	var out []DeviceID
	for _, ifid := range n.Devices[dev].Ifaces {
		p := n.Ifaces[ifid].Peer
		if p != NoIface {
			out = append(out, n.Ifaces[p].Device)
		}
	}
	return out
}

// IfaceTo returns dev's interface(s) facing neighbor nb.
func (n *Network) IfaceTo(dev, nb DeviceID) []IfaceID {
	var out []IfaceID
	for _, ifid := range n.Devices[dev].Ifaces {
		p := n.Ifaces[ifid].Peer
		if p != NoIface && n.Ifaces[p].Device == nb {
			out = append(out, ifid)
		}
	}
	return out
}

// AddFIBRule appends a FIB rule on dev. Order is irrelevant: the FIB is
// longest-prefix-match and ComputeMatchSets fixes the evaluation order.
func (n *Network) AddFIBRule(dev DeviceID, match Match, action Action, origin RouteOrigin) RuleID {
	return n.addRule(dev, TableFIB, match, action, origin, false)
}

// AddACLRule appends an ACL entry on dev. ACL order is the insertion order
// (first match wins).
func (n *Network) AddACLRule(dev DeviceID, match Match, deny bool) RuleID {
	action := Action{Kind: ActForward} // permit: continue to FIB
	if deny {
		action = Action{Kind: ActDrop}
	}
	return n.addRule(dev, TableACL, match, action, OriginACL, deny)
}

func (n *Network) addRule(dev DeviceID, table TableKind, match Match, action Action, origin RouteOrigin, deny bool) RuleID {
	if n.matchSetsDone {
		panic("netmodel: rule added after ComputeMatchSets")
	}
	id := RuleID(len(n.Rules))
	r := &Rule{
		ID:     id,
		Device: dev,
		Table:  table,
		Match:  match,
		Action: action,
		Origin: origin,
		Deny:   deny,
	}
	n.Rules = append(n.Rules, r)
	d := n.Devices[dev]
	if table == TableACL {
		d.ACL = append(d.ACL, id)
	} else {
		d.FIB = append(d.FIB, id)
	}
	return id
}

// ComputeMatchSets derives the disjoint match set of every rule (§5.2
// Step 1): per table, walk rules in evaluation order and give each rule the
// packets its match fields cover minus everything already claimed. FIBs are
// ordered longest prefix first; ACLs keep insertion order.
func (n *Network) ComputeMatchSets() {
	if n.matchSetsDone {
		return
	}
	for _, d := range n.Devices {
		// Fix FIB order: longest prefix first; ties broken by rule ID for
		// determinism (same-length FIB prefixes never overlap anyway).
		sort.SliceStable(d.FIB, func(i, j int) bool {
			pi := n.Rules[d.FIB[i]].Match.DstPrefix
			pj := n.Rules[d.FIB[j]].Match.DstPrefix
			bi, bj := prefixLen(pi), prefixLen(pj)
			if bi != bj {
				return bi > bj
			}
			return d.FIB[i] < d.FIB[j]
		})
		n.computeTable(d.ACL)
		n.computeTable(d.FIB)
	}
	n.fibIndex = make(map[fibKey]RuleID, len(n.Rules))
	for _, r := range n.Rules {
		if r.Table == TableFIB && r.Match.DstPrefix.IsValid() {
			n.fibIndex[fibKey{r.Device, r.Match.DstPrefix.Masked()}] = r.ID
		}
	}
	n.matchSetsDone = true
}

// FIBRuleFor returns the device's FIB rule whose match is exactly the
// given destination prefix, if any. Only valid after ComputeMatchSets.
func (n *Network) FIBRuleFor(dev DeviceID, prefix netip.Prefix) (*Rule, bool) {
	if !n.matchSetsDone {
		panic("netmodel: FIBRuleFor before ComputeMatchSets")
	}
	id, ok := n.fibIndex[fibKey{dev, prefix.Masked()}]
	if !ok {
		return nil, false
	}
	return n.Rules[id], true
}

func prefixLen(p netip.Prefix) int {
	if !p.IsValid() {
		return -1
	}
	return p.Bits()
}

func (n *Network) computeTable(order []RuleID) {
	claimed := n.Space.Empty()
	for i, id := range order {
		r := n.Rules[id]
		r.raw = n.matchSet(r.Match)
		if i == 0 {
			// Nothing is claimed yet; the first rule's disjoint match is
			// its raw match, no Diff needed.
			r.match = r.raw
		} else {
			r.match = r.raw.Diff(claimed)
		}
		r.matchOK = true
		claimed = claimed.Union(r.raw)
	}
}

// matchSet derives the packet set of a rule's match fields, memoized by
// the match key: networks repeat matches heavily (the same default
// route, host subnet, or ACL entry appears on many devices), and the
// BDD derivation walks every bit of every field, so re-deriving
// identical matches per device is pure waste. The memo is sound because
// Match is a pure value key and all rules share n.Space.
func (n *Network) matchSet(mt Match) hdr.Set {
	if s, ok := n.matchMemo[mt]; ok {
		return s
	}
	if n.matchMemo == nil {
		n.matchMemo = make(map[Match]hdr.Set)
	}
	s := mt.Set(n.Space)
	n.matchMemo[mt] = s
	return s
}

// MatchSetsComputed reports whether ComputeMatchSets has run.
func (n *Network) MatchSetsComputed() bool { return n.matchSetsDone }

// DeviceRules returns all rule IDs of a device (ACL then FIB).
func (n *Network) DeviceRules(dev DeviceID) []RuleID {
	d := n.Devices[dev]
	out := make([]RuleID, 0, len(d.ACL)+len(d.FIB))
	out = append(out, d.ACL...)
	out = append(out, d.FIB...)
	return out
}

// RulesForwardingTo returns the rules on the interface's device whose
// action forwards out the given interface (the dependency set of an
// *outgoing* interface, §4.3.2).
func (n *Network) RulesForwardingTo(ifid IfaceID) []RuleID {
	dev := n.Ifaces[ifid].Device
	var out []RuleID
	for _, rid := range n.Devices[dev].FIB {
		r := n.Rules[rid]
		if r.Action.Kind != ActForward {
			continue
		}
		for _, out2 := range r.Action.OutIfaces {
			if out2 == ifid {
				out = append(out, rid)
				break
			}
		}
	}
	return out
}

// Stats summarizes the network's size.
type Stats struct {
	Devices, Ifaces, Links, Rules int
}

// Stats returns counts of the network's components.
func (n *Network) Stats() Stats {
	links := 0
	for _, i := range n.Ifaces {
		if i.Peer != NoIface && i.ID < i.Peer {
			links++
		}
	}
	return Stats{
		Devices: len(n.Devices),
		Ifaces:  len(n.Ifaces),
		Links:   links,
		Rules:   len(n.Rules),
	}
}
