// Package ipset implements destination-IP sets as sorted interval lists —
// an independent, much simpler implementation of the packet-set algebra
// for the destination-only fragment. It exists to cross-validate the BDD
// engine (differential testing: every operation must agree with
// internal/hdr on destination-only sets) and to ablation-benchmark the
// representation choice for FIB-style workloads.
//
// A Set is a canonical sorted list of disjoint, non-adjacent inclusive
// [Lo,Hi] ranges of 32-bit addresses, so structural equality is semantic
// equality, mirroring the BDD's canonicity property.
package ipset

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Range is an inclusive address interval.
type Range struct {
	Lo, Hi uint32
}

// Set is a canonical union of ranges. The zero value is the empty set.
type Set struct {
	ranges []Range
}

// Empty returns the empty set.
func Empty() Set { return Set{} }

// Full returns the set of all 2^32 addresses.
func Full() Set { return Set{ranges: []Range{{0, ^uint32(0)}}} }

// FromRange returns the set [lo,hi]; lo > hi yields the empty set.
func FromRange(lo, hi uint32) Set {
	if lo > hi {
		return Set{}
	}
	return Set{ranges: []Range{{lo, hi}}}
}

// FromPrefix returns the addresses of a CIDR prefix.
func FromPrefix(p netip.Prefix) Set {
	if !p.Addr().Is4() {
		panic(fmt.Sprintf("ipset: prefix %v is not IPv4", p))
	}
	b := p.Masked().Addr().As4()
	lo := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	size := uint64(1) << (32 - p.Bits())
	return FromRange(lo, lo+uint32(size-1))
}

// canonicalize sorts and merges overlapping or adjacent ranges.
func canonicalize(rs []Range) Set {
	if len(rs) == 0 {
		return Set{}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		// Merge when overlapping or adjacent (last.Hi+1 == r.Lo), being
		// careful about Hi = MaxUint32.
		if r.Lo <= last.Hi || (last.Hi != ^uint32(0) && r.Lo == last.Hi+1) {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return Set{ranges: out}
}

// Union returns a ∪ b.
func (a Set) Union(b Set) Set {
	rs := make([]Range, 0, len(a.ranges)+len(b.ranges))
	rs = append(rs, a.ranges...)
	rs = append(rs, b.ranges...)
	return canonicalize(rs)
}

// Intersect returns a ∩ b.
func (a Set) Intersect(b Set) Set {
	var out []Range
	i, j := 0, 0
	for i < len(a.ranges) && j < len(b.ranges) {
		ra, rb := a.ranges[i], b.ranges[j]
		lo := max32(ra.Lo, rb.Lo)
		hi := min32(ra.Hi, rb.Hi)
		if lo <= hi {
			out = append(out, Range{lo, hi})
		}
		if ra.Hi < rb.Hi {
			i++
		} else {
			j++
		}
	}
	return Set{ranges: out}
}

// Negate returns the complement of a.
func (a Set) Negate() Set {
	var out []Range
	next := uint32(0)
	started := false
	for _, r := range a.ranges {
		if !started {
			if r.Lo > 0 {
				out = append(out, Range{0, r.Lo - 1})
			}
		} else if r.Lo > next {
			out = append(out, Range{next, r.Lo - 1})
		}
		started = true
		if r.Hi == ^uint32(0) {
			return Set{ranges: out}
		}
		next = r.Hi + 1
	}
	if !started {
		return Full()
	}
	out = append(out, Range{next, ^uint32(0)})
	return Set{ranges: out}
}

// Diff returns a ∖ b.
func (a Set) Diff(b Set) Set { return a.Intersect(b.Negate()) }

// Equal reports set equality (canonical form makes this structural).
func (a Set) Equal(b Set) bool {
	if len(a.ranges) != len(b.ranges) {
		return false
	}
	for i := range a.ranges {
		if a.ranges[i] != b.ranges[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the set is empty.
func (a Set) IsEmpty() bool { return len(a.ranges) == 0 }

// Count returns the number of addresses in the set.
func (a Set) Count() uint64 {
	var n uint64
	for _, r := range a.ranges {
		n += uint64(r.Hi-r.Lo) + 1
	}
	return n
}

// Contains reports whether addr is in the set.
func (a Set) Contains(addr uint32) bool {
	i := sort.Search(len(a.ranges), func(i int) bool { return a.ranges[i].Hi >= addr })
	return i < len(a.ranges) && a.ranges[i].Lo <= addr
}

// ContainsAddr reports whether an IPv4 address is in the set.
func (a Set) ContainsAddr(ip netip.Addr) bool {
	b := ip.As4()
	return a.Contains(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

// Overlaps reports whether a ∩ b is non-empty.
func (a Set) Overlaps(b Set) bool { return !a.Intersect(b).IsEmpty() }

// Ranges returns the canonical intervals (a copy).
func (a Set) Ranges() []Range {
	return append([]Range(nil), a.ranges...)
}

// String renders the set as intervals for diagnostics.
func (a Set) String() string {
	if a.IsEmpty() {
		return "∅"
	}
	var sb strings.Builder
	for i, r := range a.ranges {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "[%s,%s]", u32ip(r.Lo), u32ip(r.Hi))
	}
	return sb.String()
}

func u32ip(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Prefixes decomposes the set into a minimal list of CIDR prefixes —
// the inverse of FromPrefix unions, mirroring hdr.Set.DstPrefixes for
// the differential tests.
func (a Set) Prefixes() []netip.Prefix {
	var out []netip.Prefix
	for _, r := range a.ranges {
		out = append(out, rangePrefixes(r.Lo, r.Hi)...)
	}
	return out
}

// rangePrefixes covers [lo,hi] with the standard greedy CIDR split.
func rangePrefixes(lo, hi uint32) []netip.Prefix {
	var out []netip.Prefix
	for {
		// The largest block starting at lo: limited by lo's alignment
		// (2^32 when lo is 0) and by the remaining span. Both limits
		// are powers of two after halving, so size stays a power of two.
		size := uint64(lo & -lo)
		if lo == 0 {
			size = 1 << 32
		}
		span := uint64(hi) - uint64(lo) + 1
		for size > span {
			size >>= 1
		}
		bits := 32
		for s := size; s > 1; s >>= 1 {
			bits--
		}
		out = append(out, netip.PrefixFrom(u32ip(lo), bits))
		if uint64(lo)+size > uint64(hi) {
			return out
		}
		lo += uint32(size)
	}
}
