package ipset

import (
	"math/big"
	"math/rand"
	"net/netip"
	"testing"

	"yardstick/internal/hdr"
)

// TestDifferentialAgainstBDD cross-validates the two packet-set
// implementations: random expression trees over destination prefixes are
// evaluated both as interval sets and as BDD sets; counts, memberships,
// and prefix decompositions must agree on every node.
func TestDifferentialAgainstBDD(t *testing.T) {
	sp := hdr.NewSpace()
	rng := rand.New(rand.NewSource(99))

	randPrefix := func() netip.Prefix {
		bits := rng.Intn(33)
		addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		return netip.PrefixFrom(addr, bits).Masked()
	}

	type pair struct {
		iv Set
		bd hdr.Set
	}
	leaf := func() pair {
		p := randPrefix()
		return pair{FromPrefix(p), sp.DstPrefix(p)}
	}

	var build func(depth int) pair
	build = func(depth int) pair {
		if depth == 0 || rng.Intn(3) == 0 {
			return leaf()
		}
		a := build(depth - 1)
		switch rng.Intn(4) {
		case 0:
			b := build(depth - 1)
			return pair{a.iv.Union(b.iv), a.bd.Union(b.bd)}
		case 1:
			b := build(depth - 1)
			return pair{a.iv.Intersect(b.iv), a.bd.Intersect(b.bd)}
		case 2:
			b := build(depth - 1)
			return pair{a.iv.Diff(b.iv), a.bd.Diff(b.bd)}
		default:
			return pair{a.iv.Negate(), a.bd.Negate()}
		}
	}

	nonDstBits := hdr.NumBits - hdr.DstIPBits
	scale := new(big.Int).Lsh(big.NewInt(1), uint(nonDstBits))
	for trial := 0; trial < 60; trial++ {
		p := build(4)
		// Counts: the BDD count includes the free non-dst fields.
		wantCount := new(big.Int).Mul(new(big.Int).SetUint64(p.iv.Count()), scale)
		if got := p.bd.Count(); got.Cmp(wantCount) != 0 {
			t.Fatalf("trial %d: count mismatch: interval %v, bdd %v", trial, wantCount, got)
		}
		// Membership probes.
		for probe := 0; probe < 50; probe++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			pkt := hdr.Packet{Dst: addr, Src: netip.MustParseAddr("1.2.3.4"), Proto: 6, DstPort: 80}
			if p.iv.ContainsAddr(addr) != p.bd.ContainsPacket(pkt) {
				t.Fatalf("trial %d: membership mismatch at %v", trial, addr)
			}
		}
		// Prefix decomposition agrees when rebuilt.
		prefixes, complete := p.bd.DstPrefixes(0)
		if !complete {
			t.Fatalf("trial %d: decomposition incomplete", trial)
		}
		rebuilt := Empty()
		for _, pf := range prefixes {
			rebuilt = rebuilt.Union(FromPrefix(pf))
		}
		if !rebuilt.Equal(p.iv) {
			t.Fatalf("trial %d: prefix decomposition disagrees", trial)
		}
	}
}

// TestDifferentialDisjointMatchSets mirrors §5.2 Step 1 on both
// representations: walking an LPM table longest-prefix-first and
// subtracting claimed space must yield identical per-rule counts.
func TestDifferentialDisjointMatchSets(t *testing.T) {
	sp := hdr.NewSpace()
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		// Random FIB: nested and disjoint prefixes, sorted longest first.
		var prefixes []netip.Prefix
		for i := 0; i < 40; i++ {
			bits := rng.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(8) * 32), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			prefixes = append(prefixes, netip.PrefixFrom(addr, bits).Masked())
		}
		prefixes = append(prefixes, netip.MustParsePrefix("0.0.0.0/0"))
		for i := 0; i < len(prefixes); i++ {
			for j := i + 1; j < len(prefixes); j++ {
				if prefixes[j].Bits() > prefixes[i].Bits() {
					prefixes[i], prefixes[j] = prefixes[j], prefixes[i]
				}
			}
		}
		claimedIv := Empty()
		claimedBd := sp.Empty()
		scale := new(big.Int).Lsh(big.NewInt(1), uint(hdr.NumBits-hdr.DstIPBits))
		for _, p := range prefixes {
			mIv := FromPrefix(p).Diff(claimedIv)
			mBd := sp.DstPrefix(p).Diff(claimedBd)
			want := new(big.Int).Mul(new(big.Int).SetUint64(mIv.Count()), scale)
			if got := mBd.Count(); got.Cmp(want) != 0 {
				t.Fatalf("trial %d prefix %v: match-set size mismatch", trial, p)
			}
			claimedIv = claimedIv.Union(FromPrefix(p))
			claimedBd = claimedBd.Union(sp.DstPrefix(p))
		}
	}
}

// BenchmarkAblationRepresentation compares the two representations on the
// FIB match-set workload (the DESIGN.md ablation: BDDs buy generality —
// 5-tuple matches, transforms — at a cost intervals avoid for pure-dst
// tables).
func BenchmarkAblationRepresentation(b *testing.B) {
	var prefixes []netip.Prefix
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		bits := rng.Intn(17) + 8
		addr := netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
		prefixes = append(prefixes, netip.PrefixFrom(addr, bits).Masked())
	}
	b.Run("repr=interval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			claimed := Empty()
			for _, p := range prefixes {
				m := FromPrefix(p).Diff(claimed)
				_ = m
				claimed = claimed.Union(FromPrefix(p))
			}
		}
	})
	b.Run("repr=bdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := hdr.NewSpace()
			claimed := sp.Empty()
			for _, p := range prefixes {
				m := sp.DstPrefix(p).Diff(claimed)
				_ = m
				claimed = claimed.Union(sp.DstPrefix(p))
			}
		}
	})
}

// TestDifferentialPrefixesBothWays closes the loop: the interval engine's
// prefix decomposition rebuilt in the BDD engine equals the BDD set, and
// vice versa.
func TestDifferentialPrefixesBothWays(t *testing.T) {
	sp := hdr.NewSpace()
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		var in []netip.Prefix
		for i := rng.Intn(5) + 1; i > 0; i-- {
			bits := rng.Intn(26) + 6
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			in = append(in, netip.PrefixFrom(addr, bits).Masked())
		}
		iv := Empty()
		for _, p := range in {
			iv = iv.Union(FromPrefix(p))
		}
		bd := sp.FromDstPrefixes(in)

		// interval → prefixes → BDD
		if !sp.FromDstPrefixes(iv.Prefixes()).Equal(bd) {
			t.Fatalf("trial %d: interval decomposition disagrees with BDD", trial)
		}
		// BDD → prefixes → interval
		bdPrefixes, complete := bd.DstPrefixes(0)
		if !complete {
			t.Fatalf("trial %d: incomplete", trial)
		}
		back := Empty()
		for _, p := range bdPrefixes {
			back = back.Union(FromPrefix(p))
		}
		if !back.Equal(iv) {
			t.Fatalf("trial %d: BDD decomposition disagrees with interval", trial)
		}
	}
}
