package ipset

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	if !Empty().IsEmpty() {
		t.Error("Empty not empty")
	}
	if Full().Count() != 1<<32 {
		t.Errorf("Full count = %d", Full().Count())
	}
	if FromRange(5, 4).Count() != 0 {
		t.Error("inverted range should be empty")
	}
	p := FromPrefix(netip.MustParsePrefix("10.0.0.0/8"))
	if p.Count() != 1<<24 {
		t.Errorf("10/8 count = %d", p.Count())
	}
	if !p.ContainsAddr(netip.MustParseAddr("10.1.2.3")) {
		t.Error("10/8 should contain 10.1.2.3")
	}
	if p.ContainsAddr(netip.MustParseAddr("11.0.0.0")) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
}

func TestCanonicalMerging(t *testing.T) {
	// Adjacent and overlapping ranges collapse.
	a := FromRange(0, 9).Union(FromRange(10, 19)).Union(FromRange(15, 30))
	if got := a.Ranges(); len(got) != 1 || got[0] != (Range{0, 30}) {
		t.Errorf("ranges = %v", got)
	}
	// Adjacent across MaxUint32 boundary handled.
	b := FromRange(^uint32(0)-1, ^uint32(0)).Union(FromRange(0, 5))
	if b.Count() != 8 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestNegate(t *testing.T) {
	if !Empty().Negate().Equal(Full()) || !Full().Negate().IsEmpty() {
		t.Fatal("negate of trivial sets wrong")
	}
	a := FromRange(10, 20)
	n := a.Negate()
	if n.Count() != 1<<32-11 {
		t.Errorf("negate count = %d", n.Count())
	}
	if !n.Negate().Equal(a) {
		t.Error("double negation")
	}
	// Negation of set touching both extremes.
	e := FromRange(0, 5).Union(FromRange(^uint32(0)-5, ^uint32(0)))
	if e.Negate().Count() != 1<<32-12 {
		t.Errorf("extremes negate count = %d", e.Negate().Count())
	}
}

func randSet(rng *rand.Rand) Set {
	s := Empty()
	for i := rng.Intn(5); i >= 0; i-- {
		lo := rng.Uint32()
		width := rng.Uint32() % (1 << 28)
		hi := lo + width
		if hi < lo {
			hi = ^uint32(0)
		}
		s = s.Union(FromRange(lo, hi))
	}
	return s
}

func TestAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		a, b := randSet(rng), randSet(rng)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// De Morgan.
		if !a.Union(b).Negate().Equal(a.Negate().Intersect(b.Negate())) {
			return false
		}
		// Inclusion-exclusion.
		if a.Union(b).Count()+a.Intersect(b).Count() != a.Count()+b.Count() {
			return false
		}
		// Diff identity.
		if !a.Diff(b).Equal(a.Intersect(b.Negate())) {
			return false
		}
		// Canonical invariants: sorted, disjoint, non-adjacent.
		rs := a.Union(b).Ranges()
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo <= rs[i-1].Hi || rs[i].Lo == rs[i-1].Hi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMembershipBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		a, b := randSet(rng), randSet(rng)
		union, inter, diff := a.Union(b), a.Intersect(b), a.Diff(b)
		for probe := 0; probe < 200; probe++ {
			x := rng.Uint32()
			ia, ib := a.Contains(x), b.Contains(x)
			if union.Contains(x) != (ia || ib) {
				t.Fatalf("union membership wrong at %d", x)
			}
			if inter.Contains(x) != (ia && ib) {
				t.Fatalf("intersect membership wrong at %d", x)
			}
			if diff.Contains(x) != (ia && !ib) {
				t.Fatalf("diff membership wrong at %d", x)
			}
			if a.Negate().Contains(x) == ia {
				t.Fatalf("negate membership wrong at %d", x)
			}
		}
	}
}

func TestOverlapsAndString(t *testing.T) {
	a := FromPrefix(netip.MustParsePrefix("10.0.0.0/8"))
	b := FromPrefix(netip.MustParsePrefix("10.1.0.0/16"))
	c := FromPrefix(netip.MustParsePrefix("192.168.0.0/16"))
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Error("overlaps wrong")
	}
	if Empty().String() != "∅" || a.String() == "" {
		t.Error("string rendering")
	}
}

func TestPrefixesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		a := randSet(rng)
		prefixes := a.Prefixes()
		back := Empty()
		for _, p := range prefixes {
			back = back.Union(FromPrefix(p))
		}
		if !back.Equal(a) {
			t.Fatalf("trial %d: prefix decomposition round trip failed", trial)
		}
		// Prefixes are disjoint (counts add up).
		var total uint64
		for _, p := range prefixes {
			total += FromPrefix(p).Count()
		}
		if total != a.Count() {
			t.Fatalf("trial %d: prefixes overlap", trial)
		}
	}
	// Edge cases.
	if got := Full().Prefixes(); len(got) != 1 || got[0] != netip.MustParsePrefix("0.0.0.0/0") {
		t.Errorf("Full prefixes = %v", got)
	}
	if len(Empty().Prefixes()) != 0 {
		t.Error("Empty prefixes nonzero")
	}
	one := FromRange(5, 5).Prefixes()
	if len(one) != 1 || one[0].Bits() != 32 {
		t.Errorf("singleton = %v", one)
	}
}
