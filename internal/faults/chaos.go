package faults

import (
	"context"
	"fmt"
	"net/netip"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
)

// Chaos tests: injectable misbehaving tests for exercising the
// degradation model end to end. Where the fault operators above mutate
// the *network* to validate that coverage finds forwarding bugs, these
// mutate the *test suite* to validate that the evaluation core survives
// hostile tests — panics, hangs, and resource exhaustion — the way
// testkit.Suite.Run and pipeline.Run promise: one errored Result, the
// rest of the suite unharmed.

// PanicTest is a test that panics partway through. Suite.Run's panic
// isolation must convert it into a single errored Result (Err set,
// prefix "panic:") without aborting the suite.
type PanicTest struct {
	// Message is the panic value ("chaos: injected panic" when empty).
	Message string
	// Checks counts assertions "evaluated" before the panic, so reports
	// show the test died mid-flight rather than never starting.
	Checks int
}

// Name implements testkit.Test.
func (PanicTest) Name() string { return "ChaosPanic" }

// Kind implements testkit.Test.
func (PanicTest) Kind() testkit.Kind { return testkit.StateInspection }

// Run implements testkit.Test by panicking.
func (t PanicTest) Run(*netmodel.Network, core.Tracker) testkit.Result {
	msg := t.Message
	if msg == "" {
		msg = "chaos: injected panic"
	}
	panic(msg)
}

// HangTest blocks until its context is cancelled (or Release is closed,
// for tests that want to un-hang it). It implements testkit.ContextTest,
// so Suite.Run hands it the run context: a daemon -run-timeout or a
// caller's deadline converts the hang into an errored Result instead of
// a stuck suite.
type HangTest struct {
	// Release unblocks the test without cancellation, yielding a pass
	// (nil means only cancellation ends the hang).
	Release <-chan struct{}
}

// Name implements testkit.Test.
func (HangTest) Name() string { return "ChaosHang" }

// Kind implements testkit.Test.
func (HangTest) Kind() testkit.Kind { return testkit.StateInspection }

// Run implements testkit.Test. Without a context the hang can only end
// via Release; callers that might cancel must run it through Suite.Run
// (which prefers RunContext).
func (t HangTest) Run(net *netmodel.Network, tracker core.Tracker) testkit.Result {
	return t.RunContext(context.Background(), net, tracker)
}

// RunContext implements testkit.ContextTest.
func (t HangTest) RunContext(ctx context.Context, _ *netmodel.Network, _ core.Tracker) testkit.Result {
	res := testkit.Result{Name: t.Name(), Kind: t.Kind()}
	select {
	case <-t.Release:
		res.Checks = 1
	case <-ctx.Done():
		res.Err = fmt.Sprintf("hang aborted: %v", ctx.Err())
	}
	return res
}

// BudgetTest burns BDD engine resources by building many distinct
// symbolic sets — the unbounded-symbolic-work failure mode that
// bdd.Limits exists for. Under a tight bdd.Limits the allocation trips
// ErrBudgetExceeded: the suite's per-test isolation converts the trip
// into an errored Result, and — because a tripped budget poisons the
// manager — the next charged engine operation in the same evaluation
// phase re-raises it to the enclosing bdd.Guard, so the phase as a
// whole still reports the exhaustion.
type BudgetTest struct {
	// Iterations bounds the allocation (default 4096) so an *unlimited*
	// manager terminates too; each iteration interns a distinct
	// destination-IP singleton and unions it into a growing set.
	Iterations int
}

// Name implements testkit.Test.
func (BudgetTest) Name() string { return "ChaosBudget" }

// Kind implements testkit.Test.
func (BudgetTest) Kind() testkit.Kind { return testkit.StateInspection }

// Run implements testkit.Test.
func (t BudgetTest) Run(net *netmodel.Network, _ core.Tracker) testkit.Result {
	iters := t.Iterations
	if iters == 0 {
		iters = 4096
	}
	sp := net.Space
	acc := sp.Empty()
	for i := 0; i < iters; i++ {
		a := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		acc = acc.Union(sp.DstIP(a))
	}
	return testkit.Result{Name: t.Name(), Kind: t.Kind(), Checks: iters}
}

var (
	_ testkit.Test        = PanicTest{}
	_ testkit.ContextTest = HangTest{}
	_ testkit.Test        = BudgetTest{}
)
