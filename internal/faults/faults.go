// Package faults injects forwarding-state bugs into built networks —
// the mutation-testing analogue the software coverage literature uses to
// validate that coverage correlates with bug-finding ability, and the
// mechanism behind this repository's "higher coverage finds more bugs"
// experiment (the paper's §2/§7 motivation: coverage increases "the
// probability of uncovering more bugs").
//
// All operators mutate rule *actions*, never match fields, so the
// disjoint match sets computed at build time remain valid and faults can
// be injected into (and reverted from) frozen networks.
package faults

import (
	"fmt"
	"math/rand"

	"yardstick/internal/netmodel"
)

// Kind enumerates the fault operators.
type Kind uint8

// Fault operators.
const (
	// NullRoute turns a forwarding rule into a drop — the §2 bug.
	NullRoute Kind = iota
	// WrongNextHop rewires a forwarding rule to a different local
	// interface.
	WrongNextHop
	// ECMPMember removes one member from a multi-way ECMP group.
	ECMPMember
)

func (k Kind) String() string {
	switch k {
	case NullRoute:
		return "null-route"
	case WrongNextHop:
		return "wrong-next-hop"
	case ECMPMember:
		return "ecmp-member-missing"
	}
	return "unknown"
}

// Fault is one injected bug, revertible via Revert.
type Fault struct {
	Kind   Kind
	Rule   netmodel.RuleID
	Device netmodel.DeviceID

	prev netmodel.Action
	net  *netmodel.Network
}

// String describes the fault for reports.
func (f *Fault) String() string {
	return fmt.Sprintf("%s on rule %d (%s, %v)",
		f.Kind, f.Rule, f.net.Device(f.Device).Name, f.net.Rule(f.Rule).Match.DstPrefix)
}

// Revert restores the rule's original action.
func (f *Fault) Revert() {
	f.net.Rule(f.Rule).Action = f.prev
}

// eligible reports whether a rule can host the fault kind.
func eligible(r *netmodel.Rule, kind Kind) bool {
	if r.Table != netmodel.TableFIB || r.Action.Kind != netmodel.ActForward {
		return false
	}
	switch kind {
	case ECMPMember:
		return len(r.Action.OutIfaces) >= 2
	case WrongNextHop:
		return true
	case NullRoute:
		return true
	}
	return false
}

// cloneAction deep-copies an action so Revert restores exactly.
func cloneAction(a netmodel.Action) netmodel.Action {
	out := a
	out.OutIfaces = append([]netmodel.IfaceID(nil), a.OutIfaces...)
	if a.Transform != nil {
		tr := *a.Transform
		out.Transform = &tr
	}
	return out
}

// Inject applies the fault kind to the given rule. It returns an error
// when the rule cannot host the fault.
func Inject(net *netmodel.Network, rid netmodel.RuleID, kind Kind, rng *rand.Rand) (*Fault, error) {
	r := net.Rule(rid)
	if !eligible(r, kind) {
		return nil, fmt.Errorf("faults: rule %d cannot host %v", rid, kind)
	}
	f := &Fault{Kind: kind, Rule: rid, Device: r.Device, prev: cloneAction(r.Action), net: net}
	switch kind {
	case NullRoute:
		r.Action = netmodel.Action{Kind: netmodel.ActDrop}
	case WrongNextHop:
		// Pick a different interface on the same device; fall back to a
		// drop when the device has no alternative port.
		d := net.Device(r.Device)
		var candidates []netmodel.IfaceID
		current := map[netmodel.IfaceID]bool{}
		for _, ifid := range r.Action.OutIfaces {
			current[ifid] = true
		}
		for _, ifid := range d.Ifaces {
			if !current[ifid] {
				candidates = append(candidates, ifid)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("faults: device %s has no alternative interface", d.Name)
		}
		r.Action = netmodel.Action{
			Kind:      netmodel.ActForward,
			OutIfaces: []netmodel.IfaceID{candidates[rng.Intn(len(candidates))]},
		}
	case ECMPMember:
		outs := append([]netmodel.IfaceID(nil), r.Action.OutIfaces...)
		i := rng.Intn(len(outs))
		outs = append(outs[:i], outs[i+1:]...)
		r.Action = netmodel.Action{Kind: netmodel.ActForward, OutIfaces: outs, Transform: r.Action.Transform}
	}
	return f, nil
}

// InjectRandom injects one random fault of a random kind into a random
// eligible rule, optionally restricted by keep.
func InjectRandom(net *netmodel.Network, rng *rand.Rand, keep func(*netmodel.Rule) bool) (*Fault, error) {
	kinds := []Kind{NullRoute, WrongNextHop, ECMPMember}
	// Collect eligible (rule, kind) pairs lazily: sample with retries.
	var candidates []netmodel.RuleID
	for _, r := range net.Rules {
		if keep != nil && !keep(r) {
			continue
		}
		if eligible(r, WrongNextHop) { // broadest eligibility
			candidates = append(candidates, r.ID)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("faults: no eligible rules")
	}
	for attempt := 0; attempt < 64; attempt++ {
		rid := candidates[rng.Intn(len(candidates))]
		kind := kinds[rng.Intn(len(kinds))]
		f, err := Inject(net, rid, kind, rng)
		if err == nil {
			return f, nil
		}
	}
	// Fall back to a guaranteed-eligible null route.
	return Inject(net, candidates[rng.Intn(len(candidates))], NullRoute, rng)
}

// Campaign injects n faults one at a time (reverting each before the
// next) and reports, per fault, whether each provided detector caught
// it. A detector is typically "run test suite X and return !pass".
type CampaignResult struct {
	Faults   []string
	Detected [][]bool // [fault][detector]
	Totals   []int    // per detector
}

// Run executes a mutation campaign: for each of n random faults, inject,
// run every detector, revert. Detectors must not mutate the network.
func Run(net *netmodel.Network, rng *rand.Rand, n int,
	keep func(*netmodel.Rule) bool, detectors ...func() bool) (*CampaignResult, error) {
	res := &CampaignResult{Totals: make([]int, len(detectors))}
	for i := 0; i < n; i++ {
		f, err := InjectRandom(net, rng, keep)
		if err != nil {
			return nil, err
		}
		row := make([]bool, len(detectors))
		for j, det := range detectors {
			if det() {
				row[j] = true
				res.Totals[j]++
			}
		}
		res.Faults = append(res.Faults, f.String())
		res.Detected = append(res.Detected, row)
		f.Revert()
	}
	return res, nil
}
