package faults

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func smallNet(t *testing.T) *netmodel.Network {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rg.Net
}

func TestPanicTestIsIsolated(t *testing.T) {
	net := smallNet(t)
	suite := testkit.Suite{
		testkit.DefaultRouteCheck{},
		PanicTest{Message: "chaos: boom"},
		testkit.ConnectedRouteCheck{},
	}
	results := suite.Run(context.Background(), net, core.NewTrace())
	if len(results) != len(suite) {
		t.Fatalf("got %d results, want %d (suite must survive the panic)", len(results), len(suite))
	}
	var errored int
	for _, r := range results {
		if r.Errored() {
			errored++
			if r.Name != "ChaosPanic" {
				t.Errorf("errored result is %q, want ChaosPanic", r.Name)
			}
			if !strings.Contains(r.Err, "chaos: boom") || !strings.HasPrefix(r.Err, "panic:") {
				t.Errorf("Err = %q, want panic message", r.Err)
			}
			if r.Status() != "error" {
				t.Errorf("Status() = %q, want error", r.Status())
			}
		} else if !r.Pass() {
			t.Errorf("%s failed: %+v", r.Name, r.Failures)
		}
	}
	if errored != 1 {
		t.Fatalf("got %d errored results, want exactly 1", errored)
	}
}

func TestHangTestAbortsOnCancel(t *testing.T) {
	net := smallNet(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	results := testkit.Suite{HangTest{}}.Run(ctx, net, core.Nop{})
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if !results[0].Errored() || !strings.Contains(results[0].Err, context.DeadlineExceeded.Error()) {
		t.Fatalf("result = %+v, want errored with deadline message", results[0])
	}
}

func TestHangTestReleasePasses(t *testing.T) {
	net := smallNet(t)
	release := make(chan struct{})
	close(release)
	results := testkit.Suite{HangTest{Release: release}}.Run(context.Background(), net, core.Nop{})
	if len(results) != 1 || !results[0].Pass() {
		t.Fatalf("results = %+v, want one pass", results)
	}
}

func TestBudgetTestTripsNodeLimit(t *testing.T) {
	net := smallNet(t)
	sp := net.Space
	sp.SetLimits(bdd.Limits{MaxNodes: sp.Manager().Size() + 64})
	var results []testkit.Result
	err := bdd.Guard(func() {
		results = testkit.Suite{BudgetTest{}}.Run(context.Background(), net, core.Nop{})
		// Post-suite symbolic work, as pipeline.Run's coverage phase
		// does: the poisoned manager re-raises the trip here, where the
		// Guard converts it to an error.
		sp.DstPrefix(netip.MustParsePrefix("203.0.113.0/24"))
	})
	if !errors.Is(err, bdd.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// The trip inside the test surfaced as an errored result first.
	if len(results) != 1 || !results[0].Errored() || !strings.Contains(results[0].Err, "budget") {
		t.Fatalf("results = %+v, want one budget-errored result", results)
	}
	// SetLimits un-poisons: the same work succeeds afterwards.
	sp.SetLimits(bdd.Limits{})
	if err := bdd.Guard(func() { sp.DstPrefix(netip.MustParsePrefix("203.0.113.0/24")) }); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// TestBudgetTestCompletesUnlimited pins the other side: without limits
// the chaos test terminates on its iteration bound and passes.
func TestBudgetTestCompletesUnlimited(t *testing.T) {
	net := smallNet(t)
	results := testkit.Suite{BudgetTest{Iterations: 256}}.Run(context.Background(), net, core.Nop{})
	if len(results) != 1 || !results[0].Pass() {
		t.Fatalf("results = %+v, want one pass", results)
	}
}

func TestSuiteRunHonorsPreCancelledContext(t *testing.T) {
	net := smallNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := testkit.Suite{testkit.DefaultRouteCheck{}, testkit.ConnectedRouteCheck{}}.Run(ctx, net, core.NewTrace())
	if len(results) != 0 {
		t.Fatalf("got %d results on a cancelled context, want 0", len(results))
	}
}
