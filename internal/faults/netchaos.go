package faults

// Network-level fault injection. faults.go mutates *forwarding state* to
// validate that coverage finds data-plane bugs; this file injects
// *infrastructure* faults — worker crashes, hangs, connection resets,
// slow and truncated responses — to validate that the distributed
// coordinator survives them. Both follow the same discipline: faults are
// injected at a single seam (there, rule actions; here, the HTTP
// transport), are deterministic under a seed, and are revertible.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// NetFault enumerates the network fault operators a ChaosTransport can
// inject into a single HTTP exchange.
type NetFault uint8

const (
	// FaultReset fails the round trip with a connection error before any
	// response bytes arrive — a RST, a refused dial, a dead NIC.
	FaultReset NetFault = iota
	// FaultHang blocks the round trip until the request context is
	// cancelled — a black-holed connection that never answers.
	FaultHang
	// FaultSlow delays the response by the transport's Delay — a
	// straggler node, the case hedged dispatch exists for.
	FaultSlow
	// FaultError500 synthesizes a 500 response without reaching the
	// server — a crashing frontend or a broken proxy.
	FaultError500
	// FaultTruncate forwards the request but cuts the response body
	// short mid-stream — a connection dropped during transfer.
	FaultTruncate
)

func (f NetFault) String() string {
	switch f {
	case FaultReset:
		return "reset"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	case FaultError500:
		return "error500"
	case FaultTruncate:
		return "truncate"
	}
	return "unknown"
}

// ChaosTransport wraps an http.RoundTripper and injects network faults
// into a fraction of exchanges. The zero value passes everything through
// untouched; faults turn on per-kind via the P* probabilities. A seeded
// Rand makes a given test's fault schedule reproducible; counters record
// what was actually injected so tests can assert the chaos was real.
//
// ChaosTransport is safe for concurrent use. It is a client-side seam:
// handing it to http.Client.Transport subjects every request from that
// client to the schedule, which is exactly where a coordinator's view of
// a flaky worker lives.
type ChaosTransport struct {
	// Base performs the real exchange; nil means
	// http.DefaultTransport.
	Base http.RoundTripper

	// PReset, PHang, PSlow, P500, PTruncate are independent per-request
	// injection probabilities in [0,1], checked in that order (at most
	// one fault fires per exchange).
	PReset, PHang, PSlow, P500, PTruncate float64

	// Delay is how long FaultSlow stalls a response (default 50ms).
	Delay time.Duration

	// Match restricts injection to requests whose URL path contains the
	// substring; empty matches everything. Lets a test break only
	// /jobs/{id}/trace downloads, say, while health checks stay clean.
	Match string

	// Rand drives the schedule; nil falls back to always-inject-nothing
	// determinism only when all probabilities are zero, so set it (with
	// a fixed seed) whenever any P* is nonzero.
	Rand *rand.Rand

	mu      sync.Mutex
	crashed bool
	counts  map[NetFault]int
}

// Crash makes every subsequent round trip fail with a connection error
// until Revive — a worker process SIGKILLed, not merely flaky. Crash
// ignores Match and probabilities: a dead node is dead for every path.
func (c *ChaosTransport) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
}

// Revive undoes Crash — the node restarted. State held server-side was
// still lost; reviving only restores connectivity.
func (c *ChaosTransport) Revive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
}

// Counts returns how many faults of each kind were injected so far.
func (c *ChaosTransport) Counts() map[NetFault]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[NetFault]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Injected returns the total number of injected faults across kinds.
func (c *ChaosTransport) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// pick decides, under the lock, which fault (if any) this exchange
// draws, and records it. Crash dominates everything.
func (c *ChaosTransport) pick(path string) (NetFault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return FaultReset, true
	}
	if c.Match != "" && !strings.Contains(path, c.Match) {
		return 0, false
	}
	if c.Rand == nil {
		return 0, false
	}
	for _, cand := range []struct {
		p float64
		f NetFault
	}{
		{c.PReset, FaultReset},
		{c.PHang, FaultHang},
		{c.PSlow, FaultSlow},
		{c.P500, FaultError500},
		{c.PTruncate, FaultTruncate},
	} {
		if cand.p > 0 && c.Rand.Float64() < cand.p {
			if c.counts == nil {
				c.counts = map[NetFault]int{}
			}
			c.counts[cand.f]++
			return cand.f, true
		}
	}
	return 0, false
}

// RoundTrip implements http.RoundTripper with the fault schedule
// applied.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := c.Base
	if base == nil {
		base = http.DefaultTransport
	}
	fault, inject := c.pick(req.URL.Path)
	if !inject {
		return base.RoundTrip(req)
	}
	switch fault {
	case FaultReset:
		return nil, fmt.Errorf("chaos: connection reset by peer (%s %s)", req.Method, req.URL.Path)
	case FaultHang:
		<-req.Context().Done()
		return nil, fmt.Errorf("chaos: hung connection: %w", req.Context().Err())
	case FaultSlow:
		d := c.Delay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, fmt.Errorf("chaos: slow connection: %w", req.Context().Err())
		}
		return base.RoundTrip(req)
	case FaultError500:
		return &http.Response{
			Status:     "500 Internal Server Error (chaos)",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": {"application/json"}},
			Body:          io.NopCloser(strings.NewReader(`{"error":"chaos: injected server error"}`)),
			ContentLength: -1,
			Request:       req,
		}, nil
	case FaultTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return base.RoundTrip(req)
}

// truncatedBody passes through about half of the first read, then
// reports an unexpected connection drop. The partial prefix is the
// point: a truncated JSON document must fail decoding, not silently
// parse.
type truncatedBody struct {
	rc   io.ReadCloser
	done bool
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.done {
		return 0, fmt.Errorf("chaos: connection dropped mid-body: %w", io.ErrUnexpectedEOF)
	}
	n, err := t.rc.Read(p)
	if n > 1 {
		n /= 2
	}
	t.done = true
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}

func (t *truncatedBody) Close() error { return t.rc.Close() }
