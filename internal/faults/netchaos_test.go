package faults

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosClient returns an http.Client routed through the transport with a
// short request timeout so hangs resolve quickly in tests.
func chaosClient(ct *ChaosTransport) *http.Client {
	return &http.Client{Transport: ct, Timeout: 250 * time.Millisecond}
}

func TestChaosPassthrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()

	// Zero value: no faults, ever.
	ct := &ChaosTransport{}
	for i := 0; i < 20; i++ {
		resp, err := chaosClient(ct).Get(ts.URL)
		if err != nil {
			t.Fatalf("passthrough request %d: %v", i, err)
		}
		resp.Body.Close()
	}
	if n := ct.Injected(); n != 0 {
		t.Fatalf("zero-value transport injected %d faults", n)
	}
}

func TestChaosCrashAndRevive(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	ct := &ChaosTransport{}
	c := chaosClient(ct)
	if resp, err := c.Get(ts.URL); err != nil {
		t.Fatalf("pre-crash request: %v", err)
	} else {
		resp.Body.Close()
	}

	ct.Crash()
	if _, err := c.Get(ts.URL); err == nil {
		t.Fatal("crashed transport completed a request")
	}
	if served != 1 {
		t.Fatalf("crashed request reached the server (served=%d)", served)
	}

	ct.Revive()
	if resp, err := c.Get(ts.URL); err != nil {
		t.Fatalf("post-revive request: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestChaosReset(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ct := &ChaosTransport{PReset: 1, Rand: rand.New(rand.NewSource(1))}
	if _, err := chaosClient(ct).Get(ts.URL); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("reset fault = %v, want connection-reset error", err)
	}
	if got := ct.Counts()[FaultReset]; got != 1 {
		t.Fatalf("reset count = %d, want 1", got)
	}
}

func TestChaosHangRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ct := &ChaosTransport{PHang: 1, Rand: rand.New(rand.NewSource(1))}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := (&http.Client{Transport: ct}).Do(req)
	if err == nil {
		t.Fatal("hung request completed")
	}
	if since := time.Since(start); since < 25*time.Millisecond || since > 5*time.Second {
		t.Fatalf("hang resolved in %v, want ~the context deadline", since)
	}
}

func TestChaosSlowDelays(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ct := &ChaosTransport{PSlow: 1, Delay: 40 * time.Millisecond, Rand: rand.New(rand.NewSource(1))}
	start := time.Now()
	resp, err := chaosClient(ct).Get(ts.URL)
	if err != nil {
		t.Fatalf("slow request: %v", err)
	}
	resp.Body.Close()
	if since := time.Since(start); since < 35*time.Millisecond {
		t.Fatalf("slow fault added only %v, want >= ~40ms", since)
	}
}

func TestChaosError500(t *testing.T) {
	var served bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { served = true }))
	defer ts.Close()

	ct := &ChaosTransport{P500: 1, Rand: rand.New(rand.NewSource(1))}
	resp, err := chaosClient(ct).Get(ts.URL)
	if err != nil {
		t.Fatalf("500 fault: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want synthesized 500", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || !strings.Contains(body.Error, "chaos") {
		t.Fatalf("500 body = (%+v, %v), want chaos error JSON", body, err)
	}
	if served {
		t.Fatal("synthesized 500 reached the real server")
	}
}

// TestChaosTruncate: a truncated body must surface as a read/decode
// error, never as a silently short but "successful" document — the
// property the coordinator's fragment downloads rely on.
func TestChaosTruncate(t *testing.T) {
	payload := `{"key":"` + strings.Repeat("x", 4096) + `"}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	ct := &ChaosTransport{PTruncate: 1, Rand: rand.New(rand.NewSource(1))}
	resp, err := chaosClient(ct).Get(ts.URL)
	if err != nil {
		t.Fatalf("truncate round trip: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading truncated body = (%d bytes, %v), want unexpected EOF", len(got), err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("truncate delivered the whole %d-byte payload", len(got))
	}
	var out map[string]string
	if json.Unmarshal(got, &out) == nil {
		t.Fatal("truncated JSON decoded cleanly; the cut must break the document")
	}
}

// TestChaosMatchScopes: a Match substring confines faults to matching
// paths; everything else passes clean.
func TestChaosMatchScopes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ct := &ChaosTransport{PReset: 1, Match: "/trace", Rand: rand.New(rand.NewSource(1))}
	c := chaosClient(ct)
	if resp, err := c.Get(ts.URL + "/healthz"); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := c.Get(ts.URL + "/jobs/j1/trace"); err == nil {
		t.Fatal("matching path was not faulted")
	}
}

// TestChaosDeterministicSchedule: the same seed yields the same fault
// schedule, so a failing chaos test reproduces exactly.
func TestChaosDeterministicSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	schedule := func(seed int64) []bool {
		ct := &ChaosTransport{PReset: 0.4, Rand: rand.New(rand.NewSource(seed))}
		c := chaosClient(ct)
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := c.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d with the same seed", i)
		}
	}
	diff := schedule(8)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-request schedules (suspicious)")
	}
}
