package faults

import (
	"context"
	"math/rand"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func TestInjectAndRevert(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := rg.Net
	rng := rand.New(rand.NewSource(1))

	// Find an ECMP rule.
	var ecmp *netmodel.Rule
	for _, r := range net.Rules {
		if r.Table == netmodel.TableFIB && r.Action.Kind == netmodel.ActForward && len(r.Action.OutIfaces) >= 2 {
			ecmp = r
			break
		}
	}
	if ecmp == nil {
		t.Fatal("no ECMP rule in fixture")
	}

	for _, kind := range []Kind{NullRoute, WrongNextHop, ECMPMember} {
		orig := append([]netmodel.IfaceID(nil), ecmp.Action.OutIfaces...)
		origKind := ecmp.Action.Kind
		f, err := Inject(net, ecmp.ID, kind, rng)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		switch kind {
		case NullRoute:
			if ecmp.Action.Kind != netmodel.ActDrop {
				t.Errorf("null route did not drop")
			}
		case WrongNextHop:
			if len(ecmp.Action.OutIfaces) != 1 {
				t.Errorf("wrong next hop should single-home")
			}
		case ECMPMember:
			if len(ecmp.Action.OutIfaces) != len(orig)-1 {
				t.Errorf("ecmp member not removed")
			}
		}
		if f.String() == "" {
			t.Error("fault should describe itself")
		}
		f.Revert()
		if ecmp.Action.Kind != origKind || len(ecmp.Action.OutIfaces) != len(orig) {
			t.Fatalf("%v: revert failed", kind)
		}
		for i := range orig {
			if ecmp.Action.OutIfaces[i] != orig[i] {
				t.Fatalf("%v: revert changed interface order", kind)
			}
		}
	}
}

func TestInjectRejectsIneligible(t *testing.T) {
	net := netmodel.New()
	d := net.AddDevice("r", netmodel.RoleToR, 1)
	drop := net.AddFIBRule(d, netmodel.MatchAll(), netmodel.Action{Kind: netmodel.ActDrop}, netmodel.OriginStatic)
	net.ComputeMatchSets()
	rng := rand.New(rand.NewSource(2))
	if _, err := Inject(net, drop, NullRoute, rng); err == nil {
		t.Error("drop rule should not host a fault")
	}
	if _, err := InjectRandom(net, rng, nil); err == nil {
		t.Error("network with no forwarding rules should error")
	}
}

// TestCampaignCoverageCorrelation is the mutation study: the
// higher-coverage final suite must detect at least as many injected
// faults as the original suite, and strictly more across a campaign.
func TestCampaignCoverageCorrelation(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	net := rg.Net
	rng := rand.New(rand.NewSource(3))

	original := testkit.Suite{testkit.DefaultRouteCheck{}, testkit.AggCanReachTorLoopback{}}
	final := append(testkit.Suite{testkit.InternalRouteCheck{}, testkit.ConnectedRouteCheck{}}, original...)

	fails := func(s testkit.Suite) func() bool {
		return func() bool {
			for _, res := range s.Run(context.Background(), net, core.Nop{}) {
				if !res.Pass() {
					return true
				}
			}
			return false
		}
	}

	res, err := Run(net, rng, 40, nil, fails(original), fails(final))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 40 || len(res.Detected) != 40 {
		t.Fatalf("campaign shape wrong: %d faults", len(res.Faults))
	}
	// Per fault: the final suite detects whenever the original does.
	for i, row := range res.Detected {
		if row[0] && !row[1] {
			t.Errorf("fault %d (%s) caught by original but not final suite", i, res.Faults[i])
		}
	}
	if res.Totals[1] <= res.Totals[0] {
		t.Errorf("final suite detected %d faults, original %d — coverage should pay off",
			res.Totals[1], res.Totals[0])
	}
	if res.Totals[1] < 20 {
		t.Errorf("final suite detected only %d/40 faults", res.Totals[1])
	}
}

// TestCampaignLeavesNetworkClean verifies that after a campaign the
// network behaves as before (all faults reverted).
func TestCampaignLeavesNetworkClean(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := rg.Net
	rng := rand.New(rand.NewSource(4))
	suite := testkit.Suite{testkit.DefaultRouteCheck{}, testkit.InternalRouteCheck{}}
	if _, err := Run(net, rng, 10, nil, func() bool { return false }); err != nil {
		t.Fatal(err)
	}
	for _, res := range suite.Run(context.Background(), net, core.Nop{}) {
		if !res.Pass() {
			t.Errorf("%s fails after campaign: network not clean", res.Name)
		}
	}
}

// TestDetectionRequiresCoverage spot-checks the causal link: a fault on
// a rule the suite covers is detected; a fault on an uncovered rule is
// not.
func TestDetectionRequiresCoverage(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := rg.Net
	rng := rand.New(rand.NewSource(5))
	suite := testkit.Suite{testkit.DefaultRouteCheck{}}

	// Covered rule: a ToR default route. Null-routing it must fail the
	// check.
	var defaultRule, wanRule *netmodel.Rule
	for _, r := range net.Rules {
		if r.Origin == netmodel.OriginDefault && net.Device(r.Device).Role == netmodel.RoleToR && defaultRule == nil {
			defaultRule = r
		}
		if r.Origin == netmodel.OriginWideArea && r.Action.Kind == netmodel.ActForward && wanRule == nil {
			wanRule = r
		}
	}
	if defaultRule == nil || wanRule == nil {
		t.Fatal("fixture missing rules")
	}

	f, err := Inject(net, defaultRule.ID, NullRoute, rng)
	if err != nil {
		t.Fatal(err)
	}
	detected := false
	for _, res := range suite.Run(context.Background(), net, core.Nop{}) {
		if !res.Pass() {
			detected = true
		}
	}
	f.Revert()
	if !detected {
		t.Error("fault on covered default route not detected")
	}

	// Uncovered rule: a wide-area route. DefaultRouteCheck is blind to it.
	f, err = Inject(net, wanRule.ID, NullRoute, rng)
	if err != nil {
		t.Fatal(err)
	}
	detected = false
	for _, res := range suite.Run(context.Background(), net, core.Nop{}) {
		if !res.Pass() {
			detected = true
		}
	}
	f.Revert()
	if detected {
		t.Error("fault on uncovered wide-area route should be invisible to DefaultRouteCheck")
	}
}
