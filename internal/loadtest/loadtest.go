// Package loadtest drives a live yardstick daemon with an open-loop
// request stream and classifies every response, producing the load
// proof for the admission layer: under overload the daemon must answer
// every request with 2xx or a shed (429/503) carrying Retry-After —
// never a connection drop, never a panic 500.
//
// The generator is open-loop on purpose: a ticker fires at the target
// rate regardless of how slowly the server answers, the way a fleet of
// independent reporters actually behaves. (A closed loop that waits for
// each response before sending the next self-throttles exactly when the
// server saturates, which hides the overload the test exists to
// create.) A bounded outstanding-request cap keeps the generator itself
// from hoarding file descriptors; ticks that find the cap exhausted are
// counted as local drops, not sent.
package loadtest

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"yardstick/internal/obs"
)

// Config parameterizes one load run against a live daemon.
type Config struct {
	// BaseURL locates the daemon (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// RPS is the open-loop request rate (default 50).
	RPS float64
	// Duration bounds the generation window (default 10s); in-flight
	// requests are still drained and counted after it ends.
	Duration time.Duration
	// Suites is the suite list each submission asks for (default
	// "default").
	Suites string
	// Workers is the per-job worker count (0 leaves it to the server).
	Workers int
	// MaxOutstanding caps concurrently open requests (default 256).
	MaxOutstanding int
	// RequestTimeout bounds each probe (default 10s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.RPS <= 0 {
		c.RPS = 50
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Suites == "" {
		c.Suites = "default"
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// Totals classifies every tick of the run. Launched = Accepted + Shed +
// Errors5xx + Errors4xx + TransportErrors; Launched + LocalDrops is the
// number of ticks.
type Totals struct {
	// Launched requests actually went on the wire.
	Launched uint64 `json:"launched"`
	// Accepted answers were 2xx (202 for job submissions).
	Accepted uint64 `json:"accepted"`
	// Shed answers were 429 or 503 — the admission layer saying "not
	// now" instead of falling over.
	Shed uint64 `json:"shed"`
	// ShedNoRetryAfter counts sheds missing the Retry-After header; the
	// admission contract says this must be zero.
	ShedNoRetryAfter uint64 `json:"shed_no_retry_after"`
	// Errors5xx counts non-shed 5xx answers (a panic surfacing as 500
	// lands here); the contract says zero.
	Errors5xx uint64 `json:"errors_5xx"`
	// Errors4xx counts caller-bug answers; a correct config keeps this
	// zero.
	Errors4xx uint64 `json:"errors_4xx"`
	// TransportErrors counts requests that never got an HTTP answer
	// (refused, reset, timed out): the "dropped connection" the
	// admission layer exists to prevent.
	TransportErrors uint64 `json:"transport_errors"`
	// LocalDrops counts ticks skipped because MaxOutstanding was
	// exhausted — generator-side backpressure, not a server fault.
	LocalDrops uint64 `json:"local_drops"`
}

// Latency summarizes one response-time distribution, in seconds.
type Latency struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func summarize(h *obs.Histogram) Latency {
	l := Latency{Count: h.Count(), P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99)}
	if l.Count > 0 {
		l.Mean = h.Sum() / float64(l.Count)
	}
	return l
}

// Report is the result of one load run — the content of
// BENCH_service.json.
type Report struct {
	Cores           int     `json:"cores"`
	RPS             float64 `json:"rps"`
	DurationSeconds float64 `json:"duration_seconds"`
	Suites          string  `json:"suites"`
	Totals          Totals  `json:"totals"`
	// Accepted is the latency of admitted submissions — the p99 the
	// SLO is stated against.
	Accepted Latency `json:"accepted_latency_seconds"`
	// Shed is the latency of shed answers; shedding must be cheap, or
	// overload protection is itself an overload.
	Shed Latency `json:"shed_latency_seconds"`
}

// Violations returns the ways the run broke the admission contract
// (empty when the daemon behaved).
func (r Report) Violations() []string {
	var v []string
	if r.Totals.Errors5xx > 0 {
		v = append(v, fmt.Sprintf("%d non-shed 5xx responses", r.Totals.Errors5xx))
	}
	if r.Totals.ShedNoRetryAfter > 0 {
		v = append(v, fmt.Sprintf("%d sheds missing Retry-After", r.Totals.ShedNoRetryAfter))
	}
	if r.Totals.TransportErrors > 0 {
		v = append(v, fmt.Sprintf("%d dropped connections", r.Totals.TransportErrors))
	}
	if r.Totals.Launched == 0 {
		v = append(v, "no requests launched")
	}
	return v
}

// Run executes one open-loop load run. It returns early only when ctx
// is cancelled; server misbehavior is recorded in the report, not
// returned as an error, so a failing daemon still yields a full
// accounting.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	target := cfg.BaseURL + "/jobs?suite=" + url.QueryEscape(cfg.Suites)
	if cfg.Workers > 0 {
		target += "&workers=" + strconv.Itoa(cfg.Workers)
	}
	hc := &http.Client{Timeout: cfg.RequestTimeout}
	reg := obs.NewRegistry()
	accepted := reg.Histogram("accepted_latency_seconds", obs.DefBuckets)
	shed := reg.Histogram("shed_latency_seconds", obs.DefBuckets)

	var t struct {
		launched, accepted, shed, shedNoRA, e5xx, e4xx, transport, localDrops atomic.Uint64
	}
	probe := func() {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, nil)
		if err != nil {
			t.transport.Add(1)
			return
		}
		resp, err := hc.Do(req)
		if err != nil {
			t.transport.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		el := time.Since(start).Seconds()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			t.accepted.Add(1)
			accepted.Observe(el)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			t.shed.Add(1)
			shed.Observe(el)
			if resp.Header.Get("Retry-After") == "" {
				t.shedNoRA.Add(1)
			}
		case resp.StatusCode >= 500:
			t.e5xx.Add(1)
		default:
			t.e4xx.Add(1)
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval < 100*time.Microsecond {
		interval = 100 * time.Microsecond // ~10k RPS generator ceiling
	}
	sem := make(chan struct{}, cfg.MaxOutstanding)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()
	var wg sync.WaitGroup
generate:
	for {
		select {
		case <-ctx.Done():
			break generate
		case <-deadline.C:
			break generate
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				t.launched.Add(1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					probe()
				}()
			default:
				t.localDrops.Add(1)
			}
		}
	}
	wg.Wait() // drain in-flight probes so the totals are complete

	rep := Report{
		Cores:           runtime.NumCPU(),
		RPS:             cfg.RPS,
		DurationSeconds: cfg.Duration.Seconds(),
		Suites:          cfg.Suites,
		Totals: Totals{
			Launched:         t.launched.Load(),
			Accepted:         t.accepted.Load(),
			Shed:             t.shed.Load(),
			ShedNoRetryAfter: t.shedNoRA.Load(),
			Errors5xx:        t.e5xx.Load(),
			Errors4xx:        t.e4xx.Load(),
			TransportErrors:  t.transport.Load(),
			LocalDrops:       t.localDrops.Load(),
		},
		Accepted: summarize(accepted),
		Shed:     summarize(shed),
	}
	return rep, ctx.Err()
}
