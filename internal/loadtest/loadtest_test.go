package loadtest

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"yardstick/internal/service"
	"yardstick/internal/topogen"
)

// TestRunAgainstSaturatedService: a tiny queue with no workers fills
// after two submissions; everything after must shed cleanly. This is
// the acceptance property in miniature — only 2xx and sheds with
// Retry-After, no 5xx, no dropped connections.
func TestRunAgainstSaturatedService(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	quiet := service.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	srv := service.WithNetwork(rg.Net, quiet, service.WithJobQueue(2, time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// No worker pool: the queue cannot drain, so saturation is
	// deterministic.

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      400,
		Duration: 500 * time.Millisecond,
		Suites:   "default",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if rep.Totals.Accepted != 2 {
		t.Errorf("accepted = %d, want exactly the queue depth 2", rep.Totals.Accepted)
	}
	if rep.Totals.Shed == 0 {
		t.Error("no sheds recorded against a saturated queue")
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Errorf("violations = %v, want none", v)
	}
	if rep.Shed.Count != rep.Totals.Shed {
		t.Errorf("shed latency count = %d, want %d", rep.Shed.Count, rep.Totals.Shed)
	}
	if sum := rep.Totals.Accepted + rep.Totals.Shed + rep.Totals.Errors5xx +
		rep.Totals.Errors4xx + rep.Totals.TransportErrors; sum != rep.Totals.Launched {
		t.Errorf("classification does not add up: %+v", rep.Totals)
	}

	// The report is the BENCH_service.json payload; it must marshal.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report marshal: %v", err)
	}
}

// TestViolations flags each way a daemon can break the contract.
func TestViolations(t *testing.T) {
	ok := Report{Totals: Totals{Launched: 10, Accepted: 10}}
	if v := ok.Violations(); len(v) != 0 {
		t.Errorf("clean run violations = %v", v)
	}
	bad := Report{Totals: Totals{Launched: 10, Errors5xx: 1, ShedNoRetryAfter: 2, TransportErrors: 3}}
	if v := bad.Violations(); len(v) != 3 {
		t.Errorf("bad run violations = %v, want 3", v)
	}
	if v := (Report{}).Violations(); len(v) != 1 {
		t.Errorf("empty run violations = %v, want the no-requests flag", v)
	}
}
