package bdd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
)

// arenaFixture builds a manager with some real structure and returns it
// plus a few roots to check functions on.
func arenaFixture(tb testing.TB) (*Manager, []Node) {
	tb.Helper()
	m := New(10)
	rng := rand.New(rand.NewSource(21))
	roots := make([]Node, 8)
	for i := range roots {
		roots[i] = randomNode(m, rng, 40)
	}
	return m, roots
}

func TestArenaRoundTrip(t *testing.T) {
	m, roots := arenaFixture(t)
	var buf bytes.Buffer
	if err := m.WriteArena(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != m.ArenaSize() {
		t.Fatalf("encoded %d bytes, ArenaSize says %d", got, m.ArenaSize())
	}
	if !IsArena(buf.Bytes()) {
		t.Fatal("IsArena rejected a fresh arena")
	}
	got, err := ReadArena(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != m.Size() || got.NumVars() != m.NumVars() {
		t.Fatalf("loaded %d nodes/%d vars, want %d/%d", got.Size(), got.NumVars(), m.Size(), m.NumVars())
	}
	for i := range m.nodes {
		if m.nodes[i] != got.nodes[i] {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
	// The unique table must be rebuilt with identical geometry, so the
	// loaded manager grows exactly like the dumped one.
	if len(got.uniq) != len(m.uniq) || got.uniqUsed != m.uniqUsed {
		t.Fatalf("unique table geometry %d/%d, want %d/%d",
			got.uniqUsed, len(got.uniq), m.uniqUsed, len(m.uniq))
	}
	for _, r := range roots {
		want := enumerate(m, r)
		have := enumerate(got, r)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("root %d: truth tables differ after round trip", r)
			}
		}
	}
	// Hash consing must work on the loaded table: re-making an existing
	// triple lands on the existing index.
	for _, r := range roots {
		if r == False || r == True {
			continue
		}
		nd := got.nodes[r]
		if n := got.mk(nd.level, nd.low, nd.high); n != r {
			t.Fatalf("loaded mk returned %d, want %d", n, r)
		}
	}
}

func TestArenaDecodeRejectsDamage(t *testing.T) {
	m, _ := arenaFixture(t)
	good := m.AppendArena(nil)

	check := func(name string, data []byte, want error) {
		t.Helper()
		got, err := DecodeArena(data)
		if err == nil {
			t.Fatalf("%s: decode accepted corrupt input", name)
		}
		if got != nil {
			t.Fatalf("%s: non-nil manager alongside error", name)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: err = %v, want %v", name, err, want)
		}
	}

	check("empty", nil, ErrArenaFormat)
	check("truncated header", good[:10], ErrArenaFormat)
	check("truncated body", good[:len(good)-20], ErrArenaFormat)
	check("trailing garbage", append(append([]byte(nil), good...), 0xFF), ErrArenaFormat)

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	check("bad magic", bad, ErrArenaFormat)

	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[4:], 99)
	check("future version", bad, ErrArenaVersion)

	// A flipped bit anywhere in the node payload must fail the checksum.
	bad = append([]byte(nil), good...)
	bad[arenaHeaderSize+5] ^= 0x40
	check("bit flip", bad, ErrArenaChecksum)

	// Structural damage with a recomputed (valid) checksum must still be
	// rejected by the invariant checks: here a child pointing at itself.
	bad = append([]byte(nil), good...)
	if m.Size() > 2 {
		binary.LittleEndian.PutUint32(bad[arenaHeaderSize+2*arenaNodeSize+4:], 2) // node 2's low := 2
		body := bad[:len(bad)-arenaCRCSize]
		binary.LittleEndian.PutUint32(bad[len(bad)-arenaCRCSize:], crc32.ChecksumIEEE(body))
		check("self child", bad, ErrArenaFormat)
	}
}

func TestArenaDecodeRejectsDuplicateTriple(t *testing.T) {
	// Hand-build an arena holding the same decision node twice — a table
	// no hash-consed manager can produce.
	var buf []byte
	buf = append(buf, arenaMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, arenaVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 4) // numVars
	buf = binary.LittleEndian.AppendUint64(buf, 4) // two terminals + dup pair
	appendNode := func(level, low, high uint32) {
		buf = binary.LittleEndian.AppendUint32(buf, level)
		buf = binary.LittleEndian.AppendUint32(buf, low)
		buf = binary.LittleEndian.AppendUint32(buf, high)
	}
	appendNode(4, 0, 0)
	appendNode(4, 0, 0)
	appendNode(0, 0, 1)
	appendNode(0, 0, 1)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := DecodeArena(buf); !errors.Is(err, ErrArenaFormat) {
		t.Fatalf("err = %v, want ErrArenaFormat", err)
	}
}

// FuzzArenaDecode mirrors FuzzTraceRoundTrip for the binary codec: any
// input must either be rejected with a typed error or decode into a
// manager whose re-encoding is byte-identical (the arena of a valid
// table is a fixed point). No input may panic.
func FuzzArenaDecode(f *testing.F) {
	m, _ := arenaFixture(f)
	good := m.AppendArena(nil)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(arenaMagic))
	small := New(3)
	small.And(small.Var(0), small.Var(2))
	f.Add(small.AppendArena(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeArena(data)
		if err != nil {
			if !errors.Is(err, ErrArenaFormat) && !errors.Is(err, ErrArenaVersion) && !errors.Is(err, ErrArenaChecksum) {
				t.Fatalf("untyped arena error: %v", err)
			}
			return
		}
		re := got.AppendArena(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted arena is not a fixed point: %d bytes in, %d out", len(data), len(re))
		}
	})
}
