package bdd

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestCloneBitIdentical checks the headline contract: a clone holds the
// same nodes at the same indices with the same table geometry, so node
// references taken before the clone stay valid in it.
func TestCloneBitIdentical(t *testing.T) {
	m := New(12)
	rng := rand.New(rand.NewSource(3))
	roots := make([]Node, 16)
	for i := range roots {
		roots[i] = randomNode(m, rng, 30)
	}
	c := m.Clone()

	if c.Size() != m.Size() {
		t.Fatalf("clone size %d != original %d", c.Size(), m.Size())
	}
	for i := range m.nodes {
		if m.nodes[i] != c.nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, m.nodes[i], c.nodes[i])
		}
	}
	if len(c.uniq) != len(m.uniq) || c.uniqUsed != m.uniqUsed {
		t.Fatalf("unique table geometry differs: %d/%d vs %d/%d",
			c.uniqUsed, len(c.uniq), m.uniqUsed, len(m.uniq))
	}
	for _, r := range roots {
		want := enumerate(m, r)
		got := enumerate(c, r)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("root %d: truth tables differ at %d", r, i)
			}
		}
	}
	// Identical functions built natively in the clone must land on the
	// original's node indices (the unique table carried over).
	for _, r := range roots {
		if r == False || r == True {
			continue
		}
		nd := c.nodes[r]
		if got := c.mk(nd.level, nd.low, nd.high); got != r {
			t.Fatalf("clone mk of existing triple returned %d, want %d", got, r)
		}
	}
}

// TestCloneIndependence proves a worker's ops never leak into the
// canonical space and vice versa: growth on either side is invisible to
// the other.
func TestCloneIndependence(t *testing.T) {
	m := New(10)
	rng := rand.New(rand.NewSource(9))
	base := randomNode(m, rng, 25)
	sizeBefore := m.Size()
	statsBefore := m.Stats()

	c := m.Clone()
	crng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		c.And(base, randomNode(c, crng, 20))
	}
	if c.Size() <= sizeBefore {
		t.Fatalf("clone did not grow (size %d)", c.Size())
	}
	if m.Size() != sizeBefore {
		t.Fatalf("canonical grew from %d to %d through clone ops", sizeBefore, m.Size())
	}
	if got := m.Stats(); got != statsBefore {
		t.Fatalf("canonical stats moved: %+v -> %+v", statsBefore, got)
	}

	// And the other direction: canonical growth is invisible to the clone.
	cSize := c.Size()
	randomNode(m, rng, 25)
	if c.Size() != cSize {
		t.Fatalf("clone grew from %d to %d through canonical ops", cSize, c.Size())
	}
}

// TestCloneDropsBudgetState: budgets, poison, and watched contexts are
// deliberately not snapshotted — a clone is a fresh evaluation space.
func TestCloneDropsBudgetState(t *testing.T) {
	m := New(8)
	m.SetLimits(Limits{MaxNodes: 3})
	err := Guard(func() { m.And(m.Var(0), m.Var(1)) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("fixture: want tripped budget, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.WatchContext(ctx)

	c := m.Clone()
	if c.Limits() != (Limits{}) {
		t.Errorf("clone inherited limits %+v", c.Limits())
	}
	if c.BudgetErr() != nil {
		t.Errorf("clone inherited poison: %v", c.BudgetErr())
	}
	if c.Stats().Ops != 0 {
		t.Errorf("clone inherited op counter %d", c.Stats().Ops)
	}
	// The clone must evaluate freely despite the original being poisoned
	// and watching a dead context.
	if err := Guard(func() { c.And(c.Var(0), c.Var(1)) }); err != nil {
		t.Errorf("clone op failed: %v", err)
	}
}

// TestCloneTransferSkipsSharedPrefix: a transfer between a clone and its
// origin recognizes the index-identical prefix, so pre-clone nodes come
// back unchanged and post-clone nodes land canonically.
func TestCloneTransferSkipsSharedPrefix(t *testing.T) {
	m := New(10)
	rng := rand.New(rand.NewSource(4))
	old := randomNode(m, rng, 30)

	c := m.Clone()
	crng := rand.New(rand.NewSource(5))
	fresh := c.And(old, randomNode(c, crng, 20))

	tr := m.BeginTransfer(c)
	if got := tr.Copy(old); got != old {
		t.Errorf("shared-prefix node %d transferred to %d", old, got)
	}
	opsBefore := m.Stats().Ops
	newNodes := uint64(c.Size() - m.Size()) // post-clone growth in c
	moved := tr.Copy(fresh)
	want := enumerate(c, fresh)
	got := enumerate(m, moved)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("transferred function differs at assignment %d", i)
		}
	}
	// Work charged must be bounded by the nodes created after the clone,
	// not the whole universe.
	if ops := m.Stats().Ops - opsBefore; ops > newNodes {
		t.Errorf("transfer charged %d ops for %d post-clone nodes", ops, newNodes)
	}

	// The reverse direction shares the same prefix.
	back := c.BeginTransfer(m)
	if got := back.Copy(old); got != old {
		t.Errorf("reverse transfer moved shared node %d to %d", old, got)
	}
}

// TestCloneSharesWideCounts: satBig values are immutable shared storage;
// the clone must report identical wide counts without re-deriving them.
func TestCloneSharesWideCounts(t *testing.T) {
	m := New(200)
	// A function of the top variable has 2^199 satisfying assignments —
	// wider than 128 bits, forcing the big.Int path.
	a := m.Var(0)
	want := m.SatCount(a)
	c := m.Clone()
	if got := c.SatCount(a); got.Cmp(want) != 0 {
		t.Errorf("clone SatCount = %v, want %v", got, want)
	}
}
