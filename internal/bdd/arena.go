// Disk-backed arenas: the flat node array as a versioned, checksummed
// little-endian dump.
//
// The node slice IS the manager — the unique table, op cache, and
// counting memos are all derivable from it — so persistence is a bulk
// write of 12-byte records behind a fixed-width header, mmap-able or
// plain-readable. Loading validates structure exhaustively (a corrupt
// or adversarial file must produce a typed error, never a panic or a
// silently wrong table) and rebuilds the unique table by replaying the
// deterministic growth schedule, so a loaded manager is bit-identical
// to the one that was dumped: same nodes at the same indices, same
// table geometry, same future resize points.
//
// Caches and memos are deliberately not serialized — they are pure
// memoization, cold-start cheap, and their contents never affect
// results. Budgets and contexts are not serialized either (see
// clone.go for the same rule on clones).
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "YSB1"
//	4       4     version (currently 1)
//	8       4     numVars
//	12      8     node count (including the two terminals)
//	20      12*n  node records: level u32, low u32, high u32
//	20+12n  4     CRC-32 (IEEE) of everything before it
package bdd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Arena format constants.
const (
	arenaMagic   = "YSB1"
	arenaVersion = 1
	// arenaHeaderSize is magic + version + numVars + node count.
	arenaHeaderSize = 4 + 4 + 4 + 8
	arenaNodeSize   = 12
	arenaCRCSize    = 4
)

// Typed arena decode errors. Every failure to load an arena wraps
// exactly one of these, so callers can distinguish "not an arena"
// (fall back to another codec) from "an arena, but damaged".
var (
	// ErrArenaFormat marks structurally invalid input: wrong magic,
	// truncation, impossible sizes, or node records that violate the
	// BDD invariants (ordering, reduction, canonicity).
	ErrArenaFormat = errors.New("bdd: invalid arena")
	// ErrArenaVersion marks a well-formed arena of an unsupported
	// version.
	ErrArenaVersion = errors.New("bdd: unsupported arena version")
	// ErrArenaChecksum marks an arena whose payload does not match its
	// checksum (bit rot, torn write).
	ErrArenaChecksum = errors.New("bdd: arena checksum mismatch")
)

// ArenaSize returns the encoded size of the manager's arena in bytes.
func (m *Manager) ArenaSize() int {
	return arenaHeaderSize + arenaNodeSize*len(m.nodes) + arenaCRCSize
}

// AppendArena appends the manager's arena encoding to buf and returns
// the extended slice. The dump is O(size) and read-only on m.
func (m *Manager) AppendArena(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, arenaMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, arenaVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.numVars))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m.nodes)))
	for i := range m.nodes {
		nd := &m.nodes[i]
		buf = binary.LittleEndian.AppendUint32(buf, nd.level)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.low))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.high))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// WriteArena writes the manager's arena encoding to w.
func (m *Manager) WriteArena(w io.Writer) error {
	buf := m.AppendArena(make([]byte, 0, m.ArenaSize()))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("bdd: write arena: %w", err)
	}
	return nil
}

// IsArena reports whether data begins with the arena magic — the sniff
// callers use to pick a codec before committing to a full decode.
func IsArena(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == arenaMagic
}

// DecodeArena reconstructs a Manager from an arena encoding. The input
// is validated exhaustively: header sanity, checksum, and per-node BDD
// invariants (children precede parents, levels strictly increase
// downward, no redundant or duplicate nodes). Failures return an error
// wrapping ErrArenaFormat, ErrArenaVersion, or ErrArenaChecksum; no
// input panics, and no corrupt table is ever accepted.
//
// Options apply as in New (the op cache starts cold at the configured
// minimum). The unique table is rebuilt through the same growth
// schedule construction uses, so the loaded manager's geometry — and
// every future resize point — matches the dumped one's exactly.
func DecodeArena(data []byte, opts ...Option) (*Manager, error) {
	if len(data) < arenaHeaderSize+2*arenaNodeSize+arenaCRCSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal arena", ErrArenaFormat, len(data))
	}
	if !IsArena(data) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrArenaFormat, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != arenaVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrArenaVersion, v, arenaVersion)
	}
	numVars := binary.LittleEndian.Uint32(data[8:])
	if numVars > 1<<20 {
		return nil, fmt.Errorf("%w: variable count %d out of range", ErrArenaFormat, numVars)
	}
	count := binary.LittleEndian.Uint64(data[12:])
	if count < 2 || count > uint64(1)<<31 {
		return nil, fmt.Errorf("%w: node count %d out of range", ErrArenaFormat, count)
	}
	want := arenaHeaderSize + arenaNodeSize*int(count) + arenaCRCSize
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d nodes (want %d)", ErrArenaFormat, len(data), count, want)
	}
	body := data[:want-arenaCRCSize]
	if got, sum := binary.LittleEndian.Uint32(data[want-arenaCRCSize:]), crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: crc %08x, computed %08x", ErrArenaChecksum, got, sum)
	}

	m := New(int(numVars), opts...)
	m.nodes = make([]node, 0, count)
	rec := data[arenaHeaderSize:]
	for i := uint64(0); i < count; i++ {
		level := binary.LittleEndian.Uint32(rec[0:])
		low := Node(int32(binary.LittleEndian.Uint32(rec[4:])))
		high := Node(int32(binary.LittleEndian.Uint32(rec[8:])))
		rec = rec[arenaNodeSize:]
		if i < 2 {
			// Terminals: level one past the last variable, no children.
			if level != numVars || low != 0 || high != 0 {
				return nil, fmt.Errorf("%w: node %d is not a terminal (level %d low %d high %d)", ErrArenaFormat, i, level, low, high)
			}
			m.nodes = append(m.nodes, node{level: level})
			continue
		}
		// Decision nodes: ordered (level strictly above both children's),
		// reduced (low != high), and append-ordered (children precede
		// parents, so indices only point downward).
		if level >= numVars {
			return nil, fmt.Errorf("%w: node %d level %d out of range [0,%d)", ErrArenaFormat, i, level, numVars)
		}
		if low < 0 || uint64(low) >= i || high < 0 || uint64(high) >= i {
			return nil, fmt.Errorf("%w: node %d children (%d,%d) not below it", ErrArenaFormat, i, low, high)
		}
		if low == high {
			return nil, fmt.Errorf("%w: node %d is redundant (low == high == %d)", ErrArenaFormat, i, low)
		}
		if m.nodes[low].level <= level || m.nodes[high].level <= level {
			return nil, fmt.Errorf("%w: node %d level %d not above children's (%d,%d)", ErrArenaFormat, i, level,
				m.nodes[low].level, m.nodes[high].level)
		}
		m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	}

	// Rebuild the unique table by replaying the growth schedule: same
	// insertion order, same resize points, same deterministic placement
	// as original construction. A duplicate triple is corruption — the
	// dump came from a hash-consed table, so every triple is unique.
	for i := 2; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if !m.fileNode(Node(i), nd.level, nd.low, nd.high) {
			return nil, fmt.Errorf("%w: node %d duplicates node (%d,%d,%d)", ErrArenaFormat, i, nd.level, nd.low, nd.high)
		}
	}
	m.ensureSatFrac()
	m.ensureSatCnt()
	m.satFracN = 2
	m.satNarrowN = 2
	m.peakNodes = len(m.nodes)
	m.maybeGrowCache()
	return m, nil
}

// ReadArena reads one full arena encoding from r and decodes it.
func ReadArena(r io.Reader, opts ...Option) (*Manager, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bdd: read arena: %w", err)
	}
	return DecodeArena(data, opts...)
}

// fileNode inserts an already-appended node into the unique table,
// growing it on the same 3/4-load schedule as insert. It reports false
// when an identical triple is already filed (corrupt arena).
func (m *Manager) fileNode(n Node, level uint32, low, high Node) bool {
	if (m.uniqUsed+1)*4 > len(m.uniq)*3 {
		m.growUnique()
	}
	h := mix(uint64(level), uint64(uint32(low)), uint64(uint32(high)))
	mask := uint64(len(m.uniq) - 1)
	i := h & mask
	for {
		s := &m.uniq[i]
		if s.node == 0 {
			*s = uniqSlot{hash: h, node: n}
			m.uniqUsed++
			return true
		}
		if s.hash == h {
			nd := &m.nodes[s.node]
			if nd.level == level && nd.low == low && nd.high == high {
				return false
			}
		}
		i = (i + 1) & mask
	}
}
