package bdd

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// enumerate evaluates a on every assignment of its manager's universe,
// returning the truth table as a bit vector. Exact but exponential — test
// universes stay small.
func enumerate(m *Manager, a Node) []bool {
	n := m.NumVars()
	out := make([]bool, 1<<n)
	assign := make([]bool, n)
	for i := range out {
		for v := 0; v < n; v++ {
			assign[v] = i&(1<<v) != 0
		}
		out[i] = m.Eval(a, assign)
	}
	return out
}

func TestCopyFromPreservesFunction(t *testing.T) {
	src := New(8)
	dst := New(8)
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		a := randomNode(src, rng, 8)
		c := dst.CopyFrom(src, a)
		want := enumerate(src, a)
		got := enumerate(dst, c)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyFromCanonicalInDestination(t *testing.T) {
	src := New(6)
	dst := New(6)
	// Build the same function independently in both managers; the transfer
	// must land on the natively built node (hash-consing across origins).
	build := func(m *Manager) Node {
		return m.Or(m.And(m.Var(0), m.Var(2)), m.Diff(m.Var(4), m.Var(1)))
	}
	native := build(dst)
	copied := dst.CopyFrom(src, build(src))
	if native != copied {
		t.Errorf("transferred node %d != natively built node %d", copied, native)
	}
}

func TestCopyFromTerminalsAndSelf(t *testing.T) {
	src := New(4)
	dst := New(4)
	if got := dst.CopyFrom(src, False); got != False {
		t.Errorf("CopyFrom(False) = %d", got)
	}
	if got := dst.CopyFrom(src, True); got != True {
		t.Errorf("CopyFrom(True) = %d", got)
	}
	a := src.And(src.Var(0), src.Var(1))
	if got := src.CopyFrom(src, a); got != a {
		t.Errorf("self-copy changed node: %d != %d", got, a)
	}
}

func TestCopyFromMismatchedUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched variable counts")
		}
	}()
	New(4).CopyFrom(New(5), True)
}

func TestCopyFromChargesDestinationBudget(t *testing.T) {
	src := New(16)
	rng := rand.New(rand.NewSource(7))
	a := randomNode(src, rng, 40)
	if src.NodeCount(a) < 4 {
		t.Fatalf("fixture too small: %d nodes", src.NodeCount(a))
	}
	dst := New(16)
	dst.SetLimits(Limits{MaxNodes: 3})
	err := Guard(func() { dst.CopyFrom(src, a) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if dst.BudgetErr() == nil {
		t.Error("destination should be poisoned after tripped transfer")
	}
	if src.BudgetErr() != nil {
		t.Error("source must not be poisoned by a destination trip")
	}
	// A fresh budget clears the poison and the transfer completes.
	dst.SetLimits(Limits{})
	if err := Guard(func() { dst.CopyFrom(src, a) }); err != nil {
		t.Fatalf("transfer after reset: %v", err)
	}
	if dst.BudgetErr() != nil {
		t.Error("BudgetErr should be nil after SetLimits reset")
	}
}
