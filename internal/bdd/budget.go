// Resource budgets and cancellation for the BDD engine.
//
// BDD operations are deeply recursive, so threading an error return
// through every apply-loop frame would distort the whole engine. Instead
// the Manager converts budget exhaustion and context cancellation into a
// typed panic that unwinds the recursion in one step, and Guard recovers
// exactly that panic at the hdr/core boundary, turning it back into an
// error that wraps ErrBudgetExceeded (or the context's error). Any other
// panic is re-raised untouched.
//
// Once a *budget* trips, the manager is poisoned: the condition that
// tripped it (the node table or the cumulative op count) does not go away
// on its own, so every subsequent charged operation re-raises the same
// error deterministically until SetLimits installs a fresh budget. This
// guarantees that a budget blown inside an isolated test run resurfaces
// at the next guarded phase instead of silently producing a half-built
// result. Context cancellation does not poison: a new context (the next
// request, say) starts clean.
package bdd

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExceeded is wrapped by every error Guard returns for a tripped
// resource budget. Callers test for it with errors.Is.
var ErrBudgetExceeded = errors.New("bdd: resource budget exceeded")

// Limits bounds a Manager's resource consumption. The zero value means
// unlimited on both axes.
type Limits struct {
	// MaxNodes caps the total node table size (including the two
	// terminals). Exceeding it raises a budget panic from node creation.
	MaxNodes int
	// MaxOps caps the number of charged operations (cache consultations
	// in the apply loops) since the limits were installed.
	MaxOps int
}

// budgetPanic is the typed panic payload raised by charge* and recovered
// by Guard. Exported panics would invite recovery at the wrong layer.
type budgetPanic struct{ err error }

// String makes a foreign recover (e.g. a per-test isolation boundary)
// render the carried error instead of a bare struct dump.
func (b budgetPanic) String() string { return b.err.Error() }

// SetLimits installs l, clears any tripped (poisoned) budget state, and
// restarts the operation counter. Passing the zero Limits removes all
// budgets.
func (m *Manager) SetLimits(l Limits) {
	m.limits = l
	m.budgetErr = nil
	m.ops = 0
}

// Limits returns the currently installed limits.
func (m *Manager) Limits() Limits { return m.limits }

// BudgetErr reports whether the manager is poisoned by a tripped budget:
// it returns the error (wrapping ErrBudgetExceeded) that tripped, or nil.
// Callers that recover panics generically — a per-test isolation boundary,
// say — lose the typed budget panic in translation; inspecting BudgetErr
// after the fact recovers the run-level failure. SetLimits clears it.
func (m *Manager) BudgetErr() error { return m.budgetErr }

// WatchContext makes charged operations observe ctx: once ctx is done,
// the next charge check raises a cancellation panic (recovered by Guard
// into an error wrapping ctx.Err()). It returns a restore function that
// reinstates the previous watch; use it as
//
//	defer m.WatchContext(ctx)()
//
// Cancellation does not poison the manager — after restore, operations
// under a live context proceed normally.
func (m *Manager) WatchContext(ctx context.Context) (restore func()) {
	prev := m.ctx
	m.ctx = ctx
	return func() { m.ctx = prev }
}

// Guard runs fn and converts a budget or cancellation panic raised by
// this package into the error it carries; all other panics propagate.
// It is the designated recovery point at the hdr/core boundary: wrap
// each evaluation phase, not individual set operations.
func Guard(fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		bp, ok := r.(budgetPanic)
		if !ok {
			panic(r)
		}
		err = bp.err
	}()
	fn()
	return nil
}

// chargeOp accounts for one apply-loop step. It re-raises a poisoned
// budget, enforces MaxOps, and polls the watched context every 1024 ops
// (polling keeps the per-op cost negligible; cancellation latency is a
// few microseconds of BDD work).
func (m *Manager) chargeOp() {
	if m.budgetErr != nil {
		panic(budgetPanic{m.budgetErr})
	}
	m.ops++
	if m.limits.MaxOps > 0 && m.ops > uint64(m.limits.MaxOps) {
		m.trip(fmt.Errorf("op budget exceeded (%d ops > max %d): %w", m.ops, m.limits.MaxOps, ErrBudgetExceeded))
	}
	if m.ctx != nil && m.ops&1023 == 0 {
		if err := m.ctx.Err(); err != nil {
			panic(budgetPanic{fmt.Errorf("bdd: operation canceled: %w", err)})
		}
	}
}

// chargeNode enforces MaxNodes before a new node is appended.
func (m *Manager) chargeNode() {
	if m.budgetErr != nil {
		panic(budgetPanic{m.budgetErr})
	}
	if m.limits.MaxNodes > 0 && len(m.nodes) >= m.limits.MaxNodes {
		m.trip(fmt.Errorf("node budget exceeded (%d nodes at max %d): %w", len(m.nodes), m.limits.MaxNodes, ErrBudgetExceeded))
	}
}

// trip poisons the manager with err and raises it.
func (m *Manager) trip(err error) {
	m.budgetErr = err
	panic(budgetPanic{err})
}
