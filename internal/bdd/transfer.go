// Cross-manager node transfer.
//
// Parallel analyses use one Manager per goroutine (managers are not safe
// for concurrent use) and then need to merge results into a canonical
// manager. Serializing through cubes (AllSat + re-intersection) is exact
// but can blow up exponentially for sets with many disjoint cubes.
// A Transfer instead walks the source DAG once and rebuilds it node by
// node in the destination, so the transfer is linear in the *shared*
// size of the source representation and lands on the destination's
// canonical nodes directly.
//
// Two costs used to dominate merges and are gone:
//
//   - The memo. A one-shot copy allocated a dense source-sized memo per
//     root; a trace merge copies one root per location, so the memo
//     allocation was paid tens of times per run and was, by itself, most
//     of the parallel engine's bytes/op. A Transfer session holds one
//     memo across every Copy it performs (sound because the source is
//     quiescent for the session and the destination only appends).
//
//   - The shared prefix. When one manager is a Clone of the other,
//     every node below the clone point is index-identical in both (see
//     clone.go) and needs no copying at all: the walk stops at shared
//     nodes, the memo only spans the nodes created after the clone, and
//     a merge costs O(new nodes), not O(universe).
package bdd

import "fmt"

// Transfer is a reusable copy session from one manager into another.
// Create one with BeginTransfer and call Copy once per root; the memo
// persists across calls, so copying many roots (a trace's per-location
// sets) shares the walk.
//
// The session reads src and writes dst, so the caller must hold both
// managers single-threaded for its whole lifetime, and src must not
// grow while the session is live (the usual discipline: workers have
// finished before their results are merged). Charged work — one op per
// distinct newly copied source node, plus node creation — is accounted
// against dst's budget and watched context, not src's.
type Transfer struct {
	src, dst *Manager
	// shared is the index below which src and dst nodes are identical:
	// the clone point when one manager is a clone of the other, or just
	// the two terminals. Copy returns such nodes unchanged.
	shared Node
	// memo maps src node (offset by shared) to its dst image; 0 = unset
	// (a copy result is never a terminal — src nodes are reduced, so
	// they denote non-constant functions).
	memo []Node
}

// BeginTransfer starts a transfer session importing nodes from src.
// Both managers must have the same variable count (the universes must
// agree). When src is a Clone of m (or vice versa), the session skips
// the shared node prefix automatically.
func (m *Manager) BeginTransfer(src *Manager) *Transfer {
	if src == nil {
		panic("bdd: BeginTransfer from nil manager")
	}
	if src.numVars != m.numVars {
		panic(fmt.Sprintf("bdd: BeginTransfer across universes (%d vars -> %d vars)", src.numVars, m.numVars))
	}
	shared := Node(2) // terminals are shared by every pair of managers
	switch {
	case src == m:
		shared = Node(len(src.nodes))
	case src.origin == m:
		// src was cloned from m at originN nodes; everything below that
		// is index-identical. m can only have grown since.
		shared = Node(src.originN)
	case m.origin == src:
		// m was cloned from src; src nodes below the clone point are
		// index-identical in m. Nodes src grew afterwards are not.
		shared = Node(m.originN)
	}
	return &Transfer{
		src:    src,
		dst:    m,
		shared: shared,
		memo:   make([]Node, len(src.nodes)-int(shared)),
	}
}

// Copy imports the boolean function rooted at n in the session's source
// and returns the equivalent node in the destination. The copy is a
// memoized recursive walk rebuilt through the destination's unique
// table, so the result is reduced and hash-consed like any native node —
// semantic equality by node index holds between transferred and locally
// built sets.
func (t *Transfer) Copy(n Node) Node {
	if n < 0 || int(n) >= len(t.src.nodes) {
		panic(fmt.Sprintf("bdd: transfer of invalid node %d", n))
	}
	return t.copyRec(n)
}

func (t *Transfer) copyRec(n Node) Node {
	if n < t.shared {
		// Terminals, or the index-identical prefix of a clone pair.
		return n
	}
	if r := t.memo[n-t.shared]; r != 0 {
		return r
	}
	// One charged op per distinct source node keeps MaxOps and the watched
	// context authoritative over merge work too.
	t.dst.chargeOp()
	nd := t.src.nodes[n]
	low := t.copyRec(nd.low)
	high := t.copyRec(nd.high)
	r := t.dst.mk(nd.level, low, high)
	t.memo[n-t.shared] = r
	return r
}

// CopyFrom imports the boolean function rooted at n in src into m and
// returns the equivalent node in m: a one-shot Transfer. Callers
// copying several roots between the same pair of managers should hold a
// Transfer session instead and amortize the memo.
//
// CopyFrom with src == m returns n unchanged.
func (m *Manager) CopyFrom(src *Manager, n Node) Node {
	if src == nil {
		panic("bdd: CopyFrom from nil manager")
	}
	if src == m {
		return n
	}
	return m.BeginTransfer(src).Copy(n)
}
