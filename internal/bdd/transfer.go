// Cross-manager node transfer.
//
// Parallel analyses use one Manager per goroutine (managers are not safe
// for concurrent use) and then need to merge results into a canonical
// manager. Serializing through cubes (AllSat + re-intersection) is exact
// but can blow up exponentially for sets with many disjoint cubes.
// CopyFrom instead walks the source DAG once and rebuilds it node by node
// in the destination, so the transfer is linear in the *shared* size of
// the source representation and lands on the destination's canonical
// nodes directly.
package bdd

import "fmt"

// CopyFrom imports the boolean function rooted at n in src into m and
// returns the equivalent node in m. Both managers must have the same
// variable count (the universes must agree); the copy is a memoized
// recursive walk rebuilt through m's unique table, so the result is
// reduced and hash-consed like any native node — semantic equality by
// node index holds between transferred and locally built sets.
//
// The copy reads src and writes m, so the caller must hold both managers
// single-threaded for the duration (the usual discipline: workers have
// finished before their results are merged). Charged work (one op per
// distinct source node, plus node creation) is accounted against m's
// budget and watched context, not src's.
//
// CopyFrom with src == m returns n unchanged.
func (m *Manager) CopyFrom(src *Manager, n Node) Node {
	if src == nil {
		panic("bdd: CopyFrom from nil manager")
	}
	if src == m {
		return n
	}
	if src.numVars != m.numVars {
		panic(fmt.Sprintf("bdd: CopyFrom across universes (%d vars -> %d vars)", src.numVars, m.numVars))
	}
	if n < 0 || int(n) >= len(src.nodes) {
		panic(fmt.Sprintf("bdd: CopyFrom of invalid node %d", n))
	}
	// Source-node-indexed dense memo: slot 0 (a copy result is never a
	// terminal — src nodes are reduced, so they denote non-constant
	// functions) doubles as the unset sentinel.
	memo := make([]Node, len(src.nodes))
	return m.copyRec(src, n, memo)
}

func (m *Manager) copyRec(src *Manager, n Node, memo []Node) Node {
	if n == False || n == True {
		return n
	}
	if r := memo[n]; r != 0 {
		return r
	}
	// One charged op per distinct source node keeps MaxOps and the watched
	// context authoritative over merge work too.
	m.chargeOp()
	nd := src.nodes[n]
	low := m.copyRec(src, nd.low, memo)
	high := m.copyRec(src, nd.high, memo)
	r := m.mk(nd.level, low, high)
	memo[n] = r
	return r
}
