// Package bdd implements reduced ordered binary decision diagrams (BDDs).
//
// BDDs canonically represent boolean functions over a fixed, ordered set of
// variables. Yardstick uses them to encode packet sets: a packet is an
// assignment to the header bits, and a set of packets is the boolean
// function that is true exactly on the packets in the set (see
// internal/hdr). The design follows the classic hash-consed unique-table
// construction: every node is unique, so semantic equality of functions is
// pointer (index) equality, and set equality checks are O(1).
//
// The storage layout is flat: nodes live in one slice, the unique table is
// an open-addressed power-of-two array (see table.go), counting memos are
// node-indexed dense arrays (see satcount.go), and the operation cache is a
// direct-mapped array sized by a CacheConfig. No hot-path structure is a Go
// map, and the only per-operation allocations left are the big.Int results
// of wide SatCounts.
//
// A Manager owns all nodes. Managers are not safe for concurrent use;
// analyses that need parallelism should use one Manager per goroutine.
// Nodes are never garbage collected — the working set of a dataplane
// analysis is bounded by the forwarding state, and callers can observe
// growth with Size and start fresh with a new Manager.
package bdd

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// Node is a reference to a BDD node owned by a Manager. The zero Node is
// invalid; the constant terminals are False (0) and True (1).
type Node int32

// Terminal nodes. They belong to every Manager.
const (
	False Node = 0
	True  Node = 1
)

// node is the internal representation: a decision on variable level with
// low (variable=0) and high (variable=1) branches.
type node struct {
	level uint32
	low   Node
	high  Node
}

// opcodes for the operation cache.
const (
	opAnd = iota + 1
	opOr
	opXor
	opDiff
	opNot
	opExists
	opIte
)

// Manager owns a universe of BDD nodes over a fixed number of variables.
type Manager struct {
	numVars int
	nodes   []node

	// Open-addressed unique table (see table.go): power-of-two slot
	// array, linear probing, stored hashes, 3/4 load-factor doubling.
	uniq     []uniqSlot
	uniqUsed int

	// Direct-mapped operation cache, sized by cacheCfg: doubles as the
	// node table grows, up to the configured cap.
	cache    []cacheEntry
	cacheCfg CacheConfig

	// Counting memos (see satcount.go): node-indexed dense arrays grown
	// lazily to the node table, plus a sparse big.Int side table for
	// counts wider than 128 bits.
	satFrac    []float64 // -1 = unset
	satFracN   int
	satState   []uint8 // satUnset / satNarrow / satWide
	satLo      []uint64
	satHi      []uint64
	satNarrowN int
	satBig     map[Node]*big.Int

	// Resource budgets and cancellation (see budget.go). limits bounds
	// node-table growth and apply-loop work; budgetErr, once set, marks
	// the manager poisoned until SetLimits resets it; ctx, when watched,
	// is polled from chargeOp.
	limits    Limits
	budgetErr error
	ctx       context.Context

	// Observability counters (see Stats): charged apply-loop steps,
	// op-cache hits/misses, table-doubling events, and the high-water
	// node count.
	ops          uint64
	cacheHits    uint64
	cacheMisses  uint64
	uniqResizes  uint64
	cacheResizes uint64
	peakNodes    int

	// Clone lineage (see clone.go): the manager this one was cloned
	// from and the node count at clone time. Nodes below originN are
	// index-identical in both managers forever (nodes are never removed
	// or rewritten), which lets cross-manager transfers skip the shared
	// prefix.
	origin  *Manager
	originN int
}

// Option configures a Manager at construction.
type Option func(*Manager)

// WithCacheConfig sets the operation-cache sizing policy (see
// CacheConfig). The zero CacheConfig selects the defaults.
func WithCacheConfig(c CacheConfig) Option {
	return func(m *Manager) { m.cacheCfg = c.normalize() }
}

// New returns a Manager over numVars boolean variables, ordered by index:
// variable 0 is tested first (top of the diagram).
func New(numVars int, opts ...Option) *Manager {
	if numVars < 0 || numVars > 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	m := &Manager{
		numVars: numVars,
		// Terminal nodes occupy indices 0 and 1. Their level is one
		// past the last variable so ordering invariants hold.
		nodes: []node{
			{level: uint32(numVars)},
			{level: uint32(numVars)},
		},
		uniq:     make([]uniqSlot, initialUniqueSlots),
		cacheCfg: CacheConfig{}.normalize(),
		satFrac:  []float64{0, 1},
		satFracN: 2,
		satState: []uint8{satNarrow, satNarrow},
		satLo:    []uint64{0, 1},
		satHi:    []uint64{0, 0},
	}
	for _, o := range opts {
		o(m)
	}
	m.cache = make([]cacheEntry, m.cacheCfg.MinSlots)
	return m
}

// NumVars returns the number of variables in the manager's universe.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of allocated nodes, including the two
// terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Stats reports manager health for observability: allocated nodes,
// unique-table geometry, memoization-table sizes. Analyses that watch
// Nodes grow without bound should start a fresh Manager (nodes are never
// garbage collected). The cache and op counters support budget tuning: a
// low hit rate or an Ops count near Limits.MaxOps explains a degraded
// (budget-limited) run.
type Stats struct {
	Nodes          int
	UniqueEntries  int
	SatFracEntries int
	SatCntEntries  int
	// UniqueSlots is the unique table's capacity; UniqueLoad is
	// UniqueEntries/UniqueSlots, kept below 0.75 by resizing.
	UniqueSlots int
	UniqueLoad  float64
	// CacheSlots is the op cache's current size (it grows with the node
	// table up to the configured cap).
	CacheSlots int
	// PeakNodes is the high-water node count — with never-collected
	// nodes it equals Nodes, but it survives intent: budget tuning reads
	// the peak even if future managers compact.
	PeakNodes int
	// Ops counts charged apply-loop steps since the last SetLimits.
	Ops uint64
	// CacheHits and CacheMisses count op-cache consultations.
	CacheHits   uint64
	CacheMisses uint64
	// UniqueResizes and CacheResizes count table-doubling events since
	// construction — a resize storm explains a latency spike better than
	// any average.
	UniqueResizes uint64
	CacheResizes  uint64
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	peak := m.peakNodes
	if n := len(m.nodes); n > peak {
		peak = n
	}
	return Stats{
		Nodes:          len(m.nodes),
		UniqueEntries:  m.uniqUsed,
		SatFracEntries: m.satFracN,
		SatCntEntries:  m.satNarrowN + len(m.satBig),
		UniqueSlots:    len(m.uniq),
		UniqueLoad:     float64(m.uniqUsed) / float64(len(m.uniq)),
		CacheSlots:     len(m.cache),
		PeakNodes:      peak,
		Ops:            m.ops,
		CacheHits:      m.cacheHits,
		CacheMisses:    m.cacheMisses,
		UniqueResizes:  m.uniqResizes,
		CacheResizes:   m.cacheResizes,
	}
}

// Delta returns the counter movement from prev to s — the per-stage
// numbers a span records. Monotonic fields subtract; if a counter went
// backwards (SetLimits resets Ops between stages), the current value is
// taken as the whole delta rather than wrapping. Gauge-like fields
// (Nodes, PeakNodes, table geometry) carry the current value.
func (s Stats) Delta(prev Stats) Stats {
	sub := func(cur, old uint64) uint64 {
		if cur < old {
			return cur
		}
		return cur - old
	}
	d := s
	d.Ops = sub(s.Ops, prev.Ops)
	d.CacheHits = sub(s.CacheHits, prev.CacheHits)
	d.CacheMisses = sub(s.CacheMisses, prev.CacheMisses)
	d.UniqueResizes = sub(s.UniqueResizes, prev.UniqueResizes)
	d.CacheResizes = sub(s.CacheResizes, prev.CacheResizes)
	return d
}

// level returns the decision level of n.
func (m *Manager) level(n Node) uint32 { return m.nodes[n].level }

// Var returns the function that is true iff variable v is 1.
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(uint32(v), False, True)
}

// NVar returns the function that is true iff variable v is 0.
func (m *Manager) NVar(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(uint32(v), True, False)
}

// And returns the conjunction a ∧ b.
func (m *Manager) And(a, b Node) Node {
	switch {
	case a == b:
		return a
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	}
	if a > b {
		a, b = b, a
	}
	h := cacheHash(opAnd, a, b, 0)
	if r, ok := m.cacheLookup(h, opAnd, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.And(al, bl), m.And(ah, bh))
	m.cacheStore(h, opAnd, a, b, 0, r)
	return r
}

// Or returns the disjunction a ∨ b.
func (m *Manager) Or(a, b Node) Node {
	switch {
	case a == b:
		return a
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	}
	if a > b {
		a, b = b, a
	}
	h := cacheHash(opOr, a, b, 0)
	if r, ok := m.cacheLookup(h, opOr, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.Or(al, bl), m.Or(ah, bh))
	m.cacheStore(h, opOr, a, b, 0, r)
	return r
}

// Xor returns the exclusive or a ⊕ b.
func (m *Manager) Xor(a, b Node) Node {
	switch {
	case a == b:
		return False
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return m.Not(b)
	case b == True:
		return m.Not(a)
	}
	if a > b {
		a, b = b, a
	}
	h := cacheHash(opXor, a, b, 0)
	if r, ok := m.cacheLookup(h, opXor, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.Xor(al, bl), m.Xor(ah, bh))
	m.cacheStore(h, opXor, a, b, 0, r)
	return r
}

// Diff returns the difference a ∧ ¬b.
func (m *Manager) Diff(a, b Node) Node {
	switch {
	case a == b || a == False:
		return False
	case b == False:
		return a
	case b == True:
		return False
	case a == True:
		return m.Not(b)
	}
	h := cacheHash(opDiff, a, b, 0)
	if r, ok := m.cacheLookup(h, opDiff, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.Diff(al, bl), m.Diff(ah, bh))
	m.cacheStore(h, opDiff, a, b, 0, r)
	return r
}

// Not returns the complement ¬a.
func (m *Manager) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	h := cacheHash(opNot, a, 0, 0)
	if r, ok := m.cacheLookup(h, opNot, a, 0, 0); ok {
		return r
	}
	nd := m.nodes[a]
	r := m.mk(nd.level, m.Not(nd.low), m.Not(nd.high))
	m.cacheStore(h, opNot, a, 0, 0, r)
	return r
}

// Ite returns if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	key := cacheHash(opIte, f, g, h)
	if r, ok := m.cacheLookup(key, opIte, f, g, h); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	if l := m.level(h); l < level {
		level = l
	}
	fl, fh := m.cofactorAt(f, level)
	gl, gh := m.cofactorAt(g, level)
	hl, hh := m.cofactorAt(h, level)
	r := m.mk(level, m.Ite(fl, gl, hl), m.Ite(fh, gh, hh))
	m.cacheStore(key, opIte, f, g, h, r)
	return r
}

// cofactors returns the co-factors of a and b with respect to the smaller
// of their top levels, plus that level.
func (m *Manager) cofactors(a, b Node) (al, ah, bl, bh Node, level uint32) {
	la, lb := m.level(a), m.level(b)
	level = la
	if lb < level {
		level = lb
	}
	al, ah = m.cofactorAt(a, level)
	bl, bh = m.cofactorAt(b, level)
	return
}

// cofactorAt returns the co-factors of n with respect to level. If n's top
// variable is below level, n is independent of it and both co-factors are n.
func (m *Manager) cofactorAt(n Node, level uint32) (low, high Node) {
	nd := m.nodes[n]
	if nd.level != level {
		return n, n
	}
	return nd.low, nd.high
}

// Exists existentially quantifies away every variable for which vars[v] is
// true: the result is true on an assignment iff some setting of the
// quantified variables makes a true.
func (m *Manager) Exists(a Node, vars []bool) Node {
	if len(vars) != m.numVars {
		panic(fmt.Sprintf("bdd: Exists var mask length %d, want %d", len(vars), m.numVars))
	}
	// The cache key folds the identity of the mask via a cube node: build
	// the conjunction of quantified variables once and use it as operand b.
	cube := True
	for v := m.numVars - 1; v >= 0; v-- {
		if vars[v] {
			cube = m.mk(uint32(v), False, cube)
		}
	}
	return m.existsRec(a, cube)
}

// ExistsCube is like Exists but takes the variables as a positive cube
// (a conjunction of variables, e.g. built with Cube).
func (m *Manager) ExistsCube(a, cube Node) Node {
	return m.existsRec(a, cube)
}

func (m *Manager) existsRec(a, cube Node) Node {
	if a == False || a == True || cube == True {
		return a
	}
	// Skip cube variables above a's level.
	for cube != True && m.level(cube) < m.level(a) {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return a
	}
	h := cacheHash(opExists, a, cube, 0)
	if r, ok := m.cacheLookup(h, opExists, a, cube, 0); ok {
		return r
	}
	nd := m.nodes[a]
	var r Node
	if nd.level == m.level(cube) {
		// Quantify this variable: OR the branches.
		low := m.existsRec(nd.low, m.nodes[cube].high)
		high := m.existsRec(nd.high, m.nodes[cube].high)
		r = m.Or(low, high)
	} else {
		low := m.existsRec(nd.low, cube)
		high := m.existsRec(nd.high, cube)
		r = m.mk(nd.level, low, high)
	}
	m.cacheStore(h, opExists, a, cube, 0, r)
	return r
}

// Cube returns the conjunction of the given variables (each set to 1).
func (m *Manager) Cube(vars []int) Node {
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if v < 0 || v >= m.numVars {
			panic(fmt.Sprintf("bdd: variable %d out of range", v))
		}
		r = m.And(r, m.Var(v))
	}
	return r
}

// Restrict fixes variable v to the given value in a.
func (m *Manager) Restrict(a Node, v int, value bool) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.restrictRec(a, uint32(v), value)
}

func (m *Manager) restrictRec(a Node, level uint32, value bool) Node {
	nd := m.nodes[a]
	if nd.level > level {
		return a
	}
	if nd.level == level {
		if value {
			return nd.high
		}
		return nd.low
	}
	// No operation cache here: restriction is rare and shallow in our
	// workloads (single-field rewrites).
	low := m.restrictRec(nd.low, level, value)
	high := m.restrictRec(nd.high, level, value)
	return m.mk(nd.level, low, high)
}

// AnySat returns one satisfying assignment of a as a full-width assignment
// (len = NumVars); unconstrained variables are reported as false. The
// second result is false when a is unsatisfiable.
func (m *Manager) AnySat(a Node) ([]bool, bool) {
	if a == False {
		return nil, false
	}
	assign := make([]bool, m.numVars)
	for a != True {
		nd := m.nodes[a]
		if nd.low != False {
			a = nd.low
		} else {
			assign[nd.level] = true
			a = nd.high
		}
	}
	return assign, true
}

// AllSat invokes fn for every satisfying cube of a. A cube is reported as
// a slice of ternary values: 0 (variable is 0), 1 (variable is 1),
// 2 (don't care). The slice is reused between calls; callers must copy it
// to retain it. fn returning false stops the iteration early.
func (m *Manager) AllSat(a Node, fn func(cube []byte) bool) {
	cube := make([]byte, m.numVars)
	for i := range cube {
		cube[i] = 2
	}
	m.allSatRec(a, cube, fn)
}

func (m *Manager) allSatRec(a Node, cube []byte, fn func([]byte) bool) bool {
	if a == False {
		return true
	}
	if a == True {
		return fn(cube)
	}
	nd := m.nodes[a]
	cube[nd.level] = 0
	if !m.allSatRec(nd.low, cube, fn) {
		cube[nd.level] = 2
		return false
	}
	cube[nd.level] = 1
	if !m.allSatRec(nd.high, cube, fn) {
		cube[nd.level] = 2
		return false
	}
	cube[nd.level] = 2
	return true
}

// bitset is a node- or variable-indexed visited set for DAG walks,
// matching the kernel's dense-array idiom.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// Support returns the set of variables a depends on, in increasing order.
func (m *Manager) Support(a Node) []int {
	seen := newBitset(len(m.nodes))
	vars := newBitset(m.numVars + 1)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || seen.has(int(n)) {
			return
		}
		seen.set(int(n))
		nd := m.nodes[n]
		vars.set(int(nd.level))
		walk(nd.low)
		walk(nd.high)
	}
	walk(a)
	// Bitset iteration yields the variables already sorted.
	var out []int
	for w, word := range vars {
		for word != 0 {
			v := w*64 + bits.TrailingZeros64(word)
			if v < m.numVars {
				out = append(out, v)
			}
			word &= word - 1
		}
	}
	return out
}

// Eval evaluates a under a full assignment.
func (m *Manager) Eval(a Node, assign []bool) bool {
	if len(assign) != m.numVars {
		panic(fmt.Sprintf("bdd: Eval assignment length %d, want %d", len(assign), m.numVars))
	}
	for a != False && a != True {
		nd := m.nodes[a]
		if assign[nd.level] {
			a = nd.high
		} else {
			a = nd.low
		}
	}
	return a == True
}

// NodeCount returns the number of distinct nodes reachable from a,
// excluding terminals — a measure of the representation size of one set.
func (m *Manager) NodeCount(a Node) int {
	seen := newBitset(len(m.nodes))
	count := 0
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || seen.has(int(n)) {
			return
		}
		seen.set(int(n))
		count++
		walk(m.nodes[n].low)
		walk(m.nodes[n].high)
	}
	walk(a)
	return count
}

// SatFractionOf is a convenience returning the fraction of b's assignments
// that also satisfy a, i.e. |a∧b| / |b|. Returns 0 when b is empty.
func (m *Manager) SatFractionOf(a, b Node) float64 {
	fb := m.SatFraction(b)
	if fb == 0 {
		return 0
	}
	f := m.SatFraction(m.And(a, b)) / fb
	// Guard against float rounding pushing the ratio out of [0,1].
	return math.Min(1, math.Max(0, f))
}
