// Package bdd implements reduced ordered binary decision diagrams (BDDs).
//
// BDDs canonically represent boolean functions over a fixed, ordered set of
// variables. Yardstick uses them to encode packet sets: a packet is an
// assignment to the header bits, and a set of packets is the boolean
// function that is true exactly on the packets in the set (see
// internal/hdr). The design follows the classic hash-consed unique-table
// construction: every node is unique, so semantic equality of functions is
// pointer (index) equality, and set equality checks are O(1).
//
// A Manager owns all nodes. Managers are not safe for concurrent use;
// analyses that need parallelism should use one Manager per goroutine.
// Nodes are never garbage collected — the working set of a dataplane
// analysis is bounded by the forwarding state, and callers can observe
// growth with Size and start fresh with a new Manager.
package bdd

import (
	"context"
	"fmt"
	"math"
	"math/big"
)

// Node is a reference to a BDD node owned by a Manager. The zero Node is
// invalid; the constant terminals are False (0) and True (1).
type Node int32

// Terminal nodes. They belong to every Manager.
const (
	False Node = 0
	True  Node = 1
)

// node is the internal representation: a decision on variable level with
// low (variable=0) and high (variable=1) branches.
type node struct {
	level uint32
	low   Node
	high  Node
}

// opcodes for the operation cache.
const (
	opAnd = iota + 1
	opOr
	opXor
	opDiff
	opNot
	opExists
	opIte
)

// cacheEntry is one slot of the direct-mapped operation cache.
type cacheEntry struct {
	op      uint32
	a, b, c Node
	result  Node
}

const defaultCacheSize = 1 << 16 // slots; must be a power of two

// Manager owns a universe of BDD nodes over a fixed number of variables.
type Manager struct {
	numVars int
	nodes   []node
	unique  map[uint64]Node
	cache   []cacheEntry

	// satFrac memoizes SatFraction per node.
	satFrac map[Node]float64
	// satCount memoizes exact model counts per node (level-adjusted to
	// the node's own level; see satCountRec).
	satCount map[Node]*big.Int

	// Resource budgets and cancellation (see budget.go). limits bounds
	// node-table growth and apply-loop work; budgetErr, once set, marks
	// the manager poisoned until SetLimits resets it; ctx, when watched,
	// is polled from chargeOp.
	limits    Limits
	budgetErr error
	ctx       context.Context

	// Observability counters (see Stats): charged apply-loop steps,
	// op-cache hits/misses, and the high-water node count.
	ops         uint64
	cacheHits   uint64
	cacheMisses uint64
	peakNodes   int
}

// New returns a Manager over numVars boolean variables, ordered by index:
// variable 0 is tested first (top of the diagram).
func New(numVars int) *Manager {
	if numVars < 0 || numVars > 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	m := &Manager{
		numVars: numVars,
		// Terminal nodes occupy indices 0 and 1. Their level is one
		// past the last variable so ordering invariants hold.
		nodes: []node{
			{level: uint32(numVars)},
			{level: uint32(numVars)},
		},
		unique:   make(map[uint64]Node, 1024),
		cache:    make([]cacheEntry, defaultCacheSize),
		satFrac:  map[Node]float64{False: 0, True: 1},
		satCount: make(map[Node]*big.Int),
	}
	return m
}

// NumVars returns the number of variables in the manager's universe.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of allocated nodes, including the two
// terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Stats reports manager health for observability: allocated nodes and
// memoization-table sizes. Analyses that watch Nodes grow without bound
// should start a fresh Manager (nodes are never garbage collected).
// The cache and op counters support budget tuning: a low hit rate or an
// Ops count near Limits.MaxOps explains a degraded (budget-limited) run.
type Stats struct {
	Nodes          int
	UniqueEntries  int
	SatFracEntries int
	SatCntEntries  int
	// PeakNodes is the high-water node count — with never-collected
	// nodes it equals Nodes, but it survives intent: budget tuning reads
	// the peak even if future managers compact.
	PeakNodes int
	// Ops counts charged apply-loop steps since the last SetLimits.
	Ops uint64
	// CacheHits and CacheMisses count op-cache consultations.
	CacheHits   uint64
	CacheMisses uint64
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	peak := m.peakNodes
	if n := len(m.nodes); n > peak {
		peak = n
	}
	return Stats{
		Nodes:          len(m.nodes),
		UniqueEntries:  len(m.unique),
		SatFracEntries: len(m.satFrac),
		SatCntEntries:  len(m.satCount),
		PeakNodes:      peak,
		Ops:            m.ops,
		CacheHits:      m.cacheHits,
		CacheMisses:    m.cacheMisses,
	}
}

// level returns the decision level of n.
func (m *Manager) level(n Node) uint32 { return m.nodes[n].level }

// mk returns the canonical node (level, low, high), applying the two
// reduction rules: redundant tests collapse, and structurally equal nodes
// share storage.
func (m *Manager) mk(level uint32, low, high Node) Node {
	if low == high {
		return low
	}
	// The unique table is keyed by a 64-bit hash of (level, low, high);
	// collisions (different triples, same hash) fall back to a salted
	// probe chain, so lookups always compare the full triple.
	key := mix(uint64(level), uint64(uint32(low)), uint64(uint32(high)))
	if n, ok := m.unique[key]; ok {
		nd := m.nodes[n]
		if nd.level == level && nd.low == low && nd.high == high {
			return n
		}
		// Hash collision: fall back to linear scan with salted keys.
		for salt := uint64(1); ; salt++ {
			k2 := key ^ mix(salt, salt<<7, salt<<13)
			n2, ok2 := m.unique[k2]
			if !ok2 {
				return m.insert(k2, level, low, high)
			}
			nd2 := m.nodes[n2]
			if nd2.level == level && nd2.low == low && nd2.high == high {
				return n2
			}
		}
	}
	return m.insert(key, level, low, high)
}

func (m *Manager) insert(key uint64, level uint32, low, high Node) Node {
	m.chargeNode()
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	if len(m.nodes) > m.peakNodes {
		m.peakNodes = len(m.nodes)
	}
	m.unique[key] = n
	return n
}

// mix folds three words into a well-distributed 64-bit key
// (splitmix64-style finalizer).
func mix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Var returns the function that is true iff variable v is 1.
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(uint32(v), False, True)
}

// NVar returns the function that is true iff variable v is 0.
func (m *Manager) NVar(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(uint32(v), True, False)
}

// cacheLookup consults the direct-mapped operation cache. Every apply-loop
// step passes through here, so it doubles as the budget charge point.
func (m *Manager) cacheLookup(op uint32, a, b, c Node) (Node, bool) {
	m.chargeOp()
	slot := &m.cache[mix(uint64(op), uint64(uint32(a)), mix(uint64(uint32(b)), uint64(uint32(c)), 0))&(defaultCacheSize-1)]
	if slot.op == op && slot.a == a && slot.b == b && slot.c == c {
		m.cacheHits++
		return slot.result, true
	}
	m.cacheMisses++
	return 0, false
}

func (m *Manager) cacheStore(op uint32, a, b, c, result Node) {
	slot := &m.cache[mix(uint64(op), uint64(uint32(a)), mix(uint64(uint32(b)), uint64(uint32(c)), 0))&(defaultCacheSize-1)]
	*slot = cacheEntry{op: op, a: a, b: b, c: c, result: result}
}

// And returns the conjunction a ∧ b.
func (m *Manager) And(a, b Node) Node {
	switch {
	case a == b:
		return a
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.cacheLookup(opAnd, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.And(al, bl), m.And(ah, bh))
	m.cacheStore(opAnd, a, b, 0, r)
	return r
}

// Or returns the disjunction a ∨ b.
func (m *Manager) Or(a, b Node) Node {
	switch {
	case a == b:
		return a
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.cacheLookup(opOr, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.Or(al, bl), m.Or(ah, bh))
	m.cacheStore(opOr, a, b, 0, r)
	return r
}

// Xor returns the exclusive or a ⊕ b.
func (m *Manager) Xor(a, b Node) Node {
	switch {
	case a == b:
		return False
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return m.Not(b)
	case b == True:
		return m.Not(a)
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.cacheLookup(opXor, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.Xor(al, bl), m.Xor(ah, bh))
	m.cacheStore(opXor, a, b, 0, r)
	return r
}

// Diff returns the difference a ∧ ¬b.
func (m *Manager) Diff(a, b Node) Node {
	switch {
	case a == b || a == False:
		return False
	case b == False:
		return a
	case b == True:
		return False
	case a == True:
		return m.Not(b)
	}
	if r, ok := m.cacheLookup(opDiff, a, b, 0); ok {
		return r
	}
	al, ah, bl, bh, level := m.cofactors(a, b)
	r := m.mk(level, m.Diff(al, bl), m.Diff(ah, bh))
	m.cacheStore(opDiff, a, b, 0, r)
	return r
}

// Not returns the complement ¬a.
func (m *Manager) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.cacheLookup(opNot, a, 0, 0); ok {
		return r
	}
	nd := m.nodes[a]
	r := m.mk(nd.level, m.Not(nd.low), m.Not(nd.high))
	m.cacheStore(opNot, a, 0, 0, r)
	return r
}

// Ite returns if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	if r, ok := m.cacheLookup(opIte, f, g, h); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	if l := m.level(h); l < level {
		level = l
	}
	fl, fh := m.cofactorAt(f, level)
	gl, gh := m.cofactorAt(g, level)
	hl, hh := m.cofactorAt(h, level)
	r := m.mk(level, m.Ite(fl, gl, hl), m.Ite(fh, gh, hh))
	m.cacheStore(opIte, f, g, h, r)
	return r
}

// cofactors returns the co-factors of a and b with respect to the smaller
// of their top levels, plus that level.
func (m *Manager) cofactors(a, b Node) (al, ah, bl, bh Node, level uint32) {
	la, lb := m.level(a), m.level(b)
	level = la
	if lb < level {
		level = lb
	}
	al, ah = m.cofactorAt(a, level)
	bl, bh = m.cofactorAt(b, level)
	return
}

// cofactorAt returns the co-factors of n with respect to level. If n's top
// variable is below level, n is independent of it and both co-factors are n.
func (m *Manager) cofactorAt(n Node, level uint32) (low, high Node) {
	nd := m.nodes[n]
	if nd.level != level {
		return n, n
	}
	return nd.low, nd.high
}

// Exists existentially quantifies away every variable for which vars[v] is
// true: the result is true on an assignment iff some setting of the
// quantified variables makes a true.
func (m *Manager) Exists(a Node, vars []bool) Node {
	if len(vars) != m.numVars {
		panic(fmt.Sprintf("bdd: Exists var mask length %d, want %d", len(vars), m.numVars))
	}
	// The cache key folds the identity of the mask via a cube node: build
	// the conjunction of quantified variables once and use it as operand b.
	cube := True
	for v := m.numVars - 1; v >= 0; v-- {
		if vars[v] {
			cube = m.mk(uint32(v), False, cube)
		}
	}
	return m.existsRec(a, cube)
}

// ExistsCube is like Exists but takes the variables as a positive cube
// (a conjunction of variables, e.g. built with Cube).
func (m *Manager) ExistsCube(a, cube Node) Node {
	return m.existsRec(a, cube)
}

func (m *Manager) existsRec(a, cube Node) Node {
	if a == False || a == True || cube == True {
		return a
	}
	// Skip cube variables above a's level.
	for cube != True && m.level(cube) < m.level(a) {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return a
	}
	if r, ok := m.cacheLookup(opExists, a, cube, 0); ok {
		return r
	}
	nd := m.nodes[a]
	var r Node
	if nd.level == m.level(cube) {
		// Quantify this variable: OR the branches.
		low := m.existsRec(nd.low, m.nodes[cube].high)
		high := m.existsRec(nd.high, m.nodes[cube].high)
		r = m.Or(low, high)
	} else {
		low := m.existsRec(nd.low, cube)
		high := m.existsRec(nd.high, cube)
		r = m.mk(nd.level, low, high)
	}
	m.cacheStore(opExists, a, cube, 0, r)
	return r
}

// Cube returns the conjunction of the given variables (each set to 1).
func (m *Manager) Cube(vars []int) Node {
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if v < 0 || v >= m.numVars {
			panic(fmt.Sprintf("bdd: variable %d out of range", v))
		}
		r = m.And(r, m.Var(v))
	}
	return r
}

// Restrict fixes variable v to the given value in a.
func (m *Manager) Restrict(a Node, v int, value bool) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.restrictRec(a, uint32(v), value)
}

func (m *Manager) restrictRec(a Node, level uint32, value bool) Node {
	nd := m.nodes[a]
	if nd.level > level {
		return a
	}
	if nd.level == level {
		if value {
			return nd.high
		}
		return nd.low
	}
	// No operation cache here: restriction is rare and shallow in our
	// workloads (single-field rewrites).
	low := m.restrictRec(nd.low, level, value)
	high := m.restrictRec(nd.high, level, value)
	return m.mk(nd.level, low, high)
}

// SatFraction returns the fraction of all 2^numVars assignments that
// satisfy a, as a float64 in [0,1]. Under the uniform measure this is
// exact up to float64 rounding and independent of skipped levels:
// frac(n) = (frac(low)+frac(high))/2.
func (m *Manager) SatFraction(a Node) float64 {
	if f, ok := m.satFrac[a]; ok {
		return f
	}
	nd := m.nodes[a]
	f := (m.SatFraction(nd.low) + m.SatFraction(nd.high)) / 2
	m.satFrac[a] = f
	return f
}

// SatCount returns the exact number of satisfying assignments of a over
// the full variable universe.
func (m *Manager) SatCount(a Node) *big.Int {
	c := m.satCountRec(a)
	// satCountRec counts assignments of variables at or below a's level;
	// scale by the variables above it.
	return new(big.Int).Lsh(c, uint(m.level(a)))
}

// satCountRec returns the number of satisfying assignments of the
// variables from a's level (inclusive) to numVars (exclusive).
func (m *Manager) satCountRec(a Node) *big.Int {
	if a == False {
		return big.NewInt(0)
	}
	if a == True {
		return big.NewInt(1)
	}
	if c, ok := m.satCount[a]; ok {
		return c
	}
	nd := m.nodes[a]
	lo := m.satCountRec(nd.low)
	hi := m.satCountRec(nd.high)
	c := new(big.Int).Lsh(lo, uint(m.level(nd.low)-nd.level-1))
	t := new(big.Int).Lsh(hi, uint(m.level(nd.high)-nd.level-1))
	c.Add(c, t)
	m.satCount[a] = c
	return c
}

// AnySat returns one satisfying assignment of a as a full-width assignment
// (len = NumVars); unconstrained variables are reported as false. The
// second result is false when a is unsatisfiable.
func (m *Manager) AnySat(a Node) ([]bool, bool) {
	if a == False {
		return nil, false
	}
	assign := make([]bool, m.numVars)
	for a != True {
		nd := m.nodes[a]
		if nd.low != False {
			a = nd.low
		} else {
			assign[nd.level] = true
			a = nd.high
		}
	}
	return assign, true
}

// AllSat invokes fn for every satisfying cube of a. A cube is reported as
// a slice of ternary values: 0 (variable is 0), 1 (variable is 1),
// 2 (don't care). The slice is reused between calls; callers must copy it
// to retain it. fn returning false stops the iteration early.
func (m *Manager) AllSat(a Node, fn func(cube []byte) bool) {
	cube := make([]byte, m.numVars)
	for i := range cube {
		cube[i] = 2
	}
	m.allSatRec(a, cube, fn)
}

func (m *Manager) allSatRec(a Node, cube []byte, fn func([]byte) bool) bool {
	if a == False {
		return true
	}
	if a == True {
		return fn(cube)
	}
	nd := m.nodes[a]
	cube[nd.level] = 0
	if !m.allSatRec(nd.low, cube, fn) {
		cube[nd.level] = 2
		return false
	}
	cube[nd.level] = 1
	if !m.allSatRec(nd.high, cube, fn) {
		cube[nd.level] = 2
		return false
	}
	cube[nd.level] = 2
	return true
}

// Support returns the set of variables a depends on, in increasing order.
func (m *Manager) Support(a Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || seen[n] {
			return
		}
		seen[n] = true
		nd := m.nodes[n]
		vars[int(nd.level)] = true
		walk(nd.low)
		walk(nd.high)
	}
	walk(a)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	// Insertion sort: support sets are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Eval evaluates a under a full assignment.
func (m *Manager) Eval(a Node, assign []bool) bool {
	if len(assign) != m.numVars {
		panic(fmt.Sprintf("bdd: Eval assignment length %d, want %d", len(assign), m.numVars))
	}
	for a != False && a != True {
		nd := m.nodes[a]
		if assign[nd.level] {
			a = nd.high
		} else {
			a = nd.low
		}
	}
	return a == True
}

// NodeCount returns the number of distinct nodes reachable from a,
// excluding terminals — a measure of the representation size of one set.
func (m *Manager) NodeCount(a Node) int {
	seen := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || seen[n] {
			return
		}
		seen[n] = true
		walk(m.nodes[n].low)
		walk(m.nodes[n].high)
	}
	walk(a)
	return len(seen)
}

// SatFractionOf is a convenience returning the fraction of b's assignments
// that also satisfy a, i.e. |a∧b| / |b|. Returns 0 when b is empty.
func (m *Manager) SatFractionOf(a, b Node) float64 {
	fb := m.SatFraction(b)
	if fb == 0 {
		return 0
	}
	f := m.SatFraction(m.And(a, b)) / fb
	// Guard against float rounding pushing the ratio out of [0,1].
	return math.Min(1, math.Max(0, f))
}
