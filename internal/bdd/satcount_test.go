package bdd

import (
	"math/big"
	"math/rand"
	"testing"
)

// refSatCount is a straightforward all-big.Int model counter used as
// the oracle for the hybrid implementation.
func refSatCount(m *Manager, a Node) *big.Int {
	memo := map[Node]*big.Int{}
	var rec func(Node) *big.Int
	rec = func(n Node) *big.Int {
		if n == False {
			return big.NewInt(0)
		}
		if n == True {
			return big.NewInt(1)
		}
		if c, ok := memo[n]; ok {
			return c
		}
		nd := m.nodes[n]
		c := new(big.Int).Lsh(rec(nd.low), uint(m.level(nd.low)-nd.level-1))
		t := new(big.Int).Lsh(rec(nd.high), uint(m.level(nd.high)-nd.level-1))
		c.Add(c, t)
		memo[n] = c
		return c
	}
	return new(big.Int).Lsh(rec(a), uint(m.level(a)))
}

// cubeOf returns the conjunction of the first k variables — a set of
// exactly 2^(numVars-k) assignments.
func cubeOf(m *Manager, k int) Node {
	vars := make([]int, k)
	for i := range vars {
		vars[i] = i
	}
	return m.Cube(vars)
}

// TestSatCountCrossover exercises the uint64/128-bit fast path and the
// big.Int fallback on either side of both overflow boundaries. In a
// 200-variable universe, a k-variable cube counts 2^(200-k): k=136
// lands exactly on 2^64, k=72 exactly on 2^128 (the first wide count).
func TestSatCountCrossover(t *testing.T) {
	const nv = 200
	m := New(nv)
	for _, k := range []int{140, 137, 136, 135, 100, 73, 72, 71, 40, 1} {
		c := cubeOf(m, k)
		want := new(big.Int).Lsh(big.NewInt(1), uint(nv-k))
		if got := m.SatCount(c); got.Cmp(want) != 0 {
			t.Errorf("k=%d: SatCount = %v, want 2^%d", k, got, nv-k)
		}
		// The memo state must match the width: counts up to 2^127
		// stay narrow; 2^128 itself no longer fits in 128 bits and
		// goes to the big side table.
		// (The root's own memo is level-adjusted: a cube's top node
		// is at level 0, so its stored count equals the full count.)
		if nv-k < 128 {
			if m.satState[c] != satNarrow {
				t.Errorf("k=%d: state = %d, want narrow", k, m.satState[c])
			}
		} else if m.satState[c] != satWide {
			t.Errorf("k=%d: state = %d, want wide", k, m.satState[c])
		}
	}
}

// TestSatCountHybridMatchesReference compares the hybrid counter to an
// all-big.Int oracle on random functions in a universe wide enough that
// narrow and wide nodes coexist in one DAG.
func TestSatCountHybridMatchesReference(t *testing.T) {
	const nv = 160
	m := New(nv)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		a := randomNode(m, rng, 10)
		got := m.SatCount(a)
		want := refSatCount(m, a)
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: SatCount = %v, want %v", trial, got, want)
		}
	}
}

// TestSatCountReturnsFreshValue pins the API contract: the returned
// big.Int is the caller's to mutate, so mutating it must not corrupt
// the memo.
func TestSatCountReturnsFreshValue(t *testing.T) {
	m := New(300)
	c := cubeOf(m, 10) // 2^290: wide path, memoized as big.Int
	first := m.SatCount(c)
	first.SetInt64(-1)
	if again := m.SatCount(c); again.Sign() <= 0 {
		t.Fatalf("memo corrupted by caller mutation: %v", again)
	}
	n := New(100)
	cn := cubeOf(n, 10) // narrow path
	f := n.SatCount(cn)
	f.SetInt64(-1)
	if again := n.SatCount(cn); again.Sign() <= 0 {
		t.Fatalf("narrow memo corrupted by caller mutation: %v", again)
	}
}

// TestSatCountAllocsSteadyState: the V4-width fast path must not
// allocate per node — only the O(1) big.Int wrap of the result.
func TestSatCountAllocsSteadyState(t *testing.T) {
	m := New(104) // IPv4 5-tuple width
	rng := rand.New(rand.NewSource(31))
	a := randomNode(m, rng, 40)
	m.SatCount(a) // fill the memo
	allocs := testing.AllocsPerRun(100, func() { m.SatCount(a) })
	if allocs > 4 {
		t.Errorf("SatCount steady state: %v allocs/op, want <= 4", allocs)
	}
}

func TestShl128(t *testing.T) {
	cases := []struct {
		hi, lo uint64
		s      uint
		rhi    uint64
		rlo    uint64
		ok     bool
	}{
		{0, 1, 0, 0, 1, true},
		{0, 1, 63, 0, 1 << 63, true},
		{0, 1, 64, 1, 0, true},
		{0, 1, 127, 1 << 63, 0, true},
		{0, 1, 128, 0, 0, false},
		{0, 0, 500, 0, 0, true},
		{1, 0, 64, 0, 0, false},
		{0, 3, 127, 0, 0, false},
		{0, 1 << 63, 1, 1, 0, true},
		{1, 1, 63, 1<<63 | (1 >> 1), 1 << 63, true},
	}
	for _, c := range cases {
		rhi, rlo, ok := shl128(c.hi, c.lo, c.s)
		if ok != c.ok || (ok && (rhi != c.rhi || rlo != c.rlo)) {
			t.Errorf("shl128(%d,%d,%d) = %d,%d,%v want %d,%d,%v",
				c.hi, c.lo, c.s, rhi, rlo, ok, c.rhi, c.rlo, c.ok)
		}
	}
}

func TestBigFromU128(t *testing.T) {
	want := new(big.Int).Lsh(big.NewInt(0x1234), 64)
	want.Or(want, new(big.Int).SetUint64(0xfedcba9876543210))
	if got := bigFromU128(0x1234, 0xfedcba9876543210); got.Cmp(want) != 0 {
		t.Errorf("bigFromU128 = %v, want %v", got, want)
	}
	if got := bigFromU128(0, 7); got.Cmp(big.NewInt(7)) != 0 {
		t.Errorf("bigFromU128(0,7) = %v", got)
	}
}

// TestCacheConfig pins the sizing policy: fixed-size configs stay
// fixed, the default grows with the node table, and SetCacheConfig
// raises an undersized cache immediately.
func TestCacheConfig(t *testing.T) {
	fixed := New(16, WithCacheConfig(CacheConfig{MinSlots: 1 << 8, MaxSlots: 1 << 8}))
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 40; i++ {
		randomNode(fixed, rng, 10)
	}
	if got := fixed.Stats().CacheSlots; got != 1<<8 {
		t.Errorf("fixed cache grew to %d slots", got)
	}

	auto := New(16, WithCacheConfig(CacheConfig{MinSlots: 1 << 6, MaxSlots: 1 << 10}))
	for auto.Size() < (1<<10)+10 {
		randomNode(auto, rng, 10)
	}
	if got := auto.Stats().CacheSlots; got != 1<<10 {
		t.Errorf("auto cache = %d slots, want max %d once nodes outgrew it", got, 1<<10)
	}

	auto.SetCacheConfig(CacheConfig{MinSlots: 1 << 12, MaxSlots: 1 << 12})
	if got := auto.Stats().CacheSlots; got != 1<<12 {
		t.Errorf("SetCacheConfig did not grow: %d slots", got)
	}
	if got := auto.CacheConfig().MaxSlots; got != 1<<12 {
		t.Errorf("CacheConfig not updated: %+v", auto.CacheConfig())
	}

	// Growth preserves cached results (entries are re-placed, and fresh
	// lookups on old operands still hit).
	x := auto.And(auto.Var(1), auto.Var(2))
	before := auto.Stats().CacheHits
	auto.SetCacheConfig(CacheConfig{MinSlots: 1 << 13, MaxSlots: 1 << 13})
	if y := auto.And(auto.Var(1), auto.Var(2)); y != x {
		t.Errorf("result changed across cache resize")
	}
	if auto.Stats().CacheHits <= before {
		t.Errorf("cache entries dropped on resize (no hit after growth)")
	}
}

func BenchmarkBDDAnd(b *testing.B) {
	m := New(104)
	rng := rand.New(rand.NewSource(1))
	xs := make([]Node, 128)
	for i := range xs {
		xs[i] = randomNode(m, rng, 12)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.And(xs[i%128], xs[(i+17)%128])
	}
}

func BenchmarkBDDOr(b *testing.B) {
	m := New(104)
	rng := rand.New(rand.NewSource(2))
	xs := make([]Node, 128)
	for i := range xs {
		xs[i] = randomNode(m, rng, 12)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Or(xs[i%128], xs[(i+17)%128])
	}
}

func BenchmarkBDDDiff(b *testing.B) {
	m := New(104)
	rng := rand.New(rand.NewSource(3))
	xs := make([]Node, 128)
	for i := range xs {
		xs[i] = randomNode(m, rng, 12)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Diff(xs[i%128], xs[(i+17)%128])
	}
}

// BenchmarkBDDSatCount measures the hybrid counter on the IPv4-width
// fast path (steady state: memo warm, allocations are the O(1) result
// wrap only).
func BenchmarkBDDSatCount(b *testing.B) {
	m := New(104)
	rng := rand.New(rand.NewSource(4))
	xs := make([]Node, 64)
	for i := range xs {
		xs[i] = randomNode(m, rng, 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SatCount(xs[i%64])
	}
}

// BenchmarkBDDSatCountV6 is the wide-set fallback (296-bit universe).
func BenchmarkBDDSatCountV6(b *testing.B) {
	m := New(296)
	rng := rand.New(rand.NewSource(5))
	xs := make([]Node, 64)
	for i := range xs {
		xs[i] = randomNode(m, rng, 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SatCount(xs[i%64])
	}
}
