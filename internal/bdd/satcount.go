// Model counting over node-indexed dense memo arrays.
//
// SatFraction and SatCount memoize per node. The memos used to be Go
// maps; they are now flat arrays indexed by node, grown (lazily, at
// each counting entry point) to match the node table — the counting
// recursions never create nodes, so the arrays cannot go stale mid-walk.
//
// SatCount is hybrid: per-node counts are kept as unsigned 128-bit
// integers in two parallel uint64 arrays, which is exact for every set
// in a universe of up to 128 variables (the IPv4 5-tuple space is 104
// bits) and allocates nothing per node. Only when a shift or add
// overflows 128 bits — wide IPv6 sets, 296 bits — does the node fall
// back to a big.Int kept in a sparse side map. The public SatCount
// still returns *big.Int (a fresh value the caller may mutate), so the
// fast path costs O(1) allocations per call instead of O(nodes).
package bdd

import (
	"math/big"
	"math/bits"
)

// satCount memo states, per node.
const (
	satUnset  uint8 = iota
	satNarrow       // count fits in 128 bits: satLo/satHi hold it
	satWide         // count overflowed: satBig holds it
)

// ensureSatFrac grows the SatFraction memo to cover every node.
// Unset entries are -1 (fractions live in [0,1]).
func (m *Manager) ensureSatFrac() {
	for len(m.satFrac) < len(m.nodes) {
		m.satFrac = append(m.satFrac, -1)
	}
}

// ensureSatCnt grows the SatCount memo arrays to cover every node.
func (m *Manager) ensureSatCnt() {
	if len(m.satState) >= len(m.nodes) {
		return
	}
	need := len(m.nodes) - len(m.satState)
	m.satState = append(m.satState, make([]uint8, need)...)
	m.satLo = append(m.satLo, make([]uint64, need)...)
	m.satHi = append(m.satHi, make([]uint64, need)...)
}

// SatFraction returns the fraction of all 2^numVars assignments that
// satisfy a, as a float64 in [0,1]. Under the uniform measure this is
// exact up to float64 rounding and independent of skipped levels:
// frac(n) = (frac(low)+frac(high))/2.
func (m *Manager) SatFraction(a Node) float64 {
	m.ensureSatFrac()
	return m.satFracRec(a)
}

func (m *Manager) satFracRec(a Node) float64 {
	if f := m.satFrac[a]; f >= 0 {
		return f
	}
	nd := m.nodes[a]
	f := (m.satFracRec(nd.low) + m.satFracRec(nd.high)) / 2
	m.satFrac[a] = f
	m.satFracN++
	return f
}

// SatCount returns the exact number of satisfying assignments of a over
// the full variable universe. The returned value is fresh; callers may
// mutate it.
func (m *Manager) SatCount(a Node) *big.Int {
	m.ensureSatCnt()
	m.satCountRec(a)
	// satCountRec counts assignments of variables at or below a's level;
	// scale by the variables above it.
	shift := uint(m.level(a))
	if m.satState[a] == satNarrow {
		if hi, lo, ok := shl128(m.satHi[a], m.satLo[a], shift); ok {
			return bigFromU128(hi, lo)
		}
	}
	return new(big.Int).Lsh(m.bigCount(a), shift)
}

// satCountRec fills the memo for a: the number of satisfying
// assignments of the variables from a's level (inclusive) to numVars
// (exclusive).
func (m *Manager) satCountRec(a Node) {
	if m.satState[a] != satUnset {
		return
	}
	nd := m.nodes[a]
	m.satCountRec(nd.low)
	m.satCountRec(nd.high)
	sl := uint(m.level(nd.low) - nd.level - 1)
	sh := uint(m.level(nd.high) - nd.level - 1)
	if m.satState[nd.low] == satNarrow && m.satState[nd.high] == satNarrow {
		lhi, llo, ok1 := shl128(m.satHi[nd.low], m.satLo[nd.low], sl)
		hhi, hlo, ok2 := shl128(m.satHi[nd.high], m.satLo[nd.high], sh)
		if ok1 && ok2 {
			if hi, lo, ok := add128(lhi, llo, hhi, hlo); ok {
				m.satHi[a], m.satLo[a] = hi, lo
				m.satState[a] = satNarrow
				m.satNarrowN++
				return
			}
		}
	}
	// Wide path: assemble from the children's counts as big.Ints.
	c := new(big.Int).Lsh(m.bigCount(nd.low), sl)
	t := new(big.Int).Lsh(m.bigCount(nd.high), sh)
	c.Add(c, t)
	if m.satBig == nil {
		m.satBig = make(map[Node]*big.Int)
	}
	m.satBig[a] = c
	m.satState[a] = satWide
}

// bigCount returns a's memoized count as a big.Int (shared storage for
// wide nodes — callers must not mutate it; use via Lsh/Add into a fresh
// destination). The memo must already be filled.
func (m *Manager) bigCount(a Node) *big.Int {
	if m.satState[a] == satWide {
		return m.satBig[a]
	}
	return bigFromU128(m.satHi[a], m.satLo[a])
}

// shl128 shifts the 128-bit value (hi, lo) left by s, reporting whether
// the result is still exact (no bits lost).
func shl128(hi, lo uint64, s uint) (rhi, rlo uint64, ok bool) {
	switch {
	case s == 0:
		return hi, lo, true
	case s >= 128:
		return 0, 0, hi == 0 && lo == 0
	case s >= 64:
		if hi != 0 || lo>>(128-s) != 0 {
			return 0, 0, false
		}
		return lo << (s - 64), 0, true
	default:
		if hi>>(64-s) != 0 {
			return 0, 0, false
		}
		return hi<<s | lo>>(64-s), lo << s, true
	}
}

// add128 adds two 128-bit values, reporting whether the sum fits.
func add128(ahi, alo, bhi, blo uint64) (hi, lo uint64, ok bool) {
	lo, carry := bits.Add64(alo, blo, 0)
	hi, carry = bits.Add64(ahi, bhi, carry)
	return hi, lo, carry == 0
}

// bigFromU128 builds a fresh big.Int from a 128-bit value.
func bigFromU128(hi, lo uint64) *big.Int {
	if hi == 0 {
		return new(big.Int).SetUint64(lo)
	}
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(hi >> (56 - 8*i))
		buf[8+i] = byte(lo >> (56 - 8*i))
	}
	return new(big.Int).SetBytes(buf[:])
}
