package bdd

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New(4)
	if m.SatFraction(False) != 0 {
		t.Errorf("SatFraction(False) = %v, want 0", m.SatFraction(False))
	}
	if m.SatFraction(True) != 1 {
		t.Errorf("SatFraction(True) = %v, want 1", m.SatFraction(True))
	}
	if got := m.SatCount(True); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("SatCount(True) = %v, want 16", got)
	}
	if got := m.SatCount(False); got.Sign() != 0 {
		t.Errorf("SatCount(False) = %v, want 0", got)
	}
}

func TestVarBasics(t *testing.T) {
	m := New(4)
	x := m.Var(0)
	if m.SatFraction(x) != 0.5 {
		t.Errorf("SatFraction(x0) = %v, want 0.5", m.SatFraction(x))
	}
	if m.And(x, m.Not(x)) != False {
		t.Error("x ∧ ¬x should be False")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Error("x ∨ ¬x should be True")
	}
	if m.NVar(0) != m.Not(x) {
		t.Error("NVar(0) should equal Not(Var(0))")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	// Build the same function two ways; canonical form means equal nodes.
	a := m.And(m.Var(0), m.Var(1))
	b := m.Not(m.Or(m.Not(m.Var(0)), m.Not(m.Var(1))))
	if a != b {
		t.Errorf("De Morgan: got distinct nodes %d and %d for same function", a, b)
	}
}

// randomNode builds a random function over numVars variables with the given
// number of combining operations.
func randomNode(m *Manager, rng *rand.Rand, ops int) Node {
	n := m.Var(rng.Intn(m.NumVars()))
	if rng.Intn(2) == 0 {
		n = m.Not(n)
	}
	for i := 0; i < ops; i++ {
		other := m.Var(rng.Intn(m.NumVars()))
		if rng.Intn(2) == 0 {
			other = m.Not(other)
		}
		switch rng.Intn(4) {
		case 0:
			n = m.And(n, other)
		case 1:
			n = m.Or(n, other)
		case 2:
			n = m.Xor(n, other)
		case 3:
			n = m.Diff(n, other)
		}
	}
	return n
}

func TestPropertyInvolution(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		a := randomNode(m, rng, 6)
		return m.Not(m.Not(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		a := randomNode(m, rng, 5)
		b := randomNode(m, rng, 5)
		lhs := m.Not(m.And(a, b))
		rhs := m.Or(m.Not(a), m.Not(b))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAbsorptionIdempotence(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		a := randomNode(m, rng, 5)
		b := randomNode(m, rng, 5)
		return m.And(a, a) == a &&
			m.Or(a, a) == a &&
			m.And(a, m.Or(a, b)) == a &&
			m.Or(a, m.And(a, b)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyInclusionExclusion(t *testing.T) {
	m := New(10)
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		a := randomNode(m, rng, 5)
		b := randomNode(m, rng, 5)
		union := m.SatFraction(m.Or(a, b))
		inter := m.SatFraction(m.And(a, b))
		sum := m.SatFraction(a) + m.SatFraction(b)
		return math.Abs(union+inter-sum) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDiffXor(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		a := randomNode(m, rng, 5)
		b := randomNode(m, rng, 5)
		if m.Diff(a, b) != m.And(a, m.Not(b)) {
			return false
		}
		// a ⊕ b = (a∖b) ∨ (b∖a)
		return m.Xor(a, b) == m.Or(m.Diff(a, b), m.Diff(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIte(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		a := randomNode(m, rng, 4)
		b := randomNode(m, rng, 4)
		c := randomNode(m, rng, 4)
		return m.Ite(a, b, c) == m.Or(m.And(a, b), m.And(m.Not(a), c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSatCountBruteForce verifies exact model counts against enumeration.
func TestSatCountBruteForce(t *testing.T) {
	const nv = 6
	m := New(nv)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomNode(m, rng, 8)
		want := 0
		assign := make([]bool, nv)
		for bits := 0; bits < 1<<nv; bits++ {
			for v := 0; v < nv; v++ {
				assign[v] = bits&(1<<v) != 0
			}
			if m.Eval(a, assign) {
				want++
			}
		}
		if got := m.SatCount(a); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: SatCount = %v, want %d", trial, got, want)
		}
		frac := m.SatFraction(a)
		if math.Abs(frac-float64(want)/(1<<nv)) > 1e-12 {
			t.Fatalf("trial %d: SatFraction = %v, want %v", trial, frac, float64(want)/(1<<nv))
		}
	}
}

func TestExists(t *testing.T) {
	m := New(4)
	// f = x0 ∧ x1. ∃x0.f = x1.
	f := m.And(m.Var(0), m.Var(1))
	mask := make([]bool, 4)
	mask[0] = true
	if got := m.Exists(f, mask); got != m.Var(1) {
		t.Errorf("∃x0.(x0∧x1) = node %d, want x1 node %d", got, m.Var(1))
	}
	// ∃x0,x1.f = True.
	mask[1] = true
	if got := m.Exists(f, mask); got != True {
		t.Errorf("∃x0x1.(x0∧x1) = %d, want True", got)
	}
	// Quantifying an unused variable is identity.
	mask = make([]bool, 4)
	mask[3] = true
	if got := m.Exists(f, mask); got != f {
		t.Errorf("∃x3.(x0∧x1) changed the function")
	}
}

func TestPropertyExistsBruteForce(t *testing.T) {
	const nv = 5
	m := New(nv)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		a := randomNode(m, rng, 6)
		mask := make([]bool, nv)
		for v := range mask {
			mask[v] = rng.Intn(2) == 0
		}
		got := m.Exists(a, mask)
		// Brute force: exists is true where some completion satisfies a.
		assign := make([]bool, nv)
		for bits := 0; bits < 1<<nv; bits++ {
			for v := 0; v < nv; v++ {
				assign[v] = bits&(1<<v) != 0
			}
			want := false
			// Enumerate quantified variables.
			qvars := []int{}
			for v, q := range mask {
				if q {
					qvars = append(qvars, v)
				}
			}
			sub := make([]bool, nv)
			copy(sub, assign)
			for qbits := 0; qbits < 1<<len(qvars); qbits++ {
				for i, v := range qvars {
					sub[v] = qbits&(1<<i) != 0
				}
				if m.Eval(a, sub) {
					want = true
					break
				}
			}
			if m.Eval(got, assign) != want {
				t.Fatalf("trial %d: Exists disagrees with brute force at %v", trial, assign)
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	m := New(4)
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.And(m.Not(m.Var(0)), m.Var(2)))
	if got := m.Restrict(f, 0, true); got != m.Var(1) {
		t.Errorf("Restrict(f, x0=1) wrong")
	}
	if got := m.Restrict(f, 0, false); got != m.Var(2) {
		t.Errorf("Restrict(f, x0=0) wrong")
	}
}

func TestAnySat(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		a := randomNode(m, rng, 6)
		assign, ok := m.AnySat(a)
		if a == False {
			if ok {
				t.Fatal("AnySat(False) returned an assignment")
			}
			continue
		}
		if !ok {
			t.Fatal("AnySat returned none for satisfiable function")
		}
		if !m.Eval(a, assign) {
			t.Fatalf("AnySat returned non-satisfying assignment %v", assign)
		}
	}
	if _, ok := m.AnySat(False); ok {
		t.Error("AnySat(False) should report unsatisfiable")
	}
}

func TestAllSatCoversFunction(t *testing.T) {
	const nv = 5
	m := New(nv)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		a := randomNode(m, rng, 6)
		// Rebuild the function from its cubes.
		rebuilt := False
		m.AllSat(a, func(cube []byte) bool {
			c := True
			for v, val := range cube {
				switch val {
				case 0:
					c = m.And(c, m.NVar(v))
				case 1:
					c = m.And(c, m.Var(v))
				}
			}
			rebuilt = m.Or(rebuilt, c)
			return true
		})
		if rebuilt != a {
			t.Fatalf("trial %d: AllSat cubes do not rebuild the function", trial)
		}
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := New(4)
	f := m.Or(m.Var(0), m.Var(1))
	calls := 0
	m.AllSat(f, func(cube []byte) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("AllSat early stop: got %d calls, want 1", calls)
	}
}

func TestSupport(t *testing.T) {
	m := New(8)
	f := m.And(m.Var(2), m.Or(m.Var(5), m.Not(m.Var(7))))
	got := m.Support(f)
	want := []int{2, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if s := m.Support(True); len(s) != 0 {
		t.Errorf("Support(True) = %v, want empty", s)
	}
}

func TestCube(t *testing.T) {
	m := New(4)
	c := m.Cube([]int{0, 2})
	want := m.And(m.Var(0), m.Var(2))
	if c != want {
		t.Error("Cube([0,2]) != x0∧x2")
	}
	if m.Cube(nil) != True {
		t.Error("Cube(nil) != True")
	}
}

func TestExistsCubeMatchesExists(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		a := randomNode(m, rng, 6)
		mask := make([]bool, 6)
		var vars []int
		for v := range mask {
			if rng.Intn(2) == 0 {
				mask[v] = true
				vars = append(vars, v)
			}
		}
		if m.Exists(a, mask) != m.ExistsCube(a, m.Cube(vars)) {
			t.Fatalf("trial %d: Exists and ExistsCube disagree", trial)
		}
	}
}

func TestNodeCount(t *testing.T) {
	m := New(4)
	if m.NodeCount(True) != 0 {
		t.Error("NodeCount(True) != 0")
	}
	if m.NodeCount(m.Var(0)) != 1 {
		t.Error("NodeCount(x0) != 1")
	}
}

func TestSatFractionOf(t *testing.T) {
	m := New(4)
	a := m.Var(0)           // half the space
	b := m.And(a, m.Var(1)) // quarter of the space, subset of a
	if got := m.SatFractionOf(b, a); got != 0.5 {
		t.Errorf("SatFractionOf(b, a) = %v, want 0.5", got)
	}
	if got := m.SatFractionOf(a, False); got != 0 {
		t.Errorf("SatFractionOf(a, ∅) = %v, want 0", got)
	}
}

func TestManagerGrowth(t *testing.T) {
	m := New(16)
	before := m.Size()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		randomNode(m, rng, 10)
	}
	if m.Size() <= before {
		t.Error("manager did not allocate nodes")
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	m := New(2)
	for _, v := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Var(%d) did not panic", v)
				}
			}()
			m.Var(v)
		}()
	}
}

func BenchmarkAndWide(b *testing.B) {
	m := New(104)
	rng := rand.New(rand.NewSource(99))
	xs := make([]Node, 64)
	for i := range xs {
		xs[i] = randomNode(m, rng, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.And(xs[i%64], xs[(i+7)%64])
	}
}

func TestStats(t *testing.T) {
	m := New(8)
	before := m.Stats()
	if before.Nodes != 2 {
		t.Errorf("fresh manager nodes = %d, want 2 terminals", before.Nodes)
	}
	rng := rand.New(rand.NewSource(44))
	a := randomNode(m, rng, 10)
	m.SatFraction(a)
	m.SatCount(a)
	after := m.Stats()
	if after.Nodes <= before.Nodes || after.UniqueEntries == 0 {
		t.Errorf("stats did not grow: %+v", after)
	}
	if after.SatFracEntries == 0 || after.SatCntEntries == 0 {
		t.Errorf("memo tables empty: %+v", after)
	}
}

// TestPropertyRestrictExists: ∃x.f == f|x=0 ∨ f|x=1 (Shannon expansion).
func TestPropertyRestrictExists(t *testing.T) {
	m := New(7)
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		a := randomNode(m, rng, 8)
		v := rng.Intn(7)
		mask := make([]bool, 7)
		mask[v] = true
		lhs := m.Exists(a, mask)
		rhs := m.Or(m.Restrict(a, v, false), m.Restrict(a, v, true))
		if lhs != rhs {
			t.Fatalf("trial %d: Shannon expansion violated for var %d", trial, v)
		}
		// And f == ite(x, f|x=1, f|x=0).
		rebuilt := m.Ite(m.Var(v), m.Restrict(a, v, true), m.Restrict(a, v, false))
		if rebuilt != a {
			t.Fatalf("trial %d: Shannon decomposition does not rebuild", trial)
		}
	}
}

// TestPropertySupportRestrictIdentity: restricting a variable outside the
// support is the identity.
func TestPropertySupportRestrictIdentity(t *testing.T) {
	m := New(10)
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 30; trial++ {
		a := randomNode(m, rng, 5)
		sup := map[int]bool{}
		for _, v := range m.Support(a) {
			sup[v] = true
		}
		for v := 0; v < 10; v++ {
			if sup[v] {
				continue
			}
			if m.Restrict(a, v, true) != a || m.Restrict(a, v, false) != a {
				t.Fatalf("trial %d: restrict of non-support var %d changed function", trial, v)
			}
		}
	}
}
