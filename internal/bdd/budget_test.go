package bdd

import (
	"context"
	"errors"
	"testing"
)

// buildPressure allocates fresh nodes until the budget trips or the cap
// is reached; it runs under Guard in every test that uses it.
func buildPressure(m *Manager, iters int) {
	acc := False
	for i := 0; i < iters; i++ {
		// Distinct minterms over the low 20 variables: each union adds
		// fresh nodes to the table.
		cube := True
		for v := 19; v >= 0; v-- {
			if i>>(v)&1 == 1 {
				cube = m.mk(uint32(v), False, cube)
			} else {
				cube = m.mk(uint32(v), cube, False)
			}
		}
		acc = m.Or(acc, cube)
	}
}

func TestMaxNodesTripsErrBudgetExceeded(t *testing.T) {
	m := New(32)
	m.SetLimits(Limits{MaxNodes: 200})
	err := Guard(func() { buildPressure(m, 1 << 16) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if m.Size() > 200 {
		t.Errorf("node table grew past the budget: %d nodes", m.Size())
	}
}

func TestMaxOpsTripsErrBudgetExceeded(t *testing.T) {
	m := New(32)
	m.SetLimits(Limits{MaxOps: 50})
	err := Guard(func() { buildPressure(m, 1 << 16) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestTrippedBudgetPoisonsUntilReset(t *testing.T) {
	m := New(32)
	m.SetLimits(Limits{MaxNodes: 64})
	if err := Guard(func() { buildPressure(m, 1 << 16) }); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("first trip: err = %v", err)
	}
	// Any further charged work re-raises the same budget error.
	err := Guard(func() { m.And(m.Var(30), m.Var(31)) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("poisoned manager: err = %v, want ErrBudgetExceeded", err)
	}
	// SetLimits clears the poison.
	m.SetLimits(Limits{})
	if err := Guard(func() { m.And(m.Var(30), m.Var(31)) }); err != nil {
		t.Fatalf("after reset: err = %v", err)
	}
}

func TestWatchContextCancelsWork(t *testing.T) {
	m := New(32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defer m.WatchContext(ctx)()
	err := Guard(func() { buildPressure(m, 1 << 16) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must not poison: restore a live context and work again.
	m.WatchContext(context.Background())
	if err := Guard(func() { buildPressure(m, 64) }); err != nil {
		t.Fatalf("after cancel: err = %v", err)
	}
}

func TestGuardPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "not ours" {
			t.Fatalf("recover() = %v, want the original panic", r)
		}
	}()
	_ = Guard(func() { panic("not ours") })
}

func TestStatsCountersAdvance(t *testing.T) {
	m := New(32)
	buildPressure(m, 256)
	s := m.Stats()
	if s.CacheMisses == 0 {
		t.Error("expected cache misses after fresh work")
	}
	if s.Ops == 0 {
		t.Error("expected charged ops after fresh work")
	}
	if s.PeakNodes < s.Nodes {
		t.Errorf("peak %d < live nodes %d", s.PeakNodes, s.Nodes)
	}
	// Repeating the identical work should now hit the cache.
	before := m.Stats().CacheHits
	buildPressure(m, 256)
	if m.Stats().CacheHits <= before {
		t.Error("expected cache hits on repeated identical work")
	}
}
