// Flat-memory node storage: the open-addressed unique table and the
// direct-mapped operation cache.
//
// The unique table is the heart of hash consing — every mk goes through
// it — so its layout is the kernel's hottest data structure. Instead of
// a Go map (hashing interface machinery, bucket chains, tombstones) it
// is a power-of-two slice of 16-byte slots probed linearly. Each slot
// stores the full 64-bit hash next to the node index: the hash gives a
// one-word reject before touching the node array, and makes resizing a
// re-placement of (hash, node) pairs with no rehashing of triples.
// Slots are keyed by the (level, low, high) triple of the node they
// name; node index 0 (the False terminal, never interned) marks an
// empty slot. The table doubles when it passes 3/4 load, so probes stay
// short (expected O(1)) and growth cost is amortized over inserts.
//
// Resize work is covered by the node budget: a resize can only be
// triggered by an insert, inserts pass through chargeNode first, and
// the resize points are a deterministic function of the node count —
// so MaxNodes bounds the total table work and a budget trip can never
// leave a half-rehashed table (chargeNode panics before any mutation).
//
// The op cache stays direct-mapped but is now sized by a CacheConfig:
// it starts at MinSlots and doubles (re-placing live entries) whenever
// the node table outgrows it, up to MaxSlots. A cache comparable to the
// node count keeps the apply loops' memoization effective on large
// managers without burning megabytes on small ones.
package bdd

// uniqSlot is one slot of the open-addressed unique table.
type uniqSlot struct {
	hash uint64
	node Node // 0 (False, never interned) = empty slot
}

const (
	// initialUniqueSlots is the unique-table capacity at New. Power of two.
	initialUniqueSlots = 1 << 10
	// defaultMinCacheSlots matches the previous fixed cache size, so small
	// managers behave as before.
	defaultMinCacheSlots = 1 << 16
	// defaultMaxCacheSlots caps auto-growth (24 B/slot: 1<<20 ≈ 24 MiB),
	// reached only once the node table itself is past a million nodes.
	defaultMaxCacheSlots = 1 << 20
)

// CacheConfig sizes the direct-mapped operation cache. The zero value
// selects the defaults. Slot counts are rounded up to powers of two.
type CacheConfig struct {
	// MinSlots is the initial cache size (default 1<<16).
	MinSlots int
	// MaxSlots caps growth (default 1<<20). The cache doubles whenever
	// the node table reaches the current slot count, up to this cap; set
	// MaxSlots == MinSlots for a fixed-size cache.
	MaxSlots int
}

// normalize fills defaults and rounds to powers of two.
func (c CacheConfig) normalize() CacheConfig {
	if c.MinSlots <= 0 {
		c.MinSlots = defaultMinCacheSlots
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = defaultMaxCacheSlots
	}
	c.MinSlots = ceilPow2(c.MinSlots)
	c.MaxSlots = ceilPow2(c.MaxSlots)
	if c.MaxSlots < c.MinSlots {
		c.MaxSlots = c.MinSlots
	}
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mk returns the canonical node (level, low, high), applying the two
// reduction rules: redundant tests collapse, and structurally equal
// nodes share storage. Lookup is a linear probe of the unique table;
// the stored hash rejects almost all foreign slots in one compare.
func (m *Manager) mk(level uint32, low, high Node) Node {
	if low == high {
		return low
	}
	h := mix(uint64(level), uint64(uint32(low)), uint64(uint32(high)))
	mask := uint64(len(m.uniq) - 1)
	i := h & mask
	for {
		s := &m.uniq[i]
		if s.node == 0 {
			break
		}
		if s.hash == h {
			nd := &m.nodes[s.node]
			if nd.level == level && nd.low == low && nd.high == high {
				return s.node
			}
		}
		i = (i + 1) & mask
	}
	return m.insert(i, h, level, low, high)
}

// insert appends a new node and files it in the unique table at the
// empty slot found by mk's probe (re-probed if the insert triggers a
// resize). chargeNode runs before any mutation, so a budget trip
// leaves the table untouched.
func (m *Manager) insert(slot, hash uint64, level uint32, low, high Node) Node {
	m.chargeNode()
	if (m.uniqUsed+1)*4 > len(m.uniq)*3 {
		m.growUnique()
		mask := uint64(len(m.uniq) - 1)
		slot = hash & mask
		for m.uniq[slot].node != 0 {
			slot = (slot + 1) & mask
		}
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	if len(m.nodes) > m.peakNodes {
		m.peakNodes = len(m.nodes)
	}
	m.uniq[slot] = uniqSlot{hash: hash, node: n}
	m.uniqUsed++
	m.maybeGrowCache()
	return n
}

// growUnique doubles the table and re-places every live slot by its
// stored hash. Placement is deterministic (slot order is scan order,
// probe order is hash order), so reruns fill identically.
func (m *Manager) growUnique() {
	m.uniqResizes++
	old := m.uniq
	m.uniq = make([]uniqSlot, len(old)*2)
	mask := uint64(len(m.uniq) - 1)
	for i := range old {
		s := old[i]
		if s.node == 0 {
			continue
		}
		j := s.hash & mask
		for m.uniq[j].node != 0 {
			j = (j + 1) & mask
		}
		m.uniq[j] = s
	}
}

// mix folds three words into a well-distributed 64-bit key
// (splitmix64-style finalizer).
func mix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// cacheEntry is one slot of the direct-mapped operation cache.
type cacheEntry struct {
	op      uint32
	a, b, c Node
	result  Node
}

// cacheHash computes the cache key for an apply step once; the apply
// loops pass it to both cacheLookup and cacheStore, so each step hashes
// a single time. Node indices are 31-bit, so op packs into the upper
// half of the first word.
func cacheHash(op uint32, a, b, c Node) uint64 {
	return mix(uint64(uint32(a))|uint64(op)<<32, uint64(uint32(b)), uint64(uint32(c)))
}

// cacheLookup consults the operation cache. Every apply-loop step
// passes through here, so it doubles as the budget charge point. The
// slot index is the hash masked by the *current* cache size — h stays
// valid across a cache resize during recursion.
func (m *Manager) cacheLookup(h uint64, op uint32, a, b, c Node) (Node, bool) {
	m.chargeOp()
	slot := &m.cache[h&uint64(len(m.cache)-1)]
	if slot.op == op && slot.a == a && slot.b == b && slot.c == c {
		m.cacheHits++
		return slot.result, true
	}
	m.cacheMisses++
	return 0, false
}

func (m *Manager) cacheStore(h uint64, op uint32, a, b, c, result Node) {
	m.cache[h&uint64(len(m.cache)-1)] = cacheEntry{op: op, a: a, b: b, c: c, result: result}
}

// maybeGrowCache doubles the op cache while the node table has caught
// up with it, up to the configured cap. Growth points are a
// deterministic function of the node count, and live entries are
// re-placed (not dropped), so a resize mid-computation only moves the
// memo — results and canonicity are unaffected.
func (m *Manager) maybeGrowCache() {
	for len(m.cache) < m.cacheCfg.MaxSlots && len(m.nodes) >= len(m.cache) {
		m.cacheResizes++
		old := m.cache
		m.cache = make([]cacheEntry, len(old)*2)
		mask := uint64(len(m.cache) - 1)
		for i := range old {
			e := &old[i]
			if e.op == 0 {
				continue
			}
			m.cache[cacheHash(e.op, e.a, e.b, e.c)&mask] = *e
		}
	}
}

// SetCacheConfig installs a new cache sizing policy. If the current
// cache is smaller than the new minimum (or the growth rule already
// calls for more), it grows immediately; an oversized cache is left in
// place — shrinking would throw away a warm memo for no benefit.
func (m *Manager) SetCacheConfig(c CacheConfig) {
	m.cacheCfg = c.normalize()
	if len(m.cache) < m.cacheCfg.MinSlots {
		m.cacheResizes++
		old := m.cache
		m.cache = make([]cacheEntry, m.cacheCfg.MinSlots)
		mask := uint64(len(m.cache) - 1)
		for i := range old {
			e := &old[i]
			if e.op == 0 {
				continue
			}
			m.cache[cacheHash(e.op, e.a, e.b, e.c)&mask] = *e
		}
	}
	m.maybeGrowCache()
}

// CacheConfig returns the cache sizing policy in effect.
func (m *Manager) CacheConfig() CacheConfig { return m.cacheCfg }
