package bdd

import "testing"

// TestResizeCounters: enough distinct nodes must double both tables at
// least once, and the counters must record it.
func TestResizeCounters(t *testing.T) {
	// A small cache floor so the growth rule actually fires at this scale.
	m := New(64, WithCacheConfig(CacheConfig{MinSlots: 64, MaxSlots: 1 << 12}))
	f := False
	for v := 0; v < 64; v++ {
		f = m.Or(f, m.Var(v))
		for w := v + 1; w < 64; w++ {
			m.And(m.Var(v), m.Not(m.Var(w)))
		}
	}
	st := m.Stats()
	if st.UniqueResizes == 0 {
		t.Error("unique table never resized")
	}
	if st.CacheResizes == 0 {
		t.Error("op cache never resized")
	}
}

func TestStatsDelta(t *testing.T) {
	m := New(16)
	m.And(m.Var(0), m.Var(1))
	before := m.Stats()
	m.Xor(m.Var(2), m.Var(3))
	after := m.Stats()
	d := after.Delta(before)
	if d.Ops == 0 {
		t.Error("delta ops = 0 after fresh work")
	}
	if d.Ops != after.Ops-before.Ops {
		t.Errorf("delta ops = %d, want %d", d.Ops, after.Ops-before.Ops)
	}
	if d.Nodes != after.Nodes {
		t.Errorf("delta carries gauge Nodes = %d, want current %d", d.Nodes, after.Nodes)
	}

	// SetLimits resets the op counter; the delta must not wrap.
	m.SetLimits(Limits{})
	m.Or(m.Var(4), m.Var(5))
	d = m.Stats().Delta(after)
	if d.Ops > after.Ops+1000 {
		t.Errorf("delta ops wrapped: %d", d.Ops)
	}
	if d.Ops == 0 {
		t.Error("reset-tolerant delta lost the post-reset ops")
	}
}
