// Snapshot cloning: a replica manager as a bulk memory copy.
//
// The flat storage layout (bdd.go, table.go, satcount.go) makes a
// Manager a handful of dense slices plus a few scalars, so a replica is
// a memcpy, not a semantic rebuild: Clone copies the node array, the
// unique table, the op cache, and the counting memos slice-for-slice in
// O(size) with bit-identical semantics. Every node keeps its index, so
// node references held outside the manager (hdr.Set values, trace
// roots, cube nodes) remain valid in the clone, and the unique table's
// deterministic resize points (a function of the node count) are
// preserved exactly — a clone grows the same way the original would.
//
// What is deliberately NOT snapshotted: resource budgets, the poisoned
// state, and the watched context. A clone is a fresh evaluation space —
// workers install their own Limits and WatchContext per run — and
// cloning a poisoned manager yields a clean replica (the budget that
// tripped belonged to the original's run, not the copy). Observability
// counters restart at zero for the same reason; PeakNodes restarts at
// the cloned size.
package bdd

import "math/big"

// Clone returns an independent copy of the manager in O(size): same
// nodes at the same indices, same unique-table and op-cache layout,
// same counting memos. Mutating either manager afterwards never
// affects the other — the clone is copy-on-write at the granularity of
// whole tables, and both sides only ever append.
//
// The wide-count side table is shared structurally: satBig values are
// immutable by contract (see bigCount), so the clone references the
// same *big.Int values under its own map.
//
// Clone reads the manager without mutating it, so concurrent Clone
// calls on a quiescent manager are safe (building a replica pool clones
// the canonical space from several goroutines at once).
func (m *Manager) Clone() *Manager {
	c := &Manager{
		numVars:    m.numVars,
		nodes:      append([]node(nil), m.nodes...),
		uniq:       append([]uniqSlot(nil), m.uniq...),
		uniqUsed:   m.uniqUsed,
		cache:      append([]cacheEntry(nil), m.cache...),
		cacheCfg:   m.cacheCfg,
		satFrac:    append([]float64(nil), m.satFrac...),
		satFracN:   m.satFracN,
		satState:   append([]uint8(nil), m.satState...),
		satLo:      append([]uint64(nil), m.satLo...),
		satHi:      append([]uint64(nil), m.satHi...),
		satNarrowN: m.satNarrowN,
		peakNodes:  len(m.nodes),
		origin:     m,
		originN:    len(m.nodes),
	}
	if m.satBig != nil {
		c.satBig = make(map[Node]*big.Int, len(m.satBig))
		for k, v := range m.satBig {
			c.satBig[k] = v
		}
	}
	return c
}

// ClonedFrom reports the manager this one was cloned from and the node
// count at clone time, or (nil, 0). Nodes below that count are
// index-identical in both managers forever (managers only append), which
// is what lets a Transfer between a clone and its origin skip the shared
// prefix entirely.
func (m *Manager) ClonedFrom() (*Manager, int) { return m.origin, m.originN }
