package bdd

import (
	"math/rand"
	"testing"
)

// buildScripted interprets ops as a deterministic construction script
// over m, returning the root of every intermediate function. The same
// script on any manager builds the same sequence of boolean functions,
// which makes it a canonicity probe: replaying a script must return
// bit-identical node indices, resizes or not.
func buildScripted(m *Manager, ops []byte) []Node {
	roots := []Node{m.Var(0)}
	cur := roots[0]
	for i, b := range ops {
		v := int(b>>2) % m.NumVars()
		operand := m.Var(v)
		if b&2 != 0 {
			operand = m.Not(operand)
		}
		switch b & 1 {
		case 0:
			cur = m.Or(cur, m.And(operand, m.Var((v+i)%m.NumVars())))
		default:
			cur = m.Xor(cur, operand)
		}
		roots = append(roots, cur)
	}
	return roots
}

// TestUniqueResizeCanonicity drives the unique table through several
// doublings (initial capacity is 1<<10 slots; resize triggers at 3/4
// load) and checks that hash consing still canonicalizes: rebuilding a
// function already in the table returns the same Node, before and after
// growth.
func TestUniqueResizeCanonicity(t *testing.T) {
	m := New(24)
	rng := rand.New(rand.NewSource(77))

	type probe struct {
		a, b Node
		and  Node
	}
	var probes []probe
	startSlots := len(m.uniq)
	for len(m.uniq) < startSlots*8 {
		a := randomNode(m, rng, 12)
		b := randomNode(m, rng, 12)
		probes = append(probes, probe{a: a, b: b, and: m.And(a, b)})
	}
	if len(m.uniq) < startSlots*8 {
		t.Fatalf("table did not grow: %d slots", len(m.uniq))
	}
	if got, want := m.uniqUsed, len(m.nodes)-2; got != want {
		t.Fatalf("uniqUsed = %d, want %d (nodes-2)", got, want)
	}
	// Every earlier result must still be found, not re-interned.
	for i, p := range probes {
		if again := m.And(p.a, p.b); again != p.and {
			t.Fatalf("probe %d: And(%d,%d) = %d after growth, was %d", i, p.a, p.b, again, p.and)
		}
	}
	// Load factor stays under the resize threshold.
	if st := m.Stats(); st.UniqueLoad >= 0.75 {
		t.Errorf("unique load %.3f >= 0.75 after resize", st.UniqueLoad)
	}
}

// TestResizeCanonicityAcrossCopyFrom replays one construction script in
// two managers and transfers every root across: semantic equality in
// the source (same Node) must map to semantic equality in the
// destination, and copying back must land on the original nodes — even
// though the two tables resize at different times (the destination also
// holds extra junk nodes).
func TestResizeCanonicityAcrossCopyFrom(t *testing.T) {
	const nv = 16
	script := make([]byte, 4000)
	rng := rand.New(rand.NewSource(99))
	rng.Read(script)

	src := New(nv)
	roots := buildScripted(src, script)

	dst := New(nv)
	// Pre-populate dst with unrelated nodes so its table geometry and
	// node indices diverge from src's before the transfer.
	for i := 0; i < 500; i++ {
		randomNode(dst, rng, 6)
	}

	moved := make([]Node, len(roots))
	for i, r := range roots {
		moved[i] = dst.CopyFrom(src, r)
	}
	for i := range roots {
		for j := i + 1; j < len(roots); j++ {
			if (roots[i] == roots[j]) != (moved[i] == moved[j]) {
				t.Fatalf("equality not preserved: src %d,%d (%v) vs dst %d,%d",
					roots[i], roots[j], roots[i] == roots[j], moved[i], moved[j])
			}
		}
	}
	// Round trip back into src: must be the identity.
	for i, mv := range moved {
		if back := src.CopyFrom(dst, mv); back != roots[i] {
			t.Fatalf("root %d: round trip %d -> %d -> %d, want identity", i, roots[i], mv, back)
		}
	}
}

// FuzzUniqueResizeCanonicity replays an arbitrary construction script
// into two fresh managers and asserts bit-identical node indices — the
// strongest statement of deterministic hash consing across resizes —
// plus Eval agreement on a few assignments.
func FuzzUniqueResizeCanonicity(f *testing.F) {
	f.Add([]byte{0x01, 0x57, 0xfe, 0x10})
	seed := make([]byte, 2500) // enough mk traffic to cross a resize
	rand.New(rand.NewSource(5)).Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 5000 {
			ops = ops[:5000]
		}
		const nv = 12
		m1 := New(nv)
		m2 := New(nv)
		r1 := buildScripted(m1, ops)
		r2 := buildScripted(m2, ops)
		if len(r1) != len(r2) {
			t.Fatalf("root counts differ: %d vs %d", len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("root %d: node %d vs %d — hash consing is not deterministic", i, r1[i], r2[i])
			}
		}
		if m1.Size() != m2.Size() {
			t.Fatalf("sizes differ: %d vs %d", m1.Size(), m2.Size())
		}
		// Transfer the last root to a third manager and back.
		last := r1[len(r1)-1]
		m3 := New(nv)
		if back := m1.CopyFrom(m3, m3.CopyFrom(m1, last)); back != last {
			t.Fatalf("transfer round trip changed node: %d -> %d", last, back)
		}
	})
}
