package probegen

import (
	"context"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func smallRegional(t *testing.T) *topogen.Regional {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

func TestGenerateClosesGaps(t *testing.T) {
	rg := smallRegional(t)
	net := rg.Net

	// Baseline: only the default routes are covered.
	base := core.NewTrace()
	testkit.DefaultRouteCheck{}.Run(net, base)
	cov := core.NewCoverage(net, base)
	before := core.RuleCoverage(cov, nil, core.Fractional)

	res := Generate(context.Background(), cov, Options{})
	if len(res.Probes) == 0 {
		t.Fatal("no probes generated")
	}
	if !res.Complete {
		t.Error("generation should complete on this small network")
	}

	// Every probe covers at least one previously uncovered rule and the
	// Covers sets are disjoint (greedy dedup).
	seen := map[netmodel.RuleID]bool{}
	for _, p := range res.Probes {
		if len(p.Covers) == 0 {
			t.Fatal("probe with empty Covers")
		}
		for _, rid := range p.Covers {
			if seen[rid] {
				t.Fatalf("rule %d covered by two probes", rid)
			}
			seen[rid] = true
		}
	}

	// Running the generated tests raises coverage to (nearly) full for
	// the reachable rules, and every generated test passes.
	trace := core.NewTrace()
	trace.Merge(base)
	for _, r := range res.AsTests().Run(context.Background(), net, trace) {
		if !r.Pass() {
			t.Fatalf("generated probe failed: %+v", r.Failures)
		}
	}
	after := core.RuleCoverage(core.NewCoverage(net, trace), nil, core.Fractional)
	if after <= before {
		t.Fatalf("coverage did not improve: %v -> %v", before, after)
	}
	if after < 0.5 {
		t.Errorf("probe suite should cover most rules, got %v", after)
	}

	// Each probe's Covers rules are now actually covered.
	cov2 := core.NewCoverage(net, trace)
	for _, p := range res.Probes {
		for _, rid := range p.Covers {
			if cov2.Covered(rid).IsEmpty() {
				t.Errorf("rule %d still uncovered after running its probe", rid)
			}
		}
	}
}

func TestGenerateUncoverable(t *testing.T) {
	rg := smallRegional(t)
	net := rg.Net
	cov := core.NewCoverage(net, core.NewTrace())
	res := Generate(context.Background(), cov, Options{})

	// Loopback delivery rules at their owners are reachable end-to-end
	// (traffic to the loopback), but a null-routed static default on a
	// device with no traffic toward it can be unreachable. At minimum the
	// uncoverable list must contain only genuinely uncovered rules.
	trace := core.NewTrace()
	res.AsTests().Run(context.Background(), net, trace)
	cov2 := core.NewCoverage(net, trace)
	for _, rid := range res.Uncoverable {
		if !cov2.Covered(rid).IsEmpty() {
			t.Errorf("rule %d marked uncoverable but probes covered it", rid)
		}
	}
}

func TestGenerateRespectsBudgets(t *testing.T) {
	rg := smallRegional(t)
	cov := core.NewCoverage(rg.Net, core.NewTrace())
	res := Generate(context.Background(), cov, Options{MaxProbes: 3})
	if len(res.Probes) != 3 || res.Complete {
		t.Errorf("probes = %d complete = %v, want 3 false", len(res.Probes), res.Complete)
	}
}

func TestGenerateNothingToDo(t *testing.T) {
	rg := smallRegional(t)
	trace := core.NewTrace()
	for _, r := range rg.Net.Rules {
		trace.MarkRule(r.ID)
	}
	cov := core.NewCoverage(rg.Net, trace)
	res := Generate(context.Background(), cov, Options{})
	if len(res.Probes) != 0 || len(res.Uncoverable) != 0 || !res.Complete {
		t.Errorf("fully covered network should need no probes: %+v", res)
	}
}

func TestGenerateTargetedRules(t *testing.T) {
	rg := smallRegional(t)
	net := rg.Net
	cov := core.NewCoverage(net, core.NewTrace())
	// Target only one ToR's internal rules.
	tor := rg.ToRs[0]
	var targets []netmodel.RuleID
	for _, rid := range net.Device(tor).FIB {
		if net.Rule(rid).Origin == netmodel.OriginInternal {
			targets = append(targets, rid)
		}
	}
	res := Generate(context.Background(), cov, Options{Rules: targets})
	covered := map[netmodel.RuleID]bool{}
	for _, p := range res.Probes {
		for _, rid := range p.Covers {
			covered[rid] = true
			found := false
			for _, want := range targets {
				if rid == want {
					found = true
				}
			}
			if !found {
				t.Errorf("probe covers non-target rule %d", rid)
			}
		}
	}
	if len(covered)+len(res.Uncoverable) != len(targets) {
		t.Errorf("covered %d + uncoverable %d != targets %d",
			len(covered), len(res.Uncoverable), len(targets))
	}
}
