// Package probegen generates concrete test probes that cover untested
// forwarding rules — the ATPG idea (Zeng et al., CoNEXT 2012) the paper
// cites as complementary: where Yardstick measures what a suite misses,
// probegen turns the uncovered set into new tests.
//
// Generation walks the path universe (the same §5.2 Step 3 exploration
// coverage computation uses): for every path whose rule sequence contains
// an uncovered rule, concrete packets are sampled from the path's guard
// and *verified* by traceroute — a real packet takes one ECMP branch, so
// samples are retried with varied flow hashes until the probe actually
// exercises an uncovered rule. Each emitted probe records the rules its
// verified trajectory covers and its observed disposition, so it converts
// directly into a passing end-to-end concrete test.
package probegen

import (
	"context"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
)

// Probe is one generated, verified end-to-end concrete test.
type Probe struct {
	Start  dataplane.Loc
	Packet hdr.Packet
	// Covers lists the previously-uncovered rules the probe's verified
	// trajectory exercises.
	Covers []netmodel.RuleID
	// End is the observed terminal disposition (the probe's test
	// expectation).
	End dataplane.TraceEnd
	// LastDevice is the device at the final hop.
	LastDevice netmodel.DeviceID
}

// Options bounds generation.
type Options struct {
	// Starts are the injection points (EdgeStarts when nil).
	Starts []dataplane.Start
	// MaxProbes stops after this many probes (0 = unlimited).
	MaxProbes int
	// MaxPaths bounds the underlying path exploration (0 = unlimited).
	MaxPaths int
	// Rules restricts the targets (nil = every uncovered rule).
	Rules []netmodel.RuleID
	// SamplesPerPath bounds ECMP-hash retries per candidate path
	// (default 8).
	SamplesPerPath int
}

// Result is the outcome of a generation run.
type Result struct {
	Probes []Probe
	// Uncoverable lists target rules no verified probe reached after a
	// *complete* exploration — rules only local tests (or state
	// inspection) can exercise from the given injection points. Empty
	// when Complete is false (a budget cut generation short, so the
	// remaining targets may still be reachable); see Remaining.
	Uncoverable []netmodel.RuleID
	// Remaining counts targets not yet covered when a budget stopped
	// generation early.
	Remaining int
	// Complete is false when a budget cut exploration short.
	Complete bool
}

// Generate computes verified probes covering the rules the coverage
// trace has not touched. Cancelling ctx stops the underlying path
// exploration; the partial result then reports Complete=false.
func Generate(ctx context.Context, cov *core.Coverage, opts Options) *Result {
	net := cov.Net
	if opts.SamplesPerPath == 0 {
		opts.SamplesPerPath = 8
	}
	targets := make(map[netmodel.RuleID]bool)
	for _, rid := range core.UncoveredRules(cov, opts.Rules) {
		targets[rid] = true
	}
	res := &Result{Complete: true}
	if len(targets) == 0 {
		return res
	}

	starts := opts.Starts
	if starts == nil {
		starts = dataplane.EdgeStarts(net)
	}
	sp := net.Space
	_, complete := dataplane.EnumeratePaths(ctx, net, starts,
		dataplane.EnumOpts{MaxPaths: opts.MaxPaths},
		func(p dataplane.Path) bool {
			if p.Guard.IsEmpty() || p.End == dataplane.PathLoop {
				return true
			}
			wanted := false
			for _, rid := range p.Rules {
				if targets[rid] {
					wanted = true
					break
				}
			}
			if !wanted {
				return true
			}
			// Sample packets with varied flow hashes until the concrete
			// trajectory exercises a target (ECMP may route a sample
			// down a different branch than this path).
			for attempt := 0; attempt < opts.SamplesPerPath; attempt++ {
				cand := p.Guard.Intersect(sp.SrcPort(uint16(1031 + 977*attempt)))
				if cand.IsEmpty() {
					cand = p.Guard
				}
				pkt, ok := cand.Sample()
				if !ok {
					break
				}
				tr := dataplane.Traceroute(net, p.Start, pkt)
				var covers []netmodel.RuleID
				for _, hop := range tr.Hops {
					if hop.Rule >= 0 && targets[hop.Rule] {
						covers = append(covers, hop.Rule)
					}
				}
				if len(covers) == 0 {
					continue
				}
				for _, rid := range covers {
					delete(targets, rid)
				}
				last := p.Start.Device
				if len(tr.Hops) > 0 {
					last = tr.Hops[len(tr.Hops)-1].Loc.Device
				}
				res.Probes = append(res.Probes, Probe{
					Start:      p.Start,
					Packet:     pkt,
					Covers:     covers,
					End:        tr.End,
					LastDevice: last,
				})
				break
			}
			if opts.MaxProbes > 0 && len(res.Probes) >= opts.MaxProbes {
				res.Complete = false
				return false
			}
			return len(targets) > 0
		})
	if !complete {
		res.Complete = false
	}
	if res.Complete {
		for rid := range targets {
			res.Uncoverable = append(res.Uncoverable, rid)
		}
		sortRules(res.Uncoverable)
	} else {
		res.Remaining = len(targets)
	}
	return res
}

// AsTests converts probes into runnable end-to-end concrete tests whose
// expectations are the verified dispositions. Running them through a
// tracker covers the probes' rules.
func (r *Result) AsTests() testkit.Suite {
	var suite testkit.Suite
	for _, p := range r.Probes {
		suite = append(suite, testkit.PingTest{
			TestName:   "GeneratedProbe",
			From:       p.Start.Device,
			Packet:     p.Packet,
			WantEnd:    p.End,
			WantDevice: p.LastDevice,
		})
	}
	return suite
}

func sortRules(s []netmodel.RuleID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
