// Package service exposes Yardstick as an HTTP service — the shape it
// has in production (§7: "Yardstick is deployed in Azure as part of a
// service to evaluate the impact of changes"). A server holds one
// network and one accumulating coverage trace; testing tools report
// coverage remotely by POSTing trace fragments (the §5.1 markPacket/
// markRule feed, serialized as BDD cubes), or ask the server to run its
// built-in suites; engineers read metrics, role breakdowns, and gap
// reports. Package client provides a typed, retrying Go client for
// every endpoint.
//
// Endpoints:
//
//	PUT    /network          load a network (JSON body; ?format=text for the text format)
//	GET    /network          current network stats
//	POST   /trace            merge a trace fragment (trace JSON)
//	GET    /trace            download the accumulated trace
//	DELETE /trace            reset the trace
//	POST   /run?suite=a,b    run built-in tests server-side, accumulate coverage
//	                         (&workers=n runs the suite sharded across up to
//	                         n workers, capped by WithWorkers; 0 = the cap)
//	POST   /jobs?suite=a,b   submit the same run asynchronously: 202 +
//	                         Location, poll GET /jobs/{id}, cancel with
//	                         DELETE /jobs/{id} (see jobs.go)
//	GET    /jobs             list retained jobs and queue stats
//	                         (?state= filter, ?offset=/?limit= paging with
//	                         X-Total-Count and Link rel="next" headers)
//	GET    /jobs/{id}/trace  a done job's own coverage fragment as trace
//	                         JSON — the shard-collection feed of the
//	                         distributed coordinator (internal/coord)
//	GET    /coverage         headline metrics + per-role rows
//	GET    /gaps             untested rules by origin and role
//	GET    /healthz          liveness: 200 once the process serves traffic
//	GET    /readyz           readiness: 200 when ready; 503 with a reason
//	                         body (no_network, draining, queue_saturated)
//
// The server serializes all requests: the underlying BDD manager is
// single-threaded by design. With WithWorkers(n > 1), POST /run can
// fan one request's suite out across per-worker network replicas
// (internal/sharded) — requests are still serialized; the parallelism
// is within a run.
//
// The handler chain hardens the service for long-running deployment:
// panics are recovered (500, logged stack, server survives), request
// bodies are size-capped (413 past the limit), and requests are logged.
// Compute-heavy endpoints additionally pass admission control
// (admission.go): a per-route-class concurrency cap sheds with 429 +
// Retry-After, a full job queue sheds with 503 + Retry-After, and a
// draining server sheds everything while /readyz steers load balancers
// away — under overload the service answers fast and explicitly rather
// than queueing without bound.
// With WithSnapshot, the accumulated trace is checkpointed to an
// atomic-rename snapshot file — periodically and on shutdown — and
// recovered on startup when the snapshot's network fingerprint matches
// the loaded network, so accumulated coverage survives a restart.
//
// Evaluation endpoints (/run, /coverage, /gaps) run under each
// request's context, optionally tightened by WithRunTimeout (the
// daemon's -run-timeout flag): a disconnected client or an expired
// deadline aborts the symbolic work through the BDD engine's watched
// context and answers 503. A server-side test that panics or exhausts
// a resource budget comes back as an errored RunResult while the rest
// of the suite still runs; partial trace contributions from aborted
// runs are kept (the trace is a monotonic union, so partial merges
// never corrupt it).
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/hdr"
	"yardstick/internal/jobs"
	"yardstick/internal/netmodel"
	"yardstick/internal/obs"
	"yardstick/internal/report"
	"yardstick/internal/sharded"
	"yardstick/internal/testkit"
)

// DefaultMaxBody is the request-body size cap when WithMaxBody is not
// given. Trace fragments for large networks run to a few MB of BDD
// cubes; 64 MiB leaves ample headroom.
const DefaultMaxBody int64 = 64 << 20

// Server is the HTTP coverage service. Create with New and mount via
// Handler.
type Server struct {
	mu    sync.Mutex
	net   *netmodel.Network
	trace *core.Trace
	// netFP caches the loaded network's fingerprint ("" until first
	// needed; see fingerprintLocked). PUT uses it to detect a no-op
	// re-upload, PATCH to validate a delta document's base and to avoid
	// re-hashing the network on every delta.
	netFP string
	// engine is the lazily built sharded evaluation pool for the current
	// network (nil until the first parallel /run; reset when the network
	// changes). Replicas are expensive to build, cheap to keep.
	engine *sharded.Engine
	// delta counts churn-path activity (PATCH /network applications and
	// full network resets), mirrored into the metrics registry and
	// reported raw in /stats.
	delta deltaTotals

	logger       *slog.Logger
	metrics      *obs.Registry
	started      time.Time
	maxBody      int64
	runTimeout   time.Duration
	maxWorkers   int
	snapPath     string
	snapInterval time.Duration

	// Async admission layer (admission.go, jobs.go). The queue exists
	// unconditionally — jobs simply wait until RunJobs starts workers —
	// so the /jobs API needs no "is it enabled" branch anywhere.
	jobs     *jobs.Queue
	jobsPath string // job-records snapshot, derived from snapPath
	// jobTraces holds each done job's own coverage fragment as encoded
	// trace JSON, keyed by job ID — the GET /jobs/{id}/trace export a
	// distributed coordinator collects shard results through. Entries
	// are pruned alongside the queue's retention (see storeJobTrace) and
	// are memory-only: after a restart the endpoint answers 410 Gone and
	// the coordinator re-dispatches the shard (merge is idempotent).
	jobTraces map[string][]byte
	// jobProfiles holds each finished job's span profile as encoded
	// JSON, keyed by job ID — the GET /jobs/{id}/profile export the
	// coordinator stitches into a cross-node run timeline. Same
	// lifecycle as jobTraces: memory-only, pruned with job retention.
	jobProfiles map[string][]byte
	// spanObserver, when set (WithSpanObserver), receives every request
	// root span after it ends — the test hook the span-leak suite uses
	// to assert OpenCount == 0 on all paths, panics included.
	spanObserver func(*obs.Span)
	queueDepth   int
	jobTTL      time.Duration
	maxInflight int
	inflight    atomic.Int64
	draining    atomic.Bool
	shedTotals  shedTotals

	// engineBase is the last-flushed counter baseline of the canonical
	// BDD manager. The canonical manager's movement is settled into the
	// metrics registry through exactly one path — flushCanonical, under
	// the server mutex — so scrapes and reports never double-count.
	engineBase bdd.Stats
}

// Option configures a Server.
type Option func(*Server)

// WithLogger routes request and panic logs to l (default: slog.Default).
// The same structured logger serves the middleware chain, snapshot
// recovery, and the checkpointer drain path.
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.logger = l } }

// WithMaxBody caps request-body size at n bytes (default DefaultMaxBody).
func WithMaxBody(n int64) Option { return func(s *Server) { s.maxBody = n } }

// WithRunTimeout bounds the compute-heavy endpoints (POST /run,
// GET /coverage, GET /gaps): each such request runs under a deadline of
// d on top of the client's own cancellation (r.Context()). Zero or
// negative means no server-side deadline.
func WithRunTimeout(d time.Duration) Option { return func(s *Server) { s.runTimeout = d } }

// WithWorkers caps the per-request parallelism of POST /run: a request's
// ?workers=n is clamped to this cap (default 1 — parallel runs disabled).
// Parallelism replicates the loaded network once per worker via a
// netmodel JSON round-trip, built lazily on the first parallel run and
// reused until the network changes.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n > 1 {
			s.maxWorkers = n
		}
	}
}

// WithSnapshot enables crash-safe persistence: the accumulated trace is
// checkpointed to path every interval (see RunCheckpointer) and on
// Checkpoint calls, and Restore recovers it on startup. Job records
// ride along in a sibling file (path + ".jobs") under the same network
// fingerprint, so completed async jobs survive a restart too. An
// interval <= 0 keeps the default of one minute.
func WithSnapshot(path string, interval time.Duration) Option {
	return func(s *Server) {
		s.snapPath = path
		s.jobsPath = path + ".jobs"
		if interval > 0 {
			s.snapInterval = interval
		}
	}
}

// WithJobQueue sizes the async-run admission layer: depth bounds how
// many submitted jobs may wait (a full queue sheds POST /jobs with
// 503 + Retry-After; default 64) and ttl is how long finished jobs stay
// pollable before they are swept (default 1h). The worker pool is sized
// off WithWorkers.
func WithJobQueue(depth int, ttl time.Duration) Option {
	return func(s *Server) {
		s.queueDepth = depth
		s.jobTTL = ttl
	}
}

// WithAdmission caps concurrent compute-heavy requests (POST /run,
// GET /coverage, GET /gaps, POST /jobs submissions): past the cap,
// requests are shed with 429 + Retry-After instead of queueing on the
// evaluation mutex. 0 (the default) disables the cap.
func WithAdmission(maxInflight int) Option {
	return func(s *Server) {
		if maxInflight > 0 {
			s.maxInflight = maxInflight
		}
	}
}

// WithSpanObserver registers fn to receive every request root span
// after it has ended. Spans may still be mutated by the observer's
// caller's goroutine only; treat them as read-only. Intended for tests
// asserting span hygiene (no open spans left behind on any path).
func WithSpanObserver(fn func(*obs.Span)) Option {
	return func(s *Server) { s.spanObserver = fn }
}

// New returns a server with no network loaded.
func New(opts ...Option) *Server {
	s := &Server{
		trace:        core.NewTrace(),
		jobTraces:    map[string][]byte{},
		jobProfiles:  map[string][]byte{},
		logger:       slog.Default(),
		metrics:      obs.NewRegistry(),
		started:      time.Now(),
		maxBody:      DefaultMaxBody,
		maxWorkers:   1,
		snapInterval: time.Minute,
	}
	for _, o := range opts {
		o(s)
	}
	// The queue wraps the server's own runner, so it is built after the
	// options settle sizing (workers, run-timeout, depth, TTL).
	s.jobs = jobs.New(s.runJob, jobs.Config{
		QueueDepth: s.queueDepth,
		Workers:    s.maxWorkers,
		RunTimeout: s.runTimeout,
		TTL:        s.jobTTL,
	})
	hdr.RegisterHelp(s.metrics)
	s.metrics.SetHelp(sharded.MetricRuns, "Sharded suite runs")
	s.metrics.SetHelp(sharded.MetricWorkerRuns, "Per-worker shard executions")
	s.metrics.SetHelp(sharded.MetricBudgetTrips, "Shard runs that tripped their BDD budget")
	s.metrics.SetHelp("yardstick_stage_duration_seconds", "Stage latency, by stage name")
	s.metrics.SetHelp("yardstick_http_shed_total", "Requests shed by admission control, by route and reason")
	s.metrics.SetHelp("yardstick_jobs_queue_depth", "Job-queue slots in use")
	s.metrics.SetHelp("yardstick_jobs_running", "Jobs currently executing")
	s.metrics.SetHelp("yardstick_jobs_retained", "Jobs held in memory, finished ones included")
	s.metrics.SetHelp(MetricNetworkResets, "Full network replacements that reset the trace and replica pool")
	s.metrics.SetHelp(MetricDeltaApplied, "Rule-level delta documents applied via PATCH /network")
	return s
}

// Metrics exposes the server's metrics registry (what GET /metrics
// serves) so an embedding daemon can add its own series.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// WithNetwork returns a server pre-loaded with a network.
func WithNetwork(net *netmodel.Network, opts ...Option) *Server {
	s := New(opts...)
	s.net = net
	return s
}

// Handler returns the service's HTTP handler, wrapped in the hardening
// middleware chain (panic recovery, request logging, body-size limits).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /network", s.putNetwork)
	mux.HandleFunc("PATCH /network", s.admit("/network", s.patchNetwork))
	mux.HandleFunc("GET /network", s.getNetwork)
	mux.HandleFunc("POST /trace", s.postTrace)
	mux.HandleFunc("GET /trace", s.getTrace)
	mux.HandleFunc("DELETE /trace", s.deleteTrace)
	mux.HandleFunc("POST /run", s.admit("/run", s.postRun))
	mux.HandleFunc("POST /jobs", s.admit("/jobs", s.postJob))
	mux.HandleFunc("GET /jobs", s.listJobs)
	mux.HandleFunc("GET /jobs/{id}", s.getJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.getJobTrace)
	mux.HandleFunc("GET /jobs/{id}/profile", s.getJobProfile)
	mux.HandleFunc("DELETE /jobs/{id}", s.deleteJob)
	mux.HandleFunc("GET /coverage", s.admit("/coverage", s.getCoverage))
	mux.HandleFunc("GET /gaps", s.admit("/gaps", s.getGaps))
	mux.HandleFunc("GET /healthz", s.getHealthz)
	mux.HandleFunc("GET /readyz", s.getReadyz)
	mux.HandleFunc("GET /metrics", s.getMetrics)
	mux.HandleFunc("GET /stats", s.getStats)
	// LogRequests sits outermost so its deferred log line also covers
	// requests that panic (Recover, inside, has already answered 500 by
	// the time the line is emitted).
	return Chain(mux,
		LogRequests(s.logger),
		Recover(s.logger),
		Instrument(s.metrics),
		LimitBody(s.maxBody),
	)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeError maps a request-body decode failure to a status code:
// bodies truncated by the LimitBody middleware are the client's fault
// at 413, everything else is a plain bad request.
func decodeError(w http.ResponseWriter, what string, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge, "parse %s: body exceeds %d bytes", what, mbe.Limit)
		return
	}
	httpError(w, http.StatusBadRequest, "parse %s: %v", what, err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) putNetwork(w http.ResponseWriter, r *http.Request) {
	var (
		net *netmodel.Network
		err error
	)
	switch r.URL.Query().Get("format") {
	case "", "json":
		net, err = netmodel.DecodeJSON(r.Body)
	case "text":
		net, err = netmodel.ParseText(r.Body)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", r.URL.Query().Get("format"))
		return
	}
	if err != nil {
		decodeError(w, "network", err)
		return
	}
	fp, err := core.Fingerprint(net)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "fingerprint network: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Idempotent re-upload: loading a byte-identical network again is a
	// no-op that keeps the accumulated trace, the replica pool, and the
	// retained job fragments — deploy pipelines PUT unconditionally, and
	// coverage must not evaporate when nothing changed.
	if s.net != nil && fp == s.fingerprintLocked() {
		body := statsBody(s.net, fp)
		body.Unchanged = true
		writeJSON(w, http.StatusOK, body)
		return
	}
	if s.net != nil {
		s.delta.networkResets++
		s.metrics.Counter(MetricNetworkResets).Inc()
	}
	s.net = net
	s.netFP = fp
	s.trace = core.NewTrace()         // a new network invalidates the old trace
	s.engine = nil                    // and the old replica pool
	s.jobTraces = map[string][]byte{} // job fragments decode against the old network
	s.jobProfiles = map[string][]byte{}
	s.engineBase = bdd.Stats{}        // fresh manager, fresh counter baseline
	writeJSON(w, http.StatusOK, statsBody(net, fp))
}

// fingerprintLocked returns the loaded network's fingerprint, computing
// and caching it on first use ("" with no network or on an encode
// failure — in which case a PUT/PATCH precondition can never match,
// which fails safe). Callers hold s.mu.
func (s *Server) fingerprintLocked() string {
	if s.net == nil {
		return ""
	}
	if s.netFP == "" {
		fp, err := core.Fingerprint(s.net)
		if err != nil {
			s.logger.Error("fingerprinting loaded network", "err", err)
			return ""
		}
		s.netFP = fp
	}
	return s.netFP
}

// NetworkStats is the GET /network (and PUT /network) response body.
type NetworkStats struct {
	Family  string `json:"family"`
	Devices int    `json:"devices"`
	Ifaces  int    `json:"ifaces"`
	Links   int    `json:"links"`
	Rules   int    `json:"rules"`
	// Fingerprint identifies the loaded network — the base a PATCH
	// /network delta document must name.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Unchanged marks a PUT that matched the loaded network's
	// fingerprint and therefore kept the trace and replica pool.
	Unchanged bool `json:"unchanged,omitempty"`
}

func statsBody(net *netmodel.Network, fp string) NetworkStats {
	st := net.Stats()
	return NetworkStats{
		Family:      net.Family().String(),
		Devices:     st.Devices,
		Ifaces:      st.Ifaces,
		Links:       st.Links,
		Rules:       st.Rules,
		Fingerprint: fp,
	}
}

func (s *Server) getNetwork(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusNotFound, "no network loaded")
		return
	}
	writeJSON(w, http.StatusOK, statsBody(s.net, s.fingerprintLocked()))
}

// TraceStats is the POST /trace response body: the size of the
// accumulated trace after the merge.
type TraceStats struct {
	Locations   int `json:"locations"`
	MarkedRules int `json:"markedRules"`
}

func (s *Server) postTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	frag, err := core.DecodeTraceJSON(s.net, r.Body)
	if err != nil {
		decodeError(w, "trace", err)
		return
	}
	s.trace.Merge(frag)
	st := s.trace.Stats()
	writeJSON(w, http.StatusOK, TraceStats{
		Locations:   st.Locations,
		MarkedRules: st.MarkedRules,
	})
}

func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Buffer the encoding so a failure can still produce a clean 500
	// instead of corrupting an already-started 200 response.
	var buf bytes.Buffer
	if err := s.trace.EncodeJSON(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "encode trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) deleteTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace = core.NewTrace()
	w.WriteHeader(http.StatusNoContent)
}

// RunResult is one element of the POST /run response body.
type RunResult struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Checks   int      `json:"checks"`
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
	// Errored marks a test that terminated abnormally (panic, budget,
	// cancellation) — a third state distinct from pass/fail; Error
	// carries the reason.
	Errored bool   `json:"errored,omitempty"`
	Error   string `json:"error,omitempty"`
}

// endSpan ends a request root span (EndStage feeds the stage latency
// histogram) and hands it to the WithSpanObserver hook, which sees it
// only after it is settled. The single finish path for request roots,
// deferred so panic and cancellation exits still pass through it.
func (s *Server) endSpan(sp *obs.Span) {
	sp.EndStage()
	if s.spanObserver != nil && sp != nil {
		s.spanObserver(sp)
	}
}

// evalContext derives the evaluation context for a compute-heavy
// endpoint: the request context (client disconnection cancels the
// work) bounded by the WithRunTimeout deadline.
func (s *Server) evalContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.runTimeout > 0 {
		return context.WithTimeout(r.Context(), s.runTimeout)
	}
	return context.WithCancel(r.Context())
}

// abortError maps an aborted evaluation to a response. Cancellation and
// deadline map to 503 (the work was valid, the server declined to finish
// it); budget exhaustion too, with the budget spelled out so operators
// can retune limits. The Retry-After hint keeps the 503 within the
// backpressure contract: every refusal tells the client when to come
// back.
func abortError(w http.ResponseWriter, what string, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(RetryAfterInflight))
	httpError(w, http.StatusServiceUnavailable, "%s aborted: %v", what, err)
}

func (s *Server) postRun(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	suite, err := builtinSuite(r.URL.Query().Get("suite"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers, err := s.requestWorkers(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.evalContext(r)
	defer cancel()
	// The request span carries the metrics registry into the evaluation:
	// sharded workers flush their per-run BDD deltas and budget trips
	// through it, and its EndStage feeds the stage latency histogram.
	sp := obs.NewRoot("service.run", s.metrics)
	defer s.endSpan(sp)
	ctx = obs.ContextWithSpan(ctx, sp)
	out, rerr := s.runSuiteLocked(ctx, suite, workers, s.trace)
	if rerr != nil {
		// Partial coverage already merged into the trace is kept: the
		// trace is a monotonic union and every marked set was really
		// exercised. The run itself reports the abort.
		abortError(w, "run", rerr)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// runSuiteLocked evaluates suite (sequentially or sharded across
// workers) against the loaded network, accumulating coverage into the
// destination trace, and converts the results to their wire form. The
// shared core of POST /run (into the server trace) and the async job
// runner (into a per-job fragment that is then folded into the server
// trace — see runJob). into must live in the canonical space. Callers
// hold s.mu and have attached any span to ctx.
func (s *Server) runSuiteLocked(ctx context.Context, suite testkit.Suite, workers int, into *core.Trace) ([]RunResult, error) {
	// The evaluation stage gets its own child span so even a sequential
	// run (workers=1, the common dispatch shape) exports a worker-side
	// stage beneath the request root — what a coordinator's cross-node
	// timeline links to. The sharded engine's build/shard children nest
	// beneath it through the re-wrapped context.
	eval := obs.SpanFromContext(ctx).Child("service.evaluate")
	eval.Set("workers", int64(workers))
	defer eval.EndStage()
	ctx = obs.ContextWithSpan(ctx, eval)
	var results []testkit.Result
	if workers > 1 {
		var err error
		results, err = s.runSharded(ctx, suite, workers, into)
		if err != nil {
			return nil, err
		}
	} else {
		defer s.net.Space.WatchContext(ctx)()
		gerr := bdd.Guard(func() { results = suite.Run(ctx, s.net, into) })
		if gerr == nil {
			gerr = ctx.Err()
		}
		if gerr != nil {
			return nil, gerr
		}
	}
	var out []RunResult
	for _, res := range results {
		rr := RunResult{
			Name:    res.Name,
			Kind:    string(res.Kind),
			Checks:  res.Checks,
			Pass:    res.Pass(),
			Errored: res.Errored(),
			Error:   res.Err,
		}
		for i, f := range res.Failures {
			if i == 10 {
				rr.Failures = append(rr.Failures, fmt.Sprintf("... %d more", len(res.Failures)-10))
				break
			}
			rr.Failures = append(rr.Failures, fmt.Sprintf("%s: %s", s.net.Device(f.Device).Name, f.Detail))
		}
		out = append(out, rr)
	}
	return out, nil
}

// builtinSuite resolves the suite names the CLI tools also accept.
func builtinSuite(arg string) (testkit.Suite, error) {
	return testkit.BuiltinSuite(arg)
}

// parseWorkers resolves a ?workers query value: absent means
// sequential (1); 0 asks for the server's cap (resolved by
// clampWorkers); negatives and non-integers are rejected.
func parseWorkers(q string) (int, error) {
	if q == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("workers: %q is not a non-negative integer", q)
	}
	return n, nil
}

// clampWorkers maps a requested worker count to the effective one:
// 0 means the WithWorkers cap, everything else is clamped to [1, cap].
func (s *Server) clampWorkers(n int) int {
	if n == 0 || n > s.maxWorkers {
		n = s.maxWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// requestWorkers resolves the ?workers query parameter against the
// WithWorkers cap.
func (s *Server) requestWorkers(r *http.Request) (int, error) {
	n, err := parseWorkers(r.URL.Query().Get("workers"))
	if err != nil {
		return 0, err
	}
	return s.clampWorkers(n), nil
}

// runSharded evaluates suite across up to n workers of the lazily built
// replica pool and merges the coverage into the destination trace. On
// error the partial merged coverage is kept (monotonic union) and the
// error describes the abort.
func (s *Server) runSharded(ctx context.Context, suite testkit.Suite, n int, into *core.Trace) ([]testkit.Result, error) {
	if s.engine == nil {
		// Build nil selects clone-based replicas: each worker space is an
		// O(size) arena snapshot of the canonical network, carrying its
		// match sets by node index.
		eng, err := sharded.New(ctx, s.net, sharded.Config{
			Workers: s.maxWorkers,
		})
		if err != nil {
			return nil, fmt.Errorf("building worker pool: %w", err)
		}
		s.engine = eng
	}
	res, rerr := s.engine.RunWorkers(ctx, suite, n)
	// res.Trace is already in the canonical space; folding it into the
	// accumulated trace is same-space unions. Guard anyway: the canonical
	// manager could have been poisoned by an earlier budgeted request.
	merr := bdd.Guard(func() { into.Merge(res.Trace) })
	if rerr != nil {
		return res.Results, rerr
	}
	return res.Results, merr
}

// CoverageReport is the GET /coverage response body.
type CoverageReport struct {
	Total  MetricsRow   `json:"total"`
	ByRole []MetricsRow `json:"byRole"`
	// Engine reports the symbolic engine's health counters, so budget
	// tuning and degradation incidents are diagnosable from responses.
	Engine EngineStats `json:"engine"`
}

// EngineStats mirrors bdd.Stats for the wire: node counts, the
// unique table's geometry (slots and load factor — a load pinned near
// 0.75 right after a resize is normal; a table far larger than the node
// count suggests a leaked manager), memo-array sizes, and op-cache
// counters. When a sharded worker pool exists, additive counters
// (nodes, ops, cache hits/misses, resizes, memo sizes) aggregate the
// canonical manager plus every replica, PeakNodes is the maximum over
// the managers, and table geometry stays the canonical manager's;
// Workers says how many managers contributed.
type EngineStats struct {
	Workers        int     `json:"workers"`
	Nodes          int     `json:"nodes"`
	PeakNodes      int     `json:"peakNodes"`
	UniqueSlots    int     `json:"uniqueSlots"`
	UniqueLoad     float64 `json:"uniqueLoad"`
	CacheSlots     int     `json:"cacheSlots"`
	SatFracEntries int     `json:"satFracEntries"`
	SatCntEntries  int     `json:"satCntEntries"`
	Ops            uint64  `json:"ops"`
	CacheHits      uint64  `json:"cacheHits"`
	CacheMisses    uint64  `json:"cacheMisses"`
	UniqueResizes  uint64  `json:"uniqueResizes"`
	CacheResizes   uint64  `json:"cacheResizes"`
}

func toEngineStats(st bdd.Stats) EngineStats {
	return EngineStats{
		Workers:        1,
		Nodes:          st.Nodes,
		PeakNodes:      st.PeakNodes,
		UniqueSlots:    st.UniqueSlots,
		UniqueLoad:     st.UniqueLoad,
		CacheSlots:     st.CacheSlots,
		SatFracEntries: st.SatFracEntries,
		SatCntEntries:  st.SatCntEntries,
		Ops:            st.Ops,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		UniqueResizes:  st.UniqueResizes,
		CacheResizes:   st.CacheResizes,
	}
}

// engineStatsLocked aggregates the canonical manager and, when the
// sharded pool exists, every replica manager. Callers hold s.mu.
func (s *Server) engineStatsLocked() EngineStats {
	es := toEngineStats(s.net.Space.EngineStats())
	if s.engine == nil {
		return es
	}
	for _, st := range s.engine.ReplicaStats() {
		es.Workers++
		es.Nodes += st.Nodes
		es.Ops += st.Ops
		es.CacheHits += st.CacheHits
		es.CacheMisses += st.CacheMisses
		es.UniqueResizes += st.UniqueResizes
		es.CacheResizes += st.CacheResizes
		es.SatFracEntries += st.SatFracEntries
		es.SatCntEntries += st.SatCntEntries
		if st.PeakNodes > es.PeakNodes {
			es.PeakNodes = st.PeakNodes
		}
	}
	return es
}

// MetricsRow is one group's coverage metrics.
type MetricsRow struct {
	Group            string  `json:"group"`
	Devices          int     `json:"devices"`
	DeviceFractional float64 `json:"deviceFractional"`
	IfaceFractional  float64 `json:"ifaceFractional"`
	RuleFractional   float64 `json:"ruleFractional"`
	RuleWeighted     float64 `json:"ruleWeighted"`
}

func toMetricsRow(m report.Metrics) MetricsRow {
	return MetricsRow{
		Group:            m.Label,
		Devices:          m.Devices,
		DeviceFractional: m.DeviceFractional,
		IfaceFractional:  m.IfaceFractional,
		RuleFractional:   m.RuleFractional,
		RuleWeighted:     m.RuleWeighted,
	}
}

func (s *Server) getCoverage(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	ctx, cancel := s.evalContext(r)
	defer cancel()
	defer s.net.Space.WatchContext(ctx)()
	start := time.Now()
	var body CoverageReport
	sp := obs.NewRoot("service.coverage", s.metrics)
	gerr := bdd.Guard(func() {
		cov := core.NewCoverage(s.net, s.trace)
		body.Total = toMetricsRow(report.Total(cov, "total"))
		seen := map[netmodel.Role]bool{}
		var roles []netmodel.Role
		for _, d := range s.net.Devices {
			if !seen[d.Role] {
				seen[d.Role] = true
				roles = append(roles, d.Role)
			}
		}
		for _, row := range report.ByRole(cov, roles) {
			body.ByRole = append(body.ByRole, toMetricsRow(row))
		}
	})
	s.endSpan(sp)
	compute := time.Since(start)
	if gerr == nil {
		// The engine polls its watched context every 1024 ops; small
		// computations can finish between polls, so backstop here.
		gerr = ctx.Err()
	}
	if gerr != nil {
		abortError(w, "coverage", gerr)
		return
	}
	body.Engine = s.engineStatsLocked()
	// Server-Timing (set before writeJSON starts the response): how the
	// request's time split between the coverage computation and the
	// stats/serialization tail.
	w.Header().Set("Server-Timing", fmt.Sprintf("compute;dur=%.2f, stats;dur=%.2f",
		float64(compute.Microseconds())/1000,
		float64(time.Since(start).Microseconds())/1000-float64(compute.Microseconds())/1000))
	writeJSON(w, http.StatusOK, body)
}

// getMetrics serves the Prometheus text exposition. The canonical
// manager's counters are settled into the registry first, so a scrape
// always reflects completed work, whichever endpoint performed it.
func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.flushCanonicalLocked()
	reg := s.metrics
	s.mu.Unlock()
	s.flushJobGauges()
	w.Header().Set("Content-Type", obs.ContentType)
	reg.WritePrometheus(w)
}

// flushCanonicalLocked settles the canonical BDD manager's counter
// movement since the last flush into the metrics registry. The single
// flush path for the canonical manager; callers hold s.mu.
func (s *Server) flushCanonicalLocked() {
	if s.net == nil {
		return
	}
	s.engineBase = s.net.Space.FlushStats(nil, s.metrics, s.engineBase)
	s.metrics.Gauge("yardstick_engine_nodes").Set(float64(s.net.Space.EngineStats().Nodes))
}

// StatsReport is the GET /stats response body: debug vars for humans
// and dashboards that want JSON rather than the Prometheus exposition.
type StatsReport struct {
	UptimeSeconds  float64      `json:"uptimeSeconds"`
	Goroutines     int          `json:"goroutines"`
	NetworkLoaded  bool         `json:"networkLoaded"`
	Network        NetworkStats `json:"network,omitempty"`
	TraceLocations int          `json:"traceLocations"`
	MarkedRules    int          `json:"markedRules"`
	Engine         EngineStats  `json:"engine,omitempty"`
	// Admission-layer health: job-queue depth and counters, currently
	// admitted heavy requests, draining state, and shed totals by
	// reason.
	Jobs     jobs.Stats `json:"jobs"`
	InFlight int64      `json:"inflight"`
	Draining bool       `json:"draining"`
	Shed     ShedReport `json:"shed"`
	// Delta reports churn-path totals: applied delta documents, full
	// network resets, and the rule/mark movement deltas caused.
	Delta DeltaReport `json:"delta"`
	// Routes summarizes per-route request latency — count plus p50/p99
	// quantile estimates from the same histogram /metrics exposes.
	Routes  []RouteStat  `json:"routes,omitempty"`
	Metrics []obs.Metric `json:"metrics"`
}

// RouteStat is one route's latency summary in GET /stats: request count
// and interpolated quantiles (seconds) from the Instrument middleware's
// per-route histogram.
type RouteStat struct {
	Route string  `json:"route"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50Seconds"`
	P99   float64 `json:"p99Seconds"`
}

// routeStats summarizes the per-route latency histograms. Routes with
// no observations yet are omitted.
func (s *Server) routeStats() []RouteStat {
	var out []RouteStat
	s.metrics.VisitHistograms("yardstick_http_request_duration_seconds", func(labels string, h *obs.Histogram) {
		if h.Count() == 0 {
			return
		}
		route := ""
		if pairs, err := obs.ParseLabelSig(labels); err == nil {
			for _, p := range pairs {
				if p[0] == "route" {
					route = p[1]
				}
			}
		}
		out = append(out, RouteStat{
			Route: route,
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
		})
	})
	return out
}

func (s *Server) getStats(w http.ResponseWriter, r *http.Request) {
	s.flushJobGauges()
	s.mu.Lock()
	body := StatsReport{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		NetworkLoaded: s.net != nil,
		Jobs:          s.jobs.Stats(),
		InFlight:      s.inflight.Load(),
		Draining:      s.draining.Load(),
		Shed:          s.shedTotals.report(),
		Delta:         s.delta.report(),
		Routes:        s.routeStats(),
	}
	ts := s.trace.Stats()
	body.TraceLocations = ts.Locations
	body.MarkedRules = ts.MarkedRules
	if s.net != nil {
		body.Network = statsBody(s.net, s.fingerprintLocked())
		body.Engine = s.engineStatsLocked()
		s.flushCanonicalLocked()
	}
	body.Metrics = s.metrics.Snapshot()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

// Gap is one element of the GET /gaps response body.
type Gap struct {
	Origin string `json:"origin"`
	Role   string `json:"role"`
	Count  int    `json:"count"`
}

func (s *Server) getGaps(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	ctx, cancel := s.evalContext(r)
	defer cancel()
	defer s.net.Space.WatchContext(ctx)()
	out := []Gap{}
	gerr := bdd.Guard(func() {
		cov := core.NewCoverage(s.net, s.trace)
		for _, g := range report.Gaps(cov) {
			out = append(out, Gap{Origin: string(g.Origin), Role: string(g.Role), Count: g.Count})
		}
	})
	if gerr == nil {
		gerr = ctx.Err()
	}
	if gerr != nil {
		abortError(w, "gap report", gerr)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyReport is the GET /readyz response body. When unready, Reason is
// one of "draining" (shutdown has begun — route elsewhere),
// "queue_saturated" (the job queue has no admission headroom), or
// "no_network" (nothing loaded yet).
type ReadyReport struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// getReadyz reports readiness with an explicit reason body, so load
// balancers and operators can tell "never came up" from "overloaded"
// from "going away" without reading logs.
func (s *Server) getReadyz(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case s.draining.Load():
		reason = "draining"
	case func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.net == nil }():
		reason = "no_network"
	case s.jobs.Stats().Saturated():
		reason = "queue_saturated"
	}
	if reason != "" {
		if reason != "no_network" {
			// Transient unreadiness comes with a retry hint; an unloaded
			// network needs an operator, not a retry loop.
			w.Header().Set("Retry-After", strconv.Itoa(RetryAfterQueueFull))
		}
		writeJSON(w, http.StatusServiceUnavailable, ReadyReport{Status: "unready", Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, ReadyReport{Status: "ready"})
}

// Checkpoint writes the current trace and job records to their snapshot
// files (atomic rename; see core.SaveSnapshotArena and jobs.Save). The
// trace goes out in the binary arena codec — sets persisted as a BDD
// dump, no cube extraction — and Restore reads either codec, so daemons
// upgrade from JSON checkpoints transparently. It is a no-op without
// WithSnapshot or before a network is loaded.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapPath == "" || s.net == nil {
		return nil
	}
	if err := core.SaveSnapshotArena(s.snapPath, s.net, s.trace); err != nil {
		return err
	}
	return s.checkpointJobsLocked()
}

// Restore recovers the trace from the snapshot file. It reports whether
// a snapshot was merged: a missing file or a fingerprint mismatch
// (snapshot recorded against a different network) is not an error — the
// stale snapshot is discarded and the server starts from the current
// trace. It is a no-op without WithSnapshot or before a network is
// loaded.
func (s *Server) Restore() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapPath == "" || s.net == nil {
		return false, nil
	}
	// Job records recover independently of the trace: a missing or
	// mismatched trace snapshot must not discard completed job results,
	// and vice versa.
	if _, err := s.restoreJobsLocked(); err != nil {
		return false, fmt.Errorf("restore job records: %w", err)
	}
	snap, err := core.LoadSnapshot(s.snapPath, s.net)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return false, nil
	case errors.Is(err, core.ErrSnapshotMismatch):
		s.logger.Warn("snapshot recorded against a different network; discarding", "path", s.snapPath)
		return false, nil
	case err != nil:
		return false, err
	}
	s.trace.Merge(snap)
	return true, nil
}

// RunCheckpointer checkpoints every WithSnapshot interval until ctx is
// done, then takes a final checkpoint so shutdown never loses trace
// state. It returns immediately when persistence is not configured.
func (s *Server) RunCheckpointer(ctx context.Context) {
	s.mu.Lock()
	path, interval := s.snapPath, s.snapInterval
	s.mu.Unlock()
	if path == "" {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := s.Checkpoint(); err != nil {
				s.logger.Error("checkpoint failed", "err", err)
			}
		case <-ctx.Done():
			if err := s.Checkpoint(); err != nil {
				s.logger.Error("final checkpoint failed", "err", err)
			}
			return
		}
	}
}
