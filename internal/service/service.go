// Package service exposes Yardstick as an HTTP service — the shape it
// has in production (§7: "Yardstick is deployed in Azure as part of a
// service to evaluate the impact of changes"). A server holds one
// network and one accumulating coverage trace; testing tools report
// coverage remotely by POSTing trace fragments (the §5.1 markPacket/
// markRule feed, serialized as BDD cubes), or ask the server to run its
// built-in suites; engineers read metrics, role breakdowns, and gap
// reports.
//
// Endpoints:
//
//	PUT    /network          load a network (JSON body; ?format=text for the text format)
//	GET    /network          current network stats
//	POST   /trace            merge a trace fragment (trace JSON)
//	GET    /trace            download the accumulated trace
//	DELETE /trace            reset the trace
//	POST   /run?suite=a,b    run built-in tests server-side, accumulate coverage
//	GET    /coverage         headline metrics + per-role rows
//	GET    /gaps             untested rules by origin and role
//
// The server serializes all requests: the underlying BDD manager is
// single-threaded by design.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/report"
	"yardstick/internal/testkit"
)

// Server is the HTTP coverage service. Create with New and mount via
// Handler.
type Server struct {
	mu    sync.Mutex
	net   *netmodel.Network
	trace *core.Trace
}

// New returns a server with no network loaded.
func New() *Server {
	return &Server{trace: core.NewTrace()}
}

// WithNetwork returns a server pre-loaded with a network.
func WithNetwork(net *netmodel.Network) *Server {
	return &Server{net: net, trace: core.NewTrace()}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /network", s.putNetwork)
	mux.HandleFunc("GET /network", s.getNetwork)
	mux.HandleFunc("POST /trace", s.postTrace)
	mux.HandleFunc("GET /trace", s.getTrace)
	mux.HandleFunc("DELETE /trace", s.deleteTrace)
	mux.HandleFunc("POST /run", s.postRun)
	mux.HandleFunc("GET /coverage", s.getCoverage)
	mux.HandleFunc("GET /gaps", s.getGaps)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) putNetwork(w http.ResponseWriter, r *http.Request) {
	var (
		net *netmodel.Network
		err error
	)
	switch r.URL.Query().Get("format") {
	case "", "json":
		net, err = netmodel.DecodeJSON(r.Body)
	case "text":
		net, err = netmodel.ParseText(r.Body)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", r.URL.Query().Get("format"))
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse network: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net = net
	s.trace = core.NewTrace() // a new network invalidates the old trace
	writeJSON(w, http.StatusOK, statsBody(net))
}

type networkStats struct {
	Family  string `json:"family"`
	Devices int    `json:"devices"`
	Ifaces  int    `json:"ifaces"`
	Links   int    `json:"links"`
	Rules   int    `json:"rules"`
}

func statsBody(net *netmodel.Network) networkStats {
	st := net.Stats()
	return networkStats{
		Family:  net.Family().String(),
		Devices: st.Devices,
		Ifaces:  st.Ifaces,
		Links:   st.Links,
		Rules:   st.Rules,
	}
}

func (s *Server) getNetwork(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusNotFound, "no network loaded")
		return
	}
	writeJSON(w, http.StatusOK, statsBody(s.net))
}

func (s *Server) postTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	frag, err := core.DecodeTraceJSON(s.net, r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse trace: %v", err)
		return
	}
	s.trace.Merge(frag)
	st := s.trace.Stats()
	writeJSON(w, http.StatusOK, map[string]int{
		"locations":   st.Locations,
		"markedRules": st.MarkedRules,
	})
}

func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := s.trace.EncodeJSON(w); err != nil {
		httpError(w, http.StatusInternalServerError, "encode trace: %v", err)
	}
}

func (s *Server) deleteTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace = core.NewTrace()
	w.WriteHeader(http.StatusNoContent)
}

type runResult struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Checks   int      `json:"checks"`
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

func (s *Server) postRun(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	suite, err := builtinSuite(r.URL.Query().Get("suite"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var out []runResult
	for _, res := range suite.Run(s.net, s.trace) {
		rr := runResult{
			Name:   res.Name,
			Kind:   string(res.Kind),
			Checks: res.Checks,
			Pass:   res.Pass(),
		}
		for i, f := range res.Failures {
			if i == 10 {
				rr.Failures = append(rr.Failures, fmt.Sprintf("... %d more", len(res.Failures)-10))
				break
			}
			rr.Failures = append(rr.Failures, fmt.Sprintf("%s: %s", s.net.Device(f.Device).Name, f.Detail))
		}
		out = append(out, rr)
	}
	writeJSON(w, http.StatusOK, out)
}

// builtinSuite resolves the suite names the CLI tools also accept.
func builtinSuite(arg string) (testkit.Suite, error) {
	return testkit.BuiltinSuite(arg)
}

type coverageBody struct {
	Total  metricsBody   `json:"total"`
	ByRole []metricsBody `json:"byRole"`
}

type metricsBody struct {
	Group            string  `json:"group"`
	Devices          int     `json:"devices"`
	DeviceFractional float64 `json:"deviceFractional"`
	IfaceFractional  float64 `json:"ifaceFractional"`
	RuleFractional   float64 `json:"ruleFractional"`
	RuleWeighted     float64 `json:"ruleWeighted"`
}

func toMetricsBody(m report.Metrics) metricsBody {
	return metricsBody{
		Group:            m.Label,
		Devices:          m.Devices,
		DeviceFractional: m.DeviceFractional,
		IfaceFractional:  m.IfaceFractional,
		RuleFractional:   m.RuleFractional,
		RuleWeighted:     m.RuleWeighted,
	}
}

func (s *Server) getCoverage(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	cov := core.NewCoverage(s.net, s.trace)
	body := coverageBody{Total: toMetricsBody(report.Total(cov, "total"))}
	seen := map[netmodel.Role]bool{}
	var roles []netmodel.Role
	for _, d := range s.net.Devices {
		if !seen[d.Role] {
			seen[d.Role] = true
			roles = append(roles, d.Role)
		}
	}
	for _, row := range report.ByRole(cov, roles) {
		body.ByRole = append(body.ByRole, toMetricsBody(row))
	}
	writeJSON(w, http.StatusOK, body)
}

type gapBody struct {
	Origin string `json:"origin"`
	Role   string `json:"role"`
	Count  int    `json:"count"`
}

func (s *Server) getGaps(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	cov := core.NewCoverage(s.net, s.trace)
	out := []gapBody{}
	for _, g := range report.Gaps(cov) {
		out = append(out, gapBody{Origin: string(g.Origin), Role: string(g.Role), Count: g.Count})
	}
	writeJSON(w, http.StatusOK, out)
}
