package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

// TestInflightCapSheds drives the admit wrapper directly: with a cap of
// 1, a second concurrent request is shed with 429 + Retry-After while
// the first is still in the handler.
func TestInflightCapSheds(t *testing.T) {
	s := New(WithLogger(discardLogger()), WithAdmission(1))
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	h := s.admit("/test", func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(entered) })
		<-release // closed after the shed is observed; later requests pass through
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("admitted request = %d, want 200", resp.StatusCode)
		}
	}()
	<-entered // the slot is taken

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	close(release)
	wg.Wait()

	// The slot frees: the next request is admitted again.
	resp2, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release request = %d, want 200", resp2.StatusCode)
	}
	if s.shedTotals.Inflight.Load() != 1 {
		t.Fatalf("inflight shed total = %d, want 1", s.shedTotals.Inflight.Load())
	}
}

// TestDraining: once draining, heavy endpoints shed with 503 +
// Retry-After, /readyz reports the reason, and observability endpoints
// stay reachable; un-draining restores admission.
func TestDraining(t *testing.T) {
	srv, ts := newJobServer(t)
	srv.SetDraining(true)

	for _, ep := range []struct{ method, path string }{
		{http.MethodPost, "/run?suite=default"},
		{http.MethodPost, "/jobs?suite=default"},
		{http.MethodGet, "/coverage"},
		{http.MethodGet, "/gaps"},
	} {
		req, _ := http.NewRequest(ep.method, ts.URL+ep.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining %s %s = %d, want 503", ep.method, ep.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("draining %s %s missing Retry-After", ep.method, ep.path)
		}
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready ReadyReport
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Reason != "draining" {
		t.Fatalf("/readyz draining = %d %+v", resp.StatusCode, ready)
	}

	// Cheap observability endpoints stay reachable while draining.
	for _, path := range []string{"/healthz", "/metrics", "/stats", "/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("draining GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// Un-draining restores admission.
	srv.SetDraining(false)
	resp2, err := http.Post(ts.URL+"/run?suite=default", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain /run = %d, want 200", resp2.StatusCode)
	}
}

// TestReadyzNoNetworkReason: an empty server reports why it is unready.
func TestReadyzNoNetworkReason(t *testing.T) {
	ts := httptest.NewServer(New(WithLogger(discardLogger())).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready ReadyReport
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Reason != "no_network" {
		t.Fatalf("/readyz = %d %+v, want 503 no_network", resp.StatusCode, ready)
	}
}
