package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

func netStats(t *testing.T, url string) NetworkStats {
	t.Helper()
	var st NetworkStats
	doJSON(t, "GET", url+"/network", nil, http.StatusOK, &st)
	return st
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPatchNetwork(t *testing.T) {
	ts, rg := newTestServer(t)

	// Accumulate a trace the delta must carry across.
	doJSON(t, "POST", ts.URL+"/run?suite=default,internal", nil, http.StatusOK, nil)
	var covBefore CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &covBefore)
	if covBefore.Total.RuleFractional <= 0 {
		t.Fatal("no coverage to carry")
	}
	before := netStats(t, ts.URL)
	if before.Fingerprint == "" {
		t.Fatal("GET /network carries no fingerprint")
	}

	mod := rg.Net.RuleSpecOf(1)
	mod.Match.Dst = "10.99.0.0/16"
	add := netmodel.RuleSpec{
		Device: mod.Device, Table: "fib", Action: "drop",
		Match:  netmodel.MatchSpec{Dst: "10.123.0.0/16"},
		Origin: "static",
	}
	doc := delta.Document{Base: before.Fingerprint, Ops: []delta.Op{
		{Op: delta.OpRemove, Rule: 0},
		{Op: delta.OpModify, Rule: 1, Spec: &mod},
		{Op: delta.OpAdd, Spec: &add},
	}}
	var ap delta.Applied
	doJSON(t, "PATCH", ts.URL+"/network", marshal(t, doc), http.StatusOK, &ap)
	if ap.Removed != 1 || ap.Modified != 1 || ap.Added != 1 {
		t.Fatalf("applied = %+v", ap)
	}
	if ap.Fingerprint == before.Fingerprint || ap.Fingerprint == "" {
		t.Fatal("fingerprint did not advance")
	}
	if len(ap.Drift) == 0 {
		t.Error("no drift rows for touched devices")
	}

	after := netStats(t, ts.URL)
	if after.Fingerprint != ap.Fingerprint {
		t.Errorf("GET /network fingerprint %s, PATCH reported %s", after.Fingerprint, ap.Fingerprint)
	}
	if after.Rules != before.Rules {
		t.Errorf("rules = %d, want %d (one removed, one added)", after.Rules, before.Rules)
	}

	// The trace survived: coverage is still measurable, not reset.
	var covAfter CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &covAfter)
	if covAfter.Total.RuleFractional <= 0 {
		t.Error("delta reset the trace")
	}

	// And a second run still works against the patched universe.
	doJSON(t, "POST", ts.URL+"/run?suite=default", nil, http.StatusOK, nil)

	var st StatsReport
	doJSON(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &st)
	if st.Delta.Applied != 1 || st.Delta.RulesRemoved != 1 ||
		st.Delta.RulesModified != 1 || st.Delta.RulesAdded != 1 {
		t.Errorf("delta report = %+v", st.Delta)
	}
	if st.Delta.NetworkResets != 0 {
		t.Errorf("networkResets = %d on a delta-only history", st.Delta.NetworkResets)
	}
}

func TestPatchStaleBase(t *testing.T) {
	ts, _ := newTestServer(t)
	before := netStats(t, ts.URL)
	doc := delta.Document{Base: "deadbeef", Ops: []delta.Op{{Op: delta.OpRemove, Rule: 0}}}
	req, _ := http.NewRequest("PATCH", ts.URL+"/network", bytes.NewReader(marshal(t, doc)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["current"] != before.Fingerprint {
		t.Errorf("409 body current = %q, want live fingerprint %q", body["current"], before.Fingerprint)
	}
	if netStats(t, ts.URL).Fingerprint != before.Fingerprint {
		t.Error("stale delta changed the network")
	}
}

func TestPatchBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	before := netStats(t, ts.URL)
	doJSON(t, "PATCH", ts.URL+"/network", []byte("junk"), http.StatusBadRequest, nil)
	bad := delta.Document{Ops: []delta.Op{{Op: "replace", Rule: 0}}}
	doJSON(t, "PATCH", ts.URL+"/network", marshal(t, bad), http.StatusBadRequest, nil)
	outOfRange := delta.Document{Ops: []delta.Op{{Op: delta.OpRemove, Rule: 1 << 20}}}
	doJSON(t, "PATCH", ts.URL+"/network", marshal(t, outOfRange), http.StatusBadRequest, nil)
	if netStats(t, ts.URL).Fingerprint != before.Fingerprint {
		t.Error("rejected deltas changed the network")
	}

	// No network loaded: 409, mirroring the other evaluation routes.
	empty := httptest.NewServer(New(WithLogger(discardLogger())).Handler())
	defer empty.Close()
	ok := delta.Document{Ops: []delta.Op{{Op: delta.OpRemove, Rule: 0}}}
	doJSON(t, "PATCH", empty.URL+"/network", marshal(t, ok), http.StatusConflict, nil)
}

// TestPutNetworkIdempotent is the PUT no-op satellite: re-uploading the
// network that is already loaded must keep the accumulated trace (and
// count no reset), while a genuinely different network still resets.
func TestPutNetworkIdempotent(t *testing.T) {
	ts, rg := newTestServer(t)

	doJSON(t, "POST", ts.URL+"/run?suite=default", nil, http.StatusOK, nil)
	var covBefore CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &covBefore)
	if covBefore.Total.RuleFractional <= 0 {
		t.Fatal("no coverage accumulated")
	}

	var buf bytes.Buffer
	if err := rg.Net.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var st NetworkStats
	doJSON(t, "PUT", ts.URL+"/network", buf.Bytes(), http.StatusOK, &st)
	if !st.Unchanged {
		t.Fatal("re-upload of the loaded network not detected as unchanged")
	}
	var covAfter CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &covAfter)
	if covAfter.Total.RuleFractional != covBefore.Total.RuleFractional {
		t.Error("no-op PUT changed coverage — the trace was reset")
	}
	var sr StatsReport
	doJSON(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &sr)
	if sr.Delta.NetworkResets != 0 {
		t.Errorf("networkResets = %d after a no-op PUT", sr.Delta.NetworkResets)
	}

	// A different network is a real replacement: trace resets, the
	// counter moves.
	other, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 1,
		SpinesPerDC: 1, Hubs: 2, WANHubs: 1, WANPrefixes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := other.Net.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var st2 NetworkStats
	doJSON(t, "PUT", ts.URL+"/network", buf.Bytes(), http.StatusOK, &st2)
	if st2.Unchanged {
		t.Fatal("different network marked unchanged")
	}
	var covReset CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &covReset)
	if covReset.Total.RuleFractional != 0 {
		t.Error("network replacement did not reset the trace")
	}
	doJSON(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &sr)
	if sr.Delta.NetworkResets != 1 {
		t.Errorf("networkResets = %d after a real replacement", sr.Delta.NetworkResets)
	}
}
