package service_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"

	"yardstick/internal/service"
	"yardstick/internal/topogen"
)

// Example shows the remote workflow: run a suite server-side, then read
// the aggregate coverage.
func Example() {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(service.WithNetwork(rg.Net).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/run?suite=default,connected", "", nil)
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("run:", resp.Status)

	resp, err = http.Get(ts.URL + "/gaps")
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("gaps:", resp.Status)
	// Output:
	// run: 200 OK
	// gaps: 200 OK
}
