package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"

	"yardstick/internal/core"
	"yardstick/internal/jobs"
	"yardstick/internal/obs"
	"yardstick/internal/testkit"
)

// The asynchronous run API. POST /run holds the connection for the
// whole evaluation; POST /jobs instead answers 202 immediately with a
// job the caller polls (or cancels), which is what lets the admission
// layer bound the daemon's concurrent work: the queue is the buffer,
// its depth is the backpressure signal, and a full queue sheds with
// 503 + Retry-After instead of stacking goroutines on the evaluation
// mutex.
//
//	POST   /jobs?suite=a,b[&workers=n]   submit; 202 + Location: /jobs/{id}
//	GET    /jobs                         list retained jobs (oldest first)
//	GET    /jobs/{id}                    poll one job; Result set once done
//	DELETE /jobs/{id}                    cancel a queued or running job
//
// Completed jobs are retained for the configured TTL and — when
// WithSnapshot is active — persisted next to the trace snapshot under
// the same network fingerprint, so a poller can fetch a finished job's
// result even across a daemon restart. Jobs caught queued or running
// by a restart come back failed with an explicit reason.

// JobStatus is the wire form of an async job (the POST /jobs and GET
// /jobs/{id} body).
type JobStatus = jobs.Job

// JobList is the GET /jobs response body.
type JobList struct {
	Jobs  []JobStatus `json:"jobs"`
	Stats jobs.Stats  `json:"stats"`
}

// runJob is the queue's Runner: it resolves the suite, serializes on
// the evaluation mutex like every synchronous endpoint, and returns the
// run results as the job's opaque result payload. The queue has already
// bounded ctx with the run-timeout and wires DELETE /jobs/{id} into its
// cancellation.
func (s *Server) runJob(ctx context.Context, spec jobs.Spec) (json.RawMessage, error) {
	suite, err := testkit.BuiltinSuite(spec.Suites)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		return nil, errors.New("no network loaded")
	}
	workers := s.clampWorkers(spec.Workers)
	sp := obs.NewRoot("service.job", s.metrics)
	defer sp.EndStage()
	ctx = obs.ContextWithSpan(ctx, sp)
	out, err := s.runSuiteLocked(ctx, suite, workers)
	if err != nil {
		return nil, fmt.Errorf("run aborted: %w", err)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("encode results: %w", err)
	}
	return raw, nil
}

func (s *Server) postJob(w http.ResponseWriter, r *http.Request) {
	// Validate up front so a bad suite or workers value fails the submit
	// with a 400 now, not the job with a failure later.
	if _, err := testkit.BuiltinSuite(r.URL.Query().Get("suite")); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers, err := parseWorkers(r.URL.Query().Get("workers"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.jobs.Submit(jobs.Spec{
		Suites:  r.URL.Query().Get("suite"),
		Workers: workers,
	})
	if errors.Is(err, jobs.ErrQueueFull) {
		s.shedTotals.QueueFull.Add(1)
		s.shed(w, "/jobs", "queue_full", http.StatusServiceUnavailable,
			RetryAfterQueueFull, "job queue full (depth %d)", s.jobs.Config().QueueDepth)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "submit: %v", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobList{Jobs: s.jobs.Jobs(), Stats: s.jobs.Stats()})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) deleteJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	case errors.Is(err, jobs.ErrFinished):
		httpError(w, http.StatusConflict, "job %s already %s", j.ID, j.State)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "cancel: %v", err)
	default:
		writeJSON(w, http.StatusOK, j)
	}
}

// RunJobs runs the job queue's worker pool until ctx is cancelled and
// every worker has exited — the same blocking lifecycle shape as
// RunCheckpointer. The daemon runs it in a goroutine and waits for it
// before the final checkpoint, so persisted job states are settled.
func (s *Server) RunJobs(ctx context.Context) {
	s.jobs.Start(ctx)
	s.jobs.Wait()
}

// JobStats exposes the queue's health counters (also served inside
// GET /stats).
func (s *Server) JobStats() jobs.Stats { return s.jobs.Stats() }

// flushJobGauges refreshes the queue-health gauges in the metrics
// registry; called at scrape time so /metrics always reflects the
// current queue shape.
func (s *Server) flushJobGauges() {
	st := s.jobs.Stats()
	s.metrics.Gauge("yardstick_jobs_queue_depth").Set(float64(st.Depth))
	s.metrics.Gauge("yardstick_jobs_running").Set(float64(st.Running))
	s.metrics.Gauge("yardstick_jobs_retained").Set(float64(st.Retained))
}

// checkpointJobsLocked persists the job records next to the trace
// snapshot under the same network fingerprint. Callers hold s.mu.
func (s *Server) checkpointJobsLocked() error {
	if s.jobsPath == "" || s.net == nil {
		return nil
	}
	fp, err := core.Fingerprint(s.net)
	if err != nil {
		return err
	}
	return jobs.Save(s.jobsPath, fp, s.jobs.Records())
}

// restoreJobsLocked recovers persisted job records. Missing files and
// fingerprint mismatches are tolerated (stale records are discarded).
// Callers hold s.mu.
func (s *Server) restoreJobsLocked() (int, error) {
	if s.jobsPath == "" || s.net == nil {
		return 0, nil
	}
	fp, err := core.Fingerprint(s.net)
	if err != nil {
		return 0, err
	}
	recs, err := jobs.Load(s.jobsPath, fp)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return 0, nil
	case errors.Is(err, jobs.ErrMismatch):
		s.logger.Warn("job records recorded against a different network; discarding", "path", s.jobsPath)
		return 0, nil
	case err != nil:
		return 0, err
	}
	recovered, interrupted := s.jobs.Restore(recs)
	if interrupted > 0 {
		s.logger.Warn("jobs interrupted by restart surfaced as failed", "count", interrupted)
	}
	return recovered, nil
}
