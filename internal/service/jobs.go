package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"runtime/pprof"
	"strconv"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/jobs"
	"yardstick/internal/obs"
	"yardstick/internal/testkit"
)

// The asynchronous run API. POST /run holds the connection for the
// whole evaluation; POST /jobs instead answers 202 immediately with a
// job the caller polls (or cancels), which is what lets the admission
// layer bound the daemon's concurrent work: the queue is the buffer,
// its depth is the backpressure signal, and a full queue sheds with
// 503 + Retry-After instead of stacking goroutines on the evaluation
// mutex.
//
//	POST   /jobs?suite=a,b[&workers=n]   submit; 202 + Location: /jobs/{id}
//	GET    /jobs                         list retained jobs (oldest first;
//	                                     ?state= filters, ?offset=/?limit=
//	                                     page — the response is hard-capped
//	                                     and carries X-Total-Count plus a
//	                                     Link rel="next" header when more
//	                                     rows remain)
//	GET    /jobs/{id}                    poll one job; Result set once done
//	GET    /jobs/{id}/trace              a done job's own coverage fragment
//	                                     as trace JSON (409 until done, 410
//	                                     once evicted or after a restart)
//	DELETE /jobs/{id}                    cancel a queued or running job
//
// Completed jobs are retained for the configured TTL and — when
// WithSnapshot is active — persisted next to the trace snapshot under
// the same network fingerprint, so a poller can fetch a finished job's
// result even across a daemon restart. Jobs caught queued or running
// by a restart come back failed with an explicit reason.

// JobStatus is the wire form of an async job (the POST /jobs and GET
// /jobs/{id} body).
type JobStatus = jobs.Job

// JobList is the GET /jobs response body.
type JobList struct {
	Jobs  []JobStatus `json:"jobs"`
	Stats jobs.Stats  `json:"stats"`
}

// runJob is the queue's Runner: it resolves the suite, serializes on
// the evaluation mutex like every synchronous endpoint, and returns the
// run results as the job's opaque result payload. The queue has already
// bounded ctx with the run-timeout and wires DELETE /jobs/{id} into its
// cancellation.
//
// Unlike POST /run, the job records its coverage into a private
// fragment first and only then folds the fragment into the accumulated
// trace — both live in the canonical space, so the fold is a cheap
// same-space union. The fragment is what GET /jobs/{id}/trace exports:
// a distributed coordinator needs exactly this shard's contribution,
// not whatever else the node has accumulated.
func (s *Server) runJob(ctx context.Context, spec jobs.Spec) (json.RawMessage, error) {
	// The goroutine runs under pprof labels for the job (and, when this
	// is a shard of a distributed run, the run and shard IDs), so a
	// -pprof-addr CPU profile attributes samples to specific runs.
	labels := []string{"job", jobs.JobID(ctx)}
	if spec.RunID != "" {
		labels = append(labels, "run", spec.RunID)
	}
	if spec.Shard != "" {
		labels = append(labels, "shard", spec.Shard)
	}
	var raw json.RawMessage
	var err error
	pprof.Do(ctx, pprof.Labels(labels...), func(ctx context.Context) {
		raw, err = s.runJobLabeled(ctx, spec)
	})
	return raw, err
}

// runJobLabeled is runJob's body, running under the job's pprof labels.
func (s *Server) runJobLabeled(ctx context.Context, spec jobs.Spec) (json.RawMessage, error) {
	suite, err := testkit.BuiltinSuite(spec.Suites)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		return nil, errors.New("no network loaded")
	}
	workers := s.clampWorkers(spec.Workers)
	jobID := jobs.JobID(ctx)
	sp := obs.NewRoot("service.job", s.metrics)
	sp.SetTag("job", jobID)
	if spec.RunID != "" {
		sp.SetTag("run", spec.RunID)
		s.logger.Info("running distributed shard",
			"job", jobID, "run", spec.RunID, "shard", spec.Shard)
	}
	if spec.Shard != "" {
		sp.SetTag("shard", spec.Shard)
	}
	// One deferred finish path: end the span, store its profile for
	// GET /jobs/{id}/profile (even for aborted runs — a partial profile
	// still explains where the time went), then hand it to the observer.
	defer func() {
		sp.EndStage()
		s.storeJobProfileLocked(jobID, sp)
		if s.spanObserver != nil {
			s.spanObserver(sp)
		}
	}()
	ctx = obs.ContextWithSpan(ctx, sp)
	frag := core.NewTrace()
	out, err := s.runSuiteLocked(ctx, suite, workers, frag)
	// Whatever coverage the run managed to record is kept, even when the
	// run aborted: the trace is a monotonic union. Guarded — folding is
	// same-space BDD unions and the manager may have been poisoned by a
	// budget trip during the run.
	if merr := bdd.Guard(func() { s.trace.Merge(frag) }); err == nil {
		err = merr
	}
	if err != nil {
		return nil, fmt.Errorf("run aborted: %w", err)
	}
	if err := s.storeJobTraceLocked(jobID, frag); err != nil {
		return nil, fmt.Errorf("encode job trace: %w", err)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("encode results: %w", err)
	}
	return raw, nil
}

// storeJobTraceLocked serializes a finished job's coverage fragment for
// GET /jobs/{id}/trace and prunes artifacts whose jobs the queue no
// longer retains, so the artifact map is bounded by job retention.
// Cube extraction is BDD-manager work; callers hold s.mu.
func (s *Server) storeJobTraceLocked(id string, frag *core.Trace) error {
	if id == "" {
		return nil // not running under the job queue (tests driving runJob directly)
	}
	var buf bytes.Buffer
	if err := frag.EncodeJSON(&buf); err != nil {
		return err
	}
	for old := range s.jobTraces {
		if _, ok := s.jobs.Get(old); !ok {
			delete(s.jobTraces, old)
		}
	}
	s.jobTraces[id] = buf.Bytes()
	return nil
}

// storeJobProfileLocked serializes a finished job's span profile for
// GET /jobs/{id}/profile, pruning entries whose jobs the queue no
// longer retains. Callers hold s.mu.
func (s *Server) storeJobProfileLocked(id string, sp *obs.Span) {
	if id == "" || sp == nil {
		return
	}
	var buf bytes.Buffer
	if err := sp.Profile().EncodeJSON(&buf); err != nil {
		s.logger.Error("encoding job span profile", "job", id, "err", err)
		return
	}
	for old := range s.jobProfiles {
		if _, ok := s.jobs.Get(old); !ok {
			delete(s.jobProfiles, old)
		}
	}
	s.jobProfiles[id] = buf.Bytes()
}

// getJobProfile serves a finished job's span profile as JSON — the
// worker-side half of a distributed run's timeline. Same ladder as the
// trace artifact: 404 unknown, 409 + Retry-After while the job still
// runs, 410 once the profile has been evicted or lost to a restart.
// Unlike the trace, failed and cancelled jobs do serve their (partial)
// profile: a timeline that explains where an aborted shard's time went
// is exactly what the abort investigation needs.
func (s *Server) getJobProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !j.State.Terminal() {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterInflight))
		httpError(w, http.StatusConflict, "job %s is %s; profile available once finished", id, j.State)
		return
	}
	s.mu.Lock()
	data, ok := s.jobProfiles[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusGone, "job %s profile no longer available (evicted or daemon restarted)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// getJobTrace serves a done job's own coverage fragment as trace JSON.
// The status codes draw the coordinator's re-dispatch map: 404 means
// the job never existed here (or was swept — resubmit), 409 means poll
// again (the job is not done), and 410 means the result is done but
// the fragment is gone (artifacts are memory-only; a restarted daemon
// keeps the job record, not the trace) — re-run the shard, the merge
// being idempotent makes that exact.
func (s *Server) getJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !j.State.Terminal() {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterInflight))
		httpError(w, http.StatusConflict, "job %s is %s; trace available once done", id, j.State)
		return
	}
	if j.State != jobs.StateDone {
		httpError(w, http.StatusConflict, "job %s ended %s; no trace", id, j.State)
		return
	}
	s.mu.Lock()
	data, ok := s.jobTraces[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusGone, "job %s trace no longer available (evicted or daemon restarted); re-run the shard", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// Run-context propagation headers. The coordinator mints a run ID per
// distributed run and a shard ID per dispatch and sends both on every
// job submission; the worker threads them through the job record into
// its span tags, log lines, and pprof labels.
const (
	HeaderRunID   = "X-Run-Id"
	HeaderShardID = "X-Shard-Id"
)

// runContextValue validates one run-context header value: at most 64
// bytes of [A-Za-z0-9._:/-]. Anything else is treated as absent — these
// values become observability identifiers, not free-form data.
func runContextValue(v string) string {
	if v == "" || len(v) > 64 {
		return ""
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == ':' || c == '/' || c == '-':
		default:
			return ""
		}
	}
	return v
}

func (s *Server) postJob(w http.ResponseWriter, r *http.Request) {
	// Validate up front so a bad suite or workers value fails the submit
	// with a 400 now, not the job with a failure later.
	if _, err := testkit.BuiltinSuite(r.URL.Query().Get("suite")); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers, err := parseWorkers(r.URL.Query().Get("workers"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.jobs.Submit(jobs.Spec{
		Suites:  r.URL.Query().Get("suite"),
		Workers: workers,
		// Run context rides in on headers (the coordinator's
		// client.ContextWithHeader channel, extending the X-Request-Id
		// plumbing); the values reach span tags, log lines, and pprof
		// labels, so hostile bytes are rejected rather than carried.
		RunID: runContextValue(r.Header.Get(HeaderRunID)),
		Shard: runContextValue(r.Header.Get(HeaderShardID)),
	})
	if errors.Is(err, jobs.ErrQueueFull) {
		s.shedTotals.QueueFull.Add(1)
		s.shed(w, "/jobs", "queue_full", http.StatusServiceUnavailable,
			RetryAfterQueueFull, "job queue full (depth %d)", s.jobs.Config().QueueDepth)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "submit: %v", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

// Job-list paging bounds. TTL-retained jobs accumulate between sweeps,
// so the response is hard-capped: DefaultJobsPage rows unless ?limit=
// asks for fewer (or more, up to MaxJobsPage). X-Total-Count always
// carries the filtered total and a Link rel="next" header points at the
// next page while rows remain, so a coordinator can page the whole list
// without ever provoking an unbounded response.
const (
	DefaultJobsPage = 100
	MaxJobsPage     = 500
)

// listQuery is the parsed GET /jobs query: an optional state filter and
// an offset/limit window.
type listQuery struct {
	state         jobs.State // "" = all
	offset, limit int
}

func parseListQuery(r *http.Request) (listQuery, error) {
	q := listQuery{limit: DefaultJobsPage}
	if v := r.URL.Query().Get("state"); v != "" {
		switch st := jobs.State(v); st {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled:
			q.state = st
		default:
			return q, fmt.Errorf("state: unknown state %q", v)
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return q, fmt.Errorf("offset: %q is not a non-negative integer", v)
		}
		q.offset = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return q, fmt.Errorf("limit: %q is not a positive integer", v)
		}
		q.limit = min(n, MaxJobsPage)
	}
	return q, nil
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	q, err := parseListQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	all := s.jobs.Jobs()
	if q.state != "" {
		kept := all[:0]
		for _, j := range all {
			if j.State == q.state {
				kept = append(kept, j)
			}
		}
		all = kept
	}
	total := len(all)
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	start := min(q.offset, total)
	end := min(start+q.limit, total)
	if end < total {
		next := fmt.Sprintf("/jobs?offset=%d&limit=%d", end, q.limit)
		if q.state != "" {
			next += "&state=" + string(q.state)
		}
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", next, "next"))
	}
	writeJSON(w, http.StatusOK, JobList{Jobs: all[start:end], Stats: s.jobs.Stats()})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) deleteJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	case errors.Is(err, jobs.ErrFinished):
		httpError(w, http.StatusConflict, "job %s already %s", j.ID, j.State)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "cancel: %v", err)
	default:
		writeJSON(w, http.StatusOK, j)
	}
}

// RunJobs runs the job queue's worker pool until ctx is cancelled and
// every worker has exited — the same blocking lifecycle shape as
// RunCheckpointer. The daemon runs it in a goroutine and waits for it
// before the final checkpoint, so persisted job states are settled.
func (s *Server) RunJobs(ctx context.Context) {
	s.jobs.Start(ctx)
	s.jobs.Wait()
}

// JobStats exposes the queue's health counters (also served inside
// GET /stats).
func (s *Server) JobStats() jobs.Stats { return s.jobs.Stats() }

// flushJobGauges refreshes the queue-health gauges in the metrics
// registry; called at scrape time so /metrics always reflects the
// current queue shape.
func (s *Server) flushJobGauges() {
	st := s.jobs.Stats()
	s.metrics.Gauge("yardstick_jobs_queue_depth").Set(float64(st.Depth))
	s.metrics.Gauge("yardstick_jobs_running").Set(float64(st.Running))
	s.metrics.Gauge("yardstick_jobs_retained").Set(float64(st.Retained))
}

// checkpointJobsLocked persists the job records next to the trace
// snapshot under the same network fingerprint. Callers hold s.mu.
func (s *Server) checkpointJobsLocked() error {
	if s.jobsPath == "" || s.net == nil {
		return nil
	}
	fp, err := core.Fingerprint(s.net)
	if err != nil {
		return err
	}
	return jobs.Save(s.jobsPath, fp, s.jobs.Records())
}

// restoreJobsLocked recovers persisted job records. Missing files and
// fingerprint mismatches are tolerated (stale records are discarded).
// Callers hold s.mu.
func (s *Server) restoreJobsLocked() (int, error) {
	if s.jobsPath == "" || s.net == nil {
		return 0, nil
	}
	fp, err := core.Fingerprint(s.net)
	if err != nil {
		return 0, err
	}
	recs, err := jobs.Load(s.jobsPath, fp)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return 0, nil
	case errors.Is(err, jobs.ErrMismatch):
		s.logger.Warn("job records recorded against a different network; discarding", "path", s.jobsPath)
		return 0, nil
	case err != nil:
		return 0, err
	}
	recovered, interrupted := s.jobs.Restore(recs)
	if interrupted > 0 {
		s.logger.Warn("jobs interrupted by restart surfaced as failed", "count", interrupted)
	}
	return recovered, nil
}
