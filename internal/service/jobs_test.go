package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"yardstick/internal/jobs"
	"yardstick/internal/topogen"
)

// newJobServer builds a server with the async layer live: a small
// network, a running worker pool, and the given extra options. The
// returned cancel stops the workers.
func newJobServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, append([]Option{WithLogger(discardLogger())}, opts...)...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.RunJobs(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return srv, ts
}

// pollJob polls GET /jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var j JobStatus
		doJSON(t, http.MethodGet, base+"/jobs/"+id, nil, http.StatusOK, &j)
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobStatus{}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newJobServer(t)

	// Submit: 202, Location header, queued-or-later snapshot.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs?suite=default,internal", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+sub.ID {
		t.Fatalf("Location = %q, want /jobs/%s", loc, sub.ID)
	}

	// Poll to completion; the result decodes as run results.
	j := pollJob(t, ts.URL, sub.ID)
	if j.State != jobs.StateDone {
		t.Fatalf("job = %+v, want done", j)
	}
	var results []RunResult
	if err := json.Unmarshal(j.Result, &results); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d tests, want 2", len(results))
	}

	// The run accumulated coverage exactly like POST /run would.
	var cov CoverageReport
	doJSON(t, http.MethodGet, ts.URL+"/coverage", nil, http.StatusOK, &cov)
	if cov.Total.RuleFractional <= 0 {
		t.Fatal("async run accumulated no coverage")
	}

	// The job shows up in the listing.
	var list JobList
	doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID || list.Stats.Done != 1 {
		t.Fatalf("list = %+v", list)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newJobServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=nope", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default&workers=-1", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs/absent", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/absent", nil, http.StatusNotFound, nil)
}

func TestJobCancelAndConflict(t *testing.T) {
	// No worker pool: submissions stay queued, so cancellation is
	// deterministic.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var sub JobStatus
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, &sub)
	var cancelled JobStatus
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil, http.StatusOK, &cancelled)
	if cancelled.State != jobs.StateCancelled || cancelled.Error == "" {
		t.Fatalf("cancelled = %+v", cancelled)
	}
	// A second cancel conflicts: the job is already terminal.
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil, http.StatusConflict, nil)
}

func TestJobQueueFullShedsWithRetryAfter(t *testing.T) {
	// Depth 2, no workers: the third submission sheds.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()), WithJobQueue(2, time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, nil)
	resp, err := http.Post(ts.URL+"/jobs?suite=default", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full-queue submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Saturation flips readiness with the reason spelled out.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz saturated = %d, want 503", rresp.StatusCode)
	}
	var ready ReadyReport
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Reason != "queue_saturated" {
		t.Fatalf("readyz reason = %q, want queue_saturated", ready.Reason)
	}

	// Stats surface the admission picture.
	var stats StatsReport
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.Jobs.Depth != 2 || stats.Jobs.ShedFull != 1 || stats.Shed.QueueFull != 1 {
		t.Fatalf("stats = jobs %+v shed %+v", stats.Jobs, stats.Shed)
	}
}

func TestJobPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "trace.snap")
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First server: run one job to completion, leave one queued, then
	// shut down and checkpoint — the daemon's shutdown order.
	srv1 := WithNetwork(rg.Net, WithLogger(discardLogger()), WithSnapshot(snap, time.Hour))
	ts1 := httptest.NewServer(srv1.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv1.RunJobs(ctx) }()

	var completed JobStatus
	doJSON(t, http.MethodPost, ts1.URL+"/jobs?suite=default", nil, http.StatusAccepted, &completed)
	completed = pollJob(t, ts1.URL, completed.ID)
	if completed.State != jobs.StateDone {
		t.Fatalf("first job = %+v", completed)
	}
	cancel()
	<-done // workers settled: anything still queued stays queued
	var queued JobStatus
	doJSON(t, http.MethodPost, ts1.URL+"/jobs?suite=default", nil, http.StatusAccepted, &queued)
	if err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second server, same network and snapshot path: the completed
	// job's result is fetchable, the queued one failed with a reason.
	srv2 := WithNetwork(rg.Net, WithLogger(discardLogger()), WithSnapshot(snap, time.Hour))
	if _, err := srv2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var got JobStatus
	doJSON(t, http.MethodGet, ts2.URL+"/jobs/"+completed.ID, nil, http.StatusOK, &got)
	if got.State != jobs.StateDone || len(got.Result) == 0 {
		t.Fatalf("recovered job = %+v, want done with result", got)
	}
	doJSON(t, http.MethodGet, ts2.URL+"/jobs/"+queued.ID, nil, http.StatusOK, &got)
	if got.State != jobs.StateFailed || !strings.Contains(got.Error, "restart") {
		t.Fatalf("interrupted job = %+v, want failed with restart reason", got)
	}
}
