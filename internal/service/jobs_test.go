package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"yardstick/internal/core"
	"yardstick/internal/jobs"
	"yardstick/internal/topogen"
)

// newJobServer builds a server with the async layer live: a small
// network, a running worker pool, and the given extra options. The
// returned cancel stops the workers.
func newJobServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, append([]Option{WithLogger(discardLogger())}, opts...)...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.RunJobs(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return srv, ts
}

// pollJob polls GET /jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var j JobStatus
		doJSON(t, http.MethodGet, base+"/jobs/"+id, nil, http.StatusOK, &j)
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobStatus{}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newJobServer(t)

	// Submit: 202, Location header, queued-or-later snapshot.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs?suite=default,internal", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+sub.ID {
		t.Fatalf("Location = %q, want /jobs/%s", loc, sub.ID)
	}

	// Poll to completion; the result decodes as run results.
	j := pollJob(t, ts.URL, sub.ID)
	if j.State != jobs.StateDone {
		t.Fatalf("job = %+v, want done", j)
	}
	var results []RunResult
	if err := json.Unmarshal(j.Result, &results); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d tests, want 2", len(results))
	}

	// The run accumulated coverage exactly like POST /run would.
	var cov CoverageReport
	doJSON(t, http.MethodGet, ts.URL+"/coverage", nil, http.StatusOK, &cov)
	if cov.Total.RuleFractional <= 0 {
		t.Fatal("async run accumulated no coverage")
	}

	// The job shows up in the listing.
	var list JobList
	doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID || list.Stats.Done != 1 {
		t.Fatalf("list = %+v", list)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newJobServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=nope", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default&workers=-1", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs/absent", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/absent", nil, http.StatusNotFound, nil)
}

func TestJobCancelAndConflict(t *testing.T) {
	// No worker pool: submissions stay queued, so cancellation is
	// deterministic.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var sub JobStatus
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, &sub)
	var cancelled JobStatus
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil, http.StatusOK, &cancelled)
	if cancelled.State != jobs.StateCancelled || cancelled.Error == "" {
		t.Fatalf("cancelled = %+v", cancelled)
	}
	// A second cancel conflicts: the job is already terminal.
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil, http.StatusConflict, nil)
}

func TestJobQueueFullShedsWithRetryAfter(t *testing.T) {
	// Depth 2, no workers: the third submission sheds.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()), WithJobQueue(2, time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, nil)
	resp, err := http.Post(ts.URL+"/jobs?suite=default", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full-queue submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Saturation flips readiness with the reason spelled out.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz saturated = %d, want 503", rresp.StatusCode)
	}
	var ready ReadyReport
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Reason != "queue_saturated" {
		t.Fatalf("readyz reason = %q, want queue_saturated", ready.Reason)
	}

	// Stats surface the admission picture.
	var stats StatsReport
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.Jobs.Depth != 2 || stats.Jobs.ShedFull != 1 || stats.Shed.QueueFull != 1 {
		t.Fatalf("stats = jobs %+v shed %+v", stats.Jobs, stats.Shed)
	}
}

// TestJobTraceExport: a done job's own coverage fragment is exported by
// GET /jobs/{id}/trace, decodes against the network, and reproduces the
// server's accumulated coverage when merged into a fresh trace — the
// property the distributed coordinator's shard collection rests on.
func TestJobTraceExport(t *testing.T) {
	srv, ts := newJobServer(t)

	var sub JobStatus
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default,internal", nil, http.StatusAccepted, &sub)
	j := pollJob(t, ts.URL, sub.ID)
	if j.State != jobs.StateDone {
		t.Fatalf("job = %+v, want done", j)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id}/trace = %d, want 200", resp.StatusCode)
	}
	srv.mu.Lock()
	frag, derr := core.DecodeTraceJSON(srv.net, resp.Body)
	srv.mu.Unlock()
	if derr != nil {
		t.Fatalf("decode job trace: %v", derr)
	}
	fs, ss := frag.Stats(), srv.trace.Stats()
	if fs.Locations == 0 || fs != ss {
		t.Fatalf("fragment stats %+v, server trace stats %+v — a single job's fragment should equal the whole accumulated trace", fs, ss)
	}

	// Unknown job: 404. Not-done job: 409 (submit with the pool idle is
	// racy here, so use a failed job — bad networkless runs are covered
	// elsewhere; a cancelled one is deterministic without workers).
	doJSON(t, http.MethodGet, ts.URL+"/jobs/absent/trace", nil, http.StatusNotFound, nil)
}

// TestJobTraceConflictAndGone: non-done jobs answer 409, and a restart
// (which keeps job records but not trace artifacts) answers 410 so the
// coordinator knows to re-dispatch.
func TestJobTraceConflictAndGone(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "trace.snap")
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No worker pool: the job stays queued → trace answers 409 with a
	// Retry-After hint; after cancellation (terminal but not done) it
	// answers 409 without one.
	srv1 := WithNetwork(rg.Net, WithLogger(discardLogger()), WithSnapshot(snap, time.Hour))
	ts1 := httptest.NewServer(srv1.Handler())

	var queued JobStatus
	doJSON(t, http.MethodPost, ts1.URL+"/jobs?suite=default", nil, http.StatusAccepted, &queued)
	resp, err := http.Get(ts1.URL + "/jobs/" + queued.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("queued-job trace = %d (Retry-After %q), want 409 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	doJSON(t, http.MethodDelete, ts1.URL+"/jobs/"+queued.ID, nil, http.StatusOK, nil)
	doJSON(t, http.MethodGet, ts1.URL+"/jobs/"+queued.ID+"/trace", nil, http.StatusConflict, nil)

	// Run a job to done on a live pool, checkpoint, restart: the record
	// survives, the artifact does not — 410 Gone.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv1.RunJobs(ctx) }()
	var sub JobStatus
	doJSON(t, http.MethodPost, ts1.URL+"/jobs?suite=default", nil, http.StatusAccepted, &sub)
	sub = pollJob(t, ts1.URL, sub.ID)
	if sub.State != jobs.StateDone {
		t.Fatalf("job = %+v, want done", sub)
	}
	doJSON(t, http.MethodGet, ts1.URL+"/jobs/"+sub.ID+"/trace", nil, http.StatusOK, nil)
	cancel()
	<-done
	if err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2 := WithNetwork(rg.Net, WithLogger(discardLogger()), WithSnapshot(snap, time.Hour))
	if _, err := srv2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var got JobStatus
	doJSON(t, http.MethodGet, ts2.URL+"/jobs/"+sub.ID, nil, http.StatusOK, &got)
	if got.State != jobs.StateDone {
		t.Fatalf("recovered job = %+v, want done", got)
	}
	doJSON(t, http.MethodGet, ts2.URL+"/jobs/"+sub.ID+"/trace", nil, http.StatusGone, nil)
}

// TestListJobsPaging: the job list is filterable by state, hard-capped,
// and pageable via offset/limit with X-Total-Count and Link headers.
func TestListJobsPaging(t *testing.T) {
	// No worker pool: submissions stay queued, so states and counts are
	// deterministic.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()), WithJobQueue(16, time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		var sub JobStatus
		doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, &sub)
		ids = append(ids, sub.ID)
	}
	// Cancel two: they leave the "queued" filter and join "cancelled".
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+ids[0], nil, http.StatusOK, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+ids[1], nil, http.StatusOK, nil)

	get := func(query string) (*http.Response, JobList) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s = %d", query, resp.StatusCode)
		}
		var list JobList
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return resp, list
	}

	// Page 1 of the queued jobs: capped at 2 of 3, with a next link.
	resp, list := get("?state=queued&limit=2")
	if len(list.Jobs) != 2 {
		t.Fatalf("page = %d jobs, want 2", len(list.Jobs))
	}
	if tc := resp.Header.Get("X-Total-Count"); tc != "3" {
		t.Fatalf("X-Total-Count = %q, want 3", tc)
	}
	link := resp.Header.Get("Link")
	if !strings.Contains(link, `rel="next"`) || !strings.Contains(link, "offset=2") || !strings.Contains(link, "state=queued") {
		t.Fatalf("Link = %q, want a next link preserving the filter", link)
	}

	// Page 2: the remaining row, no next link.
	resp, list = get("?state=queued&limit=2&offset=2")
	if len(list.Jobs) != 1 || resp.Header.Get("Link") != "" {
		t.Fatalf("page 2 = %d jobs (Link %q), want 1 with no next", len(list.Jobs), resp.Header.Get("Link"))
	}

	// The cancelled filter sees the other two; every row matches.
	_, list = get("?state=cancelled")
	if len(list.Jobs) != 2 {
		t.Fatalf("cancelled = %d jobs, want 2", len(list.Jobs))
	}
	for _, j := range list.Jobs {
		if j.State != jobs.StateCancelled {
			t.Fatalf("state filter leaked %+v", j)
		}
	}

	// An offset past the end yields an empty page, not an error; the
	// total still reports the truth.
	resp, list = get("?offset=100")
	if len(list.Jobs) != 0 || resp.Header.Get("X-Total-Count") != "5" {
		t.Fatalf("past-the-end page = %d jobs, total %q", len(list.Jobs), resp.Header.Get("X-Total-Count"))
	}

	// Oversized limits are hard-capped server-side (observable: the
	// request is accepted, not rejected), bad values are 400s.
	get("?limit=100000")
	doJSON(t, http.MethodGet, ts.URL+"/jobs?state=bogus", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs?offset=-1", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs?limit=0", nil, http.StatusBadRequest, nil)
}

func TestJobPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "trace.snap")
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First server: run one job to completion, leave one queued, then
	// shut down and checkpoint — the daemon's shutdown order.
	srv1 := WithNetwork(rg.Net, WithLogger(discardLogger()), WithSnapshot(snap, time.Hour))
	ts1 := httptest.NewServer(srv1.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv1.RunJobs(ctx) }()

	var completed JobStatus
	doJSON(t, http.MethodPost, ts1.URL+"/jobs?suite=default", nil, http.StatusAccepted, &completed)
	completed = pollJob(t, ts1.URL, completed.ID)
	if completed.State != jobs.StateDone {
		t.Fatalf("first job = %+v", completed)
	}
	cancel()
	<-done // workers settled: anything still queued stays queued
	var queued JobStatus
	doJSON(t, http.MethodPost, ts1.URL+"/jobs?suite=default", nil, http.StatusAccepted, &queued)
	if err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second server, same network and snapshot path: the completed
	// job's result is fetchable, the queued one failed with a reason.
	srv2 := WithNetwork(rg.Net, WithLogger(discardLogger()), WithSnapshot(snap, time.Hour))
	if _, err := srv2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var got JobStatus
	doJSON(t, http.MethodGet, ts2.URL+"/jobs/"+completed.ID, nil, http.StatusOK, &got)
	if got.State != jobs.StateDone || len(got.Result) == 0 {
		t.Fatalf("recovered job = %+v, want done with result", got)
	}
	doJSON(t, http.MethodGet, ts2.URL+"/jobs/"+queued.ID, nil, http.StatusOK, &got)
	if got.State != jobs.StateFailed || !strings.Contains(got.Error, "restart") {
		t.Fatalf("interrupted job = %+v, want failed with restart reason", got)
	}
}
