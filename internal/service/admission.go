package service

import (
	"net/http"
	"strconv"
	"sync/atomic"
)

// Admission control: the server-side half of the backpressure contract.
// Every rejection is explicit — a 429 or 503 carrying a Retry-After
// hint — never a dropped connection or an unbounded pile-up on the
// evaluation mutex. The client package's retry loop honors the hint, so
// a saturated fleet backs off at the pace the server asks for instead
// of in blind exponential lockstep.
//
// Three shedding conditions, in the order they are checked:
//
//	draining    the daemon is shutting down; this process will not take
//	            new evaluation work (503, RetryAfterDraining)
//	inflight    the per-route-class concurrency cap (WithAdmission) is
//	            reached; capacity frees on the order of one request
//	            (429, RetryAfterInflight)
//	queue_full  the job queue has no admission headroom; it drains on
//	            the order of queued runs (503, RetryAfterQueueFull —
//	            checked in postJob, where the queue sheds)
//
// Each shed increments yardstick_http_shed_total{route,reason} and a
// server-side aggregate surfaced by GET /stats.

// Retry-After hints, in seconds, by shedding condition.
const (
	// RetryAfterInflight: a concurrency-shed request can retry as soon
	// as one in-flight evaluation finishes.
	RetryAfterInflight = 1
	// RetryAfterQueueFull: the queue drains a run at a time; back off a
	// little longer.
	RetryAfterQueueFull = 2
	// RetryAfterDraining: this process is going away; give the
	// orchestrator time to route elsewhere.
	RetryAfterDraining = 5
)

// shedTotals aggregates load-shedding counts per reason for GET /stats
// (the metrics registry keeps the per-route breakdown).
type shedTotals struct {
	Draining  atomic.Uint64
	Inflight  atomic.Uint64
	QueueFull atomic.Uint64
}

// ShedReport is the shed-totals section of the GET /stats body.
type ShedReport struct {
	Draining  uint64 `json:"draining"`
	Inflight  uint64 `json:"inflight"`
	QueueFull uint64 `json:"queueFull"`
	Total     uint64 `json:"total"`
}

func (st *shedTotals) report() ShedReport {
	r := ShedReport{
		Draining:  st.Draining.Load(),
		Inflight:  st.Inflight.Load(),
		QueueFull: st.QueueFull.Load(),
	}
	r.Total = r.Draining + r.Inflight + r.QueueFull
	return r
}

// SetDraining flips the server into (or out of) draining mode: heavy
// endpoints shed with 503 + Retry-After and /readyz answers 503 with
// reason "draining", so load balancers stop routing here while
// in-flight work finishes. The daemon sets this when shutdown begins.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is refusing new evaluation work.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit wraps a compute-heavy handler with admission control: draining
// sheds everything, then the WithAdmission concurrency cap (0 = off)
// sheds requests past the limit. The route label keys the shed metric.
func (s *Server) admit(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.shedTotals.Draining.Add(1)
			s.shed(w, route, "draining", http.StatusServiceUnavailable,
				RetryAfterDraining, "server draining, not accepting new work")
			return
		}
		if s.maxInflight > 0 {
			if n := s.inflight.Add(1); n > int64(s.maxInflight) {
				s.inflight.Add(-1)
				s.shedTotals.Inflight.Add(1)
				s.shed(w, route, "inflight", http.StatusTooManyRequests,
					RetryAfterInflight, "concurrency limit reached (%d requests in flight)", s.maxInflight)
				return
			}
			defer s.inflight.Add(-1)
		}
		h(w, r)
	}
}

// shed answers a load-shedding rejection: the status, a Retry-After
// hint in seconds, and a shed-counter increment keyed by route and
// reason.
func (s *Server) shed(w http.ResponseWriter, route, reason string, code, retryAfter int, format string, args ...any) {
	s.metrics.Counter("yardstick_http_shed_total", "route", route, "reason", reason).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	httpError(w, code, format, args...)
}

// InFlight reports the current number of admitted heavy requests.
func (s *Server) InFlight() int64 { return s.inflight.Load() }
