package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestConcurrentRequests hammers the hot endpoints from parallel
// goroutines. The server serializes on its mutex (the BDD manager is
// single-threaded); under -race this validates the lock discipline.
func TestConcurrentRequests(t *testing.T) {
	ts, rg := newTestServer(t)

	// Pre-encode a trace fragment once: encoding touches the network's
	// BDD manager, which must not be shared across goroutines.
	local := core.NewTrace()
	local.MarkPacket(dataplane.Injected(rg.ToRs[0]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]))
	for _, rid := range rg.Net.Device(rg.ToRs[0]).FIB {
		local.MarkRule(rid)
	}
	var frag bytes.Buffer
	if err := local.EncodeJSON(&frag); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	do := func(method, url string, body []byte) {
		defer wg.Done()
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s = %d", method, url, resp.StatusCode)
		}
	}
	for i := 0; i < 8; i++ {
		wg.Add(4)
		go do("POST", ts.URL+"/trace", frag.Bytes())
		go do("GET", ts.URL+"/coverage", nil)
		go do("POST", ts.URL+"/run?suite=connected", nil)
		go do("GET", ts.URL+"/trace", nil)
	}
	wg.Wait()
}

// TestPanicRecovery drives a panicking handler through the full
// middleware chain: the panic answers 500 and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
	var logbuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logbuf, nil))
	ts := httptest.NewServer(Chain(mux, LogRequests(logger), Recover(logger)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if !bytes.Contains(logbuf.Bytes(), []byte("kaboom")) {
		t.Error("panic value not logged")
	}
	if !bytes.Contains(logbuf.Bytes(), []byte("goroutine")) {
		t.Error("stack trace not logged")
	}
	// The panicking request still gets its structured request line, with
	// the 500 Recover answered, tied together by the request id.
	if !bytes.Contains(logbuf.Bytes(), []byte("status=500")) {
		t.Errorf("request log line missing for panicking request:\n%s", logbuf.String())
	}
	if !bytes.Contains(logbuf.Bytes(), []byte("id="+resp.Header.Get("X-Request-Id"))) {
		t.Errorf("request id %q not in log:\n%s", resp.Header.Get("X-Request-Id"), logbuf.String())
	}

	// The server survives and keeps answering.
	resp, err = http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("request after panic = %d, want 200", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(WithNetwork(rg.Net, WithMaxBody(512), WithLogger(discardLogger())).Handler())
	defer ts.Close()

	// Leading whitespace is valid JSON, so the decoder must read past
	// the cap and hit the MaxBytesReader limit rather than a syntax
	// error.
	big := append(bytes.Repeat([]byte(" "), 4096), []byte("{}")...)
	resp, err := http.Post(ts.URL+"/trace", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", resp.StatusCode)
	}

	// A small (if invalid) body still gets the ordinary 400.
	resp, err = http.Post(ts.URL+"/trace", "application/json", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("small junk body = %d, want 400", resp.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	ts := httptest.NewServer(New(WithLogger(discardLogger())).Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz without network = %d, want 503", code)
	}

	// Loading a network flips readiness.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rg.Net.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "PUT", ts.URL+"/network", buf.Bytes(), http.StatusOK, nil)
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz with network = %d, want 200", code)
	}
}

// TestSnapshotPersistence accumulates a trace, checkpoints, and brings
// up a fresh server on the same snapshot: coverage survives the
// "restart". A third server with a different network must discard the
// stale snapshot.
func TestSnapshotPersistence(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "trace.snap")
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv1 := WithNetwork(rg.Net, WithSnapshot(snap, time.Hour), WithLogger(discardLogger()))
	ts1 := httptest.NewServer(srv1.Handler())
	local := core.NewTrace()
	local.MarkPacket(dataplane.Injected(rg.ToRs[0]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]))
	for _, rid := range rg.Net.Device(rg.ToRs[0]).FIB {
		local.MarkRule(rid)
	}
	var frag bytes.Buffer
	if err := local.EncodeJSON(&frag); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "POST", ts1.URL+"/trace", frag.Bytes(), http.StatusOK, nil)
	var covBefore CoverageReport
	doJSON(t, "GET", ts1.URL+"/coverage", nil, http.StatusOK, &covBefore)
	if covBefore.Total.RuleFractional <= 0 {
		t.Fatal("no coverage accumulated")
	}
	if err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// "Restart": same network, same snapshot path.
	srv2 := WithNetwork(rg.Net, WithSnapshot(snap, time.Hour), WithLogger(discardLogger()))
	restored, err := srv2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("snapshot not restored on matching network")
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var covAfter CoverageReport
	doJSON(t, "GET", ts2.URL+"/coverage", nil, http.StatusOK, &covAfter)
	if covAfter.Total.RuleFractional != covBefore.Total.RuleFractional {
		t.Errorf("coverage after restart = %v, want %v",
			covAfter.Total.RuleFractional, covBefore.Total.RuleFractional)
	}

	// A different network must reject the stale snapshot.
	other, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv3 := WithNetwork(other.Net, WithSnapshot(snap, time.Hour), WithLogger(discardLogger()))
	restored, err = srv3.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored {
		t.Error("stale snapshot (different network) must be discarded, not merged")
	}
	if st := srv3.trace.Stats(); st.Locations != 0 || st.MarkedRules != 0 {
		t.Errorf("trace after discarded restore = %+v, want empty", st)
	}
}

// TestRestartFromArenaCheckpoint is the arena-codec restart drill:
// Checkpoint writes the binary arena snapshot, a fresh server over a
// freshly *decoded* network (nothing shared in memory with the first
// daemon) restores from it, and the /coverage table — the total row and
// every per-role row — matches byte for byte. Engine counters are live
// manager diagnostics, not coverage state, so they are outside the
// comparison.
func TestRestartFromArenaCheckpoint(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "trace.snap")
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The coverage table as served: raw JSON of the total and per-role
	// rows, bytes untouched.
	covTable := func(url string) (total, byRole json.RawMessage) {
		t.Helper()
		resp, err := http.Get(url + "/coverage")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /coverage = %d: %s", resp.StatusCode, body)
		}
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Total  json.RawMessage `json:"total"`
			ByRole json.RawMessage `json:"byRole"`
		}
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		return rep.Total, rep.ByRole
	}

	srv1 := WithNetwork(rg.Net, WithSnapshot(snap, time.Hour), WithLogger(discardLogger()))
	ts1 := httptest.NewServer(srv1.Handler())
	local := core.NewTrace()
	local.MarkPacket(dataplane.Injected(rg.ToRs[0]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]))
	local.MarkPacket(dataplane.Injected(rg.ToRs[1]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[0]]).Intersect(rg.Net.Space.Proto(6)))
	for _, rid := range rg.Net.Device(rg.ToRs[0]).FIB {
		local.MarkRule(rid)
	}
	var frag bytes.Buffer
	if err := local.EncodeJSON(&frag); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "POST", ts1.URL+"/trace", frag.Bytes(), http.StatusOK, nil)
	totalBefore, byRoleBefore := covTable(ts1.URL)

	if err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !core.IsSnapshotArena(raw) {
		t.Fatalf("checkpoint is not the arena codec (starts %q)", raw[:min(8, len(raw))])
	}
	ts1.Close()

	// "Restart": round-trip the network through its wire form so the new
	// daemon rebuilds everything — spaces, match sets, rule IDs — from
	// scratch, exactly like a real process restart.
	var netJSON bytes.Buffer
	if err := rg.Net.EncodeJSON(&netJSON); err != nil {
		t.Fatal(err)
	}
	fresh, err := netmodel.DecodeJSON(bytes.NewReader(netJSON.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := WithNetwork(fresh, WithSnapshot(snap, time.Hour), WithLogger(discardLogger()))
	restored, err := srv2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("arena checkpoint not restored on matching network")
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	totalAfter, byRoleAfter := covTable(ts2.URL)
	if !bytes.Equal(totalBefore, totalAfter) {
		t.Errorf("total row changed across restart:\n before %s\n after  %s", totalBefore, totalAfter)
	}
	if !bytes.Equal(byRoleBefore, byRoleAfter) {
		t.Errorf("per-role rows changed across restart:\n before %s\n after  %s", byRoleBefore, byRoleAfter)
	}
}

// TestCheckpointerFinalSave verifies RunCheckpointer writes a final
// snapshot when its context is canceled — the shutdown path.
func TestCheckpointerFinalSave(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "trace.snap")
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithSnapshot(snap, time.Hour), WithLogger(discardLogger()))
	srv.trace.MarkRule(rg.Net.Device(rg.ToRs[0]).FIB[0])

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.RunCheckpointer(ctx) }()
	cancel()
	<-done

	got, err := core.LoadSnapshot(snap, rg.Net)
	if err != nil {
		t.Fatalf("no snapshot after checkpointer shutdown: %v", err)
	}
	if !got.RuleMarked(rg.Net.Device(rg.ToRs[0]).FIB[0]) {
		t.Error("final checkpoint lost the marked rule")
	}
}
