package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/topogen"
)

func newTestServer(t *testing.T) (*httptest.Server, *topogen.Regional) {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(WithNetwork(rg.Net, WithLogger(discardLogger())).Handler())
	t.Cleanup(ts.Close)
	return ts, rg
}

func doJSON(t *testing.T, method, url string, body []byte, wantCode int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s = %d, want %d (%v)", method, url, resp.StatusCode, wantCode, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
}

func TestNetworkStats(t *testing.T) {
	ts, rg := newTestServer(t)
	var st NetworkStats
	doJSON(t, "GET", ts.URL+"/network", nil, http.StatusOK, &st)
	if st.Devices != rg.Net.Stats().Devices || st.Family != "ipv4" {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunAndCoverage(t *testing.T) {
	ts, _ := newTestServer(t)

	var results []RunResult
	doJSON(t, "POST", ts.URL+"/run?suite=default,internal", nil, http.StatusOK, &results)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.Pass || r.Checks == 0 {
			t.Errorf("%s: pass=%v checks=%d", r.Name, r.Pass, r.Checks)
		}
	}

	var cov CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &cov)
	if cov.Total.RuleFractional <= 0 || cov.Total.RuleFractional > 1 {
		t.Errorf("total rule coverage = %v", cov.Total.RuleFractional)
	}
	if len(cov.ByRole) == 0 {
		t.Error("no per-role rows")
	}
	// Engine diagnostics ride along: a run plus a coverage computation
	// has interned nodes and consulted the op cache.
	if cov.Engine.Nodes == 0 || cov.Engine.PeakNodes < cov.Engine.Nodes {
		t.Errorf("engine stats = %+v", cov.Engine)
	}
	if cov.Engine.CacheHits+cov.Engine.CacheMisses == 0 {
		t.Errorf("engine cache counters missing: %+v", cov.Engine)
	}

	var gaps []Gap
	doJSON(t, "GET", ts.URL+"/gaps", nil, http.StatusOK, &gaps)
	found := false
	for _, g := range gaps {
		if g.Origin == "wide-area" {
			found = true
		}
	}
	if !found {
		t.Error("wide-area gap should remain")
	}
}

func TestRemoteTraceReporting(t *testing.T) {
	ts, rg := newTestServer(t)

	// A remote testing tool records coverage locally and POSTs it.
	local := core.NewTrace()
	local.MarkPacket(dataplane.Injected(rg.ToRs[0]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]))
	for _, rid := range rg.Net.Device(rg.ToRs[0]).FIB {
		local.MarkRule(rid)
	}
	var buf bytes.Buffer
	if err := local.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var st map[string]int
	doJSON(t, "POST", ts.URL+"/trace", buf.Bytes(), http.StatusOK, &st)
	if st["locations"] != 1 || st["markedRules"] == 0 {
		t.Errorf("trace stats = %v", st)
	}

	// Coverage reflects the remote report.
	var cov CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &cov)
	if cov.Total.RuleFractional <= 0 {
		t.Error("remote marks did not register")
	}

	// Round trip: download and re-upload is idempotent.
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	dump := new(bytes.Buffer)
	dump.ReadFrom(resp.Body)
	resp.Body.Close()
	doJSON(t, "POST", ts.URL+"/trace", dump.Bytes(), http.StatusOK, &st)
	var cov2 CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &cov2)
	if cov2.Total.RuleFractional != cov.Total.RuleFractional {
		t.Error("re-uploading the trace changed coverage")
	}

	// Reset.
	doJSON(t, "DELETE", ts.URL+"/trace", nil, http.StatusNoContent, nil)
	var cov3 CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &cov3)
	if cov3.Total.RuleFractional != 0 {
		t.Error("trace reset did not clear coverage")
	}
}

func TestPutNetwork(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(WithLogger(discardLogger())).Handler())
	defer ts.Close()

	// No network yet: coverage and run are 409.
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusConflict, nil)
	doJSON(t, "POST", ts.URL+"/run?suite=default", nil, http.StatusConflict, nil)
	doJSON(t, "GET", ts.URL+"/network", nil, http.StatusNotFound, nil)

	var buf bytes.Buffer
	if err := rg.Net.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var st NetworkStats
	doJSON(t, "PUT", ts.URL+"/network", buf.Bytes(), http.StatusOK, &st)
	if st.Devices != rg.Net.Stats().Devices {
		t.Errorf("stats = %+v", st)
	}
	// Now runs work.
	doJSON(t, "POST", ts.URL+"/run?suite=default", nil, http.StatusOK, nil)

	// Text format load.
	textNet := `
device a role=tor
device b role=spine
link a b 10.128.0.0/31
route a 0.0.0.0/0 via b origin=default
`
	req, _ := http.NewRequest("PUT", ts.URL+"/network?format=text", strings.NewReader(textNet))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text load = %d", resp.StatusCode)
	}
	// Loading a network resets the trace.
	var cov CoverageReport
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, &cov)
	if cov.Total.RuleFractional != 0 {
		t.Error("network reload should reset the trace")
	}
}

func TestRunTimeoutAborts(t *testing.T) {
	// An already-expired -run-timeout deadline: the evaluation aborts
	// through the engine's watched context and answers 503 — the server
	// survives to serve the next (untimed) request.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(WithNetwork(rg.Net, WithLogger(discardLogger()), WithRunTimeout(time.Nanosecond)).Handler())
	t.Cleanup(ts.Close)

	doJSON(t, "POST", ts.URL+"/run?suite=default", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusServiceUnavailable, nil)
	// Liveness is untouched by evaluation deadlines.
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/network", []byte("junk"), http.StatusBadRequest, nil)
	doJSON(t, "PUT", ts.URL+"/network?format=xml", nil, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/trace", []byte("junk"), http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/run?suite=bogus", nil, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/run", nil, http.StatusBadRequest, nil)
}

func TestRunWorkersMatchesSequential(t *testing.T) {
	// Two servers over the same topology: one runs the suite
	// sequentially, one sharded across workers. The coverage reports
	// must be identical — parallelism must be invisible in the output.
	newServer := func(workers int) *httptest.Server {
		rg, err := topogen.BuildRegional(topogen.RegionalOpts{
			DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
			SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := []Option{WithLogger(discardLogger())}
		if workers > 1 {
			opts = append(opts, WithWorkers(workers))
		}
		ts := httptest.NewServer(WithNetwork(rg.Net, opts...).Handler())
		t.Cleanup(ts.Close)
		return ts
	}

	seq := newServer(1)
	par := newServer(3)

	var seqResults, parResults []RunResult
	doJSON(t, "POST", seq.URL+"/run?suite=default,internal,reach,pingmesh", nil, http.StatusOK, &seqResults)
	doJSON(t, "POST", par.URL+"/run?suite=default,internal,reach,pingmesh&workers=3", nil, http.StatusOK, &parResults)
	if len(parResults) != len(seqResults) {
		t.Fatalf("%d results, want %d", len(parResults), len(seqResults))
	}
	for i := range parResults {
		if parResults[i].Name != seqResults[i].Name || parResults[i].Pass != seqResults[i].Pass ||
			parResults[i].Checks != seqResults[i].Checks {
			t.Errorf("result %d: %+v vs %+v", i, parResults[i], seqResults[i])
		}
	}

	var seqCov, parCov CoverageReport
	doJSON(t, "GET", seq.URL+"/coverage", nil, http.StatusOK, &seqCov)
	doJSON(t, "GET", par.URL+"/coverage", nil, http.StatusOK, &parCov)
	if seqCov.Total != parCov.Total {
		t.Errorf("coverage differs: %+v vs %+v", parCov.Total, seqCov.Total)
	}

	// A second parallel run reuses the pool and stays consistent.
	doJSON(t, "POST", par.URL+"/run?suite=default&workers=2", nil, http.StatusOK, &parResults)
}

func TestRunWorkersParamValidation(t *testing.T) {
	ts, _ := newTestServer(t) // cap defaults to 1

	// Bad values are rejected.
	doJSON(t, "POST", ts.URL+"/run?suite=default&workers=x", nil, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/run?suite=default&workers=-2", nil, http.StatusBadRequest, nil)

	// On a server without WithWorkers, any request is capped to 1 and
	// runs sequentially.
	var results []RunResult
	doJSON(t, "POST", ts.URL+"/run?suite=default&workers=8", nil, http.StatusOK, &results)
	if len(results) != 1 || !results[0].Pass {
		t.Errorf("capped run results = %+v", results)
	}
	// workers=0 asks for the cap — still sequential here.
	doJSON(t, "POST", ts.URL+"/run?suite=default&workers=0", nil, http.StatusOK, &results)
	if len(results) != 1 {
		t.Errorf("workers=0 results = %+v", results)
	}
}
