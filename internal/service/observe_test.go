package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"yardstick/internal/obs"
	"yardstick/internal/promlint"
	"yardstick/internal/topogen"
)

func newWorkerServer(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithLogger(discardLogger())}
	if workers > 1 {
		opts = append(opts, WithWorkers(workers))
	}
	ts := httptest.NewServer(WithNetwork(rg.Net, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks
// content type, required metric families, and lint-cleanliness.
func TestMetricsEndpoint(t *testing.T) {
	ts := newWorkerServer(t, 2)
	doJSON(t, "POST", ts.URL+"/run?suite=default,internal,connected&workers=2", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/coverage", nil, http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"yardstick_bdd_ops_total",
		"yardstick_bdd_cache_hits_total",
		"yardstick_bdd_cache_misses_total",
		"yardstick_bdd_nodes_allocated_total",
		"yardstick_sharded_runs_total 1",
		"yardstick_sharded_worker_runs_total 2",
		"yardstick_sharded_workers 2",
		`yardstick_stage_duration_seconds_bucket{stage="service.run",le="+Inf"}`,
		`yardstick_stage_duration_seconds_bucket{stage="service.coverage",le="+Inf"}`,
		`yardstick_http_requests_total{route="/run",status="200"} 1`,
		`yardstick_http_request_duration_seconds_count{route="/coverage"} 1`,
		"yardstick_engine_nodes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if issues := promlint.Lint(strings.NewReader(body)); len(issues) != 0 {
		t.Errorf("/metrics fails lint: %v", issues)
	}

	// BDD work must have been settled into the registry: the run's ops
	// reached /metrics through the replica flushes + the canonical flush.
	if !metricPositive(t, body, "yardstick_bdd_ops_total") {
		t.Error("yardstick_bdd_ops_total is zero after a run")
	}
}

// metricPositive reports whether the (unlabelled) sample is > 0.
func metricPositive(t *testing.T, body, name string) bool {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(line[len(name)+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v > 0
		}
	}
	t.Fatalf("sample %s not found", name)
	return false
}

// TestServerTiming parses the Server-Timing header on /coverage.
func TestServerTiming(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/coverage")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	h := resp.Header.Get("Server-Timing")
	if h == "" {
		t.Fatal("no Server-Timing header on /coverage")
	}
	seen := map[string]float64{}
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) != 2 || !strings.HasPrefix(parts[1], "dur=") {
			t.Fatalf("malformed Server-Timing entry %q in %q", entry, h)
		}
		d, err := strconv.ParseFloat(strings.TrimPrefix(parts[1], "dur="), 64)
		if err != nil || d < 0 {
			t.Fatalf("bad duration in %q: %v", entry, err)
		}
		seen[parts[0]] = d
	}
	for _, want := range []string{"compute", "stats"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("Server-Timing missing %q: %q", want, h)
		}
	}
}

// TestEngineStatsAggregation: with a worker pool, /coverage's engine
// stats must cover the replicas too — more managers, more nodes.
func TestEngineStatsAggregation(t *testing.T) {
	seq := newWorkerServer(t, 1)
	par := newWorkerServer(t, 2)
	doJSON(t, "POST", seq.URL+"/run?suite=default,internal", nil, http.StatusOK, nil)
	doJSON(t, "POST", par.URL+"/run?suite=default,internal&workers=2", nil, http.StatusOK, nil)

	var seqCov, parCov CoverageReport
	doJSON(t, "GET", seq.URL+"/coverage", nil, http.StatusOK, &seqCov)
	doJSON(t, "GET", par.URL+"/coverage", nil, http.StatusOK, &parCov)

	if seqCov.Engine.Workers != 1 {
		t.Errorf("sequential Workers = %d, want 1", seqCov.Engine.Workers)
	}
	if parCov.Engine.Workers != 3 { // canonical + 2 replicas
		t.Errorf("parallel Workers = %d, want 3", parCov.Engine.Workers)
	}
	// The replicas each hold a full copy of the network's forwarding
	// state, so the aggregate node count must exceed the single-manager
	// server's.
	if parCov.Engine.Nodes <= seqCov.Engine.Nodes {
		t.Errorf("aggregated nodes = %d, want > sequential %d", parCov.Engine.Nodes, seqCov.Engine.Nodes)
	}
	if parCov.Engine.PeakNodes < seqCov.Engine.PeakNodes/2 {
		t.Errorf("aggregated peak = %d looks wrong vs sequential %d", parCov.Engine.PeakNodes, seqCov.Engine.PeakNodes)
	}
}

// TestStatsEndpoint: /stats serves the JSON debug vars.
func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/run?suite=default", nil, http.StatusOK, nil)

	var st StatsReport
	doJSON(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &st)
	if !st.NetworkLoaded {
		t.Error("networkLoaded = false on a loaded server")
	}
	if st.Goroutines <= 0 || st.UptimeSeconds < 0 {
		t.Errorf("implausible runtime vars: %+v", st)
	}
	if st.Engine.Nodes == 0 {
		t.Error("engine stats empty")
	}
	if st.MarkedRules == 0 {
		t.Error("trace empty after a run")
	}
	if len(st.Metrics) == 0 {
		t.Error("metrics snapshot empty after traffic")
	}
	for _, m := range st.Metrics {
		if m.Name == "yardstick_http_requests_total" {
			return
		}
	}
	t.Error("http request counter missing from /stats metrics")
}
