package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"yardstick/internal/bdd"
	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
)

// Registry metric names of the churn path.
const (
	MetricNetworkResets = "yardstick_network_resets_total"
	MetricDeltaApplied  = "yardstick_delta_applied_total"
)

// deltaTotals counts churn-path activity; guarded by Server.mu and
// mirrored into the metrics registry at increment time.
type deltaTotals struct {
	applied       int64
	networkResets int64
	rulesAdded    int64
	rulesRemoved  int64
	rulesModified int64
	marksDropped  int64
}

// DeltaReport is the churn-path section of GET /stats.
type DeltaReport struct {
	Applied       int64 `json:"applied"`
	NetworkResets int64 `json:"networkResets"`
	RulesAdded    int64 `json:"rulesAdded"`
	RulesRemoved  int64 `json:"rulesRemoved"`
	RulesModified int64 `json:"rulesModified"`
	MarksDropped  int64 `json:"marksDropped"`
}

func (d *deltaTotals) report() DeltaReport {
	return DeltaReport{
		Applied:       d.applied,
		NetworkResets: d.networkResets,
		RulesAdded:    d.rulesAdded,
		RulesRemoved:  d.rulesRemoved,
		RulesModified: d.rulesModified,
		MarksDropped:  d.marksDropped,
	}
}

// patchNetwork applies a rule-level delta document (internal/delta) to
// the loaded network in place: only the touched devices' match sets are
// re-derived, the accumulated trace is remapped onto the new rule
// universe (dropped rule marks become reported coverage decay), and the
// response carries per-device coverage drift — all without resetting
// the trace or the replica pool, which is the whole point versus PUT.
//
// Preconditions map to statuses the way a conditional request should:
// no network is 409, a stale base fingerprint is 409 with the current
// fingerprint in the body (re-read, re-diff, retry), a malformed or
// invalid document is 400 with nothing changed, and an aborted
// evaluation (budget, cancellation) before the commit is 503 with
// nothing changed. A post-commit abort during the drift report returns
// 200 with the delta applied and the drift section absent — state
// changes are never rolled back to beautify a report.
func (s *Server) patchNetwork(w http.ResponseWriter, r *http.Request) {
	var doc delta.Document
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		decodeError(w, "delta", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		httpError(w, http.StatusConflict, "no network loaded")
		return
	}
	ctx, cancel := s.evalContext(r)
	defer cancel()
	defer s.net.Space.WatchContext(ctx)()
	eng := delta.ResumeEngine(s.net, s.trace, s.fingerprintLocked())
	var (
		applied *delta.Applied
		aerr    error
	)
	gerr := bdd.Guard(func() { applied, aerr = eng.Apply(doc) })
	if gerr != nil {
		// Pre-commit abort: the mutation stages everything before
		// publishing, so the network is untouched.
		abortError(w, "delta", gerr)
		return
	}
	driftIncomplete := false
	if aerr != nil {
		var bm *delta.BaseMismatchError
		switch {
		case errors.As(aerr, &bm):
			writeJSON(w, http.StatusConflict, map[string]string{
				"error":   bm.Error(),
				"current": bm.Current,
			})
			return
		case errors.Is(aerr, delta.ErrDriftIncomplete):
			// Applied; only the report is degraded. Fall through as a
			// success with the incompleteness surfaced in the log.
			driftIncomplete = true
			s.logger.Warn("delta applied, drift report incomplete", "err", aerr)
		default:
			httpError(w, http.StatusBadRequest, "%v", aerr)
			return
		}
	}
	s.netFP = applied.Fingerprint
	// Retained job fragments were recorded against the old rule universe;
	// decoding them now would mis-attribute marks. Drop them — the
	// accumulated trace (already remapped) is the durable state.
	s.jobTraces = map[string][]byte{}
	s.delta.applied++
	s.delta.rulesAdded += int64(applied.Added)
	s.delta.rulesRemoved += int64(applied.Removed)
	s.delta.rulesModified += int64(applied.Modified)
	s.delta.marksDropped += int64(applied.Decay.DroppedMarks)
	s.metrics.Counter(MetricDeltaApplied).Inc()
	// Keep the replica pool aligned by replaying the same ops into each
	// replica. A replica-side failure (its own budget, a divergence) must
	// not fail the request — the canonical network is the truth — but the
	// pool is torn, so discard it and let the next parallel run rebuild.
	if s.engine != nil {
		perr := bdd.Guard(func() {
			aerr = s.engine.Patch(func(n *netmodel.Network) error {
				return delta.ApplyOps(n, doc.Ops)
			})
		})
		if perr == nil {
			perr = aerr
		}
		if perr != nil {
			s.logger.Warn("replica pool diverged on delta; discarding", "err", perr)
			s.engine = nil
		}
	}
	if driftIncomplete {
		applied.Drift = nil
	}
	writeJSON(w, http.StatusOK, applied)
}
