package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/faults"
	"yardstick/internal/jobs"
	"yardstick/internal/obs"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

// spanTracker collects every finished request/job span via
// WithSpanObserver, so tests can assert the no-leak invariant
// (OpenCount == 0) after every path — success, abort, cancellation,
// panic.
type spanTracker struct {
	mu    sync.Mutex
	spans []*obs.Span
}

func (st *spanTracker) observe(sp *obs.Span) {
	st.mu.Lock()
	st.spans = append(st.spans, sp)
	st.mu.Unlock()
}

func (st *spanTracker) assertNoLeaks(t *testing.T, wantAtLeast int) {
	t.Helper()
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.spans) < wantAtLeast {
		t.Fatalf("observed %d finished spans, want at least %d", len(st.spans), wantAtLeast)
	}
	for _, sp := range st.spans {
		if !sp.Ended() {
			t.Errorf("span %q handed to the observer before End", sp.Name())
		}
		if n := sp.OpenCount(); n != 0 {
			t.Errorf("span %q leaked %d open descendants", sp.Name(), n)
		}
	}
}

func TestSpansEndOnEveryPath(t *testing.T) {
	var tr spanTracker
	srv, ts := newJobServer(t, WithSpanObserver(tr.observe))

	// Success paths: sequential run, sharded run, coverage read.
	doJSON(t, http.MethodPost, ts.URL+"/run?suite=default", nil, http.StatusOK, nil)
	doJSON(t, http.MethodPost, ts.URL+"/run?suite=default,internal&workers=2", nil, http.StatusOK, nil)
	doJSON(t, http.MethodGet, ts.URL+"/coverage", nil, http.StatusOK, nil)

	// Async path: a job span finishes through the queue.
	var sub JobStatus
	doJSON(t, http.MethodPost, ts.URL+"/jobs?suite=default", nil, http.StatusAccepted, &sub)
	pollJob(t, ts.URL, sub.ID)

	// Abort path: a tripped BDD budget (whether it surfaces as errored
	// results or as an aborted run) must still end the request span and
	// hand it to the observer with no open descendants.
	srv.mu.Lock()
	srv.net.Space.SetLimits(bdd.Limits{MaxOps: 1})
	srv.mu.Unlock()
	resp, err := http.Post(ts.URL+"/run?suite=connected", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.mu.Lock()
	srv.net.Space.SetLimits(bdd.Limits{})
	srv.mu.Unlock()

	tr.assertNoLeaks(t, 5)
}

func TestSpansEndOnCancellation(t *testing.T) {
	var tr spanTracker
	_, ts := newJobServer(t, WithSpanObserver(tr.observe), WithRunTimeout(time.Nanosecond))
	doJSON(t, http.MethodPost, ts.URL+"/run?suite=default", nil, http.StatusServiceUnavailable, nil)
	tr.assertNoLeaks(t, 1)
}

func TestSpansEndOnPanic(t *testing.T) {
	// A panicking test is isolated by the suite runner but must not leave
	// the evaluation span open. Driven through runSuiteLocked directly —
	// panic tests are not reachable through the builtin-suite names.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()))
	root := obs.NewRoot("test.run", nil)
	ctx := obs.ContextWithSpan(context.Background(), root)

	srv.mu.Lock()
	out, err := srv.runSuiteLocked(ctx, testkit.Suite{faults.PanicTest{Message: "chaos: boom"}}, 1, core.NewTrace())
	srv.mu.Unlock()
	if err != nil {
		t.Fatalf("isolated panic escaped as error: %v", err)
	}
	if len(out) != 1 || !out[0].Errored {
		t.Fatalf("results = %+v, want one errored result", out)
	}
	root.End()
	if n := root.OpenCount(); n != 0 {
		t.Errorf("panicking run leaked %d open spans", n)
	}
}

func TestJobProfileEndpoint(t *testing.T) {
	srv, ts := newJobServer(t)

	doJSON(t, http.MethodGet, ts.URL+"/jobs/nope/profile", nil, http.StatusNotFound, nil)

	// Submit with run context, the way the coordinator dispatches.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs?suite=default", nil)
	req.Header.Set(HeaderRunID, "feedfacecafe0001")
	req.Header.Set(HeaderShardID, "s3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Spec.RunID != "feedfacecafe0001" || sub.Spec.Shard != "s3" {
		t.Fatalf("run context not on job record: %+v", sub.Spec)
	}
	if j := pollJob(t, ts.URL, sub.ID); j.State != jobs.StateDone {
		t.Fatalf("job = %+v", j)
	}

	// The finished job serves a decodable profile carrying the run
	// context tags and the worker-side evaluation stage.
	resp, err = http.Get(ts.URL + "/jobs/" + sub.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET profile = %d, want 200", resp.StatusCode)
	}
	p, err := obs.DecodeSpanProfile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "service.job" || p.Open {
		t.Fatalf("profile root = %+v", p)
	}
	if p.Tag("run") != "feedfacecafe0001" || p.Tag("shard") != "s3" {
		t.Errorf("profile tags = %v", p.Tags)
	}
	foundEval := false
	p.Walk(func(_ int, sp *obs.SpanProfile) {
		if sp.Name == "service.evaluate" {
			foundEval = true
		}
	})
	if !foundEval {
		t.Error("profile missing the service.evaluate stage span")
	}

	// Evicted artifact → 410.
	srv.mu.Lock()
	delete(srv.jobProfiles, sub.ID)
	srv.mu.Unlock()
	doJSON(t, http.MethodGet, ts.URL+"/jobs/"+sub.ID+"/profile", nil, http.StatusGone, nil)
}

func TestJobProfilePendingAndSanitized(t *testing.T) {
	// No worker pool: a submitted job stays queued, so the profile
	// endpoint's 409 arm is deterministic.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := WithNetwork(rg.Net, WithLogger(discardLogger()))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// A hostile run-context header is dropped, not carried into
	// observability identifiers.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs?suite=default", nil)
	req.Header.Set(HeaderRunID, "evil header value")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Spec.RunID != "" {
		t.Errorf("hostile run id survived sanitization: %q", sub.Spec.RunID)
	}

	resp, err = http.Get(ts.URL + "/jobs/" + sub.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued job profile = %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("409 without Retry-After")
	}
}

func TestStatsRouteLatency(t *testing.T) {
	_, ts := newJobServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/run?suite=default", nil, http.StatusOK, nil)
	doJSON(t, http.MethodPost, ts.URL+"/run?suite=internal", nil, http.StatusOK, nil)
	doJSON(t, http.MethodGet, ts.URL+"/coverage", nil, http.StatusOK, nil)

	var st StatsReport
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, http.StatusOK, &st)
	byRoute := map[string]RouteStat{}
	for _, r := range st.Routes {
		byRoute[r.Route] = r
	}
	run, ok := byRoute["/run"]
	if !ok {
		t.Fatalf("no /run route stat in %+v", st.Routes)
	}
	if run.Count < 2 {
		t.Errorf("/run count = %d, want >= 2", run.Count)
	}
	if run.P50 <= 0 || run.P99 < run.P50 {
		t.Errorf("/run quantiles p50=%v p99=%v", run.P50, run.P99)
	}
	if _, ok := byRoute["/coverage"]; !ok {
		t.Errorf("no /coverage route stat in %+v", st.Routes)
	}
}
