package service

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// Middleware wraps an http.Handler with a cross-cutting concern.
type Middleware func(http.Handler) http.Handler

// Chain applies middleware outermost-first: Chain(h, a, b) serves
// requests through a, then b, then h.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Recover isolates handler panics: the stack is logged, the client gets
// a 500 (when the response has not started), and the server keeps
// serving. A panicking coverage computation must not take down a daemon
// holding a day of accumulated trace state.
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if rec == http.ErrAbortHandler {
						panic(rec)
					}
					logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
					httpError(w, http.StatusInternalServerError, "internal error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// LimitBody caps request-body size with http.MaxBytesReader, so a
// misbehaving reporter cannot exhaust server memory. Handlers that read
// past the limit see a *http.MaxBytesError and answer 413.
func LimitBody(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// statusRecorder captures the response code for request logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// LogRequests logs one line per request: method, path, status, elapsed.
func LogRequests(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			next.ServeHTTP(sr, r)
			logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sr.status, time.Since(start).Round(time.Microsecond))
		})
	}
}
