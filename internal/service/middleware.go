package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"yardstick/internal/obs"
)

// Middleware wraps an http.Handler with a cross-cutting concern.
type Middleware func(http.Handler) http.Handler

// Chain applies middleware outermost-first: Chain(h, a, b) serves
// requests through a, then b, then h.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// reqIDKey carries the request id through the request context.
type reqIDKey struct{}

// RequestID returns the id LogRequests assigned to this request ("" when
// the middleware is not in the chain).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// newRequestID returns a 16-hex-char random id. Randomness failures
// degrade to a fixed id rather than failing the request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Recover isolates handler panics: the stack is logged, the client gets
// a 500 (when the response has not started), and the server keeps
// serving. A panicking coverage computation must not take down a daemon
// holding a day of accumulated trace state.
func Recover(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if rec == http.ErrAbortHandler {
						panic(rec)
					}
					logger.Error("panic serving request",
						"id", RequestID(r.Context()),
						"method", r.Method,
						"path", r.URL.Path,
						"panic", rec,
						"stack", string(debug.Stack()))
					httpError(w, http.StatusInternalServerError, "internal error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// LimitBody caps request-body size with http.MaxBytesReader, so a
// misbehaving reporter cannot exhaust server memory. Handlers that read
// past the limit see a *http.MaxBytesError and answer 413.
func LimitBody(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// statusRecorder captures the response code for request logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// LogRequests assigns each request an id (echoed in X-Request-Id and
// retrievable with RequestID) and logs one structured line per request:
// id, method, path, status, duration. It belongs OUTERMOST in the chain
// — the log line is emitted in a defer, so a request that panics through
// an inner Recover still gets its line, with the 500 Recover wrote.
func LogRequests(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := newRequestID()
			w.Header().Set("X-Request-Id", id)
			r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
			sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			defer func() {
				attrs := []any{
					"id", id,
					"method", r.Method,
					"path", r.URL.Path,
					"status", sr.status,
					"dur", time.Since(start).Round(time.Microsecond),
				}
				// Requests belonging to a distributed run (the coordinator
				// sends X-Run-Id on every dispatch) log the run ID, so one
				// grep joins a run's lines across the fleet.
				if run := r.Header.Get("X-Run-Id"); run != "" {
					attrs = append(attrs, "run", run)
				}
				logger.Info("request", attrs...)
			}()
			next.ServeHTTP(sr, r)
		})
	}
}

// Instrument records per-route request counts and latency histograms
// into reg:
//
//	yardstick_http_requests_total{route,status}
//	yardstick_http_request_duration_seconds{route}
//
// The route label is the known endpoint the path resolves to (never the
// raw path — client-controlled label values would blow up the series
// cardinality).
func Instrument(reg *obs.Registry) Middleware {
	reg.SetHelp("yardstick_http_requests_total", "HTTP requests served, by route and status")
	reg.SetHelp("yardstick_http_request_duration_seconds", "HTTP request latency, by route")
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := routeLabel(r.URL.Path)
			sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			next.ServeHTTP(sr, r)
			reg.Counter("yardstick_http_requests_total", "route", route, "status", strconv.Itoa(sr.status)).Inc()
			reg.Histogram("yardstick_http_request_duration_seconds", obs.DefBuckets, "route", route).ObserveSince(start)
		})
	}
}

// routeLabel maps a request path to a bounded route label set.
func routeLabel(path string) string {
	switch path {
	case "/network", "/trace", "/run", "/jobs", "/coverage", "/gaps",
		"/healthz", "/readyz", "/metrics", "/stats":
		return path
	}
	// Job IDs are client-visible path segments; collapse them so the
	// route label set stays bounded.
	if strings.HasPrefix(path, "/jobs/") {
		return "/jobs"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}
