package testkit

import (
	"context"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

func TestWideAreaRouteCheckPasses(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	check := WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs}
	res := check.Run(rg.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures[:min(5, len(res.Failures))])
	}
	// Checked on spines and non-WAN hubs: WAN hubs are origins.
	wantDevices := len(rg.Spines) + len(rg.Hubs) - len(rg.WANHubs)
	if want := wantDevices * len(rg.WANPrefixes); res.Checks != want {
		t.Errorf("checks = %d, want %d", res.Checks, want)
	}
	// Marks only eligible devices.
	for _, loc := range tr.Locations() {
		role := rg.Net.Device(loc.Device).Role
		if role != netmodel.RoleSpine && role != netmodel.RoleHub {
			t.Errorf("marked %v device", role)
		}
	}
}

func TestWideAreaRouteCheckEmptySpec(t *testing.T) {
	rg := buildRegional(t)
	res := WideAreaRouteCheck{}.Run(rg.Net, core.NewTrace())
	if res.Checks != 0 || !res.Pass() {
		t.Error("empty spec should be a no-op")
	}
}

func TestWideAreaRouteCheckDetectsMissingRoute(t *testing.T) {
	rg := buildRegional(t)
	// Null-route a spine's wide-area rule; the check must fail.
	var victim *netmodel.Rule
	for _, r := range rg.Net.Rules {
		if r.Origin == netmodel.OriginWideArea &&
			rg.Net.Device(r.Device).Role == netmodel.RoleSpine &&
			r.Action.Kind == netmodel.ActForward {
			victim = r
			break
		}
	}
	if victim == nil {
		t.Fatal("no spine wide-area rule")
	}
	saved := victim.Action
	victim.Action = netmodel.Action{Kind: netmodel.ActDrop}
	res := WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs}.Run(rg.Net, core.NewTrace())
	victim.Action = saved
	if res.Pass() {
		t.Fatal("null-routed wide-area route not detected")
	}
}

func TestHostInterfaceCheckPasses(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	res := HostInterfaceCheck{}.Run(rg.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures)
	}
	if res.Checks != len(rg.ToRs) {
		t.Errorf("checks = %d, want %d (one subnet per ToR)", res.Checks, len(rg.ToRs))
	}
	// It finally covers the host-facing interfaces.
	c := core.NewCoverage(rg.Net, tr)
	for _, tor := range rg.ToRs {
		spec := core.OutIfaceSpec(rg.Net, rg.HostIface[tor])
		if got := core.ComponentCoverage(c, spec); got <= 0 {
			t.Errorf("host iface on %s still uncovered", rg.Net.Device(tor).Name)
		}
	}
}

func TestHostInterfaceCheckDetectsMisrouting(t *testing.T) {
	rg := buildRegional(t)
	tor := rg.ToRs[0]
	var victim *netmodel.Rule
	for _, rid := range rg.Net.Device(tor).FIB {
		r := rg.Net.Rule(rid)
		if r.Origin == netmodel.OriginInternal && r.Match.DstPrefix == rg.HostPrefix[tor] {
			victim = r
			break
		}
	}
	if victim == nil {
		t.Fatal("no own-subnet rule")
	}
	saved := victim.Action
	// Point the subnet at an uplink instead of the host port.
	victim.Action = netmodel.Action{Kind: netmodel.ActForward,
		OutIfaces: []netmodel.IfaceID{rg.Net.Device(tor).Ifaces[0]}}
	res := HostInterfaceCheck{}.Run(rg.Net, core.NewTrace())
	victim.Action = saved
	if res.Pass() {
		t.Fatal("misrouted host subnet not detected")
	}
}

// TestExtendedSuiteClosesGaps verifies that adding the two future-work
// tests on top of the §7.3 final suite eliminates the wide-area and
// host-interface gaps Figure 6d leaves open.
func TestExtendedSuiteClosesGaps(t *testing.T) {
	rg := buildRegional(t)
	final := Suite{
		DefaultRouteCheck{}, AggCanReachTorLoopback{},
		InternalRouteCheck{}, ConnectedRouteCheck{},
	}
	extended := append(Suite{
		WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs},
		HostInterfaceCheck{},
	}, final...)

	run := func(s Suite) *core.Coverage {
		tr := core.NewTrace()
		for _, res := range s.Run(context.Background(), rg.Net, tr) {
			if !res.Pass() {
				t.Fatalf("%s failed", res.Name)
			}
		}
		return core.NewCoverage(rg.Net, tr)
	}
	cFinal := run(final)
	cExt := run(extended)

	spines := core.DevicesByRole(rg.Net, netmodel.RoleSpine)
	finalSpine := core.RuleCoverage(cFinal, core.RulesOfDevices(rg.Net, spines), core.Fractional)
	extSpine := core.RuleCoverage(cExt, core.RulesOfDevices(rg.Net, spines), core.Fractional)
	if extSpine <= finalSpine {
		t.Errorf("wide-area check should raise spine rule coverage (%v -> %v)", finalSpine, extSpine)
	}
	// Only each spine's own-loopback delivery rule may remain dark.
	if extSpine < 0.98 {
		t.Errorf("extended suite spine rule coverage = %v, want ~1", extSpine)
	}

	tors := core.DevicesByRole(rg.Net, netmodel.RoleToR)
	finalIf := core.InterfaceCoverage(cFinal, core.IfacesOfDevices(rg.Net, tors), core.Fractional)
	extIf := core.InterfaceCoverage(cExt, core.IfacesOfDevices(rg.Net, tors), core.Fractional)
	if extIf <= finalIf {
		t.Errorf("host-interface check should raise ToR interface coverage (%v -> %v)", finalIf, extIf)
	}
	if extIf < 0.99 {
		t.Errorf("extended suite ToR interface coverage = %v, want ~1", extIf)
	}
}

// TestExtendedSuiteCatchesMoreFaultsSeed is a quick sanity check that the
// randomized mutation study in internal/faults has stable inputs here
// too: a null-routed wide-area rule is invisible to the final suite but
// caught by the extended one.
func TestExtendedSuiteCatchesMoreFaultsSeed(t *testing.T) {
	rg := buildRegional(t)
	wanHub := map[netmodel.DeviceID]bool{}
	for _, h := range rg.WANHubs {
		wanHub[h] = true
	}
	// Pick a *transit* wide-area rule (interconnect-only hub), not a WAN
	// hub's origination, which the check rightly treats as an origin.
	var victim *netmodel.Rule
	for _, r := range rg.Net.Rules {
		if r.Origin == netmodel.OriginWideArea &&
			rg.Net.Device(r.Device).Role == netmodel.RoleHub &&
			!wanHub[r.Device] &&
			r.Action.Kind == netmodel.ActForward {
			victim = r
			break
		}
	}
	if victim == nil {
		t.Fatal("no hub wide-area rule")
	}
	saved := victim.Action
	victim.Action = netmodel.Action{Kind: netmodel.ActDrop}
	defer func() { victim.Action = saved }()

	final := Suite{DefaultRouteCheck{}, AggCanReachTorLoopback{}, InternalRouteCheck{}, ConnectedRouteCheck{}}
	for _, res := range final.Run(context.Background(), rg.Net, core.Nop{}) {
		if !res.Pass() {
			t.Fatalf("final suite should be blind to the wide-area fault, but %s failed", res.Name)
		}
	}
	ext := WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs}
	if ext.Run(rg.Net, core.Nop{}).Pass() {
		t.Fatal("extended check should catch the wide-area fault")
	}
}

// TestSuiteOnIPv6Network runs the full case-study workflow on the IPv6
// twin of the regional network (the paper's network is dual-stack; each
// family is analyzed in its own space).
func TestSuiteOnIPv6Network(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4, IPv6: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := core.NewTrace()
	suite := Suite{
		DefaultRouteCheck{},
		ConnectedRouteCheck{},
		InternalRouteCheck{},
		AggCanReachTorLoopback{},
		HostInterfaceCheck{},
		WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs},
		ToRPingmesh{},
		ToRReachability{},
	}
	for _, res := range suite.Run(context.Background(), rg.Net, trace) {
		if !res.Pass() {
			t.Fatalf("%s failed on IPv6: %+v", res.Name, res.Failures[:min(3, len(res.Failures))])
		}
		if res.Checks == 0 {
			t.Errorf("%s ran no checks on IPv6", res.Name)
		}
	}
	cov := core.NewCoverage(rg.Net, trace)
	rule := core.RuleCoverage(cov, nil, core.Fractional)
	if rule < 0.9 {
		t.Errorf("IPv6 rule coverage = %v, want high with the full suite", rule)
	}
	// Weighted coverage works in the 296-bit space too.
	if w := core.RuleCoverage(cov, nil, core.Weighted); w <= 0 || w > 1 {
		t.Errorf("IPv6 weighted coverage = %v", w)
	}
}
