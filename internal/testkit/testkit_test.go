package testkit

import (
	"context"
	"net/netip"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
	"yardstick/internal/topogen"
)

func buildRegional(t *testing.T) *topogen.Regional {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

func TestDefaultRouteCheckPassesOnRegional(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	res := DefaultRouteCheck{}.Run(rg.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures)
	}
	// Checks cover ToRs, aggs, spines, and WAN hubs, but not
	// interconnect-only hubs.
	want := len(rg.ToRs) + len(rg.Aggs) + len(rg.Spines) + len(rg.WANHubs)
	if res.Checks != want {
		t.Errorf("checks = %d, want %d", res.Checks, want)
	}
	// Exactly one marked rule per checked device.
	if st := tr.Stats(); st.MarkedRules != want {
		t.Errorf("marked rules = %d, want %d", st.MarkedRules, want)
	}
}

func TestDefaultRouteCheckCatchesNullRoute(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{BugNullRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultRouteCheck{}.Run(ex.Net, core.NewTrace())
	if res.Pass() {
		t.Fatal("null-routed default should fail the check")
	}
	b2, _ := ex.Net.DeviceByName("b2")
	found := false
	for _, f := range res.Failures {
		if f.Device == b2.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("failure should implicate b2: %+v", res.Failures)
	}
}

func TestDefaultRouteCheckCatchesMissingDefault(t *testing.T) {
	// Spines in the buggy example still have a default via B1; remove B1
	// too and they have none.
	ex, err := topogen.BuildExample(topogen.ExampleOpts{BugNullRoute: true, OmitB1: true})
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultRouteCheck{}.Run(ex.Net, core.NewTrace())
	fails := map[netmodel.DeviceID]bool{}
	for _, f := range res.Failures {
		fails[f.Device] = true
	}
	for _, s := range ex.Spines {
		if !fails[s] {
			t.Errorf("spine %d missing-default not flagged", s)
		}
	}
}

func TestConnectedRouteCheckPasses(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	res := ConnectedRouteCheck{}.Run(rg.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures)
	}
	// One check per internal interface end.
	want := 2 * rg.Net.Stats().Links
	if res.Checks != want {
		t.Errorf("checks = %d, want %d", res.Checks, want)
	}
	if st := tr.Stats(); st.MarkedRules != want {
		t.Errorf("marked rules = %d, want %d", st.MarkedRules, want)
	}
}

func TestInternalRouteCheckPasses(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	res := InternalRouteCheck{}.Run(rg.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures (%d): %+v", len(res.Failures), res.Failures[:min(5, len(res.Failures))])
	}
	if res.Checks == 0 {
		t.Fatal("no checks ran")
	}
	// Coverage marked on every device except none (origins excluded per
	// prefix but every device transits some prefix).
	if st := tr.Stats(); st.Locations != len(rg.Net.Devices) {
		t.Errorf("marked locations = %d, want %d", st.Locations, len(rg.Net.Devices))
	}
}

func TestInternalRouteCheckSkipsOriginDelivery(t *testing.T) {
	// The origin's own rule must not be covered by the contract test:
	// host-facing interfaces stay untested (the §7.3 residual gap).
	rg := buildRegional(t)
	tr := core.NewTrace()
	InternalRouteCheck{}.Run(rg.Net, tr)
	c := core.NewCoverage(rg.Net, tr)
	tor := rg.ToRs[0]
	hostIface := rg.HostIface[tor]
	spec := core.OutIfaceSpec(rg.Net, hostIface)
	if got := core.ComponentCoverage(c, spec); got != 0 {
		t.Errorf("host-facing interface coverage = %v, want 0", got)
	}
}

func TestAggCanReachTorLoopback(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	res := AggCanReachTorLoopback{}.Run(rg.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures)
	}
	// Marks only aggregation devices.
	for _, loc := range tr.Locations() {
		if rg.Net.Device(loc.Device).Role != netmodel.RoleAgg {
			t.Errorf("marked non-agg device %s", rg.Net.Device(loc.Device).Name)
		}
	}
	if len(tr.Locations()) != len(rg.Aggs) {
		t.Errorf("marked %d devices, want %d aggs", len(tr.Locations()), len(rg.Aggs))
	}
}

func TestToRReachabilityFatTree(t *testing.T) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewTrace()
	res := ToRReachability{}.Run(ft.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures[:min(5, len(res.Failures))])
	}
	nt := len(ft.ToRs)
	if res.Checks != nt*(nt-1) {
		t.Errorf("checks = %d, want %d", res.Checks, nt*(nt-1))
	}
	// Every ToR device is marked (as source or transit/destination).
	c := core.NewCoverage(ft.Net, tr)
	if got := core.DeviceCoverage(c, ft.ToRs, core.Fractional); got != 1 {
		t.Errorf("ToR fractional device coverage = %v, want 1", got)
	}
}

func TestToRContractFatTree(t *testing.T) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewTrace()
	res := ToRContract{}.Run(ft.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures[:min(5, len(res.Failures))])
	}
	if res.Checks == 0 {
		t.Fatal("no checks")
	}
}

func TestToRPingmeshFatTree(t *testing.T) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewTrace()
	res := ToRPingmesh{}.Run(ft.Net, tr)
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures[:min(5, len(res.Failures))])
	}
	nt := len(ft.ToRs)
	if res.Checks != nt*(nt-1) {
		t.Errorf("checks = %d, want %d", res.Checks, nt*(nt-1))
	}
}

// TestSymbolicSubsumesConcrete verifies the compositional property at the
// test level: the pingmesh trace is contained in the reachability trace.
func TestSymbolicSubsumesConcrete(t *testing.T) {
	ft, err := topogen.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	trSym := core.NewTrace()
	ToRReachability{}.Run(ft.Net, trSym)
	trPing := core.NewTrace()
	ToRPingmesh{}.Run(ft.Net, trPing)

	cSym := core.NewCoverage(ft.Net, trSym)
	cPing := core.NewCoverage(ft.Net, trPing)
	for _, r := range ft.Net.Rules {
		sym := cSym.Covered(r.ID)
		ping := cPing.Covered(r.ID)
		if !sym.Contains(ping) {
			t.Fatalf("rule %d: concrete coverage not contained in symbolic", r.ID)
		}
	}
	// And strictly more rules are partially covered or equally many,
	// with symbolic fraction >= concrete.
	symRule := core.RuleCoverage(cSym, nil, Weighted())
	pingRule := core.RuleCoverage(cPing, nil, Weighted())
	if symRule < pingRule {
		t.Errorf("symbolic weighted rule coverage (%v) < concrete (%v)", symRule, pingRule)
	}
}

// Weighted avoids importing core.Weighted at every call site above.
func Weighted() core.AggKind { return core.Weighted }

func TestSuiteRunAccumulates(t *testing.T) {
	rg := buildRegional(t)
	tr := core.NewTrace()
	suite := Suite{DefaultRouteCheck{}, AggCanReachTorLoopback{}}
	results := suite.Run(context.Background(), rg.Net, tr)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.Pass() {
			t.Errorf("%s failed: %+v", r.Name, r.Failures)
		}
	}
	st := tr.Stats()
	if st.MarkedRules == 0 || st.Locations == 0 {
		t.Error("suite should mark both rules and packets")
	}
}

func TestPingTest(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	dst := ex.Leaves[1]
	pkt := pktTo(ex.LeafPrefix[dst].Addr().Next())
	res := PingTest{
		From: ex.Leaves[0], Packet: pkt,
		WantEnd: dataplane.TraceEgressed, WantDevice: dst,
	}.Run(ex.Net, core.NewTrace())
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures)
	}
	// Wrong expectation fails.
	res = PingTest{
		From: ex.Leaves[0], Packet: pkt,
		WantEnd: dataplane.TraceDropped, WantDevice: -1,
	}.Run(ex.Net, core.NewTrace())
	if res.Pass() {
		t.Fatal("mismatched expectation should fail")
	}
}

func pktTo(dst netip.Addr) hdr.Packet {
	return hdr.Packet{Dst: dst, Src: netip.MustParseAddr("10.0.0.1"), Proto: 1}
}

func TestReachabilityTest(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	dst := ex.Leaves[1]
	pkts := n.Space.DstPrefix(ex.LeafPrefix[dst])
	res := ReachabilityTest{
		From: ex.Leaves[0], Pkts: pkts,
		WantEgress: []netmodel.IfaceID{ex.LeafIface[dst]},
		Waypoint:   -1,
	}.Run(n, core.NewTrace())
	if !res.Pass() {
		t.Fatalf("failures: %+v", res.Failures)
	}
	// Waypoint assertion: a single spine does NOT see all packets (ECMP
	// splits symbolically means both spines see all packets actually —
	// symbolic floods traverse both). So the waypoint check passes for a
	// spine.
	res = ReachabilityTest{
		From: ex.Leaves[0], Pkts: pkts,
		WantEgress: []netmodel.IfaceID{ex.LeafIface[dst]},
		Waypoint:   ex.Spines[0],
	}.Run(n, core.NewTrace())
	if !res.Pass() {
		t.Fatalf("waypoint failures: %+v", res.Failures)
	}
	// A border is not on the path: waypoint check fails.
	res = ReachabilityTest{
		From: ex.Leaves[0], Pkts: pkts,
		WantEgress: []netmodel.IfaceID{ex.LeafIface[dst]},
		Waypoint:   ex.Borders[0],
	}.Run(n, core.NewTrace())
	if res.Pass() {
		t.Fatal("border waypoint should fail")
	}
}

func TestACLDenyCheck(t *testing.T) {
	n := netmodel.New()
	d := n.AddDevice("fw", netmodel.RoleBorder, 1)
	up := n.AddIface(d, "up")
	deny := netmodel.MatchAll()
	deny.DstPortLo, deny.DstPortHi = 23, 23
	n.AddACLRule(d, deny, true)
	n.AddACLRule(d, netmodel.MatchAll(), false)
	n.AddFIBRule(d, netmodel.MatchDst(netip.MustParsePrefix("0.0.0.0/0")),
		netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{up}}, netmodel.OriginDefault)
	n.ComputeMatchSets()

	res := ACLDenyCheck{Device: d, Match: n.Space.DstPort(23)}.Run(n, core.NewTrace())
	if !res.Pass() {
		t.Fatalf("port-23 deny should pass: %+v", res.Failures)
	}
	res = ACLDenyCheck{Device: d, Match: n.Space.DstPort(80)}.Run(n, core.NewTrace())
	if res.Pass() {
		t.Fatal("port-80 traffic is forwarded; deny check should fail")
	}
}

func TestKindsAndNames(t *testing.T) {
	tests := []Test{
		DefaultRouteCheck{}, ConnectedRouteCheck{}, InternalRouteCheck{},
		AggCanReachTorLoopback{}, ToRContract{}, ToRReachability{}, ToRPingmesh{},
		PingTest{}, ReachabilityTest{}, ACLDenyCheck{},
	}
	wantKinds := []Kind{
		StateInspection, StateInspection, LocalSymbolic,
		LocalSymbolic, LocalSymbolic, E2ESymbolic, E2EConcrete,
		E2EConcrete, E2ESymbolic, LocalSymbolic,
	}
	for i, tc := range tests {
		if tc.Name() == "" {
			t.Errorf("test %d has no name", i)
		}
		if tc.Kind() != wantKinds[i] {
			t.Errorf("%s kind = %v, want %v", tc.Name(), tc.Kind(), wantKinds[i])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBuiltinSuite(t *testing.T) {
	suite, err := BuiltinSuite("default,connected,internal,agg,contract,reach,pingmesh,host")
	if err != nil || len(suite) != 8 {
		t.Fatalf("suite = %d, err = %v", len(suite), err)
	}
	if _, err := BuiltinSuite("bogus"); err == nil {
		t.Error("unknown name should error")
	}
	if _, err := BuiltinSuite(""); err == nil {
		t.Error("empty suite should error")
	}
	if _, err := BuiltinSuite("wan"); err == nil {
		t.Error("wan is not name-addressable (needs a spec)")
	}
	// Whitespace and empties are tolerated.
	suite, err = BuiltinSuite(" default , ,connected ")
	if err != nil || len(suite) != 2 {
		t.Fatalf("tolerant parse: %d, %v", len(suite), err)
	}
}

func TestCustomNames(t *testing.T) {
	// Generic tests default their names and honor overrides.
	if (PingTest{}).Name() != "PingTest" || (PingTest{TestName: "x"}).Name() != "x" {
		t.Error("PingTest naming")
	}
	if (ReachabilityTest{}).Name() != "ReachabilityTest" || (ReachabilityTest{TestName: "y"}).Name() != "y" {
		t.Error("ReachabilityTest naming")
	}
	if (ACLDenyCheck{}).Name() != "ACLDenyCheck" || (ACLDenyCheck{TestName: "z"}).Name() != "z" {
		t.Error("ACLDenyCheck naming")
	}
}

func TestReachabilityTestFailurePaths(t *testing.T) {
	ex, err := topogen.BuildExample(topogen.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	n := ex.Net
	dst := ex.Leaves[1]
	pkts := n.Space.DstPrefix(ex.LeafPrefix[dst])
	// Wrong egress interface: the WAN iface never sees leaf-bound traffic.
	b1 := ex.Borders[0]
	res := ReachabilityTest{
		From: ex.Leaves[0], Pkts: pkts,
		WantEgress: []netmodel.IfaceID{ex.WANIface[b1]},
		Waypoint:   -1,
	}.Run(n, core.NewTrace())
	if res.Pass() {
		t.Error("wrong egress expectation should fail")
	}
}
