package testkit

import (
	"context"
	"testing"

	"yardstick/internal/core"
)

func TestRankCandidates(t *testing.T) {
	rg := buildRegional(t)
	// Baseline: the original suite.
	base := core.NewTrace()
	Suite{DefaultRouteCheck{}, AggCanReachTorLoopback{}}.Run(context.Background(), rg.Net, base)

	candidates := []Test{
		ConnectedRouteCheck{},
		InternalRouteCheck{},
		DefaultRouteCheck{}, // redundant: zero gain
	}
	ranked := RankCandidates(context.Background(), rg.Net, base, candidates, core.Fractional)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	// InternalRouteCheck covers far more rules than ConnectedRouteCheck.
	if ranked[0].Test.Name() != "InternalRouteCheck" {
		t.Errorf("top candidate = %s, want InternalRouteCheck", ranked[0].Test.Name())
	}
	// The redundant test has (near-)zero gain and ranks last.
	last := ranked[len(ranked)-1]
	if last.Test.Name() != "DefaultRouteCheck" || last.Gain > 1e-9 {
		t.Errorf("redundant test should rank last with zero gain: %+v", last.Gain)
	}
	// Gains are ordered and coverage values consistent.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Gain > ranked[i-1].Gain {
			t.Error("ranking not sorted by gain")
		}
	}
	for _, r := range ranked {
		if !r.Result.Pass() {
			t.Errorf("%s failed during ranking", r.Test.Name())
		}
		if r.Coverage < r.Gain {
			t.Error("coverage should include the baseline")
		}
	}
	// The baseline trace must be untouched.
	baseCov := core.NewCoverage(rg.Net, base)
	internal := 0
	for _, rid := range core.UncoveredRules(baseCov, nil) {
		if rg.Net.Rule(rid).Origin == "internal" {
			internal++
		}
	}
	if internal == 0 {
		t.Error("baseline trace was mutated by ranking")
	}
}

func TestGreedySuite(t *testing.T) {
	rg := buildRegional(t)
	base := core.NewTrace()
	DefaultRouteCheck{}.Run(rg.Net, base)

	candidates := []Test{
		ConnectedRouteCheck{},
		InternalRouteCheck{},
		AggCanReachTorLoopback{},
		DefaultRouteCheck{}, // redundant
	}
	chosen := GreedySuite(context.Background(), rg.Net, base, candidates, core.Fractional, 1e-9)
	if len(chosen) == 0 {
		t.Fatal("greedy suite chose nothing")
	}
	// First pick is the biggest single contributor.
	if chosen[0].Test.Name() != "InternalRouteCheck" {
		t.Errorf("first pick = %s", chosen[0].Test.Name())
	}
	// The redundant DefaultRouteCheck is never chosen.
	for _, c := range chosen {
		if c.Test.Name() == "DefaultRouteCheck" {
			t.Error("redundant test chosen")
		}
		if c.Gain <= 0 {
			t.Errorf("chosen test %s has non-positive gain", c.Test.Name())
		}
	}
	// AggCanReachTorLoopback adds nothing once InternalRouteCheck ran
	// (its loopback contracts are a subset), so at most 2 picks.
	if len(chosen) > 2 {
		t.Errorf("greedy chose %d tests, want <= 2", len(chosen))
	}
}
