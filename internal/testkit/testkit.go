// Package testkit implements network tests spanning the paper's full
// taxonomy (Figure 2) — state inspection, local and end-to-end, concrete
// and symbolic — including every named test from the case study (§7) and
// the performance evaluation (§8):
//
//	DefaultRouteCheck       state inspection
//	ConnectedRouteCheck     state inspection
//	InternalRouteCheck      local symbolic (RCDC-style contracts)
//	AggCanReachTorLoopback  local symbolic
//	ToRContract             local symbolic
//	ToRReachability         end-to-end symbolic
//	ToRPingmesh             end-to-end concrete
//
// Every test does the two things §3 distinguishes: it asserts expected
// behavior (producing a pass/fail Result) and reports what it exercised
// through the core.Tracker APIs (markPacket/markRule, §5.1).
package testkit

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// Kind classifies a test per Figure 2.
type Kind string

// Test kinds.
const (
	StateInspection Kind = "state-inspection"
	LocalConcrete   Kind = "local-concrete"
	LocalSymbolic   Kind = "local-symbolic"
	E2EConcrete     Kind = "e2e-concrete"
	E2ESymbolic     Kind = "e2e-symbolic"
)

// Failure is one failed assertion.
type Failure struct {
	Device netmodel.DeviceID
	Detail string
}

// Result is the outcome of one test run.
type Result struct {
	Name     string
	Kind     Kind
	Checks   int // assertions evaluated
	Failures []Failure
	// Err is set when the test did not run to completion — it panicked,
	// blew a resource budget, or was cancelled. An errored result is a
	// third state distinct from pass and fail: its assertions (and its
	// coverage contribution) are incomplete, so it neither vouches for
	// the network nor indicts it.
	Err string
}

// Pass reports whether the test ran to completion with all assertions
// holding. An errored test does not pass.
func (r Result) Pass() bool { return r.Err == "" && len(r.Failures) == 0 }

// Errored reports whether the test terminated abnormally (panic, budget
// exhaustion, cancellation) rather than completing with a verdict.
func (r Result) Errored() bool { return r.Err != "" }

// Status returns "pass", "fail", or "error".
func (r Result) Status() string {
	switch {
	case r.Errored():
		return "error"
	case len(r.Failures) > 0:
		return "fail"
	}
	return "pass"
}

func (r *Result) failf(dev netmodel.DeviceID, format string, args ...any) {
	r.Failures = append(r.Failures, Failure{Device: dev, Detail: fmt.Sprintf(format, args...)})
}

// Test is one network test.
type Test interface {
	Name() string
	Kind() Kind
	// Run executes the test against the network, reporting coverage to
	// the tracker and returning assertion results.
	Run(net *netmodel.Network, tracker core.Tracker) Result
}

// ContextTest is optionally implemented by tests that can observe
// cancellation while running (long symbolic floods, injected chaos
// tests). Suite.Run prefers RunContext when a test provides it; plain
// tests are still cancelled between tests and — for symbolic work —
// by the space's watched context (see hdr.Space.WatchContext).
type ContextTest interface {
	Test
	RunContext(ctx context.Context, net *netmodel.Network, tracker core.Tracker) Result
}

// Suite is an ordered collection of tests.
type Suite []Test

// Run executes every test, accumulating coverage in the tracker. The
// context is checked between tests: once it is done, the remaining
// tests are skipped and the partial results are returned (callers pair
// them with ctx.Err()). Each test runs under panic isolation — a
// panicking test yields an errored Result while the rest of the suite
// keeps running.
func (s Suite) Run(ctx context.Context, net *netmodel.Network, tracker core.Tracker) []Result {
	out := make([]Result, 0, len(s))
	for _, t := range s {
		if ctx.Err() != nil {
			return out
		}
		out = append(out, runIsolated(ctx, t, net, tracker))
	}
	return out
}

// runIsolated executes one test, converting a panic (a test bug, or a
// budget trip escaping the BDD engine) into an errored Result so one
// bad test cannot take down the whole evaluation.
func runIsolated(ctx context.Context, t Test, net *netmodel.Network, tracker core.Tracker) (res Result) {
	name, kind := t.Name(), t.Kind()
	defer func() {
		if r := recover(); r != nil {
			res = Result{Name: name, Kind: kind, Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	if ct, ok := t.(ContextTest); ok {
		return ct.RunContext(ctx, net, tracker)
	}
	return t.Run(net, tracker)
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// roleRank orders roles bottom-up so tests can recognize "northbound".
func roleRank(r netmodel.Role) int {
	switch r {
	case netmodel.RoleToR, netmodel.RoleLeaf:
		return 0
	case netmodel.RoleAgg:
		return 1
	case netmodel.RoleSpine:
		return 2
	case netmodel.RoleHub, netmodel.RoleBorder, netmodel.RoleCore:
		return 3
	}
	return -1
}

// findFIBRule returns the device's FIB rule for an exact prefix.
func findFIBRule(net *netmodel.Network, dev netmodel.DeviceID, p netip.Prefix) *netmodel.Rule {
	r, ok := net.FIBRuleFor(dev, p)
	if !ok {
		return nil
	}
	return r
}

// outDevices resolves a forward action's out-interfaces to the set of
// neighbor devices (external interfaces map to -1).
func outDevices(net *netmodel.Network, act netmodel.Action) map[netmodel.DeviceID]bool {
	out := make(map[netmodel.DeviceID]bool)
	for _, ifid := range act.OutIfaces {
		ifc := net.Iface(ifid)
		if ifc.Peer == netmodel.NoIface {
			out[-1] = true
		} else {
			out[net.Iface(ifc.Peer).Device] = true
		}
	}
	return out
}

func sameDeviceSet(a map[netmodel.DeviceID]bool, b []netmodel.DeviceID) bool {
	if len(a) != len(b) {
		return false
	}
	for _, d := range b {
		if !a[d] {
			return false
		}
	}
	return true
}

func devSetString(m map[netmodel.DeviceID]bool) string {
	ids := make([]int, 0, len(m))
	for d := range m {
		ids = append(ids, int(d))
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// defaultRoutePrefix returns the family's default route (0.0.0.0/0 or
// ::/0).
func defaultRoutePrefix(net *netmodel.Network) netip.Prefix {
	if net.Family() == hdr.V6 {
		return netip.MustParsePrefix("::/0")
	}
	return netip.MustParsePrefix("0.0.0.0/0")
}

// ---------------------------------------------------------------------------
// DefaultRouteCheck (state inspection)
// ---------------------------------------------------------------------------

// DefaultRouteCheck verifies that every device expected to carry the
// default route has one whose next hops are exactly its northbound
// neighbors (or an external uplink). Devices at the top of the hierarchy
// without an uplink are excluded, mirroring the case-study exclusion of
// some regional hubs. This is the RCDC-derived state-inspection test of
// §7.2, and it reports coverage via MarkRule.
type DefaultRouteCheck struct {
	// Exclude skips devices the default route is not expected on. Nil
	// excludes devices with no northbound neighbor and no external
	// uplink.
	Exclude func(d *netmodel.Device) bool
}

// Name implements Test.
func (DefaultRouteCheck) Name() string { return "DefaultRouteCheck" }

// Kind implements Test.
func (DefaultRouteCheck) Kind() Kind { return StateInspection }

// Run implements Test.
func (t DefaultRouteCheck) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	for _, d := range net.Devices {
		if t.Exclude != nil && t.Exclude(d) {
			continue
		}
		// Expected next hops: all strictly-northern neighbors; an
		// external uplink (WAN edge) also qualifies.
		var north []netmodel.DeviceID
		hasUplink := false
		for _, ifid := range d.Ifaces {
			ifc := net.Iface(ifid)
			if ifc.Peer == netmodel.NoIface {
				if ifc.External && !ifc.Addr.IsValid() {
					hasUplink = true // WAN-facing edge (no host subnet)
				}
				continue
			}
			nb := net.Device(net.Iface(ifc.Peer).Device)
			if roleRank(nb.Role) > roleRank(d.Role) {
				north = append(north, nb.ID)
			}
		}
		if t.Exclude == nil && len(north) == 0 && !hasUplink {
			continue // top of the hierarchy; excluded
		}
		res.Checks++
		rule := findFIBRule(net, d.ID, defaultRoutePrefix(net))
		if rule == nil {
			res.failf(d.ID, "no default route")
			continue
		}
		// Inspecting the rule covers its full match set (§5.1).
		tracker.MarkRule(rule.ID)
		if rule.Action.Kind != netmodel.ActForward {
			res.failf(d.ID, "default route does not forward (null-routed?)")
			continue
		}
		got := outDevices(net, rule.Action)
		if hasUplink && got[-1] && len(got) == 1 {
			continue // forwards out the uplink: correct for a WAN device
		}
		delete(got, -1)
		if !sameDeviceSet(got, north) {
			res.failf(d.ID, "default next hops %s != northbound neighbors", devSetString(got))
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// ConnectedRouteCheck (state inspection)
// ---------------------------------------------------------------------------

// ConnectedRouteCheck verifies that both ends of every point-to-point
// link carry the connected route for the link's /31 (§7.3).
type ConnectedRouteCheck struct{}

// Name implements Test.
func (ConnectedRouteCheck) Name() string { return "ConnectedRouteCheck" }

// Kind implements Test.
func (ConnectedRouteCheck) Kind() Kind { return StateInspection }

// Run implements Test.
func (t ConnectedRouteCheck) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	for _, ifc := range net.Ifaces {
		if ifc.Peer == netmodel.NoIface || !ifc.Addr.IsValid() {
			continue
		}
		res.Checks++
		p := ifc.Addr.Masked()
		rule := findFIBRule(net, ifc.Device, p)
		if rule == nil || rule.Origin != netmodel.OriginConnected {
			res.failf(ifc.Device, "missing connected route %v on %s", p, ifc.Name)
			continue
		}
		tracker.MarkRule(rule.ID)
	}
	return res
}

// ---------------------------------------------------------------------------
// Shortest-path contracts (local symbolic): InternalRouteCheck,
// ToRContract, AggCanReachTorLoopback
// ---------------------------------------------------------------------------

// contractCheck validates, for each (origin, prefix) pair, that every
// other eligible device forwards the prefix through exactly the full set
// of topological shortest paths toward the origin — the RCDC idea of
// decomposing an end-to-end invariant into local forwarding contracts
// (§7.3). It reports coverage with one markPacket per exercised device.
func contractCheck(net *netmodel.Network, tracker core.Tracker, res *Result,
	origins []netmodel.DeviceID, prefixes func(d *netmodel.Device) []netip.Prefix,
	eligible func(d *netmodel.Device) bool) {

	// Batch coverage marking: union of prefix sets checked per device.
	marked := make(map[netmodel.DeviceID]hdr.Set)
	mark := func(dev netmodel.DeviceID, s hdr.Set) {
		if cur, ok := marked[dev]; ok {
			marked[dev] = cur.Union(s)
		} else {
			marked[dev] = s
		}
	}

	for _, origin := range origins {
		prefs := prefixes(net.Device(origin))
		if len(prefs) == 0 {
			continue
		}
		dist := dataplane.BFSDistances(net, origin)
		for _, d := range net.Devices {
			if d.ID == origin || dist[d.ID] <= 0 {
				continue
			}
			if eligible != nil && !eligible(d) {
				continue
			}
			// Expected: ECMP across all neighbors one hop closer.
			var want []netmodel.DeviceID
			for _, nb := range net.Neighbors(d.ID) {
				if dist[nb] == dist[d.ID]-1 {
					want = append(want, nb)
				}
			}
			for _, p := range prefs {
				res.Checks++
				mark(d.ID, net.Space.DstPrefix(p))
				rule := findFIBRule(net, d.ID, p)
				if rule == nil {
					res.failf(d.ID, "no route for %v", p)
					continue
				}
				if rule.Action.Kind != netmodel.ActForward {
					res.failf(d.ID, "route for %v does not forward", p)
					continue
				}
				got := outDevices(net, rule.Action)
				if !sameDeviceSet(got, want) {
					res.failf(d.ID, "route for %v uses next hops %s, want full shortest-path set", p, devSetString(got))
				}
			}
		}
	}
	for dev, s := range marked {
		tracker.MarkPacket(dataplane.Injected(dev), s)
	}
}

// InternalRouteCheck validates that all prefixes originating within the
// region — host subnets and loopbacks — are forwarded through and only
// through the full set of topological shortest paths (§7.3). Local
// symbolic.
type InternalRouteCheck struct{}

// Name implements Test.
func (InternalRouteCheck) Name() string { return "InternalRouteCheck" }

// Kind implements Test.
func (InternalRouteCheck) Kind() Kind { return LocalSymbolic }

// Run implements Test.
func (t InternalRouteCheck) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	origins := make([]netmodel.DeviceID, len(net.Devices))
	for i := range origins {
		origins[i] = netmodel.DeviceID(i)
	}
	contractCheck(net, tracker, &res, origins, func(d *netmodel.Device) []netip.Prefix {
		return append(append([]netip.Prefix(nil), d.Subnets...), d.Loopbacks...)
	}, nil)
	return res
}

// ToRContract is the §8 local-symbolic benchmark test: the ToRReachability
// invariant decomposed into per-device forwarding contracts for the hosted
// prefixes only (a subset of RCDC).
type ToRContract struct{}

// Name implements Test.
func (ToRContract) Name() string { return "ToRContract" }

// Kind implements Test.
func (ToRContract) Kind() Kind { return LocalSymbolic }

// Run implements Test.
func (t ToRContract) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	var origins []netmodel.DeviceID
	for _, d := range net.Devices {
		if len(d.Subnets) > 0 {
			origins = append(origins, d.ID)
		}
	}
	contractCheck(net, tracker, &res, origins, func(d *netmodel.Device) []netip.Prefix {
		return d.Subnets
	}, nil)
	return res
}

// AggCanReachTorLoopback checks that aggregation routers correctly
// forward packets for ToR loopback interfaces (§7.2). Local symbolic,
// restricted to aggregation devices.
type AggCanReachTorLoopback struct{}

// Name implements Test.
func (AggCanReachTorLoopback) Name() string { return "AggCanReachTorLoopback" }

// Kind implements Test.
func (AggCanReachTorLoopback) Kind() Kind { return LocalSymbolic }

// Run implements Test.
func (t AggCanReachTorLoopback) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	var tors []netmodel.DeviceID
	for _, d := range net.Devices {
		if d.Role == netmodel.RoleToR && len(d.Loopbacks) > 0 {
			tors = append(tors, d.ID)
		}
	}
	contractCheck(net, tracker, &res, tors, func(d *netmodel.Device) []netip.Prefix {
		return d.Loopbacks
	}, func(d *netmodel.Device) bool {
		return d.Role == netmodel.RoleAgg
	})
	return res
}

// ---------------------------------------------------------------------------
// ToRReachability (end-to-end symbolic)
// ---------------------------------------------------------------------------

// ToRReachability checks that all packets originating at a ToR with a
// destination address in another ToR's hosted prefix reach that ToR (§8).
// End-to-end symbolic: one symbolic flood per source ToR, per-hop packet
// sets reported via MarkPacket.
type ToRReachability struct{}

// Name implements Test.
func (ToRReachability) Name() string { return "ToRReachability" }

// Kind implements Test.
func (ToRReachability) Kind() Kind { return E2ESymbolic }

// Run implements Test.
func (t ToRReachability) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	type hosted struct {
		dev   netmodel.DeviceID
		iface netmodel.IfaceID
		set   hdr.Set
	}
	var all []hosted
	for _, d := range net.Devices {
		for _, p := range d.Subnets {
			// The hosted edge interface carries the subnet address.
			for _, ifid := range d.Ifaces {
				ifc := net.Iface(ifid)
				if ifc.External && ifc.Addr == p {
					all = append(all, hosted{d.ID, ifid, net.Space.DstPrefix(p)})
				}
			}
		}
	}
	for _, src := range all {
		// Union of every other ToR's hosted prefix.
		dsts := net.Space.Empty()
		for _, h := range all {
			if h.dev != src.dev {
				dsts = dsts.Union(h.set)
			}
		}
		if dsts.IsEmpty() {
			continue
		}
		r, err := dataplane.Reach(net, dataplane.Injected(src.dev), dsts, dataplane.ReachOpts{
			OnHop: func(loc dataplane.Loc, pkts hdr.Set) { tracker.MarkPacket(loc, pkts) },
		})
		if err != nil {
			res.failf(src.dev, "symbolic flood failed: %v", err)
			continue
		}
		for _, h := range all {
			if h.dev == src.dev {
				continue
			}
			res.Checks++
			got, ok := r.Egressed[h.iface]
			if !ok || !got.Equal(h.set) {
				res.failf(src.dev, "packets for %s did not fully reach it", net.Device(h.dev).Name)
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// ToRPingmesh (end-to-end concrete)
// ---------------------------------------------------------------------------

// ToRPingmesh checks the ToRReachability invariant with one sampled
// concrete address per prefix instead of reasoning about all packets —
// the Pingmesh idea (§8). End-to-end concrete.
type ToRPingmesh struct{}

// Name implements Test.
func (ToRPingmesh) Name() string { return "ToRPingmesh" }

// Kind implements Test.
func (ToRPingmesh) Kind() Kind { return E2EConcrete }

// Run implements Test.
func (t ToRPingmesh) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	type hosted struct {
		dev    netmodel.DeviceID
		prefix netip.Prefix
	}
	var all []hosted
	for _, d := range net.Devices {
		for _, p := range d.Subnets {
			all = append(all, hosted{d.ID, p})
		}
	}
	for _, src := range all {
		srcAddr := src.prefix.Addr().Next() // .1 of the hosted subnet
		for _, dst := range all {
			if dst.dev == src.dev {
				continue
			}
			res.Checks++
			pkt := hdr.Packet{
				Dst:     dst.prefix.Addr().Next(),
				Src:     srcAddr,
				Proto:   1, // ICMP echo
				DstPort: 0,
				SrcPort: 0,
			}
			tr := dataplane.Traceroute(net, dataplane.Injected(src.dev), pkt)
			single := net.Space.Singleton(pkt)
			for _, hop := range tr.Hops {
				tracker.MarkPacket(hop.Loc, single)
			}
			if tr.End != dataplane.TraceEgressed || len(tr.Hops) == 0 ||
				tr.Hops[len(tr.Hops)-1].Loc.Device != dst.dev {
				res.failf(src.dev, "ping to %s ended %v", net.Device(dst.dev).Name, tr.End)
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Generic taxonomy tests
// ---------------------------------------------------------------------------

// PingTest is a generic end-to-end concrete test: one packet injected at
// From must terminate with End (e.g. egress somewhere specific).
type PingTest struct {
	TestName   string
	From       netmodel.DeviceID
	Packet     hdr.Packet
	WantEnd    dataplane.TraceEnd
	WantDevice netmodel.DeviceID // device at the final hop; -1 = any
}

// Name implements Test.
func (t PingTest) Name() string {
	if t.TestName != "" {
		return t.TestName
	}
	return "PingTest"
}

// Kind implements Test.
func (PingTest) Kind() Kind { return E2EConcrete }

// Run implements Test.
func (t PingTest) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind(), Checks: 1}
	tr := dataplane.Traceroute(net, dataplane.Injected(t.From), t.Packet)
	single := net.Space.Singleton(t.Packet)
	for _, hop := range tr.Hops {
		tracker.MarkPacket(hop.Loc, single)
	}
	if tr.End != t.WantEnd {
		res.failf(t.From, "trace ended %v, want %v", tr.End, t.WantEnd)
		return res
	}
	if t.WantDevice >= 0 {
		if len(tr.Hops) == 0 || tr.Hops[len(tr.Hops)-1].Loc.Device != t.WantDevice {
			res.failf(t.From, "trace did not end at %s", net.Device(t.WantDevice).Name)
		}
	}
	return res
}

// ReachabilityTest is a generic end-to-end symbolic test: all packets in
// Pkts injected at From must egress via exactly the WantEgress interfaces
// (each receiving the full set), and optionally traverse Waypoint.
type ReachabilityTest struct {
	TestName   string
	From       netmodel.DeviceID
	Pkts       hdr.Set
	WantEgress []netmodel.IfaceID
	Waypoint   netmodel.DeviceID // -1 = none
}

// Name implements Test.
func (t ReachabilityTest) Name() string {
	if t.TestName != "" {
		return t.TestName
	}
	return "ReachabilityTest"
}

// Kind implements Test.
func (ReachabilityTest) Kind() Kind { return E2ESymbolic }

// Run implements Test.
func (t ReachabilityTest) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	r, err := dataplane.Reach(net, dataplane.Injected(t.From), t.Pkts, dataplane.ReachOpts{
		OnHop: func(loc dataplane.Loc, pkts hdr.Set) { tracker.MarkPacket(loc, pkts) },
	})
	if err != nil {
		res.Checks++
		res.failf(t.From, "symbolic flood failed: %v", err)
		return res
	}
	for _, ifid := range t.WantEgress {
		res.Checks++
		got, ok := r.Egressed[ifid]
		if !ok || !got.Equal(t.Pkts) {
			res.failf(net.Iface(ifid).Device, "egress %s did not receive the full packet set", net.Iface(ifid).Name)
		}
	}
	if t.Waypoint >= 0 {
		res.Checks++
		if !r.AtDevice(net, t.Waypoint).Equal(t.Pkts) {
			res.failf(t.Waypoint, "waypoint %s not traversed by all packets", net.Device(t.Waypoint).Name)
		}
	}
	return res
}

// ACLDenyCheck is a local symbolic test: the device must drop all packets
// matching Match (e.g. "router R1 must drop all packets to port 23").
type ACLDenyCheck struct {
	TestName string
	Device   netmodel.DeviceID
	Match    hdr.Set
}

// Name implements Test.
func (t ACLDenyCheck) Name() string {
	if t.TestName != "" {
		return t.TestName
	}
	return "ACLDenyCheck"
}

// Kind implements Test.
func (ACLDenyCheck) Kind() Kind { return LocalSymbolic }

// Run implements Test.
func (t ACLDenyCheck) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind(), Checks: 1}
	tracker.MarkPacket(dataplane.Injected(t.Device), t.Match)
	dr := dataplane.ApplyDevice(net, t.Device, t.Match)
	for _, hit := range dr.Hits {
		if len(hit.Out) > 0 {
			res.failf(t.Device, "packets escape via rule %d", hit.Rule.ID)
			return res
		}
	}
	return res
}

// BuiltinSuite resolves a comma-separated list of built-in test names —
// the vocabulary shared by the CLI tools and the HTTP service:
// default, connected, internal, agg, contract, reach, pingmesh, host.
// (WideAreaRouteCheck is not name-addressable: it needs a WAN route
// specification; callers add it explicitly.)
func BuiltinSuite(arg string) (Suite, error) {
	var suite Suite
	for _, name := range strings.Split(arg, ",") {
		switch strings.TrimSpace(name) {
		case "default":
			suite = append(suite, DefaultRouteCheck{})
		case "connected":
			suite = append(suite, ConnectedRouteCheck{})
		case "internal":
			suite = append(suite, InternalRouteCheck{})
		case "agg":
			suite = append(suite, AggCanReachTorLoopback{})
		case "contract":
			suite = append(suite, ToRContract{})
		case "reach":
			suite = append(suite, ToRReachability{})
		case "pingmesh":
			suite = append(suite, ToRPingmesh{})
		case "host":
			suite = append(suite, HostInterfaceCheck{})
		case "":
		default:
			return nil, fmt.Errorf("testkit: unknown test %q", name)
		}
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("testkit: empty test suite")
	}
	return suite, nil
}
