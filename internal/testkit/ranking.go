package testkit

import (
	"context"
	"sort"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// RankedCandidate is one candidate test with its marginal coverage gain
// over a baseline trace.
type RankedCandidate struct {
	Test Test
	// Index is the candidate's position in the input slice (tests are
	// identified positionally: dynamic test types may hold funcs or
	// slices and are not comparable).
	Index int
	// Gain is the increase in the chosen metric when the candidate's
	// coverage is added to the baseline.
	Gain float64
	// Coverage is the metric value with the candidate included.
	Coverage float64
	// Result is the candidate's own assertion outcome (it still runs as
	// a real test).
	Result Result
}

// RankCandidates orders candidate tests by how much rule coverage each
// would add on top of the baseline trace — the paper's §7.2 guidance to
// "focus one's efforts on the most productive kind of test development:
// the creation of new tests that provably improve coverage". Candidates
// are evaluated independently (each against the same baseline), so the
// ranking identifies the single best next test; apply it and re-rank to
// build a suite greedily. The baseline trace is not modified.
// Candidates run under the same panic isolation as Suite.Run: an
// erroring candidate ranks with its partial gain instead of aborting
// the ranking. A done context stops early, returning the candidates
// ranked so far.
func RankCandidates(ctx context.Context, net *netmodel.Network, base *core.Trace, candidates []Test, kind core.AggKind) []RankedCandidate {
	baseCov := core.NewCoverage(net, base)
	baseline := core.RuleCoverage(baseCov, nil, kind)

	out := make([]RankedCandidate, 0, len(candidates))
	for i, t := range candidates {
		if ctx.Err() != nil {
			break
		}
		trial := core.NewTrace()
		trial.Merge(base)
		res := runIsolated(ctx, t, net, trial)
		cov := core.NewCoverage(net, trial)
		v := core.RuleCoverage(cov, nil, kind)
		out = append(out, RankedCandidate{
			Test:     t,
			Index:    i,
			Gain:     v - baseline,
			Coverage: v,
			Result:   res,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Gain > out[j].Gain })
	return out
}

// GreedySuite builds a test suite greedily: starting from the baseline
// trace, it repeatedly adds the candidate with the highest marginal gain
// until no candidate improves the metric by more than epsilon or all
// candidates are used. It returns the chosen tests in order with their
// realized gains.
// It returns the chosen tests in order with their realized gains; a
// done context stops the greedy loop, returning the suite built so far.
func GreedySuite(ctx context.Context, net *netmodel.Network, base *core.Trace, candidates []Test, kind core.AggKind, epsilon float64) []RankedCandidate {
	acc := core.NewTrace()
	acc.Merge(base)
	remaining := append([]Test(nil), candidates...)
	var chosen []RankedCandidate
	for len(remaining) > 0 && ctx.Err() == nil {
		ranked := RankCandidates(ctx, net, acc, remaining, kind)
		if len(ranked) == 0 {
			break
		}
		best := ranked[0]
		if best.Gain <= epsilon {
			break
		}
		chosen = append(chosen, best)
		runIsolated(ctx, best.Test, net, acc)
		remaining = append(remaining[:best.Index], remaining[best.Index+1:]...)
	}
	return chosen
}
