package testkit

import (
	"net/netip"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
)

// This file implements the two tests the paper's case study leaves as
// future work: a check for wide-area routes ("the challenge is that
// there is not yet any specification of the routes to expect from the
// wide-area network", §7.3) and a check for host-facing interfaces ("we
// discovered that host-facing interfaces are not being tested ... will
// be developing another new test for these interfaces soon"). Together
// with the §7.3 suite they close the remaining coverage gaps Figure 6d
// shows.

// WideAreaRouteCheck validates, given a specification of the prefixes
// the WAN is expected to announce and the devices that peer with it,
// that every eligible device forwards each wide-area prefix through the
// full set of shortest paths toward the nearest WAN-peering device.
// Local symbolic, like InternalRouteCheck but with anycast origins.
type WideAreaRouteCheck struct {
	// Prefixes is the WAN route specification.
	Prefixes []netip.Prefix
	// WANDevices are the devices that peer with the WAN (anycast
	// origins).
	WANDevices []netmodel.DeviceID
	// Eligible restricts checked devices; nil checks the layers that
	// carry wide-area routes (spines and hubs).
	Eligible func(d *netmodel.Device) bool
}

// Name implements Test.
func (WideAreaRouteCheck) Name() string { return "WideAreaRouteCheck" }

// Kind implements Test.
func (WideAreaRouteCheck) Kind() Kind { return LocalSymbolic }

// Run implements Test.
func (t WideAreaRouteCheck) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	if len(t.Prefixes) == 0 || len(t.WANDevices) == 0 {
		return res
	}
	eligible := t.Eligible
	if eligible == nil {
		eligible = func(d *netmodel.Device) bool {
			return d.Role == netmodel.RoleSpine || d.Role == netmodel.RoleHub
		}
	}

	// Multi-source BFS from the WAN-peering devices.
	dist := make([]int, len(net.Devices))
	for i := range dist {
		dist[i] = -1
	}
	var queue []netmodel.DeviceID
	origin := make(map[netmodel.DeviceID]bool)
	for _, d := range t.WANDevices {
		dist[d] = 0
		origin[d] = true
		queue = append(queue, d)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}

	// The union of all WAN prefixes, marked per exercised device.
	pkts := net.Space.Empty()
	for _, p := range t.Prefixes {
		pkts = pkts.Union(net.Space.DstPrefix(p))
	}

	for _, d := range net.Devices {
		if origin[d.ID] || dist[d.ID] <= 0 || !eligible(d) {
			continue
		}
		var want []netmodel.DeviceID
		for _, nb := range net.Neighbors(d.ID) {
			if dist[nb] == dist[d.ID]-1 {
				want = append(want, nb)
			}
		}
		tracker.MarkPacket(dataplane.Injected(d.ID), pkts)
		for _, p := range t.Prefixes {
			res.Checks++
			rule := findFIBRule(net, d.ID, p.Masked())
			if rule == nil {
				res.failf(d.ID, "no route for wide-area prefix %v", p)
				continue
			}
			if rule.Action.Kind != netmodel.ActForward {
				res.failf(d.ID, "wide-area route %v does not forward", p)
				continue
			}
			got := outDevices(net, rule.Action)
			if !sameDeviceSet(got, want) {
				res.failf(d.ID, "wide-area route %v uses next hops %s, want shortest paths toward the WAN", p, devSetString(got))
			}
		}
	}
	return res
}

// HostInterfaceCheck validates that every device owning host subnets
// forwards each subnet out the edge interface carrying it — the test for
// host-facing interfaces the case study planned to add. Local symbolic.
type HostInterfaceCheck struct{}

// Name implements Test.
func (HostInterfaceCheck) Name() string { return "HostInterfaceCheck" }

// Kind implements Test.
func (HostInterfaceCheck) Kind() Kind { return LocalSymbolic }

// Run implements Test.
func (t HostInterfaceCheck) Run(net *netmodel.Network, tracker core.Tracker) Result {
	res := Result{Name: t.Name(), Kind: t.Kind()}
	for _, d := range net.Devices {
		if len(d.Subnets) == 0 {
			continue
		}
		marked := net.Space.Empty()
		for _, p := range d.Subnets {
			res.Checks++
			marked = marked.Union(net.Space.DstPrefix(p))

			// The edge interface that owns the subnet.
			var want netmodel.IfaceID = netmodel.NoIface
			for _, ifid := range d.Ifaces {
				ifc := net.Iface(ifid)
				if ifc.External && ifc.Addr == p {
					want = ifid
					break
				}
			}
			if want == netmodel.NoIface {
				res.failf(d.ID, "subnet %v has no host-facing interface", p)
				continue
			}
			rule := findFIBRule(net, d.ID, p.Masked())
			if rule == nil {
				res.failf(d.ID, "no route for own subnet %v", p)
				continue
			}
			if rule.Action.Kind != netmodel.ActForward ||
				len(rule.Action.OutIfaces) != 1 || rule.Action.OutIfaces[0] != want {
				res.failf(d.ID, "subnet %v not forwarded out its host interface", p)
			}
		}
		tracker.MarkPacket(dataplane.Injected(d.ID), marked)
	}
	return res
}
