// Package delta evaluates coverage incrementally under network churn.
//
// The paper frames coverage as a metric operators track *over time*
// (§3.2, §8): tests run, the network changes, and the interesting
// question is what yesterday's testing still attests about today's
// network. Until now any change replaced the whole network and reset the
// world — replica pool, trace, everything. This package accepts
// rule-level deltas instead: add, remove, or modify rules on a device,
// re-derive only the touched devices' disjoint match sets (through
// netmodel.Mutation, reusing the Match→set memo), carry the surviving
// trace onto the new rule universe, and report per-delta coverage drift
// without re-running a single test.
//
// Trace-transfer semantics: packet marks are keyed by location, which
// survives rule churn, so behavioral coverage persists and re-intersects
// with the new match sets automatically. Rule marks attest a
// state-inspection of a *specific* rule definition — a removed rule's
// mark has nothing to attach to, and a modified rule's mark attests a
// definition that no longer exists — so both are dropped, explicitly,
// and reported as coverage decay (the covered fraction the mark was
// worth). This is the honest reading of §5.1's markRule under churn: the
// inspection happened, but of state the network no longer has.
//
// Correctness bar: applying a delta must leave coverage bit-identical to
// tearing the network down and rebuilding it from scratch (same JSON,
// fresh BDD space, full re-derivation) with the trace transferred over —
// property-tested and fuzzed in this package, including mid-delta budget
// trips, which unwind leaving the network untouched (netmodel.Mutation
// stages all symbolic work before publishing).
package delta

import (
	"errors"
	"fmt"
	"slices"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// OpKind identifies a delta operation.
type OpKind string

// Delta operations.
const (
	OpAdd    OpKind = "add"    // append a rule (Spec required)
	OpRemove OpKind = "remove" // remove rule Rule (base-network ID)
	OpModify OpKind = "modify" // redefine rule Rule in place (Spec required)
)

// Op is one rule-level change. Rule IDs refer to the *base* network the
// document was computed against — all operations in a document are
// interpreted against that one universe and applied as a single atomic
// batch, so op order within a document does not matter and IDs never
// shift mid-document.
type Op struct {
	Op   OpKind             `json:"op"`
	Rule netmodel.RuleID    `json:"ruleId,omitempty"`
	Spec *netmodel.RuleSpec `json:"rule,omitempty"`
}

// Document is the PATCH /network wire format: a batch of operations plus
// the fingerprint of the network they were computed against. An empty
// Base skips the precondition (library use); over the wire the service
// rejects a stale Base with 409 so a delta never applies to state the
// client didn't see.
type Document struct {
	Base string `json:"base,omitempty"`
	Ops  []Op   `json:"ops"`
}

// BaseMismatchError reports a delta whose base fingerprint does not
// match the live network — the client computed it against stale state.
type BaseMismatchError struct {
	Current string // the live network's fingerprint
	Got     string // the document's base
}

func (e *BaseMismatchError) Error() string {
	return fmt.Sprintf("delta: base fingerprint %.12s… does not match current network %.12s…", e.Got, e.Current)
}

// ErrDriftIncomplete marks an Apply whose mutation committed but whose
// post-apply drift report was cut short (budget trip or cancellation
// during the coverage computation). The returned Applied is valid and
// the network *has* changed — only the drift/decay accounting is
// degraded. Callers treat it like the rest of the degradation model:
// keep the state, surface the incompleteness.
var ErrDriftIncomplete = errors.New("delta: applied, but drift report incomplete")

// LostRule is one dropped rule mark: the coverage decay unit.
type LostRule struct {
	OldID    netmodel.RuleID `json:"oldId"`
	Device   string          `json:"device"`
	Origin   string          `json:"origin"`
	Removed  bool            `json:"removed"` // false: rule modified, mark invalidated
	Fraction float64         `json:"fraction"`
}

// Decay accounts for trace mass lost to the delta: every dropped rule
// mark with the covered fraction it attested (a marked rule's covered
// set is its full match set, so the mark was worth MatchSet fraction).
type Decay struct {
	DroppedMarks int        `json:"droppedMarks"`
	LostFraction float64    `json:"lostFraction"`
	Lost         []LostRule `json:"lost,omitempty"`
}

// DeviceDrift is one touched device's weighted rule coverage before and
// after the delta.
type DeviceDrift struct {
	Device string  `json:"device"`
	Rules  int     `json:"rules"` // rule count after the delta
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// Applied reports one delta application.
type Applied struct {
	// Fingerprint is the network's fingerprint after the delta — the
	// base the next delta must carry.
	Fingerprint string   `json:"fingerprint"`
	Added       int      `json:"added"`
	Removed     int      `json:"removed"`
	Modified    int      `json:"modified"`
	Rules       int      `json:"rules"`   // total rules after
	Touched     []string `json:"touched"` // device names re-derived
	// AddedIDs are the new rules' IDs, in op order.
	AddedIDs []netmodel.RuleID `json:"addedIds,omitempty"`
	Decay    Decay             `json:"decay"`
	Drift    []DeviceDrift     `json:"drift,omitempty"`
	// Remap is the old→new rule ID correspondence (NoRule = removed).
	// It is process-local bookkeeping, not wire data.
	Remap []netmodel.RuleID `json:"-"`
}

// Engine owns the incremental state: one live network and the
// accumulated trace recorded against it. Apply mutates both in place.
// An Engine is not safe for concurrent use (it shares the network's
// single-threaded BDD manager).
type Engine struct {
	Net   *netmodel.Network
	Trace *core.Trace
	fp    string
}

// NewEngine wraps a frozen network and its trace, fingerprinting the
// network once.
func NewEngine(net *netmodel.Network, trace *core.Trace) (*Engine, error) {
	fp, err := core.Fingerprint(net)
	if err != nil {
		return nil, err
	}
	return &Engine{Net: net, Trace: trace, fp: fp}, nil
}

// ResumeEngine wraps a network whose fingerprint the caller already
// knows (a service that caches it), skipping the re-hash.
func ResumeEngine(net *netmodel.Network, trace *core.Trace, fp string) *Engine {
	return &Engine{Net: net, Trace: trace, fp: fp}
}

// Fingerprint returns the live network's fingerprint.
func (e *Engine) Fingerprint() string { return e.fp }

// buildMutation validates ops against net and assembles the batch.
func buildMutation(net *netmodel.Network, ops []Op) (*netmodel.Mutation, error) {
	mut := net.BeginMutation()
	for i, op := range ops {
		var err error
		switch op.Op {
		case OpRemove:
			if op.Spec != nil {
				err = errors.New("remove carries a rule spec")
			} else {
				err = mut.Remove(op.Rule)
			}
		case OpModify:
			if op.Spec == nil {
				err = errors.New("modify without a rule spec")
			} else {
				var def netmodel.RuleDef
				if def, err = net.ParseRuleSpec(*op.Spec); err == nil {
					err = mut.Modify(op.Rule, def)
				}
			}
		case OpAdd:
			if op.Spec == nil {
				err = errors.New("add without a rule spec")
			} else {
				var def netmodel.RuleDef
				if def, err = net.ParseRuleSpec(*op.Spec); err == nil {
					err = mut.Add(def)
				}
			}
		default:
			err = fmt.Errorf("unknown op %q", op.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("delta: op %d: %w", i, err)
		}
	}
	return mut, nil
}

// ApplyOps applies a batch of operations to a network with no trace,
// fingerprint, or drift bookkeeping — the replica-patch path: a sharded
// worker pool applies the same ops its canonical network already
// validated and committed.
func ApplyOps(net *netmodel.Network, ops []Op) error {
	mut, err := buildMutation(net, ops)
	if err != nil {
		return err
	}
	_, err = mut.Commit()
	return err
}

// Apply applies one delta document: validate, stage, commit, remap the
// trace, and report drift.
//
// Atomicity: any error other than ErrDriftIncomplete means nothing
// changed. A symbolic-engine panic (budget trip, watched-context
// cancellation) during the pre-drift computation or the commit also
// propagates with nothing changed — netmodel.Mutation publishes only
// after all BDD work succeeds. Once the commit has published, the
// remaining work is the after-side drift report; if *that* is cut
// short, Apply returns the (valid) Applied alongside ErrDriftIncomplete
// rather than pretending the delta failed.
func (e *Engine) Apply(doc Document) (*Applied, error) {
	if doc.Base != "" && doc.Base != e.fp {
		return nil, &BaseMismatchError{Current: e.fp, Got: doc.Base}
	}
	mut, err := buildMutation(e.Net, doc.Ops)
	if err != nil {
		return nil, err
	}
	removed, modified, added := mut.Pending()

	// Pre-commit snapshot: which rules will lose their marks, what each
	// mark was worth, and the touched devices' coverage before. All of
	// this reads the old universe, so it must happen now — and it may
	// panic on a budget trip, which is fine: nothing has changed yet.
	lost := make(map[netmodel.RuleID]LostRule)
	for _, op := range doc.Ops {
		if op.Op != OpRemove && op.Op != OpModify {
			continue
		}
		if !e.Trace.RuleMarked(op.Rule) {
			continue
		}
		r := e.Net.Rule(op.Rule)
		lost[op.Rule] = LostRule{
			OldID:    op.Rule,
			Device:   e.Net.Device(r.Device).Name,
			Origin:   string(r.Origin),
			Removed:  op.Op == OpRemove,
			Fraction: r.MatchSet().Fraction(),
		}
	}
	touchedSet := make(map[netmodel.DeviceID]bool)
	for _, op := range doc.Ops {
		switch op.Op {
		case OpRemove, OpModify:
			touchedSet[e.Net.Rule(op.Rule).Device] = true
		case OpAdd:
			touchedSet[netmodel.DeviceID(op.Spec.Device)] = true
		}
	}
	before := make(map[netmodel.DeviceID]float64, len(touchedSet))
	covBefore := core.NewCoverage(e.Net, e.Trace)
	for dev := range touchedSet {
		before[dev] = core.RuleCoverage(covBefore, e.Net.DeviceRules(dev), core.Weighted)
	}

	// The point of no return: all remaining symbolic work for the
	// commit is staged inside, and a panic there leaves e.Net untouched.
	res, err := mut.Commit()
	if err != nil {
		return nil, err
	}

	// The network has changed; everything from here on must not lose
	// that fact. Trace remap and fingerprinting involve no symbolic
	// work. Modified rules survive in the remap but their marks must
	// not: drop them through a mark-only copy.
	markRemap := slices.Clone(res.Remap)
	for _, op := range doc.Ops {
		if op.Op == OpModify {
			markRemap[op.Rule] = netmodel.NoRule
		}
	}
	droppedOld := e.Trace.RemapRules(markRemap)

	fp, err := core.Fingerprint(e.Net)
	if err != nil {
		// The encode of a just-committed network cannot realistically
		// fail, but if it does the cached fingerprint must not go stale.
		e.fp = ""
		return nil, fmt.Errorf("delta: fingerprinting applied network: %w", err)
	}
	e.fp = fp

	ap := &Applied{
		Fingerprint: fp,
		Added:       added,
		Removed:     removed,
		Modified:    modified,
		Rules:       len(e.Net.Rules),
		AddedIDs:    res.Added,
		Remap:       res.Remap,
	}
	for _, dev := range res.Touched {
		ap.Touched = append(ap.Touched, e.Net.Device(dev).Name)
	}
	ap.Decay.DroppedMarks = len(droppedOld)
	for _, old := range droppedOld {
		l, ok := lost[old]
		if !ok {
			// A mark on an ID the ops never named (out-of-universe mark
			// dropped defensively by RemapRules): account it with no
			// fraction rather than inventing one.
			l = LostRule{OldID: old}
		}
		ap.Decay.Lost = append(ap.Decay.Lost, l)
		ap.Decay.LostFraction += l.Fraction
	}

	// After-side drift: coverage of the touched devices in the new
	// universe. This is the only part that may fail with the delta
	// already applied, so it runs under its own Guard — a budget trip
	// here must not masquerade as a failed delta.
	derr := bdd.Guard(func() {
		covAfter := core.NewCoverage(e.Net, e.Trace)
		for _, dev := range res.Touched {
			ap.Drift = append(ap.Drift, DeviceDrift{
				Device: e.Net.Device(dev).Name,
				Rules:  len(e.Net.DeviceRules(dev)),
				Before: before[dev],
				After:  core.RuleCoverage(covAfter, e.Net.DeviceRules(dev), core.Weighted),
			})
		}
	})
	if derr != nil {
		ap.Drift = nil
		return ap, fmt.Errorf("%w: %v", ErrDriftIncomplete, derr)
	}
	return ap, nil
}
