package delta

import (
	"fmt"

	"yardstick/internal/netmodel"
)

// Diff computes a delta document's operations transforming old's
// forwarding state into next's. The two networks must share a topology
// (same device, interface, and link structure — e.g. next was rebuilt by
// a control-plane replay over old.CloneTopology()), because rule specs
// reference devices and interfaces by index.
//
// FIB rules are matched by their match fields, which a FIB keys
// uniquely (one route per prefix): a match present on both sides with a
// different action or origin becomes a modify, one side only becomes a
// remove or add. Should a table carry duplicate matches (nothing in the
// model forbids it), the diff falls back to replacing that device's
// whole table — correct, just coarser. ACLs are order-sensitive, so any
// difference in an ACL's sequence replaces the device's ACL wholesale.
//
// Remove/modify IDs refer to old's universe; ops are emitted in device
// order and are valid as one atomic document against old.
func Diff(old, next *netmodel.Network) ([]Op, error) {
	if old.Family() != next.Family() {
		return nil, fmt.Errorf("delta: diff across families")
	}
	if len(old.Devices) != len(next.Devices) || len(old.Ifaces) != len(next.Ifaces) {
		return nil, fmt.Errorf("delta: diff across different topologies")
	}
	for i, d := range old.Devices {
		if next.Devices[i].Name != d.Name {
			return nil, fmt.Errorf("delta: device %d name mismatch (%q vs %q)", i, d.Name, next.Devices[i].Name)
		}
	}
	var ops []Op
	for i := range old.Devices {
		dev := netmodel.DeviceID(i)
		ops = append(ops, diffACL(old, next, dev)...)
		fibOps, err := diffFIB(old, next, dev)
		if err != nil {
			return nil, err
		}
		ops = append(ops, fibOps...)
	}
	return ops, nil
}

// specEqual compares the definition-relevant fields of two rules via
// their wire specs (match, action, origin, deny — everything a delta
// can change).
func specEqual(a, b netmodel.RuleSpec) bool {
	if a.Device != b.Device || a.Table != b.Table || a.Action != b.Action ||
		a.Origin != b.Origin || a.Deny != b.Deny || a.Match != b.Match {
		return false
	}
	if len(a.Out) != len(b.Out) {
		return false
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			return false
		}
	}
	if (a.Transform == nil) != (b.Transform == nil) {
		return false
	}
	if a.Transform != nil && *a.Transform != *b.Transform {
		return false
	}
	return true
}

// diffACL replaces a device's ACL wholesale when the sequences differ.
func diffACL(old, next *netmodel.Network, dev netmodel.DeviceID) []Op {
	oldACL := old.Device(dev).ACL
	nextACL := next.Device(dev).ACL
	same := len(oldACL) == len(nextACL)
	if same {
		for i := range oldACL {
			if !specEqual(old.RuleSpecOf(oldACL[i]), next.RuleSpecOf(nextACL[i])) {
				same = false
				break
			}
		}
	}
	if same {
		return nil
	}
	ops := make([]Op, 0, len(oldACL)+len(nextACL))
	for _, id := range oldACL {
		ops = append(ops, Op{Op: OpRemove, Rule: id})
	}
	for _, id := range nextACL {
		spec := next.RuleSpecOf(id)
		ops = append(ops, Op{Op: OpAdd, Spec: &spec})
	}
	return ops
}

func diffFIB(old, next *netmodel.Network, dev netmodel.DeviceID) ([]Op, error) {
	oldFIB := old.Device(dev).FIB
	nextFIB := next.Device(dev).FIB
	oldBy := make(map[netmodel.Match]netmodel.RuleID, len(oldFIB))
	nextBy := make(map[netmodel.Match]netmodel.RuleID, len(nextFIB))
	dup := false
	for _, id := range oldFIB {
		m := old.Rule(id).Match
		if _, seen := oldBy[m]; seen {
			dup = true
		}
		oldBy[m] = id
	}
	for _, id := range nextFIB {
		m := next.Rule(id).Match
		if _, seen := nextBy[m]; seen {
			dup = true
		}
		nextBy[m] = id
	}
	if dup {
		// Ambiguous keying: replace the table.
		ops := make([]Op, 0, len(oldFIB)+len(nextFIB))
		for _, id := range oldFIB {
			ops = append(ops, Op{Op: OpRemove, Rule: id})
		}
		for _, id := range nextFIB {
			spec := next.RuleSpecOf(id)
			ops = append(ops, Op{Op: OpAdd, Spec: &spec})
		}
		return ops, nil
	}
	var ops []Op
	// Removals and modifications, in old table order.
	for _, id := range oldFIB {
		m := old.Rule(id).Match
		nid, ok := nextBy[m]
		if !ok {
			ops = append(ops, Op{Op: OpRemove, Rule: id})
			continue
		}
		if !specEqual(old.RuleSpecOf(id), next.RuleSpecOf(nid)) {
			spec := next.RuleSpecOf(nid)
			ops = append(ops, Op{Op: OpModify, Rule: id, Spec: &spec})
		}
	}
	// Additions, in next table order.
	for _, id := range nextFIB {
		if _, ok := oldBy[next.Rule(id).Match]; !ok {
			spec := next.RuleSpecOf(id)
			ops = append(ops, Op{Op: OpAdd, Spec: &spec})
		}
	}
	return ops, nil
}
