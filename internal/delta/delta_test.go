package delta

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"yardstick/internal/bdd"
	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/netmodel"
)

func pfx(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// buildBase builds a frozen two-device network: a's FIB holds a default,
// a 10/8 and a 10.1/16 route plus one ACL deny; b's FIB a default and a
// 172.16/12 route.
func buildBase(t testing.TB) *netmodel.Network {
	t.Helper()
	n := netmodel.New()
	a := n.AddDevice("a", netmodel.RoleToR, 1)
	b := n.AddDevice("b", netmodel.RoleSpine, 2)
	ia, ib := n.Connect(a, b, pfx(t, "10.255.0.0/31"))
	aFwd := netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{ia}}
	bFwd := netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{ib}}
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "0.0.0.0/0")), aFwd, netmodel.OriginDefault)
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "10.0.0.0/8")), aFwd, netmodel.OriginInternal)
	n.AddFIBRule(a, netmodel.MatchDst(pfx(t, "10.1.0.0/16")), aFwd, netmodel.OriginInternal)
	n.AddACLRule(a, netmodel.MatchDst(pfx(t, "192.168.0.0/16")), true)
	n.AddFIBRule(b, netmodel.MatchDst(pfx(t, "0.0.0.0/0")), bFwd, netmodel.OriginDefault)
	n.AddFIBRule(b, netmodel.MatchDst(pfx(t, "172.16.0.0/12")), bFwd, netmodel.OriginStatic)
	n.ComputeMatchSets()
	return n
}

func encodeNet(t testing.TB, n *netmodel.Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func specOf(t testing.TB, n *netmodel.Network, id netmodel.RuleID) *netmodel.RuleSpec {
	t.Helper()
	s := n.RuleSpecOf(id)
	return &s
}

func allRules(n *netmodel.Network) []netmodel.RuleID {
	out := make([]netmodel.RuleID, len(n.Rules))
	for i := range out {
		out[i] = netmodel.RuleID(i)
	}
	return out
}

// assertEngineEquivalent checks the correctness bar: the incremental
// network and trace yield coverage bit-identical to a from-scratch
// rebuild (same JSON, fresh space, full re-derivation) with the trace
// transferred over.
func assertEngineEquivalent(t testing.TB, e *Engine) {
	t.Helper()
	rb, err := netmodel.DecodeJSON(bytes.NewReader(encodeNet(t, e.Net)))
	if err != nil {
		t.Fatal(err)
	}
	rb.ComputeMatchSets()
	moved := e.Trace.TransferTo(rb.Space)
	covLive := core.NewCoverage(e.Net, e.Trace)
	covRb := core.NewCoverage(rb, moved)
	for _, kind := range []core.AggKind{core.Simple, core.Weighted, core.Fractional} {
		lv := core.RuleCoverage(covLive, allRules(e.Net), kind)
		rv := core.RuleCoverage(covRb, allRules(rb), kind)
		if lv != rv {
			t.Fatalf("rule coverage (kind %v) diverged: incremental %v, rebuild %v", kind, lv, rv)
		}
	}
	// The transfer round-trip is exact: moving the trace back must
	// reproduce it node for node.
	if !moved.TransferTo(e.Net.Space).Equal(e.Trace) {
		t.Fatal("trace transfer round-trip not exact")
	}
	if fp, err := core.Fingerprint(e.Net); err != nil || fp != e.Fingerprint() {
		t.Fatalf("cached fingerprint stale: %v (err %v)", fp, err)
	}
}

func TestApplyValidation(t *testing.T) {
	n := buildBase(t)
	e, err := NewEngine(n, core.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	before := encodeNet(t, n)
	spec := specOf(t, n, 0)
	cases := []struct {
		name string
		ops  []Op
		want string
	}{
		{"remove with spec", []Op{{Op: OpRemove, Rule: 0, Spec: spec}}, "carries a rule spec"},
		{"modify without spec", []Op{{Op: OpModify, Rule: 0}}, "without a rule spec"},
		{"add without spec", []Op{{Op: OpAdd}}, "without a rule spec"},
		{"unknown op", []Op{{Op: "replace", Rule: 0}}, "unknown op"},
		{"bad rule id", []Op{{Op: OpRemove, Rule: 99}}, "out of range"},
		{"double remove", []Op{{Op: OpRemove, Rule: 0}, {Op: OpRemove, Rule: 0}}, "already removed"},
	}
	for _, tc := range cases {
		_, err := e.Apply(Document{Ops: tc.ops})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if !bytes.Equal(before, encodeNet(t, n)) {
		t.Fatal("rejected documents changed the network")
	}
}

func TestApplyBaseMismatch(t *testing.T) {
	n := buildBase(t)
	e, err := NewEngine(n, core.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Apply(Document{Base: "deadbeef", Ops: []Op{{Op: OpRemove, Rule: 0}}})
	var bm *BaseMismatchError
	if !errors.As(err, &bm) || bm.Current != e.Fingerprint() {
		t.Fatalf("err = %v, want BaseMismatchError with current fingerprint", err)
	}
	// The correct base applies; the fingerprint advances.
	old := e.Fingerprint()
	ap, err := e.Apply(Document{Base: old, Ops: []Op{{Op: OpRemove, Rule: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if ap.Fingerprint == old || ap.Fingerprint != e.Fingerprint() {
		t.Fatal("fingerprint did not advance with the delta")
	}
	// Replaying against the stale base now fails — the retry-safety
	// property remote clients rely on.
	if _, err := e.Apply(Document{Base: old, Ops: []Op{{Op: OpRemove, Rule: 0}}}); err == nil {
		t.Fatal("stale base accepted after the network moved")
	}
}

func TestApplyDecayAccounting(t *testing.T) {
	n := buildBase(t)
	tr := core.NewTrace()
	tr.MarkRule(1) // a's 10/8 — will be removed
	tr.MarkRule(2) // a's 10.1/16 — will be modified
	tr.MarkRule(4) // b's default — untouched, must survive
	pk := n.Space.DstPrefix(pfx(t, "10.1.2.0/24"))
	loc := dataplane.Injected(netmodel.DeviceID(0))
	tr.MarkPacket(loc, pk)
	e, err := NewEngine(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	f1 := n.Rule(1).MatchSet().Fraction()
	f2 := n.Rule(2).MatchSet().Fraction()

	mod := specOf(t, n, 2)
	mod.Match.Dst = "10.2.0.0/16"
	ap, err := e.Apply(Document{Ops: []Op{
		{Op: OpRemove, Rule: 1},
		{Op: OpModify, Rule: 2, Spec: mod},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ap.Removed != 1 || ap.Modified != 1 || ap.Added != 0 {
		t.Fatalf("counts = %+v", ap)
	}
	if ap.Decay.DroppedMarks != 2 {
		t.Fatalf("DroppedMarks = %d, want 2", ap.Decay.DroppedMarks)
	}
	if ap.Decay.LostFraction != f1+f2 {
		t.Errorf("LostFraction = %v, want %v", ap.Decay.LostFraction, f1+f2)
	}
	removedSeen, modifiedSeen := false, false
	for _, l := range ap.Decay.Lost {
		switch l.OldID {
		case 1:
			removedSeen = l.Removed && l.Fraction == f1 && l.Device == "a"
		case 2:
			modifiedSeen = !l.Removed && l.Fraction == f2
		}
	}
	if !removedSeen || !modifiedSeen {
		t.Errorf("Lost rows wrong: %+v", ap.Decay.Lost)
	}
	// b's mark survives at its compacted ID (4 → 3); a's packet mark
	// survives by location.
	if !e.Trace.RuleMarked(3) {
		t.Error("untouched device's rule mark lost")
	}
	if !e.Trace.PacketsAt(e.Net.Space, loc).Equal(pk) {
		t.Error("packet mark lost")
	}
	if len(ap.Drift) == 0 || ap.Drift[0].Device != "a" {
		t.Errorf("drift rows = %+v", ap.Drift)
	}
	assertEngineEquivalent(t, e)
}

func TestApplyBudgetTripAtomic(t *testing.T) {
	n := buildBase(t)
	tr := core.NewTrace()
	tr.MarkRule(1)
	e, err := NewEngine(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	before := encodeNet(t, n)
	fp := e.Fingerprint()
	spec := &netmodel.RuleSpec{Device: 0, Table: "fib", Action: "drop",
		Match: netmodel.MatchSpec{Dst: "10.77.0.0/16"}, Origin: "static"}
	n.Space.SetLimits(bdd.Limits{MaxOps: 1})
	gerr := bdd.Guard(func() {
		e.Apply(Document{Ops: []Op{{Op: OpAdd, Spec: spec}, {Op: OpAdd, Spec: spec}}})
	})
	n.Space.SetLimits(bdd.Limits{})
	if gerr == nil {
		t.Skip("budget did not trip")
	}
	if !errors.Is(gerr, bdd.ErrBudgetExceeded) {
		t.Fatalf("gerr = %v", gerr)
	}
	if !bytes.Equal(before, encodeNet(t, n)) {
		t.Fatal("network changed despite mid-delta budget trip")
	}
	if e.Fingerprint() != fp {
		t.Fatal("fingerprint moved despite aborted delta")
	}
	if !e.Trace.RuleMarked(1) {
		t.Fatal("trace changed despite aborted delta")
	}
	// The engine still works once the budget is lifted.
	if _, err := e.Apply(Document{Ops: []Op{{Op: OpAdd, Spec: spec}}}); err != nil {
		t.Fatal(err)
	}
	assertEngineEquivalent(t, e)
}

func TestApplyCancellationAtomic(t *testing.T) {
	n := buildBase(t)
	e, err := NewEngine(n, core.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	before := encodeNet(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	restore := n.Space.WatchContext(ctx)
	spec := &netmodel.RuleSpec{Device: 0, Table: "fib", Action: "drop",
		Match: netmodel.MatchSpec{Dst: "10.88.0.0/16"}, Origin: "static"}
	gerr := bdd.Guard(func() {
		e.Apply(Document{Ops: []Op{{Op: OpAdd, Spec: spec}}})
	})
	restore()
	if gerr == nil {
		t.Skip("cancellation not observed (work finished between polls)")
	}
	if !bytes.Equal(before, encodeNet(t, n)) {
		t.Fatal("network changed despite cancelled delta")
	}
	if _, err := e.Apply(Document{Ops: []Op{{Op: OpAdd, Spec: spec}}}); err != nil {
		t.Fatal(err)
	}
	assertEngineEquivalent(t, e)
}

// randomOps assembles a valid delta document against n's current
// universe: removals and modifies target distinct random rules, adds
// invent random FIB routes on random devices.
func randomOps(rng *rand.Rand, n *netmodel.Network) []Op {
	var ops []Op
	used := map[netmodel.RuleID]bool{}
	for i := 0; i < 1+rng.Intn(4); i++ {
		switch k := rng.Intn(3); {
		case k == 0 && len(n.Rules) > 1:
			id := netmodel.RuleID(rng.Intn(len(n.Rules)))
			if !used[id] {
				used[id] = true
				ops = append(ops, Op{Op: OpRemove, Rule: id})
			}
		case k == 1 && len(n.Rules) > 0:
			id := netmodel.RuleID(rng.Intn(len(n.Rules)))
			if !used[id] {
				used[id] = true
				spec := n.RuleSpecOf(id)
				spec.Match.Dst = netip.PrefixFrom(
					netip.AddrFrom4([4]byte{byte(rng.Intn(4) * 64), byte(rng.Intn(256)), 0, 0}),
					1+rng.Intn(24),
				).Masked().String()
				ops = append(ops, Op{Op: OpModify, Rule: id, Spec: &spec})
			}
		default:
			dev := n.Devices[rng.Intn(len(n.Devices))]
			spec := netmodel.RuleSpec{
				Device: int32(dev.ID), Table: "fib", Action: "drop",
				Match: netmodel.MatchSpec{Dst: netip.PrefixFrom(
					netip.AddrFrom4([4]byte{byte(rng.Intn(4) * 64), byte(rng.Intn(256)), 0, 0}),
					rng.Intn(25),
				).Masked().String()},
				Origin: "static",
			}
			ops = append(ops, Op{Op: OpAdd, Spec: &spec})
		}
	}
	return ops
}

// randomTrace marks random packets and rules against n.
func randomTrace(rng *rand.Rand, n *netmodel.Network) *core.Trace {
	tr := core.NewTrace()
	for i := 0; i < 3; i++ {
		dev := netmodel.DeviceID(rng.Intn(len(n.Devices)))
		pf := netip.PrefixFrom(
			netip.AddrFrom4([4]byte{byte(rng.Intn(4) * 64), byte(rng.Intn(256)), 0, 0}),
			rng.Intn(25),
		).Masked()
		tr.MarkPacket(dataplane.Injected(dev), n.Space.DstPrefix(pf))
	}
	for i := 0; i < 3 && len(n.Rules) > 0; i++ {
		tr.MarkRule(netmodel.RuleID(rng.Intn(len(n.Rules))))
	}
	return tr
}

// TestPropertyDeltaEquivalence drives random delta streams and checks
// after every step that incremental coverage is bit-identical to a
// from-scratch rebuild.
func TestPropertyDeltaEquivalence(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := buildBase(t)
		e, err := NewEngine(n, randomTrace(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 5; step++ {
			ops := randomOps(rng, n)
			ap, err := e.Apply(Document{Base: e.Fingerprint(), Ops: ops})
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if ap.Fingerprint != e.Fingerprint() {
				t.Fatal("reported fingerprint differs from engine state")
			}
			assertEngineEquivalent(t, e)
		}
	}
}

// FuzzDeltaEquivalence lets the fuzzer steer the op stream; every
// accepted document must preserve rebuild equivalence, every rejected
// one must leave the network untouched.
func FuzzDeltaEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := buildBase(t)
		e, err := NewEngine(n, randomTrace(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < int(steps%6); step++ {
			before := encodeNet(t, n)
			ops := randomOps(rng, n)
			if _, err := e.Apply(Document{Ops: ops}); err != nil {
				if !bytes.Equal(before, encodeNet(t, n)) {
					t.Fatal("failed apply changed the network")
				}
				continue
			}
			assertEngineEquivalent(t, e)
		}
	})
}
