package report

import (
	"context"
	"strings"
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func covFor(t *testing.T, suite testkit.Suite) (*topogen.Regional, *core.Coverage) {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewTrace()
	suite.Run(context.Background(), rg.Net, tr)
	return rg, core.NewCoverage(rg.Net, tr)
}

func TestByRoleShape(t *testing.T) {
	_, c := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}})
	rows := ByRole(c, []netmodel.Role{netmodel.RoleToR, netmodel.RoleAgg, netmodel.RoleSpine, netmodel.RoleHub})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Devices == 0 {
			t.Errorf("%s has no devices", r.Label)
		}
		for _, v := range []float64{r.DeviceFractional, r.IfaceFractional, r.RuleFractional, r.RuleWeighted} {
			if v < 0 || v > 1 {
				t.Errorf("%s metric out of range: %v", r.Label, v)
			}
		}
	}
	// Roles with no devices are skipped.
	empty := ByRole(c, []netmodel.Role{netmodel.RoleCore})
	if len(empty) != 0 {
		t.Errorf("core rows = %d, want 0", len(empty))
	}
}

func TestRenderTable(t *testing.T) {
	_, c := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}})
	var sb strings.Builder
	RenderTable(&sb, []Metrics{Total(c, "all")})
	out := sb.String()
	if !strings.Contains(out, "all") || !strings.Contains(out, "%") {
		t.Errorf("table output malformed:\n%s", out)
	}
}

func TestGapsFindCategories(t *testing.T) {
	_, c := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}, testkit.AggCanReachTorLoopback{}})
	rows := Gaps(c)
	if len(rows) == 0 {
		t.Fatal("original suite should leave gaps")
	}
	origins := map[netmodel.RouteOrigin]bool{}
	for _, r := range rows {
		origins[r.Origin] = true
	}
	// The three §7.2 categories must all appear.
	for _, want := range []netmodel.RouteOrigin{
		netmodel.OriginInternal, netmodel.OriginConnected, netmodel.OriginWideArea,
	} {
		if !origins[want] {
			t.Errorf("gap category %v missing", want)
		}
	}
	// Sorted by descending count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Count > rows[i-1].Count {
			t.Fatal("gap rows not sorted")
		}
	}
	var sb strings.Builder
	RenderGaps(&sb, rows)
	if !strings.Contains(sb.String(), "internal") {
		t.Error("rendered gaps missing internal category")
	}
}

func TestImprovement(t *testing.T) {
	before := Metrics{RuleFractional: 0.1, IfaceFractional: 0.5, DeviceFractional: 1}
	after := Metrics{RuleFractional: 0.2, IfaceFractional: 0.6, DeviceFractional: 1}
	d := Improvement(before, after)
	if d.RulePct != 100 {
		t.Errorf("rule gain = %v, want 100", d.RulePct)
	}
	if d.IfacePct < 19.9 || d.IfacePct > 20.1 {
		t.Errorf("iface gain = %v, want ~20", d.IfacePct)
	}
	if d.DevicePct != 0 {
		t.Errorf("device gain = %v, want 0", d.DevicePct)
	}
	// Zero-to-something is effectively infinite; zero-to-zero is zero.
	d = Improvement(Metrics{}, Metrics{RuleFractional: 0.5})
	if d.RulePct < 1e8 {
		t.Errorf("gain from zero = %v", d.RulePct)
	}
	if d.IfacePct != 0 {
		t.Errorf("zero-to-zero gain = %v", d.IfacePct)
	}
}

func TestUncoveredDetail(t *testing.T) {
	rg, c := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}})
	// Zoom into one spine.
	spine := core.DevicesByRole(rg.Net, netmodel.RoleSpine)[0]
	rows := UncoveredDetail(c, core.RulesOfDevices(rg.Net, []netmodel.DeviceID{spine}), 4)
	if len(rows) == 0 {
		t.Fatal("spine should have partially covered rules")
	}
	for _, r := range rows {
		if r.Covered >= 1 {
			t.Errorf("rule %d reported with full coverage", r.Rule)
		}
		if r.Covered > 0 && len(r.Uncovered) == 0 && r.Complete {
			t.Errorf("rule %d has no uncovered destinations yet coverage < 1", r.Rule)
		}
		if len(r.Uncovered) > 4 {
			t.Errorf("rule %d exceeded the prefix budget", r.Rule)
		}
	}
	// The fully-covered default rule must not appear.
	for _, r := range rows {
		if r.Origin == netmodel.OriginDefault {
			t.Error("inspected default route should be fully covered")
		}
	}
	var sb strings.Builder
	RenderUncoveredDetail(&sb, rows)
	if !strings.Contains(sb.String(), "covered") {
		t.Error("render missing header")
	}
}

func TestUncoveredDetailEmptyWhenFullyCovered(t *testing.T) {
	rg, _ := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}})
	// Mark every rule: nothing to report.
	tr := core.NewTrace()
	for _, r := range rg.Net.Rules {
		tr.MarkRule(r.ID)
	}
	c := core.NewCoverage(rg.Net, tr)
	if rows := UncoveredDetail(c, nil, 4); len(rows) != 0 {
		t.Errorf("fully covered network reported %d detail rows", len(rows))
	}
}

func TestHTMLReport(t *testing.T) {
	rg, c := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}, testkit.AggCanReachTorLoopback{}})
	rep := BuildHTMLReport(c, "nightly coverage", []netmodel.Role{
		netmodel.RoleToR, netmodel.RoleAgg, netmodel.RoleSpine, netmodel.RoleHub,
	}, 5)
	if len(rep.Rows) != 5 { // 4 roles + TOTAL
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if len(rep.Gaps) == 0 || len(rep.Details) != 5 {
		t.Fatalf("gaps = %d details = %d", len(rep.Gaps), len(rep.Details))
	}
	var sb strings.Builder
	if err := rep.RenderHTML(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<!DOCTYPE html>", "nightly coverage", "TOTAL", "wide-area", "zoom-in"} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// Every device group renders.
	for _, d := range rg.Net.Devices[:3] {
		_ = d
	}
	// No detail budget -> no details section.
	rep2 := BuildHTMLReport(c, "x", []netmodel.Role{netmodel.RoleToR}, 0)
	var sb2 strings.Builder
	if err := rep2.RenderHTML(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "zoom-in") {
		t.Error("details rendered without budget")
	}
}
