package report

import (
	"fmt"
	"io"
	"math"
	"sort"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// Snapshot is a point-in-time coverage record: the headline metrics
// overall and per device. Engineers compute one per day (or per change)
// and diff them to catch testing regressions quickly (§8: "relying on
// the local metrics to more quickly catch regressions in testing").
type Snapshot struct {
	Total     Metrics
	PerDevice map[string]Metrics
	// PathUniverse optionally records the path-universe size, used by
	// PathUniverseDrift (§5.2's guard against state bugs silently
	// changing the path denominator).
	PathUniverse int
}

// TakeSnapshot computes the headline metrics for every device.
func TakeSnapshot(c *core.Coverage) *Snapshot {
	s := &Snapshot{
		Total:     Total(c, "total"),
		PerDevice: make(map[string]Metrics, len(c.Net.Devices)),
	}
	for _, d := range c.Net.Devices {
		s.PerDevice[d.Name] = ForDevices(c, d.Name, []netmodel.DeviceID{d.ID})
	}
	return s
}

// Regression is one device whose coverage dropped between snapshots.
type Regression struct {
	Device string
	Metric string
	Before float64
	After  float64
}

// CompareSnapshots returns the devices whose coverage decreased by more
// than epsilon on any headline metric, worst drops first. Devices
// present in only one snapshot are skipped (topology changes are not
// regressions).
func CompareSnapshots(before, after *Snapshot, epsilon float64) []Regression {
	var out []Regression
	for name, b := range before.PerDevice {
		a, ok := after.PerDevice[name]
		if !ok {
			continue
		}
		for _, m := range []struct {
			metric string
			b, a   float64
		}{
			{"device-fractional", b.DeviceFractional, a.DeviceFractional},
			{"iface-fractional", b.IfaceFractional, a.IfaceFractional},
			{"rule-fractional", b.RuleFractional, a.RuleFractional},
			{"rule-weighted", b.RuleWeighted, a.RuleWeighted},
		} {
			if m.b-m.a > epsilon {
				out = append(out, Regression{Device: name, Metric: m.metric, Before: m.b, After: m.a})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := out[i].Before - out[i].After
		dj := out[j].Before - out[j].After
		if di != dj {
			return di > dj
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// RenderRegressions writes regression rows.
func RenderRegressions(w io.Writer, rows []Regression) {
	fmt.Fprintf(w, "%-20s %-18s %8s %8s %8s\n", "device", "metric", "before", "after", "drop")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-18s %7.1f%% %7.1f%% %7.1f%%\n",
			r.Device, r.Metric, 100*r.Before, 100*r.After, 100*(r.Before-r.After))
	}
}

// PathUniverseDrift compares path-universe sizes between snapshots and
// flags drifts beyond the threshold fraction — §5.2's guard: "flagging
// to the user when the size of path universe changes dramatically
// relative to prior state snapshots". threshold 0.2 flags a ±20% change.
func PathUniverseDrift(before, after int, threshold float64) (drift float64, flagged bool) {
	if before == 0 {
		if after == 0 {
			return 0, false
		}
		return math.Inf(1), true
	}
	drift = float64(after-before) / float64(before)
	return drift, math.Abs(drift) > threshold
}
