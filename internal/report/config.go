package report

import (
	"fmt"
	"io"
	"sort"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// Config-line coverage, after "Test coverage metrics for the network
// configuration" (arXiv 2209.12870): treat each forwarding rule's
// definition as one generated configuration line and ask which lines any
// test exercised at all. Unlike the fractional and weighted metrics,
// this is binary per line — a line counts as covered as soon as one
// packet (or a direct state inspection) touches its rule — so it tracks
// the *breadth* of a suite across the configuration rather than the
// depth on any one rule. Under churn it is the first metric to decay:
// a replaced route's line starts at zero regardless of how thoroughly
// its predecessor was tested.

// ConfigRow is config-line coverage for one route origin: how many
// rule-defining lines that origin contributes and how many are covered.
type ConfigRow struct {
	Origin  netmodel.RouteOrigin
	Lines   int
	Covered int
}

// Fraction returns covered/lines (0 for an empty origin).
func (r ConfigRow) Fraction() float64 {
	if r.Lines == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Lines)
}

// ConfigCoverage buckets every rule's config line by origin and counts
// the lines whose covered set T[r] is non-empty. Rows are sorted by
// origin; rules with empty match sets still count as lines (a config
// line shadowed into unreachability is untestable and shows up here as
// permanently uncovered — the 2209.12870 dead-line signal).
func ConfigCoverage(c *core.Coverage) []ConfigRow {
	counts := make(map[netmodel.RouteOrigin]*ConfigRow)
	for i := range c.Net.Rules {
		rid := netmodel.RuleID(i)
		origin := c.Net.Rule(rid).Origin
		row, ok := counts[origin]
		if !ok {
			row = &ConfigRow{Origin: origin}
			counts[origin] = row
		}
		row.Lines++
		if !c.Covered(rid).IsEmpty() {
			row.Covered++
		}
	}
	out := make([]ConfigRow, 0, len(counts))
	for _, row := range counts {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// ConfigTotal sums rows into a single all-origins row.
func ConfigTotal(rows []ConfigRow) ConfigRow {
	total := ConfigRow{Origin: "total"}
	for _, r := range rows {
		total.Lines += r.Lines
		total.Covered += r.Covered
	}
	return total
}

// RenderConfig writes config-line coverage rows plus a total line.
func RenderConfig(w io.Writer, rows []ConfigRow) {
	fmt.Fprintf(w, "%-12s %8s %8s %9s\n", "origin", "lines", "covered", "line-cov")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %8d %8.1f%%\n", r.Origin, r.Lines, r.Covered, 100*r.Fraction())
	}
	t := ConfigTotal(rows)
	fmt.Fprintf(w, "%-12s %8d %8d %8.1f%%\n", t.Origin, t.Lines, t.Covered, 100*t.Fraction())
}
