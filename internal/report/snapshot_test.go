package report

import (
	"math"
	"strings"
	"testing"

	"yardstick/internal/testkit"
)

func TestSnapshotAndCompare(t *testing.T) {
	rg, cBig := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}, testkit.InternalRouteCheck{}})
	_, cSmall := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}})
	_ = rg

	big := TakeSnapshot(cBig)
	small := TakeSnapshot(cSmall)
	if len(big.PerDevice) != len(rg.Net.Devices) {
		t.Fatalf("snapshot devices = %d", len(big.PerDevice))
	}

	// Shrinking the suite is a regression on rule coverage for many
	// devices; growing it is not.
	regressions := CompareSnapshots(big, small, 0.01)
	if len(regressions) == 0 {
		t.Fatal("removing InternalRouteCheck should regress coverage")
	}
	for _, r := range regressions {
		if r.Before <= r.After {
			t.Errorf("regression row not a drop: %+v", r)
		}
	}
	// Sorted by drop size.
	for i := 1; i < len(regressions); i++ {
		if regressions[i].Before-regressions[i].After > regressions[i-1].Before-regressions[i-1].After+1e-12 {
			t.Fatal("regressions not sorted by drop")
		}
	}
	if rows := CompareSnapshots(small, big, 0.01); len(rows) != 0 {
		t.Errorf("improvement reported as regression: %+v", rows[0])
	}
	// Self-compare is clean.
	if rows := CompareSnapshots(big, big, 0.001); len(rows) != 0 {
		t.Error("self-comparison should have no regressions")
	}

	var sb strings.Builder
	RenderRegressions(&sb, regressions)
	if !strings.Contains(sb.String(), "drop") {
		t.Error("render missing header")
	}
}

func TestCompareSnapshotsSkipsTopologyChanges(t *testing.T) {
	_, c := covFor(t, testkit.Suite{testkit.DefaultRouteCheck{}})
	s := TakeSnapshot(c)
	other := &Snapshot{Total: s.Total, PerDevice: map[string]Metrics{"ghost": {RuleFractional: 1}}}
	if rows := CompareSnapshots(other, s, 0.01); len(rows) != 0 {
		t.Error("device present in only one snapshot should be skipped")
	}
}

func TestPathUniverseDrift(t *testing.T) {
	if d, flagged := PathUniverseDrift(1000, 1050, 0.2); flagged || math.Abs(d-0.05) > 1e-12 {
		t.Errorf("small drift flagged: %v %v", d, flagged)
	}
	if d, flagged := PathUniverseDrift(1000, 400, 0.2); !flagged || d > 0 {
		t.Errorf("big shrink not flagged: %v %v", d, flagged)
	}
	if _, flagged := PathUniverseDrift(1000, 1500, 0.2); !flagged {
		t.Error("big growth not flagged")
	}
	if _, flagged := PathUniverseDrift(0, 0, 0.2); flagged {
		t.Error("zero-to-zero flagged")
	}
	if d, flagged := PathUniverseDrift(0, 10, 0.2); !flagged || !math.IsInf(d, 1) {
		t.Error("zero-to-some not flagged as infinite drift")
	}
}
