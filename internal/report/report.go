// Package report renders coverage metrics the way the paper's case study
// consumes them: broken down by router type across the four headline
// metrics of Figure 6 (fractional device, interface, and rule coverage
// plus weighted rule coverage), aggregated across suite iterations
// (Figure 7), and drilled down into uncovered-rule categories — the §7.2
// gap analysis.
package report

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// Metrics is one row of a Figure 6 panel: the four headline metrics for a
// set of devices.
type Metrics struct {
	Label   string
	Devices int

	DeviceFractional float64
	IfaceFractional  float64
	RuleFractional   float64
	RuleWeighted     float64
}

// ForDevices computes the four headline metrics for a device group.
func ForDevices(c *core.Coverage, label string, devs []netmodel.DeviceID) Metrics {
	ifaces := core.IfacesOfDevices(c.Net, devs)
	rules := core.RulesOfDevices(c.Net, devs)
	return Metrics{
		Label:            label,
		Devices:          len(devs),
		DeviceFractional: core.DeviceCoverage(c, devs, core.Fractional),
		IfaceFractional:  core.InterfaceCoverage(c, ifaces, core.Fractional),
		RuleFractional:   core.RuleCoverage(c, rules, core.Fractional),
		RuleWeighted:     core.RuleCoverage(c, rules, core.Weighted),
	}
}

// ByRole computes one Metrics row per role, in the order given.
func ByRole(c *core.Coverage, roles []netmodel.Role) []Metrics {
	out := make([]Metrics, 0, len(roles))
	for _, role := range roles {
		devs := core.DevicesByRole(c.Net, role)
		if len(devs) == 0 {
			continue
		}
		out = append(out, ForDevices(c, string(role), devs))
	}
	return out
}

// Total computes the headline metrics across all devices.
func Total(c *core.Coverage, label string) Metrics {
	devs := make([]netmodel.DeviceID, len(c.Net.Devices))
	for i := range devs {
		devs[i] = netmodel.DeviceID(i)
	}
	return ForDevices(c, label, devs)
}

// RenderTable writes rows as an aligned text table.
func RenderTable(w io.Writer, rows []Metrics) {
	fmt.Fprintf(w, "%-28s %8s %10s %10s %10s %10s\n",
		"group", "devices", "dev(frac)", "if(frac)", "rule(frac)", "rule(wtd)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %8d %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			r.Label, r.Devices,
			100*r.DeviceFractional, 100*r.IfaceFractional,
			100*r.RuleFractional, 100*r.RuleWeighted)
	}
}

// GapRow is one category of untested rules.
type GapRow struct {
	Origin netmodel.RouteOrigin
	Role   netmodel.Role
	Count  int
}

// Gaps buckets every uncovered rule by (origin, role) — the §7.2 analysis
// that surfaced the internal-route, connected-route, and wide-area-route
// testing gaps. Rows are sorted by descending count.
func Gaps(c *core.Coverage) []GapRow {
	counts := make(map[GapRow]int)
	for _, rid := range core.UncoveredRules(c, nil) {
		r := c.Net.Rule(rid)
		key := GapRow{Origin: r.Origin, Role: c.Net.Device(r.Device).Role}
		counts[key]++
	}
	out := make([]GapRow, 0, len(counts))
	for k, n := range counts {
		k.Count = n
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Role < out[j].Role
	})
	return out
}

// RenderGaps writes the uncovered-rule buckets.
func RenderGaps(w io.Writer, rows []GapRow) {
	fmt.Fprintf(w, "%-12s %-10s %8s\n", "origin", "role", "untested")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %8d\n", r.Origin, r.Role, r.Count)
	}
}

// RuleDetail is one partially- or un-tested rule with the destination
// prefixes of its uncovered packets — the zoom-in view engineers use to
// decide which test to write next (§6's "zoom in from aggregate to
// individual component metrics").
type RuleDetail struct {
	Rule      netmodel.RuleID
	Device    string
	Origin    netmodel.RouteOrigin
	Match     netip.Prefix
	Covered   float64        // fraction of the match set covered
	Uncovered []netip.Prefix // destinations of the uncovered packets
	Complete  bool           // false when the prefix list was truncated
}

// UncoveredDetail lists, for the given rules (all when nil), those with
// coverage below 1, each with up to maxPrefixes uncovered destination
// prefixes. Rows are ordered by rule ID.
func UncoveredDetail(c *core.Coverage, rules []netmodel.RuleID, maxPrefixes int) []RuleDetail {
	if rules == nil {
		rules = make([]netmodel.RuleID, len(c.Net.Rules))
		for i := range rules {
			rules[i] = netmodel.RuleID(i)
		}
	}
	var out []RuleDetail
	for _, rid := range rules {
		r := c.Net.Rule(rid)
		ms := r.MatchSet()
		if ms.IsEmpty() {
			continue
		}
		covered := c.Covered(rid)
		frac := covered.FractionOf(ms)
		if frac >= 1 {
			continue
		}
		missing := ms.Diff(covered)
		prefixes, complete := missing.DstPrefixes(maxPrefixes)
		out = append(out, RuleDetail{
			Rule:      rid,
			Device:    c.Net.Device(r.Device).Name,
			Origin:    r.Origin,
			Match:     r.Match.DstPrefix,
			Covered:   frac,
			Uncovered: prefixes,
			Complete:  complete,
		})
	}
	return out
}

// RenderUncoveredDetail writes the zoom-in rows.
func RenderUncoveredDetail(w io.Writer, rows []RuleDetail) {
	fmt.Fprintf(w, "%-16s %-12s %-18s %8s  %s\n", "device", "origin", "match", "covered", "uncovered destinations")
	for _, r := range rows {
		more := ""
		if !r.Complete {
			more = " …"
		}
		fmt.Fprintf(w, "%-16s %-12s %-18v %7.1f%%  %v%s\n",
			r.Device, r.Origin, r.Match, 100*r.Covered, r.Uncovered, more)
	}
}

// Delta describes the improvement between two metric snapshots as
// relative percentage gains — the paper's "+89% more rules, +17% more
// interfaces" summary form.
type Delta struct {
	RulePct, IfacePct, DevicePct float64
}

// Improvement computes relative gains from before to after. A gain from
// zero is reported as +Inf only if after is non-zero; both-zero is 0.
func Improvement(before, after Metrics) Delta {
	rel := func(b, a float64) float64 {
		if b == 0 {
			if a == 0 {
				return 0
			}
			return 1e9 // effectively infinite relative gain
		}
		return 100 * (a - b) / b
	}
	return Delta{
		RulePct:   rel(before.RuleFractional, after.RuleFractional),
		IfacePct:  rel(before.IfaceFractional, after.IfaceFractional),
		DevicePct: rel(before.DeviceFractional, after.DeviceFractional),
	}
}
