package report

import (
	"fmt"
	"html/template"
	"io"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// HTMLReport is the data rendered by RenderHTML — a self-contained page
// with the Figure-6 metrics per group and the gap table, the artifact an
// engineer files next to a change review.
type HTMLReport struct {
	Title string
	Rows  []Metrics
	Gaps  []GapRow
	// Details optionally lists partially-covered rules for zoom-in.
	Details []RuleDetail
}

// BuildHTMLReport assembles the standard report for a coverage state:
// per-role rows plus the total, the gap table, and up to maxDetails
// zoomed-in rule rows.
func BuildHTMLReport(c *core.Coverage, title string, roles []netmodel.Role, maxDetails int) *HTMLReport {
	r := &HTMLReport{Title: title}
	r.Rows = append(ByRole(c, roles), Total(c, "TOTAL"))
	r.Gaps = Gaps(c)
	if maxDetails > 0 {
		details := UncoveredDetail(c, nil, 4)
		if len(details) > maxDetails {
			details = details[:maxDetails]
		}
		r.Details = details
	}
	return r
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) },
	"bar": func(v float64) template.CSS {
		return template.CSS(fmt.Sprintf("width:%.1f%%", 100*v))
	},
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body{font-family:system-ui,sans-serif;margin:2rem;color:#1a1a1a}
h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem}
table{border-collapse:collapse;min-width:40rem}
th,td{padding:.35rem .8rem;text-align:left;border-bottom:1px solid #ddd;font-size:.9rem}
th{background:#f5f5f5}
.meter{position:relative;background:#eee;height:.9rem;width:8rem;border-radius:3px;display:inline-block;vertical-align:middle}
.meter>span{position:absolute;left:0;top:0;bottom:0;background:#4a90d9;border-radius:3px}
.num{font-variant-numeric:tabular-nums}
code{background:#f5f5f5;padding:0 .2rem}
</style></head><body>
<h1>{{.Title}}</h1>
<h2>Coverage by group</h2>
<table><tr><th>group</th><th>devices</th><th>device (fractional)</th><th>interface (fractional)</th><th>rule (fractional)</th><th>rule (weighted)</th></tr>
{{range .Rows}}<tr><td>{{.Label}}</td><td class="num">{{.Devices}}</td>
<td><span class="meter"><span style="{{bar .DeviceFractional}}"></span></span> <span class="num">{{pct .DeviceFractional}}</span></td>
<td><span class="meter"><span style="{{bar .IfaceFractional}}"></span></span> <span class="num">{{pct .IfaceFractional}}</span></td>
<td><span class="meter"><span style="{{bar .RuleFractional}}"></span></span> <span class="num">{{pct .RuleFractional}}</span></td>
<td><span class="meter"><span style="{{bar .RuleWeighted}}"></span></span> <span class="num">{{pct .RuleWeighted}}</span></td>
</tr>{{end}}</table>
{{if .Gaps}}<h2>Testing gaps (untested rules)</h2>
<table><tr><th>origin</th><th>role</th><th>untested rules</th></tr>
{{range .Gaps}}<tr><td>{{.Origin}}</td><td>{{.Role}}</td><td class="num">{{.Count}}</td></tr>{{end}}</table>{{end}}
{{if .Details}}<h2>Partially tested rules (zoom-in)</h2>
<table><tr><th>device</th><th>origin</th><th>match</th><th>covered</th><th>uncovered destinations</th></tr>
{{range .Details}}<tr><td>{{.Device}}</td><td>{{.Origin}}</td><td><code>{{.Match}}</code></td><td class="num">{{pct .Covered}}</td><td>{{range .Uncovered}}<code>{{.}}</code> {{end}}{{if not .Complete}}…{{end}}</td></tr>{{end}}</table>{{end}}
</body></html>
`))

// RenderHTML writes the report as a self-contained HTML page.
func (r *HTMLReport) RenderHTML(w io.Writer) error {
	return htmlTmpl.Execute(w, r)
}
