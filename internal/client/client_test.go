package client

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/service"
	"yardstick/internal/topogen"
)

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func buildNet(t *testing.T) *topogen.Regional {
	t.Helper()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

func quiet() service.Option { return service.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))) }

// TestEndToEnd drives every typed method against a real service.
func TestEndToEnd(t *testing.T) {
	rg := buildNet(t)
	ts := httptest.NewServer(service.New(quiet()).Handler())
	defer ts.Close()
	c := New(ts.URL, WithRetry(fastRetry(2)))
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if ready, err := c.Ready(ctx); err != nil || ready {
		t.Fatalf("Ready before network = (%v, %v), want (false, nil)", ready, err)
	}

	st, err := c.LoadNetwork(ctx, rg.Net)
	if err != nil {
		t.Fatalf("LoadNetwork: %v", err)
	}
	if st.Devices != rg.Net.Stats().Devices {
		t.Errorf("LoadNetwork stats = %+v", st)
	}
	if ready, err := c.Ready(ctx); err != nil || !ready {
		t.Fatalf("Ready after network = (%v, %v), want (true, nil)", ready, err)
	}
	if st, err := c.NetworkStats(ctx); err != nil || st.Devices == 0 {
		t.Fatalf("NetworkStats = (%+v, %v)", st, err)
	}

	// Report a locally recorded fragment; the server network is a
	// decode of rg.Net, so IDs align.
	local := core.NewTrace()
	local.MarkPacket(dataplane.Injected(rg.ToRs[0]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]))
	for _, rid := range rg.Net.Device(rg.ToRs[0]).FIB {
		local.MarkRule(rid)
	}
	tst, err := c.ReportTrace(ctx, local)
	if err != nil {
		t.Fatalf("ReportTrace: %v", err)
	}
	if tst.Locations != 1 || tst.MarkedRules == 0 {
		t.Errorf("ReportTrace stats = %+v", tst)
	}

	results, err := c.Run(ctx, "default", "internal")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 2 {
		t.Errorf("Run results = %d, want 2", len(results))
	}

	cov, err := c.Coverage(ctx)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	if cov.Total.RuleFractional <= 0 {
		t.Errorf("coverage = %v, want > 0", cov.Total.RuleFractional)
	}
	if _, err := c.Gaps(ctx); err != nil {
		t.Fatalf("Gaps: %v", err)
	}

	if _, err := c.FetchTrace(ctx, rg.Net); err != nil {
		t.Fatalf("FetchTrace: %v", err)
	}
	if err := c.ResetTrace(ctx); err != nil {
		t.Fatalf("ResetTrace: %v", err)
	}
	cov, err = c.Coverage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total.RuleFractional != 0 {
		t.Error("coverage after reset should be zero")
	}
}

// TestRetriesTransientFailures serves two 503s before succeeding: the
// client must retry through them with backoff and succeed.
func TestRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(fastRetry(5)))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz through flaky server: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server calls = %d, want 3 (two failures + success)", got)
	}
}

func TestRetriesConnectionErrors(t *testing.T) {
	// A server that is down for the first attempts: simulate by
	// starting the listener only after the first connection failures —
	// simpler and deterministic: point at a closed port, expect the
	// retry loop to exhaust and report the attempts.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := ts.URL
	ts.Close() // now nothing listens there

	c := New(addr, WithRetry(fastRetry(3)))
	err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("expected error against closed port")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error should report exhausted attempts, got: %v", err)
	}
}

// TestNoRetryOn4xx: client errors are the caller's bug; exactly one
// attempt is made and the APIError is surfaced.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad suite"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(fastRetry(5)))
	_, err := c.Run(context.Background(), "bogus")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if ae.StatusCode != http.StatusBadRequest || ae.Message != "bad suite" {
		t.Errorf("APIError = %+v", ae)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server calls = %d, want 1 (no retries on 4xx)", got)
	}
}

// TestContextCancellation: a canceled context stops the retry loop
// promptly, even mid-backoff.
func TestContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Healthz(ctx) }()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and enter backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not honor context cancellation during backoff")
	}
}

// TestPerRequestTimeout: a hung server trips the per-attempt timeout
// rather than blocking forever.
func TestPerRequestTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(fastRetry(2)), WithRequestTimeout(50*time.Millisecond))
	start := time.Now()
	err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("timed out too slowly: %v", elapsed)
	}
}
