package client

// Async run helpers. POST /run holds the connection for the entire
// evaluation; the /jobs API instead answers 202 immediately and lets
// the caller poll, which is what the server's admission layer needs to
// bound concurrent work. SubmitJob/Job/CancelJob map one-to-one onto
// the wire API; WaitJob adds the polling loop; RunAsync composes
// submit-and-wait into a drop-in asynchronous replacement for Run.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
	"yardstick/internal/obs"
	"yardstick/internal/service"
)

// SubmitJob enqueues an asynchronous run of the given built-in suites
// (POST /jobs), returning the queued job. workers <= 0 leaves the
// worker count to the server. A full queue answers 503 with a
// Retry-After hint, which the retry policy honors before resubmitting;
// a duplicate submission caused by a lost 202 is wasteful but safe —
// coverage merges by BDD union, so re-running a suite cannot double
// count.
func (c *Client) SubmitJob(ctx context.Context, workers int, suites ...string) (service.JobStatus, error) {
	var j service.JobStatus
	path := "/jobs?suite=" + url.QueryEscape(strings.Join(suites, ","))
	if workers > 0 {
		path += "&workers=" + strconv.Itoa(workers)
	}
	err := c.do(ctx, http.MethodPost, path, nil, http.StatusAccepted, &j)
	return j, err
}

// Job fetches one job's current state (GET /jobs/{id}). The Result
// payload is set once the job is done.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var j service.JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, http.StatusOK, &j)
	return j, err
}

// Jobs lists the server's retained jobs with queue stats (GET /jobs).
// The server caps the response at its default page size; use ListJobs
// to filter by state and walk the full list page by page.
func (c *Client) Jobs(ctx context.Context) (service.JobList, error) {
	var out service.JobList
	err := c.do(ctx, http.MethodGet, "/jobs", nil, http.StatusOK, &out)
	return out, err
}

// JobsQuery selects a window of the server's job list: an optional
// state filter ("queued", "running", "done", "failed", "cancelled";
// empty = all) and an offset/limit page (Limit <= 0 = the server's
// default page size; the server hard-caps oversized limits).
type JobsQuery struct {
	State         string
	Offset, Limit int
}

// JobPage is one page of the job list plus the paging metadata the
// server returns in headers: the filtered total and whether rows remain
// past this page.
type JobPage struct {
	service.JobList
	// Total is the number of jobs matching the filter server-side
	// (X-Total-Count) — not the page length.
	Total int
	// More reports that the server advertised a next page (a Link
	// rel="next" header); continue with Offset advanced by len(Jobs).
	More bool
}

// ListJobs fetches one page of the server's retained jobs
// (GET /jobs?state=&offset=&limit=).
func (c *Client) ListJobs(ctx context.Context, q JobsQuery) (JobPage, error) {
	v := url.Values{}
	if q.State != "" {
		v.Set("state", q.State)
	}
	if q.Offset > 0 {
		v.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/jobs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var page JobPage
	hdr, err := c.doHeader(ctx, http.MethodGet, path, nil, http.StatusOK, &page.JobList)
	if err != nil {
		return page, err
	}
	if t := hdr.Get("X-Total-Count"); t != "" {
		if n, aerr := strconv.Atoi(t); aerr == nil {
			page.Total = n
		}
	}
	page.More = strings.Contains(hdr.Get("Link"), `rel="next"`)
	return page, nil
}

// JobTraceRaw downloads a done job's own coverage fragment as raw trace
// JSON (GET /jobs/{id}/trace). The bytes are validated as JSON but not
// decoded against a network — a coordinator collects fragments
// concurrently and decodes them later, serialized on the canonical BDD
// space. A 409 means the job is not done yet; a 410 means the fragment
// is gone (artifact evicted or the node restarted) and the shard should
// be re-run.
func (c *Client) JobTraceRaw(ctx context.Context, id string) ([]byte, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/trace", nil, http.StatusOK, &raw)
	return raw, err
}

// JobTrace downloads a done job's coverage fragment and decodes it
// against net — which must be (a deterministic replica of) the network
// the job ran against. Decoding writes net's BDD space; keep it
// single-threaded with other symbolic work.
func (c *Client) JobTrace(ctx context.Context, id string, net *netmodel.Network) (*core.Trace, error) {
	raw, err := c.JobTraceRaw(ctx, id)
	if err != nil {
		return nil, err
	}
	return core.DecodeTraceJSON(net, bytes.NewReader(raw))
}

// JobProfileRaw downloads a done job's span profile as raw JSON
// (GET /jobs/{id}/profile) — the worker-side half of a distributed
// run's timeline. Same ladder as the trace artifact: 409 while the job
// is still running, 410 once the profile has been evicted.
func (c *Client) JobProfileRaw(ctx context.Context, id string) ([]byte, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/profile", nil, http.StatusOK, &raw)
	return raw, err
}

// JobProfile downloads and decodes a done job's span profile. Malformed
// profile bytes surface as an error wrapping obs.ErrProfileFormat.
func (c *Client) JobProfile(ctx context.Context, id string) (*obs.SpanProfile, error) {
	raw, err := c.JobProfileRaw(ctx, id)
	if err != nil {
		return nil, err
	}
	return obs.DecodeSpanProfile(raw)
}

// CancelJob cancels a queued or running job (DELETE /jobs/{id}). A job
// that already finished answers 409, surfaced as an *APIError.
func (c *Client) CancelJob(ctx context.Context, id string) (service.JobStatus, error) {
	var j service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, http.StatusOK, &j)
	return j, err
}

// DefaultJobPoll is the poll interval WaitJob uses when the caller
// passes poll <= 0 — the guard that keeps RunAsync's WaitJob(ctx, id, 0)
// from busy-polling the server.
const DefaultJobPoll = 250 * time.Millisecond

// WaitJob polls a job until it reaches a terminal state (done, failed,
// or cancelled), pausing between probes (poll <= 0 means
// DefaultJobPoll). Each pause is equal-jittered — half deterministic,
// half uniformly random — so a fleet of pollers that submitted together
// does not probe in lockstep. A shed poll response (429/503 from
// admission control) does not fail the wait: the job is still running,
// the server was just busy — WaitJob backs off by the server's
// Retry-After hint (at least one poll interval) and keeps polling.
// Other errors return; reaching a terminal state is not an error here
// even when the state is failed — callers decide what a failed job
// means to them.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = DefaultJobPoll
	}
	for {
		j, err := c.Job(ctx, id)
		pause := poll/2 + rand.N(poll/2+1)
		if err != nil {
			hint, shed := IsShed(err)
			if !shed || ctx.Err() != nil {
				return j, err
			}
			if hint > pause {
				pause = hint
			}
		} else if j.State.Terminal() {
			return j, nil
		}
		t := time.NewTimer(pause)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return j, fmt.Errorf("client: waiting for job %s: %w", id, ctx.Err())
		}
	}
}

// RunAsync submits the suites as a job and waits for it: the
// asynchronous equivalent of Run, for callers who want backpressure-
// aware submission without managing the poll loop themselves. A job
// that ends failed or cancelled returns an error carrying the server's
// reason.
func (c *Client) RunAsync(ctx context.Context, workers int, suites ...string) ([]service.RunResult, error) {
	j, err := c.SubmitJob(ctx, workers, suites...)
	if err != nil {
		return nil, err
	}
	if j, err = c.WaitJob(ctx, j.ID, 0); err != nil {
		return nil, err
	}
	if j.Error != "" || len(j.Result) == 0 {
		return nil, fmt.Errorf("client: job %s %s: %s", j.ID, j.State, j.Error)
	}
	var out []service.RunResult
	if err := json.Unmarshal(j.Result, &out); err != nil {
		return nil, fmt.Errorf("client: job %s result: %w", j.ID, err)
	}
	return out, nil
}

// IsShed reports whether err is a load-shed response (429 or 503 from
// admission control) and returns the server's Retry-After hint when it
// carried one.
func IsShed(err error) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) &&
		(ae.StatusCode == http.StatusTooManyRequests || ae.StatusCode == http.StatusServiceUnavailable) {
		return ae.RetryAfter, true
	}
	return 0, false
}
