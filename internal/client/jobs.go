package client

// Async run helpers. POST /run holds the connection for the entire
// evaluation; the /jobs API instead answers 202 immediately and lets
// the caller poll, which is what the server's admission layer needs to
// bound concurrent work. SubmitJob/Job/CancelJob map one-to-one onto
// the wire API; WaitJob adds the polling loop; RunAsync composes
// submit-and-wait into a drop-in asynchronous replacement for Run.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"yardstick/internal/service"
)

// SubmitJob enqueues an asynchronous run of the given built-in suites
// (POST /jobs), returning the queued job. workers <= 0 leaves the
// worker count to the server. A full queue answers 503 with a
// Retry-After hint, which the retry policy honors before resubmitting;
// a duplicate submission caused by a lost 202 is wasteful but safe —
// coverage merges by BDD union, so re-running a suite cannot double
// count.
func (c *Client) SubmitJob(ctx context.Context, workers int, suites ...string) (service.JobStatus, error) {
	var j service.JobStatus
	path := "/jobs?suite=" + url.QueryEscape(strings.Join(suites, ","))
	if workers > 0 {
		path += "&workers=" + strconv.Itoa(workers)
	}
	err := c.do(ctx, http.MethodPost, path, nil, http.StatusAccepted, &j)
	return j, err
}

// Job fetches one job's current state (GET /jobs/{id}). The Result
// payload is set once the job is done.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var j service.JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, http.StatusOK, &j)
	return j, err
}

// Jobs lists the server's retained jobs with queue stats (GET /jobs).
func (c *Client) Jobs(ctx context.Context) (service.JobList, error) {
	var out service.JobList
	err := c.do(ctx, http.MethodGet, "/jobs", nil, http.StatusOK, &out)
	return out, err
}

// CancelJob cancels a queued or running job (DELETE /jobs/{id}). A job
// that already finished answers 409, surfaced as an *APIError.
func (c *Client) CancelJob(ctx context.Context, id string) (service.JobStatus, error) {
	var j service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, http.StatusOK, &j)
	return j, err
}

// WaitJob polls a job until it reaches a terminal state (done, failed,
// or cancelled), pausing poll between probes (poll <= 0 means 250ms).
// It returns the terminal job; reaching a terminal state is not an
// error here even when the state is failed — callers decide what a
// failed job means to them.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return j, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return j, fmt.Errorf("client: waiting for job %s: %w", id, ctx.Err())
		}
	}
}

// RunAsync submits the suites as a job and waits for it: the
// asynchronous equivalent of Run, for callers who want backpressure-
// aware submission without managing the poll loop themselves. A job
// that ends failed or cancelled returns an error carrying the server's
// reason.
func (c *Client) RunAsync(ctx context.Context, workers int, suites ...string) ([]service.RunResult, error) {
	j, err := c.SubmitJob(ctx, workers, suites...)
	if err != nil {
		return nil, err
	}
	if j, err = c.WaitJob(ctx, j.ID, 0); err != nil {
		return nil, err
	}
	if j.Error != "" || len(j.Result) == 0 {
		return nil, fmt.Errorf("client: job %s %s: %s", j.ID, j.State, j.Error)
	}
	var out []service.RunResult
	if err := json.Unmarshal(j.Result, &out); err != nil {
		return nil, fmt.Errorf("client: job %s result: %w", j.ID, err)
	}
	return out, nil
}

// IsShed reports whether err is a load-shed response (429 or 503 from
// admission control) and returns the server's Retry-After hint when it
// carried one.
func IsShed(err error) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) &&
		(ae.StatusCode == http.StatusTooManyRequests || ae.StatusCode == http.StatusServiceUnavailable) {
		return ae.RetryAfter, true
	}
	return 0, false
}
