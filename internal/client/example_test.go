package client_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"time"

	"yardstick/internal/client"
	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/service"
	"yardstick/internal/topogen"
)

// Example shows the remote-reporter workflow: a testing tool records
// coverage locally while its tests run, then reports the fragment to
// the always-on coverage service and reads back the aggregate.
func Example() {
	// Stand-in for the deployed yardstickd.
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(service.WithNetwork(rg.Net,
		service.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))).Handler())
	defer ts.Close()

	c := client.New(ts.URL,
		client.WithRequestTimeout(10*time.Second),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond}),
	)
	ctx := context.Background()

	if ready, err := c.Ready(ctx); err != nil || !ready {
		panic(fmt.Sprint("service not ready: ", err))
	}

	// The testing tool's local trace: its tests call MarkPacket and
	// MarkRule while they run.
	local := core.NewTrace()
	local.MarkPacket(dataplane.Injected(rg.ToRs[0]), rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]))
	for _, rid := range rg.Net.Device(rg.ToRs[0]).FIB {
		local.MarkRule(rid)
	}

	// Report the fragment (idempotent: safe to retry), then read the
	// aggregate the service accumulated across all reporters.
	if _, err := c.ReportTrace(ctx, local); err != nil {
		panic(err)
	}
	cov, err := c.Coverage(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("coverage above zero:", cov.Total.RuleFractional > 0)
	// Output:
	// coverage above zero: true
}
