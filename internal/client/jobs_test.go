package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yardstick/internal/jobs"
	"yardstick/internal/service"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // already elapsed
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRetryDelayHonorsHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}.withDefaults()

	// A hint below the cap is used verbatim — no jitter, the server said
	// exactly when to come back.
	hint := &APIError{StatusCode: 503, RetryAfter: 20 * time.Millisecond}
	if got := p.retryDelay(1, hint); got != 20*time.Millisecond {
		t.Errorf("retryDelay with hint = %v, want 20ms", got)
	}

	// A hint above MaxDelay is capped: the policy bounds worst-case
	// client latency even against a confused server.
	huge := &APIError{StatusCode: 429, RetryAfter: time.Hour}
	if got := p.retryDelay(1, huge); got != p.MaxDelay {
		t.Errorf("retryDelay with oversized hint = %v, want cap %v", got, p.MaxDelay)
	}

	// No hint falls back to jittered exponential backoff.
	plain := &APIError{StatusCode: 500}
	for range 20 {
		got := p.retryDelay(3, plain)
		if got <= 0 || got > p.MaxDelay {
			t.Fatalf("retryDelay fallback = %v, want in (0, %v]", got, p.MaxDelay)
		}
	}
}

// TestRetryAfterSecondsForm: a shed with the delay-seconds header form
// delays the retry by the hint, then succeeds.
func TestRetryAfterSecondsForm(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	// MaxDelay 2s > hint 1s, so the hint is used as-is.
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second}))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after shed: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
	if g := time.Duration(gap.Load()); g < 900*time.Millisecond {
		t.Fatalf("retry gap = %v, want >= ~1s from the Retry-After hint", g)
	}
}

// TestRetryAfterDateFormCapped: the HTTP-date header form is decoded,
// and a far-future date is capped at the policy's MaxDelay.
func TestRetryAfterDateFormCapped(t *testing.T) {
	var calls atomic.Int32
	start := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after dated shed: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
	// The hour-away hint must not park the client: total wall time stays
	// near MaxDelay, nowhere near the hint.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry took %v; the MaxDelay cap did not bound the hint", elapsed)
	}
}

// TestRetryable429: 429 joined the transient set; other 4xx stay fatal.
func TestRetryable429(t *testing.T) {
	if !retryable(&APIError{StatusCode: http.StatusTooManyRequests}) {
		t.Error("429 should be retryable")
	}
	if retryable(&APIError{StatusCode: http.StatusBadRequest}) {
		t.Error("400 should not be retryable")
	}
	if retryable(&APIError{StatusCode: http.StatusConflict}) {
		t.Error("409 should not be retryable")
	}
	if !retryable(&APIError{StatusCode: http.StatusServiceUnavailable}) {
		t.Error("503 should be retryable")
	}
}

// newAsyncServer boots a real service with a live worker pool.
func newAsyncServer(t *testing.T, opts ...service.Option) *httptest.Server {
	t.Helper()
	rg := buildNet(t)
	srv := service.WithNetwork(rg.Net, append([]service.Option{quiet()}, opts...)...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.RunJobs(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return ts
}

// TestJobHelpers drives submit/poll/wait/list against a real service.
func TestJobHelpers(t *testing.T) {
	ts := newAsyncServer(t)
	c := New(ts.URL, WithRetry(fastRetry(2)))
	ctx := context.Background()

	j, err := c.SubmitJob(ctx, 0, "default", "internal")
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if j.ID == "" {
		t.Fatalf("submitted job has no ID: %+v", j)
	}

	got, err := c.WaitJob(ctx, j.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if got.State != jobs.StateDone || len(got.Result) == 0 {
		t.Fatalf("waited job = %+v, want done with result", got)
	}

	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(list.Jobs) != 1 || list.Stats.Done != 1 {
		t.Fatalf("job list = %+v", list)
	}

	// RunAsync round-trips results like Run does.
	results, err := c.RunAsync(ctx, 0, "default", "internal")
	if err != nil {
		t.Fatalf("RunAsync: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("RunAsync results = %d, want 2", len(results))
	}

	// A bad suite fails the submit with a non-retryable 400.
	if _, err := c.SubmitJob(ctx, 0, "no-such-suite"); err == nil {
		t.Fatal("SubmitJob with bad suite should fail")
	} else if ra, shed := IsShed(err); shed {
		t.Fatalf("bad suite misclassified as shed (Retry-After %v)", ra)
	}
}

// TestListJobsPaging walks a multi-page job list via the typed paging
// API: Total reflects the filtered count, More drives the walk, and the
// pages cover every job exactly once.
func TestListJobsPaging(t *testing.T) {
	// No worker pool: submitted jobs stay queued, so the list is stable.
	rg := buildNet(t)
	srv := service.WithNetwork(rg.Net, quiet(), service.WithJobQueue(16, time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL, WithRetry(fastRetry(2)))
	ctx := context.Background()

	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		j, err := c.SubmitJob(ctx, 0, "default")
		if err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
		want[j.ID] = false
	}

	got := 0
	for q := (JobsQuery{State: "queued", Limit: 2}); ; {
		page, err := c.ListJobs(ctx, q)
		if err != nil {
			t.Fatalf("ListJobs(%+v): %v", q, err)
		}
		if page.Total != 5 {
			t.Fatalf("page.Total = %d, want 5", page.Total)
		}
		for _, j := range page.Jobs {
			seen, ok := want[j.ID]
			if !ok || seen {
				t.Fatalf("page returned unexpected or duplicate job %s", j.ID)
			}
			want[j.ID] = true
			got++
		}
		if !page.More {
			break
		}
		q.Offset += len(page.Jobs)
	}
	if got != 5 {
		t.Fatalf("paged walk covered %d jobs, want 5", got)
	}
}

// TestJobTraceRoundTrip: a done job's fragment downloads as raw JSON and
// decodes against a deterministic replica of the network — the replica
// is what a coordinator holds, not the worker's own in-memory net.
func TestJobTraceRoundTrip(t *testing.T) {
	ts := newAsyncServer(t)
	c := New(ts.URL, WithRetry(fastRetry(2)))
	ctx := context.Background()

	j, err := c.SubmitJob(ctx, 0, "default", "internal")
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if j, err = c.WaitJob(ctx, j.ID, time.Millisecond); err != nil || j.State != jobs.StateDone {
		t.Fatalf("WaitJob = (%+v, %v), want done", j, err)
	}

	raw, err := c.JobTraceRaw(ctx, j.ID)
	if err != nil || len(raw) == 0 {
		t.Fatalf("JobTraceRaw = (%d bytes, %v)", len(raw), err)
	}
	replica := buildNet(t)
	tr, err := c.JobTrace(ctx, j.ID, replica.Net)
	if err != nil {
		t.Fatalf("JobTrace: %v", err)
	}
	if st := tr.Stats(); st.Locations == 0 || st.MarkedRules == 0 {
		t.Fatalf("decoded fragment is empty: %+v", st)
	}

	// An unknown job surfaces the 404 as a typed error.
	var ae *APIError
	if _, err := c.JobTraceRaw(ctx, "absent"); !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("JobTraceRaw(absent) = %v, want 404", err)
	}
}

// TestWaitJobShedTolerant: poll responses shed by admission control
// (503/429) do not abort the wait — WaitJob backs off and keeps polling
// until the job is terminal. Non-shed errors still return immediately.
func TestWaitJobShedTolerant(t *testing.T) {
	var polls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/jobs/j1":
			// Shed the first three polls, then report done.
			if polls.Add(1) <= 3 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"id":"j1","state":"done"}`))
		case r.URL.Path == "/jobs/gone":
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	// MaxAttempts 1: the per-request retry layer is off, so shed handling
	// is exercised in WaitJob itself.
	c := New(ts.URL, WithRetry(fastRetry(1)))
	j, err := c.WaitJob(context.Background(), "j1", 2*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob through sheds: %v", err)
	}
	if j.State != jobs.StateDone || polls.Load() != 4 {
		t.Fatalf("WaitJob = %+v after %d polls, want done after 4", j, polls.Load())
	}

	var ae *APIError
	if _, err := c.WaitJob(context.Background(), "gone", time.Millisecond); !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("WaitJob on missing job = %v, want immediate 404", err)
	}
}

// TestCancelJobConflict: cancelling a finished job surfaces the 409.
func TestCancelJobConflict(t *testing.T) {
	ts := newAsyncServer(t)
	c := New(ts.URL, WithRetry(fastRetry(2)))
	ctx := context.Background()

	results, err := c.RunAsync(ctx, 0, "default")
	if err != nil || len(results) == 0 {
		t.Fatalf("RunAsync = (%v, %v)", results, err)
	}
	list, err := c.Jobs(ctx)
	if err != nil || len(list.Jobs) == 0 {
		t.Fatalf("Jobs = (%+v, %v)", list, err)
	}
	_, err = c.CancelJob(ctx, list.Jobs[0].ID)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("CancelJob on finished job = %v, want 409", err)
	}
	if !strings.Contains(ae.Message, "already") {
		t.Fatalf("409 message = %q", ae.Message)
	}
}
